module Channel = Jamming_channel.Channel
module Uniform = Jamming_station.Uniform

type config = {
  gamma : float;
  p_hat : float;
  initial_p : float;
  initial_threshold : int;
}

let config ~n ~window =
  let log2 x = Float.log2 (Float.max 2.0 x) in
  let denom = 8.0 *. (log2 (float_of_int window) +. log2 (log2 (float_of_int n)) +. 1.0) in
  { gamma = 1.0 /. denom; p_hat = 1.0 /. 24.0; initial_p = 1.0 /. 24.0; initial_threshold = 1 }

let validate cfg =
  if not (cfg.gamma > 0.0) then invalid_arg "Arss_mac: gamma must be positive";
  if not (cfg.p_hat > 0.0 && cfg.p_hat <= 1.0) then invalid_arg "Arss_mac: p_hat out of range";
  if not (cfg.initial_p > 0.0 && cfg.initial_p <= cfg.p_hat) then
    invalid_arg "Arss_mac: initial_p out of range";
  if cfg.initial_threshold < 1 then invalid_arg "Arss_mac: initial_threshold must be >= 1"

type state = {
  cfg : config;
  mutable p : float;
  mutable threshold : int;
  mutable counter : int;
  mutable useful_in_window : bool;  (* Null or Single since last counter reset *)
  mutable elected : bool;
}

let create cfg =
  validate cfg;
  {
    cfg;
    p = cfg.initial_p;
    threshold = cfg.initial_threshold;
    counter = 0;
    useful_in_window = false;
    elected = false;
  }

let on_state st state =
  let up = 1.0 +. st.cfg.gamma in
  (match state with
  | Channel.Null ->
      st.p <- Float.min (st.p *. up) st.cfg.p_hat;
      st.useful_in_window <- true
  | Channel.Single ->
      st.p <- st.p /. up;
      st.threshold <- Int.max (st.threshold - 1) 1;
      st.useful_in_window <- true;
      st.elected <- true
  | Channel.Collision -> ());
  st.counter <- st.counter + 1;
  if st.counter > st.threshold then begin
    st.counter <- 1;
    if not st.useful_in_window then begin
      st.p <- st.p /. up;
      st.threshold <- st.threshold + 2
    end;
    st.useful_in_window <- false
  end

let uniform cfg () =
  let st = create cfg in
  {
    Uniform.name = Printf.sprintf "ARSS-MAC(gamma=%.4f)" cfg.gamma;
    tx_prob = (fun () -> st.p);
    on_state =
      (fun state ->
        on_state st state;
        if st.elected then Uniform.Elected else Uniform.Continue);
  }

let station cfg = Uniform.distributed (uniform cfg)

let expected_time_bound ~n =
  let l = Float.log2 (float_of_int (Int.max 2 n)) in
  l *. l *. l *. l
