(** The robust MAC protocol of Awerbuch, Richa, Scheideler, Schmid and
    Zhang ("Principles of robust medium access and an application to
    leader election", ACM Transactions on Algorithms 10(4), 2014) — the
    paper's reference point [3].

    Every station keeps a probability [p ≤ p_hat], a threshold [t_v] and
    a counter [c_v].  Each round it transmits with probability [p], then:
    - on [Null]: [p ← min{(1+γ)·p, p_hat}];
    - on [Single]: [p ← p/(1+γ)] and [t_v ← max{t_v − 1, 1}];
    - the counter advances, and when [c_v > t_v] it resets; if the last
      [t_v] rounds contained neither a [Null] nor a [Single],
      [p ← p/(1+γ)] and [t_v ← t_v + 2].

    The protocol provably achieves constant throughput against a
    (T, 1−ε)-bounded adversary, and yields leader election in
    [O(log⁴ n)] w.h.p. — the bound our paper's §1.2 improves to
    [O(log n)].  Crucially it {e requires} the global-knowledge
    parameter [γ = O(1/(log T + log log n))]; we compute it from the
    true [n] and [T] (an advantage LESK does not get, which only
    strengthens the comparison).

    Used here in strong-CD as a first-Single selection protocol, exactly
    as LESK is, so the E8 comparison is like for like. *)

type config = {
  gamma : float;  (** multiplicative step, the [γ] above *)
  p_hat : float;  (** probability cap; the ARSS analysis wants ≤ 1/24 *)
  initial_p : float;
  initial_threshold : int;
}

val config : n:int -> window:int -> config
(** The γ the ARSS analysis prescribes for a network of size [n] facing
    window [T]: [γ = 1/(8·(log₂ T + log₂ log₂ n + 1))], [p_hat = 1/24]. *)

val uniform : config -> Jamming_station.Uniform.factory
val station : config -> Jamming_station.Station.factory

val expected_time_bound : n:int -> float
(** The [log⁴ n] shape for normalising E8. *)
