(** Binary exponential backoff, the textbook contention-resolution rule
    (and the core of 802.11's DCF, whose jamming fragility reference [4]
    of the paper demonstrates experimentally).

    Uniform formulation: transmit with probability [2^{−b}] where [b]
    counts the [Collision]s seen so far, decremented on [Null].  A
    (T, 1−ε)-bounded jammer feeds it fake [Collision]s at will, driving
    the probability to zero — the canonical example of a protocol whose
    estimate the adversary can force to diverge, which is exactly what
    LESK's asymmetric ±(1 vs ε/8) steps prevent (§2.1).  Experiments
    E8/E9 show the blow-up. *)

val uniform : ?max_backoff:int -> unit -> Jamming_station.Uniform.factory
val station : ?max_backoff:int -> unit -> Jamming_station.Station.factory

val known_n : n:int -> Jamming_station.Uniform.factory
(** The "omniscient" memoryless protocol: transmit with probability
    [1/n] forever.  Optimal per-slot success probability [≈ 1/e] on a
    clear channel; used as the reference algorithm in the lower-bound
    experiment E4 (Lemma 2.7 holds even for it). *)
