module Channel = Jamming_channel.Channel
module Uniform = Jamming_station.Uniform

type phase = Doubling of { k : int } | Bisecting of { lo : int; hi : int } | Firing of { k : int }

(* Exponents are capped so that 2^-k stays representable and the search
   terminates even when jamming keeps pushing it upward. *)
let max_exponent = 60

type state = { mutable phase : phase; mutable elected : bool }

let tx_prob st =
  let k =
    match st.phase with
    | Doubling { k } -> k
    | Bisecting { lo; hi } -> (lo + hi) / 2
    | Firing { k } -> k
  in
  Float.exp2 (-.float_of_int k)

let on_state st state =
  match state with
  | Channel.Single -> st.elected <- true
  | Channel.Null | Channel.Collision -> (
      let got_null = Channel.equal_state state Channel.Null in
      match st.phase with
      | Doubling { k } ->
          if got_null then
            (* Null at exponent k, Collision at k/2: log2 n is inside. *)
            st.phase <- Bisecting { lo = Int.max 1 (k / 2); hi = k }
          else if 2 * k >= max_exponent then st.phase <- Firing { k = max_exponent }
          else st.phase <- Doubling { k = 2 * k }
      | Bisecting { lo; hi } ->
          let mid = (lo + hi) / 2 in
          let lo, hi = if got_null then (lo, mid) else (mid, hi) in
          if hi - lo <= 1 then st.phase <- Firing { k = lo } else st.phase <- Bisecting { lo; hi }
      | Firing _ -> ())

let uniform () () =
  let st = { phase = Doubling { k = 1 }; elected = false } in
  {
    Uniform.name = "Willard";
    tx_prob = (fun () -> tx_prob st);
    on_state =
      (fun state ->
        on_state st state;
        if st.elected then Uniform.Elected else Uniform.Continue);
  }

let station () = Uniform.distributed (uniform ())
