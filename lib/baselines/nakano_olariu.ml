module Channel = Jamming_channel.Channel
module Uniform = Jamming_station.Uniform

let elected_of_state state = Channel.equal_state state Channel.Single

let sawtooth () () =
  let round = ref 1 in
  let j = ref 1 in
  {
    Uniform.name = "NO-sawtooth";
    tx_prob = (fun () -> Float.exp2 (-.float_of_int !j));
    on_state =
      (fun state ->
        if elected_of_state state then Uniform.Elected
        else begin
          if !j >= !round then begin
            incr round;
            j := 1
          end
          else incr j;
          Uniform.Continue
        end);
  }

let geometric_sweep () () =
  let j_max = ref 2 in
  let j = ref 1 in
  {
    Uniform.name = "NO-geometric";
    tx_prob = (fun () -> Float.exp2 (-.float_of_int !j));
    on_state =
      (fun state ->
        if elected_of_state state then Uniform.Elected
        else begin
          if !j >= !j_max then begin
            j_max := Int.min (2 * !j_max) 62;
            j := 1
          end
          else incr j;
          Uniform.Continue
        end);
  }

let station_sawtooth () = Uniform.distributed (sawtooth ())
