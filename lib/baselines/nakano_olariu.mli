(** Uniform leader-election protocols in the style of Nakano and Olariu
    ("Uniform leader election protocols for radio networks", IEEE TPDS
    2002; the paper's reference [21]) for {e unknown} [n] on a benign
    channel.

    Two classic sweeps are provided:

    - {!sawtooth}: rounds [r = 1, 2, …]; round [r] probes
      [p = 2^{−1}, 2^{−2}, …, 2^{−r}].  Some probability close to [1/n]
      is hit every round once [r ≥ log₂ n], so election takes
      [O(log² n)] slots in expectation and [O(log² n · log f)]-ish for
      confidence [1 − 1/f]; no channel feedback is used except the
      terminating [Single] — which also makes it the natural candidate
      for the no-CD model (reference [19]).

    - {!geometric_sweep}: probes [p = 2^{−j}] for [j = 1, 2, 3, …] and
      restarts after [j_max] doublings, doubling [j_max] each restart.
      Uses no feedback either.

    Both ignore [Null]/[Collision] feedback entirely, so the adversary
    cannot steer them — it can only erase their [Single]s.  They lose to
    LESK by a [log n]-factor-ish gap under jamming because they keep
    probing hopeless probabilities; E8/E9 quantify this. *)

val sawtooth : unit -> Jamming_station.Uniform.factory
val geometric_sweep : unit -> Jamming_station.Uniform.factory
val station_sawtooth : unit -> Jamming_station.Station.factory
