module Channel = Jamming_channel.Channel
module Uniform = Jamming_station.Uniform

let uniform ?(max_backoff = 60) () () =
  if max_backoff < 1 then invalid_arg "Backoff.uniform: max_backoff must be >= 1";
  let b = ref 0 in
  {
    Uniform.name = "binary-backoff";
    tx_prob = (fun () -> Float.exp2 (-.float_of_int !b));
    on_state =
      (fun state ->
        match state with
        | Channel.Single -> Uniform.Elected
        | Channel.Collision ->
            b := Int.min (!b + 1) max_backoff;
            Uniform.Continue
        | Channel.Null ->
            b := Int.max (!b - 1) 0;
            Uniform.Continue);
  }

let station ?max_backoff () = Uniform.distributed (uniform ?max_backoff ())

let known_n ~n () =
  if n < 1 then invalid_arg "Backoff.known_n: n must be >= 1";
  let p = 1.0 /. float_of_int n in
  {
    Uniform.name = Printf.sprintf "known-n(%d)" n;
    tx_prob = (fun () -> p);
    on_state =
      (fun state ->
        if Channel.equal_state state Channel.Single then Uniform.Elected
        else Uniform.Continue);
  }
