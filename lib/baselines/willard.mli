(** Willard's log-logarithmic selection resolution (SIAM J. Comput. 1986,
    the paper's reference [25]) — the classic fast protocol for a {e
    benign} channel with collision detection.

    Implementation (standard folklore variant): double the probed
    exponent ([p = 2^{−k}], k = 1, 2, 4, 8, …) until a [Null] brackets
    [log₂ n], binary-search the bracket, then fire at the resolved
    probability until a [Single] lands.  Expected time [O(log log n)]
    without an adversary — and, having no jamming defence, it stalls
    under a (T, 1−ε)-bounded jammer, because a jammed slot reads
    [Collision] and pushes the search astray.  That fragility is the
    point of including it in experiments E8/E9. *)

type phase =
  | Doubling of { k : int }
  | Bisecting of { lo : int; hi : int }
  | Firing of { k : int }

val uniform : unit -> Jamming_station.Uniform.factory
val station : unit -> Jamming_station.Station.factory
