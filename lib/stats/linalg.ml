let check_square a b =
  let n = Array.length a in
  if n = 0 then invalid_arg "Linalg: empty system";
  if Array.length b <> n then invalid_arg "Linalg: rhs length mismatch";
  Array.iter (fun row -> if Array.length row <> n then invalid_arg "Linalg: non-square matrix") a;
  n

let solve a b =
  let n = check_square a b in
  let a = Array.map Array.copy a in
  let b = Array.copy b in
  for col = 0 to n - 1 do
    (* Partial pivoting. *)
    let pivot = ref col in
    for row = col + 1 to n - 1 do
      if Float.abs a.(row).(col) > Float.abs a.(!pivot).(col) then pivot := row
    done;
    if Float.abs a.(!pivot).(col) < 1e-12 then failwith "Linalg.solve: singular matrix";
    if !pivot <> col then begin
      let tmp = a.(col) in
      a.(col) <- a.(!pivot);
      a.(!pivot) <- tmp;
      let tb = b.(col) in
      b.(col) <- b.(!pivot);
      b.(!pivot) <- tb
    end;
    for row = col + 1 to n - 1 do
      let factor = a.(row).(col) /. a.(col).(col) in
      if factor <> 0.0 then begin
        for k = col to n - 1 do
          a.(row).(k) <- a.(row).(k) -. (factor *. a.(col).(k))
        done;
        b.(row) <- b.(row) -. (factor *. b.(col))
      end
    done
  done;
  let x = Array.make n 0.0 in
  for row = n - 1 downto 0 do
    let s = ref b.(row) in
    for k = row + 1 to n - 1 do
      s := !s -. (a.(row).(k) *. x.(k))
    done;
    x.(row) <- !s /. a.(row).(row)
  done;
  x

let mat_vec a x =
  Array.map
    (fun row ->
      let s = ref 0.0 in
      Array.iteri (fun j v -> s := !s +. (v *. x.(j))) row;
      !s)
    a

let residual_norm a x b =
  let ax = mat_vec a x in
  let worst = ref 0.0 in
  Array.iteri (fun i v -> worst := Float.max !worst (Float.abs (v -. b.(i)))) ax;
  !worst
