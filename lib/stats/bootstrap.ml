module Prng = Jamming_prng.Prng

let ci ~rng ?(replicates = 1000) ?(level = 0.95) ~stat xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Bootstrap.ci: empty sample";
  if replicates < 1 then invalid_arg "Bootstrap.ci: need replicates >= 1";
  if not (level > 0.0 && level < 1.0) then invalid_arg "Bootstrap.ci: level must lie in (0, 1)";
  let stats = Array.make replicates 0.0 in
  let resample = Array.make n 0.0 in
  for r = 0 to replicates - 1 do
    for i = 0 to n - 1 do
      resample.(i) <- xs.(Prng.int rng ~bound:n)
    done;
    stats.(r) <- stat resample
  done;
  let alpha = (1.0 -. level) /. 2.0 in
  (Descriptive.quantile stats ~q:alpha, Descriptive.quantile stats ~q:(1.0 -. alpha))

let median_ci ~rng ?replicates ?level xs = ci ~rng ?replicates ?level ~stat:Descriptive.median xs
