(** Two-sample Kolmogorov–Smirnov test, used by the engine-equivalence
    ablation (A1) to compare whole election-time distributions rather
    than just their means. *)

val statistic : float array -> float array -> float
(** [statistic xs ys] is [sup_t |F_xs(t) − F_ys(t)|], the maximal gap
    between the two empirical CDFs.  Both samples must be non-empty;
    inputs are not modified. *)

val p_value : n1:int -> n2:int -> d:float -> float
(** Asymptotic two-sided p-value for statistic [d] on samples of sizes
    [n1], [n2] (Kolmogorov distribution with the effective size
    [n1·n2/(n1+n2)]).  Accurate enough for n ≳ 20 per sample. *)

val same_distribution : ?alpha:float -> float array -> float array -> bool
(** [true] when the test does {e not} reject equality at level [alpha]
    (default 0.01). *)
