type t = {
  lo : float;
  hi : float;
  bins : int array;
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if not (lo < hi) then invalid_arg "Histogram.create: need lo < hi";
  if bins < 1 then invalid_arg "Histogram.create: need bins >= 1";
  { lo; hi; bins = Array.make bins 0; total = 0 }

let add t x =
  let nbins = Array.length t.bins in
  let idx =
    if x <= t.lo then 0
    else if x >= t.hi then nbins - 1
    else int_of_float (float_of_int nbins *. (x -. t.lo) /. (t.hi -. t.lo))
  in
  let idx = Int.min idx (nbins - 1) in
  t.bins.(idx) <- t.bins.(idx) + 1;
  t.total <- t.total + 1

let of_samples ?(bins = 10) xs =
  if Array.length xs = 0 then invalid_arg "Histogram.of_samples: empty sample";
  let lo = Descriptive.min xs and hi = Descriptive.max xs in
  let hi = if lo = hi then lo +. 1.0 else hi in
  let t = create ~lo ~hi ~bins in
  Array.iter (add t) xs;
  t

let count t = t.total
let bin_counts t = Array.copy t.bins

let bin_edges t =
  let nbins = Array.length t.bins in
  let step = (t.hi -. t.lo) /. float_of_int nbins in
  Array.init nbins (fun i ->
      (t.lo +. (float_of_int i *. step), t.lo +. (float_of_int (i + 1) *. step)))

let render ?(width = 50) t =
  let max_count = Array.fold_left Int.max 1 t.bins in
  let edges = bin_edges t in
  let buf = Buffer.create 256 in
  Array.iteri
    (fun i c ->
      let bar = width * c / max_count in
      Buffer.add_string buf
        (Printf.sprintf "[%10.2f, %10.2f) %6d %s\n" (fst edges.(i)) (snd edges.(i)) c
           (String.make bar '#')))
    t.bins;
  Buffer.contents buf
