(** Minimal dense linear algebra: just enough to solve the hitting-time
    systems of {!Jamming_core.Markov} (a few hundred unknowns). *)

val solve : float array array -> float array -> float array
(** [solve a b] solves [a · x = b] by Gaussian elimination with partial
    pivoting.  [a] is an array of rows (modified: pass a copy if you
    need it again); requires a square, non-singular system.  Raises
    [Invalid_argument] on shape mismatch, [Failure] on a (numerically)
    singular matrix. *)

val mat_vec : float array array -> float array -> float array
(** Matrix–vector product, for residual checks. *)

val residual_norm : float array array -> float array -> float array -> float
(** [‖a·x − b‖∞]. *)
