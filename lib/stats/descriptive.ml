let require_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (Printf.sprintf "Descriptive.%s: empty sample" name)

let total xs = Array.fold_left ( +. ) 0.0 xs

let mean xs =
  require_nonempty "mean" xs;
  total xs /. float_of_int (Array.length xs)

let variance xs =
  require_nonempty "variance" xs;
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let min xs =
  require_nonempty "min" xs;
  Array.fold_left Float.min xs.(0) xs

let max xs =
  require_nonempty "max" xs;
  Array.fold_left Float.max xs.(0) xs

let quantile xs ~q =
  require_nonempty "quantile" xs;
  if not (q >= 0.0 && q <= 1.0) then invalid_arg "Descriptive.quantile: q must lie in [0, 1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = Stdlib.min (lo + 1) (n - 1) in
  let frac = pos -. float_of_int lo in
  sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let median xs = quantile xs ~q:0.5
let iqr xs = quantile xs ~q:0.75 -. quantile xs ~q:0.25

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  p25 : float;
  median : float;
  p75 : float;
  p95 : float;
  max : float;
}

let summarize xs =
  require_nonempty "summarize" xs;
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let q qv = quantile sorted ~q:qv in
  {
    count = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = sorted.(0);
    p25 = q 0.25;
    median = q 0.5;
    p75 = q 0.75;
    p95 = q 0.95;
    max = sorted.(Array.length sorted - 1);
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.2f sd=%.2f min=%.2f p25=%.2f med=%.2f p75=%.2f p95=%.2f max=%.2f" s.count
    s.mean s.stddev s.min s.p25 s.median s.p75 s.p95 s.max

let mean_ci95 xs =
  require_nonempty "mean_ci95" xs;
  let m = mean xs in
  let n = Array.length xs in
  if n < 2 then (m, m)
  else begin
    let se = stddev xs /. sqrt (float_of_int n) in
    (m -. (1.96 *. se), m +. (1.96 *. se))
  end

let of_ints xs = Array.map float_of_int xs
