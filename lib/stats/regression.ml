type fit = { slope : float; intercept : float; r2 : float }

let check_pair name xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg (Printf.sprintf "Regression.%s: length mismatch" name);
  if n < 2 then invalid_arg (Printf.sprintf "Regression.%s: need at least 2 points" name);
  n

let linear ~xs ~ys =
  let n = check_pair "linear" xs ys in
  let nf = float_of_int n in
  let mx = Descriptive.mean xs and my = Descriptive.mean ys in
  let sxx = ref 0.0 and sxy = ref 0.0 and syy = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxx := !sxx +. (dx *. dx);
    sxy := !sxy +. (dx *. dy);
    syy := !syy +. (dy *. dy)
  done;
  if !sxx = 0.0 then invalid_arg "Regression.linear: xs is constant";
  let slope = !sxy /. !sxx in
  let intercept = my -. (slope *. mx) in
  let r2 =
    if !syy = 0.0 then 1.0 (* ys constant: the fit is exact *)
    else begin
      let ss_res = ref 0.0 in
      for i = 0 to n - 1 do
        let resid = ys.(i) -. (intercept +. (slope *. xs.(i))) in
        ss_res := !ss_res +. (resid *. resid)
      done;
      1.0 -. (!ss_res /. !syy)
    end
  in
  ignore nf;
  { slope; intercept; r2 }

let log_log_slope ~xs ~ys =
  let n = check_pair "log_log_slope" xs ys in
  let lx = Array.make n 0.0 and ly = Array.make n 0.0 in
  for i = 0 to n - 1 do
    if xs.(i) <= 0.0 || ys.(i) <= 0.0 then
      invalid_arg "Regression.log_log_slope: values must be positive";
    lx.(i) <- log xs.(i);
    ly.(i) <- log ys.(i)
  done;
  linear ~xs:lx ~ys:ly

let pearson ~xs ~ys =
  let n = check_pair "pearson" xs ys in
  let mx = Descriptive.mean xs and my = Descriptive.mean ys in
  let sxx = ref 0.0 and sxy = ref 0.0 and syy = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxx := !sxx +. (dx *. dx);
    sxy := !sxy +. (dx *. dy);
    syy := !syy +. (dy *. dy)
  done;
  if !sxx = 0.0 || !syy = 0.0 then invalid_arg "Regression.pearson: constant input";
  !sxy /. sqrt (!sxx *. !syy)

let ratio_spread ~xs ~ys =
  let n = check_pair "ratio_spread" xs ys in
  let rmin = ref infinity and rmax = ref neg_infinity in
  for i = 0 to n - 1 do
    if xs.(i) <= 0.0 || ys.(i) <= 0.0 then
      invalid_arg "Regression.ratio_spread: values must be positive";
    let r = ys.(i) /. xs.(i) in
    rmin := Float.min !rmin r;
    rmax := Float.max !rmax r
  done;
  !rmax /. !rmin
