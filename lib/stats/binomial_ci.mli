(** Confidence intervals for success probabilities — used by the w.h.p.
    experiments (E10), where the point estimate is often exactly 1 and a
    normal interval would be degenerate. *)

val wilson : successes:int -> trials:int -> z:float -> float * float
(** Wilson score interval.  Requires [0 ≤ successes ≤ trials],
    [trials ≥ 1], [z > 0] (z = 1.96 for 95%). *)

val wilson95 : successes:int -> trials:int -> float * float

val rule_of_three : trials:int -> float
(** Upper 95% bound on the failure probability when zero failures were
    observed: [3/trials]. *)
