(** Fixed-width histograms with ASCII rendering, used by the examples
    and the experiment reports. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** Requires [lo < hi] and [bins ≥ 1].  Out-of-range observations are
    clamped into the first/last bin. *)

val of_samples : ?bins:int -> float array -> t
(** Range from the sample; default 10 bins. *)

val add : t -> float -> unit
val count : t -> int
val bin_counts : t -> int array
val bin_edges : t -> (float * float) array

val render : ?width:int -> t -> string
(** Multi-line bar rendering, one bin per line. *)
