(** Descriptive statistics over float samples.

    All functions raise [Invalid_argument] on an empty sample unless
    noted.  Quantiles use linear interpolation between order statistics
    (type 7, the R default). *)

val mean : float array -> float
val variance : float array -> float
(** Unbiased (n−1) sample variance; 0 for a single observation. *)

val stddev : float array -> float
val min : float array -> float
val max : float array -> float
val total : float array -> float

val quantile : float array -> q:float -> float
(** [q ∈ [0, 1]]; does not modify the input. *)

val median : float array -> float
val iqr : float array -> float

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  p25 : float;
  median : float;
  p75 : float;
  p95 : float;
  max : float;
}

val summarize : float array -> summary
val pp_summary : Format.formatter -> summary -> unit

val mean_ci95 : float array -> float * float
(** Normal-approximation 95% confidence interval for the mean
    ([mean ± 1.96·stderr]); degenerate for n < 2. *)

val of_ints : int array -> float array
