(** Least-squares fits used to check the asymptotic shapes of the
    theorems: e.g. E1 regresses measured election time on [log₂ n] and
    inspects the slope and the goodness of fit, E2 regresses on [T]. *)

type fit = {
  slope : float;
  intercept : float;
  r2 : float;  (** coefficient of determination; 1 for a perfect fit *)
}

val linear : xs:float array -> ys:float array -> fit
(** Ordinary least squares of [ys] on [xs]; arrays must have equal,
    ≥ 2 length and [xs] must not be constant. *)

val log_log_slope : xs:float array -> ys:float array -> fit
(** Fit of [log ys] on [log xs]: the slope estimates the polynomial
    degree of the relationship.  All values must be positive. *)

val pearson : xs:float array -> ys:float array -> float
(** Correlation coefficient. *)

val ratio_spread : xs:float array -> ys:float array -> float
(** [max(ys/xs) / min(ys/xs)] — a scale-free measure of how close
    [ys ∝ xs] holds; near 1 means proportional.  Values must be
    positive. *)
