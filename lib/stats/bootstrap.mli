(** Non-parametric bootstrap confidence intervals, used where the
    election-time distribution is too skewed for normal approximations
    (it has a geometric-like tail). *)

val ci :
  rng:Jamming_prng.Prng.t ->
  ?replicates:int ->
  ?level:float ->
  stat:(float array -> float) ->
  float array ->
  float * float
(** [ci ~rng ~stat xs] is a percentile-bootstrap interval for
    [stat xs]; default 1000 replicates at level 0.95. *)

val median_ci :
  rng:Jamming_prng.Prng.t -> ?replicates:int -> ?level:float -> float array -> float * float
