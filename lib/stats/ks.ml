let statistic xs ys =
  let n1 = Array.length xs and n2 = Array.length ys in
  if n1 = 0 || n2 = 0 then invalid_arg "Ks.statistic: empty sample";
  let a = Array.copy xs and b = Array.copy ys in
  Array.sort compare a;
  Array.sort compare b;
  (* Merge-walk the two sorted samples, tracking the CDF gap. *)
  let rec go i j d =
    if i >= n1 || j >= n2 then
      (* Only one CDF still moves; the gap is maximal at this boundary. *)
      let fa = float_of_int i /. float_of_int n1 in
      let fb = float_of_int j /. float_of_int n2 in
      Float.max d (Float.abs (fa -. fb))
    else begin
      let i, j =
        if a.(i) < b.(j) then (i + 1, j)
        else if a.(i) > b.(j) then (i, j + 1)
        else begin
          (* Equal values: advance past ties in both samples together. *)
          let v = a.(i) in
          let rec skip arr k = if k < Array.length arr && arr.(k) = v then skip arr (k + 1) else k in
          (skip a i, skip b j)
        end
      in
      let fa = float_of_int i /. float_of_int n1 in
      let fb = float_of_int j /. float_of_int n2 in
      go i j (Float.max d (Float.abs (fa -. fb)))
    end
  in
  go 0 0 0.0

let p_value ~n1 ~n2 ~d =
  if n1 < 1 || n2 < 1 then invalid_arg "Ks.p_value: need positive sample sizes";
  if d <= 0.0 then 1.0
  else begin
    let ne = float_of_int n1 *. float_of_int n2 /. float_of_int (n1 + n2) in
    let lambda = (sqrt ne +. 0.12 +. (0.11 /. sqrt ne)) *. d in
    (* Kolmogorov series: 2 sum (-1)^{k-1} exp(-2 k^2 lambda^2). *)
    let rec series k acc =
      if k > 100 then acc
      else begin
        let term = 2.0 *. exp (-2.0 *. float_of_int (k * k) *. lambda *. lambda) in
        let signed = if k mod 2 = 1 then term else -.term in
        let acc' = acc +. signed in
        if Float.abs term < 1e-10 then acc' else series (k + 1) acc'
      end
    in
    Float.max 0.0 (Float.min 1.0 (series 1 0.0))
  end

let same_distribution ?(alpha = 0.01) xs ys =
  let d = statistic xs ys in
  p_value ~n1:(Array.length xs) ~n2:(Array.length ys) ~d >= alpha
