let wilson ~successes ~trials ~z =
  if trials < 1 then invalid_arg "Binomial_ci.wilson: trials must be >= 1";
  if successes < 0 || successes > trials then
    invalid_arg "Binomial_ci.wilson: successes out of range";
  if not (z > 0.0) then invalid_arg "Binomial_ci.wilson: z must be positive";
  let n = float_of_int trials in
  let p = float_of_int successes /. n in
  let z2 = z *. z in
  let denom = 1.0 +. (z2 /. n) in
  let center = (p +. (z2 /. (2.0 *. n))) /. denom in
  let half =
    z /. denom *. sqrt ((p *. (1.0 -. p) /. n) +. (z2 /. (4.0 *. n *. n)))
  in
  (Float.max 0.0 (center -. half), Float.min 1.0 (center +. half))

let wilson95 ~successes ~trials = wilson ~successes ~trials ~z:1.96

let rule_of_three ~trials =
  if trials < 1 then invalid_arg "Binomial_ci.rule_of_three: trials must be >= 1";
  3.0 /. float_of_int trials
