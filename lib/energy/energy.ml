module Json = Jamming_telemetry.Json

(* Log₂ binning with the exact semantics of lib/telemetry's histograms
   (bin 0 holds values <= 0, bin i >= 1 holds [2^(i-1), 2^i)), so the
   awake-slot histogram reads like every other histogram in a report. *)
let hist_bins = 63

let bin_of v =
  if v <= 0 then 0
  else
    let rec go i v = if v = 0 then i else go (i + 1) (v lsr 1) in
    Int.min (hist_bins - 1) (go 0 v)

type summary = {
  stations : int;
  slots : int;
  awake_total : float;
  tx_total : float;
  listen_total : float;
  sleep_total : float;
  max_awake : int;
  median_awake : float;
  awake_bins : (int * int) list;
}

let equal_summary a b =
  a.stations = b.stations && a.slots = b.slots
  && Float.equal a.awake_total b.awake_total
  && Float.equal a.tx_total b.tx_total
  && Float.equal a.listen_total b.listen_total
  && Float.equal a.sleep_total b.sleep_total
  && a.max_awake = b.max_awake
  && Float.equal a.median_awake b.median_awake
  && a.awake_bins = b.awake_bins

let summary_to_json s =
  Json.Obj
    [
      ("stations", Json.Int s.stations);
      ("slots", Json.Int s.slots);
      ("awake", Json.Float s.awake_total);
      ("tx", Json.Float s.tx_total);
      ("listen", Json.Float s.listen_total);
      ("sleep", Json.Float s.sleep_total);
      ("max_awake", Json.Int s.max_awake);
      ("median_awake", Json.Float s.median_awake);
      ( "log2_awake",
        Json.List
          (List.map (fun (b, c) -> Json.List [ Json.Int b; Json.Int c ]) s.awake_bins) );
    ]

let summary_of_json json =
  let ( let* ) = Result.bind in
  let int_field name =
    match Json.member name json with
    | Some (Json.Int v) -> Ok v
    | _ -> Error (Printf.sprintf "energy: missing or non-int %S" name)
  in
  let float_field name =
    match Json.member name json with
    | Some (Json.Float v) -> Ok v
    | Some (Json.Int v) -> Ok (float_of_int v)
    | _ -> Error (Printf.sprintf "energy: missing or non-float %S" name)
  in
  let* stations = int_field "stations" in
  let* slots = int_field "slots" in
  let* awake_total = float_field "awake" in
  let* tx_total = float_field "tx" in
  let* listen_total = float_field "listen" in
  let* sleep_total = float_field "sleep" in
  let* max_awake = int_field "max_awake" in
  let* median_awake = float_field "median_awake" in
  let* awake_bins =
    match Json.member "log2_awake" json with
    | Some (Json.List items) ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | Json.List [ Json.Int b; Json.Int c ] :: rest -> go ((b, c) :: acc) rest
          | _ -> Error "energy: malformed log2_awake entry"
        in
        go [] items
    | _ -> Error "energy: missing log2_awake"
  in
  Ok
    {
      stations;
      slots;
      awake_total;
      tx_total;
      listen_total;
      sleep_total;
      max_awake;
      median_awake;
      awake_bins;
    }

(* Build a summary from per-station integer counts.  [awake i] must lie
   in [0, slots] and dominate [tx i]; the derived quantities (listen,
   sleep, histogram, median) follow from the conservation laws
   awake = tx + listen and awake + sleep = slots. *)
let of_per_station ~n ~slots ~tx ~awake =
  let awake_counts = Array.init n awake in
  let tx_total = ref 0 and awake_total = ref 0 and max_awake = ref 0 in
  let bins = Array.make hist_bins 0 in
  for i = 0 to n - 1 do
    let a = awake_counts.(i) in
    awake_total := !awake_total + a;
    tx_total := !tx_total + tx i;
    if a > !max_awake then max_awake := a;
    let b = bin_of a in
    bins.(b) <- bins.(b) + 1
  done;
  let median_awake =
    if n = 0 then 0.0
    else begin
      let sorted = Array.copy awake_counts in
      Array.sort compare sorted;
      if n land 1 = 1 then float_of_int sorted.(n / 2)
      else float_of_int (sorted.((n / 2) - 1) + sorted.(n / 2)) /. 2.0
    end
  in
  let sparse = ref [] in
  for b = hist_bins - 1 downto 0 do
    if bins.(b) > 0 then sparse := (b, bins.(b)) :: !sparse
  done;
  let awake_bins = !sparse in
  let awake_total = float_of_int !awake_total in
  let tx_total = float_of_int !tx_total in
  {
    stations = n;
    slots;
    awake_total;
    tx_total;
    listen_total = awake_total -. tx_total;
    sleep_total = (float_of_int n *. float_of_int slots) -. awake_total;
    max_awake = !max_awake;
    median_awake;
    awake_bins;
  }

(* Grouped summary for the counting engines, where stations are
   exchangeable within a class: [groups] lists [(awake, count)] pairs
   covering the population (counts must be positive and sum to [n]).
   O(#groups log #groups), independent of [n] — the aggregate engine
   calls this with one group per retirement event. *)
let of_groups ~n ~slots ~tx_total ~groups =
  let groups = List.filter (fun (_, c) -> c > 0) groups in
  let covered = List.fold_left (fun acc (_, c) -> acc + c) 0 groups in
  if covered <> n then invalid_arg "Energy.of_groups: group counts must sum to n";
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) groups in
  let awake_total =
    List.fold_left (fun acc (a, c) -> acc +. (float_of_int a *. float_of_int c)) 0.0 sorted
  in
  let max_awake = List.fold_left (fun acc (a, _) -> Int.max acc a) 0 sorted in
  let median_awake =
    if n = 0 then 0.0
    else begin
      (* 0-based ranks of the two middle elements (equal when odd). *)
      let r1 = (n - 1) / 2 and r2 = n / 2 in
      let at rank =
        let rec go seen = function
          | [] -> 0
          | (a, c) :: rest -> if rank < seen + c then a else go (seen + c) rest
        in
        go 0 sorted
      in
      float_of_int (at r1 + at r2) /. 2.0
    end
  in
  let bins = Array.make hist_bins 0 in
  List.iter (fun (a, c) -> bins.(bin_of a) <- bins.(bin_of a) + c) sorted;
  let sparse = ref [] in
  for b = hist_bins - 1 downto 0 do
    if bins.(b) > 0 then sparse := (b, bins.(b)) :: !sparse
  done;
  {
    stations = n;
    slots;
    awake_total;
    tx_total;
    listen_total = awake_total -. tx_total;
    sleep_total = (float_of_int n *. float_of_int slots) -. awake_total;
    max_awake;
    median_awake;
    awake_bins = !sparse;
  }

(* O(1) summary for the uniform engine, where every station is awake
   for the whole run and the transmission total may be fractional (the
   uniform engine accumulates expectations). *)
let all_awake ~n ~slots ~tx_total = of_groups ~n ~slots ~tx_total ~groups:[ (slots, n) ]

module Meter = struct
  (* Event-driven accounting: the engine reports transmissions, sleep
     intervals and terminations as they happen; every slot not covered
     by a flushed-or-pending sleep interval counts as awake at
     [summarize] time, so per-slot work stays O(1) per event rather
     than O(n) per slot. *)
  type t = {
    n : int;
    tx : int array;
    sleep : int array;
    (* Current unflushed sleep interval per station, [from, until) in
       engine-relative slots; [pending_from.(i) < 0] means none.
       [until = max_int] encodes "asleep for the rest of the run"
       (a finished or crashed station). *)
    pending_from : int array;
    pending_until : int array;
  }

  let create ~n =
    if n < 0 then invalid_arg "Energy.Meter.create: n must be >= 0";
    {
      n;
      tx = Array.make n 0;
      sleep = Array.make n 0;
      pending_from = Array.make n (-1);
      pending_until = Array.make n 0;
    }

  let n t = t.n
  let note_tx t i = t.tx.(i) <- t.tx.(i) + 1
  let tx t i = t.tx.(i)

  let flush t i ~horizon =
    if t.pending_from.(i) >= 0 then begin
      let until = Int.min t.pending_until.(i) horizon in
      if until > t.pending_from.(i) then
        t.sleep.(i) <- t.sleep.(i) + (until - t.pending_from.(i));
      t.pending_from.(i) <- -1
    end

  let note_sleep t i ~from ~until =
    if until <= from then invalid_arg "Energy.Meter.note_sleep: empty interval";
    (* Any previous interval has fully elapsed by [from] (a station
       only sleeps again after waking), so clamping at [from] flushes
       it exactly. *)
    flush t i ~horizon:from;
    t.pending_from.(i) <- from;
    t.pending_until.(i) <- until

  let note_finish t i ~from =
    flush t i ~horizon:from;
    t.pending_from.(i) <- from;
    t.pending_until.(i) <- max_int

  let summarize t ~slots =
    for i = 0 to t.n - 1 do
      flush t i ~horizon:slots
    done;
    of_per_station ~n:t.n ~slots
      ~tx:(fun i -> t.tx.(i))
      ~awake:(fun i -> slots - t.sleep.(i))
end

let summarize = Meter.summarize

let observe_summary sink ~prefix s =
  let module T = Jamming_telemetry.Telemetry in
  let c name = T.counter sink (prefix ^ "." ^ name) in
  T.add (c "runs") 1;
  T.add (c "stations") s.stations;
  T.add (c "awake") (int_of_float s.awake_total);
  T.add (c "tx") (int_of_float s.tx_total);
  T.add (c "sleep") (int_of_float s.sleep_total);
  T.observe (T.histogram sink (prefix ^ ".max_awake")) s.max_awake;
  T.observe (T.histogram sink (prefix ^ ".median_awake")) (int_of_float s.median_awake)
