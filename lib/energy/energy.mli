(** Per-station energy accounting: awake / transmit / listen / sleep
    slots (see DESIGN.md §16).

    The paper measures time and leaves energy open; this module makes
    sleep/awake a first-class simulator concept.  A {!Meter} accrues
    per-station events with O(1) cost per event — the engine reports
    transmissions, sleep intervals and terminations, and every other
    slot counts as awake — and a {!summary} condenses a run into
    population totals, a median, and a log₂ histogram of per-station
    awake slots (same binning as [lib/telemetry]).

    Conservation laws, asserted by the QCheck tests for every engine:
    for each station, [awake = tx + listen] and [awake + sleep =
    slots]; summing over stations relates the float totals below. *)

(** {1 Population summary} *)

type summary = {
  stations : int;  (** population size [n] *)
  slots : int;  (** run horizon: every per-station budget sums to it *)
  awake_total : float;
      (** total awake station-slots; float because the uniform engine
          accumulates fractional {e expected} transmissions *)
  tx_total : float;
  listen_total : float;  (** [awake_total -. tx_total] *)
  sleep_total : float;  (** [n *. slots -. awake_total] *)
  max_awake : int;  (** largest single-station awake count *)
  median_awake : float;
      (** median per-station awake slots — the A9 growth metric
          (≈ c·log log n for LMR, ≈ slots for always-on protocols) *)
  awake_bins : (int * int) list;
      (** sparse log₂ histogram of per-station awake counts, sorted by
          bin: bin 0 holds values <= 0, bin i >= 1 holds
          [[2^(i-1), 2^i)] — telemetry's binning exactly *)
}

val equal_summary : summary -> summary -> bool

val summary_to_json : summary -> Jamming_telemetry.Json.t
(** Lossless: floats render value-exactly, so
    [summary_of_json (summary_to_json s)] = [Ok s]. *)

val summary_of_json : Jamming_telemetry.Json.t -> (summary, string) result

val of_per_station :
  n:int -> slots:int -> tx:(int -> int) -> awake:(int -> int) -> summary
(** Build a summary from per-station counts (used by the pooled engine,
    whose pools track their own awake slots).  [awake i] must lie in
    [[0, slots]] and be at least [tx i]. *)

val of_groups :
  n:int -> slots:int -> tx_total:float -> groups:(int * int) list -> summary
(** Summary over exchangeable groups: [groups] is a list of
    [(awake, count)] pairs whose counts sum to [n] (zero-count entries
    are dropped; raises [Invalid_argument] on a mismatched total).
    Cost is independent of [n] — the aggregate engine passes one group
    per retirement event. *)

val all_awake : n:int -> slots:int -> tx_total:float -> summary
(** O(1) summary for the uniform engine: every station awake for all
    [slots] slots, [tx_total] transmissions (possibly fractional)
    spread over the population.  [of_groups] with one group. *)

(** {1 Per-run meter} *)

module Meter : sig
  type t

  val create : n:int -> t
  val n : t -> int

  val note_tx : t -> int -> unit
  (** Station [i] transmitted this slot. O(1). *)

  val tx : t -> int -> int
  (** Live transmission count of station [i] — the predicate
      [Energy_cap] caps on. *)

  val note_sleep : t -> int -> from:int -> until:int -> unit
  (** Station [i] sleeps over the engine-relative interval
      [[from, until)]; [until] may exceed the eventual horizon (it is
      clamped at {!summarize} time).  Raises [Invalid_argument] on an
      empty interval. *)

  val note_finish : t -> int -> from:int -> unit
  (** Station [i] terminated: asleep from relative slot [from] to the
      end of the run. *)

  val summarize : t -> slots:int -> summary
  (** Close all open intervals at horizon [slots] and summarize.  Call
      once, after the run. *)
end

val summarize : Meter.t -> slots:int -> summary
(** Alias for {!Meter.summarize}. *)

(** {1 Telemetry} *)

val observe_summary :
  Jamming_telemetry.Telemetry.t -> prefix:string -> summary -> unit
(** Fold a summary into a sink: counters [<prefix>.runs/stations/awake/
    tx/sleep] (float totals truncated) and histograms
    [<prefix>.max_awake]/[<prefix>.median_awake]. *)

(** {1 Histogram binning} *)

val hist_bins : int
val bin_of : int -> int
(** Telemetry's log₂ bin index, re-exported so tests can cross-check
    {!summary.awake_bins} without depending on histogram internals. *)
