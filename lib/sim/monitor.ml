module Channel = Jamming_channel.Channel
module Station = Jamming_station.Station

type check =
  | Jam_budget
  | Slot_consistency
  | At_most_one_leader
  | Live_leader
  | Population

let check_to_string = function
  | Jam_budget -> "jam-budget"
  | Slot_consistency -> "slot-consistency"
  | At_most_one_leader -> "at-most-one-leader"
  | Live_leader -> "live-leader"
  | Population -> "population"

type checks = {
  jam_budget : bool;
  slot_consistency : bool;
  at_most_one_leader : bool;
}

let all_checks = { jam_budget = true; slot_consistency = true; at_most_one_leader = true }
let safety_checks = { all_checks with at_most_one_leader = false }

type violation = { slot : int; check : check; seed : int option; detail : string }

exception Violation of violation

let pp_violation ppf v =
  Format.fprintf ppf "[%s] slot %d%s: %s" (check_to_string v.check) v.slot
    (match v.seed with Some s -> Printf.sprintf " (seed %d)" s | None -> "")
    v.detail

let violation_to_string v = Format.asprintf "%a" pp_violation v

(* Jam-budget state mirrors Budget's invariants (see budget.ml), kept
   deliberately independent of that module:
   - [prefix_jams.(k mod window) = J(k)] for the last [window] prefixes;
   - [eligible_min = min { h(k) : 0 <= k <= m - window }] with
     [h(k) = J(k) - (1-eps)*k], so a violated window of length >= window
     ending at the current prefix shows up as [h(m) > eligible_min]. *)
type t = {
  checks : checks;
  window : int;
  eps : float;
  seed : int option;
  mutable m : int;  (* slots seen *)
  mutable jams : int;
  prefix_jams : int array;
  mutable eligible_min : float;
  mutable eligible_argmin : int;
  mutable next_slot : int option;  (* expected slot number, once known *)
  mutable nulls : int;
  mutable singles : int;
  mutable collisions : int;
}

let tolerance = 1e-9

let create ?(checks = all_checks) ?seed ~window ~eps () =
  if window < 1 then invalid_arg "Monitor.create: window must be >= 1";
  if not (eps > 0.0 && eps <= 1.0) then
    invalid_arg "Monitor.create: eps must lie in (0, 1]";
  {
    checks;
    window;
    eps;
    seed;
    m = 0;
    jams = 0;
    prefix_jams = Array.make window 0;
    eligible_min = infinity;
    eligible_argmin = -1;
    next_slot = None;
    nulls = 0;
    singles = 0;
    collisions = 0;
  }

let slots_seen t = t.m

let fail t ~slot ~check fmt =
  Format.kasprintf
    (fun detail -> raise (Violation { slot; check; seed = t.seed; detail }))
    fmt

let h t ~jams ~k = float_of_int jams -. ((1.0 -. t.eps) *. float_of_int k)

let check_consistency t (r : Metrics.slot_record) =
  (match t.next_slot with
  | Some expected when r.Metrics.slot <> expected ->
      fail t ~slot:r.Metrics.slot ~check:Slot_consistency
        "slot numbers skipped: expected %d, engine reported %d" expected r.Metrics.slot
  | _ -> ());
  if Metrics.tx_lower_bound r.Metrics.transmitters < 0 then
    fail t ~slot:r.Metrics.slot ~check:Slot_consistency "negative transmitter count %s"
      (Metrics.tx_count_to_string r.Metrics.transmitters);
  (* [Exact k] pins the state via the channel map.  [At_least k] pins it
     only when every consistent count resolves the same way: k >= 2 (or
     a jammed slot) forces Collision; below that the record is honest
     about not knowing the count, so the state is unconstrained. *)
  let expected =
    match r.Metrics.transmitters with
    | Metrics.Exact k -> Some (Channel.resolve ~transmitters:k ~jammed:r.Metrics.jammed)
    | Metrics.At_least k ->
        if k >= 2 || r.Metrics.jammed then Some Channel.Collision else None
  in
  match expected with
  | None -> ()
  | Some expected ->
      if not (Channel.equal_state expected r.Metrics.state) then
        fail t ~slot:r.Metrics.slot ~check:Slot_consistency
          "state %s inconsistent with %s transmitters%s (expected %s)"
          (Channel.state_to_string r.Metrics.state)
          (Metrics.tx_count_to_string r.Metrics.transmitters)
          (if r.Metrics.jammed then " under jamming" else "")
          (Channel.state_to_string expected)

let check_jam_budget t (r : Metrics.slot_record) =
  let next = t.m + 1 in
  (* Retire prefix k = next - window into the eligible minimum; its ring
     cell is about to be overwritten by J(next). *)
  let retiring = next - t.window in
  if retiring >= 0 then begin
    let hr = h t ~jams:t.prefix_jams.(retiring mod t.window) ~k:retiring in
    if hr < t.eligible_min then begin
      t.eligible_min <- hr;
      t.eligible_argmin <- retiring
    end
  end;
  if r.Metrics.jammed then t.jams <- t.jams + 1;
  t.prefix_jams.(next mod t.window) <- t.jams;
  if t.eligible_min < infinity && h t ~jams:t.jams ~k:next > t.eligible_min +. tolerance
  then begin
    let k = t.eligible_argmin in
    let len = next - k in
    (* The ring cell for k may already be overwritten; J(k) is recovered
       exactly from h(k) = J(k) - (1-eps)*k, an integer plus a known term. *)
    let j_k = int_of_float (Float.round (t.eligible_min +. ((1.0 -. t.eps) *. float_of_int k))) in
    let jams_in = t.jams - j_k in
    fail t ~slot:r.Metrics.slot ~check:Jam_budget
      "window of %d slots ending here holds %d jams > (1-eps)*%d = %.2f" len jams_in len
      ((1.0 -. t.eps) *. float_of_int len)
  end

let on_slot t ~record ~leaders =
  if t.checks.slot_consistency then check_consistency t record;
  if t.checks.jam_budget then check_jam_budget t record
  else begin
    (* Keep the prefix bookkeeping coherent even when the check is off,
       so toggling checks never corrupts the tallies. *)
    if record.Metrics.jammed then t.jams <- t.jams + 1;
    t.prefix_jams.((t.m + 1) mod t.window) <- t.jams
  end;
  if t.checks.at_most_one_leader && leaders > 1 then
    fail t ~slot:record.Metrics.slot ~check:At_most_one_leader
      "%d stations simultaneously claim leadership" leaders;
  (match record.Metrics.state with
  | Channel.Null -> t.nulls <- t.nulls + 1
  | Channel.Single -> t.singles <- t.singles + 1
  | Channel.Collision -> t.collisions <- t.collisions + 1);
  t.m <- t.m + 1;
  t.next_slot <- Some (record.Metrics.slot + 1)

(* Idle slots of a dynamic run's stable interval: nobody transmits, the
   adversary is quiescent, so each slot is an unjammed Null.  Feeding
   them through [on_slot] keeps every tally (jam-budget prefixes,
   slot-class counters, expected slot numbers) coherent across the gap,
   so a monitor can span a whole multi-election dynamic run. *)
let skip_to t ~from ~upto ~leaders =
  if upto < from then invalid_arg "Monitor.skip_to: upto must be >= from";
  (match t.next_slot with
  | Some expected when expected <> from ->
      fail t ~slot:from ~check:Slot_consistency
        "skip_to from slot %d but the monitor expected slot %d" from expected
  | Some _ | None -> ());
  for slot = from to upto - 1 do
    on_slot t
      ~record:
        { Metrics.slot; transmitters = Metrics.Exact 0; jammed = false; state = Channel.Null }
      ~leaders
  done

let report t ~slot ~check fmt = fail t ~slot ~check fmt

let check_result t (r : Metrics.result) =
  let final_slot = match t.next_slot with Some s -> s - 1 | None -> 0 in
  if t.checks.slot_consistency then begin
    let mismatch what expected got =
      fail t ~slot:final_slot ~check:Slot_consistency
        "engine reported %d %s but the monitor counted %d" got what expected
    in
    if r.Metrics.slots <> t.m then mismatch "slots" t.m r.Metrics.slots;
    if r.Metrics.nulls <> t.nulls then mismatch "nulls" t.nulls r.Metrics.nulls;
    if r.Metrics.singles <> t.singles then mismatch "singles" t.singles r.Metrics.singles;
    if r.Metrics.collisions <> t.collisions then
      mismatch "collisions" t.collisions r.Metrics.collisions;
    if r.Metrics.jammed_slots <> t.jams then mismatch "jams" t.jams r.Metrics.jammed_slots
  end;
  if t.checks.at_most_one_leader then begin
    let leaders =
      Array.fold_left
        (fun acc st -> if Station.equal_status st Station.Leader then acc + 1 else acc)
        0 r.Metrics.statuses
    in
    if leaders > 1 then
      fail t ~slot:final_slot ~check:At_most_one_leader
        "%d stations finished in status Leader" leaders
  end

let observer t =
  {
    Observer.name = "monitor";
    (* The O(n) per-slot leader scan is only needed for the
       at-most-one-leader check; the other invariants ignore it. *)
    needs_leaders = t.checks.at_most_one_leader;
    on_slot = (fun record ~leaders -> on_slot t ~record ~leaders);
    on_result = (fun result -> check_result t result);
  }

let slot_observer t =
  {
    (observer t) with
    Observer.name = "monitor-slots";
    (* A dynamic run spans several engine invocations; per-segment
       results must not be mistaken for the whole run's totals.  The
       driver aggregates across segments and calls [check_result]
       itself, once. *)
    on_result = (fun _ -> ());
  }
