module Channel = Jamming_channel.Channel
module Telemetry = Jamming_telemetry.Telemetry

type t = {
  name : string;
  needs_leaders : bool;
  on_slot : Metrics.slot_record -> leaders:int -> unit;
  on_result : Metrics.result -> unit;
}

let nop_slot _ ~leaders:_ = ()
let nop_result _ = ()

let make ?(name = "anonymous") ?(needs_leaders = false) ?(on_slot = nop_slot)
    ?(on_result = nop_result) () =
  { name; needs_leaders; on_slot; on_result }

let of_on_slot f =
  { name = "on-slot"; needs_leaders = false; on_slot = (fun r ~leaders:_ -> f r);
    on_result = nop_result }

let compose observers =
  {
    name = "composite(" ^ String.concat "," (List.map (fun o -> o.name) observers) ^ ")";
    needs_leaders = List.exists (fun o -> o.needs_leaders) observers;
    on_slot =
      (fun r ~leaders -> List.iter (fun o -> o.on_slot r ~leaders) observers);
    on_result = (fun result -> List.iter (fun o -> o.on_result result) observers);
  }

let telemetry ?(prefix = "sim") tel =
  let c name = Telemetry.counter tel (prefix ^ "." ^ name) in
  let slots = c "slots" and jammed = c "jammed" in
  let nulls = c "null" and singles = c "single" and collisions = c "collision" in
  let runs = c "runs" and elected = c "elected" in
  let per_run = Telemetry.histogram tel (prefix ^ ".slots_per_run") in
  {
    name = "telemetry:" ^ prefix;
    needs_leaders = false;
    on_slot =
      (fun (r : Metrics.slot_record) ~leaders:_ ->
        Telemetry.incr slots;
        if r.Metrics.jammed then Telemetry.incr jammed;
        match r.Metrics.state with
        | Channel.Null -> Telemetry.incr nulls
        | Channel.Single -> Telemetry.incr singles
        | Channel.Collision -> Telemetry.incr collisions);
    on_result =
      (fun (result : Metrics.result) ->
        Telemetry.incr runs;
        if result.Metrics.elected then Telemetry.incr elected;
        Telemetry.observe per_run result.Metrics.slots);
  }
