(** Population-counting engine: O(#classes) per slot, independent of n.

    In a uniform-phase protocol (LESK, LESU, Estimation) every station
    in the same phase transmits with the same probability, so a slot's
    outcome law depends only on the {e population of each probability
    class}.  This engine tracks [(state, count)] classes instead of
    individual stations: each slot draws one exact
    Binomial([count], [p]) transmit count per class
    ({!Jamming_prng.Sample.binomial}), resolves the channel from the
    total, and splits every class into its transmitting and listening
    subgroups (which may perceive the slot differently under weak
    collision detection).  Equal resulting states are fused back into
    one class, so under [Strong_cd] a uniform protocol stays at exactly
    one class forever and a slot costs one binomial draw — election at
    n = 10⁹ runs in milliseconds.

    The binomial is a sufficient statistic for the per-class
    transmitter count, and the dispatcher behind
    {!Jamming_prng.Sample.binomial} is exact in every regime, so the
    joint law of the channel-state trajectory is {e identical} to the
    per-station engines' — per-station RNG streams necessarily differ,
    so agreement is distributional, not bitwise (differentially tested
    against [Engine.run] by KS in the suite).

    Like the uniform engine, no per-station arrays exist:
    [result.statuses] is [[||]], [max_station_transmissions] is [0],
    and the leader id is sampled uniformly (stations in a class are
    exchangeable, so the lone successful transmitter's identity is
    uniform over ids). *)

type 'c outcome =
  | Continue of 'c  (** keep running in (possibly new) state ['c] *)
  | Elected  (** station terminates this slot; its status follows
                 [Uniform.distributed]: Leader iff it transmitted *)

type 'c protocol = {
  name : string;
  init : 'c;  (** every station starts here *)
  tx_prob : 'c -> float;  (** transmit probability of the state *)
  step : 'c -> Jamming_channel.Channel.state -> 'c outcome;
      (** transition on the {e perceived} channel state; must be pure *)
  compare : 'c -> 'c -> int;
      (** total order on states; equal states are fused into one class,
          so it must identify states with identical future behaviour *)
}
(** A pure description of a uniform-phase protocol.  Unlike
    {!Jamming_station.Uniform.t} closures, a value of this type carries
    no hidden mutable state, so one description drives the whole
    population. *)

type packed = Packed : 'c protocol -> packed
(** Existential wrapper so heterogeneous protocols share one engine
    spec type. *)

val name : packed -> string

val run :
  ?start_slot:int ->
  ?energy:bool ->
  ?observers:Observer.t list ->
  ?cd:Jamming_channel.Channel.cd_model ->
  rng:Jamming_prng.Prng.t ->
  n:int ->
  protocol:'c protocol ->
  adversary:Jamming_adversary.Adversary.t ->
  budget:Jamming_adversary.Budget.t ->
  max_slots:int ->
  unit ->
  Metrics.result
(** Run an election over [n] stations ([n >= 1]) until every station
    terminates or [max_slots] is reached.  [completed] means the whole
    population terminated; [elected] additionally requires exactly one
    leader.  Observers see exact transmitter counts
    ([Metrics.Exact total]) and true leader counts every slot.

    [energy] attaches an [Energy.summary] to the result, built from
    one [(awake, count)] group per class-retirement event — cost
    independent of [n], and bit-exact against the exact engine's meter
    for the shipped protocols (stations retire in whole classes and
    never sleep).  The random streams are untouched either way. *)
