(** Per-run observations shared by both simulation engines. *)

type tx_count =
  | Exact of int  (** the engine counted exactly this many transmitters *)
  | At_least of int
      (** at least this many transmitted; the exact count was never
          sampled.  The uniform engine reports its [Many] trichotomy
          class as [At_least 2]: only the 0/1/≥2 class is drawn, so an
          exact count would be fabricated. *)

val tx_lower_bound : tx_count -> int
(** The smallest transmitter count consistent with the record. *)

val equal_tx_count : tx_count -> tx_count -> bool

val tx_count_to_string : tx_count -> string
(** ["2"] for [Exact 2], [">=2"] for [At_least 2]. *)

val pp_tx_count : Format.formatter -> tx_count -> unit

val tx_count_to_json : tx_count -> Jamming_telemetry.Json.t
(** [Exact k] as the bare int [k], [At_least k] as the string
    [">=k"]. *)

val tx_count_of_json : Jamming_telemetry.Json.t -> (tx_count, string) result
(** Exact inverse of {!tx_count_to_json}. *)

type slot_record = {
  slot : int;
  transmitters : tx_count;
      (** Honest transmitter count: [Exact] on the per-station engine,
          [Exact 0]/[Exact 1]/[At_least 2] on the uniform engine. *)
  jammed : bool;
  state : Jamming_channel.Channel.state;  (** true (post-jam) state *)
}

type result = {
  slots : int;  (** slots consumed (= election time when [completed]) *)
  completed : bool;  (** all stations terminated before [max_slots] *)
  elected : bool;  (** [completed] and exactly one station ended leader *)
  leader : int option;
      (** [Some] exactly when [elected]: a run that hits [max_slots]
          reports no leader even if one station happens to stand in
          status [Leader] at the cut-off *)
  statuses : Jamming_station.Station.status array;
      (** per-station statuses; empty for the uniform engine *)
  jammed_slots : int;
  nulls : int;
  singles : int;
  collisions : int;  (** counts of true states over the run *)
  transmissions : float;
      (** total transmissions: exact count (exact engine) or expectation
          [Σ n·p] (uniform engine) *)
  max_station_transmissions : int;
      (** exact engine only; 0 for the uniform engine *)
  energy : Jamming_energy.Energy.summary option;
      (** per-station awake/tx/listen/sleep accounting; [Some] only
          when the run was metered (engine [?meter] / [--energy]).
          Serialized as an optional ["energy"] member so unmetered
          records keep their historical JSON byte for byte and old
          records still decode. *)
}

val election_ok : result -> bool
(** Exactly one leader, everyone else non-leader, all terminated. *)

val equal_result : result -> result -> bool
(** Structural equality over every field (the bit-identity check used
    by the observer and fault-injection tests). *)

val result_to_json : result -> Jamming_telemetry.Json.t
(** Machine-readable form. [statuses] is [null] for the uniform
    engine's empty array, otherwise an object with per-status counts
    plus a ["packed"] string (one [L]/[N]/[U] character per station, in
    station order) that makes the encoding lossless; every other field
    maps one to one. Schema documented in DESIGN.md §9. *)

val result_of_json : Jamming_telemetry.Json.t -> (result, string) Stdlib.result
(** Exact inverse of {!result_to_json} (the run store's decoder):
    [result_of_json (result_to_json r)] reconstructs [r] field for
    field, floats included.  Any missing, ill-typed, or internally
    inconsistent field (e.g. statuses counts disagreeing with
    ["packed"]) is an [Error] — callers treat that as a cache miss. *)

val pp_result : Format.formatter -> result -> unit
