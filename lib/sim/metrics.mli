(** Per-run observations shared by both simulation engines. *)

type slot_record = {
  slot : int;
  transmitters : int;
      (** Honest transmitter count.  For the uniform engine this is the
          class representative (0, 1, or 2 for "at least two"): only the
          class is sampled, not the exact count. *)
  jammed : bool;
  state : Jamming_channel.Channel.state;  (** true (post-jam) state *)
}

type result = {
  slots : int;  (** slots consumed (= election time when [completed]) *)
  completed : bool;  (** all stations terminated before [max_slots] *)
  elected : bool;  (** [completed] and exactly one station ended leader *)
  leader : int option;
  statuses : Jamming_station.Station.status array;
      (** per-station statuses; empty for the uniform engine *)
  jammed_slots : int;
  nulls : int;
  singles : int;
  collisions : int;  (** counts of true states over the run *)
  transmissions : float;
      (** total transmissions: exact count (exact engine) or expectation
          [Σ n·p] (uniform engine) *)
  max_station_transmissions : int;
      (** exact engine only; 0 for the uniform engine *)
}

val election_ok : result -> bool
(** Exactly one leader, everyone else non-leader, all terminated. *)

val equal_result : result -> result -> bool
(** Structural equality over every field (the bit-identity check used
    by the observer and fault-injection tests). *)

val result_to_json : result -> Jamming_telemetry.Json.t
(** Machine-readable form. [statuses] is summarized as per-status
    counts ([null] for the uniform engine's empty array); every other
    field maps one to one. Schema documented in DESIGN.md §9. *)

val pp_result : Format.formatter -> result -> unit
