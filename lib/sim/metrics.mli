(** Per-run observations shared by both simulation engines. *)

type slot_record = {
  slot : int;
  transmitters : int;
      (** Honest transmitter count.  For the uniform engine this is the
          class representative (0, 1, or 2 for "at least two"): only the
          class is sampled, not the exact count. *)
  jammed : bool;
  state : Jamming_channel.Channel.state;  (** true (post-jam) state *)
}

type result = {
  slots : int;  (** slots consumed (= election time when [completed]) *)
  completed : bool;  (** all stations terminated before [max_slots] *)
  elected : bool;  (** [completed] and exactly one station ended leader *)
  leader : int option;
  statuses : Jamming_station.Station.status array;
      (** per-station statuses; empty for the uniform engine *)
  jammed_slots : int;
  nulls : int;
  singles : int;
  collisions : int;  (** counts of true states over the run *)
  transmissions : float;
      (** total transmissions: exact count (exact engine) or expectation
          [Σ n·p] (uniform engine) *)
  max_station_transmissions : int;
      (** exact engine only; 0 for the uniform engine *)
}

val election_ok : result -> bool
(** Exactly one leader, everyone else non-leader, all terminated. *)

val pp_result : Format.formatter -> result -> unit
