(** Online invariant monitor for the exact engine.

    Checks, {e every slot} while the simulation runs (rather than after
    the fact, as the soak harness used to):

    - {b jam-budget boundedness} — the executed jam pattern satisfies
      the (T, 1−ε) constraint for {e every} window of length ≥ T that
      has closed so far, via the same O(1)-amortised prefix-minimum
      accounting the {!Jamming_adversary.Budget} enforcer uses, but
      rebuilt independently so the monitor cross-checks the enforcer
      instead of trusting it;
    - {b slot-class consistency} — each slot record is internally
      consistent (a jammed slot reads [Collision]; a clear slot reads
      the transmitter-count trichotomy) and slot numbers advance by one;
    - {b at-most-one-leader} — no point in time ever has two stations
      in status [Leader].  (Exactly-one is a {e liveness} property
      checked at completion by {!Jamming_sim.Metrics.election_ok}; two
      simultaneous leaders is the safety violation.)

    A failed check raises {!Violation} carrying the offending slot, the
    failed invariant and the run's replay seed, so a soak harness can
    print a one-line reproduction recipe.

    Checks can be disabled individually: under injected lifecycle or
    perception faults the paper's election guarantee genuinely degrades
    (two stations may legitimately come to believe they won), so fault
    soaking runs with [at_most_one_leader = false] while the
    engine-level invariants stay on.

    {b Dynamic populations.}  One monitor can span a whole multi-election
    dynamic run ({!Jamming_sim.Dynamic}): the driver feeds simulated
    slots through {!slot_observer}, bridges fast-forwarded stable
    intervals with {!skip_to}, and raises driver-level invariants
    ({!Live_leader}: never two live leaders across epochs; {!Population}:
    arrival/departure accounting stays consistent) through {!report}, so
    churned violations carry the same replayable (seed, slot, check)
    shape as static ones. *)

type check =
  | Jam_budget
  | Slot_consistency
  | At_most_one_leader
  | Live_leader
      (** Dynamic runs: a new election must never start, nor complete,
          while a previous leader is still live. *)
  | Population
      (** Dynamic runs: arrival/departure bookkeeping broke (negative
          population, event applied at a non-monotone slot, …). *)

val check_to_string : check -> string

type checks = {
  jam_budget : bool;
  slot_consistency : bool;
  at_most_one_leader : bool;
}

val all_checks : checks
(** Everything on — the fault-free default. *)

val safety_checks : checks
(** [at_most_one_leader] off; for runs with injected faults. *)

type violation = {
  slot : int;  (** Slot at which the invariant broke. *)
  check : check;
  seed : int option;  (** Replay seed of the run, when known. *)
  detail : string;  (** Human-readable diagnosis. *)
}

exception Violation of violation

val pp_violation : Format.formatter -> violation -> unit
val violation_to_string : violation -> string

type t

val create : ?checks:checks -> ?seed:int -> window:int -> eps:float -> unit -> t
(** A fresh monitor for one run of a (window, 1−eps)-bounded adversary.
    Requires [window ≥ 1] and [0 < eps ≤ 1]. *)

val on_slot : t -> record:Metrics.slot_record -> leaders:int -> unit
(** Feed one resolved slot and the number of stations currently in
    status [Leader].  Raises {!Violation} on the first broken
    invariant. *)

val skip_to : t -> from:int -> upto:int -> leaders:int -> unit
(** Feed the idle slots [from, upto) of a fast-forwarded stable interval:
    each is an unjammed [Null] with zero transmitters (nobody transmits,
    the adversary is quiescent), keeping every tally — jam-budget
    prefixes, slot-class counters, expected slot numbers — coherent
    across the gap.  Requires [upto >= from]; raises {!Violation} on a
    slot-number mismatch with the preceding segment. *)

val report : t -> slot:int -> check:check -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise a {!Violation} for a driver-level invariant ({!Live_leader},
    {!Population}) through this monitor, so it carries the run's replay
    seed like every engine-level violation. *)

val check_result : t -> Metrics.result -> unit
(** End-of-run cross-check: the engine's aggregate counters
    (slots, nulls, singles, collisions, jammed) must equal the
    monitor's own tallies, and final statuses must contain at most one
    leader.  Raises {!Violation} on mismatch. *)

val observer : t -> Observer.t
(** The monitor as an {!Observer}: [on_slot] feeds slots, [on_result]
    runs {!check_result}. [needs_leaders] is set iff the
    at-most-one-leader check is on, so the exact engine only pays the
    per-slot leader scan when that invariant is being watched. This is
    the preferred way to attach a monitor; the engines' [?monitor]
    argument remains as a thin wrapper. *)

val slot_observer : t -> Observer.t
(** Like {!observer} but with [on_result] a no-op: a dynamic run spans
    several engine invocations, and per-segment results must not be
    mistaken for the whole run's totals.  The driver aggregates across
    segments and calls {!check_result} itself, once. *)

val slots_seen : t -> int
