let slots = Atomic.make 0
let runs = Atomic.make 0

let slots_simulated () = Atomic.get slots
let runs_completed () = Atomic.get runs

let note_run ~slots:n =
  ignore (Atomic.fetch_and_add slots n);
  ignore (Atomic.fetch_and_add runs 1)
