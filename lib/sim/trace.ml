type t = {
  capacity : int;
  buffer : Metrics.slot_record option array;
  mutable next : int;  (* total records ever written *)
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be >= 1";
  { capacity; buffer = Array.make capacity None; next = 0 }

let record t r =
  t.buffer.(t.next mod t.capacity) <- Some r;
  t.next <- t.next + 1

let recorded t = t.next
let capacity t = t.capacity

let to_list t =
  let stored = Int.min t.next t.capacity in
  let first = t.next - stored in
  List.init stored (fun i ->
      match t.buffer.((first + i) mod t.capacity) with
      | Some r -> r
      | None -> assert false)

let pp_record ppf (r : Metrics.slot_record) =
  let tx =
    match r.Metrics.transmitters with
    | Metrics.Exact k -> Printf.sprintf "tx=%d" k
    | Metrics.At_least k -> Printf.sprintf "tx>=%d" k
  in
  Format.fprintf ppf "slot %6d  %s%s  %a" r.Metrics.slot tx
    (if r.Metrics.jammed then " JAM" else "")
    Jamming_channel.Channel.pp_state r.Metrics.state

let pp ppf t =
  let stored = to_list t in
  let dropped = recorded t - List.length stored in
  if dropped > 0 then Format.fprintf ppf "... (%d earlier slots dropped)@." dropped;
  List.iter (fun r -> Format.fprintf ppf "%a@." pp_record r) stored

(* Summaries over whatever is retained. *)
let count_state t state =
  List.fold_left
    (fun acc (r : Metrics.slot_record) ->
      if Jamming_channel.Channel.equal_state r.Metrics.state state then acc + 1 else acc)
    0 (to_list t)

let count_jammed t =
  List.fold_left
    (fun acc (r : Metrics.slot_record) -> if r.Metrics.jammed then acc + 1 else acc)
    0 (to_list t)

let observer t =
  {
    Observer.name = "trace";
    needs_leaders = false;
    on_slot = (fun r ~leaders:_ -> record t r);
    on_result = (fun _ -> ());
  }
