module Channel = Jamming_channel.Channel
module Adversary = Jamming_adversary.Adversary
module Budget = Jamming_adversary.Budget
module Uniform = Jamming_station.Uniform
module Sample = Jamming_prng.Sample
module Prng = Jamming_prng.Prng

let run ?(start_slot = 0) ?(energy = false) ?(observers = []) ~n ~rng ~protocol
    ~adversary ~budget ~max_slots () =
  if n < 1 then invalid_arg "Uniform_engine.run: need n >= 1";
  let obs = Array.of_list observers in
  let observed = Array.length obs > 0 in
  let jammed_slots = ref 0 in
  let nulls = ref 0 and singles = ref 0 and collisions = ref 0 in
  let transmissions = ref 0.0 in
  let slot = ref 0 in
  let elected = ref false in
  while (not !elected) && !slot < max_slots do
    let t = start_slot + !slot in
    let can_jam = Budget.can_jam budget in
    let jam = can_jam && adversary.Adversary.wants_jam ~slot:t ~can_jam in
    Budget.advance budget ~jam;
    let p = protocol.Uniform.tx_prob () in
    if not (p >= 0.0 && p <= 1.0) then
      invalid_arg "Uniform_engine.run: protocol emitted a probability outside [0, 1]";
    transmissions := !transmissions +. (float_of_int n *. p);
    let class_ = Sample.trichotomy rng ~n ~p in
    let transmitters =
      match class_ with Sample.Zero -> 0 | Sample.One -> 1 | Sample.Many -> 2
    in
    let state = Channel.resolve ~transmitters ~jammed:jam in
    if jam then incr jammed_slots;
    (match state with
    | Channel.Null -> incr nulls
    | Channel.Single -> incr singles
    | Channel.Collision -> incr collisions);
    (match protocol.Uniform.on_state state with
    | Uniform.Continue -> ()
    | Uniform.Elected -> elected := true);
    adversary.Adversary.notify ~slot:t ~jammed:jam ~state;
    if observed then begin
      (* Per-station statuses don't exist on this engine, so the leader
         count is reported as unknown (-1).  The Many class only pins
         the count to "at least two" — the exact count is never
         sampled, and the record says so instead of fabricating 2. *)
      let tx =
        match class_ with
        | Sample.Zero | Sample.One -> Metrics.Exact transmitters
        | Sample.Many -> Metrics.At_least 2
      in
      let record = { Metrics.slot = t; transmitters = tx; jammed = jam; state } in
      Array.iter (fun o -> o.Observer.on_slot record ~leaders:(-1)) obs
    end;
    incr slot
  done;
  let result =
    {
      Metrics.slots = !slot;
      completed = !elected;
      elected = !elected;
      leader = (if !elected then Some (Prng.int rng ~bound:n) else None);
      statuses = [||];
      jammed_slots = !jammed_slots;
      nulls = !nulls;
      singles = !singles;
      collisions = !collisions;
      transmissions = !transmissions;
      max_station_transmissions = 0;
      (* Uniform protocols never sleep: every station is awake for the
         whole run, and the transmission total is the accumulated
         expectation, so the summary is O(1) to synthesize. *)
      energy =
        (if energy then
           Some (Jamming_energy.Energy.all_awake ~n ~slots:!slot ~tx_total:!transmissions)
         else None);
    }
  in
  Gauges.note_run ~slots:!slot;
  Array.iter (fun o -> o.Observer.on_result result) obs;
  result
