(** Process-wide simulation odometers.

    Both engines tick these atomic counters at the end of every run,
    whatever path the run was started through (runner, experiment, core
    extension, test). Harnesses read deltas around a workload to report
    total slots simulated and slots/second — the currency of the
    repo's perf trajectory ([BENCH_<date>.json]) — without having to
    thread a sink through every call chain.

    Safe under OCaml 5 domains (atomic increments commute, so totals
    are independent of [jobs]); cost is two atomic adds per {e run},
    nothing per slot. *)

val slots_simulated : unit -> int
(** Total slots simulated by this process so far. *)

val runs_completed : unit -> int
(** Total engine runs finished by this process so far. *)

val note_run : slots:int -> unit
(** Engine-internal: account one finished run of [slots] slots. *)
