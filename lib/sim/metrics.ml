module Station = Jamming_station.Station
module Json = Jamming_telemetry.Json

type tx_count = Exact of int | At_least of int

let tx_lower_bound = function Exact k | At_least k -> k

let equal_tx_count a b =
  match a, b with
  | Exact x, Exact y | At_least x, At_least y -> x = y
  | (Exact _ | At_least _), _ -> false

let tx_count_to_string = function
  | Exact k -> string_of_int k
  | At_least k -> ">=" ^ string_of_int k

let pp_tx_count ppf tx = Format.pp_print_string ppf (tx_count_to_string tx)

let tx_count_to_json = function
  | Exact k -> Json.Int k
  | At_least k -> Json.String (">=" ^ string_of_int k)

let tx_count_of_json = function
  | Json.Int k -> Ok (Exact k)
  | Json.String s when String.length s > 2 && String.sub s 0 2 = ">=" -> (
      match int_of_string_opt (String.sub s 2 (String.length s - 2)) with
      | Some k -> Ok (At_least k)
      | None -> Error "tx_count: malformed \">=k\"")
  | _ -> Error "tx_count: expected an int or a \">=k\" string"

type slot_record = {
  slot : int;
  transmitters : tx_count;
  jammed : bool;
  state : Jamming_channel.Channel.state;
}

type result = {
  slots : int;
  completed : bool;
  elected : bool;
  leader : int option;
  statuses : Station.status array;
  jammed_slots : int;
  nulls : int;
  singles : int;
  collisions : int;
  transmissions : float;
  max_station_transmissions : int;
  energy : Jamming_energy.Energy.summary option;
}

let election_ok r =
  r.completed
  &&
  match r.statuses with
  | [||] -> r.elected
  | statuses ->
      let leaders = ref 0 and others = ref 0 in
      Array.iter
        (fun st ->
          match st with
          | Station.Leader -> incr leaders
          | Station.Non_leader -> incr others
          | Station.Undecided -> ())
        statuses;
      !leaders = 1 && !leaders + !others = Array.length statuses

let equal_result a b =
  a.slots = b.slots && a.completed = b.completed && a.elected = b.elected
  && a.leader = b.leader
  && a.statuses = b.statuses
  && a.jammed_slots = b.jammed_slots
  && a.nulls = b.nulls && a.singles = b.singles && a.collisions = b.collisions
  && a.transmissions = b.transmissions
  && a.max_station_transmissions = b.max_station_transmissions
  && Option.equal Jamming_energy.Energy.equal_summary a.energy b.energy

let status_to_char = function
  | Station.Leader -> 'L'
  | Station.Non_leader -> 'N'
  | Station.Undecided -> 'U'

let status_of_char = function
  | 'L' -> Some Station.Leader
  | 'N' -> Some Station.Non_leader
  | 'U' -> Some Station.Undecided
  | _ -> None

let result_to_json r =
  let leaders = ref 0 and non_leaders = ref 0 and undecided = ref 0 in
  Array.iter
    (fun st ->
      match st with
      | Station.Leader -> incr leaders
      | Station.Non_leader -> incr non_leaders
      | Station.Undecided -> incr undecided)
    r.statuses;
  Json.Obj
    ([
       ("slots", Json.Int r.slots);
      ("completed", Json.Bool r.completed);
      ("elected", Json.Bool r.elected);
      ("leader", match r.leader with Some i -> Json.Int i | None -> Json.Null);
      ( "statuses",
        if r.statuses = [||] then Json.Null
        else
          Json.Obj
            [
              ("leader", Json.Int !leaders);
              ("non_leader", Json.Int !non_leaders);
              ("undecided", Json.Int !undecided);
              ( "packed",
                Json.String
                  (String.init (Array.length r.statuses) (fun i ->
                       status_to_char r.statuses.(i))) );
            ] );
      ("jammed_slots", Json.Int r.jammed_slots);
      ("nulls", Json.Int r.nulls);
      ("singles", Json.Int r.singles);
      ("collisions", Json.Int r.collisions);
      ("transmissions", Json.Float r.transmissions);
      ("max_station_transmissions", Json.Int r.max_station_transmissions);
    ]
    @
    (* Appended only when present, so unmetered records keep their
       historical byte-exact rendering. *)
    match r.energy with
    | None -> []
    | Some s -> [ ("energy", Jamming_energy.Energy.summary_to_json s) ])

let result_of_json j =
  let ( let* ) = Result.bind in
  let field name =
    match Json.member name j with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "result: missing field %S" name)
  in
  let int name =
    let* v = field name in
    match Json.to_int_opt v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "result: %S is not an int" name)
  in
  let boolean name =
    let* v = field name in
    match v with
    | Json.Bool b -> Ok b
    | _ -> Error (Printf.sprintf "result: %S is not a bool" name)
  in
  let* slots = int "slots" in
  let* completed = boolean "completed" in
  let* elected = boolean "elected" in
  let* leader =
    let* v = field "leader" in
    match v with
    | Json.Null -> Ok None
    | Json.Int i -> Ok (Some i)
    | _ -> Error "result: \"leader\" is not null or an int"
  in
  let* statuses =
    let* v = field "statuses" in
    match v with
    | Json.Null -> Ok [||]
    | Json.Obj _ as o -> (
        match Json.member "packed" o with
        | Some (Json.String packed) -> (
            let decode () =
              Array.init (String.length packed) (fun i ->
                  match status_of_char packed.[i] with
                  | Some st -> st
                  | None -> raise Exit)
            in
            match decode () with
            | statuses ->
                (* Counts are redundant with [packed]; a mismatch means
                   a corrupt record, which the store must treat as a
                   miss. *)
                let count st =
                  Array.fold_left
                    (fun acc s -> if s = st then acc + 1 else acc)
                    0 statuses
                in
                let matches name st =
                  Option.bind (Json.member name o) Json.to_int_opt = Some (count st)
                in
                if
                  matches "leader" Station.Leader
                  && matches "non_leader" Station.Non_leader
                  && matches "undecided" Station.Undecided
                then Ok statuses
                else Error "result: statuses counts disagree with \"packed\""
            | exception Exit -> Error "result: bad character in \"packed\"")
        | _ -> Error "result: statuses object lacks a \"packed\" string")
    | _ -> Error "result: \"statuses\" is not null or an object"
  in
  let* jammed_slots = int "jammed_slots" in
  let* nulls = int "nulls" in
  let* singles = int "singles" in
  let* collisions = int "collisions" in
  let* transmissions =
    let* v = field "transmissions" in
    match Json.to_float_opt v with
    | Some f -> Ok f
    | None -> Error "result: \"transmissions\" is not a number"
  in
  let* max_station_transmissions = int "max_station_transmissions" in
  (* Absent means "run was not metered" — records written before the
     energy block existed must keep decoding. *)
  let* energy =
    match Json.member "energy" j with
    | None -> Ok None
    | Some v -> (
        match Jamming_energy.Energy.summary_of_json v with
        | Ok s -> Ok (Some s)
        | Error e -> Error ("result: " ^ e))
  in
  Ok
    {
      slots;
      completed;
      elected;
      leader;
      statuses;
      jammed_slots;
      nulls;
      singles;
      collisions;
      transmissions;
      max_station_transmissions;
      energy;
    }

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>slots: %d%s@ leader: %s@ jammed: %d  null: %d  single: %d  collision: %d@ \
     transmissions: %.1f@]"
    r.slots
    (if r.completed then "" else " (hit max_slots)")
    (match r.leader with Some id -> string_of_int id | None -> "none")
    r.jammed_slots r.nulls r.singles r.collisions r.transmissions
