module Station = Jamming_station.Station

type slot_record = {
  slot : int;
  transmitters : int;
  jammed : bool;
  state : Jamming_channel.Channel.state;
}

type result = {
  slots : int;
  completed : bool;
  elected : bool;
  leader : int option;
  statuses : Station.status array;
  jammed_slots : int;
  nulls : int;
  singles : int;
  collisions : int;
  transmissions : float;
  max_station_transmissions : int;
}

let election_ok r =
  r.completed
  &&
  match r.statuses with
  | [||] -> r.elected
  | statuses ->
      let leaders = ref 0 and others = ref 0 in
      Array.iter
        (fun st ->
          match st with
          | Station.Leader -> incr leaders
          | Station.Non_leader -> incr others
          | Station.Undecided -> ())
        statuses;
      !leaders = 1 && !leaders + !others = Array.length statuses

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>slots: %d%s@ leader: %s@ jammed: %d  null: %d  single: %d  collision: %d@ \
     transmissions: %.1f@]"
    r.slots
    (if r.completed then "" else " (hit max_slots)")
    (match r.leader with Some id -> string_of_int id | None -> "none")
    r.jammed_slots r.nulls r.singles r.collisions r.transmissions
