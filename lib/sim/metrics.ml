module Station = Jamming_station.Station

type tx_count = Exact of int | At_least of int

let tx_lower_bound = function Exact k | At_least k -> k

let equal_tx_count a b =
  match a, b with
  | Exact x, Exact y | At_least x, At_least y -> x = y
  | (Exact _ | At_least _), _ -> false

let tx_count_to_string = function
  | Exact k -> string_of_int k
  | At_least k -> ">=" ^ string_of_int k

let pp_tx_count ppf tx = Format.pp_print_string ppf (tx_count_to_string tx)

type slot_record = {
  slot : int;
  transmitters : tx_count;
  jammed : bool;
  state : Jamming_channel.Channel.state;
}

type result = {
  slots : int;
  completed : bool;
  elected : bool;
  leader : int option;
  statuses : Station.status array;
  jammed_slots : int;
  nulls : int;
  singles : int;
  collisions : int;
  transmissions : float;
  max_station_transmissions : int;
}

let election_ok r =
  r.completed
  &&
  match r.statuses with
  | [||] -> r.elected
  | statuses ->
      let leaders = ref 0 and others = ref 0 in
      Array.iter
        (fun st ->
          match st with
          | Station.Leader -> incr leaders
          | Station.Non_leader -> incr others
          | Station.Undecided -> ())
        statuses;
      !leaders = 1 && !leaders + !others = Array.length statuses

let equal_result a b =
  a.slots = b.slots && a.completed = b.completed && a.elected = b.elected
  && a.leader = b.leader
  && a.statuses = b.statuses
  && a.jammed_slots = b.jammed_slots
  && a.nulls = b.nulls && a.singles = b.singles && a.collisions = b.collisions
  && a.transmissions = b.transmissions
  && a.max_station_transmissions = b.max_station_transmissions

let result_to_json r =
  let module Json = Jamming_telemetry.Json in
  let leaders = ref 0 and non_leaders = ref 0 and undecided = ref 0 in
  Array.iter
    (fun st ->
      match st with
      | Station.Leader -> incr leaders
      | Station.Non_leader -> incr non_leaders
      | Station.Undecided -> incr undecided)
    r.statuses;
  Json.Obj
    [
      ("slots", Json.Int r.slots);
      ("completed", Json.Bool r.completed);
      ("elected", Json.Bool r.elected);
      ("leader", match r.leader with Some i -> Json.Int i | None -> Json.Null);
      ( "statuses",
        if r.statuses = [||] then Json.Null
        else
          Json.Obj
            [
              ("leader", Json.Int !leaders);
              ("non_leader", Json.Int !non_leaders);
              ("undecided", Json.Int !undecided);
            ] );
      ("jammed_slots", Json.Int r.jammed_slots);
      ("nulls", Json.Int r.nulls);
      ("singles", Json.Int r.singles);
      ("collisions", Json.Int r.collisions);
      ("transmissions", Json.Float r.transmissions);
      ("max_station_transmissions", Json.Int r.max_station_transmissions);
    ]

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>slots: %d%s@ leader: %s@ jammed: %d  null: %d  single: %d  collision: %d@ \
     transmissions: %.1f@]"
    r.slots
    (if r.completed then "" else " (hit max_slots)")
    (match r.leader with Some id -> string_of_int id | None -> "none")
    r.jammed_slots r.nulls r.singles r.collisions r.transmissions
