(** First-class simulation observers.

    An observer is the composable successor of the engines' single
    [?on_slot] callback: any number of observers — a {!Trace} ring
    buffer, the invariant {!Monitor}, a telemetry probe, ad-hoc user
    callbacks — can watch one simulation side by side. Both engines
    accept an [?observers] list and notify it in list order, once per
    resolved slot and once on the final result.

    Observers are passive: they never touch the random streams, so a
    run with any combination of observers attached is bit-identical to
    the same run with none (asserted in the test suite). When no
    observer is attached the engines skip building slot records
    entirely, so the idle cost is one length check per slot. *)

type t = {
  name : string;  (** For diagnostics; not interpreted. *)
  needs_leaders : bool;
      (** Ask the exact engine to count stations in status [Leader]
          every slot (an O(n) scan, done once per slot no matter how
          many observers ask). Observers that leave this [false] still
          see the count when another observer requested it. *)
  on_slot : Metrics.slot_record -> leaders:int -> unit;
      (** Called after every resolved slot. [leaders] is the current
          number of stations in status [Leader], or [-1] when unknown
          (uniform engine, or no observer set [needs_leaders]). *)
  on_result : Metrics.result -> unit;
      (** Called once with the final metrics, before the engine
          returns them. *)
}

val make :
  ?name:string ->
  ?needs_leaders:bool ->
  ?on_slot:(Metrics.slot_record -> leaders:int -> unit) ->
  ?on_result:(Metrics.result -> unit) ->
  unit ->
  t
(** Defaults: ["anonymous"], [false], and no-ops. *)

val of_on_slot : (Metrics.slot_record -> unit) -> t
(** Wrap a legacy [?on_slot] callback (ignores the leader count). *)

val compose : t list -> t
(** One observer that forwards to each in list order; [needs_leaders]
    is the disjunction. [compose []] observes nothing. *)

val telemetry : ?prefix:string -> Jamming_telemetry.Telemetry.t -> t
(** A per-slot metrics probe. Under [prefix] (default ["sim"]) it
    maintains counters [<prefix>.slots], [<prefix>.jammed],
    [<prefix>.null], [<prefix>.single], [<prefix>.collision],
    [<prefix>.runs], [<prefix>.elected], and histogram
    [<prefix>.slots_per_run]. On a disabled sink every callback is a
    dead store, preserving the bit-identity guarantee at ~zero cost. *)
