(** O(1)-per-slot simulation of uniform protocols in strong-CD.

    All [n] stations transmit with one common probability, so the channel
    state is sampled directly from the exact transmitter-count trichotomy
    ({!Jamming_prng.Sample.trichotomy}).  This is what makes the paper's
    scaling experiments (n up to 2²⁰) feasible; the exact engine
    cross-validates it at small [n] (see test suite E-ablation). *)

val run :
  ?start_slot:int ->
  ?energy:bool ->
  ?observers:Observer.t list ->
  n:int ->
  rng:Jamming_prng.Prng.t ->
  protocol:Jamming_station.Uniform.t ->
  adversary:Jamming_adversary.Adversary.t ->
  budget:Jamming_adversary.Budget.t ->
  max_slots:int ->
  unit ->
  Metrics.result
(** Runs until the protocol reports [Elected] or [max_slots] elapse.
    Stations flip their coins whether or not the slot is jammed (as in
    the exact engine), but a jammed slot always resolves to [Collision].
    The leader, when elected, is a uniformly random station id.
    [result.transmissions] is the expectation [Σ_slots n·p], and
    [result.statuses] is empty.

    [observers] are notified after every slot and once with the final
    result; this engine has no per-station statuses, so the leader
    count is always reported as [-1] (unknown) — a {!Monitor} attached
    here checks everything except at-most-one-leader.  Observers never
    touch the random stream: results are bit-identical with or without
    them.  A bare per-slot callback belongs in [observers], wrapped
    with {!Observer.of_on_slot}.

    [energy] attaches an O(1) synthesized [Energy.summary]: uniform
    stations never sleep, so all [n] are awake every slot and
    [tx_total] is the expectation the engine already accumulates.  The
    random stream is untouched either way. *)
