(** O(1)-per-slot simulation of uniform protocols in strong-CD.

    All [n] stations transmit with one common probability, so the channel
    state is sampled directly from the exact transmitter-count trichotomy
    ({!Jamming_prng.Sample.trichotomy}).  This is what makes the paper's
    scaling experiments (n up to 2²⁰) feasible; the exact engine
    cross-validates it at small [n] (see test suite E-ablation). *)

val run :
  ?on_slot:(Metrics.slot_record -> unit) ->
  ?start_slot:int ->
  n:int ->
  rng:Jamming_prng.Prng.t ->
  protocol:Jamming_station.Uniform.t ->
  adversary:Jamming_adversary.Adversary.t ->
  budget:Jamming_adversary.Budget.t ->
  max_slots:int ->
  unit ->
  Metrics.result
(** Runs until the protocol reports [Elected] or [max_slots] elapse.
    Stations flip their coins whether or not the slot is jammed (as in
    the exact engine), but a jammed slot always resolves to [Collision].
    The leader, when elected, is a uniformly random station id.
    [result.transmissions] is the expectation [Σ_slots n·p], and
    [result.statuses] is empty. *)
