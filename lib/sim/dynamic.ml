module Channel = Jamming_channel.Channel
module Adversary = Jamming_adversary.Adversary
module Budget = Jamming_adversary.Budget
module Station = Jamming_station.Station
module Prng = Jamming_prng.Prng
module Churn = Jamming_faults.Churn
module Injection = Jamming_faults.Injection
module Json = Jamming_telemetry.Json

type epoch = {
  start_slot : int;
  population : int;
  attempt : Metrics.result;
  leader : int option;
}

type result = {
  total_slots : int;
  simulated_slots : int;
  elections_completed : int;
  elections_failed : int;
  re_elections : int;
  arrivals : int;
  departures : int;
  leader_kills : int;
  leaderless_slots : int;
  leaderless_intervals : int list;
  epochs : epoch list;
  final_population : int;
  final_leader : int option;
}

let empty_attempt =
  {
    Metrics.slots = 0;
    completed = false;
    elected = false;
    leader = None;
    statuses = [||];
    jammed_slots = 0;
    nulls = 0;
    singles = 0;
    collisions = 0;
    transmissions = 0.0;
    max_station_transmissions = 0;
    energy = None;
  }

(* Merge two consecutive segments of one attempt.  Completion fields
   come from the later segment; [max_station_transmissions] is the max
   of per-segment maxima (a lower bound on the true per-incarnation
   total, since segments do not track per-station ids). *)
let merge_segments (a : Metrics.result) (b : Metrics.result) =
  {
    Metrics.slots = a.Metrics.slots + b.Metrics.slots;
    completed = b.Metrics.completed;
    elected = b.Metrics.elected;
    leader = b.Metrics.leader;
    statuses = b.Metrics.statuses;
    jammed_slots = a.Metrics.jammed_slots + b.Metrics.jammed_slots;
    nulls = a.Metrics.nulls + b.Metrics.nulls;
    singles = a.Metrics.singles + b.Metrics.singles;
    collisions = a.Metrics.collisions + b.Metrics.collisions;
    transmissions = a.Metrics.transmissions +. b.Metrics.transmissions;
    max_station_transmissions =
      Int.max a.Metrics.max_station_transmissions b.Metrics.max_station_transmissions;
    (* Churn runs are not metered: segments cannot attribute awake slots
       across incarnations (Runner rejects energy + churn). *)
    energy = None;
  }

let of_static (r : Metrics.result) =
  let n = Array.length r.Metrics.statuses in
  let ok = r.Metrics.elected in
  {
    total_slots = r.Metrics.slots;
    simulated_slots = r.Metrics.slots;
    elections_completed = (if ok then 1 else 0);
    elections_failed = (if ok then 0 else 1);
    re_elections = 0;
    arrivals = 0;
    departures = 0;
    leader_kills = 0;
    leaderless_slots = r.Metrics.slots;
    leaderless_intervals = (if r.Metrics.slots > 0 then [ r.Metrics.slots ] else []);
    epochs = [ { start_slot = 0; population = n; attempt = r; leader = r.Metrics.leader } ];
    final_population = n;
    final_leader = r.Metrics.leader;
  }

(* The driver's population state machine:
   - [Electing]: an election attempt is in flight; every live station
     has a running closure and the engine simulates them in segments
     capped at the next churn event.
   - [Stable]: an election completed; the leader and its followers are
     pure bookkeeping (no closures run, the channel is idle) until the
     next event.
   - [Empty]: nobody is alive; time fast-forwards to the next arrival. *)
type attempt_state = {
  start : int;
  att_population : int;
  deadline : int option;
  mutable gids : int array;
  mutable stations : Station.t array;
  mutable acc : Metrics.result option;
}

type mode =
  | Empty
  | Stable of { leader : int; others : int list }
  | Electing of attempt_state

let run ?restart_after ?(events = []) ?kill ?victim_rng ?faults ?monitor ?(observers = [])
    ~cd ~adversary ~budget ~max_slots ~init ~spawn () =
  if init < 0 then invalid_arg "Dynamic.run: init must be >= 0";
  if max_slots < 0 then invalid_arg "Dynamic.run: max_slots must be >= 0";
  (match restart_after with
  | Some r when r < 1 -> invalid_arg "Dynamic.run: restart_after must be >= 1"
  | Some _ | None -> ());
  Churn.validate (Churn.Oblivious events);
  (match kill with
  | Some (grace, kills) when grace < 0 || kills < 0 ->
      invalid_arg "Dynamic.run: kill grace and count must be >= 0"
  | Some _ | None -> ());
  let grace = match kill with Some (g, _) -> g | None -> 0 in
  let kills_left = ref (match kill with Some (_, k) -> k | None -> 0) in
  (* Per-segment observers: the monitor spans the whole run, so segment
     results must not reach [check_result]; likewise user observers hear
     [on_result] once, at the end, with the aggregate. *)
  let neuter o = { o with Observer.on_result = (fun _ -> ()) } in
  let seg_obs =
    (match monitor with Some m -> [ Monitor.slot_observer m ] | None -> [])
    @ List.map neuter observers
  in
  let violate ~slot ~check msg =
    match monitor with
    | Some m -> Monitor.report m ~slot ~check "%s" msg
    | None -> raise (Monitor.Violation { Monitor.slot; check; seed = None; detail = msg })
  in
  (* --- run state --- *)
  let now = ref 0 in
  let simulated = ref 0 in
  let mode = ref Empty in
  let pending = ref events in
  let pending_kill = ref None in
  let pending_joins = ref init in
  let next_id = ref 0 in
  let born = ref 0 in
  let completed_n = ref 0 and failed_n = ref 0 and re_elections = ref 0 in
  let arrivals = ref 0 and departures = ref 0 and kills_done = ref 0 in
  let epochs = ref [] in
  let leaderless = ref 0 and intervals = ref [] in
  let ll_open = ref None in
  let agg_jams = ref 0 and agg_nulls = ref 0 and agg_singles = ref 0 in
  let agg_collisions = ref 0 and agg_tx = ref 0.0 and agg_max_tx = ref 0 in
  let open_ll () = if !ll_open = None then ll_open := Some !now in
  let close_ll () =
    match !ll_open with
    | None -> ()
    | Some since ->
        ll_open := None;
        let len = !now - since in
        if len > 0 then begin
          leaderless := !leaderless + len;
          intervals := len :: !intervals
        end
  in
  let fresh_gid () =
    let g = !next_id in
    incr next_id;
    incr born;
    g
  in
  (* Idle wall-clock: nobody transmits and the adversary is quiescent,
     so each slot is an unjammed Null.  The budget still advances (its
     headroom recovers, which favours the adversary later) and the
     monitor's tallies stay coherent across the gap. *)
  let gap_advance ~upto ~leaders =
    let from = !now in
    if upto > from then begin
      for _ = 1 to upto - from do
        Budget.advance budget ~jam:false
      done;
      (match monitor with
      | Some m -> Monitor.skip_to m ~from ~upto ~leaders
      | None -> ());
      agg_nulls := !agg_nulls + (upto - from);
      now := upto
    end
  in
  let start_attempt ~members =
    (match !mode with
    | Stable { leader; _ } ->
        violate ~slot:!now ~check:Monitor.Live_leader
          (Printf.sprintf "election starting while leader %d is still live" leader)
    | Empty | Electing _ -> ());
    let joined = ref [] in
    for _ = 1 to !pending_joins do
      joined := fresh_gid () :: !joined
    done;
    pending_joins := 0;
    let gids = members @ List.rev !joined in
    if gids = [] then mode := Empty
    else begin
      open_ll ();
      let birth = !now in
      let gids = Array.of_list gids in
      let n = Array.length gids in
      (* Spawn in gid order with an explicit loop: the spawn callback
         typically splits a shared random stream per station, so the
         call order is part of the reproducibility contract. *)
      let stations = ref [] in
      for i = 0 to n - 1 do
        stations := spawn ~birth ~id:gids.(i) :: !stations
      done;
      let stations = Array.of_list (List.rev !stations) in
      mode :=
        Electing
          {
            start = birth;
            att_population = n;
            deadline = Option.map (fun r -> birth + r) restart_after;
            gids;
            stations;
            acc = None;
          }
    end
  in
  let record_epoch ~(e : int * int * Metrics.result) ~leader =
    let start_slot, population, attempt = e in
    epochs := { start_slot; population; attempt; leader } :: !epochs
  in
  let remove_index arr i =
    let n = Array.length arr in
    Array.append (Array.sub arr 0 i) (Array.sub arr (i + 1) (n - i - 1))
  in
  let pick_victim ~pool_size =
    if pool_size = 1 then 0
    else
      match victim_rng with
      | Some rng -> Prng.int rng ~bound:pool_size
      | None ->
          invalid_arg
            "Dynamic.run: a departure must pick among several stations but no victim_rng \
             was given"
  in
  (* Crash-stop one member of the in-flight attempt: it simply stops
     being simulated, exactly as if it had crashed (its closure is
     dropped; the remaining stations keep their order and streams). *)
  let leave_electing e =
    let n = Array.length e.gids in
    if n > 0 then begin
      let i = pick_victim ~pool_size:n in
      e.gids <- remove_index e.gids i;
      e.stations <- remove_index e.stations i;
      incr departures;
      if Array.length e.gids = 0 then begin
        (* The attempt can never complete: everyone left. *)
        incr failed_n;
        record_epoch
          ~e:(e.start, e.att_population, Option.value e.acc ~default:empty_attempt)
          ~leader:None;
        mode := Empty;
        close_ll ()
      end
    end
  in
  let leader_died ~survivors =
    incr departures;
    pending_kill := None;
    incr re_elections;
    mode := Empty;
    start_attempt ~members:survivors
  in
  let apply_event { Churn.at = _; kind } =
    match kind with
    | Churn.Join k -> (
        arrivals := !arrivals + k;
        match !mode with
        | Stable s ->
            (* Adopt the live leader silently: the joiners become
               followers with no running closure. *)
            let joined = ref [] in
            for _ = 1 to k do
              joined := fresh_gid () :: !joined
            done;
            mode := Stable { s with others = s.others @ List.rev !joined }
        | Electing _ ->
            (* Defer to the next election boundary: an election in
               flight is never infiltrated mid-protocol. *)
            pending_joins := !pending_joins + k
        | Empty ->
            pending_joins := !pending_joins + k;
            start_attempt ~members:[])
    | Churn.Leave victim -> (
        match !mode, victim with
        | Empty, _ -> ()
        | Stable { leader; others }, Churn.Leader -> ignore leader; leader_died ~survivors:others
        | Stable s, Churn.Member ->
            (* Leaders leave only via [Leave Leader]. *)
            let pool = Array.of_list s.others in
            if Array.length pool > 0 then begin
              let i = pick_victim ~pool_size:(Array.length pool) in
              incr departures;
              mode := Stable { s with others = Array.to_list (remove_index pool i) }
            end
        | Electing e, (Churn.Member | Churn.Leader) ->
            (* Leaderless: [Leave Leader] degrades to a member leave. *)
            leave_electing e)
  in
  let apply_kill () =
    match !mode with
    | Stable { leader; others } ->
        ignore leader;
        incr kills_done;
        decr kills_left;
        leader_died ~survivors:others
    | Empty | Electing _ ->
        (* The target died by other means before the kill landed. *)
        ()
  in
  let apply_due_events () =
    let continue = ref true in
    while !continue do
      match !pending with
      | ev :: tl when ev.Churn.at <= !now ->
          pending := tl;
          apply_event ev
      | _ -> (
          match !pending_kill with
          | Some s when s <= !now ->
              pending_kill := None;
              apply_kill ()
          | Some _ | None -> continue := false)
    done
  in
  let next_boundary () =
    let evt = match !pending with ev :: _ -> Some ev.Churn.at | [] -> None in
    match evt, !pending_kill with
    | None, None -> None
    | Some a, None | None, Some a -> Some a
    | Some a, Some b -> Some (Int.min a b)
  in
  let finish_attempt_failed start population acc gids_list =
    incr failed_n;
    record_epoch ~e:(start, population, acc) ~leader:None;
    (* Zero-slot failures (every incarnation born finished) would
       otherwise restart forever at the same slot: burn one idle slot
       so restarts are bounded by [max_slots]. *)
    if acc.Metrics.slots = 0 && !now < max_slots then
      gap_advance ~upto:(!now + 1) ~leaders:0;
    mode := Empty;
    start_attempt ~members:gids_list
  in
  let run_segment (e : attempt_state) =
    let boundary =
      let b = max_slots in
      let b = match e.deadline with Some d -> Int.min b d | None -> b in
      match !pending with ev :: _ -> Int.min b ev.Churn.at | [] -> b
    in
    let cap = boundary - !now in
    let seg =
      Engine.run ~start_slot:!now ?faults ~observers:seg_obs ~cd ~adversary ~budget
        ~max_slots:cap ~stations:e.stations ()
    in
    now := !now + seg.Metrics.slots;
    simulated := !simulated + seg.Metrics.slots;
    agg_jams := !agg_jams + seg.Metrics.jammed_slots;
    agg_nulls := !agg_nulls + seg.Metrics.nulls;
    agg_singles := !agg_singles + seg.Metrics.singles;
    agg_collisions := !agg_collisions + seg.Metrics.collisions;
    agg_tx := !agg_tx +. seg.Metrics.transmissions;
    agg_max_tx := Int.max !agg_max_tx seg.Metrics.max_station_transmissions;
    let acc = match e.acc with None -> seg | Some a -> merge_segments a seg in
    e.acc <- Some acc;
    if seg.Metrics.completed then begin
      if seg.Metrics.elected then begin
        let li = match seg.Metrics.leader with Some i -> i | None -> assert false in
        let leader_gid = e.gids.(li) in
        incr completed_n;
        record_epoch ~e:(e.start, e.att_population, acc) ~leader:(Some leader_gid);
        close_ll ();
        let others =
          Array.to_list e.gids |> List.filter (fun g -> g <> leader_gid)
        in
        mode := Stable { leader = leader_gid; others };
        if !kills_left > 0 then pending_kill := Some (!now + grace)
      end
      else
        (* Terminated without a unique leader (everyone crashed
           undecided, or a perception-noise split): self-heal with a
           fresh election over the same members. *)
        finish_attempt_failed e.start e.att_population acc (Array.to_list e.gids)
    end
  in
  (* --- main loop --- *)
  if init > 0 then start_attempt ~members:[];
  let running = ref true in
  while !running && !now < max_slots do
    apply_due_events ();
    if !now >= max_slots then running := false
    else
      match !mode with
      | Empty -> (
          match next_boundary () with
          | Some b when b < max_slots -> gap_advance ~upto:b ~leaders:0
          | Some _ | None -> running := false)
      | Stable _ -> (
          match next_boundary () with
          | Some b when b < max_slots -> gap_advance ~upto:b ~leaders:1
          | Some _ | None -> running := false)
      | Electing e -> (
          match e.deadline with
          | Some d when !now >= d ->
              (* Stalled past the restart deadline: give up on this
                 attempt and re-elect with fresh incarnations. *)
              finish_attempt_failed e.start e.att_population
                (Option.value e.acc ~default:empty_attempt)
                (Array.to_list e.gids)
          | Some _ | None -> run_segment e)
  done;
  (* --- epilogue --- *)
  (match !mode with
  | Electing e -> (
      (* Truncated by [max_slots]: an attempt that actually ran counts
         as failed; one that never got a slot is not counted. *)
      match e.acc with
      | Some acc -> record_epoch ~e:(e.start, e.att_population, acc) ~leader:None; incr failed_n
      | None -> ())
  | Stable _ | Empty -> ());
  close_ll ();
  let final_leader, final_population =
    match !mode with
    | Empty -> (None, 0)
    | Stable { leader; others } -> (Some leader, 1 + List.length others)
    | Electing e -> (None, Array.length e.gids)
  in
  if final_population <> !born - !departures then
    violate ~slot:!now ~check:Monitor.Population
      (Printf.sprintf "live population %d but %d born - %d departed = %d" final_population
         !born !departures (!born - !departures));
  let synthetic =
    {
      Metrics.slots = !now;
      completed = (match !mode with Electing _ -> false | Stable _ | Empty -> true);
      elected = final_leader <> None;
      leader = None;
      statuses = [||];
      jammed_slots = !agg_jams;
      nulls = !agg_nulls;
      singles = !agg_singles;
      collisions = !agg_collisions;
      transmissions = !agg_tx;
      max_station_transmissions = !agg_max_tx;
      energy = None;
    }
  in
  (match monitor with Some m -> Monitor.check_result m synthetic | None -> ());
  List.iter (fun o -> o.Observer.on_result synthetic) observers;
  {
    total_slots = !now;
    simulated_slots = !simulated;
    elections_completed = !completed_n;
    elections_failed = !failed_n;
    re_elections = !re_elections;
    arrivals = !arrivals;
    departures = !departures;
    leader_kills = !kills_done;
    leaderless_slots = !leaderless;
    leaderless_intervals = List.rev !intervals;
    epochs = List.rev !epochs;
    final_population;
    final_leader;
  }

(* --- comparison, JSON, pretty-printing --- *)

let equal_epoch a b =
  a.start_slot = b.start_slot && a.population = b.population && a.leader = b.leader
  && Metrics.equal_result a.attempt b.attempt

let equal_result a b =
  a.total_slots = b.total_slots
  && a.simulated_slots = b.simulated_slots
  && a.elections_completed = b.elections_completed
  && a.elections_failed = b.elections_failed
  && a.re_elections = b.re_elections
  && a.arrivals = b.arrivals && a.departures = b.departures
  && a.leader_kills = b.leader_kills
  && a.leaderless_slots = b.leaderless_slots
  && a.leaderless_intervals = b.leaderless_intervals
  && List.length a.epochs = List.length b.epochs
  && List.for_all2 equal_epoch a.epochs b.epochs
  && a.final_population = b.final_population
  && a.final_leader = b.final_leader

let epoch_to_json e =
  Json.Obj
    [
      ("start_slot", Json.Int e.start_slot);
      ("population", Json.Int e.population);
      ("leader", match e.leader with Some g -> Json.Int g | None -> Json.Null);
      ("attempt", Metrics.result_to_json e.attempt);
    ]

let result_to_json r =
  Json.Obj
    [
      ("total_slots", Json.Int r.total_slots);
      ("simulated_slots", Json.Int r.simulated_slots);
      ("elections_completed", Json.Int r.elections_completed);
      ("elections_failed", Json.Int r.elections_failed);
      ("re_elections", Json.Int r.re_elections);
      ("arrivals", Json.Int r.arrivals);
      ("departures", Json.Int r.departures);
      ("leader_kills", Json.Int r.leader_kills);
      ("leaderless_slots", Json.Int r.leaderless_slots);
      ("leaderless_intervals", Json.List (List.map (fun i -> Json.Int i) r.leaderless_intervals));
      ("epochs", Json.List (List.map epoch_to_json r.epochs));
      ("final_population", Json.Int r.final_population);
      ("final_leader", match r.final_leader with Some g -> Json.Int g | None -> Json.Null);
    ]

let epoch_of_json j =
  let ( let* ) = Result.bind in
  let int name =
    match Option.bind (Json.member name j) Json.to_int_opt with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "epoch: %S is not an int" name)
  in
  let* start_slot = int "start_slot" in
  let* population = int "population" in
  let* leader =
    match Json.member "leader" j with
    | Some Json.Null -> Ok None
    | Some (Json.Int g) -> Ok (Some g)
    | Some _ -> Error "epoch: \"leader\" is not null or an int"
    | None -> Error "epoch: missing field \"leader\""
  in
  let* attempt =
    match Json.member "attempt" j with
    | Some a -> Metrics.result_of_json a
    | None -> Error "epoch: missing field \"attempt\""
  in
  Ok { start_slot; population; attempt; leader }

let result_of_json j =
  let ( let* ) = Result.bind in
  let int name =
    match Option.bind (Json.member name j) Json.to_int_opt with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "dynamic result: %S is not an int" name)
  in
  let* total_slots = int "total_slots" in
  let* simulated_slots = int "simulated_slots" in
  let* elections_completed = int "elections_completed" in
  let* elections_failed = int "elections_failed" in
  let* re_elections = int "re_elections" in
  let* arrivals = int "arrivals" in
  let* departures = int "departures" in
  let* leader_kills = int "leader_kills" in
  let* leaderless_slots = int "leaderless_slots" in
  let* leaderless_intervals =
    match Option.bind (Json.member "leaderless_intervals" j) Json.to_list_opt with
    | None -> Error "dynamic result: \"leaderless_intervals\" is not a list"
    | Some items ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            match Json.to_int_opt item with
            | Some i -> Ok (i :: acc)
            | None -> Error "dynamic result: leaderless interval is not an int")
          (Ok []) items
        |> Result.map List.rev
  in
  let* epochs =
    match Option.bind (Json.member "epochs" j) Json.to_list_opt with
    | None -> Error "dynamic result: \"epochs\" is not a list"
    | Some items ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let* e = epoch_of_json item in
            Ok (e :: acc))
          (Ok []) items
        |> Result.map List.rev
  in
  let* final_population = int "final_population" in
  let* final_leader =
    match Json.member "final_leader" j with
    | Some Json.Null -> Ok None
    | Some (Json.Int g) -> Ok (Some g)
    | Some _ -> Error "dynamic result: \"final_leader\" is not null or an int"
    | None -> Error "dynamic result: missing field \"final_leader\""
  in
  Ok
    {
      total_slots;
      simulated_slots;
      elections_completed;
      elections_failed;
      re_elections;
      arrivals;
      departures;
      leader_kills;
      leaderless_slots;
      leaderless_intervals;
      epochs;
      final_population;
      final_leader;
    }

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>slots: %d (%d simulated)@ elections: %d completed, %d failed, %d re-elections@ \
     churn: +%d -%d (%d leader kills)@ leaderless: %d slots over %d intervals%s@ final: %d \
     stations, leader %s@]"
    r.total_slots r.simulated_slots r.elections_completed r.elections_failed r.re_elections
    r.arrivals r.departures r.leader_kills r.leaderless_slots
    (List.length r.leaderless_intervals)
    (match r.leaderless_intervals with
    | [] -> ""
    | is ->
        Printf.sprintf " (max %d)" (List.fold_left Int.max 0 is))
    r.final_population
    (match r.final_leader with Some g -> string_of_int g | None -> "none")
