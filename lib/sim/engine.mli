(** Exact per-station simulation of the slotted channel.

    Handles every collision-detection model, heterogeneous stations
    (e.g. the phase-split stations of Notification), and any adversary.
    The engine keeps a dense, order-preserving index of the stations
    still running, so a slot costs O(active stations), not O(n): for
    early-finishing workloads (k-selection-style retirement, crashing
    stations, chained elections) the cost tracks the shrinking
    population.  Use {!Uniform_engine} for uniform protocols at large
    [n], where a slot is O(1).

    The active-set bookkeeping assumes what every protocol in this
    repository satisfies: a station's [finished] is {e monotone} (once
    [true] it stays [true]) and neither [finished] nor [status] changes
    spontaneously — only a [decide] or [observe] call on that station
    may change them.  A station violating this could diverge from
    {!run_reference}; the equivalence tests in [test_sim.ml] guard the
    contract for the shipped protocols. *)

val run :
  ?start_slot:int ->
  ?faults:Jamming_faults.Injection.t ->
  ?meter:Jamming_energy.Energy.Meter.t ->
  ?monitor:Monitor.t ->
  ?observers:Observer.t list ->
  cd:Jamming_channel.Channel.cd_model ->
  adversary:Jamming_adversary.Adversary.t ->
  budget:Jamming_adversary.Budget.t ->
  max_slots:int ->
  stations:Jamming_station.Station.t array ->
  unit ->
  Metrics.result
(** Runs until every station reports [finished] or [max_slots] elapse
    ([max_slots] counts slots of this run; slot numbers reported to
    stations and adversary start at [start_slot], default 0, so that
    chained elections can share one adversary and budget).
    Each slot, in order: the adversary commits its jam decision (before
    seeing any action, per §1.1), live stations choose actions, the slot
    resolves, every live station receives its perceived state, the
    adversary observes the true state.  Stations that have finished
    neither transmit nor listen.

    [faults] injects per-station CD misperception: each live station's
    perceived state is drawn by passing the true resolved state through
    the injection's noise before the CD-model filter.  Absent faults —
    or an injection whose rates are all zero — the run is bit-identical
    to the seed engine for the same seeds (zero-rate noise draws no
    randomness).  Station lifecycle faults (crash/sleep/late wake-up)
    are orthogonal: wrap the stations with
    {!Jamming_faults.Fault_plan.wrap} before calling [run].

    [observers] watch the run: each is notified after every resolved
    slot (with the live leader count when some observer set
    [needs_leaders], [-1] otherwise) and once with the final metrics
    before they are returned.  Observers never touch the random
    streams, so attaching any number of them leaves the result
    bit-identical.  With no observers the engine skips building slot
    records altogether.

    [monitor] is a convenience: it is folded into the observer list as
    [Monitor.observer mon], notified before [observers].  A bare
    per-slot callback belongs in [observers], wrapped with
    {!Observer.of_on_slot}.

    [meter] turns on energy accounting (DESIGN.md §16): the engine
    reports transmissions, sleep intervals and terminations into the
    meter (O(1) per event, never touching any random stream) and
    attaches [Energy.summarize meter ~slots] to the result as
    [result.energy].  A station may return [Sleep until] from [decide]:
    it is then skipped — no decide, no observe, no sensing draw — until
    absolute slot [until].  Metering off and no sleeping stations leave
    the run bit-identical to the pre-energy engine (QCheck-asserted in
    [test_energy.ml]).

    The result reports [leader = Some _] exactly when [elected]: a run
    cut off at [max_slots] reports no leader even if one station stands
    in status [Leader] at the cut-off (its election never completed). *)

val run_reference :
  ?start_slot:int ->
  ?faults:Jamming_faults.Injection.t ->
  ?meter:Jamming_energy.Energy.Meter.t ->
  ?monitor:Monitor.t ->
  ?observers:Observer.t list ->
  cd:Jamming_channel.Channel.cd_model ->
  adversary:Jamming_adversary.Adversary.t ->
  budget:Jamming_adversary.Budget.t ->
  max_slots:int ->
  stations:Jamming_station.Station.t array ->
  unit ->
  Metrics.result
(** The pre-active-set engine: three full O(n) scans per slot and a
    fresh O(n) leader scan whenever an observer asks for leader counts.
    Kept {e only} as the differential-testing oracle — {!run} must stay
    bit-identical to it (same results, same slot records, same leader
    counts, same noise draws under fault injection) for every seed.
    Tests and the bench reference path use it; production call sites
    must use {!run}. *)

val run_pool :
  ?start_slot:int ->
  ?faults:Jamming_faults.Injection.t ->
  ?plans:Jamming_faults.Fault_plan.plan array ->
  ?meter:Jamming_energy.Energy.Meter.t ->
  ?monitor:Monitor.t ->
  ?observers:Observer.t list ->
  cd:Jamming_channel.Channel.cd_model ->
  adversary:Jamming_adversary.Adversary.t ->
  budget:Jamming_adversary.Budget.t ->
  max_slots:int ->
  pool:Jamming_station.Station.pool ->
  unit ->
  Metrics.result
(** The vectorized engine: one {!Jamming_station.Station.pool} holds
    the whole population in flat arrays, and a fault-free slot is two
    batch calls (decide-all, observe-all) with the perceived state
    computed once per slot for transmitters and once for listeners —
    not once per station.  Semantics are those of {!run} over the
    equivalent closure stations: same slot ordering, same observer
    records, same result, and (for the shipped pools) bit-identical
    random streams, asserted in [test_notification.ml].

    [plans] carries station lifecycle faults (crash/sleep/late wake-up)
    that the closure path would install with
    {!Jamming_faults.Fault_plan.wrap}; here the engine applies the
    gating itself, because wrapping is a closure-level device.  With
    [plans] or active [faults] noise the engine switches to a
    per-station loop that reproduces the closure path's sensing-draw
    order exactly (dormant stations draw, dead and finished ones do
    not).  The batch path and the per-station path never mix within a
    run.

    [meter] behaves as in {!run} on the per-station path.  On the batch
    path pools manage sleep internally, so the engine instead reads
    per-station awake counts back through [pool.pool_awake] (rejecting
    pools that do not provide it) and transmission counts from its own
    [tx_counts]; the resulting [result.energy] block is identical to
    what metering the equivalent closure stations produces. *)

val make_stations :
  n:int -> rng:Jamming_prng.Prng.t -> Jamming_station.Station.factory ->
  Jamming_station.Station.t array
(** [make_stations ~n ~rng factory] builds stations [0 .. n−1], each with
    an independent random stream split off [rng]. *)
