module Channel = Jamming_channel.Channel
module Adversary = Jamming_adversary.Adversary
module Budget = Jamming_adversary.Budget
module Station = Jamming_station.Station
module Injection = Jamming_faults.Injection

let make_stations ~n ~rng factory =
  Array.init n (fun id -> factory ~id ~rng:(Jamming_prng.Prng.split rng))

(* The deprecated [?monitor] and [?on_slot] arguments are folded into
   the observer list: monitor first, then the raw callback, then the
   caller's observers — the notification order the pre-observer engine
   used. *)
let assemble_observers ?on_slot ?monitor observers =
  let obs = match on_slot with None -> observers | Some f -> Observer.of_on_slot f :: observers in
  let obs = match monitor with None -> obs | Some mon -> Monitor.observer mon :: obs in
  Array.of_list obs

let run ?on_slot ?(start_slot = 0) ?faults ?monitor ?(observers = []) ~cd ~adversary
    ~budget ~max_slots ~stations () =
  let n = Array.length stations in
  let obs = assemble_observers ?on_slot ?monitor observers in
  let observed = Array.length obs > 0 in
  let needs_leaders = Array.exists (fun o -> o.Observer.needs_leaders) obs in
  let actions = Array.make n Station.Listen in
  let tx_counts = Array.make n 0 in
  let jammed_slots = ref 0 in
  let nulls = ref 0 and singles = ref 0 and collisions = ref 0 in
  let all_finished () = Array.for_all (fun s -> s.Station.finished ()) stations in
  let noise =
    match faults with Some f when Injection.active f -> Some f | Some _ | None -> None
  in
  let slot = ref 0 in
  let finished = ref (all_finished ()) in
  while (not !finished) && !slot < max_slots do
    let t = start_slot + !slot in
    (* 1. Adversary commits before seeing this slot's actions. *)
    let can_jam = Budget.can_jam budget in
    let jam = can_jam && adversary.Adversary.wants_jam ~slot:t ~can_jam in
    Budget.advance budget ~jam;
    (* 2. Live stations act. *)
    let transmitters = ref 0 in
    for i = 0 to n - 1 do
      if stations.(i).Station.finished () then actions.(i) <- Station.Listen
      else begin
        let a = stations.(i).Station.decide ~slot:t in
        actions.(i) <- a;
        if Station.equal_action a Station.Transmit then begin
          incr transmitters;
          tx_counts.(i) <- tx_counts.(i) + 1
        end
      end
    done;
    (* 3. Resolve and deliver feedback.  Sensing noise, when injected,
       perturbs each live station's view of the true state independently
       (in station order, off a dedicated stream); metrics and the
       adversary always see the truth. *)
    let state = Channel.resolve ~transmitters:!transmitters ~jammed:jam in
    if jam then incr jammed_slots;
    (match state with
    | Channel.Null -> incr nulls
    | Channel.Single -> incr singles
    | Channel.Collision -> incr collisions);
    for i = 0 to n - 1 do
      if not (stations.(i).Station.finished ()) then begin
        let transmitted = Station.equal_action actions.(i) Station.Transmit in
        let sensed =
          match noise with None -> state | Some inj -> Injection.sense inj state
        in
        let perceived = Channel.perceive cd sensed ~transmitted in
        stations.(i).Station.observe ~slot:t ~perceived ~transmitted
      end
    done;
    adversary.Adversary.notify ~slot:t ~jammed:jam ~state;
    if observed then begin
      let record =
        { Metrics.slot = t; transmitters = !transmitters; jammed = jam; state }
      in
      let leaders =
        if not needs_leaders then -1
        else begin
          let count = ref 0 in
          Array.iter
            (fun s ->
              if Station.equal_status (s.Station.status ()) Station.Leader then incr count)
            stations;
          !count
        end
      in
      Array.iter (fun o -> o.Observer.on_slot record ~leaders) obs
    end;
    incr slot;
    finished := all_finished ()
  done;
  let statuses = Array.map (fun s -> s.Station.status ()) stations in
  let leader = ref None in
  Array.iteri
    (fun i st -> if Station.equal_status st Station.Leader then leader := Some i)
    statuses;
  let leaders =
    Array.fold_left
      (fun acc st -> if Station.equal_status st Station.Leader then acc + 1 else acc)
      0 statuses
  in
  let transmissions = Array.fold_left (fun acc c -> acc + c) 0 tx_counts in
  let result =
    {
      Metrics.slots = !slot;
      completed = !finished;
      elected = !finished && leaders = 1;
      leader = (if leaders = 1 then !leader else None);
      statuses;
      jammed_slots = !jammed_slots;
      nulls = !nulls;
      singles = !singles;
      collisions = !collisions;
      transmissions = float_of_int transmissions;
      max_station_transmissions = Array.fold_left Int.max 0 tx_counts;
    }
  in
  Gauges.note_run ~slots:!slot;
  Array.iter (fun o -> o.Observer.on_result result) obs;
  result
