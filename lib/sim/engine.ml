module Channel = Jamming_channel.Channel
module Adversary = Jamming_adversary.Adversary
module Budget = Jamming_adversary.Budget
module Station = Jamming_station.Station
module Injection = Jamming_faults.Injection
module Fault_plan = Jamming_faults.Fault_plan
module Energy = Jamming_energy.Energy

let make_stations ~n ~rng factory =
  Array.init n (fun id -> factory ~id ~rng:(Jamming_prng.Prng.split rng))

(* The [?monitor] argument is folded into the observer list, ahead of
   the caller's observers — the notification order the pre-observer
   engine used. *)
let assemble_observers ?monitor observers =
  let obs = match monitor with None -> observers | Some mon -> Monitor.observer mon :: observers in
  Array.of_list obs

(* Shared epilogue: final statuses, leader identification, result
   construction and observer notification.  [leader = Some _] only when
   the election actually completed with a unique leader; a run cut off
   at [max_slots] reports [leader = None] even if one station happens
   to stand in status Leader. *)
let finalize ~slot ~finished ~statuses ~tx_counts ~jammed_slots ~nulls ~singles
    ~collisions ~energy obs =
  let leader = ref None in
  Array.iteri
    (fun i st -> if Station.equal_status st Station.Leader then leader := Some i)
    statuses;
  let leaders =
    Array.fold_left
      (fun acc st -> if Station.equal_status st Station.Leader then acc + 1 else acc)
      0 statuses
  in
  let elected = finished && leaders = 1 in
  let transmissions = Array.fold_left (fun acc c -> acc + c) 0 tx_counts in
  let result =
    {
      Metrics.slots = slot;
      completed = finished;
      elected;
      leader = (if elected then !leader else None);
      statuses;
      jammed_slots;
      nulls;
      singles;
      collisions;
      transmissions = float_of_int transmissions;
      max_station_transmissions = Array.fold_left Int.max 0 tx_counts;
      energy;
    }
  in
  Gauges.note_run ~slots:slot;
  Array.iter (fun o -> o.Observer.on_result result) obs;
  result

let build_result ~slot ~finished ~stations ~tx_counts ~jammed_slots ~nulls ~singles
    ~collisions ~energy obs =
  let statuses = Array.map (fun s -> s.Station.status ()) stations in
  finalize ~slot ~finished ~statuses ~tx_counts ~jammed_slots ~nulls ~singles
    ~collisions ~energy obs

let check_meter ?meter ~n where =
  match meter with
  | Some m when Energy.Meter.n m <> n ->
      invalid_arg (Printf.sprintf "%s: meter size %d <> population %d" where (Energy.Meter.n m) n)
  | Some _ | None -> ()

let run ?(start_slot = 0) ?faults ?meter ?monitor ?(observers = []) ~cd ~adversary
    ~budget ~max_slots ~stations () =
  let n = Array.length stations in
  check_meter ?meter ~n "Engine.run";
  let obs = assemble_observers ?monitor observers in
  let observed = Array.length obs > 0 in
  let needs_leaders = Array.exists (fun o -> o.Observer.needs_leaders) obs in
  let actions = Array.make n Station.Listen in
  let tx_counts = Array.make n 0 in
  let jammed_slots = ref 0 in
  let nulls = ref 0 and singles = ref 0 and collisions = ref 0 in
  let noise =
    match faults with Some f when Injection.active f -> Some f | Some _ | None -> None
  in
  (* Absolute slot (exclusive) each station sleeps until; [min_int]
     when awake.  A sleeping station is skipped entirely — no decide,
     no observe, no sensing draw — so with no [Sleep] actions this
     array never fires a branch and the engine is bit-identical to the
     pre-sleep code. *)
  let wake_abs = Array.make n min_int in
  (* Active set: indices of the stations whose [finished] was last seen
     false, kept in increasing station order.  Compaction is
     order-preserving (never swap-remove): [Injection.sense] draws
     sensing noise from one shared stream in station order, so the
     sequence of draws — hence every fault-injected run — must match
     [run_reference] bit for bit. *)
  let active = Array.init n (fun i -> i) in
  let n_active = ref 0 in
  for i = 0 to n - 1 do
    if not (stations.(i).Station.finished ()) then begin
      active.(!n_active) <- i;
      incr n_active
    end
    else match meter with Some m -> Energy.Meter.note_finish m i ~from:0 | None -> ()
  done;
  (* Incremental leader count: once a station leaves the active set no
     decide/observe call ever reaches it again, so its status is frozen
     and its cached contribution stays valid.  Only stations touched in
     the current slot can change status, so refreshing the count is
     O(active), not O(n). *)
  let cached_status = Array.make (if needs_leaders then n else 0) Station.Undecided in
  let leader_count = ref 0 in
  if needs_leaders then
    Array.iteri
      (fun i s ->
        let st = s.Station.status () in
        cached_status.(i) <- st;
        if Station.equal_status st Station.Leader then incr leader_count)
      stations;
  let slot = ref 0 in
  while !n_active > 0 && !slot < max_slots do
    let t = start_slot + !slot in
    (* 1. Adversary commits before seeing this slot's actions. *)
    let can_jam = Budget.can_jam budget in
    let jam = can_jam && adversary.Adversary.wants_jam ~slot:t ~can_jam in
    Budget.advance budget ~jam;
    (* 2. Live stations act (sleepers are skipped without a draw). *)
    let transmitters = ref 0 in
    for k = 0 to !n_active - 1 do
      let i = active.(k) in
      let s = stations.(i) in
      if s.Station.finished () || wake_abs.(i) > t then actions.(i) <- Station.Listen
      else
        match s.Station.decide ~slot:t with
        | Station.Transmit ->
            actions.(i) <- Station.Transmit;
            incr transmitters;
            tx_counts.(i) <- tx_counts.(i) + 1;
            (match meter with Some m -> Energy.Meter.note_tx m i | None -> ())
        | Station.Listen -> actions.(i) <- Station.Listen
        | Station.Sleep until ->
            if until <= t then
              invalid_arg "Engine.run: Sleep must target a slot after the current one";
            wake_abs.(i) <- until;
            actions.(i) <- Station.Listen;
            (match meter with
            | Some m ->
                Energy.Meter.note_sleep m i ~from:!slot ~until:(until - start_slot)
            | None -> ())
    done;
    (* 3. Resolve and deliver feedback.  Sensing noise, when injected,
       perturbs each live station's view of the true state independently
       (in station order, off a dedicated stream); metrics and the
       adversary always see the truth. *)
    let state = Channel.resolve ~transmitters:!transmitters ~jammed:jam in
    if jam then incr jammed_slots;
    (match state with
    | Channel.Null -> incr nulls
    | Channel.Single -> incr singles
    | Channel.Collision -> incr collisions);
    (* The same pass compacts the active set (order-preserving) and
       folds this slot's status transitions into the leader count: a
       station's [finished]/[status] only change through calls on that
       station, so reading them right after its own [observe] sees the
       same values a separate post-feedback pass would. *)
    let kept = ref 0 in
    for k = 0 to !n_active - 1 do
      let i = active.(k) in
      let s = stations.(i) in
      let asleep = wake_abs.(i) > t in
      if (not asleep) && not (s.Station.finished ()) then begin
        let transmitted = Station.equal_action actions.(i) Station.Transmit in
        let sensed =
          match noise with None -> state | Some inj -> Injection.sense inj state
        in
        let perceived = Channel.perceive cd sensed ~transmitted in
        s.Station.observe ~slot:t ~perceived ~transmitted
      end;
      if needs_leaders then begin
        let st = s.Station.status () in
        if not (Station.equal_status st cached_status.(i)) then begin
          if Station.equal_status cached_status.(i) Station.Leader then decr leader_count;
          if Station.equal_status st Station.Leader then incr leader_count;
          cached_status.(i) <- st
        end
      end;
      if not (s.Station.finished ()) then begin
        active.(!kept) <- i;
        incr kept
      end
      else
        match meter with
        | Some m -> Energy.Meter.note_finish m i ~from:(!slot + 1)
        | None -> ()
    done;
    n_active := !kept;
    adversary.Adversary.notify ~slot:t ~jammed:jam ~state;
    if observed then begin
      let record =
        { Metrics.slot = t; transmitters = Metrics.Exact !transmitters; jammed = jam; state }
      in
      let leaders = if needs_leaders then !leader_count else -1 in
      Array.iter (fun o -> o.Observer.on_slot record ~leaders) obs
    end;
    incr slot
  done;
  let energy =
    match meter with Some m -> Some (Energy.Meter.summarize m ~slots:!slot) | None -> None
  in
  build_result ~slot:!slot ~finished:(!n_active = 0) ~stations ~tx_counts
    ~jammed_slots:!jammed_slots ~nulls:!nulls ~singles:!singles ~collisions:!collisions
    ~energy obs

(* The pre-active-set engine, kept verbatim as the differential-testing
   oracle: every loop is a full O(n) scan and the leader count is a
   fresh scan per slot.  [run] must stay bit-identical to this path. *)
let run_reference ?(start_slot = 0) ?faults ?meter ?monitor ?(observers = []) ~cd
    ~adversary ~budget ~max_slots ~stations () =
  let n = Array.length stations in
  check_meter ?meter ~n "Engine.run_reference";
  let obs = assemble_observers ?monitor observers in
  let observed = Array.length obs > 0 in
  let needs_leaders = Array.exists (fun o -> o.Observer.needs_leaders) obs in
  let actions = Array.make n Station.Listen in
  let tx_counts = Array.make n 0 in
  let jammed_slots = ref 0 in
  let nulls = ref 0 and singles = ref 0 and collisions = ref 0 in
  let all_finished () = Array.for_all (fun s -> s.Station.finished ()) stations in
  let noise =
    match faults with Some f when Injection.active f -> Some f | Some _ | None -> None
  in
  let wake_abs = Array.make n min_int in
  (* Meter bookkeeping: note each station's termination once, at the
     same relative slot the active-set engine's compaction would. *)
  let noted = (match meter with Some _ -> Array.make n false | None -> [||]) in
  let note_done_from rel =
    match meter with
    | Some m ->
        for i = 0 to n - 1 do
          if (not noted.(i)) && stations.(i).Station.finished () then begin
            noted.(i) <- true;
            Energy.Meter.note_finish m i ~from:rel
          end
        done
    | None -> ()
  in
  let slot = ref 0 in
  let finished = ref (all_finished ()) in
  note_done_from 0;
  while (not !finished) && !slot < max_slots do
    let t = start_slot + !slot in
    let can_jam = Budget.can_jam budget in
    let jam = can_jam && adversary.Adversary.wants_jam ~slot:t ~can_jam in
    Budget.advance budget ~jam;
    let transmitters = ref 0 in
    for i = 0 to n - 1 do
      if stations.(i).Station.finished () || wake_abs.(i) > t then
        actions.(i) <- Station.Listen
      else
        match stations.(i).Station.decide ~slot:t with
        | Station.Transmit ->
            actions.(i) <- Station.Transmit;
            incr transmitters;
            tx_counts.(i) <- tx_counts.(i) + 1;
            (match meter with Some m -> Energy.Meter.note_tx m i | None -> ())
        | Station.Listen -> actions.(i) <- Station.Listen
        | Station.Sleep until ->
            if until <= t then
              invalid_arg
                "Engine.run_reference: Sleep must target a slot after the current one";
            wake_abs.(i) <- until;
            actions.(i) <- Station.Listen;
            (match meter with
            | Some m ->
                Energy.Meter.note_sleep m i ~from:!slot ~until:(until - start_slot)
            | None -> ())
    done;
    let state = Channel.resolve ~transmitters:!transmitters ~jammed:jam in
    if jam then incr jammed_slots;
    (match state with
    | Channel.Null -> incr nulls
    | Channel.Single -> incr singles
    | Channel.Collision -> incr collisions);
    for i = 0 to n - 1 do
      if wake_abs.(i) <= t && not (stations.(i).Station.finished ()) then begin
        let transmitted = Station.equal_action actions.(i) Station.Transmit in
        let sensed =
          match noise with None -> state | Some inj -> Injection.sense inj state
        in
        let perceived = Channel.perceive cd sensed ~transmitted in
        stations.(i).Station.observe ~slot:t ~perceived ~transmitted
      end
    done;
    note_done_from (!slot + 1);
    adversary.Adversary.notify ~slot:t ~jammed:jam ~state;
    if observed then begin
      let record =
        { Metrics.slot = t; transmitters = Metrics.Exact !transmitters; jammed = jam; state }
      in
      let leaders =
        if not needs_leaders then -1
        else begin
          let count = ref 0 in
          Array.iter
            (fun s ->
              if Station.equal_status (s.Station.status ()) Station.Leader then incr count)
            stations;
          !count
        end
      in
      Array.iter (fun o -> o.Observer.on_slot record ~leaders) obs
    end;
    incr slot;
    finished := all_finished ()
  done;
  let energy =
    match meter with Some m -> Some (Energy.Meter.summarize m ~slots:!slot) | None -> None
  in
  build_result ~slot:!slot ~finished:!finished ~stations ~tx_counts
    ~jammed_slots:!jammed_slots ~nulls:!nulls ~singles:!singles ~collisions:!collisions
    ~energy obs

(* Vectorized engine over a {!Station.pool}.  Protocol state lives in
   flat arrays inside the pool; per slot the fault-free path makes two
   batch calls instead of O(active) closure invocations, and perception
   is computed once per slot (one state for transmitters, one for
   listeners) instead of once per station.  With lifecycle plans or
   active sensing noise the engine falls back to a per-station loop
   that reproduces, draw for draw, what [run] does over
   [Fault_plan.wrap]ped closure stations: the crash latch is set during
   the decide pass, dormant stations listen but still burn a sensing
   draw, and dead or finished stations draw nothing. *)
let run_pool ?(start_slot = 0) ?faults ?plans ?meter ?monitor ?(observers = []) ~cd
    ~adversary ~budget ~max_slots ~pool () =
  let n = pool.Station.pool_size in
  check_meter ?meter ~n "Engine.run_pool";
  let obs = assemble_observers ?monitor observers in
  let observed = Array.length obs > 0 in
  let needs_leaders = Array.exists (fun o -> o.Observer.needs_leaders) obs in
  let actions = Array.make n Station.Listen in
  let tx_counts = Array.make n 0 in
  let jammed_slots = ref 0 in
  let nulls = ref 0 and singles = ref 0 and collisions = ref 0 in
  let noise =
    match faults with Some f when Injection.active f -> Some f | Some _ | None -> None
  in
  let plans =
    match plans with
    | Some ps when Array.exists (fun p -> not (Fault_plan.is_null p)) ps ->
        if Array.length ps <> n then
          invalid_arg "Engine.run_pool: plans length must equal pool size";
        Array.iter Fault_plan.validate ps;
        Some ps
    | Some _ | None -> None
  in
  let slot = ref 0 in
  let finished = ref (pool.Station.pool_all_finished ()) in
  let observe_slot ~t ~jam ~state ~transmitters =
    adversary.Adversary.notify ~slot:t ~jammed:jam ~state;
    if observed then begin
      let record =
        { Metrics.slot = t; transmitters = Metrics.Exact transmitters; jammed = jam; state }
      in
      let leaders = if needs_leaders then pool.Station.pool_leaders () else -1 in
      Array.iter (fun o -> o.Observer.on_slot record ~leaders) obs
    end
  in
  let batch = plans = None && noise = None in
  (match (plans, noise) with
  | None, None ->
      (* Fast batch path: the pool iterates its own dense active set.
         Sleep is managed inside the pool (no [Sleep] action ever
         reaches the engine), so metered batch runs read per-station
         awake counts back from the pool instead of meter events. *)
      (match (meter, pool.Station.pool_awake) with
      | Some _, None ->
          invalid_arg "Engine.run_pool: pool does not track awake slots (pool_awake = None)"
      | _ -> ());
      while (not !finished) && !slot < max_slots do
        let t = start_slot + !slot in
        let can_jam = Budget.can_jam budget in
        let jam = can_jam && adversary.Adversary.wants_jam ~slot:t ~can_jam in
        Budget.advance budget ~jam;
        pool.Station.pool_begin_slot ~slot:t;
        let transmitters = pool.Station.pool_decide_all ~slot:t ~actions ~tx_counts in
        let state = Channel.resolve ~transmitters ~jammed:jam in
        if jam then incr jammed_slots;
        (match state with
        | Channel.Null -> incr nulls
        | Channel.Single -> incr singles
        | Channel.Collision -> incr collisions);
        let tx = Channel.perceive cd state ~transmitted:true in
        let rx = Channel.perceive cd state ~transmitted:false in
        pool.Station.pool_observe_all ~slot:t ~actions ~tx ~rx;
        observe_slot ~t ~jam ~state ~transmitters;
        incr slot;
        finished := pool.Station.pool_all_finished ()
      done
  | _ ->
      (* Faulty path: engine-owned active set + crash latch, mirroring
         [run] over wrapped stations so noise draws line up exactly. *)
      let dead = Array.make n false in
      let wake_abs = Array.make n min_int in
      let active = Array.make n 0 in
      let n_active = ref 0 in
      for i = 0 to n - 1 do
        if not (pool.Station.pool_finished i) then begin
          active.(!n_active) <- i;
          incr n_active
        end
        else
          match meter with Some m -> Energy.Meter.note_finish m i ~from:0 | None -> ()
      done;
      let dormant i ~t =
        match plans with Some ps -> Fault_plan.dormant ps.(i) ~slot:t | None -> false
      in
      while !n_active > 0 && !slot < max_slots do
        let t = start_slot + !slot in
        let can_jam = Budget.can_jam budget in
        let jam = can_jam && adversary.Adversary.wants_jam ~slot:t ~can_jam in
        Budget.advance budget ~jam;
        pool.Station.pool_begin_slot ~slot:t;
        let transmitters = ref 0 in
        for k = 0 to !n_active - 1 do
          let i = active.(k) in
          (* A sleeping station is untouched: in [run] over wrapped
             closures the crash latch only advances inside decide or
             observe, neither of which a sleeper receives. *)
          if wake_abs.(i) > t then actions.(i) <- Station.Listen
          else begin
            (match plans with
            | Some ps -> if Fault_plan.crashed ps.(i) ~slot:t then dead.(i) <- true
            | None -> ());
            if dead.(i) || dormant i ~t then actions.(i) <- Station.Listen
            else
              match pool.Station.pool_decide ~slot:t i with
              | Station.Transmit ->
                  actions.(i) <- Station.Transmit;
                  incr transmitters;
                  tx_counts.(i) <- tx_counts.(i) + 1;
                  (match meter with Some m -> Energy.Meter.note_tx m i | None -> ())
              | Station.Listen -> actions.(i) <- Station.Listen
              | Station.Sleep until ->
                  if until <= t then
                    invalid_arg
                      "Engine.run_pool: Sleep must target a slot after the current one";
                  wake_abs.(i) <- until;
                  actions.(i) <- Station.Listen;
                  (match meter with
                  | Some m ->
                      Energy.Meter.note_sleep m i ~from:!slot
                        ~until:(until - start_slot)
                  | None -> ())
          end
        done;
        let state = Channel.resolve ~transmitters:!transmitters ~jammed:jam in
        if jam then incr jammed_slots;
        (match state with
        | Channel.Null -> incr nulls
        | Channel.Single -> incr singles
        | Channel.Collision -> incr collisions);
        let kept = ref 0 in
        for k = 0 to !n_active - 1 do
          let i = active.(k) in
          let asleep = wake_abs.(i) > t in
          if (not asleep) && not (dead.(i) || pool.Station.pool_finished i) then begin
            let transmitted = Station.equal_action actions.(i) Station.Transmit in
            let sensed =
              match noise with None -> state | Some inj -> Injection.sense inj state
            in
            let perceived = Channel.perceive cd sensed ~transmitted in
            if not (dormant i ~t) then
              pool.Station.pool_observe ~slot:t ~perceived ~transmitted i
          end;
          if not (dead.(i) || pool.Station.pool_finished i) then begin
            active.(!kept) <- i;
            incr kept
          end
          else
            match meter with
            | Some m -> Energy.Meter.note_finish m i ~from:(!slot + 1)
            | None -> ()
        done;
        n_active := !kept;
        observe_slot ~t ~jam ~state ~transmitters:!transmitters;
        incr slot
      done;
      finished := !n_active = 0);
  let statuses = Array.init n pool.Station.pool_status in
  let energy =
    match meter with
    | None -> None
    | Some m ->
        if batch then
          match pool.Station.pool_awake with
          | Some awake ->
              Some
                (Energy.of_per_station ~n ~slots:!slot
                   ~tx:(fun i -> tx_counts.(i))
                   ~awake:(fun i -> awake ~until:(start_slot + !slot) i))
          | None -> None (* unreachable: rejected before the batch loop *)
        else Some (Energy.Meter.summarize m ~slots:!slot)
  in
  finalize ~slot:!slot ~finished:!finished ~statuses ~tx_counts
    ~jammed_slots:!jammed_slots ~nulls:!nulls ~singles:!singles ~collisions:!collisions
    ~energy obs
