(** Self-healing leader election over a churning population.

    The static engines elect one leader among a fixed station set; this
    driver chains elections over a population that changes under a churn
    adversary (à la Augustine et al., {e Robust Leader Election in a
    Fast-Changing World}): stations arrive, stations crash-stop, and the
    elected leader itself may be killed — whereupon the survivors (plus
    any queued arrivals) re-elect from scratch.

    {b Execution model.}  A run alternates between three regimes:
    - {e electing} — an attempt is in flight.  Every live station has a
      running protocol closure; the exact engine simulates them in
      segments, each capped at the next churn event, so closures (and
      protocol state) persist across events while departures simply stop
      being simulated — exactly a crash-stop.
    - {e stable} — an election completed.  The leader and its followers
      are pure bookkeeping: the channel is idle, wall-clock slots
      fast-forward to the next event as unjammed Nulls (the budget still
      advances, so the adversary's headroom {e recovers} during calm —
      a deliberate gift to the adversary), and arrivals adopt the live
      leader silently.
    - {e empty} — nobody is alive; time fast-forwards to the next join.

    {b Self-healing.}  A fresh election starts whenever the leader dies
    (oblivious [Leave Leader] or an adaptive kill), whenever an attempt
    terminates without a unique leader, and — with [restart_after] —
    whenever an attempt stalls past its deadline (e.g. every incarnation
    crashed undecided).  Re-elections respawn {e fresh} protocol
    closures for all live members via [spawn]; global station ids
    persist across incarnations, and lifecycle faults sampled by [spawn]
    are per-incarnation.

    {b Slot accounting.}  Slot numbers are absolute across the whole
    run: segments are chained with the engine's [start_slot], gaps fill
    the space between, and one shared budget and one monitor span
    everything.  A slot is {e leaderless} when at least one station is
    live and no completed election's leader is; intervals also close
    when the population empties or the run is truncated.

    The result's [epochs] list one entry per attempt; [attempt] is the
    per-attempt {!Metrics.result} merged across segments (for
    single-segment runs, bit-identical to the static engine's result),
    and [leader] is the elected station's {e global id} — unlike
    [attempt.leader], which indexes the final segment's roster. *)

type epoch = {
  start_slot : int;  (** Absolute slot the attempt started at. *)
  population : int;  (** Participants when the attempt started. *)
  attempt : Metrics.result;  (** Merged across the attempt's segments. *)
  leader : int option;  (** Global id of the winner, when properly elected. *)
}

type result = {
  total_slots : int;  (** Wall-clock slots, including fast-forwarded gaps. *)
  simulated_slots : int;  (** Slots the exact engine actually ran. *)
  elections_completed : int;
  elections_failed : int;  (** Attempts that stalled, emptied or split. *)
  re_elections : int;  (** Attempts triggered by a leader's death. *)
  arrivals : int;  (** Stations announced by [Join] events. *)
  departures : int;  (** Crash-stops, including leader kills. *)
  leader_kills : int;  (** Adaptive kills only (see [kill]). *)
  leaderless_slots : int;
  leaderless_intervals : int list;  (** Interval lengths, in run order. *)
  epochs : epoch list;  (** One per attempt, in run order. *)
  final_population : int;
  final_leader : int option;  (** Global id. *)
}

val run :
  ?restart_after:int ->
  ?events:Jamming_faults.Churn.event list ->
  ?kill:int * int ->
  ?victim_rng:Jamming_prng.Prng.t ->
  ?faults:Jamming_faults.Injection.t ->
  ?monitor:Monitor.t ->
  ?observers:Observer.t list ->
  cd:Jamming_channel.Channel.cd_model ->
  adversary:Jamming_adversary.Adversary.t ->
  budget:Jamming_adversary.Budget.t ->
  max_slots:int ->
  init:int ->
  spawn:(birth:int -> id:int -> Jamming_station.Station.t) ->
  unit ->
  result
(** Runs elections over a churning population for up to [max_slots]
    wall-clock slots (ending early once stable with no event left).

    [init] stations (global ids [0 .. init-1]) participate in the
    initial election starting at slot 0.  [spawn ~birth ~id] builds
    station [id]'s fresh incarnation born at absolute slot [birth]; it
    is called in increasing roster order, which is part of the
    reproducibility contract when it splits a shared random stream.

    [events] is the concrete oblivious churn schedule (sorted; see
    {!Jamming_faults.Churn.sample_schedule}).  [kill = (grace,
    max_kills)] activates the adaptive leader killer: each completed
    election's leader crash-stops [grace] slots later, at most
    [max_kills] times.  [victim_rng] picks [Leave Member] victims
    uniformly among the eligible live stations; it is only consulted
    when a pick is among two or more candidates (absent then, the run
    raises [Invalid_argument]), so churn-free runs draw nothing from it.

    [monitor] spans the whole run: segments feed it via
    {!Monitor.slot_observer}, gaps via {!Monitor.skip_to}, and the
    driver checks the aggregate tallies once at the end — plus the
    dynamic invariants [Live_leader] (no election starts while a leader
    is live) and [Population] (arrival/departure accounting stays
    consistent).  [observers] hear every {e simulated} slot and one
    final aggregate result (with empty [statuses]).

    With no churn, no kill, no [restart_after] and a successful
    election, the run is a single engine segment and the sole epoch's
    [attempt] is bit-identical to {!Engine.run} under the same seeds. *)

val of_static : Metrics.result -> result
(** A static engine run, viewed as a one-epoch dynamic result (global
    ids coincide with indices for the initial population).  The run's
    slots all count as leaderless: completion is when leadership
    begins.  A run that did not elect counts as one failed election. *)

val equal_result : result -> result -> bool

val result_to_json : result -> Jamming_telemetry.Json.t

val result_of_json : Jamming_telemetry.Json.t -> (result, string) Result.t
(** Defensive decode — malformed documents are [Error], never an
    exception — so the run store can treat corrupt cells as misses. *)

val pp_result : Format.formatter -> result -> unit
