(** Bounded slot-by-slot recording of a simulation (a ring buffer of the
    most recent {!Metrics.slot_record}s).  Plug {!record} into an
    engine's [on_slot] to keep the tail of a long run for post-mortems
    and example output. *)

type t

val create : capacity:int -> t
val record : t -> Metrics.slot_record -> unit

val recorded : t -> int
(** Total records ever written (may exceed capacity). *)

val capacity : t -> int

val to_list : t -> Metrics.slot_record list
(** Retained records, oldest first. *)

val pp_record : Format.formatter -> Metrics.slot_record -> unit
val pp : Format.formatter -> t -> unit

val count_state : t -> Jamming_channel.Channel.state -> int
(** Occurrences of a state among the retained records. *)

val count_jammed : t -> int

val observer : t -> Observer.t
(** The trace as an {!Observer}, so it can run alongside a monitor and
    telemetry in one simulation instead of monopolising [?on_slot]. *)
