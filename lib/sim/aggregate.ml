module Channel = Jamming_channel.Channel
module Adversary = Jamming_adversary.Adversary
module Budget = Jamming_adversary.Budget
module Sample = Jamming_prng.Sample
module Prng = Jamming_prng.Prng

type 'c outcome = Continue of 'c | Elected

type 'c protocol = {
  name : string;
  init : 'c;
  tx_prob : 'c -> float;
  step : 'c -> Channel.state -> 'c outcome;
  compare : 'c -> 'c -> int;
}

type packed = Packed : 'c protocol -> packed

let name (Packed p) = p.name

(* Sort by protocol order and fuse classes that landed on the same
   state.  Keeping the list sorted makes the per-slot binomial draw
   order (and hence the random stream) a deterministic function of the
   class multiset, independent of the merge history. *)
let normalise compare classes =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) classes in
  let rec fuse acc = function
    | [] -> List.rev acc
    | (s, k) :: rest -> (
        match acc with
        | (s', k') :: tl when compare s s' = 0 -> fuse ((s', k + k') :: tl) rest
        | _ -> fuse ((s, k) :: acc) rest)
  in
  fuse [] sorted

let run (type c) ?(start_slot = 0) ?(energy = false) ?(observers = [])
    ?(cd = Channel.Strong_cd) ~rng ~n ~(protocol : c protocol) ~adversary ~budget
    ~max_slots () =
  if n < 1 then invalid_arg "Aggregate.run: need n >= 1";
  (* Energy bookkeeping: one [(awake, count)] group per retirement
     event — a class elected at relative slot [r] was awake for the
     [r + 1] slots it participated in. O(#events), independent of n. *)
  let retired = ref [] in
  let obs = Array.of_list observers in
  let observed = Array.length obs > 0 in
  let jammed_slots = ref 0 in
  let nulls = ref 0 and singles = ref 0 and collisions = ref 0 in
  let transmissions = ref 0.0 in
  let slot = ref 0 in
  let population = ref n in
  let leaders = ref 0 in
  let leader_id = ref None in
  let classes = ref [ (protocol.init, n) ] in
  while !population > 0 && !slot < max_slots do
    let t = start_slot + !slot in
    let can_jam = Budget.can_jam budget in
    let jam = can_jam && adversary.Adversary.wants_jam ~slot:t ~can_jam in
    Budget.advance budget ~jam;
    (* Stations in one class share a transmit probability, so the
       class's transmitter count is Binomial(population, p) — a
       sufficient statistic for the slot.  Draws happen in class-sorted
       order, making the stream deterministic. *)
    let counted =
      List.map
        (fun (s, m) ->
          let p = protocol.tx_prob s in
          if not (p >= 0.0 && p <= 1.0) then
            invalid_arg
              "Aggregate.run: protocol emitted a probability outside [0, 1]";
          let tx = Sample.binomial rng ~n:m ~p in
          transmissions := !transmissions +. float_of_int tx;
          (s, m, tx))
        !classes
    in
    let transmitters = List.fold_left (fun acc (_, _, tx) -> acc + tx) 0 counted in
    let state = Channel.resolve ~transmitters ~jammed:jam in
    if jam then incr jammed_slots;
    (match state with
    | Channel.Null -> incr nulls
    | Channel.Single -> incr singles
    | Channel.Collision -> incr collisions);
    (* Each class splits into its transmitting and listening subgroups;
       with collision detection weaker than Strong_cd the two perceive
       the slot differently and may diverge. *)
    let next = ref [] in
    let step_group s ~count ~transmitted =
      if count > 0 then
        match protocol.step s (Channel.perceive cd state ~transmitted) with
        | Continue s' -> next := (s', count) :: !next
        | Elected ->
            population := !population - count;
            if energy then retired := (!slot + 1, count) :: !retired;
            if transmitted then begin
              (* Stations are exchangeable, so when exactly one station
                 elects itself as transmitter its identity is uniform
                 over the ids; sample it only then. *)
              if count = 1 && !leaders = 0 then
                leader_id := Some (Prng.int rng ~bound:n);
              leaders := !leaders + count
            end
    in
    List.iter
      (fun (s, m, tx) ->
        step_group s ~count:tx ~transmitted:true;
        step_group s ~count:(m - tx) ~transmitted:false)
      counted;
    classes := normalise protocol.compare !next;
    adversary.Adversary.notify ~slot:t ~jammed:jam ~state;
    if observed then begin
      let record =
        { Metrics.slot = t; transmitters = Metrics.Exact transmitters; jammed = jam; state }
      in
      Array.iter (fun o -> o.Observer.on_slot record ~leaders:!leaders) obs
    end;
    incr slot
  done;
  let finished = !population = 0 in
  let elected = finished && !leaders = 1 in
  let result =
    {
      Metrics.slots = !slot;
      completed = finished;
      elected;
      leader = (if elected then !leader_id else None);
      statuses = [||];
      jammed_slots = !jammed_slots;
      nulls = !nulls;
      singles = !singles;
      collisions = !collisions;
      transmissions = !transmissions;
      max_station_transmissions = 0;
      energy =
        (if energy then
           Some
             (Jamming_energy.Energy.of_groups ~n ~slots:!slot ~tx_total:!transmissions
                ~groups:((!slot, !population) :: !retired))
         else None);
    }
  in
  Gauges.note_run ~slots:!slot;
  Array.iter (fun o -> o.Observer.on_result result) obs;
  result
