(** Named protocol and adversary constructors shared by the experiment
    registry, the benchmark harness and the CLI binaries.

    A spec closes over nothing run-specific: instantiating it with a
    {!Runner.setup} yields fresh per-run state, so replications are
    independent. *)

type protocol = {
  p_name : string;
  p_make : n:int -> window:int -> Jamming_station.Uniform.factory;
      (** Some baselines legitimately receive global knowledge ([n] for
          the omniscient reference, [n] and [T] for ARSS's γ); the
          paper's own protocols ignore both arguments. *)
}

type adversary = {
  a_name : string;
  a_make : seed:int -> n:int -> eps:float -> window:int -> Jamming_adversary.Adversary.factory;
      (** Adaptive, protocol-aware strategies receive the same knowledge
          the paper grants the adversary (the protocol, [n], the
          history); oblivious ones ignore the arguments. *)
}

(** {1 Protocols} *)

val lesk : eps:float -> protocol
val lesk_with_a : eps:float -> a:float -> protocol
val lesu : ?config:Jamming_core.Lesu.config -> unit -> protocol
val estimation : protocol
val arss : protocol
val willard : protocol
val sawtooth : protocol
val geometric_sweep : protocol
val backoff : protocol
val known_n : protocol

(** {1 Adversaries} *)

val no_jamming : adversary
val greedy : adversary
val random_jam : p:float -> adversary
val front_loaded : adversary
val periodic : adversary
val silence_breaker : adversary
val streak_saver : adversary
val single_suppressor : eps_protocol:float -> adversary
val estimate_twister : eps_protocol:float -> adversary
val estimation_staller : adversary
val notification_saboteur : adversary

val standard_adversaries : eps_protocol:float -> adversary list
(** The E9 ablation zoo, ordered from benign to protocol-aware. *)
