(** E1 — Theorem 2.6: for constant ε and [T = O(log n)], LESK elects a
    leader in [O(log n)] slots w.h.p. *)

val experiment : Registry.t
