(** E14 — "fair use of the wireless channel" (§4): repeated elections
    under a persistent jammer spread leadership uniformly (Jain index
    → 1), because the protocols are uniform and memoryless across
    rounds. *)

val experiment : Registry.t
