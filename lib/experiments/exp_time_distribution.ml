module D = Jamming_stats.Descriptive
module H = Jamming_stats.Histogram

let run scale out =
  let ppf = Output.ppf out in
  let reps = match scale with Registry.Quick -> 2_000 | Registry.Full -> 20_000 in
  let n = 1024 and eps = 0.5 and window = 64 in
  let setup = { Runner.n; eps; window; max_slots = 100_000 } in
  let sample = Runner.replicate ~engine:(Runner.Uniform (Specs.lesk ~eps)) ~reps setup Specs.greedy in
  let xs = Runner.slots sample in
  let s = D.summarize xs in
  Format.fprintf ppf
    "LESK(%.1f), n = %d, greedy jammer, %d runs: mean %.1f, median %.1f, p95 %.1f, max \
     %.1f (theory shape %.0f).@.@."
    eps n reps s.D.mean s.D.median s.D.p95 s.D.max
    (Jamming_core.Lesk.expected_time_bound ~eps ~n ~window);
  let hist = H.of_samples ~bins:18 xs in
  Format.fprintf ppf "%s@." (H.render ~width:56 hist);
  (* Tail geometry: P[T > median + k*delta] should decay ~exponentially.
     Report survival at a few offsets. *)
  let survival t =
    let c = Array.fold_left (fun acc x -> if x > t then acc + 1 else acc) 0 xs in
    float_of_int c /. float_of_int (Array.length xs)
  in
  let table =
    Table.create ~title:"F2: right-tail survival (geometric decay per Lemma 2.4)"
      ~columns:[ ("threshold", Table.Right); ("P[T > threshold]", Table.Right) ]
  in
  List.iter
    (fun k ->
      let t = s.D.median +. (k *. 25.0) in
      Table.add_row table [ Table.fmt_float t; Printf.sprintf "%.4f" (survival t) ])
    [ 0.0; 1.0; 2.0; 3.0; 4.0 ];
  Output.table out table;
  Format.fprintf ppf
    "Each 25-slot step multiplies the tail by a roughly constant factor: once u sits in \
     the regular band, every slot is an independent Bernoulli(>= ln(a)/a^2) chance to \
     elect, so the excess over the ramp-up time is geometric — which is exactly why the \
     w.h.p. bound only costs a constant factor over the expectation.@."

let experiment =
  {
    Registry.id = "F2";
    name = "time-distribution";
    claim =
      "Theorem 2.6's w.h.p. form: the election-time distribution is a deterministic-ish \
       ramp plus a geometric tail, so quantiles sit a constant factor above the mean.";
    run;
  }
