type align = Left | Right

type row = Cells of string list | Separator

type t = {
  title : string;
  columns : (string * align) list;
  mutable rows : row list;  (* reversed *)
}

let create ~title ~columns =
  if columns = [] then invalid_arg "Table.create: need at least one column";
  { title; columns; rows = [] }

let title t = t.title

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Table.add_row: %d cells for %d columns" (List.length cells)
         (List.length t.columns));
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render t =
  let rows = List.rev t.rows in
  let headers = List.map fst t.columns in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row ->
            match row with
            | Separator -> acc
            | Cells cells -> Int.max acc (String.length (List.nth cells i)))
          (String.length h) rows)
      headers
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  let dashes = List.map (fun w -> String.make w '-') widths in
  let line cells =
    let padded =
      List.map2
        (fun (cell, (_, align)) width -> pad align width cell)
        (List.combine cells t.columns)
        widths
    in
    Buffer.add_string buf ("| " ^ String.concat " | " padded ^ " |\n")
  in
  line headers;
  line dashes;
  List.iter (function Cells cells -> line cells | Separator -> line dashes) rows;
  Buffer.contents buf

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let buf = Buffer.create 1024 in
  let line cells = Buffer.add_string buf (String.concat "," (List.map csv_escape cells) ^ "\n") in
  line (List.map fst t.columns);
  List.iter (function Cells cells -> line cells | Separator -> ()) (List.rev t.rows);
  Buffer.contents buf

let print ppf t = Format.fprintf ppf "%s@." (render t)

let fmt_int = string_of_int

let fmt_float ?(decimals = 1) v =
  if Float.is_integer v && Float.abs v < 1e15 && decimals <= 1 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.*f" decimals v

let fmt_ratio v = Printf.sprintf "%.2f" v
let fmt_pct v = Printf.sprintf "%.1f%%" (100.0 *. v)

let fmt_slots ~capped v =
  if capped then Printf.sprintf ">%.0f" v else Printf.sprintf "%.0f" v
