(** E3 — Theorem 2.6, the ε term: election time scales like
    [log n / (ε³ log(1/ε))] as the jamming tolerance shrinks. *)

val experiment : Registry.t
