let run scale out =
  let ppf = Output.ppf out in
  let reps_fast, reps_exact =
    match scale with Registry.Quick -> (300, 40) | Registry.Full -> (3000, 300)
  in
  let eps = 0.5 and window = 64 in
  let table =
    Table.create ~title:"E10: success probability within the theory-shaped time envelope"
      ~columns:
        [
          ("protocol", Table.Left);
          ("n", Table.Right);
          ("runs", Table.Right);
          ("cap", Table.Right);
          ("success", Table.Right);
          ("target 1-1/n", Table.Right);
        ]
  in
  let fast_cell ~n protocol =
    let bound = Jamming_core.Lesk.expected_time_bound ~eps ~n ~window in
    let cap = Int.max 50_000 (int_of_float (300.0 *. bound)) in
    let setup = { Runner.n; eps; window; max_slots = cap } in
    let sample = Runner.replicate ~engine:(Runner.Uniform protocol) ~reps:reps_fast setup Specs.greedy in
    Table.add_row table
      [
        protocol.Specs.p_name;
        Table.fmt_int n;
        Table.fmt_int reps_fast;
        Table.fmt_int cap;
        Table.fmt_pct (Runner.success_rate sample);
        Table.fmt_pct (1.0 -. (1.0 /. float_of_int n));
      ]
  in
  fast_cell ~n:64 (Specs.lesk ~eps);
  fast_cell ~n:1024 (Specs.lesk ~eps);
  fast_cell ~n:1024 (Specs.lesu ());
  Table.add_separator table;
  let setup = { Runner.n = 32; eps; window; max_slots = 300_000 } in
  let lewk =
    Runner.replicate
      ~engine:
        (Runner.Exact
           {
             name = "LEWK (weak-CD)";
             cd = Jamming_channel.Channel.Weak_cd;
             factory = Jamming_core.Lewk.station ~eps ();
           })
      ~reps:reps_exact setup Specs.greedy
  in
  Table.add_row table
    [
      "LEWK (weak-CD)";
      Table.fmt_int 32;
      Table.fmt_int reps_exact;
      Table.fmt_int 300_000;
      Table.fmt_pct (Runner.success_rate lewk);
      Table.fmt_pct (1.0 -. (1.0 /. 32.0));
    ];
  Output.table out table;
  Format.fprintf ppf
    "Success = exactly one leader (and, on the exact engine, every station terminated \
     with the right status) under the greedy jammer.@."

let experiment =
  {
    Registry.id = "E10";
    name = "success-probability";
    claim =
      "Theorems 2.6/2.9/3.2 are w.h.p. statements (>= 1 - 1/n^beta): over many seeds the \
       election succeeds within the time envelope essentially always.";
    run;
  }
