module Core = Jamming_core
module Prng = Jamming_prng.Prng
module Budget = Jamming_adversary.Budget
module D = Jamming_stats.Descriptive

let run scale out =
  let ppf = Output.ppf out in
  let reps = match scale with Registry.Quick -> 60 | Registry.Full -> 300 in
  let eps = 0.5 and window = 64 in
  let table =
    Table.create
      ~title:"A4: Estimation threshold L ablation (n = 1024 and 65536, eps = 0.5, T = 64)"
      ~columns:
        [
          ("L", Table.Right);
          ("n", Table.Right);
          ("adversary", Table.Left);
          ("in band", Table.Right);
          ("mean round", Table.Right);
          ("med slots", Table.Right);
        ]
  in
  List.iter
    (fun threshold ->
      List.iter
        (fun n ->
          List.iter
            (fun adversary ->
              let in_band = ref 0 and rounds = ref [] and slots = ref [] in
              for rep = 1 to reps do
                let seed =
                  Prng.seed_of_string
                    (Printf.sprintf "A4/%d/%d/%s/%d" threshold n adversary.Specs.a_name rep)
                in
                let rng = Prng.create ~seed in
                let budget = Budget.create ~window ~eps in
                let adv = adversary.Specs.a_make ~seed ~n ~eps ~window () in
                match
                  Core.Size_approx.run ~threshold ~n ~rng ~adversary:adv ~budget
                    ~max_slots:200_000 ()
                with
                | Core.Size_approx.Estimate { round; slots = s; _ } ->
                    rounds := float_of_int round :: !rounds;
                    slots := float_of_int s :: !slots;
                    if Core.Size_approx.within_lemma_2_8_band ~round ~n ~window then
                      incr in_band
                | Core.Size_approx.Leader_elected { slots = s } ->
                    incr in_band;
                    slots := float_of_int s :: !slots
                | Core.Size_approx.Exhausted _ -> ()
              done;
              Table.add_row table
                [
                  Table.fmt_int threshold;
                  Table.fmt_int n;
                  adversary.Specs.a_name;
                  Table.fmt_pct (float_of_int !in_band /. float_of_int reps);
                  (if !rounds = [] then "-"
                   else Table.fmt_float ~decimals:2 (D.mean (Array.of_list !rounds)));
                  (if !slots = [] then "-"
                   else Table.fmt_float (D.median (Array.of_list !slots)));
                ])
            [ Specs.no_jamming; Specs.random_jam ~p:0.5 ])
        [ 1024; 65536 ];
      Table.add_separator table)
    [ 1; 2; 4; 8 ];
  Output.table out table;
  Format.fprintf ppf
    "Finding: the estimator is remarkably insensitive to L.  Spurious early returns \
     (below the Lemma 2.8 band) would need a Null while n*p is still large — \
     exponentially unlikely even at L = 1 — because each round SQUARES the inverse \
     probability; the doubling structure, not the threshold, carries the robustness.  \
     Larger L can only delay the return within the same round budget (the jammer cannot \
     fake Nulls).  The paper's L = 2 is simply the smallest value whose union-bound \
     proof goes through.@."

let experiment =
  {
    Registry.id = "A4";
    name = "estimation-threshold";
    claim =
      "Lemma 2.8 fixes L = 2; the ablation shows the estimator's accuracy is carried by \
       the doubling round structure, with L nearly irrelevant in practice.";
    run;
  }
