module Core = Jamming_core
module Prng = Jamming_prng.Prng
module Budget = Jamming_adversary.Budget
module D = Jamming_stats.Descriptive

let run scale out =
  let ppf = Output.ppf out in
  let reps = match scale with Registry.Quick -> 25 | Registry.Full -> 100 in
  let eps = 0.5 and window = 64 in
  let table =
    Table.create
      ~title:"E15: refined size approximation under jamming (ratio inversion; eps = 0.5, T = 64)"
      ~columns:
        [
          ("n", Table.Right);
          ("adversary", Table.Left);
          ("median n-hat/n", Table.Right);
          ("p10", Table.Right);
          ("p90", Table.Right);
          ("failed", Table.Right);
          ("med slots", Table.Right);
          ("coarse bracket", Table.Left);
        ]
  in
  List.iter
    (fun n ->
      List.iter
        (fun adversary ->
          let ratios = ref [] and failed = ref 0 and slots = ref [] in
          for rep = 1 to reps do
            let seed =
              Prng.seed_of_string
                (Printf.sprintf "E15/%d/%s/%d" n adversary.Specs.a_name rep)
            in
            let rng = Prng.create ~seed in
            let budget = Budget.create ~window ~eps in
            let adv = adversary.Specs.a_make ~seed ~n ~eps ~window () in
            match Core.Size_approx.refine ~n ~rng ~adversary:adv ~budget ~max_slots:500_000 () with
            | Core.Size_approx.Refined { n_hat; slots = s; _ } ->
                ratios := (n_hat /. float_of_int n) :: !ratios;
                slots := float_of_int s :: !slots
            | Core.Size_approx.Refine_failed { slots = s } ->
                incr failed;
                slots := float_of_int s :: !slots
          done;
          let rs = Array.of_list !ratios in
          let coarse =
            (* The Lemma 2.8 bracket for comparison: 2^(2^i) with i within
               one of log log n spans sqrt(n) .. n^4. *)
            Printf.sprintf "[n^0.5, n^4] = [%.0f, %.1e]"
              (sqrt (float_of_int n))
              (float_of_int n ** 4.0)
          in
          Table.add_row table
            [
              Table.fmt_int n;
              adversary.Specs.a_name;
              (if Array.length rs = 0 then "-" else Table.fmt_ratio (D.median rs));
              (if Array.length rs = 0 then "-" else Table.fmt_ratio (D.quantile rs ~q:0.1));
              (if Array.length rs = 0 then "-" else Table.fmt_ratio (D.quantile rs ~q:0.9));
              Table.fmt_pct (float_of_int !failed /. float_of_int reps);
              Table.fmt_float (D.median (Array.of_list !slots));
              coarse;
            ])
        [ Specs.no_jamming; Specs.greedy; Specs.random_jam ~p:0.5 ];
      Table.add_separator table)
    [ 100; 10_000; 1_000_000 ];
  Output.table out table;
  Format.fprintf ppf
    "n-hat/n concentrates within a small constant band regardless of the jamming \
     strategy, because the inversion uses only Null-frequency RATIOS — the adversary \
     scales all frequencies by the same clear-slot rate (it cannot fake a Null, §2).  \
     Compare the coarse Lemma 2.8 estimator's bracket in the last column.  This \
     refinement is the reproduction's extension of the paper's §4 suggestion; a \
     round-targeting adversary could bias it (it spends budget uniformly here), which \
     is where a proof would have to work.@."

let experiment =
  {
    Registry.id = "E15";
    name = "size-approx-refined";
    claim =
      "Section 4 extension: combining the jamming-proof Null signal with ratio \
       inversion estimates the network size to a small constant factor under the same \
       adversary, far beyond the coarse 2^(2^i) bracket.";
    run;
  }
