let run scale out =
  let ppf = Output.ppf out in
  let reps = match scale with Registry.Quick -> 15 | Registry.Full -> 50 in
  (* eps = 0.25: phase-1 guesses (eps-hat ~ 0.79) are far too
     optimistic, so the schedule's time boxes actually matter. *)
  let n = 1024 and eps = 0.25 and window = 64 in
  let setup = { Runner.n; eps; window; max_slots = 400_000 } in
  let table =
    Table.create ~title:"A3: LESU constant-c calibration (n = 1024, eps = 0.25, greedy adversary)"
      ~columns:
        [
          ("c", Table.Right);
          ("median", Table.Right);
          ("p95", Table.Right);
          ("success", Table.Right);
        ]
  in
  List.iter
    (fun c ->
      let config = { Jamming_core.Lesu.default_config with c } in
      let sample = Runner.replicate ~engine:(Runner.Uniform (Specs.lesu ~config ())) ~reps setup Specs.greedy in
      let xs = Array.map (fun r -> float_of_int r.Jamming_sim.Metrics.slots) sample.Runner.results in
      Table.add_row table
        [
          Table.fmt_float ~decimals:3 c;
          Table.fmt_slots ~capped:(not (Runner.all_completed sample)) (Runner.median_slots sample);
          Table.fmt_float (Jamming_stats.Descriptive.quantile xs ~q:0.95);
          Table.fmt_pct (Runner.success_rate sample);
        ])
    [ 0.005; 0.02; 0.1; 0.5; 4.0; 16.0; 64.0 ];
  Output.table out table;
  Format.fprintf ppf
    "Finding: the existential constant is benign.  Above a small threshold the curve is \
     FLAT — the i-escalation makes the boxes generous and LESK self-stabilizes within the \
     first box for any reasonable c.  Only a c small enough to truncate the first boxes \
     below LESK's completion time (here c <= ~0.02, i.e. boxes of a few slots) costs \
     restarts; the library default c = 4 is comfortably inside the flat region.@."

let experiment =
  {
    Registry.id = "A3";
    name = "lesu-calibration";
    claim =
      "Theorem 2.6/2.9: the constant c exists but is unspecified; this bench justifies \
       the library default.";
    run;
  }
