module D = Jamming_stats.Descriptive

let run scale out =
  let ppf = Output.ppf out in
  let reps = match scale with Registry.Quick -> 400 | Registry.Full -> 4000 in
  let a = 16 (* eps = 0.5 *) in
  let eps = 8.0 /. float_of_int a in
  let table =
    Table.create
      ~title:"A5: exact Markov-chain E[T] vs simulated means, LESK(0.5), no adversary"
      ~columns:
        [
          ("n", Table.Right);
          ("analytic E[T]", Table.Right);
          ("simulated mean", Table.Right);
          ("95% CI", Table.Left);
          ("states", Table.Right);
          ("truncation mass", Table.Right);
        ]
  in
  List.iter
    (fun n ->
      let analytic = Jamming_core.Markov.expected_election_time ~n ~a () in
      let setup = { Runner.n; eps; window = 32; max_slots = 200_000 } in
      let sample = Runner.replicate ~engine:(Runner.Uniform (Specs.lesk ~eps)) ~reps setup Specs.no_jamming in
      let xs = Runner.slots sample in
      let lo, hi = D.mean_ci95 xs in
      Table.add_row table
        [
          Table.fmt_int n;
          Table.fmt_float ~decimals:2 analytic.Jamming_core.Markov.expected_slots;
          Table.fmt_float ~decimals:2 (D.mean xs);
          Printf.sprintf "[%.1f, %.1f]" lo hi;
          Table.fmt_int analytic.Jamming_core.Markov.states;
          Printf.sprintf "%.1e" analytic.Jamming_core.Markov.truncation_mass;
        ])
    [ 4; 64; 1024; 16384 ];
  Output.table out table;
  Format.fprintf ppf
    "The analytic value solves the exact hitting-time system of the u-walk (states on \
     the k/a lattice, closed-form Null/Single/Collision probabilities) — no random \
     numbers involved.  The simulated means' confidence intervals must cover it; this \
     pins down the channel math, the walk dynamics and the engines in one shot.@."

let experiment =
  {
    Registry.id = "A5";
    name = "markov-anchor";
    claim =
      "Verification: an exact, simulation-free Markov computation of LESK's expected \
       election time matches the simulators on the benign channel.";
    run;
  }
