module D = Jamming_stats.Descriptive
module R = Jamming_stats.Regression

let run scale out =
  let ppf = Output.ppf out in
  let ns, reps, cap =
    match scale with
    | Registry.Quick -> ([ 64; 256; 1024; 4096 ], 15, 300_000)
    | Registry.Full -> ([ 64; 256; 1024; 4096; 16384; 65536 ], 30, 2_000_000)
  in
  (* eps < 1/2: the regime where the adversary owns a majority of the
     slots and symmetric estimate updates (backoff) diverge (2.1). *)
  let eps = 0.4 and window = 64 in
  let protocols =
    [
      Specs.lesk ~eps;
      Specs.lesu ();
      Specs.arss;
      Specs.sawtooth;
      Specs.willard;
      Specs.backoff;
    ]
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E8: median slots to elect vs n under a greedy (T=64, eps=0.4) jammer (cap %d)"
           cap)
      ~columns:
        (("n", Table.Right)
        :: List.map (fun p -> (p.Specs.p_name, Table.Right)) protocols)
  in
  let curves = List.map (fun p -> (p.Specs.p_name, ref [])) protocols in
  List.iter
    (fun n ->
      let row =
        List.map2
          (fun protocol (_, curve) ->
            let setup = { Runner.n; eps; window; max_slots = cap } in
            let sample = Runner.replicate ~engine:(Runner.Uniform protocol) ~reps setup Specs.greedy in
            let m = Runner.median_slots sample in
            let capped = not (Runner.all_completed sample) in
            if not capped then curve := (float_of_int n, m) :: !curve;
            Table.fmt_slots ~capped m)
          protocols curves
      in
      Table.add_row table (Table.fmt_int n :: row))
    ns;
  Output.table out table;
  (* Growth exponents in log n: fit log(median) on log(log2 n). *)
  List.iter
    (fun (name, curve) ->
      match !curve with
      | _ :: _ :: _ as pts ->
          let pts = List.rev pts in
          let xs = Array.of_list (List.map (fun (n, _) -> Float.log2 n) pts) in
          let ys = Array.of_list (List.map snd pts) in
          (try
             let fit = R.log_log_slope ~xs ~ys in
             Format.fprintf ppf "%-12s median ~ (log n)^%.2f   (r2 = %.3f)@." name
               fit.R.slope fit.R.r2
           with Invalid_argument _ -> ())
      | _ -> Format.fprintf ppf "%-12s hit the cap everywhere (no fit)@." name)
    (List.map (fun (n, c) -> (n, c)) curves);
  Format.fprintf ppf
    "@.The paper's headline: LESK exponent ~1 (O(log n)) vs ARSS's provable O(log^4 n); \
     Willard/backoff are steered by fake Collisions and blow past the cap.@.";
  (* Where the per-station baselines cannot follow: LESK and LESU on
     the aggregate counting engine at n = 10^7..10^9, same jammer. *)
  let ns_pop, reps_pop =
    match scale with
    | Registry.Quick -> ([ 10_000_000; 100_000_000 ], 10)
    | Registry.Full -> ([ 10_000_000; 100_000_000; 1_000_000_000 ], 25)
  in
  let engines =
    [
      ("LESK(0.4)", Runner.aggregate_lesk ~eps ());
      ("LESU", Runner.aggregate_lesu ());
    ]
  in
  let pop_table =
    Table.create
      ~title:
        "E8 (aggregate engine): median slots at n = 10^7..10^9 under the same greedy jammer"
      ~columns:
        (("n", Table.Right)
        :: List.map (fun (name, _) -> (name, Table.Right)) engines)
  in
  List.iter
    (fun n ->
      let row =
        List.map
          (fun (_, engine) ->
            let setup = { Runner.n; eps; window; max_slots = cap } in
            let sample = Runner.replicate ~engine ~reps:reps_pop setup Specs.greedy in
            Table.fmt_slots
              ~capped:(not (Runner.all_completed sample))
              (Runner.median_slots sample))
          engines
      in
      Table.add_row pop_table (Table.fmt_int n :: row))
    ns_pop;
  Output.table out pop_table

let experiment =
  {
    Registry.id = "E8";
    name = "vs-arss";
    claim =
      "Sections 1.2-1.3: LESK needs O(log n) slots where the [3] framework proves O(log^4 \
       n); non-robust classics (Willard, backoff) fail outright under the same jammer.";
    run;
  }
