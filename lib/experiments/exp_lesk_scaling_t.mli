(** E2 — Theorem 2.6, the [T] term: for large [T] the election time of
    LESK grows as [Θ(T)]. *)

val experiment : Registry.t
