(** E8 — §1.2/§1.3 comparison: LESK's [O(log n)] vs the [O(log⁴ n)] of
    the Awerbuch et al. [3] MAC framework, plus the non-robust classics,
    all under the same jammer. *)

val experiment : Registry.t
