(** E9 — robustness against an {e arbitrary adaptive} adversary: LESK's
    election time under the full strategy zoo, from no jamming to
    protocol-aware attacks, stays within the Theorem 2.6 envelope. *)

val experiment : Registry.t
