(** A9 — median awake slots per station vs n: LMR's log-logarithmic
    awake time against LESK's awake-for-the-whole-election baseline. *)

val experiment : Registry.t
