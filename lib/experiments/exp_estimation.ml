module Core = Jamming_core
module Prng = Jamming_prng.Prng
module Budget = Jamming_adversary.Budget

let run scale out =
  let ppf = Output.ppf out in
  let ns, windows, reps =
    match scale with
    | Registry.Quick -> ([ 128; 1024; 16384 ], [ 16; 1024 ], 40)
    | Registry.Full -> ([ 128; 1024; 16384; 262144; 1048576 ], [ 16; 1024; 16384 ], 100)
  in
  let eps = 0.5 in
  let table =
    Table.create ~title:"E5: Estimation(2) accuracy (eps = 0.5)"
      ~columns:
        [
          ("adversary", Table.Left);
          ("n", Table.Right);
          ("T", Table.Right);
          ("band", Table.Left);
          ("mean round", Table.Right);
          ("in band", Table.Right);
          ("singled", Table.Right);
          ("med slots", Table.Right);
        ]
  in
  let adversaries = [ Specs.no_jamming; Specs.greedy; Specs.estimation_staller ] in
  List.iter
    (fun adversary ->
      List.iter
        (fun n ->
          List.iter
            (fun window ->
              let in_band = ref 0 and singled = ref 0 and rounds = ref [] in
              let slots = ref [] in
              for rep = 1 to reps do
                let seed =
                  Prng.seed_of_string
                    (Printf.sprintf "E5/%s/%d/%d/%d" adversary.Specs.a_name n window rep)
                in
                let rng = Prng.create ~seed in
                let adv = adversary.Specs.a_make ~seed ~n ~eps ~window () in
                let budget = Budget.create ~window ~eps in
                let outcome =
                  Core.Size_approx.run ~n ~rng ~adversary:adv ~budget
                    ~max_slots:(Int.max 100_000 (64 * window))
                    ()
                in
                match outcome with
                | Core.Size_approx.Estimate { round; slots = s; _ } ->
                    rounds := float_of_int round :: !rounds;
                    slots := float_of_int s :: !slots;
                    if Core.Size_approx.within_lemma_2_8_band ~round ~n ~window then
                      incr in_band
                | Core.Size_approx.Leader_elected { slots = s } ->
                    incr singled;
                    slots := float_of_int s :: !slots
                | Core.Size_approx.Exhausted _ -> ()
              done;
              let repsf = float_of_int reps in
              let loglog_n = Float.log2 (Float.log2 (float_of_int n)) in
              let log_t = Float.log2 (float_of_int window) in
              let band =
                Printf.sprintf "[%.1f, %.1f]" (loglog_n -. 1.0)
                  (Float.max loglog_n log_t +. 1.0)
              in
              Table.add_row table
                [
                  adversary.Specs.a_name;
                  Table.fmt_int n;
                  Table.fmt_int window;
                  band;
                  (if !rounds = [] then "-"
                   else
                     Table.fmt_float ~decimals:2
                       (Jamming_stats.Descriptive.mean (Array.of_list !rounds)));
                  Table.fmt_pct (float_of_int (!in_band + !singled) /. repsf);
                  Table.fmt_pct (float_of_int !singled /. repsf);
                  (if !slots = [] then "-"
                   else
                     Table.fmt_float
                       (Jamming_stats.Descriptive.median (Array.of_list !slots)));
                ])
            windows)
        ns;
      Table.add_separator table)
    adversaries;
  Output.table out table;
  Format.fprintf ppf
    "'in band' counts runs whose round satisfies Lemma 2.8 (runs that elected a leader \
     during estimation also count as successes, as in the lemma statement).@."

let experiment =
  {
    Registry.id = "E5";
    name = "estimation-accuracy";
    claim =
      "Lemma 2.8: w.h.p. Estimation(2) obtains a Single or returns i with log log n - 1 <= \
       i <= max{log log n, log T} + 1, within O(max{log n, T}) slots.";
    run;
  }
