(** E13 — the paper's closing open problem (§4): "it is not clear what
    countermeasures against a jammer can be constructed for the
    communication model without collision detection."

    This experiment maps the no-CD terrain empirically: feedback-free
    protocols still achieve selection resolution (the jammer can only
    erase their Singles, costing a 1/ε factor), feedback-driven ones
    (LESK) are blinded because a Null is indistinguishable from the
    jammer's Collisions, and the Notification handshake loses its
    termination signal (the leader waits for a C1-Null it can never
    hear). *)

val experiment : Registry.t
