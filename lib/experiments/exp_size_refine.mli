(** E15 — the §4 size-approximation building block, sharpened: the
    ratio-inversion refinement estimates [n] to a small constant factor
    under jamming (vs the [√n … n⁴] bracket of the raw Lemma 2.8
    estimator). *)

val experiment : Registry.t
