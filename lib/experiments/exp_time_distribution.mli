(** F2 — the distributional view behind the w.h.p. claims: LESK's
    election-time histogram has a sharp mode near the theory shape and a
    geometric right tail (each regular slot succeeds independently with
    probability ≥ ln(a)/a², Lemma 2.4). *)

val experiment : Registry.t
