(** E6 — Theorem 2.9: LESU (no knowledge of ε, T or n) elects a leader
    in [O((log log(1/ε)/ε³)·log n)] when [T] is small, paying only a
    bounded factor over the ε-aware LESK. *)

val experiment : Registry.t
