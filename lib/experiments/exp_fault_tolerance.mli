(** A6 — election success and slot-count curves for LESK/LESU/LEWK under
    injected CD misperception and crash-stop faults. *)

val experiment : Registry.t
