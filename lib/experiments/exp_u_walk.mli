(** F1 — the figure behind §2.2's analysis: LESK's estimate [u] performs
    a biased random walk that locks onto [log₂ n] regardless of the
    jamming, spending most slots in the regular band of Lemma 2.4. *)

val experiment : Registry.t
