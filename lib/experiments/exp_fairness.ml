module Prng = Jamming_prng.Prng
module Budget = Jamming_adversary.Budget
module Fair_use = Jamming_core.Fair_use

let run scale out =
  let ppf = Output.ppf out in
  let rounds = match scale with Registry.Quick -> 150 | Registry.Full -> 1000 in
  let eps = 0.5 and window = 32 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "E14: %d consecutive elections under one persistent jam budget"
           rounds)
      ~columns:
        [
          ("n", Table.Right);
          ("adversary", Table.Left);
          ("rounds done", Table.Right);
          ("slots/round", Table.Right);
          ("Jain(wins)", Table.Right);
          ("Jain(energy)", Table.Right);
          ("max/min wins", Table.Right);
        ]
  in
  List.iter
    (fun (n, adversary) ->
      let seed = Prng.seed_of_string (Printf.sprintf "E14/%d/%s" n adversary.Specs.a_name) in
      let rng = Prng.create ~seed in
      let budget = Budget.create ~window ~eps in
      let adv = adversary.Specs.a_make ~seed ~n ~eps ~window () in
      let o =
        Fair_use.run ~rounds ~n ~eps ~rng ~adversary:adv ~budget ~max_slots:10_000_000 ()
      in
      let wins = Array.map float_of_int o.Fair_use.wins in
      let max_w = Jamming_stats.Descriptive.max wins
      and min_w = Jamming_stats.Descriptive.min wins in
      Table.add_row table
        [
          Table.fmt_int n;
          adversary.Specs.a_name;
          Table.fmt_int o.Fair_use.completed_rounds;
          Table.fmt_float
            (float_of_int o.Fair_use.total_slots
            /. float_of_int (Int.max 1 o.Fair_use.completed_rounds));
          Table.fmt_ratio o.Fair_use.jain_wins;
          Table.fmt_ratio o.Fair_use.jain_energy;
          Printf.sprintf "%.0f/%.0f" max_w min_w;
        ])
    [
      (8, Specs.no_jamming);
      (8, Specs.greedy);
      (16, Specs.greedy);
      (16, Specs.silence_breaker);
    ];
  Output.table out table;
  Format.fprintf ppf
    "Jain index: 1.00 = perfectly even, 1/n = monopoly.  Wins spread evenly because \
     each election's winner is uniform over the stations regardless of the jamming; \
     energy is near-perfectly even because the protocol is uniform by construction \
     (every station transmits with the same probability in every slot).@."

let experiment =
  {
    Registry.id = "E14";
    name = "fair-use";
    claim =
      "Section 4: the machinery supports fair channel use — leadership and energy over \
       repeated elections are spread evenly (Jain index near 1) even under persistent \
       jamming.";
    run;
  }
