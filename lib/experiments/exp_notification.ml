module D = Jamming_stats.Descriptive
module Channel = Jamming_channel.Channel

let run scale out =
  let ppf = Output.ppf out in
  let ns, reps =
    match scale with
    | Registry.Quick -> ([ 8; 32; 128 ], 15)
    | Registry.Full -> ([ 4; 8; 32; 128; 512 ], 40)
  in
  let eps = 0.5 and window = 32 in
  let table =
    Table.create
      ~title:"E7: weak-CD LEWK vs strong-CD LESK on the exact engine (eps = 0.5, T = 32)"
      ~columns:
        [
          ("adversary", Table.Left);
          ("n", Table.Right);
          ("LEWK med", Table.Right);
          ("LESK med", Table.Right);
          ("overhead", Table.Right);
          ("correct", Table.Right);
        ]
  in
  let overheads = ref [] in
  List.iter
    (fun adversary ->
      List.iter
        (fun n ->
          let setup = { Runner.n; eps; window; max_slots = 300_000 } in
          (* The pooled spec shares the Exact "LEWK" seed tags, so the
             table is bit-identical to the closure-engine original —
             only faster (DESIGN.md §15).  The oracle check below
             re-asserts that identity on every E7 invocation. *)
          let lewk = Runner.replicate ~engine:(Runner.pooled_lewk ~eps ()) ~reps setup adversary in
          let lesk =
            Runner.replicate
              ~engine:
                (Runner.Exact
                   {
                     name = "LESK";
                     cd = Channel.Strong_cd;
                     factory = Jamming_core.Lesk.station ~eps;
                   })
              ~reps setup adversary
          in
          let mw = Runner.median_slots lewk and mk = Runner.median_slots lesk in
          let overhead = mw /. Float.max 1.0 mk in
          overheads := overhead :: !overheads;
          Table.add_row table
            [
              adversary.Specs.a_name;
              Table.fmt_int n;
              Table.fmt_slots ~capped:(not (Runner.all_completed lewk)) mw;
              Table.fmt_float mk;
              Table.fmt_ratio overhead;
              Table.fmt_pct (Runner.success_rate lewk);
            ])
        ns;
      Table.add_separator table)
    [ Specs.no_jamming; Specs.random_jam ~p:0.5; Specs.greedy; Specs.notification_saboteur ];
  Output.table out table;
  let ovs = Array.of_list !overheads in
  Format.fprintf ppf
    "Overhead median %.2fx, max %.2fx across all cells (Lemma 3.1 proves a constant; its \
     proof gives <= 8x against the adversary's schedule, on top of the interval ramp-up \
     for tiny n).  'correct' must be 100%%: exactly one leader and all stations \
     terminated.@."
    (D.median ovs) (D.max ovs);
  (* Oracle check: the flat-pool engine behind the LEWK column must be
     bit-identical to the closure engine it replaced — full result
     equality per seed, not a distributional test. *)
  let oracle_seeds = 25 in
  let setup = { Runner.n = 48; eps; window; max_slots = 300_000 } in
  let closure_engine =
    Runner.Exact
      { name = "LEWK"; cd = Channel.Weak_cd; factory = Jamming_core.Lewk.station ~eps () }
  in
  for i = 1 to oracle_seeds do
    let seed = Jamming_prng.Prng.seed_of_string (Printf.sprintf "E7/pool-oracle/%d" i) in
    let closure = Runner.run ~engine:closure_engine setup Specs.greedy ~seed in
    let pooled = Runner.run ~engine:(Runner.pooled_lewk ~eps ()) setup Specs.greedy ~seed in
    if closure <> pooled then
      failwith (Printf.sprintf "E7: pooled engine diverged from closure oracle (seed %d)" i)
  done;
  Format.fprintf ppf
    "Pool oracle: flat-pool LEWK bit-identical to the closure engine on %d seeds (n = %d, \
     greedy).@."
    oracle_seeds setup.Runner.n

let experiment =
  {
    Registry.id = "E7";
    name = "notification-overhead";
    claim =
      "Lemma 3.1 / Theorem 3.2: Notification lifts LESK to weak-CD with constant factor \
       slot overhead and full termination; correctness holds for every adversary and n >= 3.";
    run;
  }
