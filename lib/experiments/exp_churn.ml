(* A7 — self-healing leader election under churn (DESIGN.md §12).
   The paper elects one leader over a fixed population; here the
   population churns (à la Augustine et al., "Robust Leader Election in
   a Fast-Changing World") and the dynamic driver re-elects whenever
   the leader dies or an attempt stalls.  Two questions:

   (a) how does leaderless downtime scale with the churn rate, and
   (b) how expensive is recovery when the adversary adaptively kills
       each freshly elected leader — with and without jamming on top.

   Every run is monitored (jam budget, slot accounting, at-most-one
   live leader across epochs); a violation aborts the experiment. *)

module D = Jamming_stats.Descriptive
module Channel = Jamming_channel.Channel
module Churn = Jamming_faults.Churn
module Dynamic = Jamming_sim.Dynamic

let engine ~eps =
  Runner.Exact
    { name = "LESK-exact"; cd = Channel.Strong_cd; factory = Jamming_core.Lesk.station ~eps }

(* Mean downtime of a single re-election: leaderless slots per attempt. *)
let mean_reelection_latency (s : Runner.churn_sample) =
  let lat =
    Array.map
      (fun (r : Dynamic.result) ->
        let attempts = r.Dynamic.elections_completed + r.Dynamic.elections_failed in
        if attempts = 0 then 0.0
        else float_of_int r.Dynamic.leaderless_slots /. float_of_int attempts)
      s.Runner.c_results
  in
  D.mean lat

let mean_field f (s : Runner.churn_sample) =
  D.mean (Array.map (fun r -> float_of_int (f r)) s.Runner.c_results)

let leader_churn_sweep ~reps ~setup ~eps out =
  let table =
    Table.create
      ~title:
        "A7a: leaderless downtime vs leader churn — the leader departs (and one \
         station joins) every K slots over the first max_slots/2, greedy jammer"
      ~columns:
        [
          ("K", Table.Right);
          ("elections", Table.Right);
          ("leaderless", Table.Right);
          ("max gap", Table.Right);
          ("latency", Table.Right);
          ("healed", Table.Right);
        ]
  in
  List.iter
    (fun period ->
      let churn =
        match period with
        | None -> Churn.none
        | Some k ->
            let horizon = setup.Runner.max_slots / 2 in
            let events = ref [] in
            let at = ref k in
            while !at <= horizon do
              (* The join replaces the departed leader, so the population
                 neither drains nor grows across the sweep. *)
              events :=
                { Churn.at = !at; kind = Churn.Join 1 }
                :: { Churn.at = !at; kind = Churn.Leave Churn.Leader }
                :: !events;
              at := !at + k
            done;
            Churn.Oblivious (List.rev !events)
      in
      let sample =
        Runner.replicate_churn ~engine:(engine ~eps) ~churn
          ~restart_after:(4 * setup.Runner.max_slots)
          ~reps setup Specs.greedy
      in
      Table.add_row table
        [
          (match period with None -> "none" | Some k -> Table.fmt_int k);
          Table.fmt_float ~decimals:2 (Runner.mean_elections_completed sample);
          Table.fmt_float ~decimals:1 (Runner.mean_leaderless_slots sample);
          Table.fmt_int (Runner.max_leaderless_interval sample);
          Table.fmt_float ~decimals:1 (mean_reelection_latency sample);
          Table.fmt_pct (Runner.healed_rate sample);
        ])
    [ None; Some 8192; Some 4096; Some 2048; Some 1024 ];
  Output.table out table

let rate_sweep ~reps ~setup ~eps out =
  let table =
    Table.create
      ~title:
        "A7c: member churn is free — Rate churn (p_join = p_leave = 1/2, burst <= 2, \
         horizon = max_slots/2) never touches the leader, so downtime does not move"
      ~columns:
        [
          ("tick every", Table.Right);
          ("elections", Table.Right);
          ("arrivals", Table.Right);
          ("departures", Table.Right);
          ("leaderless", Table.Right);
          ("max gap", Table.Right);
          ("latency", Table.Right);
          ("healed", Table.Right);
        ]
  in
  List.iter
    (fun every ->
      let churn =
        match every with
        | None -> Churn.none
        | Some every ->
            Churn.Rate
              {
                every;
                p_join = 0.5;
                p_leave = 0.5;
                max_burst = 2;
                horizon = setup.Runner.max_slots / 2;
              }
      in
      let sample =
        Runner.replicate_churn ~engine:(engine ~eps) ~churn
          ~restart_after:(4 * setup.Runner.max_slots)
          ~reps setup Specs.greedy
      in
      Table.add_row table
        [
          (match every with None -> "none" | Some e -> Table.fmt_int e);
          Table.fmt_float ~decimals:2 (Runner.mean_elections_completed sample);
          Table.fmt_float ~decimals:1 (mean_field (fun r -> r.Dynamic.arrivals) sample);
          Table.fmt_float ~decimals:1 (mean_field (fun r -> r.Dynamic.departures) sample);
          Table.fmt_float ~decimals:1 (Runner.mean_leaderless_slots sample);
          Table.fmt_int (Runner.max_leaderless_interval sample);
          Table.fmt_float ~decimals:1 (mean_reelection_latency sample);
          Table.fmt_pct (Runner.healed_rate sample);
        ])
    [ None; Some 2048; Some 1024; Some 512; Some 256 ];
  Output.table out table

let killer_sweep ~reps ~setup ~eps out =
  let table =
    Table.create
      ~title:
        "A7b: adaptive leader killing — every elected leader crashes 2T slots after \
         winning; re-election latency under increasing jamming pressure"
      ~columns:
        [
          ("adversary", Table.Right);
          ("kills", Table.Right);
          ("elections", Table.Right);
          ("leaderless", Table.Right);
          ("max gap", Table.Right);
          ("latency", Table.Right);
          ("healed", Table.Right);
        ]
  in
  let max_kills = 4 in
  List.iter
    (fun adversary ->
      let churn = Churn.Leader_killer { grace = 2 * setup.Runner.window; max_kills } in
      let sample =
        Runner.replicate_churn ~engine:(engine ~eps) ~churn
          ~restart_after:(4 * setup.Runner.max_slots)
          ~reps setup adversary
      in
      Table.add_row table
        [
          sample.Runner.c_adversary_name;
          Table.fmt_float ~decimals:1 (mean_field (fun r -> r.Dynamic.leader_kills) sample);
          Table.fmt_float ~decimals:2 (Runner.mean_elections_completed sample);
          Table.fmt_float ~decimals:1 (Runner.mean_leaderless_slots sample);
          Table.fmt_int (Runner.max_leaderless_interval sample);
          Table.fmt_float ~decimals:1 (mean_reelection_latency sample);
          Table.fmt_pct (Runner.healed_rate sample);
        ])
    [ Specs.no_jamming; Specs.random_jam ~p:0.25; Specs.greedy; Specs.streak_saver ];
  Output.table out table

let run scale out =
  let ppf = Output.ppf out in
  let reps = match scale with Registry.Quick -> 20 | Registry.Full -> 200 in
  let eps = 0.5 and window = 32 and n = 32 in
  let setup = { Runner.n; eps; window; max_slots = 60_000 } in
  leader_churn_sweep ~reps ~setup ~eps out;
  killer_sweep ~reps ~setup ~eps out;
  rate_sweep ~reps ~setup ~eps out;
  Format.fprintf ppf
    "Downtime scales with the rate of leadership churn, not with churn per se: each \
     departure of the leader costs one re-election over the survivors (an O(log n) \
     affair under the paper's guarantee), so halving K in A7a roughly doubles both the \
     election count and the total leaderless slots while the per-re-election latency \
     stays flat.  A7c is the counterpoint: heavy member-only churn moves arrivals and \
     departures but not downtime — followers joining or crashing in the stable regime \
     are pure bookkeeping, no slot is simulated.  The adaptive killer (A7b) is the \
     worst case by construction: every election is immediately voided, so total \
     leaderless time is (kills + 1) elections' worth, and jamming multiplies each \
     re-election's length exactly as Theorem 2.6 prices a single one.  Healed stays at \
     100%% throughout: with the restart deadline armed, the driver re-elects until a \
     leader survives — the self-healing guarantee this experiment exists to witness.  \
     Every run passed the full dynamic monitor (jam budget across gaps, slot \
     accounting, at most one live leader across epochs).@."

let experiment =
  {
    Registry.id = "A7";
    name = "churn";
    claim =
      "Robustness extension: under rate-bounded churn and an adaptive leader-killing \
       adversary, chained LESK re-elections keep the network governed — leaderless \
       downtime scales with churn rate and jamming pressure, and the population always \
       re-heals.";
    run;
  }
