module D = Jamming_stats.Descriptive

let run scale out =
  let ppf = Output.ppf out in
  let eps_list, reps =
    match scale with
    | Registry.Quick -> ([ 0.9; 0.7; 0.5; 0.35; 0.25 ], 20)
    | Registry.Full -> ([ 0.9; 0.8; 0.7; 0.6; 0.5; 0.4; 0.3; 0.25; 0.2; 0.15 ], 40)
  in
  let n = 1024 and window = 32 in
  let table =
    Table.create ~title:"E3: LESK election time vs eps (n = 1024, T = 32, greedy adversary)"
      ~columns:
        [
          ("eps", Table.Right);
          ("median", Table.Right);
          ("p95", Table.Right);
          ("bound shape", Table.Right);
          ("median/bound", Table.Right);
          ("success", Table.Right);
        ]
  in
  let ratios = ref [] in
  let points = ref [] in
  List.iter
    (fun eps ->
      let bound = Jamming_core.Lesk.expected_time_bound ~eps ~n ~window in
      let setup =
        { Runner.n; eps; window; max_slots = Int.max 50_000 (int_of_float (200.0 *. bound)) }
      in
      let sample = Runner.replicate ~engine:(Runner.Uniform (Specs.lesk ~eps)) ~reps setup Specs.greedy in
      let s = D.summarize (Runner.slots sample) in
      let ratio = s.D.median /. bound in
      ratios := ratio :: !ratios;
      points := (eps, s.D.median) :: !points;
      Table.add_row table
        [
          Table.fmt_float ~decimals:2 eps;
          Table.fmt_float s.D.median;
          Table.fmt_float s.D.p95;
          Table.fmt_float bound;
          Table.fmt_ratio ratio;
          Table.fmt_pct (Runner.success_rate sample);
        ])
    eps_list;
  Output.table out table;
  let rs = Array.of_list !ratios in
  Format.fprintf ppf
    "median/bound spread (max/min) = %.2f — a bounded spread across a %gx range of eps \
     means the eps^-3/log(1/eps) shape tracks the data.@."
    (D.max rs /. D.min rs)
    (List.fold_left Float.max 0.0 eps_list /. List.fold_left Float.min 1.0 eps_list);
  Format.fprintf ppf "@.%s@."
    (Ascii_plot.render ~log_y:true ~x_label:"eps" ~y_label:"median slots"
       [ { Ascii_plot.label = "LESK median"; points = List.rev !points } ])

let experiment =
  {
    Registry.id = "E3";
    name = "lesk-eps";
    claim =
      "Theorem 2.6: the eps-dependence of LESK's time is log n / (eps^3 log(1/eps)); \
       measured medians divided by that shape stay within a constant band.";
    run;
  }
