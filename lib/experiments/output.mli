(** Output context for experiments: renders tables and narrative text to
    a formatter and, optionally, mirrors every table to a CSV file —
    so `sweep --csv DIR` leaves plot-ready data behind. *)

type t

val to_formatter : Format.formatter -> t
(** Text-only output. *)

val with_csv_dir : dir:string -> Format.formatter -> t
(** Also write each table to [dir/<experiment>-<k>-<slug>.csv].  The
    directory is created if missing. *)

val ppf : t -> Format.formatter
(** The formatter, for narrative text and figures. *)

val begin_experiment : t -> id:string -> unit
(** Scope subsequent tables under this experiment id (used in CSV file
    names); resets the per-experiment table counter. *)

val table : t -> Table.t -> unit
(** Render the table to the formatter and mirror it to CSV if enabled. *)

val csv_files_written : t -> string list
(** Paths written so far, most recent first. *)
