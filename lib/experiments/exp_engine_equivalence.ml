module D = Jamming_stats.Descriptive

let run scale out =
  let ppf = Output.ppf out in
  let reps = match scale with Registry.Quick -> 200 | Registry.Full -> 1000 in
  let eps = 0.5 and window = 32 in
  let table =
    Table.create
      ~title:"A1: uniform (O(1)/slot) vs exact (O(n)/slot) engine, LESK(0.5), greedy jammer"
      ~columns:
        [
          ("n", Table.Right);
          ("uniform med", Table.Right);
          ("exact med", Table.Right);
          ("uniform mean", Table.Right);
          ("exact mean", Table.Right);
          ("mean ratio", Table.Right);
          ("KS p-value", Table.Right);
        ]
  in
  List.iter
    (fun n ->
      let setup = { Runner.n; eps; window; max_slots = 100_000 } in
      let fast = Runner.replicate ~engine:(Runner.Uniform (Specs.lesk ~eps)) ~reps setup Specs.greedy in
      let exact =
        Runner.replicate_exact ~cd:Jamming_channel.Channel.Strong_cd ~reps setup
          ~name:"LESK-exact"
          ~factory:(Jamming_core.Lesk.station ~eps)
          Specs.greedy
      in
      let fu = Runner.slots fast and ex = Runner.slots exact in
      let ks_p =
        Jamming_stats.Ks.p_value ~n1:(Array.length fu) ~n2:(Array.length ex)
          ~d:(Jamming_stats.Ks.statistic fu ex)
      in
      Table.add_row table
        [
          Table.fmt_int n;
          Table.fmt_float (D.median fu);
          Table.fmt_float (D.median ex);
          Table.fmt_float ~decimals:1 (D.mean fu);
          Table.fmt_float ~decimals:1 (D.mean ex);
          Table.fmt_ratio (D.mean fu /. D.mean ex);
          Table.fmt_float ~decimals:3 ks_p;
        ])
    [ 8; 64; 512 ];
  Output.table out table;
  Format.fprintf ppf
    "The uniform engine samples the exact 0/1/>=2 transmitter-count trichotomy, so the \
     two simulations draw from the same process; mean ratios hover around 1.0 and the \
     two-sample Kolmogorov-Smirnov test does not distinguish the election-time \
     distributions (p-values far above any rejection level).@.";
  (* Zero-fault injection must be a no-op: the exact engine with an
     all-zero fault config (and the online monitor attached) is required
     to be bit-identical to the seed engine for the same seeds. *)
  let zero_seeds = 25 in
  let setup = { Runner.n = 24; eps; window; max_slots = 100_000 } in
  for i = 1 to zero_seeds do
    let seed = Jamming_prng.Prng.seed_of_string (Printf.sprintf "A1/zero-fault/%d" i) in
    let plain =
      Runner.run_exact_once ~cd:Jamming_channel.Channel.Strong_cd setup
        ~factory:(Jamming_core.Lesk.station ~eps)
        Specs.greedy ~seed
    in
    let faulty =
      Runner.run_faulty_once ~cd:Jamming_channel.Channel.Strong_cd setup
        ~factory:(Jamming_core.Lesk.station ~eps)
        ~faults:Jamming_faults.Config.none Specs.greedy ~seed
    in
    if plain <> faulty then
      failwith
        (Printf.sprintf
           "A1: zero-fault injection is NOT bit-identical to the seed engine (seed %d: \
            %d vs %d slots)"
           seed plain.Jamming_sim.Metrics.slots faulty.Jamming_sim.Metrics.slots)
  done;
  Format.fprintf ppf
    "Zero-fault injection check: %d/%d seeds bit-identical between the seed engine and \
     the fault-injection path (all-zero rates, monitor attached).@." zero_seeds zero_seeds

let experiment =
  {
    Registry.id = "A1";
    name = "engine-equivalence";
    claim =
      "Design validation: the closed-form trichotomy sampling behind the fast engine is \
       distributionally equivalent to simulating every station.";
    run;
  }
