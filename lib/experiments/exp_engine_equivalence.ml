module D = Jamming_stats.Descriptive

let run scale out =
  let ppf = Output.ppf out in
  let reps = match scale with Registry.Quick -> 200 | Registry.Full -> 1000 in
  let eps = 0.5 and window = 32 in
  let table =
    Table.create
      ~title:"A1: uniform (O(1)/slot) vs exact (O(n)/slot) engine, LESK(0.5), greedy jammer"
      ~columns:
        [
          ("n", Table.Right);
          ("uniform med", Table.Right);
          ("exact med", Table.Right);
          ("uniform mean", Table.Right);
          ("exact mean", Table.Right);
          ("mean ratio", Table.Right);
          ("KS p-value", Table.Right);
        ]
  in
  List.iter
    (fun n ->
      let setup = { Runner.n; eps; window; max_slots = 100_000 } in
      let fast = Runner.replicate ~engine:(Runner.Uniform (Specs.lesk ~eps)) ~reps setup Specs.greedy in
      let exact =
        Runner.replicate
          ~engine:
            (Runner.Exact
               {
                 name = "LESK-exact";
                 cd = Jamming_channel.Channel.Strong_cd;
                 factory = Jamming_core.Lesk.station ~eps;
               })
          ~reps setup Specs.greedy
      in
      let fu = Runner.slots fast and ex = Runner.slots exact in
      let ks_p =
        Jamming_stats.Ks.p_value ~n1:(Array.length fu) ~n2:(Array.length ex)
          ~d:(Jamming_stats.Ks.statistic fu ex)
      in
      Table.add_row table
        [
          Table.fmt_int n;
          Table.fmt_float (D.median fu);
          Table.fmt_float (D.median ex);
          Table.fmt_float ~decimals:1 (D.mean fu);
          Table.fmt_float ~decimals:1 (D.mean ex);
          Table.fmt_ratio (D.mean fu /. D.mean ex);
          Table.fmt_float ~decimals:3 ks_p;
        ])
    [ 8; 64; 512 ];
  Output.table out table;
  Format.fprintf ppf
    "The uniform engine samples the exact 0/1/>=2 transmitter-count trichotomy, so the \
     two simulations draw from the same process; mean ratios hover around 1.0 and the \
     two-sample Kolmogorov-Smirnov test does not distinguish the election-time \
     distributions (p-values far above any rejection level).@.";
  (* Zero-fault injection must be a no-op: the exact engine with an
     all-zero fault config (and the online monitor attached) is required
     to be bit-identical to the seed engine for the same seeds. *)
  let zero_seeds = 25 in
  let setup = { Runner.n = 24; eps; window; max_slots = 100_000 } in
  for i = 1 to zero_seeds do
    let seed = Jamming_prng.Prng.seed_of_string (Printf.sprintf "A1/zero-fault/%d" i) in
    let plain =
      Runner.run
        ~engine:
          (Runner.Exact
             {
               name = "LESK-exact";
               cd = Jamming_channel.Channel.Strong_cd;
               factory = Jamming_core.Lesk.station ~eps;
             })
        setup Specs.greedy ~seed
    in
    let faulty =
      Runner.run
        ~engine:
          (Runner.Faulty
             {
               name = "LESK-faulty";
               cd = Jamming_channel.Channel.Strong_cd;
               factory = Jamming_core.Lesk.station ~eps;
               faults = Jamming_faults.Config.none;
               monitor_checks = None;
             })
        setup Specs.greedy ~seed
    in
    if plain <> faulty then
      failwith
        (Printf.sprintf
           "A1: zero-fault injection is NOT bit-identical to the seed engine (seed %d: \
            %d vs %d slots)"
           seed plain.Jamming_sim.Metrics.slots faulty.Jamming_sim.Metrics.slots)
  done;
  Format.fprintf ppf
    "Zero-fault injection check: %d/%d seeds bit-identical between the seed engine and \
     the fault-injection path (all-zero rates, monitor attached).@." zero_seeds zero_seeds;
  (* Active-set hot path vs the O(n) reference oracle: Runner's Exact
     and Faulty engine specs go through Engine.run, which must be
     bit-identical to Engine.run_reference when every stream (stations,
     adversary, fault plans, sensing noise) is rebuilt the way Runner
     derives them.  The uniform engine has no active set and is covered
     by the distributional check above. *)
  let module Engine = Jamming_sim.Engine in
  let module Prng = Jamming_prng.Prng in
  let module Budget = Jamming_adversary.Budget in
  let module Faults = Jamming_faults in
  let oracle_seeds = 25 in
  let eps = 0.5 and window = 32 in
  let setup = { Runner.n = 24; eps; window; max_slots = 100_000 } in
  let faults =
    {
      Faults.Config.none with
      Faults.Config.perception = Faults.Perception.uniform ~p:0.1;
      p_crash = 0.2;
      crash_horizon = 200;
    }
  in
  let reference ~kind ~seed =
    let budget = Budget.create ~window ~eps in
    let rng = Prng.create ~seed in
    let factory = Jamming_core.Lesk.station ~eps in
    let stations = Engine.make_stations ~n:setup.Runner.n ~rng factory in
    let adv =
      Specs.greedy.Specs.a_make ~seed:(seed lxor 0x5bd1e995) ~n:setup.Runner.n ~eps
        ~window ()
    in
    match kind with
    | `Exact ->
        Engine.run_reference ~cd:Jamming_channel.Channel.Strong_cd ~adversary:adv ~budget
          ~max_slots:setup.Runner.max_slots ~stations ()
    | `Faulty ->
        let plan_rng =
          Prng.create ~seed:(Prng.seed_of_string (Printf.sprintf "%d/faults/plans" seed))
        in
        let plans = Faults.Config.sample_plans faults ~rng:plan_rng ~n:setup.Runner.n in
        let stations = Faults.Config.wrap_stations plans stations in
        let injection =
          Faults.Injection.create ~noise:faults.Faults.Config.perception
            ~rng:
              (Prng.create
                 ~seed:(Prng.seed_of_string (Printf.sprintf "%d/faults/noise" seed)))
        in
        let monitor =
          Jamming_sim.Monitor.create ~checks:Jamming_sim.Monitor.safety_checks ~seed
            ~window ~eps ()
        in
        Engine.run_reference ~faults:injection ~monitor
          ~cd:Jamming_channel.Channel.Strong_cd ~adversary:adv ~budget
          ~max_slots:setup.Runner.max_slots ~stations ()
  in
  for i = 1 to oracle_seeds do
    let seed = Jamming_prng.Prng.seed_of_string (Printf.sprintf "A1/active-set/%d" i) in
    let exact =
      Runner.run
        ~engine:
          (Runner.Exact
             {
               name = "LESK-exact";
               cd = Jamming_channel.Channel.Strong_cd;
               factory = Jamming_core.Lesk.station ~eps;
             })
        setup Specs.greedy ~seed
    in
    if not (Jamming_sim.Metrics.equal_result exact (reference ~kind:`Exact ~seed)) then
      failwith
        (Printf.sprintf "A1: exact engine diverged from run_reference (seed %d)" seed);
    let faulty =
      Runner.run
        ~engine:
          (Runner.Faulty
             {
               name = "LESK-faulty";
               cd = Jamming_channel.Channel.Strong_cd;
               factory = Jamming_core.Lesk.station ~eps;
               faults;
               monitor_checks = None;
             })
        setup Specs.greedy ~seed
    in
    if not (Jamming_sim.Metrics.equal_result faulty (reference ~kind:`Faulty ~seed)) then
      failwith
        (Printf.sprintf "A1: faulty engine diverged from run_reference (seed %d)" seed)
  done;
  Format.fprintf ppf
    "Active-set check: %d/%d seeds bit-identical between Engine.run (O(active)/slot) and \
     Engine.run_reference (O(n)/slot) through Runner's Exact and Faulty specs.@."
    oracle_seeds oracle_seeds

let experiment =
  {
    Registry.id = "A1";
    name = "engine-equivalence";
    claim =
      "Design validation: the closed-form trichotomy sampling behind the fast engine is \
       distributionally equivalent to simulating every station.";
    run;
  }
