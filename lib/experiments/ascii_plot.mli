(** Minimal ASCII scatter plots — the "figures of the paper" deliverable
    renders each measured curve next to its theoretical shape. *)

type series = {
  label : string;
  points : (float * float) list;
}

val render :
  ?width:int ->
  ?height:int ->
  ?log_x:bool ->
  ?log_y:bool ->
  x_label:string ->
  y_label:string ->
  series list ->
  string
(** Plots every series on one grid (symbols [*, +, o, x, #, @] in series
    order), with axis ranges from the data and a legend.  Requires at
    least one point overall; log axes require positive coordinates. *)
