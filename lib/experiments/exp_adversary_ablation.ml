module D = Jamming_stats.Descriptive

let run scale out =
  let ppf = Output.ppf out in
  let reps = match scale with Registry.Quick -> 25 | Registry.Full -> 80 in
  let n = 1024 and eps = 0.5 and window = 64 in
  let bound = Jamming_core.Lesk.expected_time_bound ~eps ~n ~window in
  let setup =
    { Runner.n; eps; window; max_slots = Int.max 100_000 (int_of_float (300.0 *. bound)) }
  in
  let table =
    Table.create
      ~title:"E9: LESK(0.5) vs the adversary zoo (n = 1024, T = 64; bound shape = max{T, log n/(eps^3 log 1/eps)})"
      ~columns:
        [
          ("adversary", Table.Left);
          ("median", Table.Right);
          ("p95", Table.Right);
          ("max", Table.Right);
          ("median/bound", Table.Right);
          ("jam frac", Table.Right);
          ("success", Table.Right);
        ]
  in
  List.iter
    (fun adversary ->
      let sample = Runner.replicate ~engine:(Runner.Uniform (Specs.lesk ~eps)) ~reps setup adversary in
      let s = D.summarize (Runner.slots sample) in
      Table.add_row table
        [
          adversary.Specs.a_name;
          Table.fmt_float s.D.median;
          Table.fmt_float s.D.p95;
          Table.fmt_float s.D.max;
          Table.fmt_ratio (s.D.median /. bound);
          Table.fmt_ratio (Runner.median_jammed_fraction sample);
          Table.fmt_pct (Runner.success_rate sample);
        ])
    (Specs.standard_adversaries ~eps_protocol:eps);
  Output.table out table;
  Format.fprintf ppf
    "Every strategy is clamped to the exact (T, 1-eps) budget; the protocol-aware \
     single-suppressor and estimate-twister are the strongest, yet medians stay within a \
     constant multiple of the Theorem 2.6 shape.@."

let experiment =
  {
    Registry.id = "E9";
    name = "adversary-ablation";
    claim =
      "Section 1.1/2.2: LESK's guarantee holds against an arbitrary adaptive adversary — \
       including ones that replicate the protocol state and target its Single window.";
    run;
  }
