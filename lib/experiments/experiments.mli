(** Entry point of the experiment registry (E1–E12 and the design
    ablations A1–A3; see DESIGN.md §5 and EXPERIMENTS.md). *)

val all : Registry.t list
(** In presentation order: E1..E14, A1..A3. *)

val find : string -> Registry.t option
(** Look up by id ("E7") or bench-target name ("notification-overhead"),
    case-insensitively. *)

val run_all :
  ?telemetry:Jamming_telemetry.Telemetry.t -> scale:Registry.scale -> Output.t -> unit

val run_one :
  ?telemetry:Jamming_telemetry.Telemetry.t ->
  scale:Registry.scale ->
  Output.t ->
  Registry.t ->
  unit
(** [telemetry] installs the sink as the process default for the
    duration of the experiment ({!Runner.with_telemetry}) and records
    the experiment's wall time under timer ["experiment.wall"]; pair
    with {!Jamming_sim.Gauges} deltas for slots/sec accounting.  See
    bench/main.ml and [sweep --json-out]. *)

val run_all_fmt : scale:Registry.scale -> Format.formatter -> unit
(** Text-only convenience wrapper. *)
