(** Entry point of the experiment registry (E1–E12 and the design
    ablations A1–A3; see DESIGN.md §5 and EXPERIMENTS.md). *)

val all : Registry.t list
(** In presentation order: E1..E14, A1..A3. *)

val find : string -> Registry.t option
(** Look up by id ("E7") or bench-target name ("notification-overhead"),
    case-insensitively. *)

val run_all : scale:Registry.scale -> Output.t -> unit
val run_one : scale:Registry.scale -> Output.t -> Registry.t -> unit

val run_all_fmt : scale:Registry.scale -> Format.formatter -> unit
(** Text-only convenience wrapper. *)
