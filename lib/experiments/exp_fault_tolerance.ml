(* How far do the paper's guarantees bend when the perfect-physical-layer
   assumptions bend?  Success probability and election time for
   LESK/LESU/LEWK under (1) per-station CD misperception at rate q and
   (2) crash-stop faults at per-station probability p, both against the
   greedy jammer.  Related work (Augustine et al.; Ghaffari–Haeupler)
   studies elections under exactly these imperfections. *)

module D = Jamming_stats.Descriptive
module Channel = Jamming_channel.Channel
module Faults = Jamming_faults

let protocols ~eps =
  [
    ("LESK", Channel.Strong_cd, Jamming_core.Lesk.station ~eps);
    ("LESU", Channel.Strong_cd, Jamming_core.Lesu.station ());
    ("LEWK", Channel.Weak_cd, Jamming_core.Lewk.station ~eps ());
  ]

let sweep ~title ~label ~reps ~setup ~eps ~config_of rates out =
  let table =
    Table.create ~title
      ~columns:
        ([ (label, Table.Right) ]
        @ List.concat_map
            (fun (name, _, _) -> [ (name ^ " ok", Table.Right); (name ^ " med", Table.Right) ])
            (protocols ~eps))
  in
  List.iter
    (fun rate ->
      let cells =
        List.concat_map
          (fun (name, cd, factory) ->
            let sample =
              Runner.replicate
                ~engine:
                  (Runner.Faulty
                     { name; cd; factory; faults = config_of rate; monitor_checks = None })
                ~reps setup Specs.greedy
            in
            let med = D.median (Array.map (fun r -> float_of_int r.Jamming_sim.Metrics.slots) sample.Runner.results) in
            [ Table.fmt_pct (Runner.success_rate sample); Table.fmt_float med ])
          (protocols ~eps)
      in
      Table.add_row table (Table.fmt_float ~decimals:2 rate :: cells))
    rates;
  Output.table out table

let run scale out =
  let ppf = Output.ppf out in
  let reps = match scale with Registry.Quick -> 40 | Registry.Full -> 400 in
  let eps = 0.5 and window = 32 and n = 32 in
  let setup = { Runner.n; eps; window; max_slots = 30_000 } in
  sweep
    ~title:
      "A6a: election success and median slots vs per-station CD misperception rate q \
       (all four flip rates = q), greedy jammer"
    ~label:"q" ~reps ~setup ~eps
    ~config_of:(fun q ->
      { Faults.Config.none with Faults.Config.perception = Faults.Perception.uniform ~p:q })
    [ 0.0; 0.01; 0.05; 0.1; 0.2 ]
    out;
  sweep
    ~title:
      "A6b: election success and median slots vs per-station crash probability p \
       (crash slot uniform in the first 500 slots), greedy jammer"
    ~label:"p" ~reps ~setup ~eps
    ~config_of:(fun p ->
      { Faults.Config.none with Faults.Config.p_crash = p; crash_horizon = 500 })
    [ 0.0; 0.05; 0.1; 0.2; 0.4 ]
    out;
  Format.fprintf ppf
    "CD misperception is the harsh axis: even q = 0.01 breaks strict all-decided \
     elections at n = 32, because a single station misreading the decisive Single (or a \
     forged capture-effect Single crowning a second leader) spoils the run — the \
     protocols lean on every station seeing the same channel.  Crash-stop faults, by \
     contrast, degrade gracefully: success tracks the probability that no station dies \
     undecided (about (1-p)^n early-crash mass), election time for the survivors is \
     unchanged, and survivors always terminate.  The online monitor keeps engine-level \
     invariants (jam budget, slot accounting) on throughout: those never degrade, only \
     the election guarantee does.@."

let experiment =
  {
    Registry.id = "A6";
    name = "fault-tolerance";
    claim =
      "Robustness probe: how fast the LESK/LESU/LEWK guarantees erode under CD \
       misperception and crash-stop faults; the degradation curves quantify how far the \
       perfect-channel assumptions can bend.";
    run;
  }
