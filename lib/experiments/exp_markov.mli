(** A5 — analytic vs simulated: the exact Markov-chain expectation of
    LESK's election time (benign channel) against both engines'
    simulated means — a simulation-free anchor for the whole pipeline. *)

val experiment : Registry.t
