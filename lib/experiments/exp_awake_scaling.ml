module D = Jamming_stats.Descriptive
module R = Jamming_stats.Regression
module Lmr = Jamming_core.Lmr

let loglog n = Float.log2 (Float.log2 (float_of_int n))

let run scale out =
  let ppf = Output.ppf out in
  let ns, reps =
    match scale with
    | Registry.Quick -> ([ 100; 1_000; 10_000; 100_000 ], 10)
    | Registry.Full -> ([ 100; 1_000; 10_000; 100_000 ], 40)
  in
  let eps = 0.5 and window = 64 in
  let table =
    Table.create
      ~title:
        "A9: median awake slots per station vs n, no jamming (LMR knows n; LESK is \
         awake for the whole election)"
      ~columns:
        [
          ("n", Table.Right);
          ("lmr med awake", Table.Right);
          ("awake/loglog n", Table.Right);
          ("lmr slots", Table.Right);
          ("lesk med awake", Table.Right);
          ("lesk slots", Table.Right);
        ]
  in
  let points = ref [] in
  List.iter
    (fun n ->
      let setup = { Runner.n; eps; window; max_slots = 200_000 } in
      let lmr =
        Runner.replicate ~energy:true ~engine:(Runner.pooled_lmr ()) ~reps setup
          Specs.no_jamming
      in
      let lesk =
        Runner.replicate ~energy:true
          ~engine:(Runner.Uniform (Specs.lesk ~eps))
          ~reps setup Specs.no_jamming
      in
      let lmr_awake = Runner.median_awake_slots lmr in
      let lesk_awake = Runner.median_awake_slots lesk in
      points := (loglog n, lmr_awake) :: !points;
      Table.add_row table
        [
          Table.fmt_int n;
          Table.fmt_float ~decimals:1 lmr_awake;
          Table.fmt_ratio (lmr_awake /. loglog n);
          Table.fmt_float (D.median (Runner.slots lmr));
          Table.fmt_float ~decimals:1 lesk_awake;
          Table.fmt_float (D.median (Runner.slots lesk));
        ])
    ns;
  Output.table out table;
  (* The pin: awake slots should be ~ linear in log2 log2 n, far below
     the per-cycle worst case, while LESK's awake time IS its election
     time (every station listens to every slot). *)
  let points = List.rev !points in
  let xs = Array.of_list (List.map fst points)
  and ys = Array.of_list (List.map snd points) in
  let fit = R.linear ~xs ~ys in
  Format.fprintf ppf "lmr: median awake ~ %.2f * log2 log2 n %+.2f   (r2 = %.3f)@."
    fit.R.slope fit.R.intercept fit.R.r2;
  let worst =
    List.fold_left (fun acc n -> Int.max acc (Lmr.awake_bound ~n)) 0 ns
  in
  Format.fprintf ppf
    "Every median stays below the single-cycle deterministic bound (max %d here); \
     growing n by 10^3 adds ~one awake slot, while LESK's awake cost tracks its \
     O(log n) election time.  This is the Lavault-Marckert-Ravelomanana trade the \
     paper leaves open in section 1.3.@."
    worst

let experiment =
  {
    Registry.id = "A9";
    name = "awake-scaling";
    claim =
      "Section 1.3 (open): an awake-time-optimised election needs only O(log log n) \
       awake slots per station; LMR's median awake slots grow ~ c * log2 log2 n over \
       n = 10^2..10^5 while LESK stays awake for the whole O(log n) election.";
    run;
  }
