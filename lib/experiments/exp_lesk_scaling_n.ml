module D = Jamming_stats.Descriptive
module R = Jamming_stats.Regression

let run scale out =
  let ppf = Output.ppf out in
  let ns, reps =
    match scale with
    | Registry.Quick -> ([ 16; 64; 256; 1024; 4096 ], 20)
    | Registry.Full -> ([ 16; 64; 256; 1024; 4096; 16384; 65536 ], 50)
  in
  let window = 64 in
  let table =
    Table.create ~title:"E1: LESK election time vs n (greedy adversary, T = 64)"
      ~columns:
        [
          ("eps", Table.Right);
          ("n", Table.Right);
          ("median", Table.Right);
          ("mean", Table.Right);
          ("p95", Table.Right);
          ("med/log2 n", Table.Right);
          ("success", Table.Right);
        ]
  in
  let figure_series = ref [] in
  List.iter
    (fun eps ->
      let points = ref [] in
      List.iter
        (fun n ->
          let bound = Jamming_core.Lesk.expected_time_bound ~eps ~n ~window in
          let setup =
            {
              Runner.n;
              eps;
              window;
              max_slots = Int.max 20_000 (int_of_float (100.0 *. bound));
            }
          in
          let sample = Runner.replicate ~engine:(Runner.Uniform (Specs.lesk ~eps)) ~reps setup Specs.greedy in
          let xs = Runner.slots sample in
          let s = D.summarize xs in
          points := (float_of_int n, s.D.median) :: !points;
          Table.add_row table
            [
              Table.fmt_float ~decimals:1 eps;
              Table.fmt_int n;
              Table.fmt_float s.D.median;
              Table.fmt_float s.D.mean;
              Table.fmt_float s.D.p95;
              Table.fmt_ratio (s.D.median /. Float.log2 (float_of_int n));
              Table.fmt_pct (Runner.success_rate sample);
            ])
        ns;
      let points = List.rev !points in
      figure_series :=
        { Ascii_plot.label = Printf.sprintf "eps=%.1f (median)" eps; points } :: !figure_series;
      (* Shape check: median should be ~ linear in log2 n. *)
      let xs = Array.of_list (List.map (fun (n, _) -> Float.log2 n) points) in
      let ys = Array.of_list (List.map snd points) in
      let fit = R.linear ~xs ~ys in
      Table.add_separator table;
      Format.fprintf ppf "eps=%.1f: median ~ %.2f * log2 n %+.2f   (r2 = %.3f)@." eps
        fit.R.slope fit.R.intercept fit.R.r2)
    [ 0.3; 0.6; 0.9 ];
  Format.pp_print_newline ppf ();
  Output.table out table;
  Format.fprintf ppf "%s@."
    (Ascii_plot.render ~log_x:true ~x_label:"n" ~y_label:"median slots"
       (List.rev !figure_series));
  (* Population scale: the aggregate engine tracks (phase -> count)
     classes and draws per-class binomial transmit counts, so a slot is
     O(#classes) whatever n is — the O(log n) scaling law extends to a
     billion stations on one core. *)
  let ns_pop, reps_pop =
    match scale with
    | Registry.Quick -> ([ 1_000_000; 10_000_000 ], 15)
    | Registry.Full ->
        ([ 1_000_000; 10_000_000; 100_000_000; 1_000_000_000 ], 40)
  in
  let pop_table =
    Table.create
      ~title:
        "E1 (aggregate engine): LESK election time at population scale (greedy, T = 64)"
      ~columns:
        [
          ("eps", Table.Right);
          ("n", Table.Right);
          ("median", Table.Right);
          ("mean", Table.Right);
          ("p95", Table.Right);
          ("med/log2 n", Table.Right);
          ("success", Table.Right);
        ]
  in
  List.iter
    (fun eps ->
      List.iter
        (fun n ->
          let bound = Jamming_core.Lesk.expected_time_bound ~eps ~n ~window in
          let setup =
            {
              Runner.n;
              eps;
              window;
              max_slots = Int.max 20_000 (int_of_float (100.0 *. bound));
            }
          in
          let sample =
            Runner.replicate ~engine:(Runner.aggregate_lesk ~eps ()) ~reps:reps_pop setup
              Specs.greedy
          in
          let s = D.summarize (Runner.slots sample) in
          Table.add_row pop_table
            [
              Table.fmt_float ~decimals:1 eps;
              Table.fmt_int n;
              Table.fmt_float s.D.median;
              Table.fmt_float s.D.mean;
              Table.fmt_float s.D.p95;
              Table.fmt_ratio (s.D.median /. Float.log2 (float_of_int n));
              Table.fmt_pct (Runner.success_rate sample);
            ])
        ns_pop;
      Table.add_separator pop_table)
    [ 0.3; 0.6 ];
  Output.table out pop_table

let experiment =
  {
    Registry.id = "E1";
    name = "lesk-scaling-n";
    claim =
      "Theorem 2.6: with constant eps and T = O(log n), LESK elects a leader in O(log n) \
       slots w.h.p.; medians grow linearly in log2 n.";
    run;
  }
