module D = Jamming_stats.Descriptive

let run scale out =
  let ppf = Output.ppf out in
  let reps = match scale with Registry.Quick -> 10 | Registry.Full -> 40 in
  let n = 4096 and eps = 0.5 and window = 64 in
  let setup = { Runner.n; eps; window; max_slots = 200_000 } in
  let table =
    Table.create
      ~title:
        "E17: energy under jamming — the E9 adversary zoo vs LMR and LESK (n = 4096, \
         T = 64)"
      ~columns:
        [
          ("adversary", Table.Left);
          ("lmr med awake", Table.Right);
          ("lmr slots", Table.Right);
          ("awake/slots", Table.Right);
          ("lmr success", Table.Right);
          ("lesk med awake", Table.Right);
        ]
  in
  List.iter
    (fun adversary ->
      let lmr =
        Runner.replicate ~energy:true ~engine:(Runner.pooled_lmr ()) ~reps setup
          adversary
      in
      let lesk =
        Runner.replicate ~energy:true
          ~engine:(Runner.Uniform (Specs.lesk ~eps))
          ~reps setup adversary
      in
      let awake = Runner.median_awake_slots lmr in
      let slots = D.median (Runner.slots lmr) in
      Table.add_row table
        [
          adversary.Specs.a_name;
          Table.fmt_float ~decimals:1 awake;
          Table.fmt_float slots;
          Table.fmt_ratio (awake /. slots);
          Table.fmt_pct (Runner.success_rate lmr);
          Table.fmt_float ~decimals:1 (Runner.median_awake_slots lesk);
        ])
    (Specs.standard_adversaries ~eps_protocol:eps);
  Output.table out table;
  Format.fprintf ppf
    "Jamming can only delay LMR, never mis-elect: a burned cycle costs every station \
     one more O(log log n) awake stretch, so the median battery drain stays a small \
     fraction of the (stretched) election time.  LESK under the same adversaries pays \
     its full election time in awake slots, because every station must listen to every \
     slot to track u.@."

let experiment =
  {
    Registry.id = "E17";
    name = "energy-jamming";
    claim =
      "Section 1.3 + Theorem 2.6: jamming stretches election time, but an \
       awake-time-optimised protocol's energy cost grows only by whole cycles — \
       per-station awake slots stay O(log log n) per cycle under the whole E9 \
       adversary zoo, while always-on protocols pay awake = election time.";
    run;
  }
