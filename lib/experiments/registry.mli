(** The experiment registry: one entry per table/figure of
    EXPERIMENTS.md (E1–E12 plus the ablations A1–A3). *)

type scale =
  | Quick  (** seconds-scale parameters, used by `dune exec bench/main.exe` *)
  | Full  (** the EXPERIMENTS.md parameters (minutes-scale) *)

type t = {
  id : string;  (** e.g. "E1" *)
  name : string;  (** bench target name, e.g. "lesk-scaling-n" *)
  claim : string;  (** the paper statement being checked *)
  run : scale -> Output.t -> unit;
}

val pp_header : Format.formatter -> t -> unit
(** Standard banner printed before an experiment's tables. *)
