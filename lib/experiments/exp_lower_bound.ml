module D = Jamming_stats.Descriptive

let run scale out =
  let ppf = Output.ppf out in
  let cells, reps =
    match scale with
    | Registry.Quick ->
        ([ (256, 0.5, 64); (256, 0.5, 2048); (256, 0.25, 2048); (4096, 0.25, 64) ], 30)
    | Registry.Full ->
        ( [
            (256, 0.5, 64);
            (256, 0.5, 2048);
            (256, 0.5, 16384);
            (256, 0.25, 2048);
            (256, 0.1, 2048);
            (4096, 0.25, 64);
            (65536, 0.25, 64);
          ],
          60 )
  in
  let table =
    Table.create
      ~title:
        "E4: known-n reference protocol vs the Lemma 2.7 bound (front-loaded jammer; p95 \
         over runs)"
      ~columns:
        [
          ("n", Table.Right);
          ("eps", Table.Right);
          ("T", Table.Right);
          ("p95 slots", Table.Right);
          ("max{T,log n/eps}", Table.Right);
          ("p95/bound", Table.Right);
          ("clear slots (med)", Table.Right);
        ]
  in
  List.iter
    (fun (n, eps, window) ->
      let bound =
        Float.max (float_of_int window) (Float.log2 (float_of_int n) /. eps)
      in
      let setup =
        { Runner.n; eps; window; max_slots = Int.max 100_000 (int_of_float (100.0 *. bound)) }
      in
      let sample = Runner.replicate ~engine:(Runner.Uniform Specs.known_n) ~reps setup Specs.front_loaded in
      let xs = Runner.slots sample in
      let p95 = D.quantile xs ~q:0.95 in
      let clear =
        Array.map
          (fun r ->
            float_of_int
              (r.Jamming_sim.Metrics.slots - r.Jamming_sim.Metrics.jammed_slots))
          sample.Runner.results
      in
      Table.add_row table
        [
          Table.fmt_int n;
          Table.fmt_float ~decimals:2 eps;
          Table.fmt_int window;
          Table.fmt_float p95;
          Table.fmt_float bound;
          Table.fmt_ratio (p95 /. bound);
          Table.fmt_float (D.median clear);
        ])
    cells;
  Output.table out table;
  Format.fprintf ppf
    "Lemma 2.7 predicts p95/bound bounded below by a constant: high-confidence election \
     cannot beat max{T, log n / eps} even with n known exactly.@."

let experiment =
  {
    Registry.id = "E4";
    name = "lower-bound";
    claim =
      "Lemma 2.7: any algorithm succeeding w.h.p. needs Omega(max{T, log n/eps}) slots; \
       the omniscient p = 1/n protocol under a front-loaded jammer exhibits the bound.";
    run;
  }
