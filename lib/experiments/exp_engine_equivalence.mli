(** A1 — design-choice validation: the O(1)-per-slot uniform engine and
    the O(n)-per-slot exact engine produce statistically matching
    election-time distributions for LESK. *)

val experiment : Registry.t
