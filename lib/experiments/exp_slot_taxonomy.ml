module Core = Jamming_core
module Prng = Jamming_prng.Prng
module Budget = Jamming_adversary.Budget

let run scale out =
  let ppf = Output.ppf out in
  let reps = match scale with Registry.Quick -> 20 | Registry.Full -> 100 in
  let window = 64 in
  let table =
    Table.create
      ~title:"E11: LESK slot taxonomy vs the Lemma 2.2/2.3 bounds (greedy adversary, T = 64)"
      ~columns:
        [
          ("n", Table.Right);
          ("eps", Table.Right);
          ("t", Table.Right);
          ("IS", Table.Right);
          ("IS bnd t/a^2", Table.Right);
          ("IC", Table.Right);
          ("IC bnd t/a", Table.Right);
          ("CS", Table.Right);
          ("CC", Table.Right);
          ("E", Table.Right);
          ("R", Table.Right);
          ("2.3 ok", Table.Right);
        ]
  in
  List.iter
    (fun (n, eps) ->
      let a = 8.0 /. eps in
      let u0 = Float.log2 (float_of_int n) in
      let totals = ref Core.Taxonomy.{ is_ = 0; ic = 0; cs = 0; cc = 0; e = 0; r = 0 } in
      let holds = ref 0 in
      for rep = 1 to reps do
        let seed = Prng.seed_of_string (Printf.sprintf "E11/%d/%f/%d" n eps rep) in
        let rng = Prng.create ~seed in
        let tracker = Core.Taxonomy.create ~eps ~n in
        let budget = Budget.create ~window ~eps in
        let (_ : Jamming_sim.Metrics.result) =
          Jamming_sim.Uniform_engine.run
            ~observers:[ Jamming_sim.Observer.of_on_slot (Core.Taxonomy.on_slot tracker) ]
            ~n ~rng
            ~protocol:(Core.Lesk.uniform ~eps ())
            ~adversary:(Jamming_adversary.Adversary.greedy ())
            ~budget ~max_slots:1_000_000 ()
        in
        let c = Core.Taxonomy.counts tracker in
        if Core.Taxonomy.lemma_2_3_holds c ~u0 ~a then incr holds;
        totals :=
          Core.Taxonomy.
            {
              is_ = !totals.is_ + c.is_;
              ic = !totals.ic + c.ic;
              cs = !totals.cs + c.cs;
              cc = !totals.cc + c.cc;
              e = !totals.e + c.e;
              r = !totals.r + c.r;
            }
      done;
      let c = !totals in
      let t = float_of_int (Core.Taxonomy.total c) in
      Table.add_row table
        [
          Table.fmt_int n;
          Table.fmt_float ~decimals:1 eps;
          Table.fmt_float t;
          Table.fmt_int c.Core.Taxonomy.is_;
          Table.fmt_float (t /. (a *. a));
          Table.fmt_int c.Core.Taxonomy.ic;
          Table.fmt_float (t /. a);
          Table.fmt_int c.Core.Taxonomy.cs;
          Table.fmt_int c.Core.Taxonomy.cc;
          Table.fmt_int c.Core.Taxonomy.e;
          Table.fmt_int c.Core.Taxonomy.r;
          Printf.sprintf "%d/%d" !holds reps;
        ])
    [ (256, 0.6); (256, 0.3); (4096, 0.6); (4096, 0.3) ];
  Output.table out table;
  Format.fprintf ppf
    "Counts are pooled over %d runs.  Lemma 2.2 bounds the per-slot rates of IS and IC by \
     1/a^2 and 1/a (columns 'bnd'); Lemma 2.3's deterministic inequalities CS <= (IC+E)/a \
     and CC <= a*IS + a*u0 are checked per run ('2.3 ok').@."
    reps

let experiment =
  {
    Registry.id = "E11";
    name = "slot-taxonomy";
    claim =
      "Lemmas 2.2/2.3/2.5: irregular silences/collisions are rare (1/a^2, 1/a per slot), \
       correcting slots are dominated by irregular+jammed ones, so regular slots dominate \
       and each carries P[Single] >= ln(a)/a^2.";
    run;
  }
