module Channel = Jamming_channel.Channel
module Prng = Jamming_prng.Prng
module Budget = Jamming_adversary.Budget
module Metrics = Jamming_sim.Metrics
module D = Jamming_stats.Descriptive

(* Run on the exact engine, recording the first true Single (the
   selection-resolution event) separately from protocol completion. *)
let run_cell ~cd ~n ~eps ~window ~max_slots ~factory ~adversary ~seed =
  let first_single = ref None in
  let on_slot (r : Metrics.slot_record) =
    if !first_single = None && Channel.equal_state r.Metrics.state Channel.Single then
      first_single := Some r.Metrics.slot
  in
  let rng = Prng.create ~seed in
  let stations = Jamming_sim.Engine.make_stations ~n ~rng factory in
  let budget = Budget.create ~window ~eps in
  let adv = adversary.Specs.a_make ~seed ~n ~eps ~window () in
  let result =
    Jamming_sim.Engine.run
      ~observers:[ Jamming_sim.Observer.of_on_slot on_slot ]
      ~cd ~adversary:adv ~budget ~max_slots ~stations ()
  in
  (!first_single, result)

let run scale out =
  let ppf = Output.ppf out in
  let reps = match scale with Registry.Quick -> 12 | Registry.Full -> 40 in
  let n = 64 and eps = 0.5 and window = 32 and max_slots = 100_000 in
  let cells =
    [
      ("sawtooth", "no-CD", Channel.No_cd, Jamming_baselines.Nakano_olariu.station_sawtooth (), Specs.no_jamming);
      ("sawtooth", "no-CD", Channel.No_cd, Jamming_baselines.Nakano_olariu.station_sawtooth (), Specs.greedy);
      ("LESK(0.5)", "no-CD", Channel.No_cd, Jamming_core.Lesk.station ~eps, Specs.greedy);
      ("LEWK", "weak-CD", Channel.Weak_cd, Jamming_core.Lewk.station ~eps (), Specs.greedy);
      ("LEWK", "no-CD", Channel.No_cd, Jamming_core.Lewk.station ~eps (), Specs.greedy);
    ]
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E13: the no-CD open problem (n = %d, eps = %.1f, T = %d, cap %d slots)" n eps
           window max_slots)
      ~columns:
        [
          ("protocol", Table.Left);
          ("CD model", Table.Left);
          ("adversary", Table.Left);
          ("1st Single (med)", Table.Right);
          ("Single rate", Table.Right);
          ("full election", Table.Right);
        ]
  in
  List.iter
    (fun (name, cd_name, cd, factory, adversary) ->
      let singles = ref [] and got_single = ref 0 and completed = ref 0 in
      for rep = 1 to reps do
        let seed = Prng.seed_of_string (Printf.sprintf "E13/%s/%s/%s/%d" name cd_name adversary.Specs.a_name rep) in
        let first, result =
          run_cell ~cd ~n ~eps ~window ~max_slots ~factory ~adversary ~seed
        in
        (match first with
        | Some s ->
            incr got_single;
            singles := float_of_int s :: !singles
        | None -> ());
        if Metrics.election_ok result then incr completed
      done;
      let repsf = float_of_int reps in
      Table.add_row table
        [
          name;
          cd_name;
          adversary.Specs.a_name;
          (if !singles = [] then "never" else Table.fmt_float (D.median (Array.of_list !singles)));
          Table.fmt_pct (float_of_int !got_single /. repsf);
          Table.fmt_pct (float_of_int !completed /. repsf);
        ])
    cells;
  Output.table out table;
  Format.fprintf ppf
    "Three observations, as §4 anticipates: (1) the oblivious sawtooth still gets a \
     Single in no-CD — the jammer can only erase successes, not steer a protocol that \
     ignores feedback; (2) LESK's feedback becomes useless in no-CD: every slot reads \
     Collision, so u climbs monotonically — the protocol degenerates into a single \
     one-way probability sweep that happens to cross 1/n once (it found a Single here) \
     but can never stabilize or retry after overshooting; (3) in every no-CD row the \
     'full election' column is 0%%: the winner cannot learn it won, and even the LEWK \
     handshake that completes 100%% of weak-CD elections is stuck — its final step, the \
     leader hearing a Null in C1, is unobservable without collision detection.  A \
     terminating, jamming-robust election for no-CD is exactly the paper's open \
     problem.@."

let experiment =
  {
    Registry.id = "E13";
    name = "no-cd-frontier";
    claim =
      "Section 4 (open problem): without collision detection a jammer cannot be \
       distinguished from silence; selection resolution survives obliviously but \
       feedback-driven estimation and the termination handshake both break.";
    run;
  }
