type series = { label : string; points : (float * float) list }

let symbols = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '&' |]

let render ?(width = 64) ?(height = 20) ?(log_x = false) ?(log_y = false) ~x_label ~y_label
    series_list =
  let all_points = List.concat_map (fun s -> s.points) series_list in
  if all_points = [] then invalid_arg "Ascii_plot.render: no points";
  let tx v =
    if log_x then begin
      if v <= 0.0 then invalid_arg "Ascii_plot.render: log_x needs positive x";
      log v
    end
    else v
  in
  let ty v =
    if log_y then begin
      if v <= 0.0 then invalid_arg "Ascii_plot.render: log_y needs positive y";
      log v
    end
    else v
  in
  let xs = List.map (fun (x, _) -> tx x) all_points in
  let ys = List.map (fun (_, y) -> ty y) all_points in
  let fmin = List.fold_left Float.min infinity and fmax = List.fold_left Float.max neg_infinity in
  let x_lo = fmin xs and x_hi = fmax xs and y_lo = fmin ys and y_hi = fmax ys in
  let x_hi = if x_hi = x_lo then x_lo +. 1.0 else x_hi in
  let y_hi = if y_hi = y_lo then y_lo +. 1.0 else y_hi in
  let grid = Array.make_matrix height width ' ' in
  let place sym (x, y) =
    let cx =
      int_of_float (Float.round ((tx x -. x_lo) /. (x_hi -. x_lo) *. float_of_int (width - 1)))
    in
    let cy =
      int_of_float (Float.round ((ty y -. y_lo) /. (y_hi -. y_lo) *. float_of_int (height - 1)))
    in
    (* Row 0 is the top of the rendering. *)
    grid.(height - 1 - cy).(cx) <- sym
  in
  List.iteri
    (fun i s -> List.iter (place symbols.(i mod Array.length symbols)) s.points)
    series_list;
  let buf = Buffer.create ((width + 16) * (height + 6)) in
  let inv t v = if t then exp v else v in
  Buffer.add_string buf (Printf.sprintf "%s vs %s%s\n" y_label x_label
                           (match log_x, log_y with
                           | true, true -> " (log-log)"
                           | true, false -> " (log-x)"
                           | false, true -> " (log-y)"
                           | false, false -> ""));
  Array.iteri
    (fun row line ->
      let frac = 1.0 -. (float_of_int row /. float_of_int (height - 1)) in
      let yv = inv log_y (y_lo +. (frac *. (y_hi -. y_lo))) in
      Buffer.add_string buf (Printf.sprintf "%12.1f |%s|\n" yv (String.init width (Array.get line))))
    grid;
  Buffer.add_string buf
    (Printf.sprintf "%12s +%s+\n" "" (String.make width '-'));
  Buffer.add_string buf
    (Printf.sprintf "%12s  %-*g%*g\n" "" (width / 2) (inv log_x x_lo) (width - (width / 2))
       (inv log_x x_hi));
  List.iteri
    (fun i s ->
      Buffer.add_string buf
        (Printf.sprintf "    %c = %s\n" symbols.(i mod Array.length symbols) s.label))
    series_list;
  Buffer.contents buf
