(** Plain-text result tables (the "tables of the paper" deliverable),
    with CSV export for downstream plotting. *)

type align = Left | Right

type t

val create : title:string -> columns:(string * align) list -> t
val title : t -> string
val add_row : t -> string list -> unit
(** Row length must match the column count. *)

val add_separator : t -> unit
val render : t -> string
val to_csv : t -> string
val print : Format.formatter -> t -> unit

(** Cell formatting helpers. *)

val fmt_int : int -> string
val fmt_float : ?decimals:int -> float -> string
val fmt_ratio : float -> string
val fmt_pct : float -> string
(** [fmt_pct 0.97] is ["97.0%"]. *)

val fmt_slots : capped:bool -> float -> string
(** Median slot counts; [">N"] when the run hit its cap. *)
