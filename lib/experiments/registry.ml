type scale = Quick | Full

type t = {
  id : string;
  name : string;
  claim : string;
  run : scale -> Output.t -> unit;
}

let pp_header ppf t =
  Format.fprintf ppf "@.=== %s: %s ===@.%s@.@." t.id t.name t.claim
