module D = Jamming_stats.Descriptive
module R = Jamming_stats.Regression

let run scale out =
  let ppf = Output.ppf out in
  let windows, reps =
    match scale with
    | Registry.Quick -> ([ 64; 256; 1024; 4096 ], 20)
    | Registry.Full -> ([ 64; 256; 1024; 4096; 16384; 65536 ], 40)
  in
  let n = 256 and eps = 0.5 in
  let table =
    Table.create ~title:"E2: LESK election time vs adversary window T (n = 256, eps = 0.5)"
      ~columns:
        [
          ("adversary", Table.Left);
          ("T", Table.Right);
          ("median", Table.Right);
          ("p95", Table.Right);
          ("median/T", Table.Right);
          ("success", Table.Right);
        ]
  in
  let fits = ref [] in
  List.iter
    (fun adversary ->
      let points = ref [] in
      List.iter
        (fun window ->
          let setup = { Runner.n; eps; window; max_slots = Int.max 100_000 (100 * window) } in
          let sample = Runner.replicate ~engine:(Runner.Uniform (Specs.lesk ~eps)) ~reps setup adversary in
          let xs = Runner.slots sample in
          let s = D.summarize xs in
          points := (float_of_int window, s.D.median) :: !points;
          Table.add_row table
            [
              adversary.Specs.a_name;
              Table.fmt_int window;
              Table.fmt_float s.D.median;
              Table.fmt_float s.D.p95;
              Table.fmt_ratio (s.D.median /. float_of_int window);
              Table.fmt_pct (Runner.success_rate sample);
            ])
        windows;
      Table.add_separator table;
      let points = List.rev !points in
      let xs = Array.of_list (List.map fst points) in
      let ys = Array.of_list (List.map snd points) in
      let fit = R.log_log_slope ~xs ~ys in
      fits := (adversary.Specs.a_name, fit) :: !fits)
    [ Specs.greedy; Specs.front_loaded ];
  Output.table out table;
  List.iter
    (fun (name, fit) ->
      Format.fprintf ppf
        "%s: log-log slope of median vs T = %.2f (Theta(T) predicts ~1 for large T; r2 = %.3f)@."
        name fit.R.slope fit.R.r2)
    (List.rev !fits)

let experiment =
  {
    Registry.id = "E2";
    name = "lesk-scaling-T";
    claim =
      "Theorem 2.6: when T dominates log n/(eps^3 log(1/eps)), LESK's election time is \
       Theta(T) — the jammer can always burn a (1-eps)-prefix of each window.";
    run;
  }
