type t = {
  formatter : Format.formatter;
  csv_dir : string option;
  mutable experiment : string;
  mutable table_index : int;
  mutable written : string list;
}

let to_formatter formatter =
  { formatter; csv_dir = None; experiment = "experiment"; table_index = 0; written = [] }

let with_csv_dir ~dir formatter =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Output.with_csv_dir: %s is not a directory" dir);
  { formatter; csv_dir = Some dir; experiment = "experiment"; table_index = 0; written = [] }

let ppf t = t.formatter

let begin_experiment t ~id =
  t.experiment <- String.lowercase_ascii id;
  t.table_index <- 0

let slug title =
  let b = Buffer.create (String.length title) in
  let last_dash = ref true in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | '0' .. '9' ->
          Buffer.add_char b c;
          last_dash := false
      | 'A' .. 'Z' ->
          Buffer.add_char b (Char.lowercase_ascii c);
          last_dash := false
      | _ ->
          if not !last_dash then begin
            Buffer.add_char b '-';
            last_dash := true
          end)
    title;
  let s = Buffer.contents b in
  let s = if String.length s > 48 then String.sub s 0 48 else s in
  if String.length s > 0 && s.[String.length s - 1] = '-' then
    String.sub s 0 (String.length s - 1)
  else s

let table t tbl =
  Format.fprintf t.formatter "%s@." (Table.render tbl);
  match t.csv_dir with
  | None -> ()
  | Some dir ->
      t.table_index <- t.table_index + 1;
      let path =
        Filename.concat dir
          (Printf.sprintf "%s-%d-%s.csv" t.experiment t.table_index (slug (Table.title tbl)))
      in
      let oc = open_out path in
      output_string oc (Table.to_csv tbl);
      close_out oc;
      t.written <- path :: t.written

let csv_files_written t = t.written
