module Core = Jamming_core
module Baselines = Jamming_baselines
module Adversary = Jamming_adversary.Adversary

type protocol = {
  p_name : string;
  p_make : n:int -> window:int -> Jamming_station.Uniform.factory;
}

type adversary = {
  a_name : string;
  a_make : seed:int -> n:int -> eps:float -> window:int -> Adversary.factory;
}

let lesk ~eps =
  {
    p_name = Printf.sprintf "LESK(%.2g)" eps;
    p_make = (fun ~n:_ ~window:_ () -> Core.Lesk.uniform ~eps ());
  }

let lesk_with_a ~eps ~a =
  {
    p_name = Printf.sprintf "LESK(%.2g,a=%.3g)" eps a;
    p_make = (fun ~n:_ ~window:_ -> Core.Lesk.uniform ~a ~eps);
  }

let lesu ?config () =
  { p_name = "LESU"; p_make = (fun ~n:_ ~window:_ -> Core.Lesu.uniform ?config ()) }

let estimation =
  { p_name = "Estimation"; p_make = (fun ~n:_ ~window:_ -> Core.Estimation.uniform ()) }

let arss =
  {
    p_name = "ARSS-MAC";
    p_make =
      (fun ~n ~window -> Baselines.Arss_mac.uniform (Baselines.Arss_mac.config ~n ~window));
  }

let willard = { p_name = "Willard"; p_make = (fun ~n:_ ~window:_ -> Baselines.Willard.uniform ()) }

let sawtooth =
  { p_name = "NO-sawtooth"; p_make = (fun ~n:_ ~window:_ -> Baselines.Nakano_olariu.sawtooth ()) }

let geometric_sweep =
  {
    p_name = "NO-geometric";
    p_make = (fun ~n:_ ~window:_ -> Baselines.Nakano_olariu.geometric_sweep ());
  }

let backoff = { p_name = "backoff"; p_make = (fun ~n:_ ~window:_ -> Baselines.Backoff.uniform ()) }
let known_n = { p_name = "known-n"; p_make = (fun ~n ~window:_ -> Baselines.Backoff.known_n ~n) }

let no_jamming =
  { a_name = "none"; a_make = (fun ~seed:_ ~n:_ ~eps:_ ~window:_ -> Adversary.none) }

let greedy = { a_name = "greedy"; a_make = (fun ~seed:_ ~n:_ ~eps:_ ~window:_ -> Adversary.greedy) }

let random_jam ~p =
  {
    a_name = Printf.sprintf "random(%.2g)" p;
    a_make = (fun ~seed ~n:_ ~eps:_ ~window:_ -> Adversary.random ~seed ~p);
  }

let front_loaded =
  {
    a_name = "front-loaded";
    a_make = (fun ~seed:_ ~n:_ ~eps:_ ~window -> Adversary.front_loaded ~window);
  }

let periodic =
  {
    a_name = "periodic";
    a_make =
      (fun ~seed:_ ~n:_ ~eps ~window ->
        let burst = Int.max 1 (int_of_float ((1.0 -. eps) *. float_of_int window)) in
        Adversary.periodic ~period:window ~burst);
  }

let silence_breaker =
  { a_name = "silence-breaker"; a_make = (fun ~seed:_ ~n:_ ~eps:_ ~window:_ -> Adversary.silence_breaker) }

let streak_saver =
  {
    a_name = "streak-saver";
    a_make = (fun ~seed:_ ~n:_ ~eps:_ ~window:_ -> Adversary.streak_saver ~quota:4);
  }

let single_suppressor ~eps_protocol =
  {
    a_name = "single-suppressor";
    a_make =
      (fun ~seed:_ ~n ~eps:_ ~window:_ -> Core.Adaptive_jammers.single_suppressor ~eps_protocol ~n);
  }

let estimate_twister ~eps_protocol =
  {
    a_name = "estimate-twister";
    a_make =
      (fun ~seed:_ ~n ~eps:_ ~window:_ -> Core.Adaptive_jammers.estimate_twister ~eps_protocol ~n);
  }

let estimation_staller =
  {
    a_name = "estimation-staller";
    a_make = (fun ~seed:_ ~n:_ ~eps:_ ~window:_ -> Core.Adaptive_jammers.estimation_staller);
  }

let notification_saboteur =
  {
    a_name = "notification-saboteur";
    a_make = (fun ~seed:_ ~n:_ ~eps:_ ~window:_ -> Core.Adaptive_jammers.notification_saboteur);
  }

let standard_adversaries ~eps_protocol =
  [
    no_jamming;
    random_jam ~p:0.5;
    periodic;
    front_loaded;
    greedy;
    silence_breaker;
    streak_saver;
    single_suppressor ~eps_protocol;
    estimate_twister ~eps_protocol;
  ]
