module D = Jamming_stats.Descriptive
module Ks = Jamming_stats.Ks

(* A8: the population-counting aggregate engine against the per-station
   exact engine (and the trichotomy-sampling uniform engine).  The
   per-class binomial draw is a sufficient statistic for the slot, so
   the election-time law must match — but per-station RNG streams
   necessarily differ, so the check is distributional (two-sample KS),
   not bitwise.  A rejection at [alpha_hard] is a genuine bug, not
   noise, and fails the experiment so CI catches it. *)
let alpha_hard = 1e-4

let ks_p a b =
  Ks.p_value ~n1:(Array.length a) ~n2:(Array.length b) ~d:(Ks.statistic a b)

let exact_lesk ~eps =
  Runner.Exact
    {
      name = "LESK-exact";
      cd = Jamming_channel.Channel.Strong_cd;
      factory = Jamming_core.Lesk.station ~eps;
    }

let run scale out =
  let ppf = Output.ppf out in
  let eps = 0.5 and window = 32 in
  (* --- aggregate vs exact at overlapping n --- *)
  let points =
    match scale with
    | Registry.Quick -> [ (100, 300); (1_000, 300); (10_000, 120) ]
    | Registry.Full -> [ (100, 400); (1_000, 400); (10_000, 300) ]
  in
  let table =
    Table.create
      ~title:"A8: aggregate (O(#classes)/slot) vs exact (O(n)/slot) engine, LESK(0.5), greedy jammer"
      ~columns:
        [
          ("n", Table.Right);
          ("reps", Table.Right);
          ("agg med", Table.Right);
          ("exact med", Table.Right);
          ("agg mean", Table.Right);
          ("exact mean", Table.Right);
          ("mean ratio", Table.Right);
          ("KS p-value", Table.Right);
        ]
  in
  List.iter
    (fun (n, reps) ->
      let setup = { Runner.n; eps; window; max_slots = 100_000 } in
      let agg =
        Runner.replicate ~engine:(Runner.aggregate_lesk ~eps ()) ~reps setup Specs.greedy
      in
      let exact = Runner.replicate ~engine:(exact_lesk ~eps) ~reps setup Specs.greedy in
      let a = Runner.slots agg and b = Runner.slots exact in
      let p = ks_p a b in
      if p < alpha_hard then
        failwith
          (Printf.sprintf
             "A8: aggregate vs exact election times diverge at n=%d (KS p = %g < %g)" n p
             alpha_hard);
      Table.add_row table
        [
          Table.fmt_int n;
          Table.fmt_int reps;
          Table.fmt_float (D.median a);
          Table.fmt_float (D.median b);
          Table.fmt_float ~decimals:1 (D.mean a);
          Table.fmt_float ~decimals:1 (D.mean b);
          Table.fmt_ratio (D.mean a /. D.mean b);
          Table.fmt_float ~decimals:3 p;
        ])
    points;
  Output.table out table;
  (* --- aggregate vs uniform where only they can go: n = 10^6, 10^8 --- *)
  let big_reps = match scale with Registry.Quick -> 300 | Registry.Full -> 500 in
  let table2 =
    Table.create
      ~title:"A8: aggregate vs uniform engine at population scale (same slot law, O(1)-ish both)"
      ~columns:
        [
          ("n", Table.Right);
          ("agg med", Table.Right);
          ("uniform med", Table.Right);
          ("mean ratio", Table.Right);
          ("KS p-value", Table.Right);
        ]
  in
  List.iter
    (fun n ->
      let setup = { Runner.n; eps; window; max_slots = 200_000 } in
      let agg =
        Runner.replicate ~engine:(Runner.aggregate_lesk ~eps ()) ~reps:big_reps setup
          Specs.greedy
      in
      let uni =
        Runner.replicate ~engine:(Runner.Uniform (Specs.lesk ~eps)) ~reps:big_reps setup
          Specs.greedy
      in
      let a = Runner.slots agg and b = Runner.slots uni in
      let p = ks_p a b in
      if p < alpha_hard then
        failwith
          (Printf.sprintf
             "A8: aggregate vs uniform election times diverge at n=%d (KS p = %g < %g)" n
             p alpha_hard);
      Table.add_row table2
        [
          Table.fmt_int n;
          Table.fmt_float (D.median a);
          Table.fmt_float (D.median b);
          Table.fmt_ratio (D.mean a /. D.mean b);
          Table.fmt_float ~decimals:3 p;
        ])
    [ 1_000_000; 100_000_000 ];
  Output.table out table2;
  (* --- slot-taxonomy agreement under one shared deterministic jammer ---
     With the adversary's decisions fixed by the slot index, the
     per-slot Zero/One/Many (and jam) fractions are functions of the
     engine's slot law alone; their means must agree across engines. *)
  let reps = match scale with Registry.Quick -> 120 | Registry.Full -> 250 in
  let n = 2_000 in
  let setup = { Runner.n; eps; window; max_slots = 100_000 } in
  let shared = Specs.periodic in
  let fractions sample =
    let tot = Array.fold_left (fun acc r -> acc + r.Jamming_sim.Metrics.slots) 0 sample.Runner.results in
    let f g =
      float_of_int (Array.fold_left (fun acc r -> acc + g r) 0 sample.Runner.results)
      /. float_of_int tot
    in
    ( f (fun r -> r.Jamming_sim.Metrics.nulls),
      f (fun r -> r.Jamming_sim.Metrics.singles),
      f (fun r -> r.Jamming_sim.Metrics.collisions),
      f (fun r -> r.Jamming_sim.Metrics.jammed_slots) )
  in
  let agg =
    Runner.replicate ~engine:(Runner.aggregate_lesk ~eps ()) ~reps setup shared
  in
  let exact = Runner.replicate ~engine:(exact_lesk ~eps) ~reps setup shared in
  let an, as_, ac, aj = fractions agg and en, es, ec, ej = fractions exact in
  let check label a b =
    if Float.abs (a -. b) > 0.05 then
      failwith
        (Printf.sprintf "A8: %s fraction disagrees (aggregate %.3f vs exact %.3f)" label
           a b)
  in
  check "null" an en;
  check "single" as_ es;
  check "collision" ac ec;
  check "jammed" aj ej;
  Format.fprintf ppf
    "Slot taxonomy under the shared periodic jammer (n=%d, %d reps/engine):@.  aggregate \
     null/single/collision/jam = %.3f/%.3f/%.3f/%.3f@.  exact     \
     null/single/collision/jam = %.3f/%.3f/%.3f/%.3f  (all within 0.05)@."
    n reps an as_ ac aj en es ec ej;
  (* --- the headline: a billion stations, jammed, on one core --- *)
  let n9 = 1_000_000_000 in
  let setup9 = { Runner.n = n9; eps; window = 64; max_slots = 200_000 } in
  let t0 = Sys.time () in
  let big =
    Runner.replicate ~engine:(Runner.aggregate_lesk ~eps ()) ~reps:20 setup9 Specs.greedy
  in
  let wall = Sys.time () -. t0 in
  Array.iter
    (fun r ->
      match r.Jamming_sim.Metrics.leader with
      | Some id when id < 0 || id >= n9 ->
          failwith (Printf.sprintf "A8: leader id %d outside [0, n)" id)
      | Some _ | None -> ())
    big.Runner.results;
  Format.fprintf ppf
    "Population scale: 20 LESK elections at n = 10^9 under the greedy jammer: median \
     %.0f slots, success %.0f%%, %.2fs CPU total.@."
    (Runner.median_slots big)
    (100.0 *. Runner.success_rate big)
    wall

let experiment =
  {
    Registry.id = "A8";
    name = "aggregate-equivalence";
    claim =
      "Design validation: per-class binomial counts are a sufficient statistic for the \
       slot, so the population-counting engine reproduces the per-station engines' \
       election-time law — while reaching n = 10^9 at O(#classes) per slot.";
    run;
  }
