(** E5 — Lemma 2.8: Estimation(2) returns a round index inside
    [[log log n − 1, max{log log n, log T} + 1]] w.h.p. (or elects a
    leader on the way), for every adversary. *)

val experiment : Registry.t
