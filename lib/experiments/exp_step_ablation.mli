(** A2 — why the asymmetric [+ε/8 / −1] steps (§2.1): collision-step
    ablation, including the symmetric variant the adversary drives to
    divergence. *)

val experiment : Registry.t
