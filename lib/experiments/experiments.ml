let all =
  [
    Exp_lesk_scaling_n.experiment;
    Exp_lesk_scaling_t.experiment;
    Exp_lesk_eps.experiment;
    Exp_lower_bound.experiment;
    Exp_estimation.experiment;
    Exp_lesu_scaling.experiment;
    Exp_notification.experiment;
    Exp_vs_arss.experiment;
    Exp_adversary_ablation.experiment;
    Exp_success_probability.experiment;
    Exp_slot_taxonomy.experiment;
    Exp_energy.experiment;
    Exp_no_cd.experiment;
    Exp_u_walk.experiment;
    Exp_time_distribution.experiment;
    Exp_fairness.experiment;
    Exp_size_refine.experiment;
    Exp_energy_cap.experiment;
    Exp_engine_equivalence.experiment;
    Exp_step_ablation.experiment;
    Exp_lesu_calibration.experiment;
    Exp_estimation_threshold.experiment;
    Exp_markov.experiment;
    Exp_fault_tolerance.experiment;
    Exp_churn.experiment;
    Exp_aggregate_equivalence.experiment;
    Exp_awake_scaling.experiment;
    Exp_energy_jamming.experiment;
  ]

let find key =
  let key = String.lowercase_ascii key in
  List.find_opt
    (fun e ->
      String.lowercase_ascii e.Registry.id = key || String.lowercase_ascii e.Registry.name = key)
    all

let run_one ?telemetry ~scale out e =
  Registry.pp_header (Output.ppf out) e;
  Output.begin_experiment out ~id:e.Registry.id;
  match telemetry with
  | None -> e.Registry.run scale out
  | Some tel ->
      (* Meter the whole experiment: install the sink as the process
         default (so every Runner.replicate inside contributes) and time
         it; Gauges deltas around this call give total slots whatever
         path the experiment takes into the engines. *)
      let wall = Jamming_telemetry.Telemetry.timer tel "experiment.wall" in
      Runner.with_telemetry tel (fun () ->
          Jamming_telemetry.Telemetry.time wall (fun () -> e.Registry.run scale out))

let run_all ?telemetry ~scale out = List.iter (run_one ?telemetry ~scale out) all

let run_all_fmt ~scale ppf = run_all ~scale (Output.to_formatter ppf)
