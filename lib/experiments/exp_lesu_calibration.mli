(** A3 — calibration of LESU's existential constant [c] (Theorem 2.6
    guarantees one exists; the paper never pins it down). *)

val experiment : Registry.t
