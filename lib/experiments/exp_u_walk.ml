module Core = Jamming_core
module Prng = Jamming_prng.Prng
module Budget = Jamming_adversary.Budget

(* One election, returning the u value at every slot. *)
let u_trajectory ~n ~eps ~window ~adversary ~seed =
  let replica = Core.Lesk.Logic.create ~eps () in
  let points = ref [] in
  let on_slot (r : Jamming_sim.Metrics.slot_record) =
    points := (float_of_int r.Jamming_sim.Metrics.slot, Core.Lesk.Logic.u replica) :: !points;
    Core.Lesk.Logic.on_state replica r.Jamming_sim.Metrics.state
  in
  let setup = { Runner.n; eps; window; max_slots = 100_000 } in
  let result =
    Runner.run
      ~observers:[ Jamming_sim.Observer.of_on_slot on_slot ]
      ~engine:(Runner.Uniform (Specs.lesk ~eps))
      setup adversary ~seed
  in
  (List.rev !points, result)

let run scale ppf_out =
  let ppf = Output.ppf ppf_out in
  let n = match scale with Registry.Quick -> 4096 | Registry.Full -> 65536 in
  let eps = 0.4 and window = 64 in
  let u0 = Float.log2 (float_of_int n) in
  let band_lo, band_hi = Core.Lemmas.regular_band ~eps in
  let series =
    List.filter_map
      (fun (label, adversary, seed) ->
        let points, result = u_trajectory ~n ~eps ~window ~adversary ~seed in
        if result.Jamming_sim.Metrics.elected then
          Some ({ Ascii_plot.label = Printf.sprintf "%s (elected at %d)" label result.Jamming_sim.Metrics.slots; points }, points)
        else None)
      [
        ("no jamming", Specs.no_jamming, 3);
        ("greedy", Specs.greedy, 4);
        ("single-suppressor", Specs.single_suppressor ~eps_protocol:eps, 5);
      ]
  in
  let plot_series = List.map fst series in
  let max_slot =
    List.fold_left
      (fun acc (_, pts) -> List.fold_left (fun m (x, _) -> Float.max m x) acc pts)
      1.0 series
  in
  let reference label y =
    { Ascii_plot.label; points = [ (0.0, y); (max_slot, y) ] }
  in
  Format.fprintf ppf
    "LESK's estimate u during single elections (n = %d, so log2 n = %.1f; eps = %.1f, T = \
     %d).  The regular band of Lemma 2.4 is [%.2f, %.2f] around log2 n.@.@." n u0 eps
    window (u0 +. band_lo) (u0 +. band_hi);
  Format.fprintf ppf "%s@."
    (Ascii_plot.render ~height:24 ~x_label:"slot" ~y_label:"u"
       (plot_series
       @ [ reference "log2 n + band top" (u0 +. band_hi);
           reference "log2 n - band bottom" (u0 +. band_lo) ]));
  (* Quantify time-in-band per adversary. *)
  let table =
    Table.create ~title:"F1: u relative to the regular band (per run)"
      ~columns:
        [
          ("adversary", Table.Left);
          ("slots", Table.Right);
          ("climb (slots to band)", Table.Right);
          ("in band after entry", Table.Right);
        ]
  in
  List.iter
    (fun ({ Ascii_plot.label; _ }, points) ->
      let in_band u = u >= u0 +. band_lo && u <= u0 +. band_hi in
      let total = List.length points in
      let entry =
        match List.find_index (fun (_, u) -> in_band u) points with
        | Some i -> i
        | None -> total
      in
      let after = List.filteri (fun i _ -> i >= entry) points in
      let stayed = List.length (List.filter (fun (_, u) -> in_band u) after) in
      Table.add_row table
        [
          label;
          Table.fmt_int total;
          Table.fmt_int entry;
          (if after = [] then "-"
           else Table.fmt_pct (float_of_int stayed /. float_of_int (List.length after)));
        ])
    series;
  Output.table ppf_out table;
  Format.fprintf ppf
    "The climb from u = 0 (at +eps/8 per Collision) takes ~a*log2(n) slots and dominates \
     the run; once u enters the regular band it never leaves it for long — every escape \
     upward is pulled back by un-fakeable Nulls worth a = 8/eps Collisions each — and \
     with P[Single] >= ln(a)/a^2 per band slot the election lands shortly after entry, \
     under every adversary alike.@."

let experiment =
  {
    Registry.id = "F1";
    name = "u-walk";
    claim =
      "Section 2.2: u performs a biased random walk that stays in a close proximity of \
       log2 n for a significant number of slots, independent of how the adversary acts.";
    run;
  }
