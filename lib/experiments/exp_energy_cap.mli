(** E16 — how much per-station energy does LESK actually need?  A
    hard transmission cap per station maps the §1.3 energy discussion:
    success collapses just below the expected per-station energy,
    because the cost is front-loaded in the u-ramp (every station
    transmits at p = 2⁰…2^{−u₀} during the climb). *)

val experiment : Registry.t
