(** E11 — the slot taxonomy of §2.2: measured counts of irregular /
    correcting / jammed / regular slots against the Lemma 2.2, 2.3 and
    2.5 bounds. *)

val experiment : Registry.t
