(** E7 — Lemma 3.1 / Theorem 3.2: the Notification wrapper turns LESK
    into a weak-CD leader election with constant-factor slot overhead
    (the proof gives ≤ 8×) and perfect correctness (exactly one leader,
    every station terminates knowing its status). *)

val experiment : Registry.t
