module D = Jamming_stats.Descriptive
module R = Jamming_stats.Regression

let run scale out =
  let ppf = Output.ppf out in
  let ns, reps =
    match scale with
    | Registry.Quick -> ([ 128; 1024; 8192 ], 15)
    | Registry.Full -> ([ 128; 512; 2048; 8192; 32768; 131072 ], 40)
  in
  let window = 64 in
  let table =
    Table.create ~title:"E6: LESU (unknown eps) vs LESK (known eps), greedy adversary, T = 64"
      ~columns:
        [
          ("eps", Table.Right);
          ("n", Table.Right);
          ("LESU med", Table.Right);
          ("LESK med", Table.Right);
          ("overhead", Table.Right);
          ("LESU/bound", Table.Right);
          ("success", Table.Right);
        ]
  in
  List.iter
    (fun eps ->
      let points = ref [] in
      List.iter
        (fun n ->
          let bound = Jamming_core.Lesu.expected_time_bound ~eps ~n ~window in
          let cap = Int.max 200_000 (int_of_float (100.0 *. bound)) in
          let setup = { Runner.n; eps; window; max_slots = cap } in
          let lesu = Runner.replicate ~engine:(Runner.Uniform (Specs.lesu ())) ~reps setup Specs.greedy in
          let lesk = Runner.replicate ~engine:(Runner.Uniform (Specs.lesk ~eps)) ~reps setup Specs.greedy in
          let mu = Runner.median_slots lesu and mk = Runner.median_slots lesk in
          points := (Float.log2 (float_of_int n), mu) :: !points;
          Table.add_row table
            [
              Table.fmt_float ~decimals:1 eps;
              Table.fmt_int n;
              Table.fmt_slots ~capped:(not (Runner.all_completed lesu)) mu;
              Table.fmt_float mk;
              Table.fmt_ratio (mu /. mk);
              Table.fmt_ratio (mu /. bound);
              Table.fmt_pct (Runner.success_rate lesu);
            ])
        ns;
      Table.add_separator table;
      let points = List.rev !points in
      let xs = Array.of_list (List.map fst points) in
      let ys = Array.of_list (List.map snd points) in
      let fit = R.linear ~xs ~ys in
      Format.fprintf ppf "eps=%.1f: LESU median ~ %.1f * log2 n %+.1f (r2 = %.3f)@." eps
        fit.R.slope fit.R.intercept fit.R.r2)
    [ 0.5; 0.8 ];
  Format.pp_print_newline ppf ();
  Output.table out table;
  Format.fprintf ppf
    "LESU never sees eps or T; 'overhead' is its price over the eps-aware LESK — Theorem \
     2.9 predicts it stays bounded in n (it may grow slowly with 1/eps).  Overheads \
     below 1 are real: when jamming is light, Estimation's doubling probe often lands a \
     Single by itself (the 'obtains Single' branch of Lemma 2.8), beating LESK's \
     eps/8-step climb of u.@."

let experiment =
  {
    Registry.id = "E6";
    name = "lesu-scaling";
    claim =
      "Theorem 2.9: with all of n, eps, T unknown, LESU still elects in O((log \
       log(1/eps)/eps^3) log n) when T is small: linear in log n with bounded overhead \
       over LESK.";
    run;
  }
