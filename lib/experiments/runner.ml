module Prng = Jamming_prng.Prng
module Budget = Jamming_adversary.Budget
module Metrics = Jamming_sim.Metrics
module Monitor = Jamming_sim.Monitor
module Faults = Jamming_faults

type setup = { n : int; eps : float; window : int; max_slots : int }

let pp_setup ppf s =
  Format.fprintf ppf "n=%d eps=%.2f T=%d cap=%d" s.n s.eps s.window s.max_slots

let validate setup =
  if setup.n < 1 then invalid_arg "Runner: n must be >= 1";
  if not (setup.eps > 0.0 && setup.eps <= 1.0) then invalid_arg "Runner: eps must lie in (0, 1]";
  if setup.window < 1 then invalid_arg "Runner: window must be >= 1";
  if setup.max_slots < 1 then invalid_arg "Runner: max_slots must be >= 1"

let run_once ?on_slot setup (protocol : Specs.protocol) (adversary : Specs.adversary) ~seed =
  validate setup;
  let rng = Prng.create ~seed in
  let proto = protocol.Specs.p_make ~n:setup.n ~window:setup.window () in
  let adv =
    adversary.Specs.a_make ~seed:(seed lxor 0x5bd1e995) ~n:setup.n ~eps:setup.eps
      ~window:setup.window ()
  in
  let budget = Budget.create ~window:setup.window ~eps:setup.eps in
  Jamming_sim.Uniform_engine.run ?on_slot ~n:setup.n ~rng ~protocol:proto ~adversary:adv
    ~budget ~max_slots:setup.max_slots ()

let run_exact_once ?on_slot ~cd setup ~factory (adversary : Specs.adversary) ~seed =
  validate setup;
  let rng = Prng.create ~seed in
  let stations = Jamming_sim.Engine.make_stations ~n:setup.n ~rng factory in
  let adv =
    adversary.Specs.a_make ~seed:(seed lxor 0x5bd1e995) ~n:setup.n ~eps:setup.eps
      ~window:setup.window ()
  in
  let budget = Budget.create ~window:setup.window ~eps:setup.eps in
  Jamming_sim.Engine.run ?on_slot ~cd ~adversary:adv ~budget ~max_slots:setup.max_slots
    ~stations ()

let run_faulty_once ?on_slot ?monitor_checks ~cd setup ~factory ~faults
    (adversary : Specs.adversary) ~seed =
  validate setup;
  Faults.Config.validate faults;
  let rng = Prng.create ~seed in
  let stations = Jamming_sim.Engine.make_stations ~n:setup.n ~rng factory in
  (* Dedicated streams for plans and sensing noise, derived from the run
     seed: adding or removing faults never perturbs the station or
     adversary streams. *)
  let plan_rng =
    Prng.create ~seed:(Prng.seed_of_string (Printf.sprintf "%d/faults/plans" seed))
  in
  let plans = Faults.Config.sample_plans faults ~rng:plan_rng ~n:setup.n in
  let stations = Faults.Config.wrap_stations plans stations in
  let injection =
    Faults.Injection.create ~noise:faults.Faults.Config.perception
      ~rng:(Prng.create ~seed:(Prng.seed_of_string (Printf.sprintf "%d/faults/noise" seed)))
  in
  let checks =
    match monitor_checks with
    | Some c -> c
    | None ->
        (* The election safety property only holds under the paper's
           fault-free assumptions; engine-level invariants always do. *)
        if Faults.Config.is_null faults then Monitor.all_checks
        else Monitor.safety_checks
  in
  let monitor =
    Monitor.create ~checks ~seed ~window:setup.window ~eps:setup.eps ()
  in
  let adv =
    adversary.Specs.a_make ~seed:(seed lxor 0x5bd1e995) ~n:setup.n ~eps:setup.eps
      ~window:setup.window ()
  in
  let budget = Budget.create ~window:setup.window ~eps:setup.eps in
  Jamming_sim.Engine.run ?on_slot ~faults:injection ~monitor ~cd ~adversary:adv ~budget
    ~max_slots:setup.max_slots ~stations ()

type sample = {
  setup : setup;
  protocol_name : string;
  adversary_name : string;
  results : Metrics.result array;
}

let cell_seed ~base_seed ~tag ~rep =
  Prng.seed_of_string (Printf.sprintf "%d/%s/%d" base_seed tag rep)

let recommended_jobs () = Int.max 1 (Int.min (Domain.recommended_domain_count ()) 8)

let default_jobs = ref 1

(* Fill [results] by applying [f] to every index, fanning the indices
   out over [jobs] domains.  Replications are embarrassingly parallel:
   each builds its own generator and mutable state and writes a distinct
   slot, so the parallel run is bit-identical to the sequential one. *)
let parallel_init ~jobs ~reps f =
  if reps < 1 then invalid_arg "Runner.replicate: reps must be >= 1";
  if jobs < 1 then invalid_arg "Runner.replicate: jobs must be >= 1";
  if jobs = 1 || reps = 1 then Array.init reps f
  else begin
    let first = f 0 in
    let results = Array.make reps first in
    let jobs = Int.min jobs reps in
    let worker j () =
      let rep = ref (1 + j) in
      while !rep < reps do
        results.(!rep) <- f !rep;
        rep := !rep + jobs
      done
    in
    let domains = List.init jobs (fun j -> Domain.spawn (worker j)) in
    List.iter Domain.join domains;
    results
  end

let replicate ?jobs ?(base_seed = 42) ~reps setup protocol adversary =
  let jobs = match jobs with Some j -> j | None -> !default_jobs in
  let tag =
    Printf.sprintf "%s|%s|%d|%f|%d" protocol.Specs.p_name adversary.Specs.a_name setup.n
      setup.eps setup.window
  in
  let results =
    parallel_init ~jobs ~reps (fun rep ->
        run_once setup protocol adversary ~seed:(cell_seed ~base_seed ~tag ~rep))
  in
  {
    setup;
    protocol_name = protocol.Specs.p_name;
    adversary_name = adversary.Specs.a_name;
    results;
  }

let replicate_faulty ?jobs ?(base_seed = 42) ?monitor_checks ~cd ~reps setup ~name ~factory
    ~faults adversary =
  let jobs = match jobs with Some j -> j | None -> !default_jobs in
  let tag =
    Printf.sprintf "faulty|%s|%s|%d|%f|%d" name adversary.Specs.a_name setup.n setup.eps
      setup.window
  in
  let results =
    parallel_init ~jobs ~reps (fun rep ->
        run_faulty_once ?monitor_checks ~cd setup ~factory ~faults adversary
          ~seed:(cell_seed ~base_seed ~tag ~rep))
  in
  { setup; protocol_name = name; adversary_name = adversary.Specs.a_name; results }

let replicate_exact ?jobs ?(base_seed = 42) ~cd ~reps setup ~name ~factory adversary =
  let jobs = match jobs with Some j -> j | None -> !default_jobs in
  let tag =
    Printf.sprintf "exact|%s|%s|%d|%f|%d" name adversary.Specs.a_name setup.n setup.eps
      setup.window
  in
  let results =
    parallel_init ~jobs ~reps (fun rep ->
        run_exact_once ~cd setup ~factory adversary ~seed:(cell_seed ~base_seed ~tag ~rep))
  in
  { setup; protocol_name = name; adversary_name = adversary.Specs.a_name; results }

let slots sample =
  sample.results
  |> Array.to_list
  |> List.filter_map (fun r ->
         if r.Metrics.completed then Some (float_of_int r.Metrics.slots) else None)
  |> Array.of_list

let all_completed sample = Array.for_all (fun r -> r.Metrics.completed) sample.results

let success_rate sample =
  let ok = Array.fold_left (fun acc r -> if Metrics.election_ok r then acc + 1 else acc) 0 sample.results in
  float_of_int ok /. float_of_int (Array.length sample.results)

let median_slots sample =
  let xs = Array.map (fun r -> float_of_int r.Metrics.slots) sample.results in
  Jamming_stats.Descriptive.median xs

let mean_energy_per_station sample =
  let xs =
    Array.map
      (fun r -> r.Metrics.transmissions /. float_of_int sample.setup.n)
      sample.results
  in
  Jamming_stats.Descriptive.mean xs

let median_jammed_fraction sample =
  let xs =
    Array.map
      (fun r ->
        if r.Metrics.slots = 0 then 0.0
        else float_of_int r.Metrics.jammed_slots /. float_of_int r.Metrics.slots)
      sample.results
  in
  Jamming_stats.Descriptive.median xs
