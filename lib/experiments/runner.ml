module Prng = Jamming_prng.Prng
module Budget = Jamming_adversary.Budget
module Channel = Jamming_channel.Channel
module Metrics = Jamming_sim.Metrics
module Monitor = Jamming_sim.Monitor
module Observer = Jamming_sim.Observer
module Dynamic = Jamming_sim.Dynamic
module Faults = Jamming_faults
module Telemetry = Jamming_telemetry.Telemetry
module Json = Jamming_telemetry.Json
module Store = Jamming_store.Store
module Key = Jamming_store.Key

type setup = { n : int; eps : float; window : int; max_slots : int }

let pp_setup ppf s =
  Format.fprintf ppf "n=%d eps=%.2f T=%d cap=%d" s.n s.eps s.window s.max_slots

let validate setup =
  if setup.n < 1 then invalid_arg "Runner: n must be >= 1";
  if not (setup.eps > 0.0 && setup.eps <= 1.0) then invalid_arg "Runner: eps must lie in (0, 1]";
  if setup.window < 1 then invalid_arg "Runner: window must be >= 1";
  if setup.max_slots < 1 then invalid_arg "Runner: max_slots must be >= 1"

(* --- the engine spec: one description of how to run a cell --- *)

type engine =
  | Uniform of Specs.protocol
  | Exact of {
      name : string;
      cd : Channel.cd_model;
      factory : Jamming_station.Station.factory;
    }
  | Faulty of {
      name : string;
      cd : Channel.cd_model;
      factory : Jamming_station.Station.factory;
      faults : Faults.Config.t;
      monitor_checks : Monitor.checks option;
    }
  | Aggregate of {
      name : string;
      cd : Channel.cd_model;
      proto : Jamming_sim.Aggregate.packed;
    }
  | Pooled of {
      name : string;
      cd : Channel.cd_model;
      pool : Jamming_station.Station.pool_factory;
    }

let engine_name = function
  | Uniform p -> p.Specs.p_name
  | Exact { name; _ } -> name
  | Faulty { name; _ } -> name
  | Aggregate { name; _ } -> name
  | Pooled { name; _ } -> name

let aggregate_of ?(cd = Channel.Strong_cd) proto =
  Aggregate { name = Jamming_sim.Aggregate.name proto; cd; proto }

let aggregate_lesk ?a ~eps () = aggregate_of (Jamming_core.Lesk.aggregate ?a ~eps ())
let aggregate_lesu ?config () = aggregate_of (Jamming_core.Lesu.aggregate ?config ())

(* The weak-CD notification protocols in flat-pool form (DESIGN.md §15).
   A pooled spec is the drop-in fast path for the corresponding Exact
   spec: it shares the Exact seed tags and cache keys below, which is
   sound because the pooled engine is bit-identical to the closure
   engine on every stream (asserted in test_notification.ml and the E7
   oracle check). *)
let pooled_lewk ?(eps = 0.5) () =
  Pooled { name = "LEWK"; cd = Channel.Weak_cd; pool = Jamming_core.Lewk.pool ~eps () }

let pooled_lewu ?config () =
  Pooled { name = "LEWU"; cd = Channel.Weak_cd; pool = Jamming_core.Lewu.pool ?config () }

(* LMR (lib/core/lmr.ml): the log-logarithmic awake-time election.
   The closure factory needs the population size up front (the level
   cap is a function of n), so [exact_lmr] takes [n] and the caller
   must pass the same value in the setup. *)
let exact_lmr ~n =
  Exact { name = Jamming_core.Lmr.name; cd = Channel.Strong_cd;
          factory = Jamming_core.Lmr.station ~n }

let pooled_lmr () =
  Pooled { name = Jamming_core.Lmr.name; cd = Channel.Strong_cd;
           pool = Jamming_core.Lmr.pool }

let make_adversary (adversary : Specs.adversary) setup ~seed =
  adversary.Specs.a_make ~seed:(seed lxor 0x5bd1e995) ~n:setup.n ~eps:setup.eps
    ~window:setup.window ()

let run ?(observers = []) ?(energy = false) ~engine setup (adversary : Specs.adversary)
    ~seed =
  validate setup;
  let budget = Budget.create ~window:setup.window ~eps:setup.eps in
  (* Metering never touches a random stream, so the result (energy
     block aside) is bit-identical with or without it. *)
  let meter () =
    if energy then Some (Jamming_energy.Energy.Meter.create ~n:setup.n) else None
  in
  match engine with
  | Uniform protocol ->
      let rng = Prng.create ~seed in
      let proto = protocol.Specs.p_make ~n:setup.n ~window:setup.window () in
      let adv = make_adversary adversary setup ~seed in
      Jamming_sim.Uniform_engine.run ~energy ~observers ~n:setup.n ~rng ~protocol:proto
        ~adversary:adv ~budget ~max_slots:setup.max_slots ()
  | Exact { cd; factory; name = _ } ->
      let rng = Prng.create ~seed in
      let stations = Jamming_sim.Engine.make_stations ~n:setup.n ~rng factory in
      let adv = make_adversary adversary setup ~seed in
      Jamming_sim.Engine.run ?meter:(meter ()) ~observers ~cd ~adversary:adv ~budget
        ~max_slots:setup.max_slots ~stations ()
  | Faulty { cd; factory; faults; monitor_checks; name = _ } ->
      Faults.Config.validate faults;
      let rng = Prng.create ~seed in
      let stations = Jamming_sim.Engine.make_stations ~n:setup.n ~rng factory in
      (* Dedicated streams for plans and sensing noise, derived from the run
         seed: adding or removing faults never perturbs the station or
         adversary streams. *)
      let plan_rng =
        Prng.create ~seed:(Prng.seed_of_string (Printf.sprintf "%d/faults/plans" seed))
      in
      let plans = Faults.Config.sample_plans faults ~rng:plan_rng ~n:setup.n in
      let stations = Faults.Config.wrap_stations plans stations in
      let injection =
        Faults.Injection.create ~noise:faults.Faults.Config.perception
          ~rng:
            (Prng.create
               ~seed:(Prng.seed_of_string (Printf.sprintf "%d/faults/noise" seed)))
      in
      let checks =
        match monitor_checks with
        | Some c -> c
        | None ->
            (* The election safety property only holds under the paper's
               fault-free assumptions; engine-level invariants always do. *)
            if Faults.Config.is_null faults then Monitor.all_checks
            else Monitor.safety_checks
      in
      let monitor = Monitor.create ~checks ~seed ~window:setup.window ~eps:setup.eps () in
      let adv = make_adversary adversary setup ~seed in
      Jamming_sim.Engine.run ?meter:(meter ()) ~observers ~faults:injection ~monitor ~cd
        ~adversary:adv ~budget ~max_slots:setup.max_slots ~stations ()
  | Aggregate { cd; proto = Jamming_sim.Aggregate.Packed protocol; name = _ } ->
      let rng = Prng.create ~seed in
      let adv = make_adversary adversary setup ~seed in
      Jamming_sim.Aggregate.run ~energy ~observers ~cd ~rng ~n:setup.n ~protocol
        ~adversary:adv ~budget ~max_slots:setup.max_slots ()
  | Pooled { cd; pool; name = _ } ->
      let rng = Prng.create ~seed in
      let pool = pool ~n:setup.n ~rng in
      let adv = make_adversary adversary setup ~seed in
      Jamming_sim.Engine.run_pool ?meter:(meter ()) ~observers ~cd ~adversary:adv ~budget
        ~max_slots:setup.max_slots ~pool ()

type sample = {
  setup : setup;
  protocol_name : string;
  adversary_name : string;
  results : Metrics.result array;
}

(* Seed tags must stay exactly as the pre-observer runner derived them,
   per engine kind, so every published table remains reproducible. *)
let cell_tag ~engine ~(adversary : Specs.adversary) setup =
  match engine with
  | Uniform p ->
      Printf.sprintf "%s|%s|%d|%f|%d" p.Specs.p_name adversary.Specs.a_name setup.n
        setup.eps setup.window
  | Exact { name; _ } ->
      Printf.sprintf "exact|%s|%s|%d|%f|%d" name adversary.Specs.a_name setup.n setup.eps
        setup.window
  | Faulty { name; _ } ->
      Printf.sprintf "faulty|%s|%s|%d|%f|%d" name adversary.Specs.a_name setup.n setup.eps
        setup.window
  | Aggregate { name; _ } ->
      Printf.sprintf "aggregate|%s|%s|%d|%f|%d" name adversary.Specs.a_name setup.n
        setup.eps setup.window
  (* A pooled cell IS the corresponding exact cell, faster: per-rep
     seeds (and hence results) are shared with the closure engine. *)
  | Pooled { name; _ } ->
      Printf.sprintf "exact|%s|%s|%d|%f|%d" name adversary.Specs.a_name setup.n setup.eps
        setup.window

let recommended_jobs () =
  let from_env =
    match Sys.getenv_opt "JAMMING_JOBS" with
    | Some s -> int_of_string_opt (String.trim s)
    | None -> None
  in
  match from_env with
  | Some j when j >= 1 -> j
  | Some _ | None -> Int.max 1 (Domain.recommended_domain_count ())

let default_jobs = ref 1

(* Process default for [Cell.v]'s [?base_seed] — 42, the seed every
   published table was produced with.  The CLIs' [--seed] rebinds it so
   a whole sweep can be re-run under a fresh seed without threading an
   argument through every experiment. *)
let default_base_seed = ref 42

(* Process default for [Cell.v]'s [?energy] — the CLIs' [--energy]
   flips it so a whole sweep meters every (static) cell it builds.
   Only static cells pick the default up: churn cells cannot be metered
   and must keep working under a blanket --energy. *)
let default_energy = ref false

(* Process-default telemetry sink, used when [?telemetry] is omitted —
   the same pattern as [default_jobs]: harnesses (bench, sweep) install
   a sink around a workload and experiment code stays oblivious. *)
let default_telemetry : Telemetry.t option ref = ref None

let set_telemetry t = default_telemetry := t

let with_telemetry tel f =
  let previous = !default_telemetry in
  default_telemetry := Some tel;
  Fun.protect ~finally:(fun () -> default_telemetry := previous) f

(* Aggregate a finished replication into the sink.  Folding the result
   array in index order (on the calling domain, after the join) makes
   the aggregate independent of [jobs]: counters and histograms are
   identical for jobs=1 and jobs=4; only the wall timer varies. *)
let record_sample tel (results : Metrics.result array) =
  let c name = Telemetry.counter tel ("runner." ^ name) in
  let runs = c "runs" and slots = c "slots" and jammed = c "jammed" in
  let nulls = c "null" and singles = c "single" and collisions = c "collision" in
  let completed = c "completed" and elected = c "elected" in
  let per_run = Telemetry.histogram tel "runner.slots_per_run" in
  Array.iter
    (fun (r : Metrics.result) ->
      Telemetry.incr runs;
      Telemetry.add slots r.Metrics.slots;
      Telemetry.add jammed r.Metrics.jammed_slots;
      Telemetry.add nulls r.Metrics.nulls;
      Telemetry.add singles r.Metrics.singles;
      Telemetry.add collisions r.Metrics.collisions;
      if r.Metrics.completed then Telemetry.incr completed;
      if Metrics.election_ok r then Telemetry.incr elected;
      Telemetry.observe per_run r.Metrics.slots;
      match r.Metrics.energy with
      | Some s -> Jamming_energy.Energy.observe_summary tel ~prefix:"runner.energy" s
      | None -> ())
    results

let slots sample =
  sample.results
  |> Array.to_list
  |> List.filter_map (fun r ->
         if r.Metrics.completed then Some (float_of_int r.Metrics.slots) else None)
  |> Array.of_list

let all_completed sample = Array.for_all (fun r -> r.Metrics.completed) sample.results

let success_rate sample =
  let ok = Array.fold_left (fun acc r -> if Metrics.election_ok r then acc + 1 else acc) 0 sample.results in
  float_of_int ok /. float_of_int (Array.length sample.results)

let median_slots sample =
  let xs = Array.map (fun r -> float_of_int r.Metrics.slots) sample.results in
  Jamming_stats.Descriptive.median xs

let mean_energy_per_station sample =
  let xs =
    Array.map
      (fun r -> r.Metrics.transmissions /. float_of_int sample.setup.n)
      sample.results
  in
  Jamming_stats.Descriptive.mean xs

(* Median over runs of the per-run median awake slots — the A9 growth
   metric.  Only metered runs contribute; nan when there are none. *)
let median_awake_slots sample =
  let xs =
    sample.results |> Array.to_list
    |> List.filter_map (fun (r : Metrics.result) ->
           Option.map
             (fun (s : Jamming_energy.Energy.summary) -> s.Jamming_energy.Energy.median_awake)
             r.Metrics.energy)
    |> Array.of_list
  in
  if Array.length xs = 0 then Float.nan else Jamming_stats.Descriptive.median xs

let median_jammed_fraction sample =
  let xs =
    Array.map
      (fun r ->
        if r.Metrics.slots = 0 then 0.0
        else float_of_int r.Metrics.jammed_slots /. float_of_int r.Metrics.slots)
      sample.results
  in
  Jamming_stats.Descriptive.median xs

let setup_to_json s =
  Json.Obj
    [
      ("n", Json.Int s.n);
      ("eps", Json.Float s.eps);
      ("window", Json.Int s.window);
      ("max_slots", Json.Int s.max_slots);
    ]

let sample_to_json ?(include_results = false) sample =
  let total_slots =
    Array.fold_left (fun acc r -> acc + r.Metrics.slots) 0 sample.results
  in
  Json.Obj
    ([
       ("protocol", Json.String sample.protocol_name);
       ("adversary", Json.String sample.adversary_name);
       ("setup", setup_to_json sample.setup);
       ("reps", Json.Int (Array.length sample.results));
       ("total_slots", Json.Int total_slots);
       ("success_rate", Json.Float (success_rate sample));
       ("median_slots", Json.Float (median_slots sample));
       ("mean_energy_per_station", Json.Float (mean_energy_per_station sample));
       ("median_jammed_fraction", Json.Float (median_jammed_fraction sample));
     ]
    (* Appended only for metered samples: unmetered digests stay
       byte-identical to the pre-energy schema. *)
    @ (let med = median_awake_slots sample in
       if Float.is_nan med then [] else [ ("median_awake", Json.Float med) ])
    @
    if include_results then
      [
        ( "results",
          Json.List (Array.to_list (Array.map Metrics.result_to_json sample.results)) );
      ]
    else [])

let setup_of_json j =
  let int k = Option.bind (Json.member k j) Json.to_int_opt in
  let flt k = Option.bind (Json.member k j) Json.to_float_opt in
  match (int "n", flt "eps", int "window", int "max_slots") with
  | Some n, Some eps, Some window, Some max_slots -> Ok { n; eps; window; max_slots }
  | _ -> Error "setup: missing or ill-typed field"

let sample_of_json j =
  let str k = Option.bind (Json.member k j) Json.to_string_opt in
  match
    ( str "protocol",
      str "adversary",
      Json.member "setup" j,
      Option.bind (Json.member "results" j) Json.to_list_opt )
  with
  | Some protocol_name, Some adversary_name, Some setup_json, Some result_jsons -> (
      match setup_of_json setup_json with
      | Error _ as e -> e
      | Ok setup -> (
          let rec decode acc = function
            | [] -> Ok (List.rev acc)
            | r :: tl -> (
                match Metrics.result_of_json r with
                | Ok r -> decode (r :: acc) tl
                | Error _ as e -> e)
          in
          match decode [] result_jsons with
          | Error _ as e -> e
          | Ok results -> (
              let results = Array.of_list results in
              match Option.bind (Json.member "reps" j) Json.to_int_opt with
              | Some reps when reps <> Array.length results ->
                  Error "sample: reps disagrees with the results array"
              | Some _ | None -> Ok { setup; protocol_name; adversary_name; results })))
  | _ -> Error "sample: missing protocol/adversary/setup/results"

(* --- the content-addressed run store (DESIGN.md §11) --- *)

(* Full-precision fault descriptor: the engine names baked into seed
   tags do NOT distinguish fault configurations (exp A6 reuses "LESK"
   across crash rates), so the cache key must.  Floats are rendered in
   hex — [Faults.Config.pp]'s %.3g would conflate nearby rates. *)
let faults_descriptor (f : Faults.Config.t) =
  let p = f.Faults.Config.perception in
  Printf.sprintf "perception=%h,%h,%h,%h;crash=%h@%d;sleep=%h@%d<=%d;wake=%h<=%d"
    p.Faults.Perception.p_null_to_collision p.Faults.Perception.p_single_to_collision
    p.Faults.Perception.p_collision_to_single p.Faults.Perception.p_collision_to_null
    f.Faults.Config.p_crash f.Faults.Config.crash_horizon f.Faults.Config.p_sleep
    f.Faults.Config.sleep_horizon f.Faults.Config.max_sleep f.Faults.Config.p_late_wake
    f.Faults.Config.max_wake_delay

let cell_key ?(energy = false) ~engine ~(adversary : Specs.adversary) ~reps ~base_seed
    setup =
  let kind, cd =
    match engine with
    | Uniform _ -> ("uniform", Channel.Strong_cd)
    | Exact { cd; _ } -> ("exact", cd)
    | Faulty { cd; _ } -> ("faulty", cd)
    | Aggregate { cd; _ } -> ("aggregate", cd)
    (* Shares the exact kind: warm cache entries serve either engine,
       soundly, because the two are bit-identical per seed. *)
    | Pooled { cd; _ } -> ("exact", cd)
  in
  Key.v
    ([
       ("kind", Key.S kind);
       ("protocol", Key.S (engine_name engine));
       ("cd", Key.S (Channel.cd_model_to_string cd));
       ("adversary", Key.S adversary.Specs.a_name);
       ("n", Key.I setup.n);
       ("eps", Key.F setup.eps);
       ("window", Key.I setup.window);
       ("max_slots", Key.I setup.max_slots);
       ("reps", Key.I reps);
       ("base_seed", Key.I base_seed);
     ]
    (* Appended only when metering is on, so every pre-energy cache
       entry keeps its address byte-for-byte. *)
    @ (if energy then [ ("energy", Key.B true) ] else [])
    @
    match engine with
    | Faulty { faults; _ } -> [ ("faults", Key.S (faults_descriptor faults)) ]
    | Uniform _ | Exact _ | Aggregate _ | Pooled _ -> [])

(* Process-default store, same pattern as [default_telemetry]: the
   CLIs install one under --cache and experiment code stays oblivious. *)
let default_store : Store.t option ref = ref None

let set_store s = default_store := s

let with_store st f =
  let previous = !default_store in
  default_store := Some st;
  Fun.protect ~finally:(fun () -> default_store := previous) f

(* --- churn cells: dynamic populations (DESIGN.md §12) --- *)

(* Under churn every engine kind runs through the exact engine (the
   O(1)-per-slot uniform path cannot represent a population that changes
   mid-run), so a [Uniform] spec is adapted per station. *)
let churn_engine_parts ~setup engine =
  match engine with
  | Uniform p ->
      ( Channel.Strong_cd,
        Jamming_station.Uniform.distributed
          (p.Specs.p_make ~n:setup.n ~window:setup.window),
        Faults.Config.none,
        None )
  | Exact { cd; factory; _ } -> (cd, factory, Faults.Config.none, None)
  | Faulty { cd; factory; faults; monitor_checks; _ } ->
      (cd, factory, faults, monitor_checks)
  | Aggregate _ ->
      (* Class counts cannot express per-station lifecycle events, and
         nothing keeps a churned population in lockstep phases. *)
      invalid_arg "Runner: the aggregate engine does not support churn"
  | Pooled _ ->
      (* The dynamic driver composes per-station factories; re-run the
         closure engine (bit-identical) for churned weak-CD populations. *)
      invalid_arg "Runner: the pooled engine does not support churn"

let run_churn ?(observers = []) ~engine ~churn ?restart_after setup adversary ~seed =
  validate setup;
  Faults.Churn.validate churn;
  (match restart_after with
  | Some r when r < 1 -> invalid_arg "Runner.run_churn: restart_after must be >= 1"
  | Some _ | None -> ());
  if Faults.Churn.is_null churn && restart_after = None then
    (* Bit-identical to the static cell by construction: no churn stream
       is created and the underlying engine runs completely unchanged. *)
    Dynamic.of_static (run ~observers ~engine setup adversary ~seed)
  else begin
    let cd, factory, faults_cfg, monitor_checks = churn_engine_parts ~setup engine in
    Faults.Config.validate faults_cfg;
    let budget = Budget.create ~window:setup.window ~eps:setup.eps in
    (* Stream layout mirrors the Faulty engine exactly — station root,
       plan stream, noise stream — plus two churn-only streams, so the
       same seed with null churn reproduces the static run and adding
       churn never perturbs station or adversary randomness. *)
    let station_rng = Prng.create ~seed in
    let plan_rng =
      Prng.create ~seed:(Prng.seed_of_string (Printf.sprintf "%d/faults/plans" seed))
    in
    let spawn ~birth ~id =
      let st = factory ~id ~rng:(Prng.split station_rng) in
      (* Lifecycle faults are per-incarnation: each (re)spawned station
         draws a fresh plan, shifted to its birth slot. *)
      let plan = Faults.Config.sample_plan faults_cfg ~rng:plan_rng in
      if Faults.Fault_plan.is_null plan then st
      else Faults.Fault_plan.wrap (Faults.Fault_plan.shift plan ~by:birth) st
    in
    let schedule =
      Faults.Churn.sample_schedule churn
        ~rng:
          (Prng.create
             ~seed:(Prng.seed_of_string (Printf.sprintf "%d/churn/schedule" seed)))
    in
    let victim_rng =
      Prng.create ~seed:(Prng.seed_of_string (Printf.sprintf "%d/churn/victims" seed))
    in
    let injection =
      Faults.Injection.create ~noise:faults_cfg.Faults.Config.perception
        ~rng:
          (Prng.create
             ~seed:(Prng.seed_of_string (Printf.sprintf "%d/faults/noise" seed)))
    in
    let checks =
      match monitor_checks with
      | Some c -> c
      | None ->
          if Faults.Config.is_null faults_cfg then Monitor.all_checks
          else Monitor.safety_checks
    in
    let monitor = Monitor.create ~checks ~seed ~window:setup.window ~eps:setup.eps () in
    let adv = make_adversary adversary setup ~seed in
    Dynamic.run ?restart_after ~events:schedule ?kill:(Faults.Churn.kill_policy churn)
      ~victim_rng ~faults:injection ~monitor ~observers ~cd ~adversary:adv ~budget
      ~max_slots:setup.max_slots ~init:setup.n ~spawn ()
  end

type churn_sample = {
  c_setup : setup;
  c_protocol_name : string;
  c_adversary_name : string;
  c_churn : string;  (* Churn.descriptor *)
  c_results : Dynamic.result array;
}

let churn_mean f cs =
  let xs = Array.map (fun r -> float_of_int (f r)) cs.c_results in
  Jamming_stats.Descriptive.mean xs

let mean_elections_completed cs = churn_mean (fun r -> r.Dynamic.elections_completed) cs
let mean_leaderless_slots cs = churn_mean (fun r -> r.Dynamic.leaderless_slots) cs

let max_leaderless_interval cs =
  Array.fold_left
    (fun acc r -> List.fold_left Int.max acc r.Dynamic.leaderless_intervals)
    0 cs.c_results

let healed_rate cs =
  (* A run "healed" when it ends with a live leader — or with nobody
     left to lead. *)
  let ok =
    Array.fold_left
      (fun acc r ->
        if r.Dynamic.final_leader <> None || r.Dynamic.final_population = 0 then acc + 1
        else acc)
      0 cs.c_results
  in
  float_of_int ok /. float_of_int (Array.length cs.c_results)

let churn_sample_to_json ?(include_results = false) cs =
  Json.Obj
    ([
       ("protocol", Json.String cs.c_protocol_name);
       ("adversary", Json.String cs.c_adversary_name);
       ("churn", Json.String cs.c_churn);
       ("setup", setup_to_json cs.c_setup);
       ("reps", Json.Int (Array.length cs.c_results));
       ("mean_elections", Json.Float (mean_elections_completed cs));
       ("mean_leaderless_slots", Json.Float (mean_leaderless_slots cs));
       ("max_leaderless_interval", Json.Int (max_leaderless_interval cs));
       ("healed_rate", Json.Float (healed_rate cs));
     ]
    @
    if include_results then
      [
        ( "results",
          Json.List (Array.to_list (Array.map Dynamic.result_to_json cs.c_results)) );
      ]
    else [])

let churn_sample_of_json j =
  let str k = Option.bind (Json.member k j) Json.to_string_opt in
  match
    ( str "protocol",
      str "adversary",
      str "churn",
      Json.member "setup" j,
      Option.bind (Json.member "results" j) Json.to_list_opt )
  with
  | Some c_protocol_name, Some c_adversary_name, Some c_churn, Some setup_json, Some rs
    -> (
      match setup_of_json setup_json with
      | Error _ as e -> e
      | Ok c_setup -> (
          let rec decode acc = function
            | [] -> Ok (List.rev acc)
            | r :: tl -> (
                match Dynamic.result_of_json r with
                | Ok r -> decode (r :: acc) tl
                | Error _ as e -> e)
          in
          match decode [] rs with
          | Error _ as e -> e
          | Ok results -> (
              let c_results = Array.of_list results in
              match Option.bind (Json.member "reps" j) Json.to_int_opt with
              | Some reps when reps <> Array.length c_results ->
                  Error "churn sample: reps disagrees with the results array"
              | Some _ | None ->
                  Ok { c_setup; c_protocol_name; c_adversary_name; c_churn; c_results })))
  | _ -> Error "churn sample: missing protocol/adversary/churn/setup/results"

let churn_cell_key ~engine ~(adversary : Specs.adversary) ~churn ~restart_after ~reps
    ~base_seed setup =
  let engine_kind, cd =
    match engine with
    | Uniform _ -> ("uniform", Channel.Strong_cd)
    | Exact { cd; _ } -> ("exact", cd)
    | Faulty { cd; _ } -> ("faulty", cd)
    | Aggregate _ -> invalid_arg "Runner: the aggregate engine does not support churn"
    | Pooled _ -> invalid_arg "Runner: the pooled engine does not support churn"
  in
  Key.v
    ([
       ("kind", Key.S "churn");
       ("engine", Key.S engine_kind);
       ("protocol", Key.S (engine_name engine));
       ("cd", Key.S (Channel.cd_model_to_string cd));
       ("adversary", Key.S adversary.Specs.a_name);
       ("n", Key.I setup.n);
       ("eps", Key.F setup.eps);
       ("window", Key.I setup.window);
       ("max_slots", Key.I setup.max_slots);
       ("reps", Key.I reps);
       ("base_seed", Key.I base_seed);
       ("churn", Key.S (Faults.Churn.descriptor churn));
       (* [restart_after] is validated >= 1, so 0 injectively encodes
          "no restart deadline". *)
       ("restart_after", Key.I (Option.value restart_after ~default:0));
     ]
    @
    match engine with
    | Faulty { faults; _ } -> [ ("faults", Key.S (faults_descriptor faults)) ]
    | Uniform _ | Exact _ | Aggregate _ | Pooled _ -> [])

let record_churn_sample tel (results : Dynamic.result array) =
  let c name = Telemetry.counter tel ("runner.churn." ^ name) in
  let runs = c "runs" and slots = c "slots" and elections = c "elections" in
  let failures = c "failures" and re_elections = c "re_elections" in
  let arrivals = c "arrivals" and departures = c "departures" in
  let kills = c "leader_kills" and leaderless = c "leaderless" in
  let per_run = Telemetry.histogram tel "runner.churn.leaderless_per_run" in
  Array.iter
    (fun (r : Dynamic.result) ->
      Telemetry.incr runs;
      Telemetry.add slots r.Dynamic.total_slots;
      Telemetry.add elections r.Dynamic.elections_completed;
      Telemetry.add failures r.Dynamic.elections_failed;
      Telemetry.add re_elections r.Dynamic.re_elections;
      Telemetry.add arrivals r.Dynamic.arrivals;
      Telemetry.add departures r.Dynamic.departures;
      Telemetry.add kills r.Dynamic.leader_kills;
      Telemetry.add leaderless r.Dynamic.leaderless_slots;
      Telemetry.observe per_run r.Dynamic.leaderless_slots)
    results

(* --- the Cell: one unit of scheduling, seeding, and caching --- *)

module Cell = struct
  type population =
    | Static
    | Churning of { churn : Faults.Churn.t; restart_after : int option }

  type t = {
    engine : engine;
    setup : setup;
    adversary : Specs.adversary;
    population : population;
    reps : int;
    base_seed : int;
    energy : bool;
  }

  let validate_cell c =
    validate c.setup;
    if c.reps < 1 then invalid_arg "Runner.Cell: reps must be >= 1";
    match c.population with
    | Static -> ()
    | Churning { churn; restart_after } -> (
        if c.energy then
          (* Segments cannot attribute awake slots across incarnations
             of a station id, so a churn-run energy block would lie. *)
          invalid_arg "Runner.Cell: energy accounting does not support churn";
        (match c.engine with
        | Aggregate _ ->
            invalid_arg "Runner.Cell: the aggregate engine does not support churn"
        | Pooled _ ->
            invalid_arg "Runner.Cell: the pooled engine does not support churn"
        | Uniform _ | Exact _ | Faulty _ -> ());
        Faults.Churn.validate churn;
        match restart_after with
        | Some r when r < 1 -> invalid_arg "Runner.Cell: restart_after must be >= 1"
        | Some _ | None -> ())

  let v ?base_seed ?churn ?restart_after ?energy ~engine ~reps setup adversary
      =
    let base_seed =
      match base_seed with Some s -> s | None -> !default_base_seed
    in
    let population =
      match (churn, restart_after) with
      | None, None -> Static
      | churn, restart_after ->
          Churning
            { churn = Option.value churn ~default:Faults.Churn.none; restart_after }
    in
    let energy =
      match energy with
      | Some e -> e
      | None -> !default_energy && population = Static
    in
    let c = { engine; setup; adversary; population; reps; base_seed; energy } in
    validate_cell c;
    c

  (* The static cell's tag, for every population: a null-churn cell
     replays the exact seeds (hence results) of its static twin. *)
  let tag c = cell_tag ~engine:c.engine ~adversary:c.adversary c.setup

  let seed c ~rep = Prng.seed_stream ~base:c.base_seed ~tag:(tag c) rep

  let key c =
    match c.population with
    | Static ->
        cell_key ~energy:c.energy ~engine:c.engine ~adversary:c.adversary ~reps:c.reps
          ~base_seed:c.base_seed c.setup
    | Churning { churn; restart_after } ->
        churn_cell_key ~engine:c.engine ~adversary:c.adversary ~churn ~restart_after
          ~reps:c.reps ~base_seed:c.base_seed c.setup

  let pp ppf c =
    Format.fprintf ppf "%s x %s [%a] reps=%d seed=%d" (engine_name c.engine)
      c.adversary.Specs.a_name pp_setup c.setup c.reps c.base_seed;
    if c.energy then Format.fprintf ppf " energy";
    match c.population with
    | Static -> ()
    | Churning { churn; restart_after } ->
        Format.fprintf ppf " churn=%s" (Faults.Churn.descriptor churn);
        (match restart_after with
        | Some r -> Format.fprintf ppf " restart_after=%d" r
        | None -> ())

  let validate = validate_cell
end

type outcome = Sample of sample | Churned of churn_sample

(* --- the work-stealing domain pool --- *)

module Pool = struct
  type t = { jobs : int }

  let create ?jobs () =
    let jobs = match jobs with Some j -> j | None -> !default_jobs in
    if jobs < 1 then invalid_arg "Runner.Pool.create: jobs must be >= 1";
    { jobs }

  let jobs p = p.jobs
end

(* A cell in flight: every replication writes its own slot, so the
   partitioning of reps over domains cannot affect the result. *)
type slots =
  | Static_slots of Metrics.result option array
  | Churn_slots of Dynamic.result option array

type pending = { p_cell : Cell.t; p_slots : slots }

let make_pending (c : Cell.t) =
  let slots =
    match c.Cell.population with
    | Cell.Static -> Static_slots (Array.make c.Cell.reps None)
    | Cell.Churning _ -> Churn_slots (Array.make c.Cell.reps None)
  in
  { p_cell = c; p_slots = slots }

let compute_rep pending rep =
  let c = pending.p_cell in
  let seed = Cell.seed c ~rep in
  match (c.Cell.population, pending.p_slots) with
  | Cell.Static, Static_slots slots ->
      slots.(rep) <-
        Some
          (run ~energy:c.Cell.energy ~engine:c.Cell.engine c.Cell.setup c.Cell.adversary
             ~seed)
  | Cell.Churning { churn; restart_after }, Churn_slots slots ->
      slots.(rep) <-
        Some
          (run_churn ~engine:c.Cell.engine ~churn ?restart_after c.Cell.setup
             c.Cell.adversary ~seed)
  | Cell.Static, Churn_slots _ | Cell.Churning _, Static_slots _ -> assert false

(* A task is a contiguous slice of one cell's replications.  The pool
   steals at cell granularity; cells whose reps dwarf the fair share
   are pre-split into slices so one giant cell cannot serialise the
   tail of a sweep. *)
type task = { t_pending : pending; t_lo : int; t_hi : int }

let tasks_of_pending ~jobs pending =
  let reps = pending.p_cell.Cell.reps in
  (* Aim for ~4 slices per domain across the cell: small cells stay
     whole (one steal moves the entire cell), big ones split. *)
  let chunk = Int.max 1 ((reps + (4 * jobs) - 1) / (4 * jobs)) in
  let rec slices lo acc =
    if lo >= reps then List.rev acc
    else
      let hi = Int.min reps (lo + chunk) in
      slices hi ({ t_pending = pending; t_lo = lo; t_hi = hi } :: acc)
  in
  slices 0 []

let exec_task t =
  for rep = t.t_lo to t.t_hi - 1 do
    compute_rep t.t_pending rep
  done

(* One mutex-protected deque per worker over a fixed task array: the
   owner pops the bottom, thieves take the top.  No task ever spawns
   another, so "every deque empty" is a sound termination test — tasks
   still in flight are owned by the domain executing them. *)
type deque = {
  d_tasks : task array;
  mutable d_top : int;
  mutable d_bottom : int;
  d_lock : Mutex.t;
}

let deque_of_tasks tasks =
  let arr = Array.of_list tasks in
  { d_tasks = arr; d_top = 0; d_bottom = Array.length arr; d_lock = Mutex.create () }

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let deque_pop d =
  with_lock d.d_lock (fun () ->
      if d.d_top < d.d_bottom then begin
        d.d_bottom <- d.d_bottom - 1;
        Some d.d_tasks.(d.d_bottom)
      end
      else None)

let deque_steal d =
  with_lock d.d_lock (fun () ->
      if d.d_top < d.d_bottom then begin
        let t = d.d_tasks.(d.d_top) in
        d.d_top <- d.d_top + 1;
        Some t
      end
      else None)

(* Run every task to completion on [jobs] domains (the caller is worker
   0).  The first exception wins: it drains the pool (workers stop
   taking tasks) and is re-raised on the caller with its backtrace. *)
let run_tasks ~jobs tasks =
  if jobs = 1 then List.iter exec_task tasks
  else begin
    let buckets = Array.make jobs [] in
    List.iteri (fun i t -> buckets.(i mod jobs) <- t :: buckets.(i mod jobs)) tasks;
    let deques = Array.map (fun b -> deque_of_tasks (List.rev b)) buckets in
    let failed = Atomic.make false in
    let fail_lock = Mutex.create () in
    let failure = ref None in
    let record_failure exn bt =
      with_lock fail_lock (fun () ->
          match !failure with
          | None -> failure := Some (exn, bt)
          | Some _ -> ());
      Atomic.set failed true
    in
    let worker w () =
      let rec steal i =
        if i >= jobs then None
        else
          match deque_steal deques.((w + i) mod jobs) with
          | Some _ as t -> t
          | None -> steal (i + 1)
      in
      let rec loop () =
        if not (Atomic.get failed) then
          match
            (match deque_pop deques.(w) with Some _ as t -> t | None -> steal 1)
          with
          | Some t ->
              (try exec_task t
               with exn -> record_failure exn (Printexc.get_raw_backtrace ()));
              loop ()
          | None -> ()
      in
      loop ()
    in
    let domains = List.init (jobs - 1) (fun i -> Domain.spawn (worker (i + 1))) in
    worker 0 ();
    List.iter Domain.join domains;
    match !failure with
    | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None -> ()
  end

let finish_pending pending =
  let c = pending.p_cell in
  let force = function Some r -> r | None -> assert false in
  match (c.Cell.population, pending.p_slots) with
  | Cell.Static, Static_slots slots ->
      Sample
        {
          setup = c.Cell.setup;
          protocol_name = engine_name c.Cell.engine;
          adversary_name = c.Cell.adversary.Specs.a_name;
          results = Array.map force slots;
        }
  | Cell.Churning { churn; _ }, Churn_slots slots ->
      Churned
        {
          c_setup = c.Cell.setup;
          c_protocol_name = engine_name c.Cell.engine;
          c_adversary_name = c.Cell.adversary.Specs.a_name;
          c_churn = Faults.Churn.descriptor churn;
          c_results = Array.map force slots;
        }
  | Cell.Static, Churn_slots _ | Cell.Churning _, Static_slots _ -> assert false

(* Decode defensively: a record that decodes but describes a different
   cell than requested (possible only through tampering or a hash
   collision) is a miss, not a wrong answer. *)
let lookup_cell st ~telemetry (c : Cell.t) =
  let key = Cell.key c in
  match c.Cell.population with
  | Cell.Static ->
      let decode json =
        match sample_of_json json with
        | Ok s
          when s.setup = c.Cell.setup
               && s.protocol_name = engine_name c.Cell.engine
               && s.adversary_name = c.Cell.adversary.Specs.a_name
               && Array.length s.results = c.Cell.reps
               && ((not c.Cell.energy)
                  || Array.for_all (fun r -> r.Metrics.energy <> None) s.results) ->
            Some (Sample s)
        | Ok _ | Error _ -> None
      in
      Store.find ?telemetry st key ~decode
  | Cell.Churning { churn; _ } ->
      let decode json =
        match churn_sample_of_json json with
        | Ok s
          when s.c_setup = c.Cell.setup
               && s.c_protocol_name = engine_name c.Cell.engine
               && s.c_adversary_name = c.Cell.adversary.Specs.a_name
               && s.c_churn = Faults.Churn.descriptor churn
               && Array.length s.c_results = c.Cell.reps ->
            Some (Churned s)
        | Ok _ | Error _ -> None
      in
      Store.find ?telemetry st key ~decode

let outcome_to_json = function
  | Sample s -> sample_to_json ~include_results:true s
  | Churned cs -> churn_sample_to_json ~include_results:true cs

let record_outcome tel = function
  | Sample s -> record_sample tel s.results
  | Churned cs -> record_churn_sample tel cs.c_results

let run_cells ?telemetry ?store pool cells =
  let jobs = Pool.jobs pool in
  let tel = match telemetry with Some t -> Some t | None -> !default_telemetry in
  let store = match store with Some _ as s -> s | None -> !default_store in
  List.iter Cell.validate_cell cells;
  (* Store lookups happen on the calling domain, in cell order, before
     any compute — the store (plain files + atomic renames) stays
     single-domain and lookup traffic is deterministic. *)
  let entries =
    List.map
      (fun c ->
        match store with
        | None -> Either.Right (make_pending c)
        | Some st -> (
            match lookup_cell st ~telemetry:tel c with
            | Some outcome -> Either.Left outcome
            | None -> Either.Right (make_pending c)))
      cells
  in
  let pendings = List.filter_map (function Either.Right p -> Some p | Either.Left _ -> None) entries in
  (* Compute every miss on the pool.  Tasks are dealt round-robin and
     then work-stolen; each replication writes a dedicated slot with a
     seed derived only from (cell, rep), so the outcome is bit-identical
     for every [jobs] — only the wall timer below varies. *)
  (match pendings with
  | [] -> ()
  | _ :: _ ->
      let tasks = List.concat_map (tasks_of_pending ~jobs) pendings in
      let wall =
        match tel with Some t -> Some (Telemetry.timer t "runner.wall") | None -> None
      in
      (match wall with Some w -> Telemetry.start w | None -> ());
      Fun.protect
        ~finally:(fun () -> match wall with Some w -> Telemetry.stop w | None -> ())
        (fun () -> run_tasks ~jobs tasks));
  (* Assemble in cell order: telemetry aggregation and store writes fold
     on the calling domain, so the aggregate is independent of [jobs]. *)
  List.map
    (fun entry ->
      let outcome =
        match entry with
        | Either.Left outcome -> outcome
        | Either.Right pending ->
            let outcome = finish_pending pending in
            (match store with
            | Some st ->
                Store.add ?telemetry:tel st (Cell.key pending.p_cell)
                  (outcome_to_json outcome)
            | None -> ());
            outcome
      in
      (match tel with Some t -> record_outcome t outcome | None -> ());
      outcome)
    entries

(* --- the replicate shims: one cell on a private pool --- *)

let replicate ?jobs ?base_seed ?telemetry ?store ?energy ~engine ~reps setup adversary =
  let cell = Cell.v ?base_seed ?energy ~engine ~reps setup adversary in
  match run_cells ?telemetry ?store (Pool.create ?jobs ()) [ cell ] with
  | [ Sample s ] -> s
  | _ -> assert false

let replicate_churn ?jobs ?base_seed ?telemetry ?store ~engine ~churn ?restart_after
    ~reps setup adversary =
  let cell = Cell.v ?base_seed ~churn ?restart_after ~engine ~reps setup adversary in
  match run_cells ?telemetry ?store (Pool.create ?jobs ()) [ cell ] with
  | [ Churned cs ] -> cs
  | _ -> assert false
