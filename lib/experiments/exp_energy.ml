let run scale out =
  let ppf = Output.ppf out in
  let ns, reps =
    match scale with
    | Registry.Quick -> ([ 64; 1024; 16384 ], 15)
    | Registry.Full -> ([ 64; 1024; 16384; 262144 ], 40)
  in
  let eps = 0.5 and window = 64 in
  let protocols = [ Specs.lesk ~eps; Specs.lesu (); Specs.arss; Specs.sawtooth ] in
  let table =
    Table.create
      ~title:
        "E12: expected transmissions per station until election (greedy adversary, T = 64)"
      ~columns:
        (("n", Table.Right)
        :: List.concat_map
             (fun p -> [ (p.Specs.p_name ^ " tx/stn", Table.Right) ])
             protocols)
  in
  List.iter
    (fun n ->
      let row =
        List.map
          (fun protocol ->
            let setup = { Runner.n; eps; window; max_slots = 500_000 } in
            let sample = Runner.replicate ~engine:(Runner.Uniform protocol) ~reps setup Specs.greedy in
            Table.fmt_float ~decimals:2 (Runner.mean_energy_per_station sample))
          protocols
      in
      Table.add_row table (Table.fmt_int n :: row))
    ns;
  Output.table out table;
  Format.fprintf ppf
    "Energy = expected number of transmissions per station (the fast engine accounts \
     Sum n*p / n).  The paper (end of 1.3) expects LESK's energy to be comparable to \
     the [3] baseline; both stay O(polylog) per station.@."

let experiment =
  {
    Registry.id = "E12";
    name = "energy";
    claim =
      "Section 1.3: the protocol's per-station energy (transmission count) is expected to \
       be of the same order as the leader election of [3].";
    run;
  }
