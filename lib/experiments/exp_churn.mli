(** A7 — leaderless downtime and re-election latency for chained LESK
    elections under rate-bounded churn and adaptive leader killing. *)

val experiment : Registry.t
