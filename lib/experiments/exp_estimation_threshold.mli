(** A4 — ablation of Estimation's Null threshold [L] (the paper fixes
    [L = 2] in Lemma 2.8): accuracy and cost trade-off. *)

val experiment : Registry.t
