(** E12 — §1.3's energy remark: expected transmissions per station of
    LESK vs the [3] baseline and the classics (the paper conjectures
    LESK's energy profile is comparable to [3]). *)

val experiment : Registry.t
