(** E10 — the "with high probability" claims: success rates of LESK,
    LESU (fast engine) and LEWK (exact engine, weak-CD) over many seeds
    within their theoretical time envelopes. *)

val experiment : Registry.t
