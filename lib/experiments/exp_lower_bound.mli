(** E4 — Lemma 2.7: every w.h.p. leader-election algorithm needs
    [Ω(max{T, (1/ε)·log n})] slots, demonstrated on the omniscient
    known-n protocol (the best possible per-slot success rate). *)

val experiment : Registry.t
