(** Replicated Monte-Carlo execution of (protocol × adversary × setup)
    cells — the workhorse behind every experiment and benchmark.

    Seeds are derived deterministically from the cell description and
    the replication index, so every table in EXPERIMENTS.md is exactly
    reproducible.

    One pair of entry points covers all three execution modes: {!run}
    and {!replicate} take an {!engine} spec saying {e how} to simulate
    the cell (fast uniform engine, exact per-station engine, or exact
    engine with fault injection + online monitor).  The historical
    trios ([run_once]/[run_exact_once]/[run_faulty_once] and
    [replicate_exact]/[replicate_faulty]) remain as thin deprecated
    wrappers. *)

type setup = {
  n : int;  (** network size *)
  eps : float;  (** adversary's ε (protocols may not know it) *)
  window : int;  (** adversary's T *)
  max_slots : int;  (** per-run cap *)
}

val pp_setup : Format.formatter -> setup -> unit

(** How to execute one cell. *)
type engine =
  | Uniform of Specs.protocol
      (** O(1)-per-slot {!Jamming_sim.Uniform_engine} — uniform
          protocols in strong-CD. *)
  | Exact of {
      name : string;  (** label used in sample/telemetry/seed tags *)
      cd : Jamming_channel.Channel.cd_model;
      factory : Jamming_station.Station.factory;
    }
      (** Exact per-station {!Jamming_sim.Engine} (weak-CD protocols,
          cross-engine validation). *)
  | Faulty of {
      name : string;
      cd : Jamming_channel.Channel.cd_model;
      factory : Jamming_station.Station.factory;
      faults : Jamming_faults.Config.t;
      monitor_checks : Jamming_sim.Monitor.checks option;
          (** [None] = everything when [faults] is null, engine-level
              safety only otherwise — injected faults genuinely break
              the paper's election guarantee, which is the thing being
              measured. *)
    }
      (** Exact engine with fault injection and the online invariant
          monitor.  Station plans and sensing noise are drawn from
          dedicated streams derived from the run seed, so the same seed
          with null faults reproduces the fault-free run exactly.
          Raises {!Jamming_sim.Monitor.Violation} on a broken
          invariant. *)

val engine_name : engine -> string

type sample = {
  setup : setup;
  protocol_name : string;
  adversary_name : string;
  results : Jamming_sim.Metrics.result array;
}

val run :
  ?observers:Jamming_sim.Observer.t list ->
  ?on_slot:(Jamming_sim.Metrics.slot_record -> unit) ->
  engine:engine ->
  setup ->
  Specs.adversary ->
  seed:int ->
  Jamming_sim.Metrics.result
(** One election.  [observers] (e.g. {!Jamming_sim.Trace.observer},
    {!Jamming_sim.Monitor.observer},
    {!Jamming_sim.Observer.telemetry}) are passed straight to the
    engine and never perturb the run.  [on_slot] is the deprecated
    single-callback form. *)

val replicate :
  ?jobs:int ->
  ?base_seed:int ->
  ?telemetry:Jamming_telemetry.Telemetry.t ->
  engine:engine ->
  reps:int ->
  setup ->
  Specs.adversary ->
  sample
(** [jobs] (default {!default_jobs}) runs the replications on that many
    OCaml 5 domains.  Each replication is fully independent (own seed,
    own protocol/adversary/budget state, disjoint result slot), so the
    outcome is bit-identical to the sequential run — only faster.

    [telemetry] (default: the sink installed with {!set_telemetry} /
    {!with_telemetry}, if any) receives, under the ["runner."] prefix,
    counters [runs]/[slots]/[jammed]/[null]/[single]/[collision]/
    [completed]/[elected], histogram [slots_per_run], and wall timer
    [wall].  Aggregation folds the finished result array in index order
    on the calling domain, so counters and histograms are identical
    whatever [jobs] is; only the timer varies run to run.

    When a process-default store is installed ({!set_store} /
    {!with_store}), [replicate] is {!replicate_cached} against it —
    experiment code picks up caching without changing. *)

val replicate_cached :
  ?jobs:int ->
  ?base_seed:int ->
  ?telemetry:Jamming_telemetry.Telemetry.t ->
  ?store:Jamming_store.Store.t ->
  engine:engine ->
  reps:int ->
  setup ->
  Specs.adversary ->
  sample
(** {!replicate} through the content-addressed run store (DESIGN.md
    §11).  The cell key covers the engine kind and name, CD model,
    adversary name, full setup, [reps], [base_seed], the fault
    configuration (for [Faulty] engines), the store schema version, and
    the code fingerprint.  On a hit the persisted sample is decoded —
    bit-identical to a fresh compute, results included (asserted by
    test) — and the usual [runner.*] telemetry is still aggregated; on
    a miss (including a corrupt or stale entry) the cell is computed
    and persisted atomically.  [store] defaults to the process-default
    store; with neither, this is exactly {!replicate}.  Lookup and
    persistence traffic lands in the telemetry sink under [store.hits]
    / [store.misses] / [store.bytes_read] / [store.bytes_written]. *)

val cell_key :
  engine:engine ->
  adversary:Specs.adversary ->
  reps:int ->
  base_seed:int ->
  setup ->
  Jamming_store.Key.t
(** The store key {!replicate_cached} uses for a cell. *)

val sample_of_json : Jamming_telemetry.Json.t -> (sample, string) result
(** Inverse of {!sample_to_json}[ ~include_results:true] on the fields
    that constitute the sample (setup, names, per-run results); the
    derived digest fields are recomputed on demand.  [Error] on any
    missing or ill-typed field — the store treats that as a miss. *)

(** {1 Churn cells: dynamic populations}

    The same cell grammar, run through the self-healing
    {!Jamming_sim.Dynamic} driver (DESIGN.md §12): the population starts
    at [setup.n], churns under the given policy, and re-elects whenever
    the leader dies or an attempt stalls.  Every engine kind runs on the
    exact engine under churn (the O(1) uniform path cannot represent a
    mid-run population change); a [Faulty] spec additionally applies its
    per-incarnation lifecycle faults and perception noise.  Per-rep
    seeds reuse the static cell's tag, so a null-churn cell replays the
    exact seeds — and hence results — of its static twin. *)

val run_churn :
  ?observers:Jamming_sim.Observer.t list ->
  engine:engine ->
  churn:Jamming_faults.Churn.t ->
  ?restart_after:int ->
  setup ->
  Specs.adversary ->
  seed:int ->
  Jamming_sim.Dynamic.result
(** One dynamic run.  With null churn and no [restart_after] this is
    exactly [run] wrapped by {!Jamming_sim.Dynamic.of_static} — no churn
    stream is even created, so the result is bit-identical to the
    static cell.  Otherwise the churn schedule, departure victims and
    per-incarnation fault plans are drawn from dedicated streams
    ([seed/churn/schedule], [seed/churn/victims], [seed/faults/plans])
    so adding churn never perturbs station or adversary randomness.
    A monitor spans the whole run ({!Jamming_sim.Monitor.all_checks}
    when the spec has no perception/lifecycle faults, safety checks
    otherwise); raises {!Jamming_sim.Monitor.Violation} on a broken
    invariant. *)

type churn_sample = {
  c_setup : setup;
  c_protocol_name : string;
  c_adversary_name : string;
  c_churn : string;  (** {!Jamming_faults.Churn.descriptor} *)
  c_results : Jamming_sim.Dynamic.result array;
}

val replicate_churn :
  ?jobs:int ->
  ?base_seed:int ->
  ?telemetry:Jamming_telemetry.Telemetry.t ->
  ?store:Jamming_store.Store.t ->
  engine:engine ->
  churn:Jamming_faults.Churn.t ->
  ?restart_after:int ->
  reps:int ->
  setup ->
  Specs.adversary ->
  churn_sample
(** Replicated churn cell, parallel and store-cached exactly like
    {!replicate_cached}: the cell key adds the churn descriptor and
    restart deadline to the static key fields (see {!churn_cell_key}),
    warm hits are bit-identical to cold computes, and telemetry lands
    under ["runner.churn."]. *)

val churn_cell_key :
  engine:engine ->
  adversary:Specs.adversary ->
  churn:Jamming_faults.Churn.t ->
  restart_after:int option ->
  reps:int ->
  base_seed:int ->
  setup ->
  Jamming_store.Key.t
(** The store key {!replicate_churn} uses for a cell. *)

val churn_sample_to_json :
  ?include_results:bool -> churn_sample -> Jamming_telemetry.Json.t

val churn_sample_of_json :
  Jamming_telemetry.Json.t -> (churn_sample, string) result

val mean_elections_completed : churn_sample -> float
val mean_leaderless_slots : churn_sample -> float
val max_leaderless_interval : churn_sample -> int

val healed_rate : churn_sample -> float
(** Fraction of runs ending with a live leader (or an empty
    population). *)

(** {1 Deprecated compatibility wrappers}

    Thin aliases for {!run}/{!replicate} with pre-observer signatures.
    New code should build an {!engine} value instead. *)

val run_once :
  ?on_slot:(Jamming_sim.Metrics.slot_record -> unit) ->
  setup -> Specs.protocol -> Specs.adversary -> seed:int -> Jamming_sim.Metrics.result
(** @deprecated Use [run ~engine:(Uniform protocol)]. *)

val run_exact_once :
  ?on_slot:(Jamming_sim.Metrics.slot_record -> unit) ->
  cd:Jamming_channel.Channel.cd_model ->
  setup ->
  factory:Jamming_station.Station.factory ->
  Specs.adversary ->
  seed:int ->
  Jamming_sim.Metrics.result
(** @deprecated Use [run ~engine:(Exact _)]. *)

val run_faulty_once :
  ?on_slot:(Jamming_sim.Metrics.slot_record -> unit) ->
  ?monitor_checks:Jamming_sim.Monitor.checks ->
  cd:Jamming_channel.Channel.cd_model ->
  setup ->
  factory:Jamming_station.Station.factory ->
  faults:Jamming_faults.Config.t ->
  Specs.adversary ->
  seed:int ->
  Jamming_sim.Metrics.result
(** @deprecated Use [run ~engine:(Faulty _)]. *)

val replicate_exact :
  ?jobs:int ->
  ?base_seed:int ->
  cd:Jamming_channel.Channel.cd_model ->
  reps:int ->
  setup ->
  name:string ->
  factory:Jamming_station.Station.factory ->
  Specs.adversary ->
  sample
(** @deprecated Use [replicate ~engine:(Exact _)]. *)

val replicate_faulty :
  ?jobs:int ->
  ?base_seed:int ->
  ?monitor_checks:Jamming_sim.Monitor.checks ->
  cd:Jamming_channel.Channel.cd_model ->
  reps:int ->
  setup ->
  name:string ->
  factory:Jamming_station.Station.factory ->
  faults:Jamming_faults.Config.t ->
  Specs.adversary ->
  sample
(** @deprecated Use [replicate ~engine:(Faulty _)]. *)

(** {1 Parallelism and telemetry defaults} *)

val recommended_jobs : unit -> int
(** All available domains ([Domain.recommended_domain_count ()], at
    least 1).  The [JAMMING_JOBS] environment variable, when set to a
    positive integer, overrides the detected count (and [--jobs] on the
    CLIs overrides both). *)

val default_jobs : int ref
(** The [jobs] value used when the argument is omitted (initially 1).
    The sweep CLI sets it from [--jobs]; experiment code can then stay
    oblivious to parallelism. *)

val set_telemetry : Jamming_telemetry.Telemetry.t option -> unit
(** Install (or clear) the process-default telemetry sink used by
    {!replicate} when [?telemetry] is omitted. *)

val with_telemetry : Jamming_telemetry.Telemetry.t -> (unit -> 'a) -> 'a
(** Run a thunk with the default sink set, restoring the previous sink
    after (exception-safe).  This is how bench and sweep meter a whole
    experiment without the experiment knowing. *)

val default_store : Jamming_store.Store.t option ref
(** The store {!replicate} consults when no explicit [?store] is given
    (initially [None] — no caching). *)

val set_store : Jamming_store.Store.t option -> unit
(** Install (or clear) the process-default run store — how the CLIs'
    [--cache] turns caching on for every cell of a sweep. *)

val with_store : Jamming_store.Store.t -> (unit -> 'a) -> 'a
(** Run a thunk with the default store set, restoring the previous
    value after (exception-safe). *)

(** {1 Sample digests} *)

val slots : sample -> float array
(** Slot counts of the {e completed} runs only. *)

val all_completed : sample -> bool
val success_rate : sample -> float
(** Fraction of runs with a correct election within the cap. *)

val median_slots : sample -> float
(** Median over all runs, counting capped runs at the cap (a lower
    bound when not all completed — pair with {!all_completed}). *)

val mean_energy_per_station : sample -> float
val median_jammed_fraction : sample -> float

val sample_to_json : ?include_results:bool -> sample -> Jamming_telemetry.Json.t
(** Machine-readable digest: protocol, adversary, setup, reps, total
    slots, and the headline statistics; [~include_results:true] appends
    every {!Jamming_sim.Metrics.result_to_json}.  Schema in DESIGN.md
    §9. *)
