(** Replicated Monte-Carlo execution of (protocol × adversary × setup)
    cells — the workhorse behind every experiment and benchmark.

    The unit of scheduling, seeding, and caching is the {!Cell}: one
    record packaging the engine spec, setup, adversary, population
    dynamics, replication count and base seed.  {!run_cells} executes a
    batch of cells on a work-stealing domain {!Pool}, consulting the
    content-addressed run store underneath when one is installed;
    {!replicate} and {!replicate_churn} are thin one-cell shims over it.

    Seeds are derived deterministically from the cell description and
    the replication index ({!Cell.seed}), so every table in
    EXPERIMENTS.md is exactly reproducible and the outcome of a batch is
    bit-identical for every [jobs] value — only wall timers vary. *)

type setup = {
  n : int;  (** network size *)
  eps : float;  (** adversary's ε (protocols may not know it) *)
  window : int;  (** adversary's T *)
  max_slots : int;  (** per-run cap *)
}

val pp_setup : Format.formatter -> setup -> unit

(** How to execute one cell. *)
type engine =
  | Uniform of Specs.protocol
      (** O(1)-per-slot {!Jamming_sim.Uniform_engine} — uniform
          protocols in strong-CD. *)
  | Exact of {
      name : string;  (** label used in sample/telemetry/seed tags *)
      cd : Jamming_channel.Channel.cd_model;
      factory : Jamming_station.Station.factory;
    }
      (** Exact per-station {!Jamming_sim.Engine} (weak-CD protocols,
          cross-engine validation). *)
  | Faulty of {
      name : string;
      cd : Jamming_channel.Channel.cd_model;
      factory : Jamming_station.Station.factory;
      faults : Jamming_faults.Config.t;
      monitor_checks : Jamming_sim.Monitor.checks option;
          (** [None] = everything when [faults] is null, engine-level
              safety only otherwise — injected faults genuinely break
              the paper's election guarantee, which is the thing being
              measured. *)
    }
      (** Exact engine with fault injection and the online invariant
          monitor.  Station plans and sensing noise are drawn from
          dedicated streams derived from the run seed, so the same seed
          with null faults reproduces the fault-free run exactly.
          Raises {!Jamming_sim.Monitor.Violation} on a broken
          invariant. *)
  | Aggregate of {
      name : string;
      cd : Jamming_channel.Channel.cd_model;
      proto : Jamming_sim.Aggregate.packed;
    }
      (** Population-counting {!Jamming_sim.Aggregate} engine:
          O(#classes) per slot independent of n, for uniform-phase
          protocols at n = 10⁷–10⁹.  Distributionally equivalent to
          [Exact] but with per-class binomial draws instead of
          per-station streams, so agreement is KS-tested, not bitwise.
          Does not support churn. *)
  | Pooled of {
      name : string;
      cd : Jamming_channel.Channel.cd_model;
      pool : Jamming_station.Station.pool_factory;
    }
      (** Flat struct-of-arrays {!Jamming_sim.Engine.run_pool} over a
          {!Jamming_station.Station.pool} (DESIGN.md §15) — the fast
          path for weak-CD notification protocols.  Bit-identical to
          the [Exact] closure engine per seed (asserted in tests and in
          E7's oracle check), so it deliberately shares the [Exact]
          seed tags and cache keys: a pooled cell {e is} the exact
          cell, faster.  Does not support churn. *)

val engine_name : engine -> string

val aggregate_of :
  ?cd:Jamming_channel.Channel.cd_model -> Jamming_sim.Aggregate.packed -> engine
(** Wrap a pure protocol description as an [Aggregate] engine spec
    named after the protocol ([cd] defaults to [Strong_cd]). *)

val aggregate_lesk : ?a:float -> eps:float -> unit -> engine
(** {!Jamming_core.Lesk.aggregate} as an engine spec. *)

val aggregate_lesu : ?config:Jamming_core.Lesu.config -> unit -> engine
(** {!Jamming_core.Lesu.aggregate} as an engine spec. *)

val pooled_lewk : ?eps:float -> unit -> engine
(** {!Jamming_core.Lewk.pool} as a [Pooled] engine spec named ["LEWK"]
    ([eps] defaults to 0.5), so it shares seeds, published tables and
    cache entries with the Exact LEWK spec of the same [eps]. *)

val pooled_lewu : ?config:Jamming_core.Lesu.config -> unit -> engine
(** {!Jamming_core.Lewu.pool} as a [Pooled] engine spec. *)

val exact_lmr : n:int -> engine
(** {!Jamming_core.Lmr.station} as an [Exact] strong-CD spec named
    ["LMR"].  LMR stations need the population size up front, so [n]
    must equal the [setup.n] the cell runs with. *)

val pooled_lmr : unit -> engine
(** {!Jamming_core.Lmr.pool} as a [Pooled] spec sharing the ["LMR"]
    name — and hence seed tags and cache keys — with {!exact_lmr},
    which is sound because the pool is bit-identical to the closure
    stations per seed ([test_lmr.ml]). *)

type sample = {
  setup : setup;
  protocol_name : string;
  adversary_name : string;
  results : Jamming_sim.Metrics.result array;
}

type churn_sample = {
  c_setup : setup;
  c_protocol_name : string;
  c_adversary_name : string;
  c_churn : string;  (** {!Jamming_faults.Churn.descriptor} *)
  c_results : Jamming_sim.Dynamic.result array;
}

(** {1 Cells}

    A cell is the unit of scheduling, seeding and caching: everything
    needed to replicate one (engine × setup × adversary × population)
    point of a sweep, [reps] times, under a deterministic seed
    stream. *)

module Cell : sig
  type population =
    | Static  (** fixed population of [setup.n] stations *)
    | Churning of { churn : Jamming_faults.Churn.t; restart_after : int option }
        (** dynamic population under the self-healing
            {!Jamming_sim.Dynamic} driver (DESIGN.md §12) *)

  type t = {
    engine : engine;
    setup : setup;
    adversary : Specs.adversary;
    population : population;
    reps : int;
    base_seed : int;
    energy : bool;  (** meter every run (DESIGN.md §16) *)
  }

  val v :
    ?base_seed:int ->
    ?churn:Jamming_faults.Churn.t ->
    ?restart_after:int ->
    ?energy:bool ->
    engine:engine ->
    reps:int ->
    setup ->
    Specs.adversary ->
    t
  (** Smart constructor; validates eagerly (see {!validate}).
      [base_seed] defaults to [!]{!default_base_seed}.  Passing [churn]
      and/or [restart_after] makes the population [Churning]; omitting
      both makes it [Static].  (A cell built with [~churn:Churn.none]
      and no restart deadline runs through the dynamic driver's
      null-churn path, which is bit-identical to the static cell —
      but it caches under the churn key and yields a {!churn_sample}.)

      [energy] (default [!]{!default_energy} for static cells, [false]
      for churning ones) attaches a per-run
      {!Jamming_sim.Metrics.result.energy} block.  Metering never
      touches a random stream — the run is otherwise bit-identical and
      the seed {!tag} is unchanged — but metered cells cache under a
      distinct {!key} (their records carry the extra block).  Energy
      and churn are mutually exclusive. *)

  val validate : t -> unit
  (** Raises [Invalid_argument] on a nonsensical cell ([reps] or
      [restart_after] < 1, ill-formed setup or churn policy, energy
      combined with churn). *)

  val tag : t -> string
  (** The seed-stream tag — a function of engine, adversary and setup
      only, shared by a churn cell and its static twin, and kept
      byte-identical to the historical derivation so every published
      table remains reproducible. *)

  val seed : t -> rep:int -> int
  (** Seed of the [rep]-th replication:
      {!Jamming_prng.Prng.seed_stream}[ ~base:c.base_seed ~tag:(tag c) rep].
      Depends only on the cell description and index — never on [jobs],
      scheduling, or which process computes the rep. *)

  val key : t -> Jamming_store.Key.t
  (** The content-address under which {!run_cells} caches this cell
      (static cells via {!cell_key}, churning ones via
      {!churn_cell_key}). *)

  val pp : Format.formatter -> t -> unit
end

type outcome = Sample of sample | Churned of churn_sample
(** What a cell produces: [Static] populations yield [Sample],
    [Churning] ones yield [Churned], positionally matching the input
    cell list of {!run_cells}. *)

(** {1 The work-stealing domain pool} *)

module Pool : sig
  type t

  val create : ?jobs:int -> unit -> t
  (** [jobs] (default [!]{!default_jobs}) is the number of OCaml 5
      domains a {!run_cells} batch runs on, the caller included.
      Domains are spawned per batch, so an idle pool holds no
      resources. *)

  val jobs : t -> int
end

val run_cells :
  ?telemetry:Jamming_telemetry.Telemetry.t ->
  ?store:Jamming_store.Store.t ->
  Pool.t ->
  Cell.t list ->
  outcome list
(** Execute a batch of cells, returning outcomes in input order.

    {b Caching.}  With a store ([?store], else the process default
    installed via {!set_store} / {!with_store}), every cell is looked
    up by {!Cell.key} first — in cell order, on the calling domain —
    and hits skip compute entirely; misses are computed and persisted
    atomically.  Sharded sweeps exploit this: many processes compute
    disjoint (or even overlapping) cell sets against one cache
    directory, and a final resumed run assembles the full report from
    hits alone.

    {b Scheduling.}  Missed cells become tasks on a work-stealing
    deque per domain: tasks are dealt round-robin, owners pop their own
    bottom, idle domains steal from others' tops.  A cell whose [reps]
    exceed the fair share is pre-split into replicate slices so one
    giant cell cannot serialise the tail of a batch.

    {b Determinism.}  Each replication derives its seed from
    {!Cell.seed} alone and writes a dedicated result slot, so results
    are bit-identical for every [jobs] value.  Telemetry ([?telemetry],
    else the {!set_telemetry} default) is aggregated on the calling
    domain in cell order after the join — counters and histograms under
    [runner.] / [runner.churn.] / [store.] are [jobs]-independent;
    only the [runner.wall] timer varies.

    The first exception raised by a replication (e.g.
    {!Jamming_sim.Monitor.Violation}) drains the pool and is re-raised
    with its backtrace. *)

val replicate :
  ?jobs:int ->
  ?base_seed:int ->
  ?telemetry:Jamming_telemetry.Telemetry.t ->
  ?store:Jamming_store.Store.t ->
  ?energy:bool ->
  engine:engine ->
  reps:int ->
  setup ->
  Specs.adversary ->
  sample
(** One static cell on a private pool:
    [run_cells (Pool.create ?jobs ()) [Cell.v ...]].  See {!run_cells}
    for the caching, scheduling and determinism story. *)

val replicate_churn :
  ?jobs:int ->
  ?base_seed:int ->
  ?telemetry:Jamming_telemetry.Telemetry.t ->
  ?store:Jamming_store.Store.t ->
  engine:engine ->
  churn:Jamming_faults.Churn.t ->
  ?restart_after:int ->
  reps:int ->
  setup ->
  Specs.adversary ->
  churn_sample
(** One churning cell on a private pool.  Per-rep seeds reuse the
    static cell's tag, so a null-churn cell replays the exact seeds —
    and hence results — of its static twin. *)

(** {1 Single runs} *)

val run :
  ?observers:Jamming_sim.Observer.t list ->
  ?energy:bool ->
  engine:engine ->
  setup ->
  Specs.adversary ->
  seed:int ->
  Jamming_sim.Metrics.result
(** One election.  [observers] (e.g. {!Jamming_sim.Trace.observer},
    {!Jamming_sim.Monitor.observer},
    {!Jamming_sim.Observer.telemetry}) are passed straight to the
    engine and never perturb the run.  Wrap a bare per-slot callback
    with {!Jamming_sim.Observer.of_on_slot}.

    [energy] attaches the {!Jamming_sim.Metrics.result.energy} block:
    a meter on the exact/faulty/pooled engines, the synthesized O(1)
    summaries on the uniform and aggregate engines.  Never perturbs
    the run. *)

val run_churn :
  ?observers:Jamming_sim.Observer.t list ->
  engine:engine ->
  churn:Jamming_faults.Churn.t ->
  ?restart_after:int ->
  setup ->
  Specs.adversary ->
  seed:int ->
  Jamming_sim.Dynamic.result
(** One dynamic run.  With null churn and no [restart_after] this is
    exactly [run] wrapped by {!Jamming_sim.Dynamic.of_static} — no churn
    stream is even created, so the result is bit-identical to the
    static cell.  Otherwise the churn schedule, departure victims and
    per-incarnation fault plans are drawn from dedicated streams
    ([seed/churn/schedule], [seed/churn/victims], [seed/faults/plans])
    so adding churn never perturbs station or adversary randomness.
    A monitor spans the whole run ({!Jamming_sim.Monitor.all_checks}
    when the spec has no perception/lifecycle faults, safety checks
    otherwise); raises {!Jamming_sim.Monitor.Violation} on a broken
    invariant. *)

(** {1 Store keys and JSON codecs} *)

val cell_key :
  ?energy:bool ->
  engine:engine ->
  adversary:Specs.adversary ->
  reps:int ->
  base_seed:int ->
  setup ->
  Jamming_store.Key.t
(** The store key of a static cell ({!Cell.key} on a [Static]
    population).  Covers the engine kind and name, CD model, adversary
    name, full setup, [reps], [base_seed], the fault configuration (for
    [Faulty] engines), the store schema version, and the code
    fingerprint.  [energy] (default false) appends an extra component
    only when true, so pre-energy keys are byte-stable. *)

val churn_cell_key :
  engine:engine ->
  adversary:Specs.adversary ->
  churn:Jamming_faults.Churn.t ->
  restart_after:int option ->
  reps:int ->
  base_seed:int ->
  setup ->
  Jamming_store.Key.t
(** The store key of a churning cell: the static key fields plus the
    churn descriptor and restart deadline. *)

val sample_to_json : ?include_results:bool -> sample -> Jamming_telemetry.Json.t
(** Machine-readable digest: protocol, adversary, setup, reps, total
    slots, and the headline statistics; [~include_results:true] appends
    every {!Jamming_sim.Metrics.result_to_json}.  Schema in DESIGN.md
    §9. *)

val sample_of_json : Jamming_telemetry.Json.t -> (sample, string) result
(** Inverse of {!sample_to_json}[ ~include_results:true] on the fields
    that constitute the sample (setup, names, per-run results); the
    derived digest fields are recomputed on demand.  [Error] on any
    missing or ill-typed field — the store treats that as a miss. *)

val churn_sample_to_json :
  ?include_results:bool -> churn_sample -> Jamming_telemetry.Json.t

val churn_sample_of_json :
  Jamming_telemetry.Json.t -> (churn_sample, string) result

(** {1 Churn-sample digests} *)

val mean_elections_completed : churn_sample -> float
val mean_leaderless_slots : churn_sample -> float
val max_leaderless_interval : churn_sample -> int

val healed_rate : churn_sample -> float
(** Fraction of runs ending with a live leader (or an empty
    population). *)

(** {1 Process defaults: parallelism, seeding, telemetry, store} *)

val recommended_jobs : unit -> int
(** All available domains ([Domain.recommended_domain_count ()], at
    least 1).  The [JAMMING_JOBS] environment variable, when set to a
    positive integer, overrides the detected count (and [--jobs] on the
    CLIs overrides both). *)

val default_jobs : int ref
(** The [jobs] value used when the argument is omitted (initially 1).
    The CLIs set it from [--jobs]; experiment code can then stay
    oblivious to parallelism. *)

val default_base_seed : int ref
(** The [base_seed] {!Cell.v} uses when the argument is omitted
    (initially 42 — the seed of every published table).  The CLIs'
    [--seed] rebinds it. *)

val default_energy : bool ref
(** The [energy] value {!Cell.v} gives {e static} cells when the
    argument is omitted (initially false).  The CLIs' [--energy] flips
    it so a whole sweep is metered without threading an argument
    through every experiment; churning cells ignore the default, since
    they cannot be metered. *)

val set_telemetry : Jamming_telemetry.Telemetry.t option -> unit
(** Install (or clear) the process-default telemetry sink used by
    {!run_cells} when [?telemetry] is omitted. *)

val with_telemetry : Jamming_telemetry.Telemetry.t -> (unit -> 'a) -> 'a
(** Run a thunk with the default sink set, restoring the previous sink
    after (exception-safe).  This is how bench and sweep meter a whole
    experiment without the experiment knowing. *)

val default_store : Jamming_store.Store.t option ref
(** The store {!run_cells} consults when no explicit [?store] is given
    (initially [None] — no caching). *)

val set_store : Jamming_store.Store.t option -> unit
(** Install (or clear) the process-default run store — how the CLIs'
    [--cache] turns caching on for every cell of a sweep. *)

val with_store : Jamming_store.Store.t -> (unit -> 'a) -> 'a
(** Run a thunk with the default store set, restoring the previous
    value after (exception-safe). *)

(** {1 Sample digests} *)

val slots : sample -> float array
(** Slot counts of the {e completed} runs only. *)

val all_completed : sample -> bool
val success_rate : sample -> float
(** Fraction of runs with a correct election within the cap. *)

val median_slots : sample -> float
(** Median over all runs, counting capped runs at the cap (a lower
    bound when not all completed — pair with {!all_completed}). *)

val mean_energy_per_station : sample -> float
val median_jammed_fraction : sample -> float

val median_awake_slots : sample -> float
(** Median over runs of the per-run {e median awake slots} — the A9
    growth metric (≈ c·log log n for LMR, ≈ election time for the
    always-on paper protocols).  Only metered runs contribute; [nan]
    when the sample has none (the digest JSON then omits the
    ["median_awake"] member, keeping unmetered digests byte-stable). *)
