(** Replicated Monte-Carlo execution of (protocol × adversary × setup)
    cells — the workhorse behind every experiment and benchmark.

    Seeds are derived deterministically from the cell description and
    the replication index, so every table in EXPERIMENTS.md is exactly
    reproducible. *)

type setup = {
  n : int;  (** network size *)
  eps : float;  (** adversary's ε (protocols may not know it) *)
  window : int;  (** adversary's T *)
  max_slots : int;  (** per-run cap *)
}

val pp_setup : Format.formatter -> setup -> unit

val run_once :
  ?on_slot:(Jamming_sim.Metrics.slot_record -> unit) ->
  setup -> Specs.protocol -> Specs.adversary -> seed:int -> Jamming_sim.Metrics.result
(** One election on the fast (uniform) engine. *)

val run_exact_once :
  ?on_slot:(Jamming_sim.Metrics.slot_record -> unit) ->
  cd:Jamming_channel.Channel.cd_model ->
  setup ->
  factory:Jamming_station.Station.factory ->
  Specs.adversary ->
  seed:int ->
  Jamming_sim.Metrics.result
(** One election on the exact engine (weak-CD protocols, cross-engine
    validation). *)

val run_faulty_once :
  ?on_slot:(Jamming_sim.Metrics.slot_record -> unit) ->
  ?monitor_checks:Jamming_sim.Monitor.checks ->
  cd:Jamming_channel.Channel.cd_model ->
  setup ->
  factory:Jamming_station.Station.factory ->
  faults:Jamming_faults.Config.t ->
  Specs.adversary ->
  seed:int ->
  Jamming_sim.Metrics.result
(** One election on the exact engine with fault injection and the online
    invariant monitor.  Station plans and sensing noise are drawn from
    dedicated streams derived from [seed], so the same seed without
    faults reproduces the seed engine's run exactly.  Default monitor
    checks: everything when [faults] is null, engine-level safety only
    (no at-most-one-leader) otherwise — injected faults genuinely break
    the paper's election guarantee, which is the thing being measured.
    Raises {!Jamming_sim.Monitor.Violation} on a broken invariant. *)

type sample = {
  setup : setup;
  protocol_name : string;
  adversary_name : string;
  results : Jamming_sim.Metrics.result array;
}

val replicate :
  ?jobs:int ->
  ?base_seed:int ->
  reps:int ->
  setup ->
  Specs.protocol ->
  Specs.adversary ->
  sample
(** [jobs] (default 1) runs the replications on that many OCaml 5
    domains.  Each replication is fully independent (own seed, own
    protocol/adversary/budget state, disjoint result slot), so the
    outcome is bit-identical to the sequential run — only faster.  Use
    [recommended_jobs ()] for a sensible default on big sweeps. *)

val replicate_exact :
  ?jobs:int ->
  ?base_seed:int ->
  cd:Jamming_channel.Channel.cd_model ->
  reps:int ->
  setup ->
  name:string ->
  factory:Jamming_station.Station.factory ->
  Specs.adversary ->
  sample

val replicate_faulty :
  ?jobs:int ->
  ?base_seed:int ->
  ?monitor_checks:Jamming_sim.Monitor.checks ->
  cd:Jamming_channel.Channel.cd_model ->
  reps:int ->
  setup ->
  name:string ->
  factory:Jamming_station.Station.factory ->
  faults:Jamming_faults.Config.t ->
  Specs.adversary ->
  sample
(** Replicated {!run_faulty_once} — the workhorse of the
    fault-tolerance experiment. *)

val recommended_jobs : unit -> int
(** [min (domain count) 8], at least 1. *)

val default_jobs : int ref
(** The [jobs] value used when the argument is omitted (initially 1).
    The sweep CLI sets it from [--jobs]; experiment code can then stay
    oblivious to parallelism. *)

(** {1 Sample digests} *)

val slots : sample -> float array
(** Slot counts of the {e completed} runs only. *)

val all_completed : sample -> bool
val success_rate : sample -> float
(** Fraction of runs with a correct election within the cap. *)

val median_slots : sample -> float
(** Median over all runs, counting capped runs at the cap (a lower
    bound when not all completed — pair with {!all_completed}). *)

val mean_energy_per_station : sample -> float
val median_jammed_fraction : sample -> float
