module Core = Jamming_core
module Prng = Jamming_prng.Prng
module Budget = Jamming_adversary.Budget
module D = Jamming_stats.Descriptive

let run scale out =
  let ppf = Output.ppf out in
  let reps = match scale with Registry.Quick -> 30 | Registry.Full -> 120 in
  let n = 64 and eps = 0.5 and window = 32 in
  let table =
    Table.create
      ~title:
        "E16: LESK under per-station transmission caps (n = 64, eps = 0.5, greedy, exact \
         engine)"
      ~columns:
        [
          ("cap", Table.Right);
          ("success", Table.Right);
          ("med slots", Table.Right);
          ("exhausted/stn", Table.Right);
        ]
  in
  List.iter
    (fun cap ->
      let ok = ref 0 and slots = ref [] and exhausted = ref 0 in
      for rep = 1 to reps do
        let seed = Prng.seed_of_string (Printf.sprintf "E16/%d/%d" cap rep) in
        let rng = Prng.create ~seed in
        let budget = Budget.create ~window ~eps in
        let o =
          Core.Energy_cap.run_lesk ~cap ~n ~eps ~rng
            ~adversary:(Jamming_adversary.Adversary.greedy ())
            ~budget ~max_slots:20_000 ()
        in
        if Jamming_sim.Metrics.election_ok o.Core.Energy_cap.result then begin
          incr ok;
          slots := float_of_int o.Core.Energy_cap.result.Jamming_sim.Metrics.slots :: !slots
        end;
        exhausted := !exhausted + o.Core.Energy_cap.exhausted
      done;
      Table.add_row table
        [
          Table.fmt_int cap;
          Table.fmt_pct (float_of_int !ok /. float_of_int reps);
          (if !slots = [] then "-" else Table.fmt_float (D.median (Array.of_list !slots)));
          Table.fmt_float ~decimals:1
            (float_of_int !exhausted /. float_of_int (reps * n));
        ])
    [ 4; 8; 16; 24; 32; 48; 64; 1_000_000 ];
  Output.table out table;
  Format.fprintf ppf
    "LESK's energy is front-loaded: the u-climb costs every station ~a = 8/eps \
     transmissions per unit of u, so caps above that ramp budget (~24 here) are \
     immaterial and caps well below it usually silence everyone mid-climb.  The \
     in-between regime is interesting: stations exhaust at staggered random times, and \
     a brief 'last stations standing' window can produce a very fast Single (cap 8: \
     37%% success at median 18 slots) — fast but unreliable, the opposite trade to the \
     paper's guarantee.  This quantifies the §1.3 remark that LESK optimizes time, not \
     energy; the authors' reference [13] studies the energy-first trade.@."

let experiment =
  {
    Registry.id = "E16";
    name = "energy-cap";
    claim =
      "Section 1.3 (energy): LESK needs a per-station energy budget of about the u-ramp \
       cost (~ a*log2(n)/n + a ~ tens of transmissions); below that threshold elections \
       collapse, above it the cap is immaterial.";
    run;
  }
