(** E17 — energy under jamming: per-station awake slots for LMR vs LESK
    across the E9 adversary zoo. *)

val experiment : Registry.t
