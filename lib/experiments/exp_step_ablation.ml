module D = Jamming_stats.Descriptive

let run scale out =
  let ppf = Output.ppf out in
  let reps = match scale with Registry.Quick -> 20 | Registry.Full -> 60 in
  let n = 1024 and eps = 0.4 and window = 64 in
  let setup = { Runner.n; eps; window; max_slots = 200_000 } in
  let variants =
    [
      ("symmetric (a=1)", 1.0);
      ("a = 2/eps", 2.0 /. eps);
      ("a = 8/eps (paper)", 8.0 /. eps);
      ("a = 32/eps", 32.0 /. eps);
      ("a = 128/eps", 128.0 /. eps);
    ]
  in
  let table =
    Table.create
      ~title:"A2: LESK collision-step ablation (n = 1024, eps = 0.4, greedy adversary, cap 200k)"
      ~columns:
        [
          ("variant", Table.Left);
          ("median", Table.Right);
          ("p95", Table.Right);
          ("success", Table.Right);
        ]
  in
  List.iter
    (fun (label, a) ->
      let sample = Runner.replicate ~engine:(Runner.Uniform (Specs.lesk_with_a ~eps ~a)) ~reps setup Specs.greedy in
      let m = Runner.median_slots sample in
      let xs = Array.map (fun r -> float_of_int r.Jamming_sim.Metrics.slots) sample.Runner.results in
      Table.add_row table
        [
          label;
          Table.fmt_slots ~capped:(not (Runner.all_completed sample)) m;
          Table.fmt_float (D.quantile xs ~q:0.95);
          Table.fmt_pct (Runner.success_rate sample);
        ])
    variants;
  Output.table out table;
  Format.fprintf ppf
    "With a = 1 every jammed slot pushes u up a full unit: since the jammer owns more \
     than half the slots at eps = 0.4, u diverges and election stalls — exactly the \
     attack §2.1 describes.  Larger a slows recovery from low estimates; the paper's \
     8/eps balances both.@."

let experiment =
  {
    Registry.id = "A2";
    name = "lesk-step-ablation";
    claim =
      "Design choice (§2.1): a Null must outweigh ~8/eps Collisions, or a sub-1/2 eps \
       adversary forces the estimate u to diverge; symmetric updates fail.";
    run;
  }
