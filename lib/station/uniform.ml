type outcome = Continue | Elected

type t = {
  name : string;
  tx_prob : unit -> float;
  on_state : Jamming_channel.Channel.state -> outcome;
}

type factory = unit -> t

let distributed factory ~id ~rng =
  let logic = factory () in
  let status = ref Station.Undecided in
  let finished = ref false in
  let decide ~slot:_ =
    let p = logic.tx_prob () in
    if Jamming_prng.Prng.bool rng ~p then Station.Transmit else Station.Listen
  in
  let observe ~slot:_ ~perceived ~transmitted =
    match logic.on_state perceived with
    | Continue -> ()
    | Elected ->
        status := (if transmitted then Station.Leader else Station.Non_leader);
        finished := true
  in
  {
    Station.id;
    decide;
    observe;
    status = (fun () -> !status);
    finished = (fun () -> !finished);
  }

let to_station shared =
  (* One logic instance shared by all stations of the run; the first
     station to observe a slot advances it, the others just read the
     cached outcome.  Valid in strong-CD, where all stations perceive the
     same state. *)
  let advanced_slot = ref (-1) in
  let last_outcome = ref Continue in
  fun ~id ~rng ->
    let status = ref Station.Undecided in
    let finished = ref false in
    let decide ~slot:_ =
      let p = shared.tx_prob () in
      if Jamming_prng.Prng.bool rng ~p then Station.Transmit else Station.Listen
    in
    let observe ~slot ~perceived ~transmitted =
      if slot > !advanced_slot then begin
        advanced_slot := slot;
        last_outcome := shared.on_state perceived
      end;
      match !last_outcome with
      | Continue -> ()
      | Elected ->
          status := (if transmitted then Station.Leader else Station.Non_leader);
          finished := true
    in
    {
      Station.id;
      decide;
      observe;
      status = (fun () -> !status);
      finished = (fun () -> !finished);
    }
