(** Station-side protocol interface for the exact engine.

    A station is a closure bundle over private mutable state.  Each slot
    the engine asks for the station's {!action}, resolves the channel,
    and feeds back the {e perceived} state (which already accounts for
    the collision-detection model and for whether this station
    transmitted, see {!Jamming_channel.Channel.perceive}). *)

type action =
  | Transmit
  | Listen
  | Sleep of int
      (** [Sleep until] powers the radio down for the slots
          [[slot, until)]: the station neither transmits nor listens at
          the current slot, is skipped by the engine — no [decide], no
          [observe], no draw from any stream — until the absolute slot
          [until], and is woken with a [decide] call at [until].
          Requires [until > slot]; the engine rejects sleeps into the
          past.  See DESIGN.md §16. *)

val equal_action : action -> action -> bool
val pp_action : Format.formatter -> action -> unit

type status =
  | Undecided
  | Leader
  | Non_leader

val equal_status : status -> status -> bool
val pp_status : Format.formatter -> status -> unit
val status_to_string : status -> string

type t = {
  id : int;
  decide : slot:int -> action;
      (** Action for slot [slot].  Must not be called after [finished ()]
          is [true]; terminated stations leave the channel. *)
  observe : slot:int -> perceived:Jamming_channel.Channel.state -> transmitted:bool -> unit;
      (** Feedback for slot [slot], as perceived by this station. *)
  status : unit -> status;
  finished : unit -> bool;
      (** Whether the station has terminated its protocol (it may know
          its status before terminating, e.g. Notification blockers keep
          transmitting after learning they are non-leaders). *)
}

type factory = id:int -> rng:Jamming_prng.Prng.t -> t
(** Builds station [id]'s instance with a private random stream. *)

val map_factory : (t -> t) -> factory -> factory
(** [map_factory f factory] post-processes every built station with [f] —
    the hook fault-injection wrappers use to decorate stations without
    touching protocol code.  [f] receives the fully-built station (its
    [id] field identifies it). *)

(** {1 Vectorized station pools}

    A [pool] is a whole population behind one record: protocol state
    lives in flat arrays inside the implementation (struct-of-arrays)
    instead of one closure bundle per station, so the engine's per-slot
    work is two batch calls instead of [2n] closure invocations.

    Two calling conventions share the state:

    {ul
    {- The {e batch} path — [pool_begin_slot], [pool_decide_all],
       [pool_observe_all] — is for fault-free runs.  The pool keeps its
       own dense active set; finished stations cost nothing.
       [pool_decide_all] fills [actions] and increments [tx_counts] for
       every live station and returns the number of transmitters.
       [pool_observe_all] takes the two possible perceived states of
       the slot precomputed once ([tx] for stations that transmitted,
       [rx] for listeners) — valid because perception without injected
       noise is a pure function of (resolved state, transmitted).}
    {- The {e per-station} path — [pool_decide]/[pool_observe] indexed
       by station id, after [pool_begin_slot] — is for engines that
       must interleave fault gating or per-station perception noise.
       The two paths must not be mixed within one run: the batch path's
       internal active set does not track stations the per-station path
       advances.}}

    [pool_leaders] and [pool_all_finished] are O(1) (maintained
    incrementally), so observer leader counts and termination checks
    never rescan the population. *)

type pool = {
  pool_size : int;
  pool_begin_slot : slot:int -> unit;
      (** Classify [slot] once for the whole population.  Must be
          called before any decide/observe for that slot, on both
          paths. *)
  pool_decide_all : slot:int -> actions:action array -> tx_counts:int array -> int;
  pool_observe_all :
    slot:int ->
    actions:action array ->
    tx:Jamming_channel.Channel.state ->
    rx:Jamming_channel.Channel.state ->
    unit;
  pool_decide : slot:int -> int -> action;
  pool_observe :
    slot:int -> perceived:Jamming_channel.Channel.state -> transmitted:bool -> int -> unit;
  pool_status : int -> status;
  pool_finished : int -> bool;
  pool_all_finished : unit -> bool;
  pool_leaders : unit -> int;
  pool_awake : (until:int -> int -> int) option;
      (** [pool_awake ~until i] is the number of slots station [i] was
          awake (decided [Transmit] or [Listen]) over absolute slots
          [[first, until)], where [first] is the first slot the pool
          saw.  Pools manage sleep internally on the batch path — the
          engine never sees a [Sleep] action there — so energy metering
          of a batch run reads awake counts from the pool.  [None]
          means the pool does not track them and the run cannot be
          metered on the batch path. *)
}

type pool_factory = n:int -> rng:Jamming_prng.Prng.t -> pool
(** Builds a pool of [n] stations.  Implementations must split one
    private stream per station from [rng] in ascending id order, so a
    pool is stream-compatible with [Array.init n (fun id -> factory
    ~id ~rng:(Prng.split rng))] over the same [rng]. *)
