(** Station-side protocol interface for the exact engine.

    A station is a closure bundle over private mutable state.  Each slot
    the engine asks for the station's {!action}, resolves the channel,
    and feeds back the {e perceived} state (which already accounts for
    the collision-detection model and for whether this station
    transmitted, see {!Jamming_channel.Channel.perceive}). *)

type action = Transmit | Listen

val equal_action : action -> action -> bool
val pp_action : Format.formatter -> action -> unit

type status =
  | Undecided
  | Leader
  | Non_leader

val equal_status : status -> status -> bool
val pp_status : Format.formatter -> status -> unit
val status_to_string : status -> string

type t = {
  id : int;
  decide : slot:int -> action;
      (** Action for slot [slot].  Must not be called after [finished ()]
          is [true]; terminated stations leave the channel. *)
  observe : slot:int -> perceived:Jamming_channel.Channel.state -> transmitted:bool -> unit;
      (** Feedback for slot [slot], as perceived by this station. *)
  status : unit -> status;
  finished : unit -> bool;
      (** Whether the station has terminated its protocol (it may know
          its status before terminating, e.g. Notification blockers keep
          transmitting after learning they are non-leaders). *)
}

type factory = id:int -> rng:Jamming_prng.Prng.t -> t
(** Builds station [id]'s instance with a private random stream. *)

val map_factory : (t -> t) -> factory -> factory
(** [map_factory f factory] post-processes every built station with [f] —
    the hook fault-injection wrappers use to decorate stations without
    touching protocol code.  [f] receives the fully-built station (its
    [id] field identifies it). *)
