type action = Transmit | Listen | Sleep of int

let equal_action a b =
  match a, b with
  | Transmit, Transmit | Listen, Listen -> true
  | Sleep u, Sleep v -> u = v
  | (Transmit | Listen | Sleep _), _ -> false

let pp_action ppf = function
  | Transmit -> Format.pp_print_string ppf "Transmit"
  | Listen -> Format.pp_print_string ppf "Listen"
  | Sleep until -> Format.fprintf ppf "Sleep(until=%d)" until

type status = Undecided | Leader | Non_leader

let equal_status a b =
  match a, b with
  | Undecided, Undecided | Leader, Leader | Non_leader, Non_leader -> true
  | (Undecided | Leader | Non_leader), _ -> false

let status_to_string = function
  | Undecided -> "undecided"
  | Leader -> "leader"
  | Non_leader -> "non-leader"

let pp_status ppf st = Format.pp_print_string ppf (status_to_string st)

type t = {
  id : int;
  decide : slot:int -> action;
  observe : slot:int -> perceived:Jamming_channel.Channel.state -> transmitted:bool -> unit;
  status : unit -> status;
  finished : unit -> bool;
}

type factory = id:int -> rng:Jamming_prng.Prng.t -> t

let map_factory f (factory : factory) : factory = fun ~id ~rng -> f (factory ~id ~rng)

type pool = {
  pool_size : int;
  pool_begin_slot : slot:int -> unit;
  pool_decide_all : slot:int -> actions:action array -> tx_counts:int array -> int;
  pool_observe_all :
    slot:int ->
    actions:action array ->
    tx:Jamming_channel.Channel.state ->
    rx:Jamming_channel.Channel.state ->
    unit;
  pool_decide : slot:int -> int -> action;
  pool_observe :
    slot:int -> perceived:Jamming_channel.Channel.state -> transmitted:bool -> int -> unit;
  pool_status : int -> status;
  pool_finished : int -> bool;
  pool_all_finished : unit -> bool;
  pool_leaders : unit -> int;
  pool_awake : (until:int -> int -> int) option;
}

type pool_factory = n:int -> rng:Jamming_prng.Prng.t -> pool
