type action = Transmit | Listen

let equal_action a b =
  match a, b with
  | Transmit, Transmit | Listen, Listen -> true
  | (Transmit | Listen), _ -> false

let pp_action ppf = function
  | Transmit -> Format.pp_print_string ppf "Transmit"
  | Listen -> Format.pp_print_string ppf "Listen"

type status = Undecided | Leader | Non_leader

let equal_status a b =
  match a, b with
  | Undecided, Undecided | Leader, Leader | Non_leader, Non_leader -> true
  | (Undecided | Leader | Non_leader), _ -> false

let status_to_string = function
  | Undecided -> "undecided"
  | Leader -> "leader"
  | Non_leader -> "non-leader"

let pp_status ppf st = Format.pp_print_string ppf (status_to_string st)

type t = {
  id : int;
  decide : slot:int -> action;
  observe : slot:int -> perceived:Jamming_channel.Channel.state -> transmitted:bool -> unit;
  status : unit -> status;
  finished : unit -> bool;
}

type factory = id:int -> rng:Jamming_prng.Prng.t -> t

let map_factory f (factory : factory) : factory = fun ~id ~rng -> f (factory ~id ~rng)
