(** Uniform protocols (Nakano–Olariu, §1.1 of the paper): in every slot
    all stations transmit independently with one common probability that
    is a deterministic function of the shared channel history.

    Such protocols admit an O(1)-per-slot simulation
    ({!Jamming_sim.Uniform_engine}): only the class of the transmitter
    count (0 / 1 / ≥2) matters, and its distribution has a closed form.
    The interface below describes the {e common} logic replicated at
    every station; it sees the true (strong-CD) channel state. *)

type outcome =
  | Continue
  | Elected  (** a [Single] was just observed: the transmitter is leader *)

type t = {
  name : string;
  tx_prob : unit -> float;
      (** Transmission probability for the next slot, in [\[0, 1\]]. *)
  on_state : Jamming_channel.Channel.state -> outcome;
      (** Feedback with the true channel state of the slot. *)
}

type factory = unit -> t
(** Fresh protocol state per run. *)

val distributed : factory -> Station.factory
(** The truly distributed implementation: every station owns a private
    copy of the logic, updated from its {e own} perceived state, and
    flips its own transmit coin.  In strong-CD all copies stay equal; on
    perceiving [Single] a station terminates as [Leader] if it was the
    transmitter, as [Non_leader] otherwise.  (In weak-CD a transmitter
    never perceives [Single]; use {!Jamming_core.Notification} to close
    that gap.) *)

val to_station : t -> Station.factory
(** Wrap one {e shared-logic} instance as a per-station adapter for the
    exact engine — every station draws its own transmit coin but the
    protocol state is advanced once per slot.  Intended for cross-engine
    validation in strong-CD, where all stations perceive the same state.
    The returned factory must be used for stations [0 .. n−1] of a single
    run, and the engine must call [observe] on station 0 first (the
    engine processes stations in id order, so this holds). *)
