module Channel = Jamming_channel.Channel
module Uniform = Jamming_station.Uniform

type config = { c : float; threshold : int }

let default_config = { c = 4.0; threshold = 2 }

type stage = Estimating of int | Electing of { i : int; j : int; eps_hat : float } | Done

let eps_guess j = Float.exp2 (-.float_of_int j /. 3.0)

let duration_cap = 1 lsl 50

let phase_duration ~t0 ~i ~j =
  let d = 3.0 *. Float.exp2 (float_of_int i) *. t0 /. float_of_int j in
  if d >= float_of_int duration_cap then duration_cap
  else Int.max 1 (int_of_float (Float.ceil d))

module Logic = struct
  type phase = {
    mutable lesk : Lesk.Logic.t;
    mutable remaining : int;
    mutable i : int;
    mutable j : int;
  }

  type state_machine =
    | Est of Estimation.Logic.t
    | Elect of phase
    | Finished

  type t = {
    config : config;
    mutable sm : state_machine;
    mutable t0 : float option;
    mutable elected : bool;
  }

  let create ?(config = default_config) () =
    if not (config.c > 0.0) then invalid_arg "Lesu.Logic.create: c must be positive";
    { config; sm = Est (Estimation.Logic.create ~threshold:config.threshold); t0 = None; elected = false }

  let stage t =
    match t.sm with
    | Est e -> Estimating (Estimation.Logic.round e)
    | Elect p -> Electing { i = p.i; j = p.j; eps_hat = eps_guess p.j }
    | Finished -> Done

  let t0 t = t.t0

  let tx_prob t =
    match t.sm with
    | Est e -> Estimation.Logic.tx_prob e
    | Elect p -> Lesk.Logic.tx_prob p.lesk
    | Finished -> 0.0

  let elected t = t.elected

  let start_electing t ~round =
    let t0 = t.config.c *. Float.exp2 (float_of_int (1 + round)) in
    t.t0 <- Some t0;
    t.sm <-
      Elect
        {
          lesk = Lesk.Logic.create ~eps:(eps_guess 1) ();
          remaining = phase_duration ~t0 ~i:1 ~j:1;
          i = 1;
          j = 1;
        }

  let next_phase t p =
    let t0 = match t.t0 with Some v -> v | None -> assert false in
    let i, j = if p.j >= p.i then (p.i + 1, 1) else (p.i, p.j + 1) in
    p.i <- i;
    p.j <- j;
    p.lesk <- Lesk.Logic.create ~eps:(eps_guess j) ();
    p.remaining <- phase_duration ~t0 ~i ~j

  let on_state t state =
    if not t.elected then
      match t.sm with
      | Finished -> ()
      | Est e -> (
          Estimation.Logic.on_state e state;
          if Estimation.Logic.singled e then begin
            t.elected <- true;
            t.sm <- Finished
          end
          else
            match Estimation.Logic.finished e with
            | Some round -> start_electing t ~round
            | None -> ())
      | Elect p ->
          Lesk.Logic.on_state p.lesk state;
          if Lesk.Logic.elected p.lesk then begin
            t.elected <- true;
            t.sm <- Finished
          end
          else begin
            p.remaining <- p.remaining - 1;
            if p.remaining <= 0 then next_phase t p
          end
end

let uniform ?config () () =
  let logic = Logic.create ?config () in
  {
    Uniform.name = "LESU";
    tx_prob = (fun () -> Logic.tx_prob logic);
    on_state =
      (fun state ->
        Logic.on_state logic state;
        if Logic.elected logic then Uniform.Elected else Uniform.Continue);
  }

let station ?config () = Uniform.distributed (uniform ?config ())

(* [Logic] rewritten as a pure transition for the aggregate engine.
   States carry everything [Logic]'s mutable machine does — estimation
   progress, or the current LESK phase with its estimate [u] — and
   every float update mirrors the mutable code operation for operation,
   so a trajectory of channel states produces identical tx_prob values
   (asserted in the tests). *)
type pure_state =
  | Pure_est of { round : int; slots_left : int; nulls : int }
  | Pure_elect of { t0 : float; i : int; j : int; remaining : int; u : float }

let aggregate ?(config = default_config) () =
  if not (config.c > 0.0) then invalid_arg "Lesu.aggregate: c must be positive";
  if config.threshold < 1 then
    invalid_arg "Lesu.aggregate: threshold must be >= 1";
  let fresh_phase ~t0 ~i ~j =
    Pure_elect { t0; i; j; remaining = phase_duration ~t0 ~i ~j; u = 0.0 }
  in
  let step st state =
    match st, state with
    | _, Channel.Single -> Jamming_sim.Aggregate.Elected
    | Pure_est { round; slots_left; nulls }, (Channel.Null | Channel.Collision) ->
        let nulls = if state = Channel.Null then nulls + 1 else nulls in
        let slots_left = slots_left - 1 in
        if slots_left > 0 then
          Jamming_sim.Aggregate.Continue (Pure_est { round; slots_left; nulls })
        else if nulls >= config.threshold then
          let t0 = config.c *. Float.exp2 (float_of_int (1 + round)) in
          Continue (fresh_phase ~t0 ~i:1 ~j:1)
        else
          Continue
            (Pure_est { round = round + 1; slots_left = 1 lsl (round + 1); nulls = 0 })
    | Pure_elect { t0; i; j; remaining; u }, (Channel.Null | Channel.Collision) ->
        let u =
          match state with
          | Channel.Null -> Float.max (u -. 1.0) 0.0
          | _ -> u +. (1.0 /. (8.0 /. eps_guess j))
        in
        let remaining = remaining - 1 in
        if remaining > 0 then Continue (Pure_elect { t0; i; j; remaining; u })
        else
          let i, j = if j >= i then (i + 1, 1) else (i, j + 1) in
          Continue (fresh_phase ~t0 ~i ~j)
  in
  let tx_prob = function
    | Pure_est { round; _ } -> Float.exp2 (-.Float.exp2 (float_of_int round))
    | Pure_elect { u; _ } -> Float.exp2 (-.u)
  in
  Jamming_sim.Aggregate.Packed
    {
      Jamming_sim.Aggregate.name = "LESU";
      init = Pure_est { round = 1; slots_left = 2; nulls = 0 };
      tx_prob;
      step;
      compare = Stdlib.compare;
    }

(* [Logic] in population form for [Notification.pool]: stage codes and
   estimation/election progress in flat arrays.  Every float update
   mirrors the mutable machine ([Estimation.Logic] + [Logic]) operation
   for operation; the per-station transmission probability is cached
   and recomputed — with the exact expressions [tx_prob] uses — only
   when the underlying state changes, so it stays bit-identical to a
   fresh closure computation.  As in [Lesk.flat_sub] the [elected]
   flag is unobservable through [sub_of_uniform]; reaching it maps to
   the frozen stage 2 (tx_prob 0, no further updates), exactly
   [Logic]'s Finished. *)
let flat_sub ?(config = default_config) () =
  if not (config.c > 0.0) then invalid_arg "Lesu.flat_sub: c must be positive";
  if config.threshold < 1 then invalid_arg "Lesu.flat_sub: threshold must be >= 1";
  {
    Notification.fs_name = "LESU";
    fs_make =
      (fun ~n ->
        (* 0 = estimating, 1 = electing, 2 = finished *)
        let stage = Array.make n 0 in
        let round = Array.make n 1 in
        let slots_left = Array.make n 2 in
        let nulls = Array.make n 0 in
        let t0 = Array.make n 0.0 in
        let el_i = Array.make n 1 in
        let el_j = Array.make n 1 in
        let remaining = Array.make n 0 in
        let a = Array.make n 1.0 in
        let u = Array.make n 0.0 in
        let p = Array.make n 0.0 in
        (* Stations move in lockstep except around Singles, so single-
           entry memos serve nearly the whole population on the hot
           updates; exp2 is pure, so memoized floats are bit-identical
           to fresh computation. *)
        let memo_r = ref (-1) and memo_rp = ref 0.0 in
        let est_p r =
          if r = !memo_r then !memo_rp
          else begin
            let v = Float.exp2 (-.Float.exp2 (float_of_int r)) in
            memo_r := r;
            memo_rp := v;
            v
          end
        in
        let memo_u = ref Float.nan and memo_up = ref 0.0 in
        let exp2m v =
          if v = !memo_u then !memo_up
          else begin
            let r = Float.exp2 (-.v) in
            memo_u := v;
            memo_up := r;
            r
          end
        in
        let fresh_phase s ~i ~j =
          el_i.(s) <- i;
          el_j.(s) <- j;
          (* = [Lesk.Logic.create ~eps:(eps_guess j) ()]'s default [a] *)
          a.(s) <- 8.0 /. eps_guess j;
          remaining.(s) <- phase_duration ~t0:t0.(s) ~i ~j;
          u.(s) <- 0.0;
          p.(s) <- exp2m 0.0
        in
        let start_electing s =
          t0.(s) <- config.c *. Float.exp2 (float_of_int (1 + round.(s)));
          stage.(s) <- 1;
          fresh_phase s ~i:1 ~j:1
        in
        let on_state s state =
          match stage.(s) with
          | 2 -> ()
          | 0 -> (
              match state with
              | Channel.Single ->
                  stage.(s) <- 2;
                  p.(s) <- 0.0
              | Channel.Null | Channel.Collision ->
                  (match state with
                  | Channel.Null -> nulls.(s) <- nulls.(s) + 1
                  | _ -> ());
                  slots_left.(s) <- slots_left.(s) - 1;
                  if slots_left.(s) = 0 then
                    if nulls.(s) >= config.threshold then start_electing s
                    else begin
                      round.(s) <- round.(s) + 1;
                      slots_left.(s) <- 1 lsl round.(s);
                      nulls.(s) <- 0;
                      p.(s) <- est_p round.(s)
                    end)
          | _ -> (
              match state with
              | Channel.Single ->
                  stage.(s) <- 2;
                  p.(s) <- 0.0
              | Channel.Null | Channel.Collision ->
                  (match state with
                  | Channel.Null ->
                      let u' = Float.max (u.(s) -. 1.0) 0.0 in
                      if u' <> u.(s) then begin
                        u.(s) <- u';
                        p.(s) <- exp2m u'
                      end
                  | _ ->
                      u.(s) <- u.(s) +. (1.0 /. a.(s));
                      p.(s) <- exp2m u.(s));
                  remaining.(s) <- remaining.(s) - 1;
                  if remaining.(s) <= 0 then begin
                    let i, j =
                      if el_j.(s) >= el_i.(s) then (el_i.(s) + 1, 1)
                      else (el_i.(s), el_j.(s) + 1)
                    in
                    fresh_phase s ~i ~j
                  end)
        in
        {
          Notification.sp_reset =
            (fun s ->
              stage.(s) <- 0;
              round.(s) <- 1;
              slots_left.(s) <- 2;
              nulls.(s) <- 0;
              p.(s) <- est_p 1);
          sp_tx_prob = (fun s -> p.(s));
          sp_on_state = on_state;
        });
  }

let expected_time_bound ~eps ~n ~window =
  let log2 x = Float.log2 (Float.max 2.0 x) in
  let nf = float_of_int (Int.max 2 n) and tf = float_of_int (Int.max 1 window) in
  let log_n = log2 nf in
  let log_inv_eps = Float.max 0.5 (Float.log2 (1.0 /. eps)) in
  let eps3 = eps *. eps *. eps in
  if tf <= log_n /. (eps3 *. log_inv_eps) then
    Float.max 1.0 (Float.log2 (Float.max 2.0 log_inv_eps)) /. eps3 *. log_n
  else
    let a = log2 (tf /. (eps *. log_n)) in
    let b = log_inv_eps *. Float.max 1.0 (Float.log2 (Float.max 2.0 log_inv_eps)) in
    Float.max (Float.max a 1.0) b *. tf
