module Channel = Jamming_channel.Channel
module Uniform = Jamming_station.Uniform

module Logic = struct
  type t = {
    threshold : int;
    mutable round : int;
    mutable slots_left : int;  (* slots remaining in the current round *)
    mutable nulls : int;  (* Nulls seen in the current round *)
    mutable finished : int option;
    mutable singled : bool;
  }

  let create ~threshold =
    if threshold < 1 then invalid_arg "Estimation.Logic.create: threshold must be >= 1";
    { threshold; round = 1; slots_left = 2; nulls = 0; finished = None; singled = false }

  let round t = t.round

  let tx_prob t =
    (* 2^-2^round; for round >= 10 this underflows towards 0 harmlessly. *)
    Float.exp2 (-.Float.exp2 (float_of_int t.round))

  let finished t = t.finished
  let singled t = t.singled

  let on_state t state =
    if t.finished = None && not t.singled then begin
      (match state with
      | Channel.Single -> t.singled <- true
      | Channel.Null -> t.nulls <- t.nulls + 1
      | Channel.Collision -> ());
      if not t.singled then begin
        t.slots_left <- t.slots_left - 1;
        if t.slots_left = 0 then
          if t.nulls >= t.threshold then t.finished <- Some t.round
          else begin
            t.round <- t.round + 1;
            t.slots_left <- 1 lsl t.round;
            t.nulls <- 0
          end
      end
    end
end

let uniform ?(threshold = 2) () () =
  let logic = Logic.create ~threshold in
  {
    Uniform.name = Printf.sprintf "Estimation(L=%d)" threshold;
    tx_prob =
      (fun () -> match Logic.finished logic with Some _ -> 0.0 | None -> Logic.tx_prob logic);
    on_state =
      (fun state ->
        Logic.on_state logic state;
        if Logic.singled logic then Uniform.Elected else Uniform.Continue);
  }

let run_logic ~threshold ~states =
  let logic = Logic.create ~threshold in
  let rec go = function
    | [] -> (
        match Logic.finished logic with
        | Some r -> `Returned r
        | None -> if Logic.singled logic then `Singled else `Running logic)
    | st :: rest -> (
        Logic.on_state logic st;
        if Logic.singled logic then `Singled
        else
          match Logic.finished logic with
          | Some r -> `Returned r
          | None -> go rest)
  in
  go states
