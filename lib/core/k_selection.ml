module Uniform = Jamming_station.Uniform
module Metrics = Jamming_sim.Metrics
module Station = Jamming_station.Station

type round_result = { winner_index : int; slots : int }
type outcome = { rounds : round_result list; total_slots : int; completed : bool }

let run ?(warm_start = true) ~k ~n ~eps ~rng ~adversary ~budget ~max_slots () =
  if k < 1 || k > n then invalid_arg "K_selection.run: need 1 <= k <= n";
  let rec go ~round ~remaining ~used ~last_u acc =
    if round > k then { rounds = List.rev acc; total_slots = used; completed = true }
    else if used >= max_slots then
      { rounds = List.rev acc; total_slots = used; completed = false }
    else begin
      let initial_u = if warm_start then Float.max 0.0 (last_u -. 1.0) else 0.0 in
      let logic = Lesk.Logic.create ~initial_u ~eps () in
      let protocol =
        {
          Uniform.name = Printf.sprintf "k-selection round %d" round;
          tx_prob = (fun () -> Lesk.Logic.tx_prob logic);
          on_state =
            (fun state ->
              Lesk.Logic.on_state logic state;
              if Lesk.Logic.elected logic then Uniform.Elected else Uniform.Continue);
        }
      in
      let result =
        Jamming_sim.Uniform_engine.run ~start_slot:used ~n:remaining ~rng ~protocol
          ~adversary ~budget ~max_slots:(max_slots - used) ()
      in
      let used = used + result.Metrics.slots in
      if not result.Metrics.elected then
        { rounds = List.rev acc; total_slots = used; completed = false }
      else
        let winner =
          match result.Metrics.leader with Some i -> i | None -> assert false
        in
        go ~round:(round + 1) ~remaining:(remaining - 1) ~used ~last_u:(Lesk.Logic.u logic)
          ({ winner_index = winner; slots = result.Metrics.slots } :: acc)
    end
  in
  go ~round:1 ~remaining:n ~used:0 ~last_u:0.0 []

type weak_cd_outcome = { winners : int list; slots : int; completed : bool }

let run_weak_cd ~k ~n ~eps ~rng ~adversary ~budget ~max_slots () =
  if k < 1 || n - k < 2 then invalid_arg "K_selection.run_weak_cd: need 1 <= k and n - k >= 2";
  let rec go ~round ~participants ~used acc =
    if round > k then { winners = List.rev acc; slots = used; completed = true }
    else if used >= max_slots then { winners = List.rev acc; slots = used; completed = false }
    else begin
      (* Fresh LEWK instances for the remaining participants; withdrawn
         winners are represented by permanently silent stations so ids
         keep their meaning. *)
      let factory = Lewk.station ~eps () in
      let stations =
        Array.init n (fun id ->
            if List.mem id participants then
              factory ~id ~rng:(Jamming_prng.Prng.split rng)
            else
              {
                Station.id;
                decide = (fun ~slot:_ -> Station.Listen);
                observe = (fun ~slot:_ ~perceived:_ ~transmitted:_ -> ());
                status = (fun () -> Station.Non_leader);
                finished = (fun () -> true);
              })
      in
      (* Each round restarts the interval clock at slot 0 (the budget
         still spans the whole chain: slot labels are cosmetic to it).
         Continuing global numbering would make later rounds begin deep
         inside ever-larger C-intervals and pay their full ramp-up. *)
      let result =
        Jamming_sim.Engine.run ~cd:Jamming_channel.Channel.Weak_cd ~adversary ~budget
          ~max_slots:(max_slots - used) ~stations ()
      in
      let used = used + result.Metrics.slots in
      match result.Metrics.leader with
      | Some id when result.Metrics.completed ->
          go ~round:(round + 1)
            ~participants:(List.filter (fun p -> p <> id) participants)
            ~used (id :: acc)
      | Some _ | None -> { winners = List.rev acc; slots = used; completed = false }
    end
  in
  go ~round:1 ~participants:(List.init n Fun.id) ~used:0 []
