type slot_class =
  | Idle
  | C1 of { generation : int; offset : int }
  | C2 of { generation : int; offset : int }
  | C3 of { generation : int; offset : int }

let generation_start i =
  if i < 1 then invalid_arg "Intervals.generation_start: generation must be >= 1";
  (3 lsl i) - 3

let generation_size i =
  if i < 1 then invalid_arg "Intervals.generation_size: generation must be >= 1";
  1 lsl i

let classify slot =
  if slot < 0 then invalid_arg "Intervals.classify: negative slot"
  else if slot < 3 then Idle
  else begin
    (* Find the generation i with 3·2^i − 3 <= slot < 3·2^(i+1) − 3. *)
    let rec find i = if slot < generation_start (i + 1) then i else find (i + 1) in
    let generation = find 1 in
    let offset = slot - generation_start generation in
    let size = generation_size generation in
    if offset < size then C1 { generation; offset }
    else if offset < 2 * size then C2 { generation; offset = offset - size }
    else C3 { generation; offset = offset - (2 * size) }
  end

let pp ppf = function
  | Idle -> Format.pp_print_string ppf "idle"
  | C1 { generation; offset } -> Format.fprintf ppf "C1[%d]+%d" generation offset
  | C2 { generation; offset } -> Format.fprintf ppf "C2[%d]+%d" generation offset
  | C3 { generation; offset } -> Format.fprintf ppf "C3[%d]+%d" generation offset
