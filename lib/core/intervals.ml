type slot_class =
  | Idle
  | C1 of { generation : int; offset : int }
  | C2 of { generation : int; offset : int }
  | C3 of { generation : int; offset : int }

let generation_start i =
  if i < 1 then invalid_arg "Intervals.generation_start: generation must be >= 1";
  (3 lsl i) - 3

let generation_size i =
  if i < 1 then invalid_arg "Intervals.generation_size: generation must be >= 1";
  1 lsl i

let classify slot =
  if slot < 0 then invalid_arg "Intervals.classify: negative slot"
  else if slot < 3 then Idle
  else begin
    (* Find the generation i with 3·2^i − 3 <= slot < 3·2^(i+1) − 3. *)
    let rec find i = if slot < generation_start (i + 1) then i else find (i + 1) in
    let generation = find 1 in
    let offset = slot - generation_start generation in
    let size = generation_size generation in
    if offset < size then C1 { generation; offset }
    else if offset < 2 * size then C2 { generation; offset = offset - size }
    else C3 { generation; offset = offset - (2 * size) }
  end

(* Non-allocating classification for the hot path.  A cursor caches the
   generation bracket of the last located slot; walking slots forward is
   amortized O(1) per slot (the while loop advances the bracket at most
   once per generation boundary), and a backward jump restarts from
   generation 1.  [classify] above stays the allocating reference. *)

type cursor = {
  mutable c_kind : int; (* 0 = idle, 1 = C1, 2 = C2, 3 = C3 *)
  mutable c_gen : int;
  mutable c_off : int;
  mutable c_start : int; (* generation_start c_gen *)
  mutable c_size : int; (* generation_size c_gen *)
}

let kind_idle = 0
let kind_c1 = 1
let kind_c2 = 2
let kind_c3 = 3
let cursor () = { c_kind = 0; c_gen = 1; c_off = 0; c_start = 3; c_size = 2 }

let locate c slot =
  if slot < 0 then invalid_arg "Intervals.locate: negative slot";
  if slot < 3 then c.c_kind <- kind_idle
  else begin
    if slot < c.c_start then begin
      (* Backward jump: restart the bracket walk from generation 1. *)
      c.c_gen <- 1;
      c.c_start <- 3;
      c.c_size <- 2
    end;
    while slot >= c.c_start + (3 * c.c_size) do
      c.c_gen <- c.c_gen + 1;
      c.c_start <- c.c_start + (3 * c.c_size);
      c.c_size <- c.c_size * 2
    done;
    let off = slot - c.c_start in
    if off < c.c_size then begin
      c.c_kind <- kind_c1;
      c.c_off <- off
    end
    else if off < 2 * c.c_size then begin
      c.c_kind <- kind_c2;
      c.c_off <- off - c.c_size
    end
    else begin
      c.c_kind <- kind_c3;
      c.c_off <- off - (2 * c.c_size)
    end
  end

let kind c = c.c_kind
let generation c = c.c_gen
let offset c = c.c_off

let to_class c =
  match c.c_kind with
  | 0 -> Idle
  | 1 -> C1 { generation = c.c_gen; offset = c.c_off }
  | 2 -> C2 { generation = c.c_gen; offset = c.c_off }
  | _ -> C3 { generation = c.c_gen; offset = c.c_off }

let pp ppf = function
  | Idle -> Format.pp_print_string ppf "idle"
  | C1 { generation; offset } -> Format.fprintf ppf "C1[%d]+%d" generation offset
  | C2 { generation; offset } -> Format.fprintf ppf "C2[%d]+%d" generation offset
  | C3 { generation; offset } -> Format.fprintf ppf "C3[%d]+%d" generation offset
