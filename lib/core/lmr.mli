(** LMR — level-max-race leader election with log-logarithmic awake
    time (DESIGN.md §16).

    The paper's protocols keep every station's radio on for the whole
    election, so per-station {e awake time} equals election time.  LMR
    trades clock time for energy: stations know [n] and race over
    geometric levels, and a station is awake for only
    O(log log n) slots per election cycle.

    One cycle, fully synchronous:

    + {b Level draw} — each station draws [level] with
      P[level = k] = 2{^-k}, capped at [rounds ~n] = max(2, ⌈log₂ n⌉+4)
      (one uniform float per cycle; the cap makes the search range
      closed and, by a union bound, still exceeds every level w.h.p.).
    + {b Search} — all stations binary-search the population's maximum
      level over [[1, rounds]]: each probe slot, stations at
      [level >= mid] transmit; a perceived [Null] rules the upper half
      out, anything else rules the lower half in.  Everyone hears the
      same channel, so all stations track the same [lo, hi] and the
      search closes after at most {!search_slots} slots — the
      Θ(log log n) awake cost.
    + {b Tie knockout} — the stations at the maximum level (usually a
      couple) toss fair coins for {!tie_rounds} slots: a [Single]
      crowns the transmitter tentative leader and drops every listener;
      a [Collision] drops the listeners; a [Null] changes nothing.
      Non-contenders, dropped contenders and the crowned station all
      [Sleep] until the announcement slot.
    + {b Announcement} — everyone wakes; the tentative leader (if any)
      transmits alone.  A perceived [Single] ends the election —
      transmitter [Leader], everyone else [Non_leader]; anything else
      (jammed slot, no tentative) restarts the whole population at the
      next slot with fresh levels.

    Safety never depends on the adversary: at most one tentative can be
    crowned per cycle, so an announcement [Single] elects exactly one
    leader.  Jamming can only delay — it skews the search high (zero
    contenders), kills tie slots, or breaks announcements, each costing
    one cycle of O(log log n) awake slots per station.  Requires
    [Strong_cd]: under weaker models a lone transmitter cannot
    recognise its own [Single], and the tournament never crowns. *)

val name : string
(** ["LMR"]. *)

val tie_rounds : int
(** Knockout slots per cycle (16): enough that a handful of contenders
    resolves w.h.p. before the announcement. *)

val rounds : n:int -> int
(** Level cap / search range for population [n]; max(2, bits(n) + 4).
    Raises [Invalid_argument] if [n < 1]. *)

val search_slots : n:int -> int
(** Worst-case binary-search length, ⌈log₂ (rounds ~n)⌉ — the dominant
    awake cost per cycle. *)

val awake_bound : n:int -> int
(** Per-cycle awake-slot upper bound for any station:
    [search_slots + tie_rounds + 2] (search, worst-case tournament
    stay, announcement).  Non-contenders use only [search_slots + 2];
    the A9 experiment pins the median near that. *)

val station : n:int -> Jamming_station.Station.factory
(** Closure stations for {!Jamming_sim.Engine.run}.  All stations must
    share the same [n] and start at the same slot. *)

val pool : Jamming_station.Station.pool_factory
(** Struct-of-arrays population for {!Jamming_sim.Engine.run_pool}.
    Splits per-station streams in id order, so runs are bit-identical
    to {!station} under [Engine.run] (asserted in [test_lmr.ml]).  On
    the batch path sleep is managed internally and per-station awake
    slots are reported through [pool_awake], so metered runs work on
    both engine paths. *)
