(** Declarative protocol schedules.

    The paper composes protocols in time: Estimation, then time-boxed
    LESK runs with escalating budgets (Algorithm 2), restarts at
    interval boundaries (§3)…  This module captures the pattern as a
    lazy stream of {e phases}; because the stream is lazy, later phases
    may depend on results computed by earlier ones (e.g. LESU's [t₀]).

    Its main consumer is {!Lesu_declarative}, a from-combinators rebuild
    of LESU that the test suite runs {e differentially} against the
    hand-rolled {!Lesu} — same seed, bit-identical behaviour. *)

type step =
  | Continue
  | Elected  (** a Single was perceived: the election is over *)
  | Phase_done  (** this phase ended; move to the next one *)

type phase = {
  label : string;
  tx_prob : unit -> float;
  on_state : Jamming_channel.Channel.state -> step;
}

type t = (unit -> phase) Seq.t
(** A (possibly infinite) lazy stream of phase constructors; each is
    called exactly once, when its phase begins. *)

val timeboxed : label:string -> duration:(unit -> int) -> Jamming_station.Uniform.factory -> unit -> phase
(** Run a fresh instance of a uniform protocol for [duration ()] slots
    (evaluated when the phase starts, hence able to read earlier
    results); ends with [Phase_done], or [Elected] if the protocol
    reports it.  [duration ()] must be ≥ 1. *)

val of_list : (unit -> phase) list -> t
val repeat_indexed : (int -> t) -> t
(** [repeat_indexed f] is the concatenation of [f 1, f 2, f 3, …]. *)

val to_uniform :
  ?on_phase:(string -> unit) -> name:string -> t -> Jamming_station.Uniform.factory
(** Compile a schedule into a uniform protocol.  When the stream is
    exhausted the protocol goes silent ([tx_prob = 0]) and never elects.
    A current phase's [Elected] ends the whole run.  [on_phase] fires
    with each phase's label as it starts (tracing/tests). *)
