(** LESU rebuilt from {!Schedule} combinators.

    Same algorithm as {!Lesu} — Estimation(L), then time-boxed
    [LESK(ε_j)] runs for [⌈3·2^i·t₀/j⌉] slots in the order
    [(1,1), (2,1), (2,2), (3,1), …] — but expressed as a lazy phase
    stream instead of a hand-rolled state machine.  The test suite runs
    both against identical seeds and demands {e bit-identical} election
    times: a strong differential check on both implementations (and on
    the combinator library). *)

val uniform :
  ?on_phase:(string -> unit) ->
  ?config:Lesu.config ->
  unit ->
  Jamming_station.Uniform.factory

val station : ?config:Lesu.config -> unit -> Jamming_station.Station.factory
