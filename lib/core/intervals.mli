(** The three-way slot partition of §3.

    For [i ≥ 1]:
    {v
      C¹ᵢ = [3·2^i − 3, 4·2^i − 4]
      C²ᵢ = [4·2^i − 3, 5·2^i − 4]
      C³ᵢ = [5·2^i − 3, 6·2^i − 4]
    v}
    each of size [2^i]; consecutive generations tile [3, ∞) exactly.
    Slots 0–2 belong to no interval (stations stay idle).  For
    [i ≥ log₂ T] the adversary cannot jam an entire interval — this is
    what makes the Notification handshake live. *)

type slot_class =
  | Idle  (** global slots 0, 1, 2 *)
  | C1 of { generation : int; offset : int }
  | C2 of { generation : int; offset : int }
  | C3 of { generation : int; offset : int }

val classify : int -> slot_class
(** Classify a global slot number (≥ 0).  O(log slot). *)

val generation_start : int -> int
(** [generation_start i = 3·2^i − 3], first slot of generation [i ≥ 1]. *)

val generation_size : int -> int
(** [2^i], the size of each of the three intervals of generation [i]. *)

val pp : Format.formatter -> slot_class -> unit
