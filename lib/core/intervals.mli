(** The three-way slot partition of §3.

    For [i ≥ 1]:
    {v
      C¹ᵢ = [3·2^i − 3, 4·2^i − 4]
      C²ᵢ = [4·2^i − 3, 5·2^i − 4]
      C³ᵢ = [5·2^i − 3, 6·2^i − 4]
    v}
    each of size [2^i]; consecutive generations tile [3, ∞) exactly.
    Slots 0–2 belong to no interval (stations stay idle).  For
    [i ≥ log₂ T] the adversary cannot jam an entire interval — this is
    what makes the Notification handshake live. *)

type slot_class =
  | Idle  (** global slots 0, 1, 2 *)
  | C1 of { generation : int; offset : int }
  | C2 of { generation : int; offset : int }
  | C3 of { generation : int; offset : int }

val classify : int -> slot_class
(** Classify a global slot number (≥ 0).  O(log slot). *)

val generation_start : int -> int
(** [generation_start i = 3·2^i − 3], first slot of generation [i ≥ 1]. *)

val generation_size : int -> int
(** [2^i], the size of each of the three intervals of generation [i]. *)

val pp : Format.formatter -> slot_class -> unit

(** {1 Non-allocating cursor}

    The hot simulation path classifies every slot once per slot for a
    whole population; [classify] allocates a record per call and
    re-derives the generation bracket by recursion.  A [cursor] caches
    the bracket of the last located slot: walking slots forward is
    amortized O(1) and allocation-free, and the kind/generation/offset
    of the located slot are read back through int accessors.
    [to_class] bridges back to [slot_class] for tests; the cursor is
    property-tested identical to [classify] over sequential and random
    slot walks. *)

type cursor

val cursor : unit -> cursor
(** A fresh cursor, positioned nowhere; call [locate] before reading. *)

val locate : cursor -> int -> unit
(** [locate c slot] points [c] at [slot] (≥ 0).  Amortized O(1) when
    slots are visited in non-decreasing order; a backward jump costs
    O(log slot). *)

val kind : cursor -> int
(** Class of the located slot: one of {!kind_idle}, {!kind_c1},
    {!kind_c2}, {!kind_c3}. *)

val generation : cursor -> int
(** Generation of the located slot.  Meaningless when [kind] is
    {!kind_idle}. *)

val offset : cursor -> int
(** Offset within the located interval.  Meaningless when [kind] is
    {!kind_idle}. *)

val kind_idle : int
val kind_c1 : int
val kind_c2 : int
val kind_c3 : int

val to_class : cursor -> slot_class
(** The located slot as a [slot_class] (allocates; for tests). *)
