(** LEWK — Leader Election in Weak-CD with Known ε (Theorem 3.2):
    {!Notification} applied to {!Lesk}.  Elects a leader in
    [O(max{T, log n·log(1/ε)/ε³})] slots w.h.p. for any known [ε],
    unknown [T] and unknown [n ≥ 3]. *)

val station :
  ?on_phase:(id:int -> slot:int -> Notification.phase -> unit) ->
  eps:float ->
  unit ->
  Jamming_station.Station.factory

val pool :
  ?on_phase:(id:int -> slot:int -> Notification.phase -> unit) ->
  eps:float ->
  unit ->
  Jamming_station.Station.pool_factory
(** LEWK in flat-pool form for [Engine.run_pool]: {!Notification.pool}
    over {!Lesk.flat_sub}.  Bit-identical to {!station} driven by
    [Engine.run] on the same seed (asserted in test_notification.ml). *)
