(** The Notification transformation (Function 4, §3): any algorithm [A]
    that obtains a first [Single] w.h.p. in weak-CD becomes a full
    leader-election algorithm with constant-factor overhead, immune
    against the same (T, 1−ε)-bounded adversary (Lemma 3.1).

    Mechanics.  Global slots are split into interval families C1/C2/C3
    ({!Intervals}).  [A] is executed in C1 (restarted fresh, with fresh
    randomness, at every interval C¹ᵢ).  The station [l] that produces
    the first C1-[Single] cannot hear its own success (weak-CD); everyone
    else moves on and re-runs [A] in C2.  When a C2-[Single] occurs:
    - [l] — the only station still watching C1/C2 with [leader]
      undefined — learns it won, and transmits in {e every} C3 slot;
    - every other station ([leader = false]) transmits in every C1 slot
      ("blocking") until it hears a [Single] in C3, then terminates;
      the C2 transmitter [s] keeps running [A] in C2 until the same
      C3-[Single], then terminates.
    Since only [l] transmits in C3, the adversary must expose a
    C3-[Single] within any interval it cannot fully jam; once the
    blockers leave, the first non-jammed C1 slot is [Null] and [l]
    terminates too.  Correct for [n ≥ 3] (the paper's requirement: at
    least one blocker must exist). *)

(** A restartable, station-side instance of the sub-algorithm [A],
    driven on its own local slot sequence. *)
type sub = {
  sub_decide : unit -> Jamming_station.Station.action;
  sub_observe :
    perceived:Jamming_channel.Channel.state -> transmitted:bool -> unit;
}

type sub_factory = rng:Jamming_prng.Prng.t -> sub
(** Called afresh at each interval restart, with a stream split off the
    station's private generator (fresh random choices, as required by §3). *)

val sub_of_uniform : Jamming_station.Uniform.factory -> sub_factory
(** Station-side adaptation of a uniform protocol: a private copy of the
    logic fed with this station's perceived states.  In weak-CD all
    copies remain synchronised until the first [Single] (§3: transmitters
    assume [Collision], which is the truth in every pre-[Single] slot they
    transmit in). *)

type phase =
  | Phase_a1  (** running A in C1; leader still undefined *)
  | Phase_a2  (** leader = false; running A in C2 *)
  | Phase_blocking  (** leader = false; transmitting in every C1 slot *)
  | Phase_announcing  (** leader = true; transmitting in every C3 slot *)
  | Phase_done of Jamming_station.Station.status

val pp_phase : Format.formatter -> phase -> unit

val station :
  ?on_phase:(id:int -> slot:int -> phase -> unit) ->
  sub_factory ->
  Jamming_station.Station.factory
(** Wrap [A] into a full weak-CD leader-election station.  [on_phase] is
    called at every phase transition (used by the example traces and the
    tests).

    This closure-per-station path is kept as the {e differential
    oracle} for {!pool} (the way [Engine.run_reference] backs
    [Engine.run]): the pool must reproduce it bit for bit — same
    random-stream split points, same draw counts, same transition slots
    — for every seed, fault plan and observer combination.  Production
    weak-CD call sites should use {!pool}. *)

(** {1 Flat station pool}

    The vectorized form of the transformation: one {!subpool} holds the
    sub-algorithm state of all [n] stations in flat arrays, and
    {!pool} adds the Notification phase machine on top — phase codes
    and generation tags in int arrays, one slot classification per slot
    (not per station per call site), one dense active set so finished
    stations cost nothing.  Stream compatibility with the closure path
    is part of the contract: station [i]'s generator is split off the
    run generator in id order, and a sub-instance's stream is split off
    the station's generator exactly when the closure path would call
    [sub_factory]. *)

(** Sub-algorithm state for a whole population.  [sp_reset i] restarts
    station [i]'s instance (the closure path's "fresh [sub]");
    [sp_tx_prob i] is its current transmission probability — it must
    equal, bit for bit, what the closure instance's [tx_prob] would
    return, including after [sp_on_state] updates; [sp_on_state i st]
    feeds it one perceived state. *)
type subpool = {
  sp_reset : int -> unit;
  sp_tx_prob : int -> float;
  sp_on_state : int -> Jamming_channel.Channel.state -> unit;
}

type flat_sub = {
  fs_name : string;
  fs_make : n:int -> subpool;
}
(** A sub-algorithm [A] in population form; the counterpart of
    {!sub_factory}. *)

val pool :
  ?on_phase:(id:int -> slot:int -> phase -> unit) ->
  flat_sub ->
  Jamming_station.Station.pool_factory
(** [pool fsub ~n ~rng] is the population that [n] closure stations
    built from [station fsub' ~rng] would be, state in flat arrays.
    Drive it with [Engine.run_pool].  [on_phase] fires at the same
    (id, slot, phase) points as the closure path's. *)
