module Channel = Jamming_channel.Channel
module Engine = Jamming_sim.Engine
module Metrics = Jamming_sim.Metrics
module Prng = Jamming_prng.Prng
module Station = Jamming_station.Station

type outcome = {
  wins : int array;
  transmissions : int array;
  total_slots : int;
  completed_rounds : int;
  jain_wins : float;
  jain_energy : float;
}

let jain_index xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Fair_use.jain_index: empty array";
  let sum = ref 0.0 and sumsq = ref 0.0 in
  Array.iter
    (fun x ->
      if x < 0.0 then invalid_arg "Fair_use.jain_index: negative value";
      sum := !sum +. x;
      sumsq := !sumsq +. (x *. x))
    xs;
  if !sumsq = 0.0 then invalid_arg "Fair_use.jain_index: all-zero array";
  !sum *. !sum /. (float_of_int n *. !sumsq)

(* A station wrapper that counts this station's transmissions. *)
let counting_factory ~counts factory ~id ~rng =
  let inner = factory ~id ~rng in
  {
    inner with
    Station.decide =
      (fun ~slot ->
        let a = inner.Station.decide ~slot in
        if Station.equal_action a Station.Transmit then counts.(id) <- counts.(id) + 1;
        a);
  }

let run ?eps_protocol ~rounds ~n ~eps ~rng ~adversary ~budget ~max_slots () =
  if rounds < 1 then invalid_arg "Fair_use.run: rounds must be >= 1";
  if n < 2 then invalid_arg "Fair_use.run: need n >= 2";
  let eps_protocol = match eps_protocol with Some e -> e | None -> eps in
  let wins = Array.make n 0 in
  let transmissions = Array.make n 0 in
  let rec go ~round ~used =
    if round > rounds || used >= max_slots then (round - 1, used)
    else begin
      let stations =
        Engine.make_stations ~n ~rng
          (counting_factory ~counts:transmissions (Lesk.station ~eps:eps_protocol))
      in
      let result =
        Engine.run ~start_slot:used ~cd:Channel.Strong_cd ~adversary ~budget
          ~max_slots:(max_slots - used) ~stations ()
      in
      let used = used + result.Metrics.slots in
      match result.Metrics.leader with
      | Some id when result.Metrics.elected ->
          wins.(id) <- wins.(id) + 1;
          go ~round:(round + 1) ~used
      | Some _ | None -> (round - 1, used)
    end
  in
  let completed_rounds, total_slots = go ~round:1 ~used:0 in
  let safe_index xs =
    if Array.for_all (fun x -> x = 0) xs then 0.0
    else jain_index (Array.map float_of_int xs)
  in
  {
    wins;
    transmissions;
    total_slots;
    completed_rounds;
    jain_wins = safe_index wins;
    jain_energy = safe_index transmissions;
  }
