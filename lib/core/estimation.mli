(** The jamming-robust size/window estimator (Function 2, §2.3).

    Round [r = 1, 2, …] consists of [2^r] slots in which every station
    transmits with probability [2^−2^r].  When a round produces at least
    [L] [Null]s, its index is returned.

    Lemma 2.8 (for [L = 2], [n ≥ 115]): w.h.p. the function either
    produces a [Single] on the channel (electing a leader on the spot) or
    returns [i] with [log log n − 1 ≤ i ≤ max{log log n, log T} + 1], in
    [O(max{log n, T})] slots, against any (T, 1−ε)-bounded adversary.
    Intuition: while [2^−2^r ≥ 1/√n] a [Null] is vanishingly unlikely, so
    small rounds cannot return; once the round is long enough the
    adversary cannot jam it all, and with [p ≤ 1/n²] the exposed slots
    are [Null] w.h.p. *)

module Logic : sig
  type t

  val create : threshold:int -> t
  (** [threshold] is the paper's [L]; the paper uses [L = 2]. *)

  val round : t -> int
  (** Current round index (≥ 1). *)

  val tx_prob : t -> float
  (** [2^−2^round]. *)

  val finished : t -> int option
  (** [Some r] once a round has accumulated [threshold] Nulls. *)

  val singled : t -> bool
  (** Whether a [Single] occurred (leader elected during estimation). *)

  val on_state : t -> Jamming_channel.Channel.state -> unit
end

val uniform : ?threshold:int -> unit -> Jamming_station.Uniform.factory
(** Estimation as a uniform protocol: reports [Elected] on [Single];
    after returning a round it keeps probability 0 (the caller is
    expected to stop it — used standalone only in tests/experiments). *)

val run_logic :
  threshold:int ->
  states:Jamming_channel.Channel.state list ->
  [ `Returned of int | `Singled | `Running of Logic.t ]
(** Pure replay helper for tests: feed a state sequence. *)
