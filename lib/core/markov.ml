module Sample = Jamming_prng.Sample

type result = { expected_slots : float; states : int; truncation_mass : float }

let expected_election_time ~n ~a ?(margin = 8.0) () =
  if n < 1 then invalid_arg "Markov: n must be >= 1";
  if a < 1 then invalid_arg "Markov: a must be >= 1";
  if not (margin > 0.0) then invalid_arg "Markov: margin must be positive";
  let u0 = Float.log2 (float_of_int n) in
  let u_top = u0 +. (0.5 *. Float.log2 (float_of_int a)) +. margin in
  let k_max = int_of_float (Float.ceil (float_of_int a *. u_top)) in
  let states = k_max + 1 in
  let p_null = Array.make states 0.0 and p_coll = Array.make states 0.0 in
  for k = 0 to k_max do
    let p = Float.exp2 (-.float_of_int k /. float_of_int a) in
    p_null.(k) <- Sample.p_zero ~n ~p;
    p_coll.(k) <- Sample.p_many ~n ~p
  done;
  (* (I - Q) h = 1, with Null: k -> max(k-a, 0), Collision: k -> min(k+1, k_max). *)
  let build_matrix () =
    Array.init states (fun k ->
        let row = Array.make states 0.0 in
        row.(k) <- 1.0;
        let down = Int.max (k - a) 0 in
        let up = Int.min (k + 1) k_max in
        row.(down) <- row.(down) -. p_null.(k);
        row.(up) <- row.(up) -. p_coll.(k);
        row)
  in
  let h = Jamming_stats.Linalg.solve (build_matrix ()) (Array.make states 1.0) in
  (* Probability of touching the boundary k_max before absorption: same
     chain, boundary row pinned to 1, zero running reward. *)
  let reach_matrix = build_matrix () in
  reach_matrix.(k_max) <- Array.init states (fun j -> if j = k_max then 1.0 else 0.0);
  let rhs = Array.make states 0.0 in
  rhs.(k_max) <- 1.0;
  let g = Jamming_stats.Linalg.solve reach_matrix rhs in
  { expected_slots = h.(0); states; truncation_mass = g.(0) }
