let station ?on_phase ?config () =
  Notification.station ?on_phase (Notification.sub_of_uniform (Lesu.uniform ?config ()))

let pool ?on_phase ?config () = Notification.pool ?on_phase (Lesu.flat_sub ?config ())
