let station ?on_phase ~eps () =
  Notification.station ?on_phase (Notification.sub_of_uniform (Lesk.uniform ~eps))

let pool ?on_phase ~eps () = Notification.pool ?on_phase (Lesk.flat_sub ~eps ())
