module Channel = Jamming_channel.Channel
module Station = Jamming_station.Station
module Uniform = Jamming_station.Uniform
module Prng = Jamming_prng.Prng

type sub = {
  sub_decide : unit -> Station.action;
  sub_observe : perceived:Channel.state -> transmitted:bool -> unit;
}

type sub_factory = rng:Prng.t -> sub

let sub_of_uniform factory ~rng =
  let logic = factory () in
  {
    sub_decide =
      (fun () ->
        let p = logic.Uniform.tx_prob () in
        if Prng.bool rng ~p then Station.Transmit else Station.Listen);
    sub_observe =
      (fun ~perceived ~transmitted:_ -> ignore (logic.Uniform.on_state perceived));
  }

type phase =
  | Phase_a1
  | Phase_a2
  | Phase_blocking
  | Phase_announcing
  | Phase_done of Station.status

let pp_phase ppf = function
  | Phase_a1 -> Format.pp_print_string ppf "A1"
  | Phase_a2 -> Format.pp_print_string ppf "A2"
  | Phase_blocking -> Format.pp_print_string ppf "blocking"
  | Phase_announcing -> Format.pp_print_string ppf "announcing"
  | Phase_done st -> Format.fprintf ppf "done(%a)" Station.pp_status st

let is_single = Channel.equal_state Channel.Single
let is_null = Channel.equal_state Channel.Null

let station ?on_phase factory ~id ~rng =
  let phase = ref Phase_a1 in
  (* The sub-instance of the current phase, tagged with the generation it
     was started in; restarted fresh at every interval boundary (§3). *)
  let current_sub : (int * sub) option ref = ref None in
  let transition ~slot next =
    current_sub := None;
    phase := next;
    match on_phase with None -> () | Some f -> f ~id ~slot next
  in
  let sub_for ~generation ~offset =
    match !current_sub with
    | Some (g, s) when g = generation -> Some s
    | _ ->
        if offset = 0 then begin
          let s = factory ~rng:(Prng.split rng) in
          current_sub := Some (generation, s);
          Some s
        end
        else None (* joined mid-interval: sit the rest of it out *)
  in
  let decide ~slot =
    match Intervals.classify slot, !phase with
    | Intervals.C1 { generation; offset }, Phase_a1
    | Intervals.C2 { generation; offset }, Phase_a2 -> (
        match sub_for ~generation ~offset with
        | Some s -> s.sub_decide ()
        | None -> Station.Listen)
    | Intervals.C1 _, Phase_blocking -> Station.Transmit
    | Intervals.C3 _, Phase_announcing -> Station.Transmit
    | (Intervals.Idle | Intervals.C1 _ | Intervals.C2 _ | Intervals.C3 _), _ ->
        Station.Listen
  in
  let observe ~slot ~perceived ~transmitted =
    match Intervals.classify slot with
    | Intervals.Idle -> ()
    | Intervals.C1 { generation; _ } -> (
        match !phase with
        | Phase_a1 ->
            (match !current_sub with
            | Some (g, s) when g = generation -> s.sub_observe ~perceived ~transmitted
            | Some _ | None -> ());
            (* A listener hearing the first C1-Single knows it lost. *)
            if is_single perceived && not transmitted then transition ~slot Phase_a2
        | Phase_announcing ->
            (* Blockers keep C1 busy; once they are gone the first
               non-jammed C1 slot is Null and the leader may terminate. *)
            if is_null perceived then transition ~slot (Phase_done Station.Leader)
        | Phase_a2 | Phase_blocking | Phase_done _ -> ())
    | Intervals.C2 { generation; _ } -> (
        match !phase with
        | Phase_a1 ->
            (* Only the C1-Single transmitter can still be here when a
               C2-Single occurs: it just learnt it is the leader. *)
            if is_single perceived && not transmitted then
              transition ~slot Phase_announcing
        | Phase_a2 ->
            (match !current_sub with
            | Some (g, s) when g = generation -> s.sub_observe ~perceived ~transmitted
            | Some _ | None -> ());
            if is_single perceived && not transmitted then
              transition ~slot Phase_blocking
        | Phase_blocking | Phase_announcing | Phase_done _ -> ())
    | Intervals.C3 _ -> (
        match !phase with
        | Phase_a2 | Phase_blocking ->
            (* Only the leader transmits in C3: its Single is the
               termination signal for every non-leader. *)
            if is_single perceived && not transmitted then
              transition ~slot (Phase_done Station.Non_leader)
        | Phase_a1 | Phase_announcing | Phase_done _ -> ())
  in
  let status () =
    match !phase with
    | Phase_a1 -> Station.Undecided
    | Phase_a2 | Phase_blocking -> Station.Non_leader
    | Phase_announcing -> Station.Leader
    | Phase_done st -> st
  in
  let finished () = match !phase with Phase_done _ -> true | _ -> false in
  { Station.id; decide; observe; status; finished }
