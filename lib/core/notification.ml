module Channel = Jamming_channel.Channel
module Station = Jamming_station.Station
module Uniform = Jamming_station.Uniform
module Prng = Jamming_prng.Prng

type sub = {
  sub_decide : unit -> Station.action;
  sub_observe : perceived:Channel.state -> transmitted:bool -> unit;
}

type sub_factory = rng:Prng.t -> sub

let sub_of_uniform factory ~rng =
  let logic = factory () in
  {
    sub_decide =
      (fun () ->
        let p = logic.Uniform.tx_prob () in
        if Prng.bool rng ~p then Station.Transmit else Station.Listen);
    sub_observe =
      (fun ~perceived ~transmitted:_ -> ignore (logic.Uniform.on_state perceived));
  }

type phase =
  | Phase_a1
  | Phase_a2
  | Phase_blocking
  | Phase_announcing
  | Phase_done of Station.status

let pp_phase ppf = function
  | Phase_a1 -> Format.pp_print_string ppf "A1"
  | Phase_a2 -> Format.pp_print_string ppf "A2"
  | Phase_blocking -> Format.pp_print_string ppf "blocking"
  | Phase_announcing -> Format.pp_print_string ppf "announcing"
  | Phase_done st -> Format.fprintf ppf "done(%a)" Station.pp_status st

let is_single = Channel.equal_state Channel.Single
let is_null = Channel.equal_state Channel.Null

let station ?on_phase factory ~id ~rng =
  let phase = ref Phase_a1 in
  (* The sub-instance of the current phase, tagged with the generation it
     was started in; restarted fresh at every interval boundary (§3). *)
  let current_sub : (int * sub) option ref = ref None in
  (* [decide] and [observe] are always called with the same slot within a
     slot; [classify] is pure, so one memoized classification serves
     both calls instead of re-deriving the generation bracket twice. *)
  let memo_slot = ref (-1) in
  let memo_class = ref Intervals.Idle in
  let classify slot =
    if slot <> !memo_slot then begin
      memo_class := Intervals.classify slot;
      memo_slot := slot
    end;
    !memo_class
  in
  let transition ~slot next =
    current_sub := None;
    phase := next;
    match on_phase with None -> () | Some f -> f ~id ~slot next
  in
  let sub_for ~generation ~offset =
    match !current_sub with
    | Some (g, s) when g = generation -> Some s
    | _ ->
        if offset = 0 then begin
          let s = factory ~rng:(Prng.split rng) in
          current_sub := Some (generation, s);
          Some s
        end
        else None (* joined mid-interval: sit the rest of it out *)
  in
  let decide ~slot =
    match classify slot, !phase with
    | Intervals.C1 { generation; offset }, Phase_a1
    | Intervals.C2 { generation; offset }, Phase_a2 -> (
        match sub_for ~generation ~offset with
        | Some s -> s.sub_decide ()
        | None -> Station.Listen)
    | Intervals.C1 _, Phase_blocking -> Station.Transmit
    | Intervals.C3 _, Phase_announcing -> Station.Transmit
    | (Intervals.Idle | Intervals.C1 _ | Intervals.C2 _ | Intervals.C3 _), _ ->
        Station.Listen
  in
  let observe ~slot ~perceived ~transmitted =
    match classify slot with
    | Intervals.Idle -> ()
    | Intervals.C1 { generation; _ } -> (
        match !phase with
        | Phase_a1 ->
            (match !current_sub with
            | Some (g, s) when g = generation -> s.sub_observe ~perceived ~transmitted
            | Some _ | None -> ());
            (* A listener hearing the first C1-Single knows it lost. *)
            if is_single perceived && not transmitted then transition ~slot Phase_a2
        | Phase_announcing ->
            (* Blockers keep C1 busy; once they are gone the first
               non-jammed C1 slot is Null and the leader may terminate. *)
            if is_null perceived then transition ~slot (Phase_done Station.Leader)
        | Phase_a2 | Phase_blocking | Phase_done _ -> ())
    | Intervals.C2 { generation; _ } -> (
        match !phase with
        | Phase_a1 ->
            (* Only the C1-Single transmitter can still be here when a
               C2-Single occurs: it just learnt it is the leader. *)
            if is_single perceived && not transmitted then
              transition ~slot Phase_announcing
        | Phase_a2 ->
            (match !current_sub with
            | Some (g, s) when g = generation -> s.sub_observe ~perceived ~transmitted
            | Some _ | None -> ());
            if is_single perceived && not transmitted then
              transition ~slot Phase_blocking
        | Phase_blocking | Phase_announcing | Phase_done _ -> ())
    | Intervals.C3 _ -> (
        match !phase with
        | Phase_a2 | Phase_blocking ->
            (* Only the leader transmits in C3: its Single is the
               termination signal for every non-leader. *)
            if is_single perceived && not transmitted then
              transition ~slot (Phase_done Station.Non_leader)
        | Phase_a1 | Phase_announcing | Phase_done _ -> ())
  in
  let status () =
    match !phase with
    | Phase_a1 -> Station.Undecided
    | Phase_a2 | Phase_blocking -> Station.Non_leader
    | Phase_announcing -> Station.Leader
    | Phase_done st -> st
  in
  let finished () = match !phase with Phase_done _ -> true | _ -> false in
  { Station.id; decide; observe; status; finished }

(* ------------------------------------------------------------------ *)
(* Flat station pool: the whole population's Notification state in     *)
(* struct-of-arrays form, driven through {!Station.pool}.  The closure *)
(* [station] above is kept verbatim as the differential oracle; the    *)
(* pool reproduces its random streams bit for bit (same split points,  *)
(* same draw counts), asserted in test_notification.ml.                *)
(* ------------------------------------------------------------------ *)

type subpool = {
  sp_reset : int -> unit;
  sp_tx_prob : int -> float;
  sp_on_state : int -> Channel.state -> unit;
}

type flat_sub = {
  fs_name : string;
  fs_make : n:int -> subpool;
}

(* Phase encoding for the flat arrays; [>= ph_done_leader] = finished. *)
let ph_a1 = 0
let ph_a2 = 1
let ph_blocking = 2
let ph_announcing = 3
let ph_done_leader = 4
let ph_done_nonleader = 5

let phase_of_code = function
  | 0 -> Phase_a1
  | 1 -> Phase_a2
  | 2 -> Phase_blocking
  | 3 -> Phase_announcing
  | 4 -> Phase_done Station.Leader
  | _ -> Phase_done Station.Non_leader

let pool ?on_phase (fsub : flat_sub) : Station.pool_factory =
 fun ~n ~rng ->
  if n < 0 then invalid_arg "Notification.pool: n must be >= 0";
  (* One private stream per station, split in the same order as
     [Engine.make_stations] so pooled runs share the closure path's
     streams bit for bit. *)
  let st_rng = Array.init n (fun _ -> Prng.split rng) in
  let sub_rng = Array.make n (Prng.create ~seed:0) in
  let phase = Array.make n ph_a1 in
  (* Generation whose sub-instance station [i] currently holds; -1 when
     none.  Cleared at every phase transition, exactly as the closure
     path clears [current_sub]. *)
  let sub_gen = Array.make n (-1) in
  let sp = fsub.fs_make ~n in
  let active = Array.init n (fun i -> i) in
  let n_active = ref n in
  let n_done = ref 0 in
  let n_leaders = ref 0 in
  (* Active stations still in A1.  While EVERY active station is in A1,
     slots outside C1 are population-wide no-ops — A1 stations neither
     draw nor observe their sub there, and the only transition out of
     A1 needs a Single perceived by a listener, impossible with zero
     transmitters on the fault-free path — so the batch entry points
     skip the scan entirely.  (Only the batch path skips: the faulty
     per-station path must keep its sensing draws aligned.) *)
  let n_a1 = ref n in
  (* Energy bookkeeping: notification stations never sleep, so station
     [i] is awake from the first slot the pool sees until it finishes
     (inclusive of the finishing slot). *)
  let first_slot = ref min_int in
  let finish_at = Array.make n max_int in
  (* Slot classification, computed once per slot for the population. *)
  let cur = Intervals.cursor () in
  let cur_kind = ref Intervals.kind_idle in
  let cur_gen = ref 0 in
  let cur_off = ref 0 in
  let begin_slot ~slot =
    if !first_slot = min_int then first_slot := slot;
    Intervals.locate cur slot;
    cur_kind := Intervals.kind cur;
    cur_gen := Intervals.generation cur;
    cur_off := Intervals.offset cur
  in
  let transition ~slot i next =
    let old = phase.(i) in
    if old = ph_a1 then decr n_a1;
    if old = ph_announcing then decr n_leaders;
    if next = ph_announcing || next = ph_done_leader then incr n_leaders;
    if next >= ph_done_leader then begin
      incr n_done;
      finish_at.(i) <- slot
    end;
    phase.(i) <- next;
    sub_gen.(i) <- -1;
    match on_phase with None -> () | Some f -> f ~id:i ~slot (phase_of_code next)
  in
  (* Mirrors [sub_for]: reuse the sub started this generation, start a
     fresh one (fresh stream split off the station's generator) only at
     offset 0, otherwise sit the interval out. *)
  let ensure_sub i =
    if sub_gen.(i) = !cur_gen then true
    else if !cur_off = 0 then begin
      sub_rng.(i) <- Prng.split st_rng.(i);
      sp.sp_reset i;
      sub_gen.(i) <- !cur_gen;
      true
    end
    else false
  in
  let draw i =
    let p = sp.sp_tx_prob i in
    if Prng.bool sub_rng.(i) ~p then Station.Transmit else Station.Listen
  in
  let decide_i i =
    let k = !cur_kind in
    let ph = phase.(i) in
    if (k = Intervals.kind_c1 && ph = ph_a1) || (k = Intervals.kind_c2 && ph = ph_a2)
    then (if ensure_sub i then draw i else Station.Listen)
    else if
      (k = Intervals.kind_c1 && ph = ph_blocking)
      || (k = Intervals.kind_c3 && ph = ph_announcing)
    then Station.Transmit
    else Station.Listen
  in
  let observe_i ~slot ~perceived ~transmitted i =
    let k = !cur_kind in
    if k = Intervals.kind_c1 then begin
      let ph = phase.(i) in
      if ph = ph_a1 then begin
        if sub_gen.(i) = !cur_gen then sp.sp_on_state i perceived;
        if is_single perceived && not transmitted then transition ~slot i ph_a2
      end
      else if ph = ph_announcing then begin
        if is_null perceived then transition ~slot i ph_done_leader
      end
    end
    else if k = Intervals.kind_c2 then begin
      let ph = phase.(i) in
      if ph = ph_a1 then begin
        if is_single perceived && not transmitted then transition ~slot i ph_announcing
      end
      else if ph = ph_a2 then begin
        if sub_gen.(i) = !cur_gen then sp.sp_on_state i perceived;
        if is_single perceived && not transmitted then transition ~slot i ph_blocking
      end
    end
    else if k = Intervals.kind_c3 then begin
      let ph = phase.(i) in
      if ph = ph_a2 || ph = ph_blocking then
        if is_single perceived && not transmitted then
          transition ~slot i ph_done_nonleader
    end
  in
  (* Stable within a slot: [cur_kind] only moves in [begin_slot] and
     phases only move in the observe pass, so decide and observe of one
     slot always agree on whether it is skippable. *)
  let all_a1_noop () = !cur_kind <> Intervals.kind_c1 && !n_a1 = !n_active in
  let pool_decide_all ~slot:_ ~actions ~tx_counts =
    if all_a1_noop () then 0
    else begin
      let txs = ref 0 in
      for k = 0 to !n_active - 1 do
        let i = active.(k) in
        let a = decide_i i in
        actions.(i) <- a;
        match a with
        | Station.Transmit ->
            incr txs;
            tx_counts.(i) <- tx_counts.(i) + 1
        | Station.Listen | Station.Sleep _ -> ()
      done;
      !txs
    end
  in
  let pool_observe_all ~slot ~actions ~tx ~rx =
    if all_a1_noop () then ()
    else begin
      let kept = ref 0 in
      for k = 0 to !n_active - 1 do
        let i = active.(k) in
        let transmitted =
          match actions.(i) with
          | Station.Transmit -> true
          | Station.Listen | Station.Sleep _ -> false
        in
        let perceived = if transmitted then tx else rx in
        observe_i ~slot ~perceived ~transmitted i;
        if phase.(i) < ph_done_leader then begin
          active.(!kept) <- i;
          incr kept
        end
      done;
      n_active := !kept
    end
  in
  {
    Station.pool_size = n;
    pool_begin_slot = begin_slot;
    pool_decide_all;
    pool_observe_all;
    pool_decide = (fun ~slot:_ i -> decide_i i);
    pool_observe = (fun ~slot ~perceived ~transmitted i -> observe_i ~slot ~perceived ~transmitted i);
    pool_status =
      (fun i ->
        let ph = phase.(i) in
        if ph = ph_a1 then Station.Undecided
        else if ph = ph_a2 || ph = ph_blocking || ph = ph_done_nonleader then
          Station.Non_leader
        else Station.Leader);
    pool_finished = (fun i -> phase.(i) >= ph_done_leader);
    pool_all_finished = (fun () -> !n_done = n);
    pool_leaders = (fun () -> !n_leaders);
    pool_awake =
      Some
        (fun ~until i ->
          if !first_slot = min_int then 0
          else
            let stop =
              if finish_at.(i) = max_int then until
              else Int.min until (finish_at.(i) + 1)
            in
            Int.max 0 (stop - !first_slot));
  }
