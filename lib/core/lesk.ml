module Channel = Jamming_channel.Channel
module Uniform = Jamming_station.Uniform

let config_valid ~eps = eps > 0.0 && eps <= 1.0

module Logic = struct
  type t = { eps : float; a : float; mutable u : float; mutable elected : bool }

  let create ?(initial_u = 0.0) ?a ~eps () =
    if not (config_valid ~eps) then invalid_arg "Lesk.Logic.create: eps must lie in (0, 1]";
    if initial_u < 0.0 then invalid_arg "Lesk.Logic.create: initial_u must be >= 0";
    let a = match a with Some v -> v | None -> 8.0 /. eps in
    if not (a >= 1.0) then invalid_arg "Lesk.Logic.create: a must be >= 1";
    { eps; a; u = initial_u; elected = false }

  let eps t = t.eps
  let a t = t.a
  let u t = t.u
  let tx_prob t = Float.exp2 (-.t.u)
  let elected t = t.elected

  let on_state t state =
    match state with
    | Channel.Null -> t.u <- Float.max (t.u -. 1.0) 0.0
    | Channel.Collision -> t.u <- t.u +. (1.0 /. t.a)
    | Channel.Single -> t.elected <- true
end

let uniform ?a ~eps () =
  let logic = Logic.create ?a ~eps () in
  {
    Uniform.name = Printf.sprintf "LESK(eps=%.3g)" eps;
    tx_prob = (fun () -> Logic.tx_prob logic);
    on_state =
      (fun state ->
        Logic.on_state logic state;
        if Logic.elected logic then Uniform.Elected else Uniform.Continue);
  }

let station ~eps = Uniform.distributed (uniform ~eps)

(* The same state machine as [Logic], written as a pure transition on
   the estimate [u] so the aggregate engine can drive a whole
   population through one description.  Float updates mirror
   [Logic.on_state] operation for operation, so a trajectory of channel
   states produces bit-identical [u] values (asserted in the tests). *)
let aggregate ?a ~eps () =
  if not (config_valid ~eps) then invalid_arg "Lesk.aggregate: eps must lie in (0, 1]";
  let a = match a with Some v -> v | None -> 8.0 /. eps in
  if not (a >= 1.0) then invalid_arg "Lesk.aggregate: a must be >= 1";
  Jamming_sim.Aggregate.Packed
    {
      Jamming_sim.Aggregate.name = Printf.sprintf "LESK(eps=%.3g)" eps;
      init = 0.0;
      tx_prob = (fun u -> Float.exp2 (-.u));
      step =
        (fun u state ->
          match state with
          | Channel.Null ->
              Jamming_sim.Aggregate.Continue (Float.max (u -. 1.0) 0.0)
          | Channel.Collision -> Continue (u +. (1.0 /. a))
          | Channel.Single -> Elected);
      compare = Float.compare;
    }

(* [Logic] in population form for [Notification.pool]: the estimate [u]
   of every station in one float array.  Float updates mirror
   [Logic.on_state] operation for operation; the transmission
   probability is cached per station and recomputed — with the same
   [Float.exp2 (-.u)] expression [Logic.tx_prob] uses — only when [u]
   changes, so the cached value stays bit-identical to what the closure
   instance would compute fresh (skipping the recompute when the update
   left [u] unchanged, e.g. Null at u = 0, is sound for the same
   reason).  The [elected] flag is not tracked: [sub_of_uniform]
   discards it and [Logic.tx_prob] never reads it, so it is
   unobservable through the Notification transformation. *)
let flat_sub ?a ~eps () =
  if not (config_valid ~eps) then invalid_arg "Lesk.flat_sub: eps must lie in (0, 1]";
  let a = match a with Some v -> v | None -> 8.0 /. eps in
  if not (a >= 1.0) then invalid_arg "Lesk.flat_sub: a must be >= 1";
  {
    Notification.fs_name = Printf.sprintf "LESK(eps=%.3g)" eps;
    fs_make =
      (fun ~n ->
        let u = Array.make n 0.0 in
        let p = Array.make n 1.0 in
        (* Station estimates move in lockstep except around Singles, so
           one memo entry serves nearly every station on a jammed slot;
           [exp2] is pure, so the memoized float is the bit the closure
           path would have computed. *)
        let memo_u = ref Float.nan and memo_p = ref 0.0 in
        let exp2m v =
          if v = !memo_u then !memo_p
          else begin
            let r = Float.exp2 (-.v) in
            memo_u := v;
            memo_p := r;
            r
          end
        in
        {
          Notification.sp_reset =
            (fun i ->
              u.(i) <- 0.0;
              p.(i) <- exp2m 0.0);
          sp_tx_prob = (fun i -> p.(i));
          sp_on_state =
            (fun i state ->
              match state with
              | Channel.Null ->
                  let u' = Float.max (u.(i) -. 1.0) 0.0 in
                  if u' <> u.(i) then begin
                    u.(i) <- u';
                    p.(i) <- exp2m u'
                  end
              | Channel.Collision ->
                  u.(i) <- u.(i) +. (1.0 /. a);
                  p.(i) <- exp2m u.(i)
              | Channel.Single -> ());
        });
  }

let expected_time_bound ~eps ~n ~window =
  let log2n = Float.max 1.0 (Float.log2 (float_of_int (Int.max 2 n))) in
  (* The theorem is stated for eps < 1; clamp the log(1/eps) factor away
     from 0 so the shape stays usable as a normaliser at eps = 1. *)
  let log_inv_eps = Float.max 0.1 (Float.log2 (1.0 /. eps)) in
  Float.max (float_of_int window) (log2n /. (eps *. eps *. eps *. log_inv_eps))
