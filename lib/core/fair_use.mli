(** Fair use of the wireless channel — the third building block the
    paper's conclusions (§4) propose: elect a coordinator, let it serve,
    re-elect, repeatedly, all under one continuing (T, 1−ε)-bounded
    adversary.

    Because every paper protocol is uniform and memoryless across
    elections, each round's winner is a uniformly random station, so
    leadership converges to a fair split.  This module measures it: it
    chains full elections on the exact engine (station identities
    matter here), tracks per-station wins and transmissions, and scores
    both with Jain's fairness index
    [J(x) = (Σxᵢ)² / (n·Σxᵢ²)] — 1 is perfectly fair, [1/n] is a
    monopoly. *)

type outcome = {
  wins : int array;  (** elections won, per station *)
  transmissions : int array;  (** energy spent, per station *)
  total_slots : int;
  completed_rounds : int;
  jain_wins : float;
  jain_energy : float;
}

val jain_index : float array -> float
(** Requires a non-empty array of non-negative values, not all zero. *)

val run :
  ?eps_protocol:float ->
  rounds:int ->
  n:int ->
  eps:float ->
  rng:Jamming_prng.Prng.t ->
  adversary:Jamming_adversary.Adversary.t ->
  budget:Jamming_adversary.Budget.t ->
  max_slots:int ->
  unit ->
  outcome
(** [rounds] consecutive LESK([eps_protocol], default [eps]) elections
    over the full population of [n ≥ 2] stations (strong-CD, exact
    engine).  The jam budget spans the whole sequence; [max_slots]
    bounds it.  Rounds after the cap are simply not played
    ([completed_rounds] reports how many were). *)
