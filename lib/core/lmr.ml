module Channel = Jamming_channel.Channel
module Station = Jamming_station.Station
module Prng = Jamming_prng.Prng

let tie_rounds = 16

let bits n =
  let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
  go 0 n

let rounds ~n =
  if n < 1 then invalid_arg "Lmr.rounds: need n >= 1";
  Int.max 2 (bits n + 4)

let search_slots ~n =
  let rec go s steps = if s <= 1 then steps else go ((s + 1) / 2) (steps + 1) in
  go (rounds ~n) 0

let awake_bound ~n = search_slots ~n + tie_rounds + 2

(* One uniform draw yields the whole geometric level: P[level = k] =
   2^-k, read off the binary expansion of [u] by repeated doubling.
   Capped at [rounds] so the search range is closed. *)
let draw_level rng ~rounds =
  let u = Prng.float rng in
  let rec go level u =
    if level >= rounds then rounds
    else if u < 0.5 then go (level + 1) (2.0 *. u)
    else level
  in
  go 1 u

(* Per-station protocol state.  The closure factory owns one record per
   station; the pool owns an array of them — both drive the same
   [decide_one]/[observe_one] transitions over the station's private
   stream, which is what makes the two paths bit-identical. *)
type phase =
  | Start  (* draw a fresh level at the next decide *)
  | Search  (* binary search for the population's maximum level *)
  | Tie  (* knockout tournament among the max-level contenders *)
  | Done

type state = {
  mutable phase : phase;
  mutable level : int;
  mutable lo : int;
  mutable hi : int;
  mutable mid : int;  (* probe threshold pending between decide and observe *)
  mutable active : bool;  (* still standing in the tournament *)
  mutable tentative : bool;  (* crowned by a tie-slot Single *)
  mutable announce_at : int;  (* absolute slot of the announcement *)
  mutable status : Station.status;
}

let fresh_state () =
  {
    phase = Start;
    level = 0;
    lo = 0;
    hi = 0;
    mid = 0;
    active = false;
    tentative = false;
    announce_at = 0;
    status = Station.Undecided;
  }

let search_decide st =
  st.mid <- (st.lo + st.hi + 1) / 2;
  if st.level >= st.mid then Station.Transmit else Station.Listen

let decide_one st ~rng ~rounds ~slot =
  match st.phase with
  | Start ->
      st.level <- draw_level rng ~rounds;
      st.lo <- 1;
      st.hi <- rounds;
      st.phase <- Search;
      search_decide st
  | Search -> search_decide st
  | Tie ->
      if slot = st.announce_at then
        if st.tentative then Station.Transmit else Station.Listen
      else if st.tentative || not st.active then Station.Sleep st.announce_at
      else if Prng.bool rng ~p:0.5 then Station.Transmit
      else Station.Listen
  | Done -> Station.Listen (* engine never decides a finished station *)

let observe_one st ~slot ~perceived ~transmitted =
  match st.phase with
  | Search ->
      (match perceived with
      | Channel.Null -> st.hi <- st.mid - 1
      | Channel.Single | Channel.Collision -> st.lo <- st.mid);
      if st.lo >= st.hi then begin
        (* Search closed on the threshold estimate m' = lo: stations at
           level >= m' contend; everyone else powers down until the
           announcement. *)
        st.phase <- Tie;
        st.active <- st.level >= st.lo;
        st.tentative <- false;
        st.announce_at <- slot + 1 + tie_rounds
      end
  | Tie ->
      if slot = st.announce_at then (
        match perceived with
        | Channel.Single ->
            st.status <- (if transmitted then Station.Leader else Station.Non_leader);
            st.phase <- Done
        | Channel.Null | Channel.Collision -> st.phase <- Start)
      else (
        match perceived with
        | Channel.Single ->
            (* Exactly one contender transmitted alone: it is crowned
               tentative leader, every listener drops out.  At most one
               tentative per cycle — after the crowning nobody active
               remains, so no later tie Single can occur. *)
            if transmitted then st.tentative <- true else st.active <- false
        | Channel.Collision -> if not transmitted then st.active <- false
        | Channel.Null -> ())
  | Start | Done -> () (* only reachable under lifecycle faults; ignore *)

let name = "LMR"

let station ~n =
  let r = rounds ~n in
  fun ~id ~rng ->
    let st = fresh_state () in
    {
      Station.id;
      decide = (fun ~slot -> decide_one st ~rng ~rounds:r ~slot);
      observe =
        (fun ~slot ~perceived ~transmitted -> observe_one st ~slot ~perceived ~transmitted);
      status = (fun () -> st.status);
      finished = (fun () -> match st.phase with Done -> true | _ -> false);
    }

let pool : Station.pool_factory =
 fun ~n ~rng ->
  if n < 1 then invalid_arg "Lmr.pool: need n >= 1";
  let r = rounds ~n in
  (* Same split order as [Engine.make_stations], so each station's
     private stream is bit-identical to its closure twin's. *)
  let rngs = Array.init n (fun _ -> Prng.split rng) in
  let sts = Array.init n (fun _ -> fresh_state ()) in
  let awake = Array.make n 0 in
  let wake_abs = Array.make n min_int in
  let alive = Array.init n Fun.id in
  let n_alive = ref n in
  let leaders = ref 0 in
  let finished_count = ref 0 in
  let is_done i = match sts.(i).phase with Done -> true | _ -> false in
  let observe_station i ~slot ~perceived ~transmitted =
    let was_done = is_done i in
    observe_one sts.(i) ~slot ~perceived ~transmitted;
    if (not was_done) && is_done i then begin
      incr finished_count;
      if Station.equal_status sts.(i).status Station.Leader then incr leaders
    end
  in
  {
    Station.pool_size = n;
    pool_begin_slot = (fun ~slot:_ -> ());
    pool_decide_all =
      (fun ~slot ~actions ~tx_counts ->
        let transmitters = ref 0 in
        for k = 0 to !n_alive - 1 do
          let i = alive.(k) in
          if wake_abs.(i) > slot then actions.(i) <- Station.Listen
          else
            match decide_one sts.(i) ~rng:rngs.(i) ~rounds:r ~slot with
            | Station.Transmit ->
                actions.(i) <- Station.Transmit;
                tx_counts.(i) <- tx_counts.(i) + 1;
                awake.(i) <- awake.(i) + 1;
                incr transmitters
            | Station.Listen ->
                actions.(i) <- Station.Listen;
                awake.(i) <- awake.(i) + 1
            | Station.Sleep until ->
                if until <= slot then
                  invalid_arg "Lmr.pool: Sleep must target a slot after the current one";
                (* Sleep is absorbed here: the batch engine never sees
                   it, and this slot does not count as awake. *)
                wake_abs.(i) <- until;
                actions.(i) <- Station.Listen
        done;
        !transmitters);
    pool_observe_all =
      (fun ~slot ~actions ~tx ~rx ->
        let k = ref 0 in
        while !k < !n_alive do
          let i = alive.(!k) in
          if wake_abs.(i) > slot then incr k
          else begin
            let transmitted =
              match actions.(i) with Station.Transmit -> true | _ -> false
            in
            observe_station i ~slot
              ~perceived:(if transmitted then tx else rx)
              ~transmitted;
            if is_done i then begin
              alive.(!k) <- alive.(!n_alive - 1);
              decr n_alive
            end
            else incr k
          end
        done);
    pool_decide = (fun ~slot i -> decide_one sts.(i) ~rng:rngs.(i) ~rounds:r ~slot);
    pool_observe =
      (fun ~slot ~perceived ~transmitted i -> observe_station i ~slot ~perceived ~transmitted);
    pool_status = (fun i -> sts.(i).status);
    pool_finished = is_done;
    pool_all_finished = (fun () -> !finished_count = n);
    pool_leaders = (fun () -> !leaders);
    pool_awake = Some (fun ~until:_ i -> awake.(i));
  }
