module Station = Jamming_station.Station

let station ~cap factory ~id ~rng =
  if cap < 0 then invalid_arg "Energy_cap.station: cap must be >= 0";
  let inner = factory ~id ~rng in
  let spent = ref 0 in
  {
    inner with
    Station.decide =
      (fun ~slot ->
        match inner.Station.decide ~slot with
        | Station.Transmit when !spent >= cap -> Station.Listen
        | Station.Transmit ->
            incr spent;
            Station.Transmit
        | Station.Listen -> Station.Listen);
  }

type outcome = { result : Jamming_sim.Metrics.result; exhausted : int }

let run_lesk ~cap ~n ~eps ~rng ~adversary ~budget ~max_slots () =
  let spent = Array.make n 0 in
  let counting ~id ~rng =
    let inner = station ~cap (Lesk.station ~eps) ~id ~rng in
    {
      inner with
      Station.decide =
        (fun ~slot ->
          let a = inner.Station.decide ~slot in
          if Station.equal_action a Station.Transmit then spent.(id) <- spent.(id) + 1;
          a);
    }
  in
  let stations = Jamming_sim.Engine.make_stations ~n ~rng counting in
  let result =
    Jamming_sim.Engine.run ~cd:Jamming_channel.Channel.Strong_cd ~adversary ~budget
      ~max_slots ~stations ()
  in
  let exhausted = Array.fold_left (fun acc s -> if s >= cap then acc + 1 else acc) 0 spent in
  { result; exhausted }
