module Station = Jamming_station.Station
module Energy = Jamming_energy.Energy

let station ~cap ~meter factory =
  if cap < 0 then invalid_arg "Energy_cap.station: cap must be >= 0";
  fun ~id ~rng ->
    let inner = factory ~id ~rng in
    {
      inner with
      Station.decide =
        (fun ~slot ->
          match inner.Station.decide ~slot with
          (* The meter counts every transmission the engine lets
             through, so the live read below sees exactly the slots
             this wrapper allowed on earlier slots. *)
          | Station.Transmit when Energy.Meter.tx meter id >= cap -> Station.Listen
          | (Station.Transmit | Station.Listen | Station.Sleep _) as a -> a);
    }

type outcome = { result : Jamming_sim.Metrics.result; exhausted : int }

let run_lesk ~cap ~n ~eps ~rng ~adversary ~budget ~max_slots () =
  let meter = Energy.Meter.create ~n in
  let capped = station ~cap ~meter (Lesk.station ~eps) in
  let stations = Jamming_sim.Engine.make_stations ~n ~rng capped in
  let result =
    Jamming_sim.Engine.run ~meter ~cd:Jamming_channel.Channel.Strong_cd ~adversary
      ~budget ~max_slots ~stations ()
  in
  let exhausted = ref 0 in
  for i = 0 to n - 1 do
    if Energy.Meter.tx meter i >= cap then incr exhausted
  done;
  { result; exhausted = !exhausted }
