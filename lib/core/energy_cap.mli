(** Energy-capped stations — probing the §1.3 energy discussion.

    The paper measures time and leaves energy analysis open ("we expect
    the energetic efficiency of our protocol should be similar to the
    leader election from [3]", §1.3; [13] is the authors' own
    energy-efficient election work).  This wrapper hard-caps each
    station's transmission count: once a station has transmitted [cap]
    times it keeps listening (and keeps its protocol state) but never
    transmits again.  Running LESK under shrinking caps maps how much
    per-station energy the protocol actually {e needs} — the E16 bench
    shows a sharp threshold near the expected per-station energy of E12.

    Capping breaks uniformity (stations differentiate by energy spent),
    so this runs on the exact engine. *)

val station :
  cap:int ->
  meter:Jamming_energy.Energy.Meter.t ->
  Jamming_station.Station.factory ->
  Jamming_station.Station.factory
(** Wrap a station factory: once the meter has counted [cap]
    transmissions for a station, its further [Transmit] decisions are
    downgraded to [Listen] (protocol state keeps evolving).  The cap is
    a predicate over [Energy.Meter.tx] — the engine the stations run on
    must be metering into the same [meter], which is what keeps the
    wrapper free of private counting.  Raises [Invalid_argument]
    {e immediately} when [cap < 0] (not when the factory is first
    applied). *)

type outcome = {
  result : Jamming_sim.Metrics.result;
  exhausted : int;  (** stations that hit the cap *)
}

val run_lesk :
  cap:int ->
  n:int ->
  eps:float ->
  rng:Jamming_prng.Prng.t ->
  adversary:Jamming_adversary.Adversary.t ->
  budget:Jamming_adversary.Budget.t ->
  max_slots:int ->
  unit ->
  outcome
(** LESK with every station capped, strong-CD exact engine. *)
