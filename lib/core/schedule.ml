module Channel = Jamming_channel.Channel
module Uniform = Jamming_station.Uniform

type step = Continue | Elected | Phase_done

type phase = {
  label : string;
  tx_prob : unit -> float;
  on_state : Channel.state -> step;
}

type t = (unit -> phase) Seq.t

let timeboxed ~label ~duration factory () =
  let logic = factory () in
  let n = duration () in
  if n < 1 then invalid_arg "Schedule.timeboxed: duration must be >= 1";
  let remaining = ref n in
  {
    label;
    tx_prob = (fun () -> logic.Uniform.tx_prob ());
    on_state =
      (fun state ->
        match logic.Uniform.on_state state with
        | Uniform.Elected -> Elected
        | Uniform.Continue ->
            decr remaining;
            if !remaining <= 0 then Phase_done else Continue);
  }

let of_list = List.to_seq

let repeat_indexed f =
  Seq.concat_map f (Seq.unfold (fun i -> Some (i, i + 1)) 1)

type runner_state =
  | Running of phase * t
  | Exhausted
  | Over  (** elected *)

let to_uniform ?(on_phase = fun _ -> ()) ~name schedule () =
  let start stream =
    match Seq.uncons stream with
    | Some (make, rest) ->
        let phase = make () in
        on_phase phase.label;
        Running (phase, rest)
    | None -> Exhausted
  in
  let state = ref (start schedule) in
  {
    Uniform.name;
    tx_prob =
      (fun () ->
        match !state with
        | Running (phase, _) -> phase.tx_prob ()
        | Exhausted | Over -> 0.0);
    on_state =
      (fun st ->
        match !state with
        | Exhausted | Over -> Uniform.Continue
        | Running (phase, rest) -> (
            match phase.on_state st with
            | Continue -> Uniform.Continue
            | Elected ->
                state := Over;
                Uniform.Elected
            | Phase_done ->
                state := start rest;
                Uniform.Continue));
  }
