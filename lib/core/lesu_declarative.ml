module Channel = Jamming_channel.Channel
module Uniform = Jamming_station.Uniform

(* The estimation phase computes t0 and leaves it in a ref that the
   (lazily constructed) LESK phases read when they start. *)
let estimation_phase ~config ~t0 () =
  let logic = Estimation.Logic.create ~threshold:config.Lesu.threshold in
  {
    Schedule.label = "estimation";
    tx_prob = (fun () -> Estimation.Logic.tx_prob logic);
    on_state =
      (fun state ->
        Estimation.Logic.on_state logic state;
        if Estimation.Logic.singled logic then Schedule.Elected
        else
          match Estimation.Logic.finished logic with
          | Some round ->
              t0 := config.Lesu.c *. Float.exp2 (float_of_int (1 + round));
              Schedule.Phase_done
          | None -> Schedule.Continue);
  }

let lesk_ladder ~t0 =
  Schedule.repeat_indexed (fun i ->
      Seq.init i (fun j0 ->
          let j = j0 + 1 in
          Schedule.timeboxed
            ~label:(Printf.sprintf "lesk(i=%d,j=%d)" i j)
            ~duration:(fun () -> Lesu.phase_duration ~t0:!t0 ~i ~j)
            (Lesk.uniform ~eps:(Lesu.eps_guess j))))

let uniform ?on_phase ?(config = Lesu.default_config) () () =
  if not (config.Lesu.c > 0.0) then invalid_arg "Lesu_declarative.uniform: c must be positive";
  let t0 = ref Float.nan in
  let schedule = Seq.cons (estimation_phase ~config ~t0) (lesk_ladder ~t0) in
  Schedule.to_uniform ?on_phase ~name:"LESU-declarative" schedule ()

let station ?config () = Uniform.distributed (uniform ?config ())
