(** LESU — Leader Election in Strong-CD with Unknown ε (Algorithm 2, §2.3).

    Neither [ε] nor [T] (nor [n]) is known.  LESU first runs
    {!Estimation} to learn [t₀ ≈ c·max{log n, T}] and then interleaves
    time-boxed executions of {!Lesk} with guessed tolerances
    [ε_j = 2^{−j/3}]: phase [i] runs [LESK(ε_j)] for
    [⌈3·2^i·t₀/j⌉] slots, for [j = 1 … i].  Any [Single] anywhere elects
    the leader.

    Theorem 2.9 (n ≥ 115): w.h.p. election in
    [O((log log(1/ε)/ε³)·log n)] when [T ≤ log n/(ε³ log(1/ε))], and in
    [O(max{log log(T/(ε log n)), log(1/ε)·log log(1/ε)}·T)] otherwise.

    The constant [c] is existentially quantified in the paper (via
    Theorem 2.6); here it is a configuration knob whose default is
    calibrated in EXPERIMENTS.md. *)

type config = {
  c : float;  (** multiplier for [t₀ = c·2^(1+Estimation(2))]; default 4.0 *)
  threshold : int;  (** Estimation's [L]; the paper uses 2 *)
}

val default_config : config

type stage =
  | Estimating of int  (** current estimation round *)
  | Electing of { i : int; j : int; eps_hat : float }
  | Done

module Logic : sig
  type t

  val create : ?config:config -> unit -> t
  val stage : t -> stage
  val t0 : t -> float option
  (** Available once estimation has returned. *)

  val tx_prob : t -> float
  val elected : t -> bool
  val on_state : t -> Jamming_channel.Channel.state -> unit
end

val uniform : ?config:config -> unit -> Jamming_station.Uniform.factory
val station : ?config:config -> unit -> Jamming_station.Station.factory

val aggregate : ?config:config -> unit -> Jamming_sim.Aggregate.packed
(** LESU as a pure protocol description for the population-counting
    {!Jamming_sim.Aggregate} engine.  The state carries the estimation
    progress or the current LESK phase; transitions mirror
    {!Logic.on_state} bit for bit. *)

val flat_sub : ?config:config -> unit -> Notification.flat_sub
(** LESU as a population sub-algorithm for {!Notification.pool}: stage
    codes and estimation/election progress in flat arrays, transitions
    mirroring {!Logic.on_state} bit for bit, transmission probabilities
    cached per station and recomputed with the exact {!Logic.tx_prob}
    expressions only when the state changes. *)

val eps_guess : int -> float
(** [eps_guess j = 2^{−j/3}], the tolerance sequence. *)

val phase_duration : t0:float -> i:int -> j:int -> int
(** [⌈3·2^i·t₀ / j⌉], clamped to avoid overflow. *)

val expected_time_bound : eps:float -> n:int -> window:int -> float
(** Theorem 2.9 shape (no hidden constant), for normalising plots. *)
