(** Slot taxonomy of the LESK analysis (§2.2).

    With [u₀ = log₂ n] and [a = 8/ε], every pre-election slot falls into
    exactly one class:
    - [IS] irregular silence: [u ≤ u₀ − log₂(2 ln a)] and state [Null];
    - [IC] irregular collision: [u ≥ u₀ + ½·log₂ a], state [Collision],
      not jammed;
    - [CS] correcting silence: [u ≥ u₀ + ½·log₂ a + 1] and state [Null];
    - [CC] correcting collision: [u ≤ u₀ − log₂(2 ln a)], state
      [Collision], not jammed;
    - [E] jammed by the adversary;
    - [R] regular: everything else.

    Lemma 2.3 proves [CS ≤ (IC + E)/a] and [CC ≤ a·IS + a·u₀], and
    Lemma 2.2 bounds the per-slot probabilities of IS and IC by [1/a²]
    and [1/a].  Experiment E11 checks all of these on measured runs.

    The tracker replays LESK's deterministic [u]-walk from the slot
    stream, so it can be attached to either engine via [on_slot]. *)

type counts = {
  is_ : int;  (** irregular silences *)
  ic : int;  (** irregular collisions *)
  cs : int;  (** correcting silences *)
  cc : int;  (** correcting collisions *)
  e : int;  (** jammed slots *)
  r : int;  (** regular slots *)
}

val total : counts -> int
val pp_counts : Format.formatter -> counts -> unit

type t

val create : eps:float -> n:int -> t
val on_slot : t -> Jamming_sim.Metrics.slot_record -> unit
val counts : t -> counts

val lemma_2_3_holds : counts -> u0:float -> a:float -> bool
(** The two deterministic inequalities of Lemma 2.3 (points 4 and 5). *)

val regular_lower_bound : counts -> u0:float -> a:float -> float
(** The right-hand side of inequality (⋆) in the proof of Theorem 2.6:
    [t − IS·(1+a) − (9/8)·IC − u₀·a − (1 + 1/a)·E]; the measured [R]
    must be at least this. *)
