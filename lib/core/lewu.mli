(** LEWU — Leader Election in Weak-CD with no global knowledge at all
    (Theorem 3.3): {!Notification} applied to {!Lesu}.  Elects a leader
    w.h.p. against any (T, 1−ε)-bounded adversary with unknown [T], [ε]
    and [n ≥ 115], within the Theorem 2.9 time bounds times a constant. *)

val station :
  ?on_phase:(id:int -> slot:int -> Notification.phase -> unit) ->
  ?config:Lesu.config ->
  unit ->
  Jamming_station.Station.factory

val pool :
  ?on_phase:(id:int -> slot:int -> Notification.phase -> unit) ->
  ?config:Lesu.config ->
  unit ->
  Jamming_station.Station.pool_factory
(** LEWU in flat-pool form for [Engine.run_pool]: {!Notification.pool}
    over {!Lesu.flat_sub}.  Bit-identical to {!station} driven by
    [Engine.run] on the same seed (asserted in test_notification.ml). *)
