module Uniform = Jamming_station.Uniform

type outcome =
  | Estimate of { round : int; n_hat : float; slots : int }
  | Leader_elected of { slots : int }
  | Exhausted of { slots : int }

let pp_outcome ppf = function
  | Estimate { round; n_hat; slots } ->
      Format.fprintf ppf "estimate: round %d (n-hat = %g) after %d slots" round n_hat slots
  | Leader_elected { slots } ->
      Format.fprintf ppf "leader elected during estimation after %d slots" slots
  | Exhausted { slots } -> Format.fprintf ppf "no estimate within %d slots" slots

let run ?(threshold = 2) ~n ~rng ~adversary ~budget ~max_slots () =
  let logic = Estimation.Logic.create ~threshold in
  let protocol =
    {
      Uniform.name = "SizeApprox";
      tx_prob =
        (fun () ->
          match Estimation.Logic.finished logic with
          | Some _ -> 0.0
          | None -> Estimation.Logic.tx_prob logic);
      on_state =
        (fun state ->
          Estimation.Logic.on_state logic state;
          if Estimation.Logic.singled logic || Estimation.Logic.finished logic <> None
          then Uniform.Elected (* stop the engine; we disambiguate below *)
          else Uniform.Continue);
    }
  in
  let result =
    Jamming_sim.Uniform_engine.run ~n ~rng ~protocol ~adversary ~budget ~max_slots ()
  in
  let slots = result.Jamming_sim.Metrics.slots in
  if Estimation.Logic.singled logic then Leader_elected { slots }
  else
    match Estimation.Logic.finished logic with
    | Some round -> Estimate { round; n_hat = Float.exp2 (Float.exp2 (float_of_int round)); slots }
    | None -> Exhausted { slots }

let within_lemma_2_8_band ~round ~n ~window =
  let loglog_n = Float.log2 (Float.max 1.0 (Float.log2 (float_of_int (Int.max 2 n)))) in
  let log_t = Float.log2 (float_of_int (Int.max 1 window)) in
  let r = float_of_int round in
  r >= loglog_n -. 1.0 && r <= Float.max loglog_n log_t +. 1.0

type refined =
  | Refined of {
      n_hat : float;
      clear_fraction : float;
      probes : int;
      slots : int;
      leader_elected : bool;
    }
  | Refine_failed of { slots : int }

let pp_refined ppf = function
  | Refined { n_hat; clear_fraction; probes; slots; leader_elected } ->
      Format.fprintf ppf
        "refined estimate n-hat = %.0f (clear fraction %.2f, %d probes, %d slots%s)" n_hat
        clear_fraction probes slots
        (if leader_elected then ", leader elected en route" else "")
  | Refine_failed { slots } -> Format.fprintf ppf "refinement failed within %d slots" slots

let refine ?(slots_per_probe = 128) ~n ~rng ~adversary ~budget ~max_slots () =
  if slots_per_probe < 8 then invalid_arg "Size_approx.refine: slots_per_probe must be >= 8";
  (* State of the probing protocol, advanced from channel feedback. *)
  let j = ref 1 in
  let slot_in_probe = ref 0 in
  let nulls = ref 0 in
  let freqs = ref [] (* (j, f_j), newest first *) in
  let finished = ref false in
  let elected = ref false in
  (* After the first sign of a plateau, take a few confirmation probes:
     stopping on the first flat pair underestimates the ceiling c and
     biases the inversion low. *)
  let confirmations = ref 0 in
  let plateau () =
    match !freqs with
    | (_, f1) :: (_, f0) :: _ -> f1 >= 0.8 *. f0 && f1 >= 0.05
    | _ -> false
  in
  let protocol =
    {
      Uniform.name = "SizeApprox.refine";
      tx_prob =
        (fun () -> if !finished then 0.0 else Float.exp2 (-.float_of_int !j));
      on_state =
        (fun state ->
          (* A Single is a by-product (a leader!), not a stop signal:
             the size probe keeps sweeping toward the Null plateau. *)
          (match state with
          | Jamming_channel.Channel.Single -> elected := true
          | Jamming_channel.Channel.Null -> incr nulls
          | Jamming_channel.Channel.Collision -> ());
          begin
            incr slot_in_probe;
            if !slot_in_probe >= slots_per_probe then begin
              freqs := (!j, float_of_int !nulls /. float_of_int slots_per_probe) :: !freqs;
              slot_in_probe := 0;
              nulls := 0;
              if plateau () then incr confirmations;
              if !confirmations > 3 || !j >= 60 then finished := true else incr j
            end;
            if !finished then Uniform.Elected (* stop the engine *) else Uniform.Continue
          end);
    }
  in
  let result =
    Jamming_sim.Uniform_engine.run ~n ~rng ~protocol ~adversary ~budget ~max_slots ()
  in
  let slots = result.Jamming_sim.Metrics.slots in
  (match !freqs with
    | [] -> Refine_failed { slots }
    | all_freqs ->
        let c = List.fold_left (fun acc (_, f) -> Float.max acc f) 0.0 all_freqs in
        if c < 0.05 then Refine_failed { slots }
        else
        (* Pick the probe whose frequency is closest to c/2 in log space
           (best conditioning for the inversion). *)
        let usable = List.filter (fun (_, f) -> f > 0.0 && f < 0.9 *. c) !freqs in
        (match usable with
        | [] -> Refine_failed { slots }
        | _ ->
            let best_j, best_f =
              List.fold_left
                (fun ((_, bf) as best) ((_, f) as cand) ->
                  let score g = Float.abs (log (Float.max g 1e-9 /. c) -. log 0.5) in
                  if score f < score bf then cand else best)
                (List.hd usable) usable
            in
            let n_hat =
              Float.exp2 (float_of_int best_j)
              *. log (c /. Float.max best_f (0.5 /. float_of_int slots_per_probe))
            in
            Refined
              {
                n_hat;
                clear_fraction = c;
                probes = List.length !freqs;
                slots;
                leader_elected = !elected;
              }))
