(** Analytic expected election time of LESK on a {e benign} channel,
    via the exact Markov chain of the estimate walk — an independent,
    simulation-free cross-check of the whole pipeline (closed-form
    channel probabilities, the walk's dynamics, the engines).

    On a clear channel LESK's state is fully described by [u], which
    lives on the lattice [{k/a : k ∈ ℕ}] when [a = 8/ε] is an integer
    (a Null moves [k ↦ max(k − a, 0)], a Collision [k ↦ k + 1], a
    Single absorbs).  The expected hitting time [h(k)] of the Single
    state solves the linear system

    {v h(k) = 1 + P_null(k)·h(k−a) + P_coll(k)·h(k+1) v}

    which {!expected_election_time} builds and solves exactly (state
    space truncated far above the band, where the upward drift is
    negligible).

    With an adversary the budget adds unbounded state, so this module
    deliberately covers only the ε-fraction-free case; experiment A5
    compares it against the simulated means. *)

type result = {
  expected_slots : float;  (** E[T] from u = 0 *)
  states : int;  (** size of the truncated lattice *)
  truncation_mass : float;
      (** stationary-direction leak: probability bound on ever touching
          the truncation boundary before electing, from the solved
          chain (small means the truncation is safe) *)
}

val expected_election_time : n:int -> a:int -> ?margin:float -> unit -> result
(** [n ≥ 1] stations, integer step denominator [a ≥ 1] (the paper's
    [a = 8/ε]; use [a = 16] for ε = 0.5).  [margin] (default 8.0) is how
    many [u]-units above [log₂ n + ½log₂ a] the lattice extends before
    reflecting. *)
