module Sample = Jamming_prng.Sample
module Prng = Jamming_prng.Prng

let check_nx n x =
  if n < 1 then invalid_arg "Lemmas: n must be >= 1";
  if not (x > 0.0) then invalid_arg "Lemmas: x must be positive";
  let p = 1.0 /. (x *. float_of_int n) in
  if p > 1.0 then invalid_arg "Lemmas: p = 1/(x n) exceeds 1";
  p

let lemma_2_1_null ~n ~x =
  let p = check_nx n x in
  (Sample.p_zero ~n ~p, exp (-1.0 /. x))

let lemma_2_1_collision ~n ~x =
  let p = check_nx n x in
  (Sample.p_many ~n ~p, 1.0 /. (x *. x))

let lemma_2_1_single_exp ~n ~x =
  let p = check_nx n x in
  (1.0 /. x *. exp (-1.0 /. x), Sample.p_one ~n ~p)

let lemma_2_1_single_exp_finite ~n ~x =
  let p = check_nx n x in
  if n < 2 || p >= 1.0 then invalid_arg "Lemmas.lemma_2_1_single_exp_finite: need n >= 2, p < 1";
  let exponent = -.p *. float_of_int (n - 1) /. (1.0 -. p) in
  (1.0 /. x *. exp exponent, Sample.p_one ~n ~p)

let lemma_2_1_single_poly ~n ~x =
  let p = check_nx n x in
  ((1.0 /. x) -. (1.0 /. (x *. x)), Sample.p_one ~n ~p)

let a_of_eps eps =
  if not (eps > 0.0 && eps <= 1.0) then invalid_arg "Lemmas: eps must lie in (0, 1]";
  8.0 /. eps

let lemma_2_2_irregular_silence ~n ~eps =
  let a = a_of_eps eps in
  let p = 2.0 *. log a /. float_of_int n in
  if p > 1.0 then invalid_arg "Lemmas.lemma_2_2_irregular_silence: n too small";
  (Sample.p_zero ~n ~p, 1.0 /. (a *. a))

let lemma_2_2_irregular_collision ~n ~eps =
  let a = a_of_eps eps in
  let p = 1.0 /. (float_of_int n *. sqrt a) in
  (Sample.p_many ~n ~p, 1.0 /. a)

let regular_band ~eps =
  let a = a_of_eps eps in
  (-.Float.log2 (2.0 *. log a), 0.5 *. Float.log2 a)

let lemma_2_4_regular_single ~n ~eps ~u_off =
  let a = a_of_eps eps in
  let lo, hi = regular_band ~eps in
  if not (u_off >= lo && u_off <= hi) then
    invalid_arg "Lemmas.lemma_2_4_regular_single: u_off outside the regular band";
  let u0 = Float.log2 (float_of_int n) in
  let p = Float.exp2 (-.(u0 +. u_off)) in
  if p > 1.0 then invalid_arg "Lemmas.lemma_2_4_regular_single: n too small";
  (log a /. (a *. a), Sample.p_one ~n ~p)

let fact_1_chernoff_holds ~rng ~n ~p ~delta ~trials =
  if not (delta >= 0.0 && delta < 1.5) then invalid_arg "Lemmas.fact_1: delta out of range";
  if trials < 1 then invalid_arg "Lemmas.fact_1: trials must be >= 1";
  let np = float_of_int n *. p in
  let threshold = (delta +. 1.0) *. np in
  let exceed = ref 0 in
  for _ = 1 to trials do
    if float_of_int (Sample.binomial rng ~n ~p) > threshold then incr exceed
  done;
  let est = float_of_int !exceed /. float_of_int trials in
  let bound = exp (-.(delta *. delta) *. np /. 3.0) in
  (* Allow 5 sigma of Monte-Carlo noise on the estimate. *)
  let sigma = sqrt (Float.max bound 1e-12 *. (1.0 -. Float.min bound 1.0) /. float_of_int trials) in
  est <= bound +. (5.0 *. sigma) +. 1e-6
