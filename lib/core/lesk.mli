(** LESK — Leader Election in Strong-CD with Known ε (Algorithm 1, §2.1).

    Every station keeps a common estimate [u] of [log₂ n] and transmits
    with probability [2^−u].  A [Null] slot means the estimate is too
    high: [u ← max (u − 1, 0)].  A [Collision] (which the adversary can
    fake by jamming) is only worth a small correction: [u ← u + 1/a]
    with [a = 8/ε], so that each honest [Null] — which the adversary can
    never fake — neutralises about [8/ε] jammed slots.  The protocol
    stops at the first [Single]; its transmitter is the leader.

    Theorem 2.6: election in [O(max{T, log n / (ε³ log(1/ε))})] slots
    w.h.p. against any (T, 1−ε)-bounded adversary. *)

module Logic : sig
  (** The per-station state machine, exposed for testing, instrumentation
      and for adversaries that simulate the protocol (the paper's
      adversary knows the protocol and the channel history). *)

  type t

  val create : ?initial_u:float -> ?a:float -> eps:float -> unit -> t
  (** Requires [0 < eps <= 1].  [initial_u] (default 0, the paper's
      choice) lets chained elections warm-start from a previous
      estimate — used by the {!K_selection} extension.  [a] overrides
      the collision step denominator (default the paper's [8/ε]); the
      step-size ablation bench uses it, including the symmetric [a = 1]
      variant that the adversary can drive to divergence (§2.1). *)

  val eps : t -> float

  val a : t -> float
  (** The step denominator [a = 8/ε]. *)

  val u : t -> float
  (** Current estimate of [log₂ n]. *)

  val tx_prob : t -> float
  (** [2^−u]. *)

  val elected : t -> bool

  val on_state : t -> Jamming_channel.Channel.state -> unit
  (** Advance on the state of the slot ([Null] / [Single] / [Collision]). *)
end

val config_valid : eps:float -> bool

val uniform : ?a:float -> eps:float -> Jamming_station.Uniform.factory
(** LESK as a uniform protocol for the fast engine.  [a] as in
    {!Logic.create}. *)

val station : eps:float -> Jamming_station.Station.factory
(** LESK as a distributed per-station protocol for the exact engine
    (strong-CD leadership semantics). *)

val aggregate : ?a:float -> eps:float -> unit -> Jamming_sim.Aggregate.packed
(** LESK as a pure protocol description for the population-counting
    {!Jamming_sim.Aggregate} engine: state is the estimate [u], updates
    mirror {!Logic.on_state} bit for bit.  [a] as in {!Logic.create}. *)

val flat_sub : ?a:float -> eps:float -> unit -> Notification.flat_sub
(** LESK as a population sub-algorithm for {!Notification.pool}: every
    station's estimate [u] in one float array, updates mirroring
    {!Logic.on_state} bit for bit, transmission probabilities cached
    per station and recomputed (same [2^−u] expression) only when [u]
    changes.  [a] as in {!Logic.create}. *)

val expected_time_bound : eps:float -> n:int -> window:int -> float
(** The Theorem 2.6 shape [max{T, log n / (ε³ log₂(1/ε))}] (no hidden
    constant), used by experiments to normalise measured times. *)
