(** Protocol-aware adversaries (the paper's adversary "knows the entire
    history of the channel and the protocol executed by honest stations",
    and may know [n], §1.1).  These strategies maintain a perfect replica
    of LESK's deterministic [u]-walk from the public channel history and
    target its weak spots; they are the strongest opponents in the E9
    ablation. *)

val single_suppressor : eps_protocol:float -> n:int -> Jamming_adversary.Adversary.factory
(** Jams exactly when LESK's success probability in the coming slot is
    high — i.e. when the replicated estimate [u] is within the "regular"
    band around [log₂ n] (Lemma 2.4's window).  Outside the band it saves
    budget. *)

val estimate_twister : eps_protocol:float -> n:int -> Jamming_adversary.Adversary.factory
(** Tries to drive [u] upward for ever: jams whenever the budget allows
    while [u] is below [log₂ n + log₂ a] (every jam adds [ε/8] to [u]).
    This is the divergence attack that the asymmetric step sizes of LESK
    are designed to survive (§2.1). *)

val estimation_staller : Jamming_adversary.Adversary.factory
(** Targets {!Estimation}: jams as many slots as possible in the early
    rounds so Nulls are suppressed and the returned round index inflates
    toward [log T] (the Lemma 2.8 upper band). *)

val notification_saboteur : Jamming_adversary.Adversary.factory
(** Targets the weak-CD {!Notification} handshake rather than the inner
    algorithm: spends the whole budget on C3 slots (suppressing the
    leader's announcement [Single]s) and on C1 slots (suppressing the
    [Null] that lets the leader terminate).  Lemma 3.1's liveness
    argument — for [2^i ≥ T] the adversary cannot jam an entire
    interval — is exactly what defeats it; the E7/E13 runs and the
    Notification tests pit LEWK against it. *)
