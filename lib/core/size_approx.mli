(** Network-size approximation — one of the building blocks the paper's
    conclusions (§4) propose on top of its machinery.

    The estimator runs {!Estimation} and converts the returned round
    index [i] into the size guess [n̂ = 2^(2^i)].  By Lemma 2.8, w.h.p.
    [i ∈ [log log n − 1, max{log log n, log T} + 1]], hence for
    [T ≤ log n] the guess satisfies [√n ≤ n̂ ≤ n⁴] — a polynomial
    approximation obtained {e despite} adaptive jamming, sufficient to
    seed protocols that need a ballpark of [log n].  (If a [Single]
    happens along the way, a leader has been elected and can coordinate
    an exact count.) *)

type outcome =
  | Estimate of { round : int; n_hat : float; slots : int }
  | Leader_elected of { slots : int }
  | Exhausted of { slots : int }  (** hit the slot cap before returning *)

val pp_outcome : Format.formatter -> outcome -> unit

val run :
  ?threshold:int ->
  n:int ->
  rng:Jamming_prng.Prng.t ->
  adversary:Jamming_adversary.Adversary.t ->
  budget:Jamming_adversary.Budget.t ->
  max_slots:int ->
  unit ->
  outcome
(** Simulate the estimator over [n] stations on the fast engine. *)

val within_lemma_2_8_band : round:int -> n:int -> window:int -> bool
(** Whether [round] lies in [\[log log n − 1, max{log log n, log T} + 1\]]. *)

(** {1 Refinement}

    {!run} only brackets [n] within a power tower ([√n … n⁴]).  The
    refinement below sharpens it to a constant factor, {e still under
    jamming}, by probing a geometric grid of transmission probabilities
    [q_j = 2^{−j}] and inverting Null frequencies.  Jamming scales every
    frequency by the same clear-slot rate, so taking the {e ratio} to
    the observed plateau [c ≈ ε·(jam-free rate)] cancels it:
    [(1−q_j)^n = f_j / c ⇒ n ≈ 2^j · ln(c/f_j)].  One-sided caveat: an
    adversary that jams {e the probe rounds unevenly} (saving budget for
    small-[j] rounds) can bias the estimate; the A-series bench measures
    the bias under the standard zoo.  This estimator is this
    reproduction's extension, not the paper's. *)

type refined =
  | Refined of {
      n_hat : float;  (** constant-factor estimate of [n] *)
      clear_fraction : float;  (** the observed Null plateau *)
      probes : int;  (** number of [q_j] levels visited *)
      slots : int;
      leader_elected : bool;
          (** the sweep crosses the Single-rich zone (q ≈ 1/n) on its
              way to the Null plateau, so it usually elects a leader as
              a by-product — it keeps probing regardless *)
    }
  | Refine_failed of { slots : int }  (** no usable plateau within the cap *)

val pp_refined : Format.formatter -> refined -> unit

val refine :
  ?slots_per_probe:int ->
  n:int ->
  rng:Jamming_prng.Prng.t ->
  adversary:Jamming_adversary.Adversary.t ->
  budget:Jamming_adversary.Budget.t ->
  max_slots:int ->
  unit ->
  refined
(** [slots_per_probe] (default 128) trades slots for estimate variance. *)
