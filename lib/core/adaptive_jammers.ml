module Adversary = Jamming_adversary.Adversary

let track_lesk ~eps_protocol = Lesk.Logic.create ~eps:eps_protocol ()

let notify_lesk logic ~slot:_ ~jammed:_ ~state = Lesk.Logic.on_state logic state

let single_suppressor ~eps_protocol ~n =
  if n < 1 then invalid_arg "Adaptive_jammers.single_suppressor: n must be >= 1";
  let u0 = Float.log2 (float_of_int n) in
  Adversary.stateful
    ~name:(Printf.sprintf "single-suppressor(n=%d)" n)
    ~init:(fun () -> track_lesk ~eps_protocol)
    ~wants:(fun logic ~slot:_ ~can_jam:_ ->
      let u = Lesk.Logic.u logic in
      let a = Lesk.Logic.a logic in
      (* Lemma 2.4's regular band: jam where P[Single] is non-trivial. *)
      u >= u0 -. Float.log2 (2.0 *. log a) -. 1.0
      && u <= u0 +. (0.5 *. Float.log2 a) +. 2.0)
    ~notify:notify_lesk

let estimate_twister ~eps_protocol ~n =
  if n < 1 then invalid_arg "Adaptive_jammers.estimate_twister: n must be >= 1";
  let u0 = Float.log2 (float_of_int n) in
  Adversary.stateful
    ~name:(Printf.sprintf "estimate-twister(n=%d)" n)
    ~init:(fun () -> track_lesk ~eps_protocol)
    ~wants:(fun logic ~slot:_ ~can_jam:_ ->
      let a = Lesk.Logic.a logic in
      Lesk.Logic.u logic <= u0 +. Float.log2 a)
    ~notify:notify_lesk

let notification_saboteur =
  Adversary.stateful ~name:"notification-saboteur"
    ~init:(fun () -> ())
    ~wants:(fun () ~slot ~can_jam:_ ->
      match Intervals.classify slot with
      | Intervals.C3 _ | Intervals.C1 _ -> true
      | Intervals.C2 _ | Intervals.Idle -> false)
    ~notify:(fun () ~slot:_ ~jammed:_ ~state:_ -> ())

let estimation_staller =
  Adversary.stateful ~name:"estimation-staller"
    ~init:(fun () -> ref 0)
    ~wants:(fun nulls_seen ~slot:_ ~can_jam:_ ->
      (* Keep pressure until the estimator has plausibly escaped: once a
         couple of Nulls leaked through, further jamming is wasted. *)
      !nulls_seen < 2)
    ~notify:(fun nulls_seen ~slot:_ ~jammed:_ ~state ->
      if Jamming_channel.Channel.equal_state state Jamming_channel.Channel.Null then
        incr nulls_seen)
