module Channel = Jamming_channel.Channel
module Metrics = Jamming_sim.Metrics

type counts = { is_ : int; ic : int; cs : int; cc : int; e : int; r : int }

let total c = c.is_ + c.ic + c.cs + c.cc + c.e + c.r

let pp_counts ppf c =
  Format.fprintf ppf "IS=%d IC=%d CS=%d CC=%d E=%d R=%d" c.is_ c.ic c.cs c.cc c.e c.r

type t = {
  lesk : Lesk.Logic.t;  (* replica of the common u-walk *)
  u0 : float;
  mutable counts : counts;
}

let create ~eps ~n =
  if n < 1 then invalid_arg "Taxonomy.create: n must be >= 1";
  {
    lesk = Lesk.Logic.create ~eps ();
    u0 = Float.log2 (float_of_int n);
    counts = { is_ = 0; ic = 0; cs = 0; cc = 0; e = 0; r = 0 };
  }

let on_slot t (rec_ : Metrics.slot_record) =
  if not (Lesk.Logic.elected t.lesk) then begin
    let u = Lesk.Logic.u t.lesk in
    let a = Lesk.Logic.a t.lesk in
    let low = t.u0 -. Float.log2 (2.0 *. log a) in
    let high = t.u0 +. (0.5 *. Float.log2 a) in
    let c = t.counts in
    let c' =
      if rec_.Metrics.jammed then { c with e = c.e + 1 }
      else
        match rec_.Metrics.state with
        | Channel.Null ->
            if u <= low then { c with is_ = c.is_ + 1 }
            else if u >= high +. 1.0 then { c with cs = c.cs + 1 }
            else { c with r = c.r + 1 }
        | Channel.Collision ->
            if u >= high then { c with ic = c.ic + 1 }
            else if u <= low then { c with cc = c.cc + 1 }
            else { c with r = c.r + 1 }
        | Channel.Single -> { c with r = c.r + 1 }
    in
    t.counts <- c';
    Lesk.Logic.on_state t.lesk rec_.Metrics.state
  end

let counts t = t.counts

let lemma_2_3_holds c ~u0 ~a =
  float_of_int c.cs <= (float_of_int (c.ic + c.e) /. a) +. 1e-9
  && float_of_int c.cc <= (a *. float_of_int c.is_) +. (u0 *. a) +. 1e-9

let regular_lower_bound c ~u0 ~a =
  let t = float_of_int (total c) in
  t
  -. (float_of_int c.is_ *. (1.0 +. a))
  -. (9.0 /. 8.0 *. float_of_int c.ic)
  -. (u0 *. a)
  -. ((1.0 +. (1.0 /. a)) *. float_of_int c.e)
