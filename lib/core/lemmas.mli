(** Executable forms of the paper's analytical lemmas (§2.2).

    Each function returns [(lhs, rhs)] of the inequality it names, so the
    property-test suite can sweep parameters and confirm [lhs ≤ rhs] —
    the paper's calculus, checked numerically against the exact channel
    probabilities of {!Jamming_prng.Sample}.

    Throughout, [p = 1/(x·n)] is the common per-station transmission
    probability, as in Lemma 2.1. *)

(** {1 Lemma 2.1 — channel-state probability bounds} *)

val lemma_2_1_null : n:int -> x:float -> float * float
(** [P\[Null\] ≤ e^{−1/x}]; requires [n ≥ 1], [x > 0], [1/(x·n) ≤ 1]. *)

val lemma_2_1_collision : n:int -> x:float -> float * float
(** [P\[Collision\] ≤ 1/x²] (for [x ≥ 1], where the paper applies it). *)

val lemma_2_1_single_exp : n:int -> x:float -> float * float
(** [P\[Single\] ≥ (1/x)·e^{−1/x}], returned as [(rhs, lhs)] so the pair
    still reads "fst ≤ snd".

    {b Reproduction note.}  As literally stated the inequality is valid
    for [x ≥ 1] but {e fails} for [x < 1] by an [O(1/n)] margin (e.g.
    [n = 10, x = 0.5]: claimed [0.2707 ≤ P\[Single\] = 0.2684]); it only
    approaches equality as [n → ∞].  The paper applies it at
    [x = 1/(2·ln a) < 1] inside Lemma 2.4, whose conclusion survives
    because it discards a factor 2 ([2·ln a/a² → ln a/a²] in our
    checked form).  Use {!lemma_2_1_single_exp_finite} for a bound valid
    at every [n] and [x]. *)

val lemma_2_1_single_exp_finite : n:int -> x:float -> float * float
(** The finite-[n] repair: [P\[Single\] ≥ (1/x)·e^{−p(n−1)/(1−p)}] with
    [p = 1/(x·n)] — valid for all [n ≥ 2], [x > 0] with [p < 1].
    Returned as [(rhs, lhs)]. *)

val lemma_2_1_single_poly : n:int -> x:float -> float * float
(** [P\[Single\] ≥ 1/x − 1/x²], returned as [(rhs, lhs)]. *)

(** {1 Lemma 2.2 — irregular-slot probabilities} *)

val lemma_2_2_irregular_silence : n:int -> eps:float -> float * float
(** With [u ≤ u₀ − log₂(2·ln a)] the transmission probability is at least
    [2·ln a/n], so [P\[Null\] ≤ 1/a²].  Returns the worst case (smallest
    admissible [p]): [(P\[Null\] at p = 2·ln a/n, 1/a²)]. *)

val lemma_2_2_irregular_collision : n:int -> eps:float -> float * float
(** With [u ≥ u₀ + ½·log₂ a], [p ≤ 1/(n·√a)], so
    [P\[Collision\] ≤ 1/a].  Returns [(P\[Collision\] at p = 1/(n·√a), 1/a)]. *)

(** {1 Lemma 2.4 — regular slots are productive} *)

val lemma_2_4_regular_single : n:int -> eps:float -> u_off:float -> float * float
(** For [u = u₀ + u_off] inside the regular band
    [−log₂(2·ln a) ≤ u_off ≤ ½·log₂ a], [P\[Single\] ≥ ln a/a²].
    Returns [(ln a/a², P\[Single\])].  Requires [n] large enough that the
    implied [p ≤ 1]. *)

val regular_band : eps:float -> float * float
(** [(−log₂(2·ln a), ½·log₂ a)], the band of [u − u₀] in which a slot is
    regular, [a = 8/ε]. *)

(** {1 Fact 1 — the Chernoff form used by Lemma 2.5} *)

val fact_1_chernoff_holds :
  rng:Jamming_prng.Prng.t -> n:int -> p:float -> delta:float -> trials:int -> bool
(** Monte-Carlo check of [P\[X > (1+δ)np\] ≤ exp(−δ²np/3)] for
    [X ~ Bin(n, p)], [0 ≤ δ < 3/2]: estimates the left side over [trials]
    samples and compares with a 5-sigma statistical cushion. *)
