(** k-selection — the second building block proposed in §4: distinguish
    [k] stations, one after another, under the same (T, 1−ε)-bounded
    adversary.

    Implementation: chained LESK elections on the fast engine.  After a
    [Single], the winner withdraws and the remaining [n − j] stations run
    again; the jamming budget and the adversary persist across rounds
    (the window constraint spans the whole execution).  With
    [warm_start], a new round inherits the previous [u] decreased by 1 —
    the population shrank by one station — instead of restarting at 0,
    which removes the ramp-up of later rounds. *)

type round_result = { winner_index : int; slots : int }

type outcome = {
  rounds : round_result list;  (** in election order; length ≤ k *)
  total_slots : int;
  completed : bool;  (** all [k] rounds finished within the cap *)
}

val run :
  ?warm_start:bool ->
  k:int ->
  n:int ->
  eps:float ->
  rng:Jamming_prng.Prng.t ->
  adversary:Jamming_adversary.Adversary.t ->
  budget:Jamming_adversary.Budget.t ->
  max_slots:int ->
  unit ->
  outcome
(** Requires [1 ≤ k ≤ n].  [max_slots] bounds the whole chain.
    [winner_index] is an index into the population remaining at that
    round (the fast engine does not track identities). *)

type weak_cd_outcome = {
  winners : int list;  (** original station ids, in election order *)
  slots : int;
  completed : bool;
}

val run_weak_cd :
  k:int ->
  n:int ->
  eps:float ->
  rng:Jamming_prng.Prng.t ->
  adversary:Jamming_adversary.Adversary.t ->
  budget:Jamming_adversary.Budget.t ->
  max_slots:int ->
  unit ->
  weak_cd_outcome
(** The same chain in the {e weak-CD} model on the exact engine: each
    round is a full LEWK election (so winners actually {e know} they
    won, §3) after which the winner withdraws.  Station identities are
    preserved across rounds.  Requires [1 ≤ k] and [n − k ≥ 2] (every
    LEWK round needs at least 3 participants). *)
