(** Probabilistic collision-detection misperception.

    The paper assumes every listener reads the channel state exactly.
    Real radios do not: energy detection has false positives (a clear
    slot read as busy), capture effects (a collision decoded as one
    clean transmission) and missed detections (a busy slot read as
    silence).  This module models those errors as independent per-station
    per-slot state flips applied to the {e true} resolved state before
    the CD-model filter ({!Jamming_channel.Channel.perceive}) — so a
    weak-CD or no-CD transmitter, which cannot sense the channel at all,
    is unaffected by sensing noise, exactly as in hardware.

    All rates are probabilities in [0, 1].  A rate of exactly [0] draws
    nothing from the generator, so a config whose rates are all zero
    perturbs neither the observations nor the random streams: runs are
    bit-identical to runs without fault injection. *)

type t = {
  p_null_to_collision : float;
      (** Phantom energy: a [Null] slot read as [Collision]. *)
  p_single_to_collision : float;
      (** Smearing: a [Single] slot read as [Collision]. *)
  p_collision_to_single : float;
      (** Capture effect: a [Collision] decoded as a clean [Single]. *)
  p_collision_to_null : float;
      (** Missed detection: a [Collision] read as silence. *)
}

val none : t
(** All rates zero. *)

val uniform : p:float -> t
(** Every misperception occurs at rate [p].  Requires [0 ≤ p ≤ 0.5] so
    that the two collision outcomes stay a sub-distribution. *)

val is_null : t -> bool
(** Whether every rate is zero (no noise will ever be applied). *)

val validate : t -> unit
(** Raises [Invalid_argument] unless every rate lies in [0, 1] and
    [p_collision_to_single + p_collision_to_null ≤ 1]. *)

val apply :
  t -> Jamming_prng.Prng.t -> Jamming_channel.Channel.state ->
  Jamming_channel.Channel.state
(** One independent draw: the state this station's radio senses.
    Consumes randomness only when a relevant rate is positive. *)

val pp : Format.formatter -> t -> unit
