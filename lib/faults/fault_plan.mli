(** Station lifecycle faults: crash-stop, transient sleep, late wake-up.

    A plan is a per-station schedule of dormancy and death, applied by
    {!wrap} to any {!Jamming_station.Station.t} {e without touching
    protocol code}: the wrapper intercepts [decide]/[observe] and the
    inner protocol never runs during a dormant slot (its state freezes —
    the station genuinely misses those slots, it does not merely stay
    silent).

    Semantics per slot [s]:
    - {b late wake-up}: before [wake_slot] the station is dormant — it
      listens to nothing and transmits nothing (asynchronous start).
    - {b transient sleep}: dormant during every half-open interval
      [\[start, stop)] of [sleeps].
    - {b crash-stop}: from [crash_slot] onward the station is
      permanently finished; its status stays whatever it last was, so a
      crashed undecided station counts against election success. *)

type plan = {
  wake_slot : int;  (** First slot the station participates in. *)
  crash_slot : int option;  (** Slot at which the station halts forever. *)
  sleeps : (int * int) list;  (** Half-open dormancy intervals. *)
}

val none : plan
(** Wakes at slot 0, never crashes, never sleeps. *)

val is_null : plan -> bool

val validate : plan -> unit
(** Raises [Invalid_argument] on a negative wake/crash slot or an empty
    or negative sleep interval. *)

val shift : plan -> by:int -> plan
(** [shift plan ~by] is [plan] with every slot reference (wake, crash,
    sleeps) moved [by] slots later: a plan sampled in station-relative
    slots becomes the absolute-slot plan of a station born at slot
    [by].  Requires [by >= 0]; validates [plan]. *)

val dormant : plan -> slot:int -> bool
(** Whether the station is asleep (or not yet awake) at [slot].  Crash
    is not dormancy; see {!crashed}. *)

val crashed : plan -> slot:int -> bool

val wrap : plan -> Jamming_station.Station.t -> Jamming_station.Station.t
(** [wrap plan s] is [s] subjected to [plan].  A null plan returns [s]
    itself, so fault-free runs are bit-identical to unwrapped runs. *)

val pp : Format.formatter -> plan -> unit
