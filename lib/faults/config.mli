(** Run-level fault configuration: perception noise rates plus the
    distributions from which per-station {!Fault_plan.plan}s are drawn.

    A config is pure data; {!sample_plans} turns it into concrete plans
    with an explicit generator, so a (config, seed) pair is a complete,
    replayable description of a faulty run — the soak harness shrinks
    configs and reports them verbatim. *)

type t = {
  perception : Perception.t;  (** Per-station CD misperception rates. *)
  p_crash : float;  (** Probability a given station crash-stops. *)
  crash_horizon : int;  (** Crash slot is uniform on [\[0, crash_horizon)]. *)
  p_sleep : float;  (** Probability a given station sleeps once. *)
  sleep_horizon : int;  (** Sleep start is uniform on [\[0, sleep_horizon)]. *)
  max_sleep : int;  (** Sleep length is uniform on [\[1, max_sleep\]]. *)
  p_late_wake : float;  (** Probability a given station starts late. *)
  max_wake_delay : int;  (** Wake slot is uniform on [\[1, max_wake_delay\]]. *)
}

val none : t
(** No faults of any kind; {!is_null} holds. *)

val is_null : t -> bool
(** No perception noise and no lifecycle fault can ever be drawn. *)

val validate : t -> unit

val sample_plan : t -> rng:Jamming_prng.Prng.t -> Fault_plan.plan
(** One station's lifecycle draw.  Draws nothing for fault classes whose
    probability is zero. *)

val sample_plans : t -> rng:Jamming_prng.Prng.t -> n:int -> Fault_plan.plan array
(** Independent plans for stations [0 .. n−1], in id order. *)

val wrap_stations :
  Fault_plan.plan array -> Jamming_station.Station.t array ->
  Jamming_station.Station.t array
(** Applies [plans.(i)] to station [i].  Lengths must agree. *)

val pp : Format.formatter -> t -> unit
