module Channel = Jamming_channel.Channel
module Prng = Jamming_prng.Prng

type t = {
  p_null_to_collision : float;
  p_single_to_collision : float;
  p_collision_to_single : float;
  p_collision_to_null : float;
}

let none =
  {
    p_null_to_collision = 0.0;
    p_single_to_collision = 0.0;
    p_collision_to_single = 0.0;
    p_collision_to_null = 0.0;
  }

let in_unit p = p >= 0.0 && p <= 1.0

let validate t =
  if
    not
      (in_unit t.p_null_to_collision && in_unit t.p_single_to_collision
      && in_unit t.p_collision_to_single && in_unit t.p_collision_to_null)
  then invalid_arg "Perception: rates must lie in [0, 1]";
  if t.p_collision_to_single +. t.p_collision_to_null > 1.0 +. 1e-12 then
    invalid_arg "Perception: collision flip rates must sum to at most 1"

let uniform ~p =
  if not (p >= 0.0 && p <= 0.5) then invalid_arg "Perception.uniform: p must lie in [0, 0.5]";
  {
    p_null_to_collision = p;
    p_single_to_collision = p;
    p_collision_to_single = p;
    p_collision_to_null = p;
  }

let is_null t =
  t.p_null_to_collision = 0.0 && t.p_single_to_collision = 0.0
  && t.p_collision_to_single = 0.0 && t.p_collision_to_null = 0.0

let apply t rng st =
  match st with
  | Channel.Null ->
      if Prng.bool rng ~p:t.p_null_to_collision then Channel.Collision else Channel.Null
  | Channel.Single ->
      if Prng.bool rng ~p:t.p_single_to_collision then Channel.Collision else Channel.Single
  | Channel.Collision ->
      let ps = t.p_collision_to_single and pn = t.p_collision_to_null in
      if ps <= 0.0 && pn <= 0.0 then Channel.Collision
      else begin
        let u = Prng.float rng in
        if u < ps then Channel.Single
        else if u < ps +. pn then Channel.Null
        else Channel.Collision
      end

let pp ppf t =
  Format.fprintf ppf "noise(N>C=%.3g S>C=%.3g C>S=%.3g C>N=%.3g)" t.p_null_to_collision
    t.p_single_to_collision t.p_collision_to_single t.p_collision_to_null
