type t = { noise : Perception.t; rng : Jamming_prng.Prng.t }

let create ~noise ~rng =
  Perception.validate noise;
  { noise; rng }

let active t = not (Perception.is_null t.noise)
let sense t st = Perception.apply t.noise t.rng st
let noise t = t.noise
