(** Churn adversary: station arrivals and departures under rate- and
    burst-bounded policies, following Augustine et al., {e Robust Leader
    Election in a Fast-Changing World} (PAPERS.md).

    A churn policy is pure data; {!sample_schedule} turns the oblivious
    part into a concrete, sorted event list with an explicit generator,
    so a (policy, seed) pair is a complete replayable description of a
    churned run — the soak harness shrinks schedules and reports them
    verbatim.  The adaptive {!Leader_killer} policy has no oblivious
    part: the dynamic driver reads it through {!kill_policy} and crashes
    each elected leader [grace] slots after its election completes.

    Event semantics (enforced by {!Jamming_sim.Dynamic}):
    - {b Join k} at slot [s]: [k] fresh stations are born at [s].  A
      joiner defers to the next election boundary — it adopts a live
      leader silently, or participates from the next (re-)election —
      so an election in flight is never infiltrated mid-protocol.
    - {b Leave Member} at slot [s]: a seeded-uniform live station
      crash-stops at [s] (leaders included only via [Leave Leader]).
    - {b Leave Leader} at slot [s]: the live leader crash-stops,
      forcing a re-election; leaderless at that slot it degrades to
      [Leave Member]. *)

type victim = Member | Leader

val victim_to_string : victim -> string

type kind =
  | Join of int  (** This many fresh stations arrive. *)
  | Leave of victim  (** One station crash-stops. *)

type event = { at : int; kind : kind }

type policy =
  | Oblivious of event list
      (** An explicit schedule, sorted by slot (equal slots allowed;
          applied in list order). *)
  | Rate of {
      every : int;  (** Churn ticks at slots [every, 2·every, …]. *)
      p_join : float;  (** Per-tick probability of an arrival burst. *)
      p_leave : float;  (** Per-tick probability of a departure. *)
      max_burst : int;  (** Arrival burst size is uniform on [\[1, max_burst\]]. *)
      horizon : int;  (** No churn after this slot. *)
    }
  | Leader_killer of { grace : int; max_kills : int }
      (** Adaptive: crash each elected leader [grace] slots after its
          election completes, at most [max_kills] times. *)

type t = policy

val none : t
(** The empty oblivious schedule; {!is_null} holds. *)

val is_null : t -> bool
(** No arrival or departure can ever occur. *)

val validate : t -> unit
(** Raises [Invalid_argument] on negative slots, unsorted schedules,
    empty joins, out-of-range rates or negative kill parameters. *)

val sample_schedule : t -> rng:Jamming_prng.Prng.t -> event list
(** The concrete sorted oblivious schedule.  [Oblivious] returns its
    events; [Rate] draws per-tick events from [rng] (nothing when both
    rates are zero); [Leader_killer] is entirely adaptive and returns
    [[]]. *)

val kill_policy : t -> (int * int) option
(** [(grace, max_kills)] when the policy is an active leader-killer. *)

val event_to_string : event -> string

val descriptor : t -> string
(** Injective full-precision rendering, for store cell keys: configs
    that could run differently never share a descriptor. *)

val pp : Format.formatter -> t -> unit
