(** The handle the exact engine threads through a faulty run: the
    perception noise rates plus a dedicated generator for the noise
    draws.

    The generator is private to the injection, so adding (or removing)
    noise never perturbs station or adversary streams — and a noise
    config whose rates are all zero consumes no randomness at all,
    keeping zero-rate runs bit-identical to fault-free runs. *)

type t

val create : noise:Perception.t -> rng:Jamming_prng.Prng.t -> t
(** Validates the rates. *)

val active : t -> bool
(** Whether any rate is positive (the engine skips inactive noise). *)

val sense : t -> Jamming_channel.Channel.state -> Jamming_channel.Channel.state
(** One per-station draw of the sensed channel state. *)

val noise : t -> Perception.t
