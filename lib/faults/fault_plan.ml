module Station = Jamming_station.Station

type plan = {
  wake_slot : int;
  crash_slot : int option;
  sleeps : (int * int) list;
}

let none = { wake_slot = 0; crash_slot = None; sleeps = [] }

let is_null plan = plan.wake_slot <= 0 && plan.crash_slot = None && plan.sleeps = []

let validate plan =
  if plan.wake_slot < 0 then invalid_arg "Fault_plan: wake_slot must be >= 0";
  (match plan.crash_slot with
  | Some c when c < 0 -> invalid_arg "Fault_plan: crash_slot must be >= 0"
  | _ -> ());
  List.iter
    (fun (a, b) ->
      if a < 0 || b <= a then invalid_arg "Fault_plan: sleep intervals must be non-empty")
    plan.sleeps

let shift plan ~by =
  if by < 0 then invalid_arg "Fault_plan.shift: offset must be >= 0";
  validate plan;
  if by = 0 then plan
  else
    {
      wake_slot = plan.wake_slot + by;
      crash_slot = Option.map (fun c -> c + by) plan.crash_slot;
      sleeps = List.map (fun (a, b) -> (a + by, b + by)) plan.sleeps;
    }

let dormant plan ~slot =
  slot < plan.wake_slot || List.exists (fun (a, b) -> slot >= a && slot < b) plan.sleeps

let crashed plan ~slot = match plan.crash_slot with Some c -> slot >= c | None -> false

let wrap plan (s : Station.t) =
  validate plan;
  if is_null plan then s
  else begin
    (* The latch makes the crash permanent even though [finished] does
       not receive the slot: the engine consults [decide]/[observe]
       every live slot, so the latch is set no later than the crash
       slot itself. *)
    let dead = ref false in
    let check_crash ~slot = if crashed plan ~slot then dead := true in
    {
      s with
      Station.decide =
        (fun ~slot ->
          check_crash ~slot;
          if !dead || dormant plan ~slot then Station.Listen else s.Station.decide ~slot);
      observe =
        (fun ~slot ~perceived ~transmitted ->
          check_crash ~slot;
          if not (!dead || dormant plan ~slot) then
            s.Station.observe ~slot ~perceived ~transmitted);
      finished = (fun () -> !dead || s.Station.finished ());
    }
  end

let pp ppf plan =
  let crash = match plan.crash_slot with Some c -> string_of_int c | None -> "-" in
  Format.fprintf ppf "plan(wake=%d crash=%s sleeps=[%s])" plan.wake_slot crash
    (String.concat ";"
       (List.map (fun (a, b) -> Printf.sprintf "%d,%d" a b) plan.sleeps))
