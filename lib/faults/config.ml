module Prng = Jamming_prng.Prng

type t = {
  perception : Perception.t;
  p_crash : float;
  crash_horizon : int;
  p_sleep : float;
  sleep_horizon : int;
  max_sleep : int;
  p_late_wake : float;
  max_wake_delay : int;
}

let none =
  {
    perception = Perception.none;
    p_crash = 0.0;
    crash_horizon = 1;
    p_sleep = 0.0;
    sleep_horizon = 1;
    max_sleep = 1;
    p_late_wake = 0.0;
    max_wake_delay = 1;
  }

let is_null t =
  Perception.is_null t.perception && t.p_crash = 0.0 && t.p_sleep = 0.0
  && t.p_late_wake = 0.0

let in_unit p = p >= 0.0 && p <= 1.0

let validate t =
  Perception.validate t.perception;
  if not (in_unit t.p_crash && in_unit t.p_sleep && in_unit t.p_late_wake) then
    invalid_arg "Faults.Config: probabilities must lie in [0, 1]";
  if t.crash_horizon < 1 || t.sleep_horizon < 1 then
    invalid_arg "Faults.Config: horizons must be >= 1";
  if t.max_sleep < 1 || t.max_wake_delay < 1 then
    invalid_arg "Faults.Config: max_sleep and max_wake_delay must be >= 1"

let sample_plan t ~rng =
  validate t;
  let wake_slot =
    if t.p_late_wake > 0.0 && Prng.bool rng ~p:t.p_late_wake then
      1 + Prng.int rng ~bound:t.max_wake_delay
    else 0
  in
  let crash_slot =
    if t.p_crash > 0.0 && Prng.bool rng ~p:t.p_crash then
      Some (Prng.int rng ~bound:t.crash_horizon)
    else None
  in
  let sleeps =
    if t.p_sleep > 0.0 && Prng.bool rng ~p:t.p_sleep then begin
      let start = Prng.int rng ~bound:t.sleep_horizon in
      let len = 1 + Prng.int rng ~bound:t.max_sleep in
      [ (start, start + len) ]
    end
    else []
  in
  { Fault_plan.wake_slot; crash_slot; sleeps }

let sample_plans t ~rng ~n =
  if n < 0 then invalid_arg "Faults.Config.sample_plans: n must be >= 0";
  Array.init n (fun _ -> sample_plan t ~rng)

let wrap_stations plans stations =
  if Array.length plans <> Array.length stations then
    invalid_arg "Faults.Config.wrap_stations: plans and stations must have equal length";
  Array.mapi (fun i s -> Fault_plan.wrap plans.(i) s) stations

let pp ppf t =
  Format.fprintf ppf
    "faults(%a crash=%.3g@%d sleep=%.3g@%d<=%d wake=%.3g<=%d)" Perception.pp t.perception
    t.p_crash t.crash_horizon t.p_sleep t.sleep_horizon t.max_sleep t.p_late_wake
    t.max_wake_delay
