module Prng = Jamming_prng.Prng

type victim = Member | Leader

let victim_to_string = function Member -> "member" | Leader -> "leader"

type kind = Join of int | Leave of victim

type event = { at : int; kind : kind }

type policy =
  | Oblivious of event list
  | Rate of {
      every : int;
      p_join : float;
      p_leave : float;
      max_burst : int;
      horizon : int;
    }
  | Leader_killer of { grace : int; max_kills : int }

type t = policy

let none = Oblivious []

let is_null = function
  | Oblivious [] -> true
  | Oblivious (_ :: _) -> false
  | Rate { p_join; p_leave; _ } -> p_join = 0.0 && p_leave = 0.0
  | Leader_killer { max_kills; _ } -> max_kills = 0

let in_unit p = p >= 0.0 && p <= 1.0

let validate = function
  | Oblivious events ->
      let rec check prev = function
        | [] -> ()
        | { at; kind } :: tl ->
            if at < 0 then invalid_arg "Churn: event slots must be >= 0";
            if at < prev then invalid_arg "Churn: oblivious events must be sorted by slot";
            (match kind with
            | Join k when k < 1 -> invalid_arg "Churn: joins must bring >= 1 station"
            | Join _ | Leave _ -> ());
            check at tl
      in
      check 0 events
  | Rate { every; p_join; p_leave; max_burst; horizon } ->
      if every < 1 then invalid_arg "Churn: rate period must be >= 1";
      if not (in_unit p_join && in_unit p_leave) then
        invalid_arg "Churn: rate probabilities must lie in [0, 1]";
      if max_burst < 1 then invalid_arg "Churn: max_burst must be >= 1";
      if horizon < 1 then invalid_arg "Churn: horizon must be >= 1"
  | Leader_killer { grace; max_kills } ->
      if grace < 0 then invalid_arg "Churn: grace must be >= 0";
      if max_kills < 0 then invalid_arg "Churn: max_kills must be >= 0"

(* The adaptive policy has no oblivious part: its kill events depend on
   when elections complete, so the driver schedules them online via
   [kill_policy]. *)
let sample_schedule t ~rng =
  validate t;
  match t with
  | Oblivious events -> events
  | Leader_killer _ -> []
  | Rate { every; p_join; p_leave; max_burst; horizon } ->
      if p_join = 0.0 && p_leave = 0.0 then []
      else begin
        let events = ref [] in
        let at = ref every in
        while !at <= horizon do
          (* One join draw then one leave draw per tick, in this fixed
             order, so a (config, seed) pair replays the exact schedule. *)
          if p_join > 0.0 && Prng.bool rng ~p:p_join then begin
            let burst = 1 + Prng.int rng ~bound:max_burst in
            events := { at = !at; kind = Join burst } :: !events
          end;
          if p_leave > 0.0 && Prng.bool rng ~p:p_leave then
            events := { at = !at; kind = Leave Member } :: !events;
          at := !at + every
        done;
        List.rev !events
      end

let kill_policy = function
  | Leader_killer { grace; max_kills } when max_kills > 0 -> Some (grace, max_kills)
  | Leader_killer _ | Oblivious _ | Rate _ -> None

let event_to_string { at; kind } =
  match kind with
  | Join k -> Printf.sprintf "%d+%d" at k
  | Leave v -> Printf.sprintf "%d-%s" at (victim_to_string v)

(* Full-precision, injective rendering for store keys: two configs that
   could ever run differently must have different descriptors, so floats
   are rendered in hex (the same convention as Runner's fault
   descriptor). *)
let descriptor = function
  | Oblivious events ->
      Printf.sprintf "oblivious[%s]" (String.concat ";" (List.map event_to_string events))
  | Rate { every; p_join; p_leave; max_burst; horizon } ->
      Printf.sprintf "rate(every=%d,join=%h<=%d,leave=%h,horizon=%d)" every p_join
        max_burst p_leave horizon
  | Leader_killer { grace; max_kills } ->
      Printf.sprintf "kill-leader(grace=%d,kills=%d)" grace max_kills

let pp ppf t = Format.pp_print_string ppf (descriptor t)
