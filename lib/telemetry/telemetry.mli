(** Lightweight metrics for the simulator: named counters, wall-clock
    timers, and log₂-binned histograms, with a JSON snapshot.

    Design constraints (see DESIGN.md §9):

    - {b zero dependencies} beyond the OCaml distribution;
    - {b near-zero overhead when disabled} — a sink created with
      [~enabled:false] hands out shared dummy handles, so hot-path
      [incr]/[observe] calls touch one dead cell and timers skip the
      clock read entirely;
    - {b deterministic aggregation} — counters and histograms are
      integer-valued and merge by commutative addition, so aggregating
      per-replication telemetry is independent of domain count and
      scheduling ([jobs=1] and [jobs=4] agree bit-for-bit); only timer
      values (wall-clock seconds) vary run to run;
    - {b pure-data snapshots} — [to_json] emits names in sorted order,
      so two equal sinks render identical JSON. *)

type t
(** A sink: a registry of named metrics. Handles ([counter], [timer],
    [histogram]) are resolved once by name and are cheap to hit. *)

type counter
type timer
type histogram

val create : ?enabled:bool -> unit -> t
(** Fresh sink; [enabled] defaults to [true]. *)

val disabled : unit -> t
(** [create ~enabled:false ()]. *)

val is_enabled : t -> bool

(** {1 Counters} *)

val counter : t -> string -> counter
(** Find-or-create. On a disabled sink, returns a dummy that is never
    reported. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
val counter_value : t -> string -> int
(** Value by name; [0] when absent. *)

(** {1 Timers}

    Wall-clock; one timer accumulates any number of [start]/[stop]
    spans. [stop] without a matching [start] is a no-op. *)

val timer : t -> string -> timer
val start : timer -> unit
val stop : timer -> unit
val time : timer -> (unit -> 'a) -> 'a
(** Run the thunk inside a span (exception-safe). *)

val elapsed_s : timer -> float
(** Total seconds over all closed spans. *)

val timer_seconds : t -> string -> float
(** By name; [0.] when absent. *)

(** {1 Histograms}

    Non-negative integer samples in log₂ bins: bin 0 holds values
    [<= 0], bin [i >= 1] holds values in [[2^(i-1), 2^i)]. Tracks
    count, sum, min, and max exactly. *)

val histogram : t -> string -> histogram
val observe : histogram -> int -> unit
val histogram_count : t -> string -> int
val histogram_sum : t -> string -> int

(** {1 Aggregation and reporting} *)

val merge : into:t -> t -> unit
(** Add every metric of the source into [into] (find-or-create by
    name). Merging into a disabled sink is a no-op. *)

val reset : t -> unit
(** Zero every registered metric (handles stay valid). *)

val to_json : ?timers:bool -> t -> Json.t
(** Snapshot as
    [{"counters": {..}, "timers": {..}, "histograms": {..}}], names
    sorted. [~timers:false] omits the timers section — the
    deterministic subset, used by the [jobs]-independence tests. *)

val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json}: rebuild an enabled sink from a snapshot.
    A round trip through JSON preserves every counter, timer total and
    span count, and histogram exactly, so snapshots from sharded
    processes can be {!merge}d into one report ([merge] is commutative
    on the integer metrics).  [Error] on any malformed section. *)

val pp : Format.formatter -> t -> unit
(** Human-readable multi-line summary (sorted by name). *)
