type counter = { mutable n : int }

type timer = {
  t_live : bool;  (* false on dummy handles: start/stop skip the clock *)
  mutable total_s : float;
  mutable spans : int;
  mutable started_at : float;  (* negative when no span is open *)
}

let hist_bins = 63

type histogram = {
  bins : int array;
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
}

type t = {
  enabled : bool;
  counters : (string, counter) Hashtbl.t;
  timers : (string, timer) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
  (* Shared sinks handed out when disabled, so hot paths stay branch-free. *)
  dummy_counter : counter;
  dummy_timer : timer;
  dummy_histogram : histogram;
}

let fresh_histogram () =
  { bins = Array.make hist_bins 0; h_count = 0; h_sum = 0; h_min = max_int; h_max = min_int }

let create ?(enabled = true) () =
  {
    enabled;
    counters = Hashtbl.create 16;
    timers = Hashtbl.create 8;
    histograms = Hashtbl.create 8;
    dummy_counter = { n = 0 };
    dummy_timer = { t_live = false; total_s = 0.0; spans = 0; started_at = -1.0 };
    dummy_histogram = fresh_histogram ();
  }

let disabled () = create ~enabled:false ()
let is_enabled t = t.enabled

let find_or_add table name make =
  match Hashtbl.find_opt table name with
  | Some x -> x
  | None ->
      let x = make () in
      Hashtbl.add table name x;
      x

(* --- counters --- *)

let counter t name =
  if not t.enabled then t.dummy_counter
  else find_or_add t.counters name (fun () -> { n = 0 })

let incr c = c.n <- c.n + 1
let add c k = c.n <- c.n + k
let value c = c.n

let counter_value t name =
  match Hashtbl.find_opt t.counters name with Some c -> c.n | None -> 0

(* --- timers --- *)

let timer t name =
  if not t.enabled then t.dummy_timer
  else
    find_or_add t.timers name (fun () ->
        { t_live = true; total_s = 0.0; spans = 0; started_at = -1.0 })

let start tm = if tm.t_live then tm.started_at <- Unix.gettimeofday ()

let stop tm =
  if tm.t_live && tm.started_at >= 0.0 then begin
    tm.total_s <- tm.total_s +. (Unix.gettimeofday () -. tm.started_at);
    tm.spans <- tm.spans + 1;
    tm.started_at <- -1.0
  end

let time tm f =
  start tm;
  Fun.protect ~finally:(fun () -> stop tm) f

let elapsed_s tm = tm.total_s

let timer_seconds t name =
  match Hashtbl.find_opt t.timers name with Some tm -> tm.total_s | None -> 0.0

(* --- histograms --- *)

let histogram t name =
  if not t.enabled then t.dummy_histogram
  else find_or_add t.histograms name fresh_histogram

let bin_of v =
  if v <= 0 then 0
  else
    (* bin i >= 1 holds [2^(i-1), 2^i) *)
    let rec go i v = if v = 0 then i else go (i + 1) (v lsr 1) in
    Int.min (hist_bins - 1) (go 0 v)

let observe h v =
  h.bins.(bin_of v) <- h.bins.(bin_of v) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

let histogram_count t name =
  match Hashtbl.find_opt t.histograms name with Some h -> h.h_count | None -> 0

let histogram_sum t name =
  match Hashtbl.find_opt t.histograms name with Some h -> h.h_sum | None -> 0

(* --- aggregation --- *)

let merge ~into src =
  if into.enabled then begin
    Hashtbl.iter (fun name c -> add (counter into name) c.n) src.counters;
    Hashtbl.iter
      (fun name tm ->
        let dst = timer into name in
        dst.total_s <- dst.total_s +. tm.total_s;
        dst.spans <- dst.spans + tm.spans)
      src.timers;
    Hashtbl.iter
      (fun name h ->
        let dst = histogram into name in
        Array.iteri (fun i k -> dst.bins.(i) <- dst.bins.(i) + k) h.bins;
        dst.h_count <- dst.h_count + h.h_count;
        dst.h_sum <- dst.h_sum + h.h_sum;
        if h.h_min < dst.h_min then dst.h_min <- h.h_min;
        if h.h_max > dst.h_max then dst.h_max <- h.h_max)
      src.histograms
  end

let reset t =
  Hashtbl.iter (fun _ c -> c.n <- 0) t.counters;
  Hashtbl.iter
    (fun _ tm ->
      tm.total_s <- 0.0;
      tm.spans <- 0;
      tm.started_at <- -1.0)
    t.timers;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.bins 0 hist_bins 0;
      h.h_count <- 0;
      h.h_sum <- 0;
      h.h_min <- max_int;
      h.h_max <- min_int)
    t.histograms

(* --- reporting --- *)

let sorted_items table =
  Hashtbl.fold (fun name x acc -> (name, x) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let histogram_json h =
  let bins =
    Array.to_list h.bins
    |> List.mapi (fun i k -> (i, k))
    |> List.filter (fun (_, k) -> k > 0)
    |> List.map (fun (i, k) -> Json.List [ Json.Int i; Json.Int k ])
  in
  Json.Obj
    [
      ("count", Json.Int h.h_count);
      ("sum", Json.Int h.h_sum);
      ("min", if h.h_count = 0 then Json.Null else Json.Int h.h_min);
      ("max", if h.h_count = 0 then Json.Null else Json.Int h.h_max);
      ("log2_bins", Json.List bins);
    ]

let to_json ?(timers = true) t =
  let counters =
    List.map (fun (name, c) -> (name, Json.Int c.n)) (sorted_items t.counters)
  in
  let timer_fields =
    List.map
      (fun (name, tm) ->
        ( name,
          Json.Obj [ ("seconds", Json.Float tm.total_s); ("spans", Json.Int tm.spans) ] ))
      (sorted_items t.timers)
  in
  let histograms =
    List.map (fun (name, h) -> (name, histogram_json h)) (sorted_items t.histograms)
  in
  Json.Obj
    (("counters", Json.Obj counters)
     :: (if timers then [ ("timers", Json.Obj timer_fields) ] else [])
    @ [ ("histograms", Json.Obj histograms) ])

let of_json json =
  let t = create () in
  let obj k =
    match Json.member k json with Some (Json.Obj fields) -> Some fields | _ -> None
  in
  let decode_counters fields =
    List.fold_left
      (fun acc (name, v) ->
        match acc with
        | Error _ as e -> e
        | Ok () -> (
            match Json.to_int_opt v with
            | Some n ->
                add (counter t name) n;
                Ok ()
            | None -> Error (Printf.sprintf "telemetry: counter %S is not an int" name)))
      (Ok ()) fields
  in
  let decode_timers fields =
    List.fold_left
      (fun acc (name, v) ->
        match acc with
        | Error _ as e -> e
        | Ok () -> (
            match
              ( Option.bind (Json.member "seconds" v) Json.to_float_opt,
                Option.bind (Json.member "spans" v) Json.to_int_opt )
            with
            | Some seconds, Some spans ->
                let tm = timer t name in
                tm.total_s <- seconds;
                tm.spans <- spans;
                Ok ()
            | _ -> Error (Printf.sprintf "telemetry: timer %S is malformed" name)))
      (Ok ()) fields
  in
  let decode_histograms fields =
    List.fold_left
      (fun acc (name, v) ->
        match acc with
        | Error _ as e -> e
        | Ok () -> (
            let int k = Option.bind (Json.member k v) Json.to_int_opt in
            match
              (int "count", int "sum", Option.bind (Json.member "log2_bins" v) Json.to_list_opt)
            with
            | Some count, Some sum, Some bins -> (
                let h = histogram t name in
                h.h_count <- count;
                h.h_sum <- sum;
                (match int "min" with Some m -> h.h_min <- m | None -> ());
                (match int "max" with Some m -> h.h_max <- m | None -> ());
                let rec fill = function
                  | [] -> Ok ()
                  | Json.List [ Json.Int i; Json.Int k ] :: tl
                    when i >= 0 && i < hist_bins ->
                      h.bins.(i) <- k;
                      fill tl
                  | _ ->
                      Error
                        (Printf.sprintf "telemetry: histogram %S has a malformed bin" name)
                in
                fill bins)
            | _ -> Error (Printf.sprintf "telemetry: histogram %S is malformed" name)))
      (Ok ()) fields
  in
  let ( let* ) r f = match r with Error _ as e -> e | Ok () -> f () in
  match obj "counters" with
  | None -> Error "telemetry: missing counters object"
  | Some counters ->
      let* () = decode_counters counters in
      let* () = decode_timers (Option.value (obj "timers") ~default:[]) in
      let* () = decode_histograms (Option.value (obj "histograms") ~default:[]) in
      Ok t

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (name, c) -> Format.fprintf ppf "counter    %-32s %d@ " name c.n)
    (sorted_items t.counters);
  List.iter
    (fun (name, tm) ->
      Format.fprintf ppf "timer      %-32s %.3fs over %d span(s)@ " name tm.total_s tm.spans)
    (sorted_items t.timers);
  List.iter
    (fun (name, h) ->
      if h.h_count = 0 then Format.fprintf ppf "histogram  %-32s empty@ " name
      else
        Format.fprintf ppf "histogram  %-32s count=%d sum=%d min=%d max=%d mean=%.1f@ " name
          h.h_count h.h_sum h.h_min h.h_max
          (float_of_int h.h_sum /. float_of_int h.h_count))
    (sorted_items t.histograms);
  Format.fprintf ppf "@]"
