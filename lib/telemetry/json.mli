(** A minimal JSON representation, writer, and parser.

    Deliberately tiny and dependency-free: just enough to persist
    telemetry snapshots, benchmark records ([BENCH_<date>.json]) and
    experiment summaries, and to read them back for regression diffs.
    Output is deterministic: object fields are emitted in the order
    given, floats print via a stable shortest value-exact format
    ([%.12g] widened to [%.15g]/[%.17g] only when needed to round-trip,
    integral values as [x.0]), and non-finite floats become [null] —
    so every finite float parses back bit-identically. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering (JSONL-safe: no embedded newlines). *)

val pp : Format.formatter -> t -> unit
(** Human-oriented rendering with two-space indentation. *)

val to_channel : out_channel -> t -> unit
(** [pp] to a channel, with a trailing newline. *)

val write_file : path:string -> t -> unit
(** Pretty-print to [path] (created or truncated). *)

val write_line : out_channel -> t -> unit
(** One compact line + ['\n'] — the JSONL record format. *)

(** {1 Reading} *)

val of_string : string -> (t, string) result
(** Parse one JSON value (standard JSON; numbers without ['.'], ['e']
    that fit an OCaml [int] load as [Int], everything else as [Float]).
    Errors carry a character offset and a short description. *)

val read_file : path:string -> (t, string) result

(** {1 Accessors} *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on missing field or non-object. *)

val to_float_opt : t -> float option
(** [Int] and [Float] both coerce; everything else is [None]. *)

val to_int_opt : t -> int option
val to_string_opt : t -> string option
val to_list_opt : t -> t list option
