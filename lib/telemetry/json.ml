type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- writing --- *)

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* Stable, compact float image; integral values keep a ".0" marker so
   they round-trip as floats, and non-finite values (illegal in JSON)
   degrade to null.  The image is value-exact: start from the short
   %.12g form and add significant digits only when parsing the image
   back would not reproduce the float — the run store relies on
   serialized results decoding bit-identically. *)
let float_image f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s
    else
      let s = Printf.sprintf "%.15g" f in
      if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string b (float_image f)
      else Buffer.add_string b "null"
  | String s -> escape b s
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          write b x)
        xs;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape b k;
          Buffer.add_char b ':';
          write b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

let rec pp ppf = function
  | (Null | Bool _ | Int _ | Float _ | String _) as v ->
      Format.pp_print_string ppf (to_string v)
  | List [] -> Format.pp_print_string ppf "[]"
  | List xs ->
      Format.fprintf ppf "@[<v 2>[";
      List.iteri
        (fun i x -> Format.fprintf ppf "%s@,%a" (if i > 0 then "," else "") pp x)
        xs;
      Format.fprintf ppf "@]@,]"
  | Obj [] -> Format.pp_print_string ppf "{}"
  | Obj fields ->
      Format.fprintf ppf "@[<v 2>{";
      List.iteri
        (fun i (k, v) ->
          Format.fprintf ppf "%s@,%s: %a"
            (if i > 0 then "," else "")
            (to_string (String k))
            pp v)
        fields;
      Format.fprintf ppf "@]@,}"

let to_channel oc v =
  let ppf = Format.formatter_of_out_channel oc in
  Format.fprintf ppf "%a@." pp v

let write_file ~path v =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel oc v)

let write_line oc v =
  output_string oc (to_string v);
  output_char oc '\n'

(* --- parsing: a plain recursive-descent reader --- *)

type cursor = { src : string; mutable pos : int }

exception Parse_error of int * string

let error c msg = raise (Parse_error (c.pos, msg))
let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      c.pos <- c.pos + 1;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> error c (Printf.sprintf "expected %C" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else error c (Printf.sprintf "expected %s" word)

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' -> (
        c.pos <- c.pos + 1;
        match peek c with
        | Some '"' -> Buffer.add_char b '"'; c.pos <- c.pos + 1; go ()
        | Some '\\' -> Buffer.add_char b '\\'; c.pos <- c.pos + 1; go ()
        | Some '/' -> Buffer.add_char b '/'; c.pos <- c.pos + 1; go ()
        | Some 'n' -> Buffer.add_char b '\n'; c.pos <- c.pos + 1; go ()
        | Some 'r' -> Buffer.add_char b '\r'; c.pos <- c.pos + 1; go ()
        | Some 't' -> Buffer.add_char b '\t'; c.pos <- c.pos + 1; go ()
        | Some 'b' -> Buffer.add_char b '\b'; c.pos <- c.pos + 1; go ()
        | Some 'f' -> Buffer.add_char b '\012'; c.pos <- c.pos + 1; go ()
        | Some 'u' ->
            if c.pos + 5 > String.length c.src then error c "truncated \\u escape";
            let hex = String.sub c.src (c.pos + 1) 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | None -> error c "bad \\u escape"
            | Some code ->
                (* Keep it simple: BMP code points only, encoded as UTF-8. *)
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end);
            c.pos <- c.pos + 5;
            go ()
        | _ -> error c "bad escape")
    | Some ch ->
        Buffer.add_char b ch;
        c.pos <- c.pos + 1;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while (match peek c with Some ch when is_num_char ch -> true | _ -> false) do
    c.pos <- c.pos + 1
  done;
  let lexeme = String.sub c.src start (c.pos - start) in
  let integral =
    (not (String.contains lexeme '.'))
    && (not (String.contains lexeme 'e'))
    && not (String.contains lexeme 'E')
  in
  if integral then
    match int_of_string_opt lexeme with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt lexeme with
        | Some f -> Float f
        | None -> error c "bad number")
  else
    match float_of_string_opt lexeme with
    | Some f -> Float f
    | None -> error c "bad number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> String (parse_string c)
  | Some '[' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some ']' then begin
        c.pos <- c.pos + 1;
        List []
      end
      else begin
        let items = ref [ parse_value c ] in
        skip_ws c;
        while peek c = Some ',' do
          c.pos <- c.pos + 1;
          items := parse_value c :: !items;
          skip_ws c
        done;
        expect c ']';
        List (List.rev !items)
      end
  | Some '{' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some '}' then begin
        c.pos <- c.pos + 1;
        Obj []
      end
      else begin
        let field () =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          (k, parse_value c)
        in
        let fields = ref [ field () ] in
        skip_ws c;
        while peek c = Some ',' do
          c.pos <- c.pos + 1;
          fields := field () :: !fields;
          skip_ws c
        done;
        expect c '}';
        Obj (List.rev !fields)
      end
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> error c (Printf.sprintf "unexpected %C" ch)

let of_string s =
  let c = { src = s; pos = 0 } in
  match
    let v = parse_value c in
    skip_ws c;
    if c.pos <> String.length s then error c "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (pos, msg) -> Error (Printf.sprintf "at offset %d: %s" pos msg)

let read_file ~path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      of_string s

(* --- accessors --- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float_opt = function Int i -> Some (float_of_int i) | Float f -> Some f | _ -> None
let to_int_opt = function Int i -> Some i | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
let to_list_opt = function List xs -> Some xs | _ -> None
