(** Crash-safe filesystem primitives shared by the run store and every
    report writer (soak violation reports, [--json-out], bench
    reports).

    The durability contract is tmp + rename: content is written to a
    unique sibling temporary file and renamed over the destination, so
    a reader (or a process killed mid-write) observes either the old
    file or the complete new file — never a truncated one. *)

val ensure_dir : string -> unit
(** Create [dir] and any missing ancestors (like [mkdir -p]).
    Idempotent and race-tolerant: a concurrent creator is not an
    error. *)

val write_string : path:string -> string -> unit
(** Atomically replace [path] with the given bytes.  The parent
    directory is created if missing; the temporary sibling carries the
    writer's pid so concurrent writers never share it. *)

val write_json : path:string -> Jamming_telemetry.Json.t -> unit
(** Atomic variant of {!Jamming_telemetry.Json.write_file}: same
    pretty-printed rendering with a trailing newline, written via
    {!write_string}. *)

val read_string : path:string -> (string, string) result
(** Whole-file binary read; [Error] carries the system message. *)

val remove_tree : string -> unit
(** Recursively delete a file or directory; missing paths are
    ignored. *)
