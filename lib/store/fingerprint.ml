let sanitize s =
  String.map
    (fun c ->
      match c with 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '.' | '_' | '-' -> c | _ -> '-')
    s

let computed =
  lazy
    (match Sys.getenv_opt "JAMMING_STORE_FINGERPRINT" with
    | Some s when String.trim s <> "" -> sanitize (String.trim s)
    | Some _ | None -> (
        match Digest.file Sys.executable_name with
        | d -> Digest.to_hex d
        | exception _ -> "unknown"))

let code () = Lazy.force computed
