(** Stable cell keys for the content-addressed run store.

    A key is an ordered list of named components describing everything
    the cached value is a deterministic function of (engine name,
    setup, adversary, reps, base seed, …).  The canonical encoding is
    injective — strings are length-prefixed, floats rendered in hex
    ([%h]) so two distinct values never collide — and the hash
    additionally covers the store schema version and the code
    fingerprint, so changing {e any} component, the record format, or
    the binary yields a different address. *)

type component =
  | S of string
  | I of int
  | F of float  (** hashed via the exact hex image, never a rounding *)
  | B of bool

type t

val v : (string * component) list -> t
(** Build a key.  Raises [Invalid_argument] on duplicate or empty
    component names (a silent duplicate would weaken injectivity). *)

val canonical : schema:int -> fingerprint:string -> t -> string
(** The injective byte encoding that is hashed. *)

val hash : schema:int -> fingerprint:string -> t -> string
(** MD5 (hex) of {!canonical} — the entry's content address. *)

val to_json : t -> Jamming_telemetry.Json.t
(** Human-readable echo of the components, embedded in each record for
    debugging; never parsed back. *)
