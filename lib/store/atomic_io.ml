let rec ensure_dir dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then ensure_dir parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> () (* lost a creation race *)
  end

(* Distinct temporaries per writer: pid (separate processes) plus a
   process-local counter (separate writes in one process). *)
let tmp_counter = ref 0

let write_string ~path content =
  ensure_dir (Filename.dirname path);
  incr tmp_counter;
  let tmp = Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ()) !tmp_counter in
  let oc = open_out_bin tmp in
  (match output_string oc content with
  | () -> close_out oc
  | exception e ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e);
  match Sys.rename tmp path with
  | () -> ()
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

let write_json ~path v =
  (* Byte-compatible with Json.write_file: pretty form + newline. *)
  write_string ~path (Format.asprintf "%a@." Jamming_telemetry.Json.pp v)

let read_string ~path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic -> (
      match really_input_string ic (in_channel_length ic) with
      | s ->
          close_in_noerr ic;
          Ok s
      | exception e ->
          close_in_noerr ic;
          Error (Printexc.to_string e))

let rec remove_tree path =
  match Sys.is_directory path with
  | exception Sys_error _ -> ()
  | true ->
      Array.iter (fun f -> remove_tree (Filename.concat path f)) (Sys.readdir path);
      (try Sys.rmdir path with Sys_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())
