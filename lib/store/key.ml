module Json = Jamming_telemetry.Json

type component = S of string | I of int | F of float | B of bool

type t = (string * component) list

let v fields =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (name, _) ->
      if name = "" then invalid_arg "Store key: empty component name";
      if Hashtbl.mem seen name then
        invalid_arg (Printf.sprintf "Store key: duplicate component %S" name);
      Hashtbl.add seen name ())
    fields;
  fields

(* Injective per-component image: tagged, and length-prefixed where the
   payload could contain the separator. *)
let component_image = function
  | S s -> Printf.sprintf "s%d:%s" (String.length s) s
  | I i -> Printf.sprintf "i%d" i
  | F f -> Printf.sprintf "f%h" f
  | B b -> if b then "b1" else "b0"

let canonical ~schema ~fingerprint t =
  let b = Buffer.create 128 in
  Buffer.add_string b (Printf.sprintf "jamming-store/%d\n" schema);
  Buffer.add_string b (Printf.sprintf "fp%d:%s\n" (String.length fingerprint) fingerprint);
  List.iter
    (fun (name, c) ->
      Buffer.add_string b (Printf.sprintf "%d:%s=%s\n" (String.length name) name (component_image c)))
    t;
  Buffer.contents b

let hash ~schema ~fingerprint t =
  Digest.to_hex (Digest.string (canonical ~schema ~fingerprint t))

let to_json t =
  Json.Obj
    (List.map
       (fun (name, c) ->
         ( name,
           match c with
           | S s -> Json.String s
           | I i -> Json.Int i
           | F f -> Json.Float f
           | B b -> Json.Bool b ))
       t)
