module Json = Jamming_telemetry.Json
module Telemetry = Jamming_telemetry.Telemetry

type counters = {
  mutable hits : int;
  mutable misses : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
}

type t = { root : string; fingerprint : string; io : counters }

let create ?fingerprint ~root () =
  let fingerprint =
    match fingerprint with Some f -> f | None -> Fingerprint.code ()
  in
  { root; fingerprint; io = { hits = 0; misses = 0; bytes_read = 0; bytes_written = 0 } }

let root t = t.root
let fingerprint t = t.fingerprint

let key_hash t key =
  Key.hash ~schema:Layout.schema_version ~fingerprint:t.fingerprint key

let entry_path t key =
  Layout.entry_path ~root:t.root ~fingerprint:t.fingerprint ~hash:(key_hash t key)

let bump telemetry name n =
  match telemetry with
  | None -> ()
  | Some tel -> Telemetry.add (Telemetry.counter tel ("store." ^ name)) n

let find ?telemetry t key ~decode =
  let hash = key_hash t key in
  let path = Layout.entry_path ~root:t.root ~fingerprint:t.fingerprint ~hash in
  let miss () =
    t.io.misses <- t.io.misses + 1;
    bump telemetry "misses" 1;
    None
  in
  match Atomic_io.read_string ~path with
  | Error _ -> miss ()
  | Ok raw -> (
      t.io.bytes_read <- t.io.bytes_read + String.length raw;
      bump telemetry "bytes_read" (String.length raw);
      match Json.of_string raw with
      | Error _ -> miss ()
      | Ok record -> (
          let str field = Option.bind (Json.member field record) Json.to_string_opt in
          (* The record must claim the current schema and the exact
             address we computed; anything else — including a hash
             collision across keys, which MD5 makes negligible — is
             treated as absent. *)
          if str "schema" <> Some Layout.schema_id || str "hash" <> Some hash then
            miss ()
          else
            match Option.bind (Json.member "value" record) decode with
            | None -> miss ()
            | Some v ->
                t.io.hits <- t.io.hits + 1;
                bump telemetry "hits" 1;
                Some v))

let add ?telemetry t key value =
  let hash = key_hash t key in
  let path = Layout.entry_path ~root:t.root ~fingerprint:t.fingerprint ~hash in
  let record =
    Json.Obj
      [
        ("schema", Json.String Layout.schema_id);
        ("fingerprint", Json.String t.fingerprint);
        ("key", Key.to_json key);
        ("hash", Json.String hash);
        ("value", value);
      ]
  in
  (* Compact one-line rendering: cache entries are machine-only. *)
  let raw = Json.to_string record ^ "\n" in
  Atomic_io.write_string ~path raw;
  t.io.bytes_written <- t.io.bytes_written + String.length raw;
  bump telemetry "bytes_written" (String.length raw)

(* --- stats and GC --- *)

type io_stats = { hits : int; misses : int; bytes_read : int; bytes_written : int }

let io_stats t =
  {
    hits = t.io.hits;
    misses = t.io.misses;
    bytes_read = t.io.bytes_read;
    bytes_written = t.io.bytes_written;
  }

let hit_rate (s : io_stats) =
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else 100.0 *. float_of_int s.hits /. float_of_int total

type disk_stats = { entries : int; bytes : int }

let file_size path = match Unix.stat path with
  | { Unix.st_size; _ } -> st_size
  | exception Unix.Unix_error _ -> 0

let rec tree_stats path acc =
  match Sys.is_directory path with
  | exception Sys_error _ -> acc
  | true ->
      Array.fold_left
        (fun acc name -> tree_stats (Filename.concat path name) acc)
        acc (Sys.readdir path)
  | false ->
      {
        entries = (acc.entries + if Filename.check_suffix path ".json" then 1 else 0);
        bytes = acc.bytes + file_size path;
      }

let disk_stats t =
  let acc = ref { entries = 0; bytes = 0 } in
  Layout.iter_entries ~root:t.root (fun ~fingerprint:_ ~path ->
      acc := { entries = !acc.entries + 1; bytes = !acc.bytes + file_size path });
  !acc

let gc t =
  let removed = ref { entries = 0; bytes = 0 } in
  Layout.iter_stale ~root:t.root ~keep_fingerprint:t.fingerprint (fun path ->
      let s = tree_stats path { entries = 0; bytes = 0 } in
      removed := { entries = !removed.entries + s.entries; bytes = !removed.bytes + s.bytes };
      Atomic_io.remove_tree path);
  !removed

let clear t =
  let s = tree_stats t.root { entries = 0; bytes = 0 } in
  Atomic_io.remove_tree t.root;
  s

let stats_json t =
  let io = io_stats t and disk = disk_stats t in
  Json.Obj
    [
      ("hits", Json.Int io.hits);
      ("misses", Json.Int io.misses);
      ("hit_rate", Json.Float (hit_rate io));
      ("bytes_read", Json.Int io.bytes_read);
      ("bytes_written", Json.Int io.bytes_written);
      ("entries", Json.Int disk.entries);
      ("disk_bytes", Json.Int disk.bytes);
    ]

let pp_io_stats ppf (s : io_stats) =
  Format.fprintf ppf "hits=%d misses=%d hit_rate=%.1f%% bytes_read=%d bytes_written=%d"
    s.hits s.misses (hit_rate s) s.bytes_read s.bytes_written
