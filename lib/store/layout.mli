(** On-disk layout of the run store (DESIGN.md §11).

    {v
    <root>/v<schema>/<fingerprint>/<hh>/<hash>.json
    v}

    One directory per schema version, one per code fingerprint under
    it, then 256-way sharding on the first two hex digits of the entry
    hash so no single directory grows unboundedly.  Version and
    fingerprint live in the {e path} (as well as in the key hash) so GC
    can drop stale generations with a directory walk, no record
    parsing. *)

val schema_version : int
(** Bumped whenever the record or value encoding changes shape. *)

val schema_id : string
(** The record's ["schema"] field, ["jamming-election.store/<v>"]. *)

val version_dir : root:string -> string
val fingerprint_dir : root:string -> fingerprint:string -> string

val entry_path : root:string -> fingerprint:string -> hash:string -> string
(** Where the record for [hash] lives. *)

val iter_entries : root:string -> (fingerprint:string -> path:string -> unit) -> unit
(** Visit every [*.json] entry of the {e current} schema version,
    whatever its fingerprint.  Unknown files are skipped. *)

val iter_stale : root:string -> keep_fingerprint:string -> (string -> unit) -> unit
(** Visit every path that GC should delete: other schema-version
    directories wholesale, other fingerprints' directories under the
    current version, and leftover [*.tmp.*] files under the kept
    fingerprint. *)
