let schema_version = 1
let schema_id = Printf.sprintf "jamming-election.store/%d" schema_version

let version_dir ~root = Filename.concat root (Printf.sprintf "v%d" schema_version)

let fingerprint_dir ~root ~fingerprint = Filename.concat (version_dir ~root) fingerprint

let entry_path ~root ~fingerprint ~hash =
  let shard = if String.length hash >= 2 then String.sub hash 0 2 else "xx" in
  Filename.concat
    (Filename.concat (fingerprint_dir ~root ~fingerprint) shard)
    (hash ^ ".json")

let subdirs dir =
  match Sys.readdir dir with exception Sys_error _ -> [||] | names -> names

let is_dir p = try Sys.is_directory p with Sys_error _ -> false

let is_entry name = Filename.check_suffix name ".json"
let is_tmp name = List.exists (String.equal "tmp") (String.split_on_char '.' name)

let iter_entries ~root f =
  let vdir = version_dir ~root in
  Array.iter
    (fun fingerprint ->
      let fdir = Filename.concat vdir fingerprint in
      if is_dir fdir then
        Array.iter
          (fun shard ->
            let sdir = Filename.concat fdir shard in
            if is_dir sdir then
              Array.iter
                (fun name ->
                  if is_entry name && not (is_tmp name) then
                    f ~fingerprint ~path:(Filename.concat sdir name))
                (subdirs sdir))
          (subdirs fdir))
    (subdirs vdir)

let iter_stale ~root ~keep_fingerprint f =
  (* Other schema versions: the whole directory is stale. *)
  Array.iter
    (fun name ->
      let p = Filename.concat root name in
      if
        is_dir p
        && String.length name > 1
        && name.[0] = 'v'
        && name <> Printf.sprintf "v%d" schema_version
      then f p)
    (subdirs root);
  let vdir = version_dir ~root in
  Array.iter
    (fun fingerprint ->
      let fdir = Filename.concat vdir fingerprint in
      if is_dir fdir then
        if fingerprint <> keep_fingerprint then f fdir
        else
          (* Current generation: only interrupted writes are stale. *)
          Array.iter
            (fun shard ->
              let sdir = Filename.concat fdir shard in
              if is_dir sdir then
                Array.iter
                  (fun name -> if is_tmp name then f (Filename.concat sdir name))
                  (subdirs sdir))
            (subdirs fdir))
    (subdirs vdir)
