(** Persistent, content-addressed result store (DESIGN.md §11).

    Values are JSON documents addressed by a {!Key.t}; the address also
    covers the store schema version and the code fingerprint, so a
    rebuild or a format change can never serve stale bytes.  Writes are
    atomic (tmp + rename via {!Atomic_io}), and loading is
    corruption-tolerant: an unreadable, unparsable, mis-schema'd,
    mis-addressed or undecodable record is a {e miss}, never a crash —
    the caller recomputes and the entry is overwritten.

    The store never invalidates by time: entries are immutable facts
    about (code, key), reclaimed only by {!gc} (stale generations) or
    {!clear}. *)

type t

val create : ?fingerprint:string -> root:string -> unit -> t
(** A handle rooted at [root] (created lazily on first write).
    [fingerprint] defaults to {!Fingerprint.code}[ ()]. *)

val root : t -> string
val fingerprint : t -> string

val entry_path : t -> Key.t -> string
(** Where the record for [key] lives (exposed for tests and
    debugging). *)

val find :
  ?telemetry:Jamming_telemetry.Telemetry.t ->
  t ->
  Key.t ->
  decode:(Jamming_telemetry.Json.t -> 'a option) ->
  'a option
(** Look up a key and decode its value.  Counts a {e hit} only when
    every step succeeds — read, parse, schema check, address check, and
    [decode]; any failure counts a miss.  [telemetry] additionally
    receives the [store.hits] / [store.misses] / [store.bytes_read]
    counters. *)

val add : ?telemetry:Jamming_telemetry.Telemetry.t -> t -> Key.t -> Jamming_telemetry.Json.t -> unit
(** Atomically persist [value] under [key] (last write wins).
    [telemetry] receives [store.bytes_written]. *)

(** {1 Stats and GC} *)

type io_stats = { hits : int; misses : int; bytes_read : int; bytes_written : int }

val io_stats : t -> io_stats
(** This process's traffic through this handle. *)

val hit_rate : io_stats -> float
(** [hits / (hits + misses)] in percent; [0.] before any lookup. *)

type disk_stats = { entries : int; bytes : int }

val disk_stats : t -> disk_stats
(** Entries and bytes currently on disk for the current schema
    version, across all fingerprints. *)

val gc : t -> disk_stats
(** Delete stale generations — other schema versions, other code
    fingerprints, interrupted-write temporaries — and return what was
    reclaimed (entries counts [*.json] records only). *)

val clear : t -> disk_stats
(** Delete the whole store under [root]; returns what was removed. *)

val stats_json : t -> Jamming_telemetry.Json.t
(** [{"hits":..,"misses":..,"hit_rate":..,"bytes_read":..,
    "bytes_written":..,"entries":..,"disk_bytes":..}] — the io stats of
    this handle plus the on-disk totals. *)

val pp_io_stats : Format.formatter -> io_stats -> unit
(** ["hits=H misses=M hit_rate=R% bytes_read=BR bytes_written=BW"] —
    the one-line summary the CLIs print (and CI parses). *)
