(** The code fingerprint mixed into every cache key.

    A cached sample is only valid for the code that produced it: the
    engines, protocols and PRNG together define the deterministic
    function a cell key names.  Rather than track which modules feed a
    given cell, the store takes the conservative fingerprint-policy of
    DESIGN.md §11 — hash the whole running executable — so {e any}
    rebuild invalidates the cache.  False invalidation costs a
    recompute; a false hit would silently serve results from different
    code. *)

val code : unit -> string
(** MD5 (hex) of [Sys.executable_name], computed once per process.
    The [JAMMING_STORE_FINGERPRINT] environment variable, when set to a
    non-empty value, overrides the digest (sanitized to
    [[A-Za-z0-9._-]] so it stays path-safe) — useful for sharing a
    cache across binaries known to embed identical simulation code.
    Falls back to ["unknown"] if the executable cannot be read. *)
