(** Exact enforcement of the (T, 1−ε)-bounded jamming constraint (§1.1).

    A (T, 1−ε)-bounded adversary may jam at most [(1−ε)·w] slots of {e any}
    window of [w ≥ T] contiguous slots — including windows that close only
    in the future.  Jamming slot [t] is therefore legal iff for every
    window start [k ≤ t]:

    {v jams(k..t)  ≤  (1−ε) · max (t−k+1, T) v}

    (for windows shorter than [T] the binding bound is the [T]-window that
    will eventually close over them, which is tightest when no further jam
    is added).

    Writing [h(m) = J(m) − (1−ε)·m] for the prefix jam count [J(m)], the
    condition splits into

    - (A) [h(t+1) ≤ min { h(k) : 0 ≤ k ≤ t+1−T }], and
    - (B) [jams in the last T−1 slots, plus the new one, ≤ (1−ε)·T],

    both maintainable in O(1) amortised time and O(T) space.  Checking at
    jam times only is sound: a violated window is always detected when its
    last jam is placed.

    This module is the single point through which every adversary strategy
    is filtered, so strategies may over-ask; the simulation engine only
    jams when [can_jam] agrees. *)

type t

exception Illegal_jam of int
(** Raised by {!advance} when asked to record an illegal jam; carries the
    slot index. *)

val create : window:int -> eps:float -> t
(** [create ~window ~eps] is a fresh budget for a (window, 1−eps)-bounded
    adversary.  Requires [window ≥ 1] and [0 < eps ≤ 1].  With [eps = 1]
    no slot may ever be jammed. *)

val window : t -> int
val eps : t -> float

val elapsed : t -> int
(** Number of slots recorded so far. *)

val jammed_total : t -> int
(** Total jams recorded so far. *)

val can_jam : t -> bool
(** Whether jamming the {e next} slot keeps every present and future
    window within bound. *)

val advance : t -> jam:bool -> unit
(** Record the outcome of the next slot.  Raises {!Illegal_jam} if
    [jam = true] but {!can_jam} is [false]. *)

val max_jams_in_window : t -> int
(** [⌊(1−ε)·T⌋], the jam capacity of a length-[T] window. *)

(** {1 Offline verification} *)

type window_violation = {
  start : int;  (** First slot of the offending window. *)
  length : int;  (** Window length ([≥ window]). *)
  jams_in_window : int;  (** Jams inside — exceeds [(1−ε)·length]. *)
}

val pp_window_violation : Format.formatter -> window_violation -> unit

val verify_bounded :
  window:int -> eps:float -> bool array -> window_violation option
(** [verify_bounded ~window ~eps jams] checks a {e recorded} jam pattern
    ([jams.(i)] = slot [i] was jammed) against the (window, 1−eps)
    constraint, exactly, for {e every} window of {e every} length
    [≥ window], in O(t) time via prefix-minimum accounting — the
    independent, after-the-fact counterpart of the online enforcer
    above, used by the soak harness to cross-check executed runs.
    Returns the first violated window found (scanning window ends left
    to right), or [None] if the pattern is bounded. *)
