(** Adversary strategies.

    A strategy decides, {e before} seeing the honest stations' actions in
    the current slot (the paper's adaptivity rule, §1.1), whether it wants
    to jam.  It then observes the slot outcome exactly like a listener:
    the post-jam channel state.  The strategy may over-ask: the engine
    only jams when {!Budget.can_jam} also agrees, so every executed
    adversary is (T, 1−ε)-bounded by construction.

    Strategies are closures over private mutable state, so a value of
    type {!t} must be used for a single run only; use {!factory} values
    in replicated experiments. *)

type t = {
  name : string;
  wants_jam : slot:int -> can_jam:bool -> bool;
      (** Does the adversary want to jam this slot?  [can_jam] is the
          budget verdict, offered so strategies can plan (e.g. save
          budget rather than waste a denied request). *)
  notify : slot:int -> jammed:bool -> state:Jamming_channel.Channel.state -> unit;
      (** Outcome of the slot: whether it was actually jammed, and the
          channel state as a listener perceives it. *)
}

type factory = unit -> t
(** Fresh strategy instance per run. *)

val none : factory
(** Never jams. *)

val greedy : factory
(** Jams every slot the budget allows.  The natural "maximum pressure"
    adversary. *)

val random : seed:int -> p:float -> factory
(** Asks to jam each slot independently with probability [p].  Each
    factory invocation derives a fresh stream from [seed] and an
    instance counter, so replicated runs see independent jam patterns
    while remaining exactly reproducible from [seed] (instances are
    numbered in creation order). *)

val front_loaded : window:int -> factory
(** Tries to jam the earliest slots of every aligned [window]-length
    block (the Lemma 2.7 lower-bound adversary), subject to the budget:
    it asks to jam whenever its position in the current block is below
    the block's capacity. *)

val periodic : period:int -> burst:int -> factory
(** Jams the first [burst] slots of every [period]-slot phase, subject to
    budget.  Requires [1 ≤ burst ≤ period]. *)

val silence_breaker : factory
(** Adaptive: jams whenever the previous slot was [Null] — tries to stop
    the protocol from harvesting the Nulls it values most.  (The budget
    still guarantees an ε fraction of every window survives.) *)

val streak_saver : quota:int -> factory
(** Adaptive: spends budget only after [quota] consecutive non-jammed
    slots have elapsed, stretching the budget over the whole run. *)

val pattern : string -> factory
(** [pattern "JJ..J."] jams where the (cyclically repeated) schedule has
    a ['J'] (or ['j'; ['1'] also accepted) and stays idle on ['.'] (or
    ['0'; whitespace is skipped).  An oblivious, fully reproducible
    strategy, handy for tests and worked examples.  Raises
    [Invalid_argument] on an empty or malformed schedule. *)

val stateful :
  name:string ->
  init:(unit -> 's) ->
  wants:('s -> slot:int -> can_jam:bool -> bool) ->
  notify:('s -> slot:int -> jammed:bool -> state:Jamming_channel.Channel.state -> unit) ->
  factory
(** General constructor for protocol-aware adversaries (used by
    [Jamming_core.Adaptive_jammers] to build the LESK-tracking
    single-suppressor). *)
