(* See budget.mli for the derivation of conditions (A) and (B).

   Invariants, with [m] = slots recorded so far (prefix length) and
   [jams] = J(m):
   - [prefix_jams.(k mod window) = J(k)] for [k] in [max(0, m−window+1) .. m];
   - [eligible_min = min { h(k) : 0 ≤ k ≤ m − window }] (+∞ if none),
     where [h(k) = J(k) − (1−ε)·k] is recomputed from the stored integer
     [J(k)] so no floating error accumulates;
   - [recent_jams] = number of jams among the last [min (window−1, m)]
     slots, with flags kept in [recent_ring]. *)

type t = {
  window : int;
  eps : float;
  mutable m : int;
  mutable jams : int;
  prefix_jams : int array; (* circular, size window *)
  mutable eligible_min : float;
  recent_ring : bool array; (* circular, size max (window-1) 1 *)
  mutable recent_jams : int;
}

exception Illegal_jam of int

let tolerance = 1e-9

let create ~window ~eps =
  if window < 1 then invalid_arg "Budget.create: window must be >= 1";
  if not (eps > 0.0 && eps <= 1.0) then
    invalid_arg "Budget.create: eps must lie in (0, 1]";
  {
    window;
    eps;
    m = 0;
    jams = 0;
    prefix_jams = Array.make window 0;
    eligible_min = infinity;
    recent_ring = Array.make (Int.max (window - 1) 1) false;
    recent_jams = 0;
  }

let window t = t.window
let eps t = t.eps
let elapsed t = t.m
let jammed_total t = t.jams
let max_jams_in_window t = int_of_float ((1.0 -. t.eps) *. float_of_int t.window)

let h t ~jams ~k = float_of_int jams -. ((1.0 -. t.eps) *. float_of_int k)

(* min { h(k) : 0 <= k <= m+1-T }, i.e. the bound relevant to windows of
   length >= T ending at the new slot.  [eligible_min] covers k <= m-T;
   the single extra prefix k = m+1-T is still in the ring. *)
let min_h_for_next t =
  let k = t.m + 1 - t.window in
  if k < 0 then infinity
  else
    let extra = h t ~jams:t.prefix_jams.(k mod t.window) ~k in
    Float.min t.eligible_min extra

let can_jam t =
  let bound_t = (1.0 -. t.eps) *. float_of_int t.window in
  (* (B): the T-window that will close over the last T−1 slots + this jam. *)
  float_of_int (t.recent_jams + 1) <= bound_t +. tolerance
  (* (A): all already-closable windows of length >= T ending here. *)
  && h t ~jams:(t.jams + 1) ~k:(t.m + 1) <= min_h_for_next t +. tolerance

type window_violation = { start : int; length : int; jams_in_window : int }

let pp_window_violation ppf v =
  Format.fprintf ppf "window [%d, %d) of %d slots holds %d jams" v.start
    (v.start + v.length) v.length v.jams_in_window

let verify_bounded ~window ~eps jams =
  if window < 1 then invalid_arg "Budget.verify_bounded: window must be >= 1";
  if not (eps > 0.0 && eps <= 1.0) then
    invalid_arg "Budget.verify_bounded: eps must lie in (0, 1]";
  let t = Array.length jams in
  (* Prefix counts J(0..t); a window [k, m) of length >= window violates
     iff J(m) - J(k) > (1-eps)(m-k), i.e. h(m) > h(k) with
     h(k) = J(k) - (1-eps)*k.  Scanning m while maintaining
     min { h(k) : k <= m - window } checks every window of every length
     >= window exactly, in O(t) — no sampled window sizes. *)
  let prefix = Array.make (t + 1) 0 in
  for i = 0 to t - 1 do
    prefix.(i + 1) <- prefix.(i) + if jams.(i) then 1 else 0
  done;
  let h k = float_of_int prefix.(k) -. ((1.0 -. eps) *. float_of_int k) in
  let min_h = ref infinity and argmin = ref (-1) in
  let violation = ref None in
  let m = ref window in
  while !violation = None && !m <= t do
    let k = !m - window in
    if h k < !min_h then begin
      min_h := h k;
      argmin := k
    end;
    if h !m > !min_h +. tolerance then
      violation :=
        Some
          {
            start = !argmin;
            length = !m - !argmin;
            jams_in_window = prefix.(!m) - prefix.(!argmin);
          };
    incr m
  done;
  !violation

let advance t ~jam =
  if jam && not (can_jam t) then raise (Illegal_jam t.m);
  let next = t.m + 1 in
  (* Retire prefix k = next − window from the ring into [eligible_min]. *)
  let retiring = next - t.window in
  if retiring >= 0 then begin
    let hr = h t ~jams:t.prefix_jams.(retiring mod t.window) ~k:retiring in
    t.eligible_min <- Float.min t.eligible_min hr
  end;
  if jam then t.jams <- t.jams + 1;
  t.prefix_jams.(next mod t.window) <- t.jams;
  if t.window > 1 then begin
    let pos = t.m mod (t.window - 1) in
    (* The flag at [pos] belongs to slot m − (window−1); it leaves the
       recent window exactly when slot m enters it. *)
    if t.m >= t.window - 1 && t.recent_ring.(pos) then
      t.recent_jams <- t.recent_jams - 1;
    t.recent_ring.(pos) <- jam;
    if jam then t.recent_jams <- t.recent_jams + 1
  end;
  t.m <- next
