module Channel = Jamming_channel.Channel

type t = {
  name : string;
  wants_jam : slot:int -> can_jam:bool -> bool;
  notify : slot:int -> jammed:bool -> state:Channel.state -> unit;
}

type factory = unit -> t

let no_notify ~slot:_ ~jammed:_ ~state:_ = ()

let none () =
  { name = "none"; wants_jam = (fun ~slot:_ ~can_jam:_ -> false); notify = no_notify }

let greedy () =
  { name = "greedy"; wants_jam = (fun ~slot:_ ~can_jam -> can_jam); notify = no_notify }

let random ~seed ~p =
  if not (p >= 0.0 && p <= 1.0) then invalid_arg "Adversary.random: p must lie in [0, 1]";
  (* Mix an instance counter into the seed so that each factory
     invocation gets a fresh stream: baking [seed] in directly made
     every instance — and hence every replication — replay the identical
     jam pattern.  Runs stay reproducible from the caller's seed because
     instances are numbered deterministically in creation order. *)
  let instances = ref 0 in
  fun () ->
    let instance = !instances in
    incr instances;
    let rng =
      Jamming_prng.Prng.create
        ~seed:
          (Jamming_prng.Prng.seed_of_string
             (Printf.sprintf "adversary/random/%d/%d" seed instance))
    in
    {
      name = Printf.sprintf "random(p=%.2f)" p;
      wants_jam = (fun ~slot:_ ~can_jam:_ -> Jamming_prng.Prng.bool rng ~p);
      notify = no_notify;
    }

let front_loaded ~window =
  if window < 1 then invalid_arg "Adversary.front_loaded: window must be >= 1";
  fun () ->
    {
      name = Printf.sprintf "front-loaded(T=%d)" window;
      wants_jam =
        (fun ~slot ~can_jam ->
          (* Ask while early in the aligned block; the budget trims the
             request to what (T, 1-eps)-boundedness really allows. *)
          can_jam && slot mod window < window - 1);
      notify = no_notify;
    }

let periodic ~period ~burst =
  if period < 1 || burst < 1 || burst > period then
    invalid_arg "Adversary.periodic: need 1 <= burst <= period";
  fun () ->
    {
      name = Printf.sprintf "periodic(%d/%d)" burst period;
      wants_jam = (fun ~slot ~can_jam:_ -> slot mod period < burst);
      notify = no_notify;
    }

let silence_breaker () =
  let last_was_null = ref false in
  {
    name = "silence-breaker";
    wants_jam = (fun ~slot:_ ~can_jam:_ -> !last_was_null);
    notify =
      (fun ~slot:_ ~jammed:_ ~state ->
        last_was_null := Channel.equal_state state Channel.Null);
  }

let streak_saver ~quota =
  if quota < 1 then invalid_arg "Adversary.streak_saver: quota must be >= 1";
  fun () ->
    let clear_streak = ref 0 in
    {
      name = Printf.sprintf "streak-saver(%d)" quota;
      wants_jam = (fun ~slot:_ ~can_jam:_ -> !clear_streak >= quota);
      notify =
        (fun ~slot:_ ~jammed ~state:_ ->
          if jammed then clear_streak := 0 else incr clear_streak);
    }

let pattern spec =
  let cells =
    String.to_seq spec
    |> Seq.filter_map (fun c ->
           match c with
           | 'J' | 'j' | '1' -> Some true
           | '.' | '0' -> Some false
           | ' ' | '\t' | '\n' -> None
           | _ -> invalid_arg (Printf.sprintf "Adversary.pattern: bad character %C" c))
    |> Array.of_seq
  in
  if Array.length cells = 0 then invalid_arg "Adversary.pattern: empty schedule";
  fun () ->
    {
      name = Printf.sprintf "pattern(%s)" spec;
      wants_jam = (fun ~slot ~can_jam:_ -> cells.(slot mod Array.length cells));
      notify = no_notify;
    }

let stateful ~name ~init ~wants ~notify () =
  let state = init () in
  {
    name;
    wants_jam = (fun ~slot ~can_jam -> wants state ~slot ~can_jam);
    notify = (fun ~slot ~jammed ~state:st -> notify state ~slot ~jammed ~state:st);
  }
