type state = Null | Single | Collision

let equal_state a b =
  match a, b with
  | Null, Null | Single, Single | Collision, Collision -> true
  | (Null | Single | Collision), _ -> false

let state_to_string = function
  | Null -> "Null"
  | Single -> "Single"
  | Collision -> "Collision"

let pp_state ppf st = Format.pp_print_string ppf (state_to_string st)

type cd_model = Strong_cd | Weak_cd | No_cd

let equal_cd_model a b =
  match a, b with
  | Strong_cd, Strong_cd | Weak_cd, Weak_cd | No_cd, No_cd -> true
  | (Strong_cd | Weak_cd | No_cd), _ -> false

let cd_model_to_string = function
  | Strong_cd -> "strong-CD"
  | Weak_cd -> "weak-CD"
  | No_cd -> "no-CD"

let pp_cd_model ppf cd = Format.pp_print_string ppf (cd_model_to_string cd)

let resolve ~transmitters ~jammed =
  if transmitters < 0 then invalid_arg "Channel.resolve: negative transmitter count";
  if jammed then Collision
  else
    match transmitters with
    | 0 -> Null
    | 1 -> Single
    | _ -> Collision

let perceive cd st ~transmitted =
  match cd with
  | Strong_cd -> st
  | Weak_cd -> if transmitted then Collision else st
  | No_cd -> (
      if transmitted then Collision
      else
        match st with
        | Single -> Single
        | Null | Collision -> Collision)

let listener_knows_null = function
  | Strong_cd | Weak_cd -> true
  | No_cd -> false
