(** The single-hop multiple-access channel of the paper (§1.1).

    Time is slotted.  In each slot every station either transmits or
    listens.  The {e true} state of the channel is a function of the
    number of honest transmitters and of whether the adversary jams the
    slot; what a given station {e perceives} additionally depends on the
    collision-detection model and on whether that station transmitted. *)

type state =
  | Null  (** idle channel: no transmitter and no jamming *)
  | Single  (** exactly one transmitter, slot not jammed *)
  | Collision
      (** at least two transmitters, or a jammed slot (indistinguishable) *)

val equal_state : state -> state -> bool
val pp_state : Format.formatter -> state -> unit
val state_to_string : state -> string

type cd_model =
  | Strong_cd
      (** stations transmit and listen simultaneously; everyone receives
          the true slot state (§1.1) *)
  | Weak_cd
      (** transmitters learn nothing beyond "Single or Collision"; the
          paper's Function 3 makes them assume [Collision] *)
  | No_cd
      (** listeners cannot distinguish [Null] from [Collision]; the channel
          has only two observable states, [Single] and no-[Single] *)

val equal_cd_model : cd_model -> cd_model -> bool
val pp_cd_model : Format.formatter -> cd_model -> unit
val cd_model_to_string : cd_model -> string

val resolve : transmitters:int -> jammed:bool -> state
(** True state of a slot: jamming is indistinguishable from extra
    transmitters, so any jammed slot resolves to [Collision] unless a
    lone jam over silence still reads as [Collision] (the adversary emits
    energy).  [transmitters] must be non-negative. *)

val perceive : cd_model -> state -> transmitted:bool -> state
(** [perceive cd st ~transmitted] is the state reported to a station.
    - [Strong_cd]: the true state, for everyone.
    - [Weak_cd]: listeners get the true state; transmitters get
      [Collision] (they only know the state is [Single] or [Collision]).
    - [No_cd]: transmitters get [Collision]; listeners get [Single] for
      [Single] and [Collision] for both [Null] and [Collision]
      (no-[Single] is encoded as [Collision]). *)

val listener_knows_null : cd_model -> bool
(** Whether a listening station can observe [Null] in this model. *)
