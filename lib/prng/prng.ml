(* xoshiro256** with SplitMix64 seeding (Blackman & Vigna).  The four
   64-bit state words live in a 32-byte [Bytes.t] rather than mutable
   Int64 record fields: loads and stores through the %caml_bytes_*64u
   primitives stay unboxed in the generated code, so a [bits64] step
   allocates nothing where the record representation boxed every field
   write.  The stream is bit-identical to the record version — same
   arithmetic, same word order — and, as before, identical on 32- and
   64-bit platforms because all values are Int64. *)

type t = Bytes.t

external unsafe_get_64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external unsafe_set_64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

let ( +% ) = Int64.add
let ( *% ) = Int64.mul
let ( ^% ) = Int64.logxor
let ( >>% ) = Int64.shift_right_logical
let ( <<% ) = Int64.shift_left

let splitmix64_next state =
  state := !state +% 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = (z ^% (z >>% 30)) *% 0xBF58476D1CE4E5B9L in
  let z = (z ^% (z >>% 27)) *% 0x94D049BB133111EBL in
  z ^% (z >>% 31)

let of_splitmix state =
  let g = Bytes.create 32 in
  unsafe_set_64 g 0 (splitmix64_next state);
  unsafe_set_64 g 8 (splitmix64_next state);
  unsafe_set_64 g 16 (splitmix64_next state);
  unsafe_set_64 g 24 (splitmix64_next state);
  g

let create ~seed = of_splitmix (ref (Int64.of_int seed))

let copy = Bytes.copy

let[@inline] rotl x k = Int64.logor (x <<% k) (x >>% (64 - k))

let[@inline] bits64 g =
  let s0 = unsafe_get_64 g 0 in
  let s1 = unsafe_get_64 g 8 in
  let s2 = unsafe_get_64 g 16 in
  let s3 = unsafe_get_64 g 24 in
  let result = rotl (s1 *% 5L) 7 *% 9L in
  let t = s1 <<% 17 in
  let s2 = s2 ^% s0 in
  let s3 = s3 ^% s1 in
  let s1 = s1 ^% s2 in
  let s0 = s0 ^% s3 in
  let s2 = s2 ^% t in
  let s3 = rotl s3 45 in
  unsafe_set_64 g 0 s0;
  unsafe_set_64 g 8 s1;
  unsafe_set_64 g 16 s2;
  unsafe_set_64 g 24 s3;
  result

let split g =
  (* Reseed a child through SplitMix64 so that short cycles between parent
     and child streams are broken even for adjacent outputs. *)
  of_splitmix (ref (bits64 g))

let[@inline] float g = Int64.to_float (bits64 g >>% 11) *. 0x1p-53

let int g ~bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Unbiased rejection sampling: mask to the smallest covering power of
     two and retry on overshoot (expected < 2 draws). *)
  let mask =
    let rec widen m = if m >= bound - 1 then m else widen ((m lsl 1) lor 1) in
    widen 1
  in
  let rec draw () =
    let v = Int64.to_int (bits64 g >>% 1) land mask in
    if v >= bound then draw () else v
  in
  draw ()

let[@inline] bool g ~p = if p >= 1.0 then true else if p <= 0.0 then false else float g < p

let seed_of_string s =
  (* FNV-1a folded to 63 bits; stable across runs unlike Hashtbl.hash. *)
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := !h ^% Int64.of_int (Char.code c);
      h := !h *% 0x100000001b3L)
    s;
  Int64.to_int (!h >>% 1) land max_int

let seed_stream ~base ~tag i = seed_of_string (Printf.sprintf "%d/%s/%d" base tag i)
