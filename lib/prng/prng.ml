(* xoshiro256** with SplitMix64 seeding (Blackman & Vigna).  All state is
   Int64 to get identical streams on 32- and 64-bit platforms. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let ( +% ) = Int64.add
let ( *% ) = Int64.mul
let ( ^% ) = Int64.logxor
let ( >>% ) = Int64.shift_right_logical
let ( <<% ) = Int64.shift_left

let splitmix64_next state =
  state := !state +% 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = (z ^% (z >>% 30)) *% 0xBF58476D1CE4E5B9L in
  let z = (z ^% (z >>% 27)) *% 0x94D049BB133111EBL in
  z ^% (z >>% 31)

let create ~seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let copy g = { s0 = g.s0; s1 = g.s1; s2 = g.s2; s3 = g.s3 }

let rotl x k = Int64.logor (x <<% k) (x >>% (64 - k))

let bits64 g =
  let result = rotl (g.s1 *% 5L) 7 *% 9L in
  let t = g.s1 <<% 17 in
  g.s2 <- g.s2 ^% g.s0;
  g.s3 <- g.s3 ^% g.s1;
  g.s1 <- g.s1 ^% g.s2;
  g.s0 <- g.s0 ^% g.s3;
  g.s2 <- g.s2 ^% t;
  g.s3 <- rotl g.s3 45;
  result

let split g =
  (* Reseed a child through SplitMix64 so that short cycles between parent
     and child streams are broken even for adjacent outputs. *)
  let state = ref (bits64 g) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let float g = Int64.to_float (bits64 g >>% 11) *. 0x1p-53

let int g ~bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Unbiased rejection sampling: mask to the smallest covering power of
     two and retry on overshoot (expected < 2 draws). *)
  let mask =
    let rec widen m = if m >= bound - 1 then m else widen ((m lsl 1) lor 1) in
    widen 1
  in
  let rec draw () =
    let v = Int64.to_int (bits64 g >>% 1) land mask in
    if v >= bound then draw () else v
  in
  draw ()

let bool g ~p = if p >= 1.0 then true else if p <= 0.0 then false else float g < p

let seed_of_string s =
  (* FNV-1a folded to 63 bits; stable across runs unlike Hashtbl.hash. *)
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := !h ^% Int64.of_int (Char.code c);
      h := !h *% 0x100000001b3L)
    s;
  Int64.to_int (!h >>% 1) land max_int

let seed_stream ~base ~tag i = seed_of_string (Printf.sprintf "%d/%s/%d" base tag i)
