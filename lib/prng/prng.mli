(** Deterministic pseudo-random number generation.

    The whole simulator is deterministic given a seed: every experiment,
    test and benchmark threads an explicit generator through the code.
    The generator is xoshiro256** seeded via SplitMix64, following the
    reference implementations of Blackman and Vigna.  Independent streams
    for sub-components (stations, adversaries, replications) are obtained
    with {!split}, which derives a new generator from the current one in a
    way that keeps the parent and child streams statistically independent. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator from a 63-bit seed.  Equal seeds give
    equal streams on every platform. *)

val copy : t -> t
(** [copy g] is an independent duplicate of the current state of [g]:
    both produce the same subsequent stream. *)

val split : t -> t
(** [split g] advances [g] and returns a fresh generator whose stream is
    independent of the remainder of [g]'s stream. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val float : t -> float
(** [float g] is uniform on [\[0, 1)], with 53 bits of precision. *)

val int : t -> bound:int -> int
(** [int g ~bound] is uniform on [\[0, bound)].  [bound] must be positive. *)

val bool : t -> p:float -> bool
(** [bool g ~p] is [true] with probability [p] (clamped to [\[0, 1\]]). *)

val seed_of_string : string -> int
(** Stable 63-bit hash of a string, for naming replication streams. *)

val seed_stream : base:int -> tag:string -> int -> int
(** [seed_stream ~base ~tag i] is the [i]-th seed of the named stream —
    [seed_of_string (Printf.sprintf "%d/%s/%d" base tag i)] exactly, the
    derivation every published table was produced with.  Splitting a
    replication across domains or processes by index keeps each run's
    seed (hence its result) independent of the partitioning. *)
