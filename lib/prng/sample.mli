(** Random variates needed by the simulator.

    The most important primitive here is {!trichotomy}: when every one of
    [n] stations transmits independently with the same probability [p]
    (a {e uniform} protocol in the sense of Nakano–Olariu), the channel
    state of the slot depends only on whether the number of transmitters
    is 0, 1 or at least 2.  The three probabilities have closed forms, so
    the slot can be resolved in O(1) instead of O(n) — this is what lets
    scaling experiments reach millions of stations. *)

type trichotomy =
  | Zero  (** no transmitter: channel would be Null *)
  | One  (** exactly one transmitter: channel would be Single *)
  | Many  (** at least two transmitters: channel would be Collision *)

val p_zero : n:int -> p:float -> float
(** [(1 - p)^n], computed in log-space for numerical stability. *)

val p_one : n:int -> p:float -> float
(** [n·p·(1 - p)^(n-1)]. *)

val p_many : n:int -> p:float -> float
(** [1 - p_zero - p_one], clamped to [\[0, 1\]]. *)

val trichotomy : Prng.t -> n:int -> p:float -> trichotomy
(** Exact O(1) sample of the transmitter-count class for [n] independent
    Bernoulli([p]) stations.  [n] must be non-negative and [p] in
    [\[0, 1\]]. *)

val bernoulli : Prng.t -> p:float -> bool
(** [true] with probability [p]. *)

val geometric : Prng.t -> p:float -> int
(** Number of failures before the first success of a Bernoulli([p])
    sequence, [p > 0].  Sampled by inversion; variates beyond the
    integer range (possible for tiny [p] and a uniform draw near 1)
    are clamped to [max_int]. *)

val geometric_of_u : p:float -> float -> int
(** The deterministic inversion behind {!geometric} at a given uniform
    draw [u ∈ \[0, 1)], exposed so boundary cases (tiny [p], [u] at the
    representable edge below 1) can be tested without steering the
    generator. *)

val binomial : Prng.t -> n:int -> p:float -> int
(** Binomial([n], [p]) variate, exact in every regime.  [p > 0.5]
    reflects to [n - binomial ~p:(1 - p)] through the normal dispatch;
    then a Bernoulli sum for [n <= 256], sequential inversion for
    [n·p <= 30], and Hörmann's BTRS transformed rejection beyond.  All
    three branches sample the exact distribution — in particular the
    tails P(X = 0) and P(X = 1) that the aggregate engine's slot
    trichotomy hinges on — at O(1) expected cost for large [n]. *)

val log_binomial_pmf : n:int -> p:float -> k:int -> float
(** log P(Binomial(n, p) = k), computed via a Stirling-series
    [log k!] accurate to ~1e-11.  [-inf] outside the support.  Exposed
    as the golden reference for sampler chi-square/KS tests. *)

val gaussian : Prng.t -> mean:float -> stddev:float -> float
(** Normal variate via the polar (Marsaglia) method. *)

val exponential : Prng.t -> rate:float -> float
(** Exponential variate with the given rate, [rate > 0]. *)

val shuffle : Prng.t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : Prng.t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)
