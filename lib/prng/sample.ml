type trichotomy = Zero | One | Many

let check_np n p =
  if n < 0 then invalid_arg "Sample: n must be non-negative";
  if not (p >= 0.0 && p <= 1.0) then invalid_arg "Sample: p must lie in [0, 1]"

(* log (1-p)^k, safe for p close to 0 or 1. *)
let log_q_pow ~k ~p =
  if p >= 1.0 then (if k = 0 then 0.0 else neg_infinity)
  else float_of_int k *. Float.log1p (-.p)

let p_zero ~n ~p =
  check_np n p;
  exp (log_q_pow ~k:n ~p)

let p_one ~n ~p =
  check_np n p;
  if n = 0 || p = 0.0 then 0.0
  else if p >= 1.0 then (if n = 1 then 1.0 else 0.0)
  else float_of_int n *. p *. exp (log_q_pow ~k:(n - 1) ~p)

let p_many ~n ~p =
  let v = 1.0 -. p_zero ~n ~p -. p_one ~n ~p in
  Float.min 1.0 (Float.max 0.0 v)

let trichotomy g ~n ~p =
  check_np n p;
  if n = 0 || p = 0.0 then Zero
  else begin
    let u = Prng.float g in
    let z = p_zero ~n ~p in
    if u < z then Zero else if u < z +. p_one ~n ~p then One else Many
  end

let bernoulli g ~p = Prng.bool g ~p

let geometric_of_u ~p u =
  if not (p > 0.0 && p <= 1.0) then invalid_arg "Sample.geometric: need 0 < p <= 1";
  if not (u >= 0.0 && u < 1.0) then invalid_arg "Sample.geometric: need 0 <= u < 1";
  if p = 1.0 then 0
  else begin
    (* Inversion: floor (log (1-u) / log (1-p)); u = 1 cannot occur. *)
    let v = log (1.0 -. u) /. Float.log1p (-.p) in
    (* For u near 1 and tiny p the ratio overflows the integer range,
       where [int_of_float] is unspecified; clamp first.  The negated
       comparison also routes a hypothetical NaN to the clamp. *)
    if not (v < float_of_int max_int) then max_int else int_of_float (Float.floor v)
  end

let geometric g ~p =
  if not (p > 0.0 && p <= 1.0) then invalid_arg "Sample.geometric: need 0 < p <= 1";
  if p = 1.0 then 0 else geometric_of_u ~p (Prng.float g)

let gaussian g ~mean ~stddev =
  let rec polar () =
    let x = (2.0 *. Prng.float g) -. 1.0 in
    let y = (2.0 *. Prng.float g) -. 1.0 in
    let s = (x *. x) +. (y *. y) in
    if s >= 1.0 || s = 0.0 then polar ()
    else x *. sqrt (-2.0 *. log s /. s)
  in
  mean +. (stddev *. polar ())

let exponential g ~rate =
  if not (rate > 0.0) then invalid_arg "Sample.exponential: rate must be positive";
  -.log (1.0 -. Prng.float g) /. rate

let binomial_by_sum g ~n ~p =
  let count = ref 0 in
  for _ = 1 to n do
    if Prng.bool g ~p then incr count
  done;
  !count

(* Inversion by sequential search, fine while n.p is small. *)
let binomial_by_inversion g ~n ~p =
  let q = exp (log_q_pow ~k:n ~p) in
  let ratio = p /. (1.0 -. p) in
  let u = ref (Prng.float g) in
  let k = ref 0 in
  let prob = ref q in
  while !u >= !prob && !k < n do
    u := !u -. !prob;
    prob := !prob *. ratio *. (float_of_int (n - !k) /. float_of_int (!k + 1));
    incr k
  done;
  !k

let binomial g ~n ~p =
  check_np n p;
  if n = 0 || p = 0.0 then 0
  else if p = 1.0 then n
  else if p > 0.5 then n - binomial_by_sum g ~n ~p:(1.0 -. p)
  else if n <= 256 then binomial_by_sum g ~n ~p
  else if float_of_int n *. p <= 30.0 then binomial_by_inversion g ~n ~p
  else begin
    let nf = float_of_int n in
    let mean = nf *. p in
    let stddev = sqrt (nf *. p *. (1.0 -. p)) in
    let v = gaussian g ~mean ~stddev +. 0.5 in
    let v = int_of_float (Float.floor v) in
    Int.max 0 (Int.min n v)
  end

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = Prng.int g ~bound:(i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose g a =
  if Array.length a = 0 then invalid_arg "Sample.choose: empty array";
  a.(Prng.int g ~bound:(Array.length a))
