type trichotomy = Zero | One | Many

let check_np n p =
  if n < 0 then invalid_arg "Sample: n must be non-negative";
  if not (p >= 0.0 && p <= 1.0) then invalid_arg "Sample: p must lie in [0, 1]"

(* log (1-p)^k, safe for p close to 0 or 1. *)
let log_q_pow ~k ~p =
  if p >= 1.0 then (if k = 0 then 0.0 else neg_infinity)
  else float_of_int k *. Float.log1p (-.p)

let p_zero ~n ~p =
  check_np n p;
  exp (log_q_pow ~k:n ~p)

let p_one ~n ~p =
  check_np n p;
  if n = 0 || p = 0.0 then 0.0
  else if p >= 1.0 then (if n = 1 then 1.0 else 0.0)
  else float_of_int n *. p *. exp (log_q_pow ~k:(n - 1) ~p)

let p_many ~n ~p =
  let v = 1.0 -. p_zero ~n ~p -. p_one ~n ~p in
  Float.min 1.0 (Float.max 0.0 v)

let trichotomy g ~n ~p =
  check_np n p;
  if n = 0 || p = 0.0 then Zero
  else begin
    let u = Prng.float g in
    let z = p_zero ~n ~p in
    if u < z then Zero else if u < z +. p_one ~n ~p then One else Many
  end

let bernoulli g ~p = Prng.bool g ~p

let geometric_of_u ~p u =
  if not (p > 0.0 && p <= 1.0) then invalid_arg "Sample.geometric: need 0 < p <= 1";
  if not (u >= 0.0 && u < 1.0) then invalid_arg "Sample.geometric: need 0 <= u < 1";
  if p = 1.0 then 0
  else begin
    (* Inversion: floor (log (1-u) / log (1-p)); u = 1 cannot occur. *)
    let v = log (1.0 -. u) /. Float.log1p (-.p) in
    (* For u near 1 and tiny p the ratio overflows the integer range,
       where [int_of_float] is unspecified; clamp first.  The negated
       comparison also routes a hypothetical NaN to the clamp. *)
    if not (v < float_of_int max_int) then max_int else int_of_float (Float.floor v)
  end

let geometric g ~p =
  if not (p > 0.0 && p <= 1.0) then invalid_arg "Sample.geometric: need 0 < p <= 1";
  if p = 1.0 then 0 else geometric_of_u ~p (Prng.float g)

let gaussian g ~mean ~stddev =
  let rec polar () =
    let x = (2.0 *. Prng.float g) -. 1.0 in
    let y = (2.0 *. Prng.float g) -. 1.0 in
    let s = (x *. x) +. (y *. y) in
    if s >= 1.0 || s = 0.0 then polar ()
    else x *. sqrt (-2.0 *. log s /. s)
  in
  mean +. (stddev *. polar ())

let exponential g ~rate =
  if not (rate > 0.0) then invalid_arg "Sample.exponential: rate must be positive";
  -.log (1.0 -. Prng.float g) /. rate

let binomial_by_sum g ~n ~p =
  let count = ref 0 in
  for _ = 1 to n do
    if Prng.bool g ~p then incr count
  done;
  !count

(* Inversion by sequential search, fine while n.p is small. *)
let binomial_by_inversion g ~n ~p =
  let q = exp (log_q_pow ~k:n ~p) in
  let ratio = p /. (1.0 -. p) in
  let u = ref (Prng.float g) in
  let k = ref 0 in
  let prob = ref q in
  while !u >= !prob && !k < n do
    u := !u -. !prob;
    prob := !prob *. ratio *. (float_of_int (n - !k) /. float_of_int (!k + 1));
    incr k
  done;
  !k

(* Tail of the Stirling series for log k!:
     log k! = (k + 1/2)·log(k + 1) - (k + 1) + (1/2)·log(2π) + tail k.
   Tabulated for k < 10, three-term series beyond (error < 1e-11 there).
   This is the correction term BTRS needs to compare the binomial pmf
   against its dominating envelope exactly. *)
let stirling_tail =
  let table =
    [|
      0.08106146679532726; 0.04134069595540929; 0.02767792568499834;
      0.02079067210376509; 0.01664469118982119; 0.01387612882307075;
      0.01189670994589177; 0.01041126526197209; 0.009255462182712733;
      0.008330563433362871;
    |]
  in
  fun k ->
    if k < 10 then table.(k)
    else begin
      let kp1 = float_of_int (k + 1) in
      let kp1sq = kp1 *. kp1 in
      ((1.0 /. 12.0) -. (((1.0 /. 360.0) -. (1.0 /. 1260.0 /. kp1sq)) /. kp1sq))
      /. kp1
    end

let log_factorial k =
  if k < 0 then invalid_arg "Sample.log_factorial: k must be non-negative";
  let kf = float_of_int k in
  ((kf +. 0.5) *. log (kf +. 1.0))
  -. (kf +. 1.0)
  +. (0.5 *. log (2.0 *. Float.pi))
  +. stirling_tail k

let log_binomial_pmf ~n ~p ~k =
  check_np n p;
  if k < 0 || k > n then neg_infinity
  else if p = 0.0 then if k = 0 then 0.0 else neg_infinity
  else if p = 1.0 then if k = n then 0.0 else neg_infinity
  else
    log_factorial n -. log_factorial k
    -. log_factorial (n - k)
    +. (float_of_int k *. log p)
    +. log_q_pow ~k:(n - k) ~p

(* Hörmann's BTRS transformed-rejection sampler (ACM TOMS 1993, the
   btpe/btrs family).  Exact: candidates from a table-free dominating
   envelope are accepted against the true pmf (Stirling-corrected in
   log space), so unlike a clamped Gaussian the tails P(X = 0), P(X = 1)
   carry their exact mass.  Valid for p <= 0.5 and n·p >= 10; the
   dispatcher only routes n·p > 30 here.  Expected uniforms per variate
   ~2.3, independent of n. *)
let binomial_btrs g ~n ~p =
  let nf = float_of_int n in
  let spq = sqrt (nf *. p *. (1.0 -. p)) in
  let b = 1.15 +. (2.53 *. spq) in
  let a = -0.0873 +. (0.0248 *. b) +. (0.01 *. p) in
  let c = (nf *. p) +. 0.5 in
  let v_r = 0.92 -. (4.2 /. b) in
  let alpha = (2.83 +. (5.1 /. b)) *. spq in
  let r = p /. (1.0 -. p) in
  let m = Float.floor ((nf +. 1.0) *. p) in
  let im = int_of_float m in
  let rec draw () =
    let u = Prng.float g -. 0.5 in
    let v = Prng.float g in
    let us = 0.5 -. Float.abs u in
    let kf = Float.floor ((((2.0 *. a) /. us) +. b) *. u +. c) in
    if kf < 0.0 || kf > nf then draw ()
    else if us >= 0.07 && v <= v_r then int_of_float kf
    else begin
      (* Squeeze failed: full log-acceptance against the exact pmf. *)
      let k = int_of_float kf in
      let log_v = log (v *. alpha /. ((a /. (us *. us)) +. b)) in
      let upper =
        ((m +. 0.5) *. log ((m +. 1.0) /. (r *. (nf -. m +. 1.0))))
        +. ((nf +. 1.0) *. log ((nf -. m +. 1.0) /. (nf -. kf +. 1.0)))
        +. ((kf +. 0.5) *. log (r *. (nf -. kf +. 1.0) /. (kf +. 1.0)))
        +. stirling_tail im
        +. stirling_tail (n - im)
        -. stirling_tail k
        -. stirling_tail (n - k)
      in
      if log_v <= upper then k else draw ()
    end
  in
  draw ()

let rec binomial g ~n ~p =
  check_np n p;
  if n = 0 || p = 0.0 then 0
  else if p = 1.0 then n
  else if p > 0.5 then
    (* Reflect, then recurse so the reflected draw goes through the
       normal dispatch (a direct Bernoulli sum here would be O(n)). *)
    n - binomial g ~n ~p:(1.0 -. p)
  else if n <= 256 then binomial_by_sum g ~n ~p
  else if float_of_int n *. p <= 30.0 then binomial_by_inversion g ~n ~p
  else binomial_btrs g ~n ~p

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = Prng.int g ~bound:(i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose g a =
  if Array.length a = 0 then invalid_arg "Sample.choose: empty array";
  a.(Prng.int g ~bound:(Array.length a))
