module Lmr = Jamming_core.Lmr
module Energy = Jamming_energy.Energy
module Fault_plan = Jamming_faults.Fault_plan
open Test_util

let run_lmr ?(seed = 7) ?(eps = 0.5) ?(window = 32) ?(max_slots = 400_000)
    ?(adversary = Adversary.none) ?meter ~n () =
  let rng = Prng.create ~seed in
  let stations = Engine.make_stations ~n ~rng (Lmr.station ~n) in
  let budget = Budget.create ~window ~eps in
  Engine.run ?meter ~cd:Channel.Strong_cd ~adversary:(adversary ()) ~budget ~max_slots
    ~stations ()

let run_lmr_pool ?(seed = 7) ?(eps = 0.5) ?(window = 32) ?(max_slots = 400_000)
    ?(adversary = Adversary.none) ?plans ?meter ~n () =
  let rng = Prng.create ~seed in
  let pool = Lmr.pool ~n ~rng in
  let budget = Budget.create ~window ~eps in
  Engine.run_pool ?plans ?meter ~cd:Channel.Strong_cd ~adversary:(adversary ()) ~budget
    ~max_slots ~pool ()

let test_elects_one_leader () =
  List.iter
    (fun n ->
      let r = run_lmr ~n () in
      check_true (Printf.sprintf "n=%d completed" n) r.Metrics.completed;
      check_true (Printf.sprintf "n=%d one leader" n) (Metrics.election_ok r))
    [ 1; 2; 3; 5; 16; 64; 257 ]

let test_many_seeds_always_one_leader () =
  for seed = 1 to 40 do
    let r = run_lmr ~seed ~n:9 () in
    check_true (Printf.sprintf "seed %d: one leader" seed) (Metrics.election_ok r)
  done

let test_under_all_adversaries () =
  List.iter
    (fun (name, adversary) ->
      let r = run_lmr ~n:12 ~adversary () in
      check_true (name ^ ": correct election") (Metrics.election_ok r))
    [
      ("none", Adversary.none);
      ("greedy", Adversary.greedy);
      ("random", Adversary.random ~seed:3 ~p:0.6);
      ("silence-breaker", Adversary.silence_breaker);
      ("front-loaded", Adversary.front_loaded ~window:16);
    ]

let result_testable = Alcotest.testable Metrics.pp_result Metrics.equal_result

(* The pool must reproduce the closure stations bit-for-bit — including
   the energy block, which the batch path synthesizes from pool-side
   awake counters rather than meter events. *)
let test_pool_matches_exact () =
  List.iter
    (fun (n, adversary) ->
      List.iter
        (fun seed ->
          let exact = run_lmr ~seed ~n ~adversary ~meter:(Energy.Meter.create ~n) () in
          let pooled =
            run_lmr_pool ~seed ~n ~adversary ~meter:(Energy.Meter.create ~n) ()
          in
          Alcotest.check result_testable
            (Printf.sprintf "n=%d seed=%d pooled = exact" n seed)
            exact pooled)
        [ 1; 2; 3 ])
    [ (1, Adversary.none); (7, Adversary.none); (32, Adversary.greedy) ]

(* The faulty per-station pool path (null plans) must agree with the
   closure engine too: it meters Sleep events instead of reading
   pool_awake. *)
let test_pool_faulty_path_matches_exact () =
  let n = 11 in
  let plans = Array.make n Fault_plan.none in
  let exact = run_lmr ~seed:5 ~n ~meter:(Energy.Meter.create ~n) () in
  let pooled = run_lmr_pool ~seed:5 ~n ~plans ~meter:(Energy.Meter.create ~n) () in
  Alcotest.check result_testable "null-plan pool path = exact" exact pooled

let test_reference_engine_agrees () =
  let n = 13 in
  let run_with ~reference =
    let rng = Prng.create ~seed:11 in
    let stations = Engine.make_stations ~n ~rng (Lmr.station ~n) in
    let budget = Budget.create ~window:32 ~eps:0.5 in
    let meter = Energy.Meter.create ~n in
    let engine = if reference then Engine.run_reference else Engine.run in
    engine ~meter ~cd:Channel.Strong_cd ~adversary:(Adversary.greedy ()) ~budget
      ~max_slots:400_000 ~stations ()
  in
  Alcotest.check result_testable "run = run_reference (sleeping stations)"
    (run_with ~reference:false)
    (run_with ~reference:true)

let median_awake ~n ?adversary ?seed () =
  let r = run_lmr_pool ?seed ?adversary ~meter:(Energy.Meter.create ~n) ~n () in
  check_true "elected" (Metrics.election_ok r);
  match r.Metrics.energy with
  | Some s -> (s.Energy.median_awake, r.Metrics.slots)
  | None -> Alcotest.fail "metered run lost its energy block"

(* The whole point of LMR: the median station is awake for about the
   search length per cycle, not for the whole election. *)
let test_awake_is_log_logarithmic () =
  List.iter
    (fun n ->
      let med, _ = median_awake ~n () in
      check_true
        (Printf.sprintf "n=%d median awake %.1f within per-cycle bound %d" n med
           (Lmr.search_slots ~n + 4))
        (med <= float_of_int (Lmr.search_slots ~n + 4)))
    [ 16; 256; 4096; 65536 ]

let test_awake_stays_small_under_jamming () =
  let med, slots = median_awake ~n:4096 ~adversary:Adversary.greedy () in
  check_true
    (Printf.sprintf "median awake %.1f well below election time %d" med slots)
    (med *. 2.0 <= float_of_int slots);
  check_true "still only a few cycles of awake slots"
    (med <= float_of_int (4 * Lmr.awake_bound ~n:4096))

let test_bounds_monotone () =
  check_int "rounds at n=1" 5 (Lmr.rounds ~n:1);
  check_true "rounds grow with n" (Lmr.rounds ~n:1_000_000 > Lmr.rounds ~n:10);
  check_true "search is log of rounds"
    (Lmr.search_slots ~n:1_000_000_000 <= 7);
  Alcotest.check_raises "n must be positive"
    (Invalid_argument "Lmr.rounds: need n >= 1") (fun () ->
      ignore (Lmr.rounds ~n:0))

let suite =
  [
    Alcotest.test_case "elects exactly one leader" `Quick test_elects_one_leader;
    Alcotest.test_case "forty seeds, one leader each" `Quick
      test_many_seeds_always_one_leader;
    Alcotest.test_case "elects under every adversary" `Quick test_under_all_adversaries;
    Alcotest.test_case "pool is bit-identical to closures" `Quick test_pool_matches_exact;
    Alcotest.test_case "null-plan pool path matches too" `Quick
      test_pool_faulty_path_matches_exact;
    Alcotest.test_case "reference engine agrees under sleep" `Quick
      test_reference_engine_agrees;
    Alcotest.test_case "median awake ~ log log n" `Quick test_awake_is_log_logarithmic;
    Alcotest.test_case "jamming cannot burn the batteries" `Quick
      test_awake_stays_small_under_jamming;
    Alcotest.test_case "bounds sane" `Quick test_bounds_monotone;
  ]
