open Test_util

(* Brute-force O(t^2) reference: a finished jam pattern is (T, 1-eps)-
   bounded iff every contiguous window of length >= T holds at most
   (1-eps)*w jams.  The Budget module additionally treats windows that
   would close in the future as binding (count <= (1-eps)*T for short
   suffixes), so everything it accepts must pass this reference. *)
let reference_valid ~window ~eps jams =
  let n = Array.length jams in
  let ok = ref true in
  for i = 0 to n - 1 do
    let count = ref 0 in
    for j = i to n - 1 do
      if jams.(j) then incr count;
      let w = j - i + 1 in
      if w >= window && float_of_int !count > ((1.0 -. eps) *. float_of_int w) +. 1e-9 then
        ok := false
    done
  done;
  !ok

(* Drive a desired pattern through the budget; return what was jammed. *)
let filter_pattern ~window ~eps desired =
  let b = Budget.create ~window ~eps in
  Array.map
    (fun want ->
      let jam = want && Budget.can_jam b in
      Budget.advance b ~jam;
      jam)
    desired

let test_create_invalid () =
  Alcotest.check_raises "window 0" (Invalid_argument "Budget.create: window must be >= 1")
    (fun () -> ignore (Budget.create ~window:0 ~eps:0.5));
  Alcotest.check_raises "eps 0" (Invalid_argument "Budget.create: eps must lie in (0, 1]")
    (fun () -> ignore (Budget.create ~window:4 ~eps:0.0));
  Alcotest.check_raises "eps > 1" (Invalid_argument "Budget.create: eps must lie in (0, 1]")
    (fun () -> ignore (Budget.create ~window:4 ~eps:1.5))

let test_eps_one_blocks_everything () =
  let b = Budget.create ~window:8 ~eps:1.0 in
  for _ = 1 to 100 do
    check_true "eps=1 never allows a jam" (not (Budget.can_jam b));
    Budget.advance b ~jam:false
  done

let test_window_one_blocks_everything () =
  let b = Budget.create ~window:1 ~eps:0.5 in
  for _ = 1 to 50 do
    check_true "T=1 never allows a jam (each 1-window may hold < 1 jam)"
      (not (Budget.can_jam b));
    Budget.advance b ~jam:false
  done

let test_illegal_jam_raises () =
  let b = Budget.create ~window:4 ~eps:1.0 in
  Alcotest.check_raises "advance with illegal jam" (Budget.Illegal_jam 0) (fun () ->
      Budget.advance b ~jam:true)

let test_counters () =
  let b = Budget.create ~window:4 ~eps:0.5 in
  check_int "window accessor" 4 (Budget.window b);
  check_float "eps accessor" 0.5 (Budget.eps b);
  check_int "max jams in window" 2 (Budget.max_jams_in_window b);
  Budget.advance b ~jam:true;
  Budget.advance b ~jam:false;
  check_int "elapsed" 2 (Budget.elapsed b);
  check_int "jammed_total" 1 (Budget.jammed_total b)

let test_no_three_consecutive_early () =
  (* T=4, eps=0.5: three jams in any 4 consecutive slots would violate
     the window that closes over them — even within the first T slots. *)
  let jams = filter_pattern ~window:4 ~eps:0.5 (Array.make 12 true) in
  for i = 0 to Array.length jams - 4 do
    let c = ref 0 in
    for j = i to i + 3 do
      if jams.(j) then incr c
    done;
    check_true "at most 2 jams per 4-window" (!c <= 2)
  done

let test_greedy_expected_prefix () =
  (* T=4, eps=0.5 greedy: first decisions are jam,jam,idle,idle,idle,jam
     (window [0..4] of length 5 allows only 2 of the first 5). *)
  let jams = filter_pattern ~window:4 ~eps:0.5 (Array.make 6 true) in
  Alcotest.(check (array bool)) "greedy prefix" [| true; true; false; false; false; true |] jams

(* The achievable long-run jam density is NOT (1-eps): integer rounding
   of odd windows binds first.  E.g. (T=4, eps=0.5): a 5-slot window
   admits floor(2.5) = 2 jams, so no pattern exceeds density 2/5.  The
   true cap is min over w >= T of floor((1-eps)w)/w. *)
let density_cap ~window ~eps =
  let cap = ref 1.0 in
  for w = window to 20 * window do
    let allowed = Float.of_int (int_of_float ((1.0 -. eps) *. float_of_int w +. 1e-9)) in
    cap := Float.min !cap (allowed /. float_of_int w)
  done;
  !cap

let test_greedy_achieves_density () =
  List.iter
    (fun (window, eps) ->
      let t = 50 * window in
      let jams = filter_pattern ~window ~eps (Array.make t true) in
      let total = Array.fold_left (fun acc j -> if j then acc + 1 else acc) 0 jams in
      let target = density_cap ~window ~eps *. float_of_int t in
      check_true
        (Printf.sprintf "greedy jams close to the cap (T=%d eps=%.2f): %d vs %.0f" window
           eps total target)
        (float_of_int total >= target -. (3.0 *. float_of_int window) -. 2.0);
      check_true "greedy pattern is reference-valid" (reference_valid ~window ~eps jams))
    [ (4, 0.5); (16, 0.25); (16, 0.75); (64, 0.1); (3, 0.34) ]

let test_burst_after_quiet () =
  (* After a long quiet stretch the adversary may jam (1-eps)T of the next
     window, but no more. *)
  let window = 10 and eps = 0.5 in
  let b = Budget.create ~window ~eps in
  for _ = 1 to 100 do
    Budget.advance b ~jam:false
  done;
  let burst = ref 0 in
  for _ = 1 to window do
    if Budget.can_jam b then begin
      Budget.advance b ~jam:true;
      incr burst
    end
    else Budget.advance b ~jam:false
  done;
  check_int "burst capacity is floor((1-eps)T)" 5 !burst

let test_exhaustive_small_patterns () =
  (* EVERY desire pattern of length 12, for several (T, eps): the
     filtered result must pass the reference checker.  4096 patterns per
     configuration — a complete enumeration, not a sample. *)
  List.iter
    (fun (window, eps) ->
      for code = 0 to (1 lsl 12) - 1 do
        let desired = Array.init 12 (fun i -> code land (1 lsl i) <> 0) in
        let jams = filter_pattern ~window ~eps desired in
        if not (reference_valid ~window ~eps jams) then
          Alcotest.failf "violation for T=%d eps=%.2f desire code %d" window eps code
      done)
    [ (2, 0.5); (3, 0.34); (4, 0.5); (4, 0.75); (5, 0.21) ]

let test_jam_capacity_never_lost () =
  (* Whatever happened before, after T clear slots the adversary can
     always jam at least floor((1-eps)T) of the next T (aligned burst
     capacity regenerates). *)
  let window = 8 and eps = 0.5 in
  List.iter
    (fun seed ->
      let g = Prng.create ~seed in
      let b = Budget.create ~window ~eps in
      (* random legal prefix *)
      for _ = 1 to 100 do
        let jam = Prng.bool g ~p:0.5 && Budget.can_jam b in
        Budget.advance b ~jam
      done;
      (* cooldown *)
      for _ = 1 to window do
        Budget.advance b ~jam:false
      done;
      let burst = ref 0 in
      for _ = 1 to window do
        if Budget.can_jam b then begin
          Budget.advance b ~jam:true;
          incr burst
        end
        else Budget.advance b ~jam:false
      done;
      check_int
        (Printf.sprintf "regenerated capacity (seed %d)" seed)
        (Budget.max_jams_in_window b)
        !burst)
    [ 1; 2; 3; 4; 5 ]

let prop_filtered_patterns_are_valid =
  qtest ~count:300 "budget-filtered random patterns satisfy the reference checker"
    QCheck.(
      triple (int_range 1 12)
        (float_range 0.05 1.0)
        (pair small_int (int_range 1 400)))
    (fun (window, eps, (seed, len)) ->
      let g = Prng.create ~seed in
      let desired = Array.init len (fun _ -> Prng.bool g ~p:0.7) in
      let jams = filter_pattern ~window ~eps desired in
      reference_valid ~window ~eps jams)

let prop_greedy_valid =
  qtest ~count:100 "budget-filtered greedy satisfies the reference checker"
    QCheck.(pair (int_range 1 20) (float_range 0.05 0.95))
    (fun (window, eps) ->
      let jams = filter_pattern ~window ~eps (Array.make (20 * window) true) in
      reference_valid ~window ~eps jams)

let prop_budget_monotone_in_eps =
  qtest ~count:100 "a larger eps never allows more greedy jams"
    QCheck.(pair (int_range 2 16) (pair (float_range 0.1 0.5) (float_range 0.0 0.4)))
    (fun (window, (eps, delta)) ->
      let count e =
        let jams = filter_pattern ~window ~eps:e (Array.make (30 * window) true) in
        Array.fold_left (fun acc j -> if j then acc + 1 else acc) 0 jams
      in
      count (eps +. delta) <= count eps)

(* --- offline verifier --- *)

let test_verify_bounded_validation () =
  Alcotest.check_raises "window 0"
    (Invalid_argument "Budget.verify_bounded: window must be >= 1") (fun () ->
      ignore (Budget.verify_bounded ~window:0 ~eps:0.5 [||]));
  Alcotest.check_raises "eps 0"
    (Invalid_argument "Budget.verify_bounded: eps must lie in (0, 1]") (fun () ->
      ignore (Budget.verify_bounded ~window:4 ~eps:0.0 [||]))

let test_verify_bounded_accepts_filtered () =
  let jams = filter_pattern ~window:4 ~eps:0.5 (Array.make 200 true) in
  Alcotest.(check bool) "filtered greedy pattern is bounded" true
    (Budget.verify_bounded ~window:4 ~eps:0.5 jams = None)

let test_verify_bounded_catches_intermediate_window () =
  (* "JJ..JJ": every window of length exactly T=4 holds 2 <= 2 jams, but
     the length-5 window [0, 5) holds 3 > 2.5 — a violation only visible
     at a window size the old three-size spot check never sampled. *)
  let jams = [| true; true; false; false; true; true |] in
  match Budget.verify_bounded ~window:4 ~eps:0.5 jams with
  | None -> Alcotest.fail "length-5 window violation missed"
  | Some v ->
      check_int "starts at 0" 0 v.Budget.start;
      check_int "length 5" 5 v.Budget.length;
      check_int "three jams" 3 v.Budget.jams_in_window;
      check_true "printable"
        (String.length (Format.asprintf "%a" Budget.pp_window_violation v) > 0)

let test_verify_bounded_empty_and_short () =
  Alcotest.(check bool) "empty pattern bounded" true
    (Budget.verify_bounded ~window:4 ~eps:0.5 [||] = None);
  Alcotest.(check bool) "shorter than T bounded" true
    (Budget.verify_bounded ~window:8 ~eps:0.5 (Array.make 5 true) = None)

let prop_verify_bounded_agrees_with_reference =
  qtest ~count:200 "verify_bounded = brute-force reference on random patterns"
    QCheck.(triple (int_range 1 10) (float_range 0.1 0.9) (pair small_int (int_range 0 60)))
    (fun (window, eps, (seed, len)) ->
      let g = Prng.create ~seed in
      let jams = Array.init len (fun _ -> Prng.bool g ~p:0.6) in
      reference_valid ~window ~eps jams
      = (Budget.verify_bounded ~window ~eps jams = None))

let suite =
  [
    ("create validation", `Quick, test_create_invalid);
    ("verify_bounded validation", `Quick, test_verify_bounded_validation);
    ("verify_bounded accepts filtered patterns", `Quick, test_verify_bounded_accepts_filtered);
    ( "verify_bounded catches intermediate windows",
      `Quick,
      test_verify_bounded_catches_intermediate_window );
    ("verify_bounded trivial patterns", `Quick, test_verify_bounded_empty_and_short);
    prop_verify_bounded_agrees_with_reference;
    ("eps = 1 blocks all jams", `Quick, test_eps_one_blocks_everything);
    ("T = 1 blocks all jams", `Quick, test_window_one_blocks_everything);
    ("illegal jam raises", `Quick, test_illegal_jam_raises);
    ("accessors and counters", `Quick, test_counters);
    ("no 3 jams in a 4-window early", `Quick, test_no_three_consecutive_early);
    ("greedy prefix exact", `Quick, test_greedy_expected_prefix);
    ("greedy reaches the density cap", `Quick, test_greedy_achieves_density);
    ("burst capacity after quiet", `Quick, test_burst_after_quiet);
    ("exhaustive 12-slot patterns", `Slow, test_exhaustive_small_patterns);
    ("jam capacity regenerates", `Quick, test_jam_capacity_never_lost);
    prop_filtered_patterns_are_valid;
    prop_greedy_valid;
    prop_budget_monotone_in_eps;
  ]
