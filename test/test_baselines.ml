module Arss = Jamming_baselines.Arss_mac
module Willard = Jamming_baselines.Willard
module NO = Jamming_baselines.Nakano_olariu
module Backoff = Jamming_baselines.Backoff
open Test_util

let test_arss_config () =
  let cfg = Arss.config ~n:1024 ~window:64 in
  check_true "gamma positive and small" (cfg.Arss.gamma > 0.0 && cfg.Arss.gamma < 0.1);
  check_float "p_hat is 1/24" (1.0 /. 24.0) cfg.Arss.p_hat;
  let cfg_big = Arss.config ~n:1024 ~window:65536 in
  check_true "gamma shrinks with T" (cfg_big.Arss.gamma < cfg.Arss.gamma)

let test_arss_validation () =
  let cfg = Arss.config ~n:64 ~window:16 in
  Alcotest.check_raises "bad gamma" (Invalid_argument "Arss_mac: gamma must be positive")
    (fun () -> ignore (Arss.uniform { cfg with Arss.gamma = 0.0 } ()));
  Alcotest.check_raises "initial_p above cap"
    (Invalid_argument "Arss_mac: initial_p out of range") (fun () ->
      ignore (Arss.uniform { cfg with Arss.initial_p = 0.5 } ()))

let test_arss_elects_benign () =
  List.iter
    (fun n ->
      let result =
        run_uniform ~n ~max_slots:500_000 (Arss.uniform (Arss.config ~n ~window:32))
      in
      check_true (Printf.sprintf "ARSS elects at n=%d" n) result.Metrics.elected)
    [ 4; 64; 1024 ]

let test_arss_elects_under_jamming () =
  let n = 256 in
  let result =
    run_uniform ~n ~adversary:Adversary.greedy ~max_slots:2_000_000
      (Arss.uniform (Arss.config ~n ~window:32))
  in
  check_true "ARSS is robust (it is the paper's robust baseline)" result.Metrics.elected

let test_arss_probability_decreases_on_busy_channel () =
  let u = Arss.uniform (Arss.config ~n:1024 ~window:64) () in
  let p0 = u.Uniform.tx_prob () in
  (* The threshold grows by 2 per back-off, so d decreases cost ~d^2
     collision rounds: 8000 rounds buy ~88 decreases of (1+gamma). *)
  for _ = 1 to 8_000 do
    ignore (u.Uniform.on_state Channel.Collision)
  done;
  check_true "multiplicative decrease under sustained collisions"
    (u.Uniform.tx_prob () < p0 /. 2.0)

let test_arss_probability_capped () =
  let cfg = Arss.config ~n:64 ~window:16 in
  let u = Arss.uniform cfg () in
  for _ = 1 to 5000 do
    ignore (u.Uniform.on_state Channel.Null)
  done;
  check_true "p never exceeds p_hat" (u.Uniform.tx_prob () <= cfg.Arss.p_hat +. 1e-12)

let test_willard_fast_benign () =
  List.iter
    (fun n ->
      let result = run_uniform ~n ~max_slots:10_000 (Willard.uniform ()) in
      check_true (Printf.sprintf "Willard elects at n=%d" n) result.Metrics.elected;
      check_true
        (Printf.sprintf "Willard is loglog-fast at n=%d: %d slots" n result.Metrics.slots)
        (result.Metrics.slots <= 200))
    [ 4; 256; 65536 ]

let test_willard_suffers_under_jamming () =
  (* Not a theorem — a demonstration that fake Collisions mislead the
     binary search: the same election takes far longer. *)
  let n = 1024 in
  let benign = run_uniform ~seed:5 ~n ~max_slots:3_000_000 (Willard.uniform ()) in
  let jammed =
    run_uniform ~seed:5 ~n ~eps:0.3 ~window:64 ~adversary:Adversary.greedy
      ~max_slots:3_000_000 (Willard.uniform ())
  in
  check_true "jamming slows Willard dramatically (or kills it)"
    ((not jammed.Metrics.elected)
    || jammed.Metrics.slots > 20 * Stdlib.max 1 benign.Metrics.slots)

let test_sawtooth_elects () =
  List.iter
    (fun n ->
      let result = run_uniform ~n ~max_slots:200_000 (NO.sawtooth ()) in
      check_true (Printf.sprintf "sawtooth elects at n=%d" n) result.Metrics.elected)
    [ 2; 32; 1024 ]

let test_sawtooth_probability_cycle () =
  let u = NO.sawtooth () () in
  (* Round 1 probes j=1; round 2 probes j=1,2; ... *)
  let expected = [ 0.5; 0.5; 0.25; 0.5; 0.25; 0.125 ] in
  List.iter
    (fun e ->
      check_float "sawtooth probe sequence" e (u.Uniform.tx_prob ());
      ignore (u.Uniform.on_state Channel.Collision))
    expected

let test_geometric_sweep_elects () =
  let result = run_uniform ~n:128 ~max_slots:200_000 (NO.geometric_sweep ()) in
  check_true "geometric sweep elects" result.Metrics.elected

let test_backoff_elects_benign () =
  let result = run_uniform ~n:64 ~max_slots:100_000 (Backoff.uniform ()) in
  check_true "backoff elects on a clear channel" result.Metrics.elected

let test_backoff_starves_under_jamming () =
  (* The canonical divergence: every jam looks like a Collision and
     doubles the backoff; with eps=0.25 the channel is 75% jammed. *)
  let result =
    run_uniform ~seed:11 ~n:64 ~eps:0.25 ~window:32 ~adversary:Adversary.greedy
      ~max_slots:100_000 (Backoff.uniform ())
  in
  let benign = run_uniform ~seed:11 ~n:64 ~max_slots:100_000 (Backoff.uniform ()) in
  check_true "jamming starves backoff"
    ((not result.Metrics.elected) || result.Metrics.slots > 10 * benign.Metrics.slots)

let test_backoff_counter_moves () =
  let u = Backoff.uniform () () in
  check_float "starts at p=1" 1.0 (u.Uniform.tx_prob ());
  ignore (u.Uniform.on_state Channel.Collision);
  check_float "halves on collision" 0.5 (u.Uniform.tx_prob ());
  ignore (u.Uniform.on_state Channel.Null);
  check_float "doubles back on null" 1.0 (u.Uniform.tx_prob ())

let test_known_n_properties () =
  let u = Backoff.known_n ~n:64 () in
  check_float "p = 1/n" (1.0 /. 64.0) (u.Uniform.tx_prob ());
  let result = run_uniform ~n:64 ~max_slots:10_000 (Backoff.known_n ~n:64) in
  check_true "known-n elects quickly" (result.Metrics.elected && result.Metrics.slots < 500)

let test_known_n_validation () =
  Alcotest.check_raises "n = 0" (Invalid_argument "Backoff.known_n: n must be >= 1")
    (fun () -> ignore (Backoff.known_n ~n:0 ()))

let suite =
  [
    ("ARSS config", `Quick, test_arss_config);
    ("ARSS validation", `Quick, test_arss_validation);
    ("ARSS elects, benign", `Quick, test_arss_elects_benign);
    ("ARSS elects under jamming", `Slow, test_arss_elects_under_jamming);
    ("ARSS multiplicative decrease", `Quick, test_arss_probability_decreases_on_busy_channel);
    ("ARSS probability cap", `Quick, test_arss_probability_capped);
    ("Willard loglog-fast benign", `Quick, test_willard_fast_benign);
    ("Willard fragile under jamming", `Slow, test_willard_suffers_under_jamming);
    ("sawtooth elects", `Quick, test_sawtooth_elects);
    ("sawtooth probe cycle", `Quick, test_sawtooth_probability_cycle);
    ("geometric sweep elects", `Quick, test_geometric_sweep_elects);
    ("backoff elects benign", `Quick, test_backoff_elects_benign);
    ("backoff starves under jamming", `Slow, test_backoff_starves_under_jamming);
    ("backoff counter dynamics", `Quick, test_backoff_counter_moves);
    ("known-n reference", `Quick, test_known_n_properties);
    ("known-n validation", `Quick, test_known_n_validation);
  ]
