module Lesk = Jamming_core.Lesk
module Taxonomy = Jamming_core.Taxonomy
open Test_util

let test_logic_initial () =
  let l = Lesk.Logic.create ~eps:0.5 () in
  check_float "u starts at 0" 0.0 (Lesk.Logic.u l);
  check_float "a = 8/eps" 16.0 (Lesk.Logic.a l);
  check_float "tx_prob = 1 at u=0" 1.0 (Lesk.Logic.tx_prob l);
  check_true "not elected" (not (Lesk.Logic.elected l))

let test_config_valid () =
  check_true "0.5 valid" (Lesk.config_valid ~eps:0.5);
  check_true "1.0 valid" (Lesk.config_valid ~eps:1.0);
  check_true "0 invalid" (not (Lesk.config_valid ~eps:0.0));
  check_true "1.5 invalid" (not (Lesk.config_valid ~eps:1.5))

let test_logic_validation () =
  Alcotest.check_raises "eps = 0" (Invalid_argument "Lesk.Logic.create: eps must lie in (0, 1]")
    (fun () -> ignore (Lesk.Logic.create ~eps:0.0 ()));
  Alcotest.check_raises "eps > 1" (Invalid_argument "Lesk.Logic.create: eps must lie in (0, 1]")
    (fun () -> ignore (Lesk.Logic.create ~eps:1.0001 ()));
  Alcotest.check_raises "negative initial u"
    (Invalid_argument "Lesk.Logic.create: initial_u must be >= 0") (fun () ->
      ignore (Lesk.Logic.create ~initial_u:(-1.0) ~eps:0.5 ()))

let test_logic_steps () =
  let l = Lesk.Logic.create ~eps:0.5 () in
  (* Collision: + eps/8 = 1/16. *)
  Lesk.Logic.on_state l Channel.Collision;
  check_float "collision adds 1/a" (1.0 /. 16.0) (Lesk.Logic.u l);
  Lesk.Logic.on_state l Channel.Collision;
  check_float "second collision" (2.0 /. 16.0) (Lesk.Logic.u l);
  (* Null: -1 clamped at 0. *)
  Lesk.Logic.on_state l Channel.Null;
  check_float "null floors at 0" 0.0 (Lesk.Logic.u l);
  for _ = 1 to 32 do
    Lesk.Logic.on_state l Channel.Collision
  done;
  check_float "32 collisions = 2" 2.0 (Lesk.Logic.u l);
  Lesk.Logic.on_state l Channel.Null;
  check_float "null subtracts a full unit" 1.0 (Lesk.Logic.u l);
  check_float "tx prob is 2^-u" 0.5 (Lesk.Logic.tx_prob l)

let test_logic_single_terminates () =
  let l = Lesk.Logic.create ~eps:0.25 () in
  Lesk.Logic.on_state l Channel.Single;
  check_true "elected after Single" (Lesk.Logic.elected l)

let test_null_neutralizes_a_collisions () =
  (* The design invariant of 2.1: one Null cancels exactly a = 8/eps
     collisions. *)
  List.iter
    (fun eps ->
      let l = Lesk.Logic.create ~eps () in
      let a = int_of_float (Lesk.Logic.a l) in
      for _ = 1 to a do
        Lesk.Logic.on_state l Channel.Collision
      done;
      check_float_eps 1e-9 "a collisions = +1" 1.0 (Lesk.Logic.u l);
      Lesk.Logic.on_state l Channel.Null;
      check_float_eps 1e-9 "one Null cancels them" 0.0 (Lesk.Logic.u l))
    [ 0.5; 0.25; 0.125 ]

let test_custom_a () =
  let l = Lesk.Logic.create ~a:4.0 ~eps:0.5 () in
  Lesk.Logic.on_state l Channel.Collision;
  check_float "override step" 0.25 (Lesk.Logic.u l)

let test_uniform_elects_without_adversary () =
  List.iter
    (fun n ->
      let result = run_uniform ~n (Lesk.uniform ~eps:0.5) in
      check_true (Printf.sprintf "elects at n=%d" n) result.Metrics.elected;
      (* Generous sanity envelope: ~40x the theory shape. *)
      let bound = Lesk.expected_time_bound ~eps:0.5 ~n ~window:32 in
      check_true
        (Printf.sprintf "time %d within envelope %.0f at n=%d" result.Metrics.slots
           (40.0 *. bound) n)
        (float_of_int result.Metrics.slots <= 40.0 *. bound))
    [ 1; 2; 16; 256; 4096 ]

let test_uniform_elects_under_greedy_jamming () =
  List.iter
    (fun eps ->
      let result =
        run_uniform ~eps ~adversary:Adversary.greedy ~n:256 (Lesk.uniform ~eps)
      in
      check_true (Printf.sprintf "elects under greedy jamming at eps=%.2f" eps)
        result.Metrics.elected)
    [ 0.8; 0.5; 0.3 ]

let test_station_strong_cd_election () =
  let result = run_exact ~n:32 (Lesk.station ~eps:0.5) in
  check_true "exact engine elects" result.Metrics.elected;
  check_true "exactly one leader, all decided" (Metrics.election_ok result)

let test_station_u_synchronized () =
  (* In strong-CD every station perceives the same states, so the logic
     replicas never diverge: the channel can only produce Null/Single/
     Collision patterns consistent with a common p.  We verify via the
     engine's slot trace replayed through a tracker. *)
  let eps = 0.5 in
  let tracker = Lesk.Logic.create ~eps () in
  let expected_p = ref [] in
  let record (r : Metrics.slot_record) =
    expected_p := Lesk.Logic.tx_prob tracker :: !expected_p;
    Lesk.Logic.on_state tracker r.Metrics.state
  in
  let rng = rng () in
  let stations = Engine.make_stations ~n:8 ~rng (Lesk.station ~eps) in
  let budget = Budget.create ~window:16 ~eps in
  let result =
    Engine.run
      ~observers:[ Jamming_sim.Observer.of_on_slot record ]
      ~cd:Channel.Strong_cd
      ~adversary:(Adversary.greedy ())
      ~budget ~max_slots:100_000 ~stations ()
  in
  check_true "elected" result.Metrics.elected;
  check_true "tracker reaches election too" (Lesk.Logic.elected tracker);
  check_true "probabilities stayed in (0, 1]"
    (List.for_all (fun p -> p > 0.0 && p <= 1.0) !expected_p)

let test_expected_time_bound_shape () =
  let b1 = Lesk.expected_time_bound ~eps:0.5 ~n:1024 ~window:1 in
  let b2 = Lesk.expected_time_bound ~eps:0.5 ~n:1024 ~window:100_000 in
  check_float "T dominates when large" 100_000.0 b2;
  check_true "log term when T small" (b1 < 1000.0);
  let tighter = Lesk.expected_time_bound ~eps:0.25 ~n:1024 ~window:1 in
  check_true "smaller eps means larger bound" (tighter > b1)

(* --- Taxonomy (Lemma 2.3 instrumentation) --- *)

let run_lesk_with_taxonomy ~seed ~n ~eps ~adversary =
  let tracker = Taxonomy.create ~eps ~n in
  let rng = Prng.create ~seed in
  let budget = Budget.create ~window:32 ~eps in
  let result =
    Uniform_engine.run
      ~observers:[ Jamming_sim.Observer.of_on_slot (Taxonomy.on_slot tracker) ]
      ~n ~rng
      ~protocol:(Lesk.uniform ~eps ())
      ~adversary:(adversary ()) ~budget ~max_slots:500_000 ()
  in
  (result, Taxonomy.counts tracker)

let test_taxonomy_total_matches_slots () =
  let result, counts = run_lesk_with_taxonomy ~seed:3 ~n:256 ~eps:0.5 ~adversary:Adversary.greedy in
  check_true "elected" result.Metrics.elected;
  check_int "every slot classified exactly once" result.Metrics.slots (Taxonomy.total counts)

let test_taxonomy_jammed_matches () =
  let result, counts = run_lesk_with_taxonomy ~seed:4 ~n:256 ~eps:0.5 ~adversary:Adversary.greedy in
  check_int "E equals the engine's jam count" result.Metrics.jammed_slots counts.Taxonomy.e

let test_taxonomy_lemma_2_3 () =
  (* The deterministic inequalities of Lemma 2.3 hold on every run. *)
  for seed = 1 to 25 do
    let n = 128 and eps = 0.4 in
    let _, counts = run_lesk_with_taxonomy ~seed ~n ~eps ~adversary:Adversary.greedy in
    let u0 = Float.log2 (float_of_int n) and a = 8.0 /. eps in
    check_true
      (Printf.sprintf "Lemma 2.3 holds (seed %d): %s" seed
         (Format.asprintf "%a" Taxonomy.pp_counts counts))
      (Taxonomy.lemma_2_3_holds counts ~u0 ~a)
  done

let test_taxonomy_regular_bound () =
  (* R must stay above the starred lower bound in Theorem 2.6's proof. *)
  for seed = 30 to 45 do
    let n = 256 and eps = 0.5 in
    let _, counts = run_lesk_with_taxonomy ~seed ~n ~eps ~adversary:Adversary.greedy in
    let u0 = Float.log2 (float_of_int n) and a = 8.0 /. eps in
    check_true "R above the proof's lower bound"
      (float_of_int counts.Taxonomy.r >= Taxonomy.regular_lower_bound counts ~u0 ~a -. 1e-6)
  done

let test_taxonomy_no_jamming_no_e () =
  let _, counts = run_lesk_with_taxonomy ~seed:7 ~n:64 ~eps:0.5 ~adversary:Adversary.none in
  check_int "no jams charged without adversary" 0 counts.Taxonomy.e

let prop_logic_u_nonnegative =
  qtest ~count:200 "u never goes negative under any state sequence"
    QCheck.(pair (float_range 0.05 1.0) (list (int_range 0 1)))
    (fun (eps, moves) ->
      let l = Lesk.Logic.create ~eps () in
      List.iter
        (fun m -> Lesk.Logic.on_state l (if m = 0 then Channel.Null else Channel.Collision))
        moves;
      Lesk.Logic.u l >= 0.0 && Lesk.Logic.tx_prob l <= 1.0 && Lesk.Logic.tx_prob l > 0.0)

let suite =
  [
    ("logic initial state", `Quick, test_logic_initial);
    ("config_valid", `Quick, test_config_valid);
    ("logic validation", `Quick, test_logic_validation);
    ("logic step sizes", `Quick, test_logic_steps);
    ("Single terminates", `Quick, test_logic_single_terminates);
    ("one Null cancels a collisions", `Quick, test_null_neutralizes_a_collisions);
    ("custom a override", `Quick, test_custom_a);
    ("elects without adversary", `Quick, test_uniform_elects_without_adversary);
    ("elects under greedy jamming", `Quick, test_uniform_elects_under_greedy_jamming);
    ("exact engine election", `Quick, test_station_strong_cd_election);
    ("u walk synchronized in strong-CD", `Quick, test_station_u_synchronized);
    ("time-bound shape", `Quick, test_expected_time_bound_shape);
    ("taxonomy covers all slots", `Quick, test_taxonomy_total_matches_slots);
    ("taxonomy jam count", `Quick, test_taxonomy_jammed_matches);
    ("Lemma 2.3 inequalities", `Slow, test_taxonomy_lemma_2_3);
    ("Theorem 2.6 regular-slot bound", `Slow, test_taxonomy_regular_bound);
    ("no E without adversary", `Quick, test_taxonomy_no_jamming_no_e);
    prop_logic_u_nonnegative;
  ]
