let () =
  Alcotest.run "jamming-election"
    [
      ("prng", Test_prng.suite);
      ("channel", Test_channel.suite);
      ("budget", Test_budget.suite);
      ("adversary", Test_adversary.suite);
      ("intervals", Test_intervals.suite);
      ("sim", Test_sim.suite);
      ("faults", Test_faults.suite);
      ("monitor", Test_monitor.suite);
      ("dynamic", Test_dynamic.suite);
      ("lesk", Test_lesk.suite);
      ("lemmas", Test_lemmas.suite);
      ("markov", Test_markov.suite);
      ("estimation", Test_estimation.suite);
      ("lesu", Test_lesu.suite);
      ("schedule", Test_schedule.suite);
      ("notification", Test_notification.suite);
      ("baselines", Test_baselines.suite);
      ("stats", Test_stats.suite);
      ("trace", Test_trace.suite);
      ("observer", Test_observer.suite);
      ("telemetry", Test_telemetry.suite);
      ("store", Test_store.suite);
      ("fair-use", Test_fair_use.suite);
      ("extensions", Test_extensions.suite);
      ("experiments", Test_experiments.suite);
      ("pool", Test_pool.suite);
      ("aggregate", Test_aggregate.suite);
      ("lmr", Test_lmr.suite);
      ("energy", Test_energy.suite);
      ("energy-cap", Test_energy_cap.suite);
    ]
