(* Energy_cap edge cases (ISSUE 10 satellites): a negative cap is
   rejected eagerly — before any station is built — and cap = 0 turns
   the whole population into pure listeners, who can never produce the
   Single a leader election needs. *)

open Test_util
module Core = Jamming_core
module Energy = Jamming_energy.Energy

let test_negative_cap_rejected_eagerly () =
  let meter = Energy.Meter.create ~n:4 in
  Alcotest.check_raises "cap = -1"
    (Invalid_argument "Energy_cap.station: cap must be >= 0") (fun () ->
      ignore
        (Core.Energy_cap.station ~cap:(-1) ~meter (Core.Lesk.station ~eps:0.5)
          : Station.factory));
  Alcotest.check_raises "cap = min_int"
    (Invalid_argument "Energy_cap.station: cap must be >= 0") (fun () ->
      ignore
        (Core.Energy_cap.station ~cap:min_int ~meter (Core.Lesk.station ~eps:0.5)
          : Station.factory))

let run_capped ~seed ~cap ~n =
  let rng = Prng.create ~seed in
  let budget = Budget.create ~window:32 ~eps:0.5 in
  Core.Energy_cap.run_lesk ~cap ~n ~eps:0.5 ~rng
    ~adversary:(Adversary.none ())
    ~budget ~max_slots:5_000 ()

let test_cap_zero_never_elects () =
  for seed = 1 to 10 do
    let o = run_capped ~seed ~cap:0 ~n:32 in
    check_true
      (Printf.sprintf "seed %d: pure listeners cannot elect" seed)
      (not (Metrics.election_ok o.Core.Energy_cap.result));
    check_int
      (Printf.sprintf "seed %d: every station counts as exhausted" seed)
      32 o.Core.Energy_cap.exhausted
  done

(* With cap = 0 the channel must stay silent for the whole run: the
   meter records zero transmissions for the entire population. *)
let test_cap_zero_is_silent () =
  let o = run_capped ~seed:3 ~cap:0 ~n:16 in
  (match o.Core.Energy_cap.result.Metrics.energy with
  | Some s -> check_float "no transmissions at all" 0.0 s.Energy.tx_total
  | None -> Alcotest.fail "capped run lost its energy block");
  check_int "no slot carries a transmission" 0
    o.Core.Energy_cap.result.Metrics.singles

let suite =
  [
    Alcotest.test_case "negative cap rejected before any station exists" `Quick
      test_negative_cap_rejected_eagerly;
    Alcotest.test_case "cap = 0 never elects" `Quick test_cap_zero_never_elects;
    Alcotest.test_case "cap = 0 keeps the channel silent" `Quick
      test_cap_zero_is_silent;
  ]
