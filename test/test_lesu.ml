module Lesu = Jamming_core.Lesu
open Test_util

let test_eps_guess () =
  check_float_eps 1e-12 "eps_1" (Float.exp2 (-1.0 /. 3.0)) (Lesu.eps_guess 1);
  check_float_eps 1e-12 "eps_3 = 1/2" 0.5 (Lesu.eps_guess 3);
  check_float_eps 1e-12 "eps_6 = 1/4" 0.25 (Lesu.eps_guess 6);
  check_true "decreasing" (Lesu.eps_guess 4 < Lesu.eps_guess 3)

let test_phase_duration () =
  (* ceil(3 * 2^i * t0 / j). *)
  check_int "i=1 j=1 t0=10" 60 (Lesu.phase_duration ~t0:10.0 ~i:1 ~j:1);
  check_int "i=2 j=3" (int_of_float (Float.ceil (3.0 *. 4.0 *. 10.0 /. 3.0)))
    (Lesu.phase_duration ~t0:10.0 ~i:2 ~j:3);
  check_true "overflow clamps" (Lesu.phase_duration ~t0:1e18 ~i:60 ~j:1 > 0)

let test_config_validation () =
  Alcotest.check_raises "c = 0" (Invalid_argument "Lesu.Logic.create: c must be positive")
    (fun () ->
      ignore (Lesu.Logic.create ~config:{ Lesu.default_config with c = 0.0 } ()))

let test_stage_progression () =
  let l = Lesu.Logic.create () in
  (match Lesu.Logic.stage l with
  | Lesu.Estimating 1 -> ()
  | _ -> Alcotest.fail "starts in estimation round 1");
  check_true "no t0 yet" (Lesu.Logic.t0 l = None);
  (* Two Nulls finish Estimation(2) in round 1 -> electing. *)
  Lesu.Logic.on_state l Channel.Null;
  Lesu.Logic.on_state l Channel.Null;
  (match Lesu.Logic.stage l with
  | Lesu.Electing { i = 1; j = 1; eps_hat } ->
      check_float_eps 1e-12 "first guess is eps_1" (Lesu.eps_guess 1) eps_hat
  | _ -> Alcotest.fail "electing after estimation returns");
  (match Lesu.Logic.t0 l with
  | Some t0 -> check_float "t0 = c * 2^(1+round)" (4.0 *. 4.0) t0
  | None -> Alcotest.fail "t0 must be set");
  check_true "not elected yet" (not (Lesu.Logic.elected l))

let test_phase_schedule_advances () =
  let l = Lesu.Logic.create ~config:{ Lesu.c = 0.04; threshold = 2 } () in
  Lesu.Logic.on_state l Channel.Null;
  Lesu.Logic.on_state l Channel.Null;
  (* t0 = 0.04 * 4 = 0.16; dur(1,1) = ceil(3*2*0.16) = 1: one collision
     ends phase (1,1) and moves to (2,1) since j reached i. *)
  Lesu.Logic.on_state l Channel.Collision;
  (match Lesu.Logic.stage l with
  | Lesu.Electing { i = 2; j = 1; _ } -> ()
  | Lesu.Electing { i; j; _ } -> Alcotest.failf "at (%d,%d), expected (2,1)" i j
  | _ -> Alcotest.fail "should still be electing");
  (* dur(2,1) = ceil(3*4*0.16) = 2; then (2,2). *)
  Lesu.Logic.on_state l Channel.Collision;
  Lesu.Logic.on_state l Channel.Collision;
  match Lesu.Logic.stage l with
  | Lesu.Electing { i = 2; j = 2; _ } -> ()
  | Lesu.Electing { i; j; _ } -> Alcotest.failf "at (%d,%d), expected (2,2)" i j
  | _ -> Alcotest.fail "should still be electing"

let test_single_elects_any_stage () =
  let l = Lesu.Logic.create () in
  Lesu.Logic.on_state l Channel.Single;
  check_true "single during estimation elects" (Lesu.Logic.elected l);
  (match Lesu.Logic.stage l with
  | Lesu.Done -> ()
  | _ -> Alcotest.fail "stage Done after election");
  check_float "done means silent" 0.0 (Lesu.Logic.tx_prob l)

let test_elects_without_adversary () =
  List.iter
    (fun n ->
      let result = run_uniform ~n (Lesu.uniform ()) in
      check_true (Printf.sprintf "LESU elects at n=%d" n) result.Metrics.elected)
    [ 2; 16; 256; 4096 ]

let test_elects_under_jamming () =
  List.iter
    (fun eps ->
      let result =
        run_uniform ~eps ~adversary:Adversary.greedy ~n:512 ~max_slots:2_000_000
          (Lesu.uniform ())
      in
      check_true (Printf.sprintf "LESU elects under greedy eps=%.2f" eps)
        result.Metrics.elected)
    [ 0.7; 0.4 ]

let test_exact_engine () =
  let result = run_exact ~n:16 (Lesu.station ()) in
  check_true "exact-engine election" (Metrics.election_ok result)

let test_time_bound_shape () =
  let small_t = Lesu.expected_time_bound ~eps:0.5 ~n:1024 ~window:4 in
  let large_t = Lesu.expected_time_bound ~eps:0.5 ~n:1024 ~window:1_000_000 in
  check_true "T-dominated regime grows with T" (large_t >= 1_000_000.0);
  check_true "small-T regime is polylog" (small_t < 10_000.0)

let suite =
  [
    ("eps_guess sequence", `Quick, test_eps_guess);
    ("phase durations", `Quick, test_phase_duration);
    ("config validation", `Quick, test_config_validation);
    ("stage progression", `Quick, test_stage_progression);
    ("phase schedule advances", `Quick, test_phase_schedule_advances);
    ("Single elects at any stage", `Quick, test_single_elects_any_stage);
    ("elects without adversary", `Quick, test_elects_without_adversary);
    ("elects under jamming", `Slow, test_elects_under_jamming);
    ("exact engine election", `Quick, test_exact_engine);
    ("time-bound shape", `Quick, test_time_bound_shape);
  ]
