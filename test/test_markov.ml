module Linalg = Jamming_stats.Linalg
module Markov = Jamming_core.Markov
open Test_util

let test_solve_identity () =
  let a = [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |] |] in
  let x = Linalg.solve a [| 3.0; 4.0 |] in
  Alcotest.(check (array (float 1e-12))) "identity" [| 3.0; 4.0 |] x

let test_solve_known_system () =
  (* 2x + y = 5; x - y = 1  ->  x = 2, y = 1 *)
  let a = [| [| 2.0; 1.0 |]; [| 1.0; -1.0 |] |] in
  let x = Linalg.solve a [| 5.0; 1.0 |] in
  Alcotest.(check (array (float 1e-12))) "2x2" [| 2.0; 1.0 |] x

let test_solve_needs_pivoting () =
  (* Leading zero forces a row swap. *)
  let a = [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let x = Linalg.solve a [| 7.0; 9.0 |] in
  Alcotest.(check (array (float 1e-12))) "pivoted" [| 9.0; 7.0 |] x

let test_solve_singular () =
  let a = [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.check_raises "singular" (Failure "Linalg.solve: singular matrix") (fun () ->
      ignore (Linalg.solve a [| 1.0; 2.0 |]))

let test_solve_shape_validation () =
  Alcotest.check_raises "rhs mismatch" (Invalid_argument "Linalg: rhs length mismatch")
    (fun () -> ignore (Linalg.solve [| [| 1.0 |] |] [| 1.0; 2.0 |]))

let test_inputs_not_mutated () =
  let a = [| [| 2.0; 1.0 |]; [| 1.0; -1.0 |] |] in
  let b = [| 5.0; 1.0 |] in
  ignore (Linalg.solve a b);
  Alcotest.(check (array (float 0.0))) "rhs untouched" [| 5.0; 1.0 |] b;
  Alcotest.(check (array (float 0.0))) "matrix row untouched" [| 2.0; 1.0 |] a.(0)

let prop_solve_random_systems =
  qtest ~count:100 "random diagonally-dominant systems solve with tiny residuals"
    QCheck.(pair (int_range 1 25) small_int)
    (fun (n, seed) ->
      let g = Prng.create ~seed in
      let a =
        Array.init n (fun i ->
            Array.init n (fun j ->
                let v = (2.0 *. Prng.float g) -. 1.0 in
                if i = j then v +. (2.0 *. float_of_int n) else v))
      in
      let b = Array.init n (fun _ -> (20.0 *. Prng.float g) -. 10.0) in
      let x = Linalg.solve a b in
      Linalg.residual_norm a x b < 1e-8)

(* --- the Markov anchor --- *)

let test_markov_n1 () =
  (* A single station transmits with probability 2^-u; election happens
     on the first transmission (always a Single).  From u = 0, p = 1,
     so E[T] = 1 exactly. *)
  let r = Markov.expected_election_time ~n:1 ~a:16 () in
  check_float_eps 1e-9 "single station elects in one slot" 1.0
    r.Markov.expected_slots

let test_markov_matches_simulation () =
  let n = 256 and a = 16 in
  let analytic = Markov.expected_election_time ~n ~a () in
  let reps = 600 in
  let sum = ref 0.0 in
  for seed = 1 to reps do
    let r = run_uniform ~seed ~eps:0.5 ~n (Jamming_core.Lesk.uniform ~eps:0.5) in
    sum := !sum +. float_of_int r.Metrics.slots
  done;
  let sim_mean = !sum /. float_of_int reps in
  check_true
    (Printf.sprintf "analytic %.2f vs simulated %.2f within 5%%"
       analytic.Markov.expected_slots sim_mean)
    (Float.abs (analytic.Markov.expected_slots -. sim_mean)
    < 0.05 *. analytic.Markov.expected_slots)

let test_markov_truncation_negligible () =
  let r = Markov.expected_election_time ~n:1024 ~a:16 () in
  check_true "truncation mass negligible" (r.Markov.truncation_mass < 1e-9)

let test_markov_monotone_in_n () =
  let e n = (Markov.expected_election_time ~n ~a:16 ()).Markov.expected_slots in
  check_true "E[T] grows with n" (e 16 < e 256 && e 256 < e 4096)

let test_markov_validation () =
  Alcotest.check_raises "n = 0" (Invalid_argument "Markov: n must be >= 1") (fun () ->
      ignore (Markov.expected_election_time ~n:0 ~a:16 ()))

let suite =
  [
    ("solve identity", `Quick, test_solve_identity);
    ("solve 2x2", `Quick, test_solve_known_system);
    ("solve with pivoting", `Quick, test_solve_needs_pivoting);
    ("singular detected", `Quick, test_solve_singular);
    ("shape validation", `Quick, test_solve_shape_validation);
    ("inputs not mutated", `Quick, test_inputs_not_mutated);
    prop_solve_random_systems;
    ("Markov: n = 1 closed form", `Quick, test_markov_n1);
    ("Markov matches simulation", `Slow, test_markov_matches_simulation);
    ("Markov truncation negligible", `Quick, test_markov_truncation_negligible);
    ("Markov monotone in n", `Quick, test_markov_monotone_in_n);
    ("Markov validation", `Quick, test_markov_validation);
  ]
