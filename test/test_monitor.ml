open Test_util
module Monitor = Jamming_sim.Monitor
module Observer = Jamming_sim.Observer

let record ?(transmitters = 0) ?(jammed = false) slot =
  let state = Channel.resolve ~transmitters ~jammed in
  { Metrics.slot; transmitters = Metrics.Exact transmitters; jammed; state }

let feed mon records = List.iter (fun r -> Monitor.on_slot mon ~record:r ~leaders:0) records

let expect_violation check f =
  match f () with
  | () -> Alcotest.failf "expected a %s violation" (Monitor.check_to_string check)
  | exception Monitor.Violation v ->
      Alcotest.(check string)
        "violated check" (Monitor.check_to_string check)
        (Monitor.check_to_string v.Monitor.check);
      v

let test_create_validation () =
  Alcotest.check_raises "window < 1" (Invalid_argument "Monitor.create: window must be >= 1")
    (fun () -> ignore (Monitor.create ~window:0 ~eps:0.5 ()));
  Alcotest.check_raises "eps out of range"
    (Invalid_argument "Monitor.create: eps must lie in (0, 1]") (fun () ->
      ignore (Monitor.create ~window:4 ~eps:0.0 ()))

let test_clean_run_passes () =
  let mon = Monitor.create ~window:4 ~eps:0.5 () in
  (* One jam in four stays within (4, 1/2)-boundedness for every window.
     (Strict alternation would NOT: an odd window holds (L+1)/2 > L/2 jams.) *)
  feed mon (List.init 40 (fun slot -> record ~jammed:(slot mod 4 = 0) slot));
  check_int "forty slots seen" 40 (Monitor.slots_seen mon)

let test_jam_budget_violation () =
  let mon = Monitor.create ~seed:42 ~window:4 ~eps:0.5 () in
  (* Every slot jammed: the first closed window [0, 4) already holds
     4 > (1-eps)*4 = 2 jams. *)
  let v =
    expect_violation Monitor.Jam_budget (fun () ->
        feed mon (List.init 10 (fun slot -> record ~jammed:true slot)))
  in
  check_int "flagged while closing slot 3" 3 v.Monitor.slot;
  Alcotest.(check (option int)) "replay seed attached" (Some 42) v.Monitor.seed;
  check_true "detail mentions the window"
    (String.length (Monitor.violation_to_string v) > 0)

let test_jam_budget_longer_window () =
  (* A pattern that is fine per window-sized blocks but violates over a
     longer stretch: J..J J..J J..J -> any 8-window holds 2 <= 4 jams at
     eps=0.5, but at eps=0.75 the bound is 2, and the 9-slot window
     [0, 9) holds 3. *)
  let pattern slot = slot mod 4 = 0 in
  let mon = Monitor.create ~window:8 ~eps:0.75 () in
  let v =
    expect_violation Monitor.Jam_budget (fun () ->
        feed mon (List.init 20 (fun slot -> record ~jammed:(pattern slot) slot)))
  in
  check_int "flagged at the 9th slot" 8 v.Monitor.slot

let test_consistency_state_mismatch () =
  let mon = Monitor.create ~window:4 ~eps:0.5 () in
  let bogus =
    { Metrics.slot = 0; transmitters = Metrics.Exact 0; jammed = false;
      state = Channel.Collision }
  in
  let v =
    expect_violation Monitor.Slot_consistency (fun () ->
        Monitor.on_slot mon ~record:bogus ~leaders:0)
  in
  check_int "at slot 0" 0 v.Monitor.slot

let test_consistency_at_least () =
  (* An honest ">=2" record is only consistent with Collision; below two
     the exact count is unknown, so any state passes. *)
  let mon = Monitor.create ~window:4 ~eps:0.5 () in
  Monitor.on_slot mon
    ~record:
      { Metrics.slot = 0; transmitters = Metrics.At_least 2; jammed = false;
        state = Channel.Collision }
    ~leaders:0;
  Monitor.on_slot mon
    ~record:
      { Metrics.slot = 1; transmitters = Metrics.At_least 0; jammed = false;
        state = Channel.Single }
    ~leaders:0;
  check_int "both records accepted" 2 (Monitor.slots_seen mon);
  let v =
    expect_violation Monitor.Slot_consistency (fun () ->
        Monitor.on_slot mon
          ~record:
            { Metrics.slot = 2; transmitters = Metrics.At_least 2; jammed = false;
              state = Channel.Single }
          ~leaders:0)
  in
  check_int "flagged the >=2 Single" 2 v.Monitor.slot

let test_consistency_slot_skip () =
  let mon = Monitor.create ~window:4 ~eps:0.5 () in
  Monitor.on_slot mon ~record:(record 0) ~leaders:0;
  let v =
    expect_violation Monitor.Slot_consistency (fun () ->
        Monitor.on_slot mon ~record:(record 2) ~leaders:0)
  in
  check_true "detail mentions the skip"
    (String.length v.Monitor.detail > 0)

let test_two_leaders () =
  let mon = Monitor.create ~window:4 ~eps:0.5 () in
  Monitor.on_slot mon ~record:(record 0) ~leaders:1;
  let v =
    expect_violation Monitor.At_most_one_leader (fun () ->
        Monitor.on_slot mon ~record:(record 1) ~leaders:2)
  in
  check_int "at slot 1" 1 v.Monitor.slot

let test_checks_can_be_disabled () =
  (* safety_checks: two leaders tolerated (faulty runs), but the engine
     invariants stay armed. *)
  let mon = Monitor.create ~checks:Monitor.safety_checks ~window:4 ~eps:0.5 () in
  Monitor.on_slot mon ~record:(record 0) ~leaders:2;
  ignore
    (expect_violation Monitor.Jam_budget (fun () ->
         feed mon (List.init 10 (fun slot -> record ~jammed:true (slot + 1)))));
  (* jam_budget off: an over-jammed pattern sails through... *)
  let off = { Monitor.all_checks with Monitor.jam_budget = false } in
  let mon2 = Monitor.create ~checks:off ~window:4 ~eps:0.5 () in
  feed mon2 (List.init 10 (fun slot -> record ~jammed:true slot));
  check_int "slots still tallied" 10 (Monitor.slots_seen mon2)

let test_check_result_mismatch () =
  let mon = Monitor.create ~window:4 ~eps:0.5 () in
  feed mon [ record 0; record 1 ];
  let result =
    {
      Metrics.slots = 3;
      completed = true;
      elected = false;
      leader = None;
      statuses = [||];
      jammed_slots = 0;
      nulls = 2;
      singles = 0;
      collisions = 0;
      transmissions = 0.0;
      max_station_transmissions = 0;
      energy = None;
    }
  in
  ignore
    (expect_violation Monitor.Slot_consistency (fun () -> Monitor.check_result mon result));
  (* The matching result passes both counter and leader cross-checks. *)
  Monitor.check_result mon
    { result with Metrics.slots = 2; statuses = [| Station.Leader; Station.Non_leader |] }

let test_check_result_two_final_leaders () =
  let mon = Monitor.create ~window:4 ~eps:0.5 () in
  feed mon [ record 0 ];
  let result =
    {
      Metrics.slots = 1;
      completed = true;
      elected = true;
      leader = Some 0;
      statuses = [| Station.Leader; Station.Leader |];
      jammed_slots = 0;
      nulls = 1;
      singles = 0;
      collisions = 0;
      transmissions = 0.0;
      max_station_transmissions = 0;
      energy = None;
    }
  in
  ignore
    (expect_violation Monitor.At_most_one_leader (fun () -> Monitor.check_result mon result))

(* --- engine integration: the monitor catches a seeded violation --- *)

(* A station that instantly (and wrongly) declares itself leader. *)
let self_crowned ~id ~rng:_ =
  let step = ref 0 in
  {
    Station.id;
    decide = (fun ~slot:_ -> incr step; Station.Listen);
    observe = (fun ~slot:_ ~perceived:_ ~transmitted:_ -> ());
    status = (fun () -> if !step > 0 then Station.Leader else Station.Undecided);
    finished = (fun () -> !step >= 3);
  }

let test_engine_catches_two_leaders () =
  (* Two buggy stations both crown themselves: Engine.run with an armed
     monitor must raise rather than return a two-leader result. *)
  let stations = Engine.make_stations ~n:2 ~rng:(rng ()) self_crowned in
  let monitor = Monitor.create ~seed:7 ~window:4 ~eps:0.5 () in
  let v =
    expect_violation Monitor.At_most_one_leader (fun () ->
        ignore
          (Engine.run ~monitor ~cd:Channel.Strong_cd ~adversary:(Adversary.none ())
             ~budget:(Budget.create ~window:4 ~eps:0.5)
             ~max_slots:10 ~stations ()))
  in
  check_int "caught on the very first slot" 0 v.Monitor.slot;
  Alcotest.(check (option int)) "replay seed carried" (Some 7) v.Monitor.seed

let test_engine_monitor_agrees_with_budget () =
  (* The monitor mirrors the enforcer independently: a full LESK run under
     a greedy jammer with the SAME (window, eps) must never trip it. *)
  let g = Prng.create ~seed:3 in
  let stations = Engine.make_stations ~n:16 ~rng:g (Jamming_core.Lesk.station ~eps:0.5) in
  let monitor = Monitor.create ~window:16 ~eps:0.5 () in
  let result =
    Engine.run ~monitor ~cd:Channel.Strong_cd ~adversary:(Adversary.greedy ())
      ~budget:(Budget.create ~window:16 ~eps:0.5)
      ~max_slots:200_000 ~stations ()
  in
  check_true "run completed" result.Metrics.completed;
  check_int "monitor saw every slot" result.Metrics.slots (Monitor.slots_seen monitor)

let test_engine_monitor_stricter_than_budget () =
  (* Budget allows 75% jamming but the monitor is armed for 10%: the
     cross-check flags the enforcer/monitor disagreement. *)
  let listen_forever ~id ~rng:_ =
    {
      Station.id;
      decide = (fun ~slot:_ -> Station.Listen);
      observe = (fun ~slot:_ ~perceived:_ ~transmitted:_ -> ());
      status = (fun () -> Station.Undecided);
      finished = (fun () -> false);
    }
  in
  let stations = Engine.make_stations ~n:2 ~rng:(rng ()) listen_forever in
  let monitor = Monitor.create ~window:4 ~eps:0.9 () in
  ignore
    (expect_violation Monitor.Jam_budget (fun () ->
         ignore
           (Engine.run ~monitor ~cd:Channel.Strong_cd ~adversary:(Adversary.greedy ())
              ~budget:(Budget.create ~window:4 ~eps:0.25)
              ~max_slots:100 ~stations ())))

(* --- dynamic-population extensions: skip_to / report / slot_observer --- *)

let test_skip_to_bridges_gap () =
  let mon = Monitor.create ~window:4 ~eps:0.5 () in
  feed mon (List.init 5 record);
  Monitor.skip_to mon ~from:5 ~upto:20 ~leaders:1;
  Monitor.on_slot mon ~record:(record 20) ~leaders:1;
  check_int "gap slots tallied" 21 (Monitor.slots_seen mon);
  (* The gap counted as unjammed Nulls: the aggregate cross-check agrees. *)
  Monitor.check_result mon
    {
      Metrics.slots = 21;
      completed = true;
      elected = false;
      leader = None;
      statuses = [||];
      jammed_slots = 0;
      nulls = 21;
      singles = 0;
      collisions = 0;
      transmissions = 0.0;
      max_station_transmissions = 0;
      energy = None;
    };
  (* Empty gaps are legal and feed nothing. *)
  Monitor.skip_to mon ~from:21 ~upto:21 ~leaders:1;
  check_int "empty gap is a no-op" 21 (Monitor.slots_seen mon)

let test_skip_to_mismatch () =
  let mon = Monitor.create ~window:4 ~eps:0.5 () in
  Monitor.on_slot mon ~record:(record 0) ~leaders:0;
  ignore
    (expect_violation Monitor.Slot_consistency (fun () ->
         Monitor.skip_to mon ~from:2 ~upto:5 ~leaders:0));
  Alcotest.check_raises "upto < from rejected"
    (Invalid_argument "Monitor.skip_to: upto must be >= from") (fun () ->
      let m = Monitor.create ~window:4 ~eps:0.5 () in
      Monitor.skip_to m ~from:3 ~upto:2 ~leaders:0)

let test_skip_to_budget_coherent () =
  (* Gap slots participate in jam-budget windows as unjammed slots: a
     burst right after a long calm gap is fine (headroom recovered)... *)
  let mon = Monitor.create ~window:4 ~eps:0.5 () in
  feed mon [ record ~jammed:true 0; record ~jammed:true 1 ];
  Monitor.skip_to mon ~from:2 ~upto:50 ~leaders:1;
  feed mon [ record ~jammed:true 50; record ~jammed:true 51 ];
  check_int "calm gap restores headroom" 52 (Monitor.slots_seen mon);
  (* ...but a third consecutive jam still breaks the (4, 1/2) bound:
     the window [49, 53) closed with 3 > 2 jams, proving the gap's
     prefix sums stayed live across the fast-forward. *)
  let v =
    expect_violation Monitor.Jam_budget (fun () ->
        Monitor.on_slot mon ~record:(record ~jammed:true 52) ~leaders:1)
  in
  check_int "flagged at the slot closing the window" 52 v.Monitor.slot

let test_report_attaches_seed () =
  let mon = Monitor.create ~seed:7 ~window:4 ~eps:0.5 () in
  let v =
    expect_violation Monitor.Live_leader (fun () ->
        Monitor.report mon ~slot:11 ~check:Monitor.Live_leader
          "election started with leader %d live" 3)
  in
  check_int "at the reported slot" 11 v.Monitor.slot;
  Alcotest.(check (option int)) "replay seed attached" (Some 7) v.Monitor.seed;
  check_true "formatted detail survives"
    (v.Monitor.detail = "election started with leader 3 live");
  check_true "population check has a name"
    (Monitor.check_to_string Monitor.Population <> Monitor.check_to_string Monitor.Live_leader)

let test_slot_observer_ignores_segment_results () =
  let mon = Monitor.create ~window:4 ~eps:0.5 () in
  let obs = Monitor.slot_observer mon in
  obs.Observer.on_slot (record 0) ~leaders:1;
  obs.Observer.on_slot (record 1) ~leaders:1;
  check_int "slots flow through" 2 (Monitor.slots_seen mon);
  let bogus_segment =
    {
      Metrics.slots = 999;
      completed = false;
      elected = false;
      leader = None;
      statuses = [||];
      jammed_slots = 999;
      nulls = 0;
      singles = 0;
      collisions = 0;
      transmissions = 0.0;
      max_station_transmissions = 0;
      energy = None;
    }
  in
  (* Per-segment totals must not be mistaken for run totals. *)
  obs.Observer.on_result bogus_segment;
  (* The plain observer would have flagged the same result. *)
  ignore
    (expect_violation Monitor.Slot_consistency (fun () ->
         (Monitor.observer mon).Observer.on_result bogus_segment));
  check_true "leader scan still requested when the check is armed"
    (Monitor.slot_observer mon).Observer.needs_leaders

let suite =
  [
    ("create validation", `Quick, test_create_validation);
    ("clean run passes", `Quick, test_clean_run_passes);
    ("jam-budget violation", `Quick, test_jam_budget_violation);
    ("jam-budget longer window", `Quick, test_jam_budget_longer_window);
    ("consistency: state mismatch", `Quick, test_consistency_state_mismatch);
    ("consistency: at-least counts", `Quick, test_consistency_at_least);
    ("consistency: slot skip", `Quick, test_consistency_slot_skip);
    ("two simultaneous leaders", `Quick, test_two_leaders);
    ("checks can be disabled", `Quick, test_checks_can_be_disabled);
    ("check_result counter mismatch", `Quick, test_check_result_mismatch);
    ("check_result two final leaders", `Quick, test_check_result_two_final_leaders);
    ("engine catches seeded two-leader bug", `Quick, test_engine_catches_two_leaders);
    ("engine monitor agrees with enforcer", `Quick, test_engine_monitor_agrees_with_budget);
    ("engine monitor stricter than enforcer", `Quick, test_engine_monitor_stricter_than_budget);
    ("skip_to bridges stable gaps", `Quick, test_skip_to_bridges_gap);
    ("skip_to slot mismatch", `Quick, test_skip_to_mismatch);
    ("skip_to jam-budget coherence", `Quick, test_skip_to_budget_coherent);
    ("report attaches replay seed", `Quick, test_report_attaches_seed);
    ("slot_observer ignores segment results", `Quick, test_slot_observer_ignores_segment_results);
  ]
