(* The energy subsystem's contracts (DESIGN.md §16), QCheck-asserted:

   - conservation: awake = tx + listen and awake + sleep = horizon for
     every station, on every engine path (uniform / exact / pooled /
     aggregate / faulty);
   - recount: the meter's summary equals an independent station-side
     recount of awake and tx slots, per station (max, median, bins);
   - non-interference: a metered run, energy block stripped, is
     bit-identical to the unmetered run on every engine;
   - jobs-invariance: energy blocks survive the domain pool unchanged
     at jobs in {1, 2, 7};
   - codecs: summaries round-trip JSON losslessly, standalone and
     embedded in a result. *)

open Test_util
module Energy = Jamming_energy.Energy
module E = Jamming_experiments
module Json = Jamming_telemetry.Json

(* --- an erratic sleeper protocol with a station-side recount --- *)

(* Each awake slot: sleep a random stretch with p = 1/4, else transmit
   or listen at random; finish after a per-station number of awake
   slots.  [awake]/[tx] recount, from the station side, exactly what
   the meter should attribute: a [Sleep] decision's own slot is asleep,
   every other decide call is one awake slot. *)
let sleeper_factory ~awake ~tx : Station.factory =
 fun ~id ~rng ->
  let life = 4 + (id mod 7) in
  let lived = ref 0 in
  let fin = ref false in
  {
    Station.id;
    decide =
      (fun ~slot ->
        let r = Prng.float rng in
        if r < 0.25 then Station.Sleep (slot + 1 + Prng.int rng ~bound:9)
        else begin
          awake.(id) <- awake.(id) + 1;
          incr lived;
          if r < 0.5 then begin
            tx.(id) <- tx.(id) + 1;
            Station.Transmit
          end
          else Station.Listen
        end);
    observe = (fun ~slot:_ ~perceived:_ ~transmitted:_ -> if !lived >= life then fin := true);
    status = (fun () -> Station.Non_leader);
    finished = (fun () -> !fin);
  }

let adversaries =
  [| Adversary.none; Adversary.greedy; Adversary.random ~seed:5 ~p:0.5 |]

let run_sleepers ~seed ~n ~adv =
  let awake = Array.make n 0 and tx = Array.make n 0 in
  let meter = Energy.Meter.create ~n in
  let rng = Prng.create ~seed in
  let stations = Engine.make_stations ~n ~rng (sleeper_factory ~awake ~tx) in
  let budget = Budget.create ~window:16 ~eps:0.5 in
  let r =
    Engine.run ~meter ~cd:Channel.Strong_cd ~adversary:(adversaries.(adv) ())
      ~budget ~max_slots:5_000 ~stations ()
  in
  (r, awake, tx)

let summary_of r =
  match r.Metrics.energy with
  | Some s -> s
  | None -> Alcotest.fail "metered run has no energy block"

(* The meter agrees, station for station, with the protocol's own count:
   totals, extrema, median and histogram all match a recount. *)
let test_recount =
  qtest ~count:150 "meter = station-side recount"
    QCheck.(triple small_nat (int_range 1 40) (int_range 0 2))
    (fun (seed, n, adv) ->
      let r, awake, tx = run_sleepers ~seed:(seed + 1) ~n ~adv in
      let s = summary_of r in
      let expected =
        Energy.of_per_station ~n ~slots:r.Metrics.slots
          ~tx:(fun i -> tx.(i))
          ~awake:(fun i -> awake.(i))
      in
      Energy.equal_summary s expected)

(* Conservation laws on the recount path, plus internal consistency of
   the derived fields. *)
let laws_hold (s : Energy.summary) =
  let n = float_of_int s.Energy.stations
  and slots = float_of_int s.Energy.slots in
  s.Energy.listen_total = s.Energy.awake_total -. s.Energy.tx_total
  && s.Energy.sleep_total = (n *. slots) -. s.Energy.awake_total
  && s.Energy.tx_total >= 0.0
  && s.Energy.tx_total <= s.Energy.awake_total
  && s.Energy.awake_total <= n *. slots
  && s.Energy.max_awake <= s.Energy.slots
  && s.Energy.median_awake >= 0.0
  && s.Energy.median_awake <= float_of_int s.Energy.max_awake
  && List.fold_left (fun acc (_, c) -> acc + c) 0 s.Energy.awake_bins
     = s.Energy.stations
  && List.for_all (fun (b, _) -> b >= 0 && b < Energy.hist_bins) s.Energy.awake_bins

let test_conservation_sleepers =
  qtest ~count:150 "conservation laws (exact engine, sleepers)"
    QCheck.(triple small_nat (int_range 1 40) (int_range 0 2))
    (fun (seed, n, adv) ->
      let r, awake, tx = run_sleepers ~seed:(seed + 1) ~n ~adv in
      let s = summary_of r in
      laws_hold s
      && s.Energy.slots = r.Metrics.slots
      && s.Energy.stations = n
      (* awake = tx + listen, station by station, via the recount. *)
      && Array.for_all2 (fun a t -> t <= a && a <= r.Metrics.slots) awake tx)

(* --- every Runner engine path: conservation + non-interference --- *)

let small_faults =
  {
    Jamming_faults.Config.perception = Jamming_faults.Perception.uniform ~p:0.05;
    p_crash = 0.02;
    crash_horizon = 1_000;
    p_sleep = 0.0;
    sleep_horizon = 1;
    max_sleep = 1;
    p_late_wake = 0.0;
    max_wake_delay = 1;
  }

let engines ~n =
  [
    ("uniform", E.Runner.Uniform (E.Specs.lesk ~eps:0.5));
    ( "exact",
      E.Runner.Exact
        {
          name = "LESK-exact";
          cd = Channel.Strong_cd;
          factory = Jamming_core.Lesk.station ~eps:0.5;
        } );
    ( "faulty",
      E.Runner.Faulty
        {
          name = "LESK-faulty";
          cd = Channel.Strong_cd;
          factory = Jamming_core.Lesk.station ~eps:0.5;
          faults = small_faults;
          monitor_checks = None;
        } );
    ("exact-lmr", E.Runner.exact_lmr ~n);
    ("pooled-lmr", E.Runner.pooled_lmr ());
    ("aggregate", E.Runner.aggregate_lesk ~eps:0.5 ());
  ]

let specs_adversaries =
  [| E.Specs.no_jamming; E.Specs.greedy; E.Specs.random_jam ~p:0.5 |]

let result_testable = Alcotest.testable Metrics.pp_result Metrics.equal_result

(* Metering must never perturb a run: strip the energy block and the
   metered result is the unmetered result, on every engine path. *)
let test_engines_conserve_and_do_not_perturb =
  qtest ~count:40 "all engines: conservation + metering non-interference"
    QCheck.(triple small_nat (int_range 2 32) (int_range 0 2))
    (fun (seed, n, adv) ->
      let setup = { E.Runner.n; eps = 0.5; window = 16; max_slots = 100_000 } in
      let adversary = specs_adversaries.(adv) in
      List.for_all
        (fun (what, engine) ->
          let metered = E.Runner.run ~energy:true ~engine setup adversary ~seed in
          let plain = E.Runner.run ~engine setup adversary ~seed in
          let s = summary_of metered in
          if plain.Metrics.energy <> None then
            QCheck.Test.fail_reportf "%s: unmetered run grew an energy block" what;
          if not (laws_hold s) then
            QCheck.Test.fail_reportf "%s: conservation laws violated" what;
          if s.Energy.stations <> n || s.Energy.slots <> metered.Metrics.slots then
            QCheck.Test.fail_reportf "%s: summary shape mismatch" what;
          if not (Metrics.equal_result { metered with Metrics.energy = None } plain)
          then QCheck.Test.fail_reportf "%s: metering perturbed the run" what;
          true)
        (engines ~n))

(* LESK never sleeps, so its accounting must say so exactly: every
   station awake for the whole run on the identity-preserving engines. *)
let test_always_on_protocols_never_sleep () =
  let setup = { E.Runner.n = 24; eps = 0.5; window = 16; max_slots = 100_000 } in
  List.iter
    (fun (what, engine) ->
      let r = E.Runner.run ~energy:true ~engine setup E.Specs.greedy ~seed:3 in
      let s = summary_of r in
      check_float (what ^ ": sleep_total") 0.0 s.Energy.sleep_total;
      check_int (what ^ ": max_awake") r.Metrics.slots s.Energy.max_awake)
    [
      ("uniform", E.Runner.Uniform (E.Specs.lesk ~eps:0.5));
      ( "exact",
        E.Runner.Exact
          {
            name = "LESK-exact";
            cd = Channel.Strong_cd;
            factory = Jamming_core.Lesk.station ~eps:0.5;
          } );
    ]

(* --- jobs-invariance of the energy block --- *)

let energy_cells =
  let setup = { E.Runner.n = 20; eps = 0.5; window = 16; max_slots = 50_000 } in
  List.concat_map
    (fun (_, engine) ->
      [
        E.Runner.Cell.v ~base_seed:7 ~energy:true ~engine ~reps:9 setup E.Specs.greedy;
        E.Runner.Cell.v ~base_seed:11 ~energy:true ~engine ~reps:2 setup
          E.Specs.no_jamming;
      ])
    (engines ~n:20)

let sample_bytes outcomes =
  String.concat "\n"
    (List.map
       (function
         | E.Runner.Sample s ->
             Json.to_string (E.Runner.sample_to_json ~include_results:true s)
         | E.Runner.Churned _ -> Alcotest.fail "unexpected churn outcome")
       outcomes)

let test_energy_jobs_invariance () =
  let run_at jobs =
    E.Runner.run_cells (E.Runner.Pool.create ~jobs ()) energy_cells
  in
  let at1 = run_at 1 in
  List.iter
    (function
      | E.Runner.Sample s ->
          Array.iter
            (fun r ->
              check_true "every rep carries an energy block"
                (r.Metrics.energy <> None))
            s.E.Runner.results
      | E.Runner.Churned _ -> Alcotest.fail "unexpected churn outcome")
    at1;
  let bytes1 = sample_bytes at1 in
  List.iter
    (fun jobs ->
      check_true
        (Printf.sprintf "energy cells byte-identical at jobs=%d" jobs)
        (String.equal bytes1 (sample_bytes (run_at jobs))))
    [ 2; 7 ]

(* --- codecs --- *)

let test_codec_roundtrip =
  qtest ~count:100 "summary and result JSON round-trip losslessly"
    QCheck.(triple small_nat (int_range 1 40) (int_range 0 2))
    (fun (seed, n, adv) ->
      let r, _, _ = run_sleepers ~seed:(seed + 1) ~n ~adv in
      let s = summary_of r in
      (match Energy.summary_of_json (Energy.summary_to_json s) with
      | Ok s' when Energy.equal_summary s s' -> ()
      | Ok _ -> QCheck.Test.fail_reportf "summary round-trip changed the summary"
      | Error e -> QCheck.Test.fail_reportf "summary round-trip failed: %s" e);
      (match Metrics.result_of_json (Metrics.result_to_json r) with
      | Ok r' when Metrics.equal_result r r' -> ()
      | Ok _ -> QCheck.Test.fail_reportf "result round-trip changed the result"
      | Error e -> QCheck.Test.fail_reportf "result round-trip failed: %s" e);
      true)

(* The store must round-trip metered samples: encode, decode, compare. *)
let test_store_roundtrips_energy () =
  let setup = { E.Runner.n = 16; eps = 0.5; window = 16; max_slots = 50_000 } in
  let sample =
    E.Runner.replicate ~base_seed:7 ~energy:true
      ~engine:(E.Runner.pooled_lmr ()) ~reps:4 setup E.Specs.greedy
  in
  match
    E.Runner.sample_of_json (E.Runner.sample_to_json ~include_results:true sample)
  with
  | Error e -> Alcotest.fail ("sample decode failed: " ^ e)
  | Ok decoded ->
      Alcotest.(check (array result_testable))
        "decoded results carry the same energy blocks" sample.E.Runner.results
        decoded.E.Runner.results

let suite =
  [
    test_recount;
    test_conservation_sleepers;
    test_engines_conserve_and_do_not_perturb;
    Alcotest.test_case "always-on protocols never sleep" `Quick
      test_always_on_protocols_never_sleep;
    Alcotest.test_case "energy blocks are jobs-invariant" `Quick
      test_energy_jobs_invariance;
    test_codec_roundtrip;
    Alcotest.test_case "store round-trips metered samples" `Quick
      test_store_roundtrips_energy;
  ]
