module Fair_use = Jamming_core.Fair_use
open Test_util

let test_jain_closed_forms () =
  check_float "uniform is perfectly fair" 1.0 (Fair_use.jain_index [| 3.0; 3.0; 3.0; 3.0 |]);
  check_float "monopoly scores 1/n" 0.25 (Fair_use.jain_index [| 8.0; 0.0; 0.0; 0.0 |]);
  check_float_eps 1e-9 "two equal sharers among four" 0.5
    (Fair_use.jain_index [| 1.0; 1.0; 0.0; 0.0 |])

let test_jain_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Fair_use.jain_index: empty array")
    (fun () -> ignore (Fair_use.jain_index [||]));
  Alcotest.check_raises "all zero" (Invalid_argument "Fair_use.jain_index: all-zero array")
    (fun () -> ignore (Fair_use.jain_index [| 0.0; 0.0 |]));
  Alcotest.check_raises "negative" (Invalid_argument "Fair_use.jain_index: negative value")
    (fun () -> ignore (Fair_use.jain_index [| 1.0; -1.0 |]))

let run_fair ?(rounds = 60) ?(n = 8) ?(adversary = Adversary.none) ?(seed = 5) () =
  let rng = Prng.create ~seed in
  let budget = Budget.create ~window:32 ~eps:0.5 in
  Fair_use.run ~rounds ~n ~eps:0.5 ~rng ~adversary:(adversary ()) ~budget
    ~max_slots:5_000_000 ()

let test_completes_all_rounds () =
  let o = run_fair () in
  check_int "all rounds played" 60 o.Fair_use.completed_rounds;
  check_int "wins sum to rounds" 60 (Array.fold_left ( + ) 0 o.Fair_use.wins);
  check_true "slots accumulated" (o.Fair_use.total_slots > 0)

let test_fairness_converges () =
  let o = run_fair ~rounds:400 ~n:4 () in
  check_true
    (Printf.sprintf "Jain(wins) = %.2f above 0.8 after 400 rounds" o.Fair_use.jain_wins)
    (o.Fair_use.jain_wins > 0.8);
  check_true "every station won at least once" (Array.for_all (fun w -> w > 0) o.Fair_use.wins);
  check_true "energy nearly even" (o.Fair_use.jain_energy > 0.95)

let test_under_jamming () =
  let o = run_fair ~adversary:Adversary.greedy () in
  check_int "rounds survive jamming" 60 o.Fair_use.completed_rounds;
  check_true "fairness survives jamming" (o.Fair_use.jain_wins > 0.6)

let test_budget_spans_rounds () =
  let rng = Prng.create ~seed:9 in
  let budget = Budget.create ~window:16 ~eps:0.5 in
  let o =
    Fair_use.run ~rounds:20 ~n:8 ~eps:0.5 ~rng
      ~adversary:(Adversary.greedy ())
      ~budget ~max_slots:5_000_000 ()
  in
  check_int "rounds done" 20 o.Fair_use.completed_rounds;
  check_true "chain-wide jam budget respected"
    (float_of_int (Budget.jammed_total budget)
    <= (0.5 *. float_of_int (Budget.elapsed budget)) +. 16.0)

let test_validation () =
  Alcotest.check_raises "rounds 0" (Invalid_argument "Fair_use.run: rounds must be >= 1")
    (fun () -> ignore (run_fair ~rounds:0 ()));
  Alcotest.check_raises "n 1" (Invalid_argument "Fair_use.run: need n >= 2") (fun () ->
      ignore (run_fair ~n:1 ()))

let test_max_slots_cap () =
  let rng = Prng.create ~seed:5 in
  let budget = Budget.create ~window:32 ~eps:0.5 in
  let o =
    Fair_use.run ~rounds:1000 ~n:8 ~eps:0.5 ~rng ~adversary:(Adversary.none ()) ~budget
      ~max_slots:50 ()
  in
  check_true "cap truncates the schedule" (o.Fair_use.completed_rounds < 1000);
  check_true "slots bounded by the cap" (o.Fair_use.total_slots <= 50)

let suite =
  [
    ("Jain closed forms", `Quick, test_jain_closed_forms);
    ("Jain validation", `Quick, test_jain_validation);
    ("completes all rounds", `Quick, test_completes_all_rounds);
    ("fairness converges", `Slow, test_fairness_converges);
    ("fair under jamming", `Quick, test_under_jamming);
    ("budget spans rounds", `Quick, test_budget_spans_rounds);
    ("input validation", `Quick, test_validation);
    ("max_slots cap", `Quick, test_max_slots_cap);
  ]
