module D = Jamming_stats.Descriptive
module R = Jamming_stats.Regression
module H = Jamming_stats.Histogram
module B = Jamming_stats.Bootstrap
open Test_util

let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |]

let test_mean_variance () =
  check_float "mean" 5.0 (D.mean xs);
  (* population variance is 4; sample variance 32/7 *)
  check_float_eps 1e-9 "sample variance" (32.0 /. 7.0) (D.variance xs);
  check_float_eps 1e-9 "stddev" (sqrt (32.0 /. 7.0)) (D.stddev xs);
  check_float "total" 40.0 (D.total xs);
  check_float "min" 2.0 (D.min xs);
  check_float "max" 9.0 (D.max xs)

let test_single_point () =
  check_float "variance of singleton is 0" 0.0 (D.variance [| 3.0 |]);
  check_float "median of singleton" 3.0 (D.median [| 3.0 |])

let test_empty_rejected () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Descriptive.mean: empty sample")
    (fun () -> ignore (D.mean [||]))

let test_quantiles () =
  let v = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "q0 is min" 1.0 (D.quantile v ~q:0.0);
  check_float "q1 is max" 4.0 (D.quantile v ~q:1.0);
  check_float "median interpolates" 2.5 (D.quantile v ~q:0.5);
  check_float "q0.25" 1.75 (D.quantile v ~q:0.25);
  (* input untouched *)
  let w = [| 3.0; 1.0; 2.0 |] in
  ignore (D.quantile w ~q:0.5);
  Alcotest.(check (array (float 0.0))) "input not sorted in place" [| 3.0; 1.0; 2.0 |] w

let test_summary () =
  let s = D.summarize xs in
  check_int "count" 8 s.D.count;
  check_float "summary median" 4.5 s.D.median;
  check_float "summary mean" 5.0 s.D.mean

let test_mean_ci () =
  let lo, hi = D.mean_ci95 xs in
  check_true "CI brackets the mean" (lo <= 5.0 && 5.0 <= hi);
  check_true "CI nondegenerate" (hi > lo)

let test_of_ints () =
  Alcotest.(check (array (float 0.0))) "of_ints" [| 1.0; 2.0 |] (D.of_ints [| 1; 2 |])

let test_linear_regression_exact () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let ys = Array.map (fun x -> (3.0 *. x) +. 2.0) xs in
  let fit = R.linear ~xs ~ys in
  check_float_eps 1e-9 "slope" 3.0 fit.R.slope;
  check_float_eps 1e-9 "intercept" 2.0 fit.R.intercept;
  check_float_eps 1e-9 "perfect r2" 1.0 fit.R.r2

let test_linear_regression_noise () =
  let g = rng () in
  let n = 500 in
  let xs = Array.init n (fun i -> float_of_int i /. 10.0) in
  let ys = Array.map (fun x -> (2.0 *. x) -. 1.0 +. Jamming_prng.Sample.gaussian g ~mean:0.0 ~stddev:0.5) xs in
  let fit = R.linear ~xs ~ys in
  check_float_eps 0.05 "slope recovered" 2.0 fit.R.slope;
  check_true "r2 high" (fit.R.r2 > 0.95)

let test_regression_validation () =
  Alcotest.check_raises "length mismatch" (Invalid_argument "Regression.linear: length mismatch")
    (fun () -> ignore (R.linear ~xs:[| 1.0 |] ~ys:[| 1.0; 2.0 |]));
  Alcotest.check_raises "constant xs" (Invalid_argument "Regression.linear: xs is constant")
    (fun () -> ignore (R.linear ~xs:[| 1.0; 1.0 |] ~ys:[| 1.0; 2.0 |]))

let test_log_log_slope () =
  let xs = [| 2.0; 4.0; 8.0; 16.0 |] in
  let ys = Array.map (fun x -> 5.0 *. (x ** 1.7)) xs in
  let fit = R.log_log_slope ~xs ~ys in
  check_float_eps 1e-9 "power recovered" 1.7 fit.R.slope

let test_pearson () =
  let xs = [| 1.0; 2.0; 3.0 |] in
  check_float_eps 1e-9 "perfect correlation" 1.0 (R.pearson ~xs ~ys:[| 2.0; 4.0; 6.0 |]);
  check_float_eps 1e-9 "perfect anticorrelation" (-1.0) (R.pearson ~xs ~ys:[| 3.0; 2.0; 1.0 |])

let test_ratio_spread () =
  check_float_eps 1e-9 "proportional arrays have spread 1" 1.0
    (R.ratio_spread ~xs:[| 1.0; 2.0; 4.0 |] ~ys:[| 3.0; 6.0; 12.0 |]);
  check_float_eps 1e-9 "spread detects deviation" 2.0
    (R.ratio_spread ~xs:[| 1.0; 1.0 |] ~ys:[| 1.0; 2.0 |])

let test_histogram_binning () =
  let h = H.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  List.iter (H.add h) [ 0.5; 1.5; 2.5; 9.9; 100.0; -3.0 ];
  check_int "count" 6 (H.count h);
  Alcotest.(check (array int)) "bins" [| 3; 1; 0; 0; 2 |] (H.bin_counts h)

let test_histogram_of_samples () =
  let h = H.of_samples ~bins:4 [| 0.0; 1.0; 2.0; 3.0; 4.0 |] in
  check_int "all samples binned" 5 (H.count h);
  check_int "edges count" 4 (Array.length (H.bin_edges h));
  check_true "render produces bars" (String.length (H.render h) > 0)

let test_bootstrap_brackets () =
  let g = rng () in
  let sample = Array.init 200 (fun _ -> Jamming_prng.Sample.gaussian g ~mean:10.0 ~stddev:2.0) in
  let lo, hi = B.median_ci ~rng:g sample in
  check_true "bootstrap CI brackets the true median" (lo < 10.3 && hi > 9.7);
  check_true "CI is an interval" (lo <= hi)

let test_bootstrap_validation () =
  let g = rng () in
  Alcotest.check_raises "empty" (Invalid_argument "Bootstrap.ci: empty sample") (fun () ->
      ignore (B.ci ~rng:g ~stat:D.mean [||]))

module KS = Jamming_stats.Ks

let test_ks_statistic_closed_forms () =
  check_float "identical samples have d = 0" 0.0
    (KS.statistic [| 1.0; 2.0; 3.0 |] [| 1.0; 2.0; 3.0 |]);
  check_float "disjoint samples have d = 1" 1.0
    (KS.statistic [| 1.0; 2.0 |] [| 10.0; 20.0 |]);
  (* xs = {1,2}, ys = {2,3}: after value 1, gap = 1/2; ties at 2 resolve
     together; max gap 1/2. *)
  check_float "interleaved" 0.5 (KS.statistic [| 1.0; 2.0 |] [| 2.0; 3.0 |])

let test_ks_symmetry () =
  let g = rng () in
  let xs = Array.init 50 (fun _ -> Prng.float g) in
  let ys = Array.init 70 (fun _ -> Prng.float g) in
  check_float "symmetric" (KS.statistic xs ys) (KS.statistic ys xs)

let test_ks_same_distribution () =
  let g = rng () in
  let xs = Array.init 300 (fun _ -> Jamming_prng.Sample.gaussian g ~mean:0.0 ~stddev:1.0) in
  let ys = Array.init 300 (fun _ -> Jamming_prng.Sample.gaussian g ~mean:0.0 ~stddev:1.0) in
  check_true "same gaussian accepted" (KS.same_distribution xs ys)

let test_ks_different_distribution () =
  let g = rng () in
  let xs = Array.init 300 (fun _ -> Jamming_prng.Sample.gaussian g ~mean:0.0 ~stddev:1.0) in
  let ys = Array.init 300 (fun _ -> Jamming_prng.Sample.gaussian g ~mean:1.0 ~stddev:1.0) in
  check_true "shifted gaussian rejected" (not (KS.same_distribution xs ys))

let test_ks_p_value_range () =
  check_float "d = 0 has p = 1" 1.0 (KS.p_value ~n1:10 ~n2:10 ~d:0.0);
  let p = KS.p_value ~n1:100 ~n2:100 ~d:0.5 in
  check_true "large d has tiny p" (p < 1e-6)

module BC = Jamming_stats.Binomial_ci

let test_wilson_brackets () =
  let lo, hi = BC.wilson95 ~successes:50 ~trials:100 in
  check_true "brackets 0.5" (lo < 0.5 && 0.5 < hi);
  check_true "non-degenerate" (hi -. lo > 0.1 && hi -. lo < 0.3)

let test_wilson_extremes () =
  let lo, hi = BC.wilson95 ~successes:100 ~trials:100 in
  check_float "upper bound is 1 at perfect success" 1.0 hi;
  check_true "lower bound strictly below 1" (lo < 1.0 && lo > 0.9);
  let lo0, hi0 = BC.wilson95 ~successes:0 ~trials:100 in
  check_float "lower bound 0 at total failure" 0.0 lo0;
  check_true "upper bound near rule of three" (hi0 < 0.06)

let test_wilson_validation () =
  Alcotest.check_raises "successes > trials"
    (Invalid_argument "Binomial_ci.wilson: successes out of range") (fun () ->
      ignore (BC.wilson95 ~successes:3 ~trials:2));
  Alcotest.check_raises "no trials" (Invalid_argument "Binomial_ci.wilson: trials must be >= 1")
    (fun () -> ignore (BC.wilson95 ~successes:0 ~trials:0))

let test_rule_of_three () =
  check_float "3/n" 0.003 (BC.rule_of_three ~trials:1000)

let prop_wilson_ordered =
  qtest ~count:200 "wilson bounds are ordered and bracket the MLE"
    QCheck.(pair (int_range 1 500) (int_range 0 500))
    (fun (trials, s) ->
      let successes = Stdlib.min s trials in
      let lo, hi = BC.wilson95 ~successes ~trials in
      let p = float_of_int successes /. float_of_int trials in
      lo <= p +. 1e-9 && p <= hi +. 1e-9 && lo >= 0.0 && hi <= 1.0)

let prop_quantile_monotone =
  qtest ~count:200 "quantiles are monotone in q"
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 2 40) (float_range (-100.) 100.))
              (pair (float_range 0.0 1.0) (float_range 0.0 1.0)))
    (fun (l, (q1, q2)) ->
      let v = Array.of_list l in
      let qa = Float.min q1 q2 and qb = Float.max q1 q2 in
      D.quantile v ~q:qa <= D.quantile v ~q:qb +. 1e-9)

let prop_mean_between_min_max =
  qtest ~count:200 "mean lies within [min, max]"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (float_range (-1e6) 1e6))
    (fun l ->
      let v = Array.of_list l in
      let m = D.mean v in
      m >= D.min v -. 1e-6 && m <= D.max v +. 1e-6)

let suite =
  [
    ("mean/variance closed forms", `Quick, test_mean_variance);
    ("singleton sample", `Quick, test_single_point);
    ("empty sample rejected", `Quick, test_empty_rejected);
    ("quantiles", `Quick, test_quantiles);
    ("summary", `Quick, test_summary);
    ("mean CI", `Quick, test_mean_ci);
    ("of_ints", `Quick, test_of_ints);
    ("linear regression exact", `Quick, test_linear_regression_exact);
    ("linear regression with noise", `Quick, test_linear_regression_noise);
    ("regression validation", `Quick, test_regression_validation);
    ("log-log slope", `Quick, test_log_log_slope);
    ("pearson", `Quick, test_pearson);
    ("ratio spread", `Quick, test_ratio_spread);
    ("histogram binning", `Quick, test_histogram_binning);
    ("histogram of samples", `Quick, test_histogram_of_samples);
    ("bootstrap CI brackets", `Quick, test_bootstrap_brackets);
    ("bootstrap validation", `Quick, test_bootstrap_validation);
    ("KS closed forms", `Quick, test_ks_statistic_closed_forms);
    ("KS symmetry", `Quick, test_ks_symmetry);
    ("KS accepts equal distributions", `Quick, test_ks_same_distribution);
    ("KS rejects shifted distributions", `Quick, test_ks_different_distribution);
    ("KS p-value range", `Quick, test_ks_p_value_range);
    ("wilson brackets", `Quick, test_wilson_brackets);
    ("wilson extremes", `Quick, test_wilson_extremes);
    ("wilson validation", `Quick, test_wilson_validation);
    ("rule of three", `Quick, test_rule_of_three);
    prop_wilson_ordered;
    prop_quantile_monotone;
    prop_mean_between_min_max;
  ]
