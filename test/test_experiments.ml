module E = Jamming_experiments
open Test_util

let test_table_render () =
  let t =
    E.Table.create ~title:"demo" ~columns:[ ("name", E.Table.Left); ("v", E.Table.Right) ]
  in
  E.Table.add_row t [ "alpha"; "1" ];
  E.Table.add_row t [ "b"; "22" ];
  let s = E.Table.render t in
  check_true "title present" (String.length s > 4 && String.sub s 0 4 = "demo");
  check_true "right alignment pads" (String.length s > 0);
  Alcotest.check_raises "row arity enforced"
    (Invalid_argument "Table.add_row: 1 cells for 2 columns") (fun () ->
      E.Table.add_row t [ "only-one" ])

let test_table_csv () =
  let t = E.Table.create ~title:"t" ~columns:[ ("a", E.Table.Left); ("b", E.Table.Left) ] in
  E.Table.add_row t [ "x,y"; "plain" ];
  E.Table.add_separator t;
  E.Table.add_row t [ "q\"uote"; "2" ];
  let csv = E.Table.to_csv t in
  Alcotest.(check string) "csv escaping" "a,b\n\"x,y\",plain\n\"q\"\"uote\",2\n" csv

let test_table_formatters () =
  Alcotest.(check string) "pct" "97.0%" (E.Table.fmt_pct 0.97);
  Alcotest.(check string) "ratio" "1.50" (E.Table.fmt_ratio 1.5);
  Alcotest.(check string) "capped slots" ">100" (E.Table.fmt_slots ~capped:true 100.0);
  Alcotest.(check string) "plain slots" "137" (E.Table.fmt_slots ~capped:false 137.0)

let test_ascii_plot () =
  let s =
    E.Ascii_plot.render ~width:20 ~height:8 ~x_label:"n" ~y_label:"slots"
      [
        { E.Ascii_plot.label = "a"; points = [ (1.0, 1.0); (2.0, 4.0); (3.0, 9.0) ] };
        { E.Ascii_plot.label = "b"; points = [ (1.0, 2.0) ] };
      ]
  in
  check_true "contains the legend" (String.length s > 0);
  check_true "mentions both labels"
    (String.index_opt s '*' <> None && String.index_opt s '+' <> None)

let test_ascii_plot_validation () =
  Alcotest.check_raises "empty plot" (Invalid_argument "Ascii_plot.render: no points")
    (fun () ->
      ignore (E.Ascii_plot.render ~x_label:"x" ~y_label:"y" [ { E.Ascii_plot.label = "e"; points = [] } ]))

let setup = { E.Runner.n = 64; eps = 0.5; window = 16; max_slots = 50_000 }

let lesk_engine = E.Runner.Uniform (E.Specs.lesk ~eps:0.5)

let test_runner_determinism () =
  let s1 = E.Runner.replicate ~engine:lesk_engine ~reps:5 setup E.Specs.greedy in
  let s2 = E.Runner.replicate ~engine:lesk_engine ~reps:5 setup E.Specs.greedy in
  Array.iteri
    (fun i r1 ->
      check_int
        (Printf.sprintf "rep %d identical" i)
        r1.Metrics.slots
        s2.E.Runner.results.(i).Metrics.slots)
    s1.E.Runner.results

let test_runner_seed_variation () =
  let s1 = E.Runner.replicate ~base_seed:1 ~engine:lesk_engine ~reps:8 setup E.Specs.greedy in
  let s2 = E.Runner.replicate ~base_seed:2 ~engine:lesk_engine ~reps:8 setup E.Specs.greedy in
  let slots s = Array.map (fun r -> r.Metrics.slots) s.E.Runner.results in
  check_true "different base seeds give different runs" (slots s1 <> slots s2)

let test_runner_digests () =
  let s = E.Runner.replicate ~engine:lesk_engine ~reps:10 setup E.Specs.no_jamming in
  check_true "all complete without jamming" (E.Runner.all_completed s);
  check_float "all succeed" 1.0 (E.Runner.success_rate s);
  check_true "median positive" (E.Runner.median_slots s > 0.0);
  check_true "energy positive" (E.Runner.mean_energy_per_station s > 0.0);
  check_float "no jamming fraction" 0.0 (E.Runner.median_jammed_fraction s)

let test_runner_validation () =
  Alcotest.check_raises "bad eps" (Invalid_argument "Runner: eps must lie in (0, 1]")
    (fun () ->
      ignore
        (E.Runner.run
           ~engine:(E.Runner.Uniform (E.Specs.lesk ~eps:0.5))
           { setup with E.Runner.eps = 0.0 } E.Specs.greedy ~seed:1))

let test_registry_complete () =
  check_int "28 experiments registered" 28 (List.length E.Experiments.all);
  let ids = List.map (fun e -> e.E.Registry.id) E.Experiments.all in
  List.iter
    (fun id -> check_true (id ^ " present") (List.mem id ids))
    [
      "E1"; "E2"; "E3"; "E4"; "E5"; "E6"; "E7"; "E8"; "E9"; "E10"; "E11"; "E12"; "E13";
      "E14"; "E15"; "E16"; "E17"; "F1"; "F2"; "A1"; "A2"; "A3"; "A4"; "A5"; "A6";
      "A7"; "A8"; "A9";
    ]

let test_registry_find () =
  (match E.Experiments.find "e7" with
  | Some e -> Alcotest.(check string) "find by id" "notification-overhead" e.E.Registry.name
  | None -> Alcotest.fail "E7 not found");
  (match E.Experiments.find "LESK-SCALING-N" with
  | Some e -> Alcotest.(check string) "find by name" "E1" e.E.Registry.id
  | None -> Alcotest.fail "name lookup failed");
  check_true "unknown is None" (E.Experiments.find "nope" = None)

let test_specs_protocol_names () =
  List.iter
    (fun (p, expected) -> Alcotest.(check string) "protocol name" expected p.E.Specs.p_name)
    [
      (E.Specs.lesu (), "LESU");
      (E.Specs.arss, "ARSS-MAC");
      (E.Specs.willard, "Willard");
      (E.Specs.known_n, "known-n");
    ]

let test_parallel_replication_identical () =
  let setup = { E.Runner.n = 256; eps = 0.5; window = 32; max_slots = 100_000 } in
  let seq = E.Runner.replicate ~jobs:1 ~engine:lesk_engine ~reps:24 setup E.Specs.greedy in
  let par = E.Runner.replicate ~jobs:4 ~engine:lesk_engine ~reps:24 setup E.Specs.greedy in
  Array.iteri
    (fun i (r : Metrics.result) ->
      check_int (Printf.sprintf "rep %d bit-identical" i) r.Metrics.slots
        par.E.Runner.results.(i).Metrics.slots;
      check_int "jams identical" r.Metrics.jammed_slots
        par.E.Runner.results.(i).Metrics.jammed_slots)
    seq.E.Runner.results

let test_parallel_exact_identical () =
  let setup = { E.Runner.n = 16; eps = 0.5; window = 32; max_slots = 100_000 } in
  let run jobs =
    E.Runner.replicate ~jobs
      ~engine:
        (E.Runner.Exact
           {
             name = "lesk";
             cd = Channel.Strong_cd;
             factory = Jamming_core.Lesk.station ~eps:0.5;
           })
      ~reps:10 setup E.Specs.greedy
  in
  let seq = run 1 and par = run 3 in
  Array.iteri
    (fun i (r : Metrics.result) ->
      check_int (Printf.sprintf "exact rep %d identical" i) r.Metrics.slots
        par.E.Runner.results.(i).Metrics.slots)
    seq.E.Runner.results

let test_recommended_jobs () =
  let j = E.Runner.recommended_jobs () in
  check_true "at least 1" (j >= 1);
  (* JAMMING_JOBS overrides the detected domain count.  Environment
     changes are process-global, so restore carefully. *)
  let saved = Sys.getenv_opt "JAMMING_JOBS" in
  Unix.putenv "JAMMING_JOBS" "3";
  let overridden = E.Runner.recommended_jobs () in
  (match saved with Some v -> Unix.putenv "JAMMING_JOBS" v | None -> Unix.putenv "JAMMING_JOBS" "");
  check_int "JAMMING_JOBS override" 3 overridden

let test_run_one_smoke () =
  (* Drive a full experiment end-to-end through the registry plumbing
     (header, Output scoping, tables): F1 is the cheapest. *)
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  let out = E.Output.to_formatter ppf in
  (match E.Experiments.find "F1" with
  | Some e -> E.Experiments.run_one ~scale:E.Registry.Quick out e
  | None -> Alcotest.fail "F1 missing");
  Format.pp_print_flush ppf ();
  let text = Buffer.contents buf in
  check_true "prints the banner" (String.length text > 200);
  check_true "contains the claim id"
    (String.length text >= 6 && String.sub text 0 6 = "\n=== F")

let test_output_text_only () =
  let buf = Buffer.create 64 in
  let ppf = Format.formatter_of_buffer buf in
  let out = E.Output.to_formatter ppf in
  let t = E.Table.create ~title:"T" ~columns:[ ("a", E.Table.Left) ] in
  E.Table.add_row t [ "1" ];
  E.Output.table out t;
  Format.pp_print_flush ppf ();
  check_true "table rendered to formatter" (Buffer.length buf > 0);
  Alcotest.(check (list string)) "no csv files" [] (E.Output.csv_files_written out)

let test_output_csv_dir () =
  let dir = Filename.temp_file "jamming" "csv" in
  Sys.remove dir;
  let ppf = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ()) in
  let out = E.Output.with_csv_dir ~dir ppf in
  E.Output.begin_experiment out ~id:"E99";
  let t = E.Table.create ~title:"My Table: v1!" ~columns:[ ("a", E.Table.Left) ] in
  E.Table.add_row t [ "x" ];
  E.Output.table out t;
  E.Output.table out t;
  (match E.Output.csv_files_written out with
  | [ second; first ] ->
      check_true "slugged name" (Filename.basename first = "e99-1-my-table-v1.csv");
      check_true "counter increments" (Filename.basename second = "e99-2-my-table-v1.csv");
      check_true "file exists" (Sys.file_exists first);
      let ic = open_in first in
      let line = input_line ic in
      close_in ic;
      Alcotest.(check string) "csv header" "a" line
  | l -> Alcotest.failf "expected 2 csv files, got %d" (List.length l));
  E.Output.begin_experiment out ~id:"E98";
  E.Output.table out t;
  (match E.Output.csv_files_written out with
  | newest :: _ ->
      check_true "new id resets the counter"
        (Filename.basename newest = "e98-1-my-table-v1.csv")
  | [] -> Alcotest.fail "no file written");
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let test_standard_adversary_zoo () =
  let zoo = E.Specs.standard_adversaries ~eps_protocol:0.5 in
  check_int "nine adversaries" 9 (List.length zoo);
  (* Instantiate each against a short LESK run to prove they are live. *)
  List.iter
    (fun a ->
      let r =
        E.Runner.run ~engine:(E.Runner.Uniform (E.Specs.lesk ~eps:0.5)) setup a ~seed:3
      in
      check_true (a.E.Specs.a_name ^ " run completes") r.Metrics.completed)
    zoo

let suite =
  [
    ("table render", `Quick, test_table_render);
    ("table CSV", `Quick, test_table_csv);
    ("table formatters", `Quick, test_table_formatters);
    ("ascii plot", `Quick, test_ascii_plot);
    ("ascii plot validation", `Quick, test_ascii_plot_validation);
    ("runner determinism", `Quick, test_runner_determinism);
    ("runner seed variation", `Quick, test_runner_seed_variation);
    ("runner digests", `Quick, test_runner_digests);
    ("runner validation", `Quick, test_runner_validation);
    ("registry complete", `Quick, test_registry_complete);
    ("registry find", `Quick, test_registry_find);
    ("spec names", `Quick, test_specs_protocol_names);
    ("parallel replication identical", `Quick, test_parallel_replication_identical);
    ("parallel exact identical", `Quick, test_parallel_exact_identical);
    ("recommended jobs", `Quick, test_recommended_jobs);
    ("run_one end-to-end smoke", `Slow, test_run_one_smoke);
    ("output text-only", `Quick, test_output_text_only);
    ("output csv mirroring", `Quick, test_output_csv_dir);
    ("adversary zoo is live", `Slow, test_standard_adversary_zoo);
  ]
