(* Executable checks of the paper's analytical lemmas: the calculus of
   §2.2 verified numerically against the exact channel probabilities. *)

module Lemmas = Jamming_core.Lemmas
open Test_util

let holds name (lhs, rhs) =
  check_true (Printf.sprintf "%s: %.6g <= %.6g" name lhs rhs) (lhs <= rhs +. 1e-12)

let test_lemma_2_1_points () =
  List.iter
    (fun (n, x) ->
      holds "2.1(1) Null" (Lemmas.lemma_2_1_null ~n ~x);
      holds "2.1(3,finite) Single-exp" (Lemmas.lemma_2_1_single_exp_finite ~n ~x);
      if x >= 1.0 then begin
        holds "2.1(3) Single-exp" (Lemmas.lemma_2_1_single_exp ~n ~x);
        holds "2.1(2) Collision" (Lemmas.lemma_2_1_collision ~n ~x);
        holds "2.1(4) Single-poly" (Lemmas.lemma_2_1_single_poly ~n ~x)
      end)
    [
      (2, 1.0); (2, 4.0); (10, 0.5); (100, 1.0); (100, 3.0); (1000, 2.0);
      (1000, 10.0); (100000, 1.5); (7, 1.1);
    ]

(* The reproduction note on Lemma 2.1(3): the literal statement fails
   for x < 1 at finite n, and the repaired bound holds. *)
let test_lemma_2_1_point_3_counterexample () =
  let claimed, actual = Lemmas.lemma_2_1_single_exp ~n:10 ~x:0.5 in
  check_true
    (Printf.sprintf "literal 2.1(3) fails at n=10, x=0.5: %.6f > %.6f" claimed actual)
    (claimed > actual);
  holds "repaired bound holds there" (Lemmas.lemma_2_1_single_exp_finite ~n:10 ~x:0.5)

let test_lemma_2_1_validation () =
  Alcotest.check_raises "p > 1 rejected" (Invalid_argument "Lemmas: p = 1/(x n) exceeds 1")
    (fun () -> ignore (Lemmas.lemma_2_1_null ~n:1 ~x:0.5))

let prop_lemma_2_1 =
  qtest ~count:300 "Lemma 2.1 holds across the (n, x) plane"
    QCheck.(pair (int_range 2 200_000) (float_range 1.0 50.0))
    (fun (n, x) ->
      let le (a, b) = a <= b +. 1e-12 in
      le (Lemmas.lemma_2_1_null ~n ~x)
      && le (Lemmas.lemma_2_1_collision ~n ~x)
      && le (Lemmas.lemma_2_1_single_exp ~n ~x)
      && le (Lemmas.lemma_2_1_single_exp_finite ~n ~x)
      && le (Lemmas.lemma_2_1_single_poly ~n ~x))

let prop_lemma_2_2 =
  qtest ~count:200 "Lemma 2.2 irregular-slot bounds"
    QCheck.(pair (int_range 64 1_000_000) (float_range 0.05 1.0))
    (fun (n, eps) ->
      let le (a, b) = a <= b +. 1e-12 in
      (* The silence bound needs 2 ln a <= n. *)
      let a = 8.0 /. eps in
      (2.0 *. log a > float_of_int n || le (Lemmas.lemma_2_2_irregular_silence ~n ~eps))
      && le (Lemmas.lemma_2_2_irregular_collision ~n ~eps))

let test_regular_band_shape () =
  let lo, hi = Lemmas.regular_band ~eps:0.5 in
  (* a = 16: band is [-log2(2 ln 16), 0.5 log2 16] = [-2.47, 2]. *)
  check_float_eps 0.01 "band lower" (-2.47) lo;
  check_float_eps 1e-9 "band upper" 2.0 hi;
  check_true "band contains 0 (u = u0 is regular)" (lo < 0.0 && hi > 0.0)

let prop_lemma_2_4 =
  qtest ~count:200 "Lemma 2.4: every regular slot has P[Single] >= ln a / a^2"
    QCheck.(
      triple (int_range 1024 1_000_000) (float_range 0.1 1.0) (float_range 0.0 1.0))
    (fun (n, eps, frac) ->
      let lo, hi = Lemmas.regular_band ~eps in
      let u_off = lo +. (frac *. (hi -. lo)) in
      let bound, actual = Lemmas.lemma_2_4_regular_single ~n ~eps ~u_off in
      bound <= actual +. 1e-12)

let test_fact_1_chernoff () =
  let rng = rng () in
  List.iter
    (fun (n, p, delta) ->
      check_true
        (Printf.sprintf "Chernoff at n=%d p=%.3f delta=%.2f" n p delta)
        (Lemmas.fact_1_chernoff_holds ~rng ~n ~p ~delta ~trials:3000))
    [ (100, 0.1, 0.5); (1000, 0.05, 0.3); (1000, 0.01, 1.0); (200, 0.25, 1.4) ]

let test_fact_1_validation () =
  let rng = rng () in
  Alcotest.check_raises "delta out of range" (Invalid_argument "Lemmas.fact_1: delta out of range")
    (fun () -> ignore (Lemmas.fact_1_chernoff_holds ~rng ~n:10 ~p:0.5 ~delta:2.0 ~trials:10))

(* The bounds are not vacuous: check they are reasonably tight where the
   paper uses them. *)
let test_bounds_not_vacuous () =
  let lhs, rhs = Lemmas.lemma_2_1_null ~n:100000 ~x:1.0 in
  check_true "Null bound tight at x=1" (rhs -. lhs < 0.01);
  let bound, actual = Lemmas.lemma_2_4_regular_single ~n:65536 ~eps:0.5 ~u_off:0.0 in
  check_true "2.4 bound within 50x of the true P[Single] at band centre"
    (actual /. bound < 50.0)

let suite =
  [
    ("Lemma 2.1 at chosen points", `Quick, test_lemma_2_1_points);
    ("Lemma 2.1(3) finite-n counterexample", `Quick, test_lemma_2_1_point_3_counterexample);
    ("Lemma 2.1 validation", `Quick, test_lemma_2_1_validation);
    prop_lemma_2_1;
    prop_lemma_2_2;
    ("regular band shape", `Quick, test_regular_band_shape);
    prop_lemma_2_4;
    ("Fact 1 (Chernoff), Monte-Carlo", `Slow, test_fact_1_chernoff);
    ("Fact 1 validation", `Quick, test_fact_1_validation);
    ("bounds are not vacuous", `Quick, test_bounds_not_vacuous);
  ]
