module Estimation = Jamming_core.Estimation
module Size_approx = Jamming_core.Size_approx
open Test_util

let nulls k = List.init k (fun _ -> Channel.Null)
let collisions k = List.init k (fun _ -> Channel.Collision)

let test_validation () =
  Alcotest.check_raises "threshold 0"
    (Invalid_argument "Estimation.Logic.create: threshold must be >= 1") (fun () ->
      ignore (Estimation.Logic.create ~threshold:0))

let test_round_structure () =
  let l = Estimation.Logic.create ~threshold:2 in
  check_int "round starts at 1" 1 (Estimation.Logic.round l);
  check_float "round-1 probability is 2^-2" 0.25 (Estimation.Logic.tx_prob l);
  (* Round 1 has 2 slots; feed 2 collisions -> advance to round 2. *)
  Estimation.Logic.on_state l Channel.Collision;
  Estimation.Logic.on_state l Channel.Collision;
  check_int "round 2 after 2 slots" 2 (Estimation.Logic.round l);
  check_float "round-2 probability is 2^-4" (1.0 /. 16.0) (Estimation.Logic.tx_prob l);
  (* Round 2 has 4 slots. *)
  for _ = 1 to 4 do
    Estimation.Logic.on_state l Channel.Collision
  done;
  check_int "round 3 after 4 more" 3 (Estimation.Logic.round l)

let test_returns_on_enough_nulls () =
  (* Round 1 (2 slots) with 2 Nulls meets L = 2 immediately. *)
  match Estimation.run_logic ~threshold:2 ~states:(nulls 2) with
  | `Returned 1 -> ()
  | `Returned r -> Alcotest.failf "returned %d, expected 1" r
  | `Singled -> Alcotest.fail "unexpected Single"
  | `Running _ -> Alcotest.fail "should have returned"

let test_nulls_must_be_in_one_round () =
  (* One Null in round 1 does not carry over; round 2 (4 slots) is fed
     only 3 slots with a single Null, so the logic is still mid-round. *)
  let states = [ Channel.Null; Channel.Collision ] @ collisions 2 @ [ Channel.Null ] in
  match Estimation.run_logic ~threshold:2 ~states with
  | `Running l -> check_int "still in round 2" 2 (Estimation.Logic.round l)
  | `Returned r -> Alcotest.failf "returned %d too early" r
  | `Singled -> Alcotest.fail "unexpected Single"

let test_single_stops_everything () =
  match Estimation.run_logic ~threshold:2 ~states:(collisions 3 @ [ Channel.Single ]) with
  | `Singled -> ()
  | _ -> Alcotest.fail "Single must end the estimation"

let test_threshold_one () =
  match Estimation.run_logic ~threshold:1 ~states:[ Channel.Collision; Channel.Null ] with
  | `Returned 1 -> ()
  | _ -> Alcotest.fail "L=1 returns on the first Null-bearing round"

let test_probability_underflows_gracefully () =
  let l = Estimation.Logic.create ~threshold:2 in
  (* Push to a very high round. *)
  let rec drain r =
    if r < 70 then begin
      for _ = 1 to 1 lsl Stdlib.min r 22 do
        Estimation.Logic.on_state l Channel.Collision
      done;
      drain (r + 1)
    end
  in
  drain 1;
  let p = Estimation.Logic.tx_prob l in
  check_true "probability stays a valid float" (p >= 0.0 && p <= 1.0)

(* --- Lemma 2.8 in simulation (via Size_approx, which wraps Estimation) --- *)

let run_estimation ~seed ~n ~window ~adversary =
  let rng = Prng.create ~seed in
  let budget = Budget.create ~window ~eps:0.5 in
  Size_approx.run ~n ~rng ~adversary:(adversary ()) ~budget
    ~max_slots:(Stdlib.max 200_000 (64 * window)) ()

let test_band_no_adversary () =
  List.iter
    (fun n ->
      let in_band = ref 0 and total = 30 in
      for seed = 1 to total do
        match run_estimation ~seed ~n ~window:16 ~adversary:Adversary.none with
        | Size_approx.Estimate { round; _ } ->
            if Size_approx.within_lemma_2_8_band ~round ~n ~window:16 then incr in_band
        | Size_approx.Leader_elected _ -> incr in_band
        | Size_approx.Exhausted _ -> ()
      done;
      check_true
        (Printf.sprintf "n=%d: %d/%d runs in the Lemma 2.8 band" n !in_band total)
        (!in_band >= total - 1))
    [ 128; 4096; 65536 ]

let test_band_under_greedy_jamming () =
  let n = 4096 and window = 64 in
  let ok = ref 0 and total = 30 in
  for seed = 100 to 100 + total - 1 do
    match run_estimation ~seed ~n ~window ~adversary:Adversary.greedy with
    | Size_approx.Estimate { round; _ } ->
        if Size_approx.within_lemma_2_8_band ~round ~n ~window then incr ok
    | Size_approx.Leader_elected _ -> incr ok
    | Size_approx.Exhausted _ -> ()
  done;
  check_true (Printf.sprintf "greedy: %d/%d in band" !ok total) (!ok >= total - 2)

let test_time_bound () =
  (* Lemma 2.8: O(max{log n, T}) slots. *)
  let n = 65536 and window = 16 in
  match run_estimation ~seed:5 ~n ~window ~adversary:Adversary.none with
  | Size_approx.Estimate { slots; _ } | Size_approx.Leader_elected { slots } ->
      check_true
        (Printf.sprintf "estimation used %d slots for log n = 16" slots)
        (slots <= 64 * 16)
  | Size_approx.Exhausted _ -> Alcotest.fail "estimation did not finish"

let test_n_hat_polynomial () =
  (* n_hat = 2^(2^round) is within [sqrt n, n^4] when the round is in band
     and T <= log n. *)
  let n = 65536 in
  match run_estimation ~seed:6 ~n ~window:8 ~adversary:Adversary.none with
  | Size_approx.Estimate { n_hat; round; _ } ->
      check_true "round in band" (Size_approx.within_lemma_2_8_band ~round ~n ~window:8);
      let nf = float_of_int n in
      check_true
        (Printf.sprintf "n_hat = %g within [sqrt n, n^4]" n_hat)
        (n_hat >= sqrt nf && n_hat <= nf ** 4.0)
  | Size_approx.Leader_elected _ -> () (* acceptable per the lemma *)
  | Size_approx.Exhausted _ -> Alcotest.fail "no estimate"

let test_uniform_wrapper_stops_transmitting () =
  let factory = Estimation.uniform ~threshold:2 () in
  let u = factory () in
  (* Feed Nulls until it returns; afterwards tx_prob must be 0. *)
  ignore (u.Uniform.on_state Channel.Null);
  ignore (u.Uniform.on_state Channel.Null);
  check_float "post-return probability 0" 0.0 (u.Uniform.tx_prob ())

let suite =
  [
    ("validation", `Quick, test_validation);
    ("round structure", `Quick, test_round_structure);
    ("returns on enough Nulls", `Quick, test_returns_on_enough_nulls);
    ("Null quota is per round", `Quick, test_nulls_must_be_in_one_round);
    ("Single stops estimation", `Quick, test_single_stops_everything);
    ("threshold one", `Quick, test_threshold_one);
    ("deep rounds underflow gracefully", `Quick, test_probability_underflows_gracefully);
    ("Lemma 2.8 band, benign channel", `Slow, test_band_no_adversary);
    ("Lemma 2.8 band, greedy jamming", `Slow, test_band_under_greedy_jamming);
    ("Lemma 2.8 time bound", `Quick, test_time_bound);
    ("size estimate is polynomial", `Quick, test_n_hat_polynomial);
    ("uniform wrapper goes quiet after returning", `Quick, test_uniform_wrapper_stops_transmitting);
  ]
