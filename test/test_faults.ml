open Test_util
module Perception = Jamming_faults.Perception
module Fault_plan = Jamming_faults.Fault_plan
module Config = Jamming_faults.Config
module Injection = Jamming_faults.Injection
module Churn = Jamming_faults.Churn

(* --- perception noise --- *)

let test_perception_constructors () =
  check_true "none is null" (Perception.is_null Perception.none);
  check_true "uniform 0 is null" (Perception.is_null (Perception.uniform ~p:0.0));
  let u = Perception.uniform ~p:0.25 in
  check_true "uniform p is not null" (not (Perception.is_null u));
  check_float "uniform sets every rate" 0.25 u.Perception.p_collision_to_null;
  check_true "pp is non-empty" (String.length (Format.asprintf "%a" Perception.pp u) > 0)

let test_perception_validation () =
  Alcotest.check_raises "uniform above 0.5"
    (Invalid_argument "Perception.uniform: p must lie in [0, 0.5]") (fun () ->
      ignore (Perception.uniform ~p:0.6));
  Alcotest.check_raises "negative rate" (Invalid_argument "Perception: rates must lie in [0, 1]")
    (fun () -> Perception.validate { Perception.none with Perception.p_null_to_collision = -0.1 });
  Alcotest.check_raises "collision flips oversubscribed"
    (Invalid_argument "Perception: collision flip rates must sum to at most 1") (fun () ->
      Perception.validate
        {
          Perception.none with
          Perception.p_collision_to_single = 0.7;
          p_collision_to_null = 0.7;
        })

let test_perception_zero_rates_draw_nothing () =
  (* The bit-identical zero-fault guarantee rests on this: applying
     all-zero noise must neither change the state nor advance the rng. *)
  let g = rng () and witness = rng () in
  List.iter
    (fun st ->
      Alcotest.check state_testable "zero noise is the identity" st
        (Perception.apply Perception.none g st))
    [ Channel.Null; Channel.Single; Channel.Collision ];
  check_int "generator untouched"
    (Prng.int witness ~bound:1_000_000)
    (Prng.int g ~bound:1_000_000)

let test_perception_extremes () =
  let g = rng () in
  let certain_n2c = { Perception.none with Perception.p_null_to_collision = 1.0 } in
  Alcotest.check state_testable "Null -> Collision at rate 1" Channel.Collision
    (Perception.apply certain_n2c g Channel.Null);
  let certain_s2c = { Perception.none with Perception.p_single_to_collision = 1.0 } in
  Alcotest.check state_testable "Single -> Collision at rate 1" Channel.Collision
    (Perception.apply certain_s2c g Channel.Single);
  let certain_c2s = { Perception.none with Perception.p_collision_to_single = 1.0 } in
  Alcotest.check state_testable "Collision -> Single at rate 1" Channel.Single
    (Perception.apply certain_c2s g Channel.Collision);
  let certain_c2n = { Perception.none with Perception.p_collision_to_null = 1.0 } in
  Alcotest.check state_testable "Collision -> Null at rate 1" Channel.Null
    (Perception.apply certain_c2n g Channel.Collision);
  (* Rates touching other states leave this one alone. *)
  Alcotest.check state_testable "Single unaffected by Null rate" Channel.Single
    (Perception.apply certain_n2c g Channel.Single)

let test_perception_rates_empirical () =
  let g = rng ~seed:99 () in
  let t = { Perception.none with Perception.p_collision_to_single = 0.3 } in
  let n = 20_000 and singles = ref 0 in
  for _ = 1 to n do
    if
      Channel.equal_state (Perception.apply t g Channel.Collision) Channel.Single
    then incr singles
  done;
  check_float_eps 0.02 "capture effect at rate p" 0.3 (float_of_int !singles /. float_of_int n)

(* --- lifecycle plans --- *)

(* A station that records which slots its inner protocol actually ran. *)
let recorder ~decided ~observed ~id ~rng:_ =
  {
    Station.id;
    decide =
      (fun ~slot ->
        decided := slot :: !decided;
        Station.Transmit);
    observe = (fun ~slot ~perceived:_ ~transmitted:_ -> observed := slot :: !observed);
    status = (fun () -> Station.Undecided);
    finished = (fun () -> false);
  }

let drive station slots =
  for slot = 0 to slots - 1 do
    if not (station.Station.finished ()) then begin
      let action = station.Station.decide ~slot in
      station.Station.observe ~slot ~perceived:Channel.Single
        ~transmitted:(Station.equal_action action Station.Transmit)
    end
  done

let test_plan_predicates () =
  let plan = { Fault_plan.wake_slot = 3; crash_slot = Some 10; sleeps = [ (5, 7) ] } in
  Fault_plan.validate plan;
  check_true "dormant before wake" (Fault_plan.dormant plan ~slot:2);
  check_true "awake at wake slot" (not (Fault_plan.dormant plan ~slot:3));
  check_true "dormant inside sleep" (Fault_plan.dormant plan ~slot:5);
  check_true "awake at sleep stop (half-open)" (not (Fault_plan.dormant plan ~slot:7));
  check_true "not crashed before" (not (Fault_plan.crashed plan ~slot:9));
  check_true "crashed from crash slot on" (Fault_plan.crashed plan ~slot:10);
  check_true "pp is non-empty" (String.length (Format.asprintf "%a" Fault_plan.pp plan) > 0)

let test_plan_validation () =
  check_true "none is null" (Fault_plan.is_null Fault_plan.none);
  Alcotest.check_raises "negative wake" (Invalid_argument "Fault_plan: wake_slot must be >= 0")
    (fun () -> Fault_plan.validate { Fault_plan.none with Fault_plan.wake_slot = -1 });
  Alcotest.check_raises "empty sleep"
    (Invalid_argument "Fault_plan: sleep intervals must be non-empty") (fun () ->
      Fault_plan.validate { Fault_plan.none with Fault_plan.sleeps = [ (4, 4) ] })

let test_wrap_null_plan_is_identity () =
  let decided = ref [] and observed = ref [] in
  let s = recorder ~decided ~observed ~id:0 ~rng:(rng ()) in
  check_true "null plan returns the station itself" (Fault_plan.wrap Fault_plan.none s == s)

let test_wrap_late_wake_and_sleep () =
  let decided = ref [] and observed = ref [] in
  let s = recorder ~decided ~observed ~id:0 ~rng:(rng ()) in
  let plan = { Fault_plan.wake_slot = 2; crash_slot = None; sleeps = [ (4, 6) ] } in
  let w = Fault_plan.wrap plan s in
  Alcotest.check (Alcotest.testable Station.pp_action Station.equal_action)
    "dormant station listens" Station.Listen (w.Station.decide ~slot:0);
  drive w 8;
  (* Slot 0 consumed above; the inner protocol must have run exactly on
     the awake slots 2,3,6,7 — dormancy freezes it, not just silences it. *)
  Alcotest.(check (list int)) "inner decide ran only while awake" [ 2; 3; 6; 7 ]
    (List.sort compare !decided);
  Alcotest.(check (list int)) "inner observe ran only while awake" [ 2; 3; 6; 7 ]
    (List.sort compare !observed)

let test_wrap_crash_stop () =
  let decided = ref [] and observed = ref [] in
  let s = recorder ~decided ~observed ~id:0 ~rng:(rng ()) in
  let plan = { Fault_plan.none with Fault_plan.crash_slot = Some 3 } in
  let w = Fault_plan.wrap plan s in
  drive w 10;
  Alcotest.(check (list int)) "inner protocol dead from the crash slot" [ 0; 1; 2 ]
    (List.sort compare !decided);
  check_true "wrapper reports finished" (w.Station.finished ());
  Alcotest.check status_testable "status frozen at last value" Station.Undecided
    (w.Station.status ())

(* --- config sampling --- *)

let test_config_null_and_validation () =
  check_true "none is null" (Config.is_null Config.none);
  Config.validate Config.none;
  Alcotest.check_raises "bad probability"
    (Invalid_argument "Faults.Config: probabilities must lie in [0, 1]") (fun () ->
      Config.validate { Config.none with Config.p_crash = 1.5 });
  Alcotest.check_raises "bad horizon" (Invalid_argument "Faults.Config: horizons must be >= 1")
    (fun () -> Config.validate { Config.none with Config.crash_horizon = 0 });
  check_true "pp is non-empty" (String.length (Format.asprintf "%a" Config.pp Config.none) > 0)

let test_config_null_sampling_draws_nothing () =
  let g = rng () and witness = rng () in
  let plans = Config.sample_plans Config.none ~rng:g ~n:20 in
  check_true "null config yields null plans" (Array.for_all Fault_plan.is_null plans);
  check_int "generator untouched"
    (Prng.int witness ~bound:1_000_000)
    (Prng.int g ~bound:1_000_000)

let test_config_certain_faults () =
  let cfg =
    {
      Config.none with
      Config.p_crash = 1.0;
      crash_horizon = 50;
      p_sleep = 1.0;
      sleep_horizon = 30;
      max_sleep = 5;
      p_late_wake = 1.0;
      max_wake_delay = 4;
    }
  in
  let plans = Config.sample_plans cfg ~rng:(rng ()) ~n:50 in
  Array.iter
    (fun plan ->
      Fault_plan.validate plan;
      check_true "wake delayed within bound"
        (plan.Fault_plan.wake_slot >= 1 && plan.Fault_plan.wake_slot <= 4);
      (match plan.Fault_plan.crash_slot with
      | Some c -> check_true "crash within horizon" (c >= 0 && c < 50)
      | None -> Alcotest.fail "p_crash = 1 must always crash");
      match plan.Fault_plan.sleeps with
      | [ (a, b) ] ->
          check_true "sleep within bounds" (a >= 0 && a < 30 && b - a >= 1 && b - a <= 5)
      | _ -> Alcotest.fail "p_sleep = 1 must sleep exactly once")
    plans

let test_config_sampling_deterministic () =
  let cfg = { Config.none with Config.p_crash = 0.5; crash_horizon = 100 } in
  let sample seed = Config.sample_plans cfg ~rng:(Prng.create ~seed) ~n:30 in
  check_true "same seed, same plans" (sample 5 = sample 5);
  check_true "different seed, different plans" (sample 5 <> sample 6)

let test_wrap_stations_length_mismatch () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Faults.Config.wrap_stations: plans and stations must have equal length")
    (fun () -> ignore (Config.wrap_stations [| Fault_plan.none |] [||]))

(* --- engine integration --- *)

let listen_only ~id ~rng:_ =
  let slots = ref 0 in
  {
    Station.id;
    decide = (fun ~slot:_ -> incr slots; Station.Listen);
    observe = (fun ~slot:_ ~perceived:_ ~transmitted:_ -> ());
    status = (fun () -> if !slots >= 10 then Station.Non_leader else Station.Undecided);
    finished = (fun () -> !slots >= 10);
  }

let test_engine_noise_changes_perception () =
  (* All-listening stations on a clear channel: with certain Null ->
     Collision noise every strong-CD listener perceives Collision. *)
  let perceived = ref [] in
  let observing ~id ~rng =
    let s = listen_only ~id ~rng in
    { s with Station.observe = (fun ~slot:_ ~perceived:p ~transmitted:_ -> perceived := p :: !perceived) }
  in
  let noise = { Perception.none with Perception.p_null_to_collision = 1.0 } in
  let run noise =
    perceived := [];
    let stations = Engine.make_stations ~n:2 ~rng:(rng ()) observing in
    let faults = Injection.create ~noise ~rng:(rng ~seed:4 ()) in
    ignore
      (Engine.run ~faults ~cd:Channel.Strong_cd ~adversary:(Adversary.none ())
         ~budget:(Budget.create ~window:4 ~eps:1.0)
         ~max_slots:10 ~stations ());
    !perceived
  in
  check_true "noisy run: every perception flipped to Collision"
    (List.for_all (Channel.equal_state Channel.Collision) (run noise));
  check_true "zero-rate run: truth (Null) comes through"
    (List.for_all (Channel.equal_state Channel.Null) (run Perception.none))

let test_engine_zero_faults_bit_identical () =
  (* Same seeds, LESK under a greedy jammer: the fault path with an
     all-zero config must reproduce the plain run exactly. *)
  let go ~faulty =
    let g = Prng.create ~seed:20260805 in
    let stations = Engine.make_stations ~n:12 ~rng:g (Jamming_core.Lesk.station ~eps:0.5) in
    let stations =
      if faulty then
        Config.wrap_stations
          (Config.sample_plans Config.none ~rng:(Prng.create ~seed:1) ~n:12)
          stations
      else stations
    in
    let faults =
      if faulty then Some (Injection.create ~noise:Perception.none ~rng:(Prng.create ~seed:2))
      else None
    in
    Engine.run ?faults ~cd:Channel.Strong_cd ~adversary:(Adversary.greedy ())
      ~budget:(Budget.create ~window:16 ~eps:0.5)
      ~max_slots:100_000 ~stations ()
  in
  check_true "bit-identical results" (go ~faulty:false = go ~faulty:true)

(* --- plan shifting (dynamic re-spawns at arbitrary birth slots) --- *)

let test_plan_shift () =
  let plan = { Fault_plan.wake_slot = 3; crash_slot = Some 10; sleeps = [ (5, 7) ] } in
  check_true "shift by 0 is the plan itself" (Fault_plan.shift plan ~by:0 == plan);
  Alcotest.check_raises "negative offset"
    (Invalid_argument "Fault_plan.shift: offset must be >= 0") (fun () ->
      ignore (Fault_plan.shift plan ~by:(-1)));
  let s = Fault_plan.shift plan ~by:100 in
  Fault_plan.validate s;
  check_int "wake shifted" 103 s.Fault_plan.wake_slot;
  Alcotest.(check (option int)) "crash shifted" (Some 110) s.Fault_plan.crash_slot;
  Alcotest.(check (list (pair int int))) "sleeps shifted" [ (105, 107) ] s.Fault_plan.sleeps;
  (* The shifted plan behaves at [slot + by] exactly as the original at
     [slot] — the property Dynamic relies on when re-spawning. *)
  List.iter
    (fun slot ->
      check_true "dormant commutes with shift"
        (Fault_plan.dormant plan ~slot = Fault_plan.dormant s ~slot:(slot + 100));
      check_true "crashed commutes with shift"
        (Fault_plan.crashed plan ~slot = Fault_plan.crashed s ~slot:(slot + 100)))
    [ 0; 2; 3; 4; 5; 6; 7; 9; 10; 11 ]

(* --- lifecycle edge cases: crash inside a sleep; wake beyond the cap --- *)

let test_crash_inside_sleep () =
  (* The crash slot falls inside a sleep interval: the latch must fire
     during dormancy and win over the sleep's end — the station never
     re-wakes at slot 8. *)
  let decided = ref [] and observed = ref [] in
  let s = recorder ~decided ~observed ~id:0 ~rng:(rng ()) in
  let plan = { Fault_plan.wake_slot = 0; crash_slot = Some 4; sleeps = [ (2, 8) ] } in
  Fault_plan.validate plan;
  let w = Fault_plan.wrap plan s in
  drive w 12;
  Alcotest.(check (list int)) "inner protocol ran only before the sleep" [ 0; 1 ]
    (List.sort compare !decided);
  check_true "crash latched while dormant" (w.Station.finished ());
  Alcotest.check status_testable "status frozen" Station.Undecided (w.Station.status ())

let test_late_wake_beyond_cap () =
  (* wake_slot beyond max_slots: the station sleeps through the whole
     run, so the election can never complete — a well-defined truncated
     result, not an error. *)
  let stations =
    Engine.make_stations ~n:1 ~rng:(rng ()) (fun ~id ~rng ->
        Fault_plan.wrap
          { Fault_plan.none with Fault_plan.wake_slot = 100 }
          (listen_only ~id ~rng))
  in
  let r =
    Engine.run ~cd:Channel.Strong_cd ~adversary:(Adversary.none ())
      ~budget:(Budget.create ~window:4 ~eps:1.0)
      ~max_slots:10 ~stations ()
  in
  check_int "ran to the cap" 10 r.Metrics.slots;
  check_true "not completed" (not r.Metrics.completed);
  check_true "not elected" (not r.Metrics.elected);
  Alcotest.(check (option int)) "no leader" None r.Metrics.leader;
  Alcotest.check status_testable "still undecided" Station.Undecided r.Metrics.statuses.(0)

(* --- churn policies --- *)

let test_churn_null_and_validation () =
  check_true "none is null" (Churn.is_null Churn.none);
  check_true "zero-rate Rate is null"
    (Churn.is_null (Churn.Rate { every = 4; p_join = 0.0; p_leave = 0.0; max_burst = 3; horizon = 100 }));
  check_true "zero-kill killer is null"
    (Churn.is_null (Churn.Leader_killer { grace = 5; max_kills = 0 }));
  check_true "events are not null"
    (not (Churn.is_null (Churn.Oblivious [ { Churn.at = 3; kind = Churn.Join 1 } ])));
  check_true "live killer is not null"
    (not (Churn.is_null (Churn.Leader_killer { grace = 5; max_kills = 1 })));
  Alcotest.check_raises "unsorted schedule"
    (Invalid_argument "Churn: oblivious events must be sorted by slot") (fun () ->
      Churn.validate
        (Churn.Oblivious
           [ { Churn.at = 5; kind = Churn.Join 1 }; { Churn.at = 3; kind = Churn.Leave Churn.Member } ]));
  Alcotest.check_raises "negative slot" (Invalid_argument "Churn: event slots must be >= 0")
    (fun () -> Churn.validate (Churn.Oblivious [ { Churn.at = -1; kind = Churn.Join 1 } ]));
  Alcotest.check_raises "empty join" (Invalid_argument "Churn: joins must bring >= 1 station")
    (fun () -> Churn.validate (Churn.Oblivious [ { Churn.at = 0; kind = Churn.Join 0 } ]));
  Alcotest.check_raises "bad period" (Invalid_argument "Churn: rate period must be >= 1")
    (fun () ->
      Churn.validate (Churn.Rate { every = 0; p_join = 0.1; p_leave = 0.1; max_burst = 1; horizon = 10 }));
  Alcotest.check_raises "bad probability"
    (Invalid_argument "Churn: rate probabilities must lie in [0, 1]") (fun () ->
      Churn.validate (Churn.Rate { every = 1; p_join = 1.5; p_leave = 0.0; max_burst = 1; horizon = 10 }));
  Alcotest.check_raises "bad burst" (Invalid_argument "Churn: max_burst must be >= 1")
    (fun () ->
      Churn.validate (Churn.Rate { every = 1; p_join = 0.1; p_leave = 0.1; max_burst = 0; horizon = 10 }));
  Alcotest.check_raises "bad kill count" (Invalid_argument "Churn: max_kills must be >= 0")
    (fun () -> Churn.validate (Churn.Leader_killer { grace = 0; max_kills = -1 }))

let test_churn_schedule_draws () =
  (* Oblivious and adaptive policies, and zero-rate Rate, must not touch
     the generator — the churn-stream independence guarantee. *)
  let g = rng () and witness = rng () in
  let evs = [ { Churn.at = 2; kind = Churn.Join 2 }; { Churn.at = 9; kind = Churn.Leave Churn.Leader } ] in
  check_true "oblivious passes events through"
    (Churn.sample_schedule (Churn.Oblivious evs) ~rng:g = evs);
  check_true "killer has no oblivious part"
    (Churn.sample_schedule (Churn.Leader_killer { grace = 2; max_kills = 3 }) ~rng:g = []);
  check_true "zero-rate draws no events"
    (Churn.sample_schedule
       (Churn.Rate { every = 2; p_join = 0.0; p_leave = 0.0; max_burst = 4; horizon = 1000 })
       ~rng:g
    = []);
  check_int "generator untouched"
    (Prng.int witness ~bound:1_000_000)
    (Prng.int g ~bound:1_000_000)

let test_churn_rate_schedule () =
  let policy = Churn.Rate { every = 5; p_join = 0.5; p_leave = 0.3; max_burst = 4; horizon = 200 } in
  let sample seed = Churn.sample_schedule policy ~rng:(Prng.create ~seed) in
  check_true "same seed, same schedule" (sample 11 = sample 11);
  check_true "different seed, different schedule" (sample 11 <> sample 12);
  let evs = sample 11 in
  check_true "rates this high produce churn" (evs <> []);
  let sorted = List.sort (fun a b -> compare a.Churn.at b.Churn.at) evs in
  check_true "schedule comes out sorted" (evs = sorted);
  Churn.validate (Churn.Oblivious evs);
  List.iter
    (fun { Churn.at; kind } ->
      check_true "events land on ticks within the horizon"
        (at >= 5 && at <= 200 && at mod 5 = 0);
      match kind with
      | Churn.Join k -> check_true "burst within [1, max_burst]" (k >= 1 && k <= 4)
      | Churn.Leave v ->
          check_true "rate departures target members" (v = Churn.Member))
    evs

let test_churn_kill_policy () =
  Alcotest.(check (option (pair int int)))
    "live killer exposes (grace, kills)" (Some (7, 2))
    (Churn.kill_policy (Churn.Leader_killer { grace = 7; max_kills = 2 }));
  Alcotest.(check (option (pair int int)))
    "zero kills is inert" None
    (Churn.kill_policy (Churn.Leader_killer { grace = 7; max_kills = 0 }));
  Alcotest.(check (option (pair int int))) "oblivious has no killer" None
    (Churn.kill_policy Churn.none)

let test_churn_descriptor () =
  Alcotest.(check string) "join event rendering" "5+3"
    (Churn.event_to_string { Churn.at = 5; kind = Churn.Join 3 });
  Alcotest.(check string) "leave event rendering" "7-leader"
    (Churn.event_to_string { Churn.at = 7; kind = Churn.Leave Churn.Leader });
  let rate p_join = Churn.Rate { every = 2; p_join; p_leave = 0.25; max_burst = 3; horizon = 50 } in
  check_true "descriptor is stable"
    (Churn.descriptor (rate 0.1) = Churn.descriptor (rate 0.1));
  (* Full-precision floats: nearby rates never collide. *)
  check_true "nearby rates distinguished"
    (Churn.descriptor (rate 0.1) <> Churn.descriptor (rate (0.1 +. epsilon_float)));
  check_true "policies distinguished"
    (Churn.descriptor Churn.none
     <> Churn.descriptor (Churn.Leader_killer { grace = 0; max_kills = 0 }));
  check_true "pp is non-empty"
    (String.length (Format.asprintf "%a" Churn.pp (rate 0.1)) > 0)

let suite =
  [
    ("perception constructors", `Quick, test_perception_constructors);
    ("perception validation", `Quick, test_perception_validation);
    ("perception zero rates draw nothing", `Quick, test_perception_zero_rates_draw_nothing);
    ("perception extremes", `Quick, test_perception_extremes);
    ("perception empirical rate", `Quick, test_perception_rates_empirical);
    ("plan predicates", `Quick, test_plan_predicates);
    ("plan validation", `Quick, test_plan_validation);
    ("wrap null plan is identity", `Quick, test_wrap_null_plan_is_identity);
    ("wrap late wake + sleep", `Quick, test_wrap_late_wake_and_sleep);
    ("wrap crash-stop", `Quick, test_wrap_crash_stop);
    ("config null + validation", `Quick, test_config_null_and_validation);
    ("config null sampling draws nothing", `Quick, test_config_null_sampling_draws_nothing);
    ("config certain faults", `Quick, test_config_certain_faults);
    ("config sampling deterministic", `Quick, test_config_sampling_deterministic);
    ("wrap_stations length mismatch", `Quick, test_wrap_stations_length_mismatch);
    ("engine noise changes perception", `Quick, test_engine_noise_changes_perception);
    ("engine zero faults bit-identical", `Quick, test_engine_zero_faults_bit_identical);
    ("plan shift", `Quick, test_plan_shift);
    ("crash inside a sleep interval", `Quick, test_crash_inside_sleep);
    ("late wake beyond the slot cap", `Quick, test_late_wake_beyond_cap);
    ("churn null + validation", `Quick, test_churn_null_and_validation);
    ("churn schedules draw only when needed", `Quick, test_churn_schedule_draws);
    ("churn rate schedule", `Quick, test_churn_rate_schedule);
    ("churn kill policy", `Quick, test_churn_kill_policy);
    ("churn descriptor", `Quick, test_churn_descriptor);
  ]
