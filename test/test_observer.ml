(* Observer composition and the bit-identity guarantee: attaching any
   combination of observers (trace, monitor, telemetry, user callbacks)
   never perturbs a run. *)

module E = Jamming_experiments
module Observer = Jamming_sim.Observer
module Trace = Jamming_sim.Trace
module Monitor = Jamming_sim.Monitor
module T = Jamming_telemetry.Telemetry
open Test_util

let dummy_record =
  { Metrics.slot = 0; transmitters = Metrics.Exact 1; jammed = false;
    state = Channel.Single }

let dummy_result =
  {
    Metrics.slots = 1;
    completed = true;
    elected = true;
    leader = Some 0;
    statuses = [||];
    jammed_slots = 0;
    nulls = 0;
    singles = 1;
    collisions = 0;
    transmissions = 1.0;
    max_station_transmissions = 1;
    energy = None;
  }

let test_compose_order () =
  let log = ref [] in
  let obs tag =
    Observer.make ~name:tag
      ~on_slot:(fun _ ~leaders:_ -> log := (tag ^ ".slot") :: !log)
      ~on_result:(fun _ -> log := (tag ^ ".result") :: !log)
      ()
  in
  let c = Observer.compose [ obs "a"; obs "b"; obs "c" ] in
  c.Observer.on_slot dummy_record ~leaders:(-1);
  c.Observer.on_result dummy_result;
  Alcotest.(check (list string))
    "list-order notification"
    [ "a.slot"; "b.slot"; "c.slot"; "a.result"; "b.result"; "c.result" ]
    (List.rev !log)

let test_compose_needs_leaders () =
  let plain = Observer.make () in
  let needy = Observer.make ~needs_leaders:true () in
  check_true "disjunction: none" (not (Observer.compose [ plain; plain ]).Observer.needs_leaders);
  check_true "disjunction: one suffices"
    (Observer.compose [ plain; needy ]).Observer.needs_leaders;
  check_true "empty composition observes nothing"
    (not (Observer.compose []).Observer.needs_leaders)

let test_of_on_slot () =
  let n = ref 0 in
  let o = Observer.of_on_slot (fun _ -> incr n) in
  o.Observer.on_slot dummy_record ~leaders:5;
  o.Observer.on_result dummy_result;
  check_int "legacy callback sees slots only" 1 !n;
  check_true "no leader scan requested" (not o.Observer.needs_leaders)

let setup = { E.Runner.n = 48; eps = 0.5; window = 16; max_slots = 50_000 }
let uniform = E.Runner.Uniform (E.Specs.lesk ~eps:0.5)

let exact =
  E.Runner.Exact
    {
      name = "lesk";
      cd = Channel.Strong_cd;
      factory = Jamming_core.Lesk.station ~eps:0.5;
    }

(* The heart of the API redesign: observers are passive.  A run with a
   full stack of observers attached is bit-identical (every field of the
   result) to the bare run. *)
let test_observers_passive engine () =
  let bare = E.Runner.run ~engine setup E.Specs.greedy ~seed:11 in
  let tel = T.create () in
  let trace = Trace.create ~capacity:32 in
  let mon = Monitor.create ~seed:11 ~window:setup.E.Runner.window ~eps:setup.E.Runner.eps () in
  let slots_seen = ref 0 in
  let observed =
    E.Runner.run
      ~observers:
        [
          Trace.observer trace;
          Monitor.observer mon;
          Observer.telemetry tel;
          Observer.of_on_slot (fun _ -> incr slots_seen);
        ]
      ~engine setup E.Specs.greedy ~seed:11
  in
  check_true "bit-identical result" (Metrics.equal_result bare observed);
  check_int "every slot observed" bare.Metrics.slots !slots_seen;
  check_int "trace saw the run" bare.Metrics.slots (Trace.recorded trace);
  check_int "telemetry counted slots" bare.Metrics.slots (T.counter_value tel "sim.slots");
  check_int "telemetry counted jams" bare.Metrics.jammed_slots
    (T.counter_value tel "sim.jammed");
  check_int "telemetry counted the run" 1 (T.counter_value tel "sim.runs")

let test_disabled_telemetry_bit_identity () =
  List.iter
    (fun engine ->
      let bare = E.Runner.run ~engine setup E.Specs.greedy ~seed:7 in
      let tel = T.disabled () in
      let observed =
        E.Runner.run ~observers:[ Observer.telemetry tel ] ~engine setup E.Specs.greedy
          ~seed:7
      in
      check_true "disabled-telemetry run bit-identical" (Metrics.equal_result bare observed);
      check_int "and records nothing" 0 (T.counter_value tel "sim.slots"))
    [ uniform; exact ]

let test_monitor_as_observer_catches () =
  (* Feed the monitor-observer an inconsistent slot directly: the
     Observer interface must preserve the raising behaviour. *)
  let mon = Monitor.create ~window:16 ~eps:0.5 () in
  let o = Monitor.observer mon in
  check_true "monitor asks for leader counts" o.Observer.needs_leaders;
  let bad =
    { Metrics.slot = 0; transmitters = Metrics.Exact 0; jammed = false;
      state = Channel.Single }
  in
  match o.Observer.on_slot bad ~leaders:0 with
  | () -> Alcotest.fail "inconsistent slot not flagged"
  | exception Monitor.Violation v ->
      check_true "slot consistency violation" (v.Monitor.check = Monitor.Slot_consistency)

let test_engine_observers_direct () =
  (* Engines accept observers without Runner in the middle, and the
     leader count flows to those that asked for it. *)
  let leaders_seen = ref (-2) in
  let o =
    Observer.make ~needs_leaders:true
      ~on_slot:(fun _ ~leaders -> leaders_seen := Int.max !leaders_seen leaders)
      ()
  in
  let r =
    run_exact ~n:12 ~seed:5 ~adversary:Jamming_adversary.Adversary.none
      (Jamming_core.Lesk.station ~eps:0.5)
  in
  let rng = Jamming_prng.Prng.create ~seed:5 in
  let stations =
    Jamming_sim.Engine.make_stations ~n:12 ~rng (Jamming_core.Lesk.station ~eps:0.5)
  in
  let budget = Budget.create ~window:32 ~eps:0.5 in
  let r' =
    Jamming_sim.Engine.run ~observers:[ o ] ~cd:Channel.Strong_cd
      ~adversary:(Adversary.none ()) ~budget ~max_slots:400_000 ~stations ()
  in
  check_true "direct engine observers passive" (Metrics.equal_result r r');
  check_true "leader scan delivered" (!leaders_seen >= 1)

let suite =
  [
    ("compose order", `Quick, test_compose_order);
    ("compose needs_leaders", `Quick, test_compose_needs_leaders);
    ("of_on_slot", `Quick, test_of_on_slot);
    ("observers passive (uniform engine)", `Quick, test_observers_passive uniform);
    ("observers passive (exact engine)", `Quick, test_observers_passive exact);
    ("disabled telemetry bit-identity", `Quick, test_disabled_telemetry_bit_identity);
    ("monitor observer raises", `Quick, test_monitor_as_observer_catches);
    ("engine-level observers", `Quick, test_engine_observers_direct);
  ]
