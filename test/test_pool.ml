(* The work-stealing domain pool behind Runner.run_cells.

   The contract under test: for any cell list, any [jobs] produces
   bit-identical results AND bit-identical telemetry snapshots (wall
   timers aside) — per-rep seeds depend only on (cell, rep), reps land
   in dedicated slots, and telemetry is folded in cell order on the
   calling domain.  Plus the sharded-sweep story: processes that warm
   one store shard by shard merge, via --resume, into exactly the bytes
   an uninterrupted run produces. *)

open Test_util
module E = Jamming_experiments
module T = Jamming_telemetry.Telemetry
module Json = Jamming_telemetry.Json
module Store = Jamming_store.Store

let setup = { E.Runner.n = 24; eps = 0.5; window = 16; max_slots = 50_000 }

let small_faults =
  {
    Jamming_faults.Config.perception = Jamming_faults.Perception.uniform ~p:0.05;
    p_crash = 0.02;
    crash_horizon = 1_000;
    p_sleep = 0.0;
    sleep_horizon = 1;
    max_sleep = 1;
    p_late_wake = 0.0;
    max_wake_delay = 1;
  }

let engines =
  [
    ("uniform", E.Runner.Uniform (E.Specs.lesk ~eps:0.5));
    ( "exact",
      E.Runner.Exact
        {
          name = "LESK-exact";
          cd = Channel.Strong_cd;
          factory = Jamming_core.Lesk.station ~eps:0.5;
        } );
    ( "faulty",
      E.Runner.Faulty
        {
          name = "LESK-faulty";
          cd = Channel.Strong_cd;
          factory = Jamming_core.Lesk.station ~eps:0.5;
          faults = small_faults;
          monitor_checks = None;
        } );
  ]

(* One grid of static cells per engine: two adversaries x two reps
   counts, reps > 4*jobs for some cells so oversized cells split. *)
let static_cells engine =
  List.concat_map
    (fun adversary ->
      [
        E.Runner.Cell.v ~base_seed:7 ~engine ~reps:9 setup adversary;
        E.Runner.Cell.v ~base_seed:11 ~engine ~reps:2 setup adversary;
      ])
    [ E.Specs.greedy; E.Specs.no_jamming ]

let churn_cells engine =
  [
    E.Runner.Cell.v ~base_seed:7
      ~churn:(Jamming_faults.Churn.Leader_killer { grace = 64; max_kills = 2 })
      ~engine ~reps:3
      { setup with E.Runner.max_slots = 20_000 }
      E.Specs.greedy;
  ]

let outcome_bytes = function
  | E.Runner.Sample s -> Json.to_string (E.Runner.sample_to_json ~include_results:true s)
  | E.Runner.Churned cs ->
      Json.to_string (E.Runner.churn_sample_to_json ~include_results:true cs)

let snapshot tel = Json.to_string (T.to_json ~timers:false tel)

(* Runs [cells] at the given job count under a fresh telemetry sink and
   returns (result bytes, telemetry bytes). *)
let run_at ~jobs cells =
  let tel = T.create () in
  let outcomes = E.Runner.run_cells ~telemetry:tel (E.Runner.Pool.create ~jobs ()) cells in
  (String.concat "\n" (List.map outcome_bytes outcomes), snapshot tel)

let check_jobs_invariant what cells =
  let r1, t1 = run_at ~jobs:1 cells in
  List.iter
    (fun jobs ->
      let r, t = run_at ~jobs cells in
      check_true (Printf.sprintf "%s: results identical at jobs=%d" what jobs) (r1 = r);
      check_true (Printf.sprintf "%s: telemetry identical at jobs=%d" what jobs) (t1 = t))
    [ 2; 7 ]

let test_static_jobs_invariance () =
  List.iter (fun (what, engine) -> check_jobs_invariant what (static_cells engine)) engines

let test_churn_jobs_invariance () =
  List.iter
    (fun (what, engine) ->
      check_jobs_invariant (what ^ "-churn") (churn_cells engine))
    engines

let test_mixed_cells_preserve_order () =
  (* Static and churned cells interleaved: outcomes come back in cell
     order with the right constructor, at any job count. *)
  let engine = E.Runner.Uniform (E.Specs.lesk ~eps:0.5) in
  let cells =
    [
      List.nth (static_cells engine) 0;
      List.nth (churn_cells engine) 0;
      List.nth (static_cells engine) 1;
    ]
  in
  let shapes jobs =
    E.Runner.run_cells (E.Runner.Pool.create ~jobs ()) cells
    |> List.map (function E.Runner.Sample _ -> "s" | E.Runner.Churned _ -> "c")
  in
  Alcotest.(check (list string)) "shapes in cell order" [ "s"; "c"; "s" ] (shapes 1);
  Alcotest.(check (list string)) "same at jobs=5" [ "s"; "c"; "s" ] (shapes 5)

let prop_jobs_invariance_random_setups =
  qtest ~count:8 "random (n, eps, T, seed) cells are jobs-invariant"
    QCheck.(quad (int_range 3 32) (float_range 0.3 1.0) (int_range 1 32) small_int)
    (fun (n, eps, window, seed) ->
      let setup = { E.Runner.n; eps; window; max_slots = 50_000 } in
      let cells =
        List.map
          (fun (_, engine) ->
            E.Runner.Cell.v ~base_seed:seed ~engine ~reps:7 setup E.Specs.greedy)
          engines
      in
      let r1, t1 = run_at ~jobs:1 cells in
      let r7, t7 = run_at ~jobs:7 cells in
      r1 = r7 && t1 = t7)

let test_pool_validation () =
  Alcotest.check_raises "jobs 0" (Invalid_argument "Runner.Pool.create: jobs must be >= 1")
    (fun () -> ignore (E.Runner.Pool.create ~jobs:0 ()));
  check_int "pool reports its size" 3 (E.Runner.Pool.jobs (E.Runner.Pool.create ~jobs:3 ()))

let test_cell_validation () =
  let engine = E.Runner.Uniform (E.Specs.lesk ~eps:0.5) in
  Alcotest.check_raises "reps 0" (Invalid_argument "Runner.Cell: reps must be >= 1")
    (fun () -> ignore (E.Runner.Cell.v ~engine ~reps:0 setup E.Specs.greedy));
  Alcotest.check_raises "bad eps" (Invalid_argument "Runner: eps must lie in (0, 1]")
    (fun () ->
      ignore
        (E.Runner.Cell.v ~engine ~reps:1
           { setup with E.Runner.eps = 1.5 }
           E.Specs.greedy))

let test_cell_seed_matches_historical_stream () =
  (* The per-rep seed derivation is frozen: base/tag/rep through
     seed_of_string, exactly what every published table used. *)
  let engine = E.Runner.Uniform (E.Specs.lesk ~eps:0.5) in
  let c = E.Runner.Cell.v ~base_seed:42 ~engine ~reps:3 setup E.Specs.greedy in
  let expected rep =
    Jamming_prng.Prng.seed_of_string
      (Printf.sprintf "42/%s/%d" (E.Runner.Cell.tag c) rep)
  in
  List.iter
    (fun rep -> check_int "frozen seed stream" (expected rep) (E.Runner.Cell.seed c ~rep))
    [ 0; 1; 2 ]

let test_worker_exceptions_propagate () =
  (* A factory that blows up inside a worker domain: run_cells must
     re-raise on the calling domain, at any job count. *)
  let engine =
    E.Runner.Exact
      { name = "boom"; cd = Channel.Strong_cd; factory = (fun ~id:_ ~rng:_ -> failwith "boom") }
  in
  let cells = [ E.Runner.Cell.v ~engine ~reps:6 setup E.Specs.greedy ] in
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "exception surfaces at jobs=%d" jobs)
        (Failure "boom")
        (fun () -> ignore (E.Runner.run_cells (E.Runner.Pool.create ~jobs ()) cells)))
    [ 1; 4 ]

let with_root f =
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pool-test-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote root))))
    (fun () -> f root)

let test_sharded_store_resume_merge () =
  (* Two "processes" (store handles) each warm their shard of a grid;
     a resumed pass over the whole grid serves every cell from the
     store and must produce byte-for-byte the uninterrupted output. *)
  with_root (fun root ->
      let engine = E.Runner.Exact
          {
            name = "LESK-exact";
            cd = Channel.Strong_cd;
            factory = Jamming_core.Lesk.station ~eps:0.5;
          }
      in
      let cells = static_cells engine @ churn_cells engine in
      let shard k =
        List.filteri (fun i _ -> i mod 2 = k) cells
      in
      let uninterrupted, _ = run_at ~jobs:2 cells in
      (* Shard workers: separate store handles against one root, as two
         concurrent sweep processes would hold. *)
      List.iter
        (fun k ->
          let st = Store.create ~fingerprint:"pool-test" ~root () in
          ignore
            (E.Runner.run_cells ~store:st (E.Runner.Pool.create ~jobs:2 ()) (shard k)))
        [ 0; 1 ];
      (* The resumed merge: every cell hits. *)
      let st = Store.create ~fingerprint:"pool-test" ~root () in
      let tel = T.create () in
      let outcomes =
        E.Runner.run_cells ~telemetry:tel ~store:st (E.Runner.Pool.create ~jobs:2 ()) cells
      in
      let merged = String.concat "\n" (List.map outcome_bytes outcomes) in
      check_true "merged bytes equal uninterrupted bytes" (uninterrupted = merged);
      check_int "every cell served from the store" (List.length cells)
        (T.counter_value tel "store.hits");
      check_int "nothing recomputed" 0 (T.counter_value tel "store.misses"))

let test_telemetry_snapshot_merge_roundtrip () =
  (* Sharded processes report telemetry as JSON; the parent decodes and
     merges.  Decode o to_json must be lossless and merge must
     reassemble exactly the single-process snapshot. *)
  let engine = E.Runner.Uniform (E.Specs.lesk ~eps:0.5) in
  let cells = static_cells engine in
  let whole = T.create () in
  ignore (E.Runner.run_cells ~telemetry:whole (E.Runner.Pool.create ~jobs:1 ()) cells);
  let parts =
    List.map
      (fun k ->
        let tel = T.create () in
        ignore
          (E.Runner.run_cells ~telemetry:tel (E.Runner.Pool.create ~jobs:1 ())
             (List.filteri (fun i _ -> i mod 2 = k) cells));
        T.to_json tel)
      [ 0; 1 ]
  in
  let merged = T.create () in
  List.iter
    (fun json ->
      match T.of_json json with
      | Ok tel -> T.merge ~into:merged tel
      | Error e -> Alcotest.failf "snapshot did not decode: %s" e)
    parts;
  check_true "merged shard snapshots equal the whole-run snapshot"
    (snapshot whole = snapshot merged)

let suite =
  [
    ("pool validation", `Quick, test_pool_validation);
    ("cell validation", `Quick, test_cell_validation);
    ("cell seed stream frozen", `Quick, test_cell_seed_matches_historical_stream);
    ("static cells jobs-invariant", `Quick, test_static_jobs_invariance);
    ("churn cells jobs-invariant", `Quick, test_churn_jobs_invariance);
    ("mixed cells keep order", `Quick, test_mixed_cells_preserve_order);
    prop_jobs_invariance_random_setups;
    ("worker exceptions propagate", `Quick, test_worker_exceptions_propagate);
    ("sharded store resume merge", `Quick, test_sharded_store_resume_merge);
    ("telemetry snapshot merge roundtrip", `Quick, test_telemetry_snapshot_merge_roundtrip);
  ]
