(* Content-addressed run store (DESIGN.md §11): atomic writes, key
   injectivity, corruption-tolerant loading, stale-generation GC, and —
   the property everything else leans on — cache hits that are
   bit-identical to a fresh compute across all three engines. *)

module E = Jamming_experiments
module T = Jamming_telemetry.Telemetry
module Json = Jamming_telemetry.Json
module Store = Jamming_store.Store
module Key = Jamming_store.Key
module Atomic_io = Jamming_store.Atomic_io
module Faults = Jamming_faults
open Test_util

(* Each test gets its own throwaway store root under the temp dir. *)
let fresh_root =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let root =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "jamming-store-test.%d.%d" (Unix.getpid ()) !counter)
    in
    Atomic_io.remove_tree root;
    root

let with_root f =
  let root = fresh_root () in
  Fun.protect ~finally:(fun () -> Atomic_io.remove_tree root) (fun () -> f root)

(* --- atomic file IO --- *)

let test_atomic_write () =
  with_root (fun root ->
      let path = Filename.concat (Filename.concat root "a/b") "c.txt" in
      Atomic_io.write_string ~path "hello\n";
      (match Atomic_io.read_string ~path with
      | Ok s -> Alcotest.(check string) "content round-trips" "hello\n" s
      | Error e -> Alcotest.failf "read failed: %s" e);
      Atomic_io.write_string ~path "replaced";
      (match Atomic_io.read_string ~path with
      | Ok s -> Alcotest.(check string) "overwrite wins" "replaced" s
      | Error e -> Alcotest.failf "read failed: %s" e);
      (* No temporaries left behind. *)
      let dir = Filename.dirname path in
      Array.iter
        (fun f -> check_true "no tmp leftovers" (f = "c.txt"))
        (Sys.readdir dir);
      match Atomic_io.read_string ~path:(Filename.concat root "absent") with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "read of absent file succeeded")

(* --- key injectivity --- *)

let base_fields =
  [ ("proto", Key.S "LESK"); ("n", Key.I 64); ("eps", Key.F 0.5); ("cap", Key.B true) ]

let hash fields = Key.hash ~schema:1 ~fingerprint:"fp" (Key.v fields)

let test_key_sensitivity () =
  let h0 = hash base_fields in
  let variants =
    [
      ("string", [ ("proto", Key.S "LESU"); ("n", Key.I 64); ("eps", Key.F 0.5); ("cap", Key.B true) ]);
      ("int", [ ("proto", Key.S "LESK"); ("n", Key.I 65); ("eps", Key.F 0.5); ("cap", Key.B true) ]);
      ("float", [ ("proto", Key.S "LESK"); ("n", Key.I 64); ("eps", Key.F 0.5000000001); ("cap", Key.B true) ]);
      ("bool", [ ("proto", Key.S "LESK"); ("n", Key.I 64); ("eps", Key.F 0.5); ("cap", Key.B false) ]);
      ("name", [ ("protocol", Key.S "LESK"); ("n", Key.I 64); ("eps", Key.F 0.5); ("cap", Key.B true) ]);
    ]
  in
  List.iter
    (fun (what, fields) ->
      check_true (Printf.sprintf "%s component changes the hash" what)
        (hash fields <> h0))
    variants;
  check_true "schema changes the hash"
    (Key.hash ~schema:2 ~fingerprint:"fp" (Key.v base_fields) <> h0);
  check_true "fingerprint changes the hash"
    (Key.hash ~schema:1 ~fingerprint:"fp2" (Key.v base_fields) <> h0);
  check_true "same key, same hash" (hash base_fields = h0);
  (* Field boundaries are length-prefixed, not separator-based. *)
  check_true "no concatenation collision"
    (hash [ ("a", Key.S "bc") ] <> hash [ ("ab", Key.S "c") ]);
  (match Key.v [ ("a", Key.I 1); ("a", Key.I 2) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate component names accepted");
  match Key.v [ ("", Key.I 1) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty component name accepted"

(* --- store round-trip, miss accounting, corruption tolerance --- *)

let key_a = Key.v [ ("cell", Key.S "a") ]
let decode_id j = Some j

let test_store_roundtrip () =
  with_root (fun root ->
      let st = Store.create ~fingerprint:"test" ~root () in
      check_true "absent key misses" (Store.find st key_a ~decode:decode_id = None);
      let v = Json.Obj [ ("x", Json.Int 42) ] in
      Store.add st key_a v;
      (match Store.find st key_a ~decode:decode_id with
      | Some v' -> check_true "value round-trips" (v = v')
      | None -> Alcotest.fail "fresh entry missed");
      let stats = Store.io_stats st in
      check_int "one hit" 1 stats.Store.hits;
      check_int "one miss" 1 stats.Store.misses;
      check_true "bytes flowed"
        (stats.Store.bytes_read > 0 && stats.Store.bytes_written > 0);
      check_float_eps 1e-9 "hit rate 50%" 50.0 (Store.hit_rate stats);
      let disk = Store.disk_stats st in
      check_int "one entry on disk" 1 disk.Store.entries;
      (* A failing decoder turns a readable record into a miss. *)
      check_true "decode failure is a miss"
        (Store.find st key_a ~decode:(fun _ -> None) = None))

let corrupt_with bytes st key =
  Atomic_io.write_string ~path:(Store.entry_path st key) bytes

let test_corruption_is_a_miss () =
  with_root (fun root ->
      let st = Store.create ~fingerprint:"test" ~root () in
      let v = Json.Obj [ ("x", Json.Int 1) ] in
      List.iter
        (fun (what, bytes) ->
          Store.add st key_a v;
          corrupt_with bytes st key_a;
          check_true (what ^ " is a miss") (Store.find st key_a ~decode:decode_id = None);
          (* The caller recomputes and overwrites; the store heals. *)
          Store.add st key_a v;
          check_true ("store heals after " ^ what)
            (Store.find st key_a ~decode:decode_id = Some v))
        [
          ("garbage bytes", "\x00\xffnot json");
          ("truncated record", "{\"schema\":\"jamming-el");
          ("empty file", "");
          ("wrong schema", {|{"schema":"other/9","hash":"deadbeef","value":{"x":1}}|});
          ("missing value", {|{"schema":"jamming-election.store/1","hash":"deadbeef"}|});
        ])

let test_fingerprint_isolation_and_gc () =
  with_root (fun root ->
      let old_gen = Store.create ~fingerprint:"build-1" ~root () in
      Store.add old_gen key_a (Json.Int 1);
      let new_gen = Store.create ~fingerprint:"build-2" ~root () in
      check_true "other fingerprint's entry is a miss"
        (Store.find new_gen key_a ~decode:decode_id = None);
      Store.add new_gen key_a (Json.Int 2);
      check_int "disk sees both generations" 2 (Store.disk_stats new_gen).Store.entries;
      let reclaimed = Store.gc new_gen in
      check_int "gc reclaims the stale generation" 1 reclaimed.Store.entries;
      check_int "current generation survives" 1 (Store.disk_stats new_gen).Store.entries;
      check_true "current entry still readable"
        (Store.find new_gen key_a ~decode:decode_id = Some (Json.Int 2));
      let removed = Store.clear new_gen in
      check_int "clear removes everything" 1 removed.Store.entries;
      check_int "store empty after clear" 0 (Store.disk_stats new_gen).Store.entries)

(* --- replicate through a store: hits are bit-identical to a fresh compute --- *)

let setup = { E.Runner.n = 48; eps = 0.5; window = 16; max_slots = 50_000 }

let small_faults =
  {
    Faults.Config.perception = Faults.Perception.uniform ~p:0.05;
    p_crash = 0.0;
    crash_horizon = 1;
    p_sleep = 0.0;
    sleep_horizon = 1;
    max_sleep = 1;
    p_late_wake = 0.0;
    max_wake_delay = 1;
  }

let engines =
  [
    ("uniform", E.Runner.Uniform (E.Specs.lesk ~eps:0.5));
    ( "exact",
      E.Runner.Exact
        {
          name = "LESK-exact";
          cd = Jamming_channel.Channel.Strong_cd;
          factory = Jamming_core.Lesk.station ~eps:0.5;
        } );
    ( "faulty",
      E.Runner.Faulty
        {
          name = "LESK-faulty";
          cd = Jamming_channel.Channel.Strong_cd;
          factory = Jamming_core.Lesk.station ~eps:0.5;
          faults = small_faults;
          monitor_checks = None;
        } );
  ]

let sample_bytes s = Json.to_string (E.Runner.sample_to_json ~include_results:true s)

let test_cached_hit_bit_identical () =
  with_root (fun root ->
      let st = Store.create ~fingerprint:"test" ~root () in
      List.iter
        (fun (what, engine) ->
          let fresh = E.Runner.replicate ~engine ~reps:3 setup E.Specs.greedy in
          let cold = T.create () in
          let s1 =
            E.Runner.replicate ~telemetry:cold ~store:st ~engine ~reps:3 setup
              E.Specs.greedy
          in
          let warm = T.create () in
          let s2 =
            E.Runner.replicate ~telemetry:warm ~store:st ~engine ~reps:3 setup
              E.Specs.greedy
          in
          check_true (what ^ ": cold compute matches uncached")
            (sample_bytes fresh = sample_bytes s1);
          check_true (what ^ ": warm hit bit-identical")
            (sample_bytes fresh = sample_bytes s2);
          check_int (what ^ ": cold missed") 1 (T.counter_value cold "store.misses");
          check_int (what ^ ": cold wrote") 0 (T.counter_value cold "store.hits");
          check_int (what ^ ": warm hit") 1 (T.counter_value warm "store.hits");
          check_int (what ^ ": warm missed nothing") 0
            (T.counter_value warm "store.misses");
          (* Runner aggregation is the same whether the sample was
             computed or decoded. *)
          check_int (what ^ ": runs counted on hit")
            (T.counter_value cold "runner.runs")
            (T.counter_value warm "runner.runs");
          check_int (what ^ ": slots counted on hit")
            (T.counter_value cold "runner.slots")
            (T.counter_value warm "runner.slots"))
        engines)

let test_cached_recovers_from_corruption () =
  with_root (fun root ->
      let st = Store.create ~fingerprint:"test" ~root () in
      let engine = E.Runner.Uniform (E.Specs.lesk ~eps:0.5) in
      let s1 = E.Runner.replicate ~store:st ~engine ~reps:2 setup E.Specs.greedy in
      let key =
        E.Runner.cell_key ~engine ~adversary:E.Specs.greedy ~reps:2 ~base_seed:42 setup
      in
      corrupt_with "garbage" st key;
      let tel = T.create () in
      let s2 =
        E.Runner.replicate ~telemetry:tel ~store:st ~engine ~reps:2 setup
          E.Specs.greedy
      in
      check_int "corrupt entry recomputed" 1 (T.counter_value tel "store.misses");
      check_true "recompute bit-identical" (sample_bytes s1 = sample_bytes s2);
      let tel2 = T.create () in
      ignore
        (E.Runner.replicate ~telemetry:tel2 ~store:st ~engine ~reps:2 setup
           E.Specs.greedy);
      check_int "entry rewritten after corruption" 1 (T.counter_value tel2 "store.hits"))

let test_cell_key_sensitivity () =
  let engine = E.Runner.Uniform (E.Specs.lesk ~eps:0.5) in
  let k ?(engine = engine) ?(adversary = E.Specs.greedy) ?(reps = 3) ?(base_seed = 42)
      ?(setup = setup) () =
    Key.hash ~schema:1 ~fingerprint:"fp"
      (E.Runner.cell_key ~engine ~adversary ~reps ~base_seed setup)
  in
  let h0 = k () in
  check_true "key is stable" (k () = h0);
  List.iter
    (fun (what, h) -> check_true (what ^ " changes the cell key") (h <> h0))
    [
      ("n", k ~setup:{ setup with E.Runner.n = 49 } ());
      ("eps", k ~setup:{ setup with E.Runner.eps = 0.25 } ());
      ("window", k ~setup:{ setup with E.Runner.window = 17 } ());
      ("max_slots", k ~setup:{ setup with E.Runner.max_slots = 50_001 } ());
      ("reps", k ~reps:4 ());
      ("base_seed", k ~base_seed:43 ());
      ("adversary", k ~adversary:E.Specs.no_jamming ());
      ("engine", k ~engine:(E.Runner.Uniform (E.Specs.lesu ())) ());
      ("engine kind", k ~engine:(List.assoc "exact" engines) ());
      ("fault config", k ~engine:(List.assoc "faulty" engines) ());
    ]

(* --- churn cells: key sensitivity and warm-hit bit-identity --- *)

let churn_bytes s =
  Json.to_string (E.Runner.churn_sample_to_json ~include_results:true s)

let test_churn_cell_key_sensitivity () =
  let engine = E.Runner.Uniform (E.Specs.lesk ~eps:0.5) in
  let killer = Faults.Churn.Leader_killer { grace = 16; max_kills = 2 } in
  let k ?(engine = engine) ?(adversary = E.Specs.greedy) ?(churn = killer)
      ?(restart_after = None) ?(reps = 3) ?(base_seed = 42) ?(setup = setup) () =
    Key.hash ~schema:1 ~fingerprint:"fp"
      (E.Runner.churn_cell_key ~engine ~adversary ~churn ~restart_after ~reps ~base_seed
         setup)
  in
  let h0 = k () in
  check_true "key is stable" (k () = h0);
  List.iter
    (fun (what, h) -> check_true (what ^ " changes the churn cell key") (h <> h0))
    [
      ("churn policy kind", k ~churn:Faults.Churn.none ());
      ("kill grace", k ~churn:(Faults.Churn.Leader_killer { grace = 17; max_kills = 2 }) ());
      ("kill count", k ~churn:(Faults.Churn.Leader_killer { grace = 16; max_kills = 3 }) ());
      ( "rate parameters",
        k
          ~churn:
            (Faults.Churn.Rate
               { every = 8; p_join = 0.25; p_leave = 0.25; max_burst = 2; horizon = 1000 })
          () );
      ("restart deadline", k ~restart_after:(Some 5_000) ());
      ("n", k ~setup:{ setup with E.Runner.n = 49 } ());
      ("base_seed", k ~base_seed:43 ());
      ("adversary", k ~adversary:E.Specs.no_jamming ());
      ("engine kind", k ~engine:(List.assoc "exact" engines) ());
      ("fault config", k ~engine:(List.assoc "faulty" engines) ());
    ];
  (* A churn cell never collides with its static twin. *)
  check_true "churn and static cells are distinct"
    (k ~churn:Faults.Churn.none ()
    <> Key.hash ~schema:1 ~fingerprint:"fp"
         (E.Runner.cell_key ~engine ~adversary:E.Specs.greedy ~reps:3 ~base_seed:42 setup))

let test_churn_cached_hit_bit_identical () =
  with_root (fun root ->
      let st = Store.create ~fingerprint:"test" ~root () in
      let engine = E.Runner.Exact
          {
            name = "LESK-exact";
            cd = Jamming_channel.Channel.Strong_cd;
            factory = Jamming_core.Lesk.station ~eps:0.5;
          }
      in
      let small = { setup with E.Runner.n = 12 } in
      let churn = Faults.Churn.Leader_killer { grace = 32; max_kills = 1 } in
      let fresh = E.Runner.replicate_churn ~engine ~churn ~reps:2 small E.Specs.no_jamming in
      let cold = T.create () in
      let s1 =
        E.Runner.replicate_churn ~telemetry:cold ~store:st ~engine ~churn ~reps:2 small
          E.Specs.no_jamming
      in
      let warm = T.create () in
      let s2 =
        E.Runner.replicate_churn ~telemetry:warm ~store:st ~engine ~churn ~reps:2 small
          E.Specs.no_jamming
      in
      check_true "cold compute matches uncached" (churn_bytes fresh = churn_bytes s1);
      check_true "warm hit bit-identical" (churn_bytes fresh = churn_bytes s2);
      check_int "cold missed" 1 (T.counter_value cold "store.misses");
      check_int "warm hit" 1 (T.counter_value warm "store.hits");
      check_int "warm missed nothing" 0 (T.counter_value warm "store.misses");
      check_int "runs counted on hit"
        (T.counter_value cold "runner.churn.runs")
        (T.counter_value warm "runner.churn.runs");
      (* Corruption stays a miss, never an exception. *)
      let key =
        E.Runner.churn_cell_key ~engine ~adversary:E.Specs.no_jamming ~churn
          ~restart_after:None ~reps:2 ~base_seed:42 small
      in
      corrupt_with "garbage" st key;
      let tel = T.create () in
      let s3 =
        E.Runner.replicate_churn ~telemetry:tel ~store:st ~engine ~churn ~reps:2 small
          E.Specs.no_jamming
      in
      check_int "corrupt entry recomputed" 1 (T.counter_value tel "store.misses");
      check_true "recompute bit-identical" (churn_bytes fresh = churn_bytes s3))

let test_churn_sample_json_roundtrip () =
  let engine = E.Runner.Uniform (E.Specs.lesk ~eps:0.5) in
  let s =
    E.Runner.replicate_churn ~engine ~churn:Faults.Churn.none ~reps:2
      { setup with E.Runner.n = 12 }
      E.Specs.greedy
  in
  check_true "digests are in [0, reps]"
    (E.Runner.healed_rate s >= 0.0 && E.Runner.healed_rate s <= 1.0
    && E.Runner.mean_elections_completed s >= 0.0);
  (match E.Runner.churn_sample_of_json (E.Runner.churn_sample_to_json ~include_results:true s) with
  | Ok s' -> check_true "decodes bit-identically" (churn_bytes s = churn_bytes s')
  | Error e -> Alcotest.failf "churn sample decode failed: %s" e);
  match E.Runner.churn_sample_of_json (E.Runner.churn_sample_to_json ~include_results:false s) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "decoded a digest-only churn sample"

let test_default_store_install () =
  with_root (fun root ->
      let st = Store.create ~fingerprint:"test" ~root () in
      let engine = E.Runner.Uniform (E.Specs.lesk ~eps:0.5) in
      E.Runner.with_store st (fun () ->
          ignore (E.Runner.replicate ~engine ~reps:2 setup E.Specs.no_jamming));
      check_int "replicate populated the default store" 1
        (Store.disk_stats st).Store.entries;
      (* Restored after the thunk: further runs bypass the store. *)
      ignore (E.Runner.replicate ~engine ~reps:2 setup E.Specs.no_jamming);
      check_int "store restored" 1 (Store.disk_stats st).Store.entries)

let test_sample_of_json_roundtrip () =
  let engine = E.Runner.Uniform (E.Specs.lesk ~eps:0.5) in
  let sample = E.Runner.replicate ~engine ~reps:3 setup E.Specs.greedy in
  (match E.Runner.sample_of_json (E.Runner.sample_to_json ~include_results:true sample) with
  | Ok s -> check_true "sample decodes bit-identically" (sample_bytes sample = sample_bytes s)
  | Error e -> Alcotest.failf "sample decode failed: %s" e);
  (* Without the per-run results the digest is not reconstructible. *)
  match E.Runner.sample_of_json (E.Runner.sample_to_json ~include_results:false sample) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "decoded a digest-only sample"

let suite =
  [
    ("atomic write", `Quick, test_atomic_write);
    ("key sensitivity", `Quick, test_key_sensitivity);
    ("store round-trip", `Quick, test_store_roundtrip);
    ("corruption is a miss", `Quick, test_corruption_is_a_miss);
    ("fingerprint isolation and gc", `Quick, test_fingerprint_isolation_and_gc);
    ("cached hit bit-identical (all engines)", `Quick, test_cached_hit_bit_identical);
    ("cached recovers from corruption", `Quick, test_cached_recovers_from_corruption);
    ("cell key sensitivity", `Quick, test_cell_key_sensitivity);
    ("churn cell key sensitivity", `Quick, test_churn_cell_key_sensitivity);
    ("churn cached hit bit-identical", `Quick, test_churn_cached_hit_bit_identical);
    ("churn sample json round-trip", `Quick, test_churn_sample_json_roundtrip);
    ("default store install/restore", `Quick, test_default_store_install);
    ("sample json round-trip", `Quick, test_sample_of_json_roundtrip);
  ]
