module Schedule = Jamming_core.Schedule
module Lesu = Jamming_core.Lesu
module Lesu_declarative = Jamming_core.Lesu_declarative
open Test_util

let constant_phase ~label ~duration ~p () =
  Schedule.timeboxed ~label
    ~duration:(fun () -> duration)
    (fun () ->
      {
        Uniform.name = label;
        tx_prob = (fun () -> p);
        on_state =
          (fun state ->
            if Channel.equal_state state Channel.Single then Uniform.Elected
            else Uniform.Continue);
      })
    ()

let test_phases_advance () =
  let labels = ref [] in
  let factory =
    Schedule.to_uniform
      ~on_phase:(fun l -> labels := l :: !labels)
      ~name:"seq"
      (Schedule.of_list
         [
           (fun () -> constant_phase ~label:"a" ~duration:2 ~p:0.25 ());
           (fun () -> constant_phase ~label:"b" ~duration:3 ~p:0.5 ());
         ])
  in
  let u = factory () in
  check_float "phase a prob" 0.25 (u.Uniform.tx_prob ());
  ignore (u.Uniform.on_state Channel.Collision);
  ignore (u.Uniform.on_state Channel.Collision);
  check_float "phase b prob after 2 slots" 0.5 (u.Uniform.tx_prob ());
  ignore (u.Uniform.on_state Channel.Collision);
  ignore (u.Uniform.on_state Channel.Collision);
  ignore (u.Uniform.on_state Channel.Collision);
  check_float "exhausted schedule is silent" 0.0 (u.Uniform.tx_prob ());
  Alcotest.(check (list string)) "phase order" [ "a"; "b" ] (List.rev !labels)

let test_elected_stops_schedule () =
  let factory =
    Schedule.to_uniform ~name:"stop"
      (Schedule.of_list [ (fun () -> constant_phase ~label:"x" ~duration:10 ~p:0.5 ()) ])
  in
  let u = factory () in
  (match u.Uniform.on_state Channel.Single with
  | Uniform.Elected -> ()
  | Uniform.Continue -> Alcotest.fail "Single must elect");
  check_float "silent after election" 0.0 (u.Uniform.tx_prob ())

let test_timeboxed_validation () =
  Alcotest.check_raises "duration 0" (Invalid_argument "Schedule.timeboxed: duration must be >= 1")
    (fun () -> ignore (constant_phase ~label:"z" ~duration:0 ~p:0.5 ()))

let test_repeat_indexed () =
  let stream =
    Schedule.repeat_indexed (fun i ->
        Seq.init i (fun j -> fun () -> constant_phase ~label:(Printf.sprintf "%d.%d" i j) ~duration:1 ~p:0.5 ()))
  in
  let first_six = List.of_seq (Seq.take 6 stream) in
  let labels = List.map (fun make -> (make ()).Schedule.label) first_six in
  Alcotest.(check (list string)) "triangular order"
    [ "1.0"; "2.0"; "2.1"; "3.0"; "3.1"; "3.2" ]
    labels

(* The centrepiece: LESU vs its declarative rebuild must be
   bit-identical on the same seed, for many seeds and parameters. *)
let test_lesu_differential () =
  List.iter
    (fun (n, eps, window) ->
      for seed = 1 to 25 do
        let run factory =
          let result =
            run_uniform ~seed ~eps ~window ~adversary:Adversary.greedy
              ~max_slots:400_000 ~n factory
          in
          result.Metrics.slots
        in
        let hand = run (Lesu.uniform ()) in
        let declarative = run (Lesu_declarative.uniform ()) in
        check_int
          (Printf.sprintf "identical at n=%d eps=%.2f T=%d seed=%d" n eps window seed)
          hand declarative
      done)
    [ (64, 0.5, 32); (1024, 0.5, 64); (256, 0.25, 16); (4096, 0.8, 128) ]

let test_lesu_differential_phase_labels () =
  (* The declarative run's phase sequence follows the (i, j) ladder. *)
  let labels = ref [] in
  let factory = Lesu_declarative.uniform ~on_phase:(fun l -> labels := l :: !labels) () in
  let (_ : Metrics.result) =
    run_uniform ~seed:11 ~eps:0.3 ~window:64 ~adversary:Adversary.greedy ~max_slots:400_000
      ~n:512 factory
  in
  match List.rev !labels with
  | "estimation" :: "lesk(i=1,j=1)" :: rest ->
      check_true "ladder grows" (List.length rest >= 0)
  | l -> Alcotest.failf "unexpected phase order: %s" (String.concat ", " l)

let suite =
  [
    ("phases advance and exhaust", `Quick, test_phases_advance);
    ("Elected stops the schedule", `Quick, test_elected_stops_schedule);
    ("timeboxed validation", `Quick, test_timeboxed_validation);
    ("repeat_indexed order", `Quick, test_repeat_indexed);
    ("LESU differential: hand vs declarative", `Slow, test_lesu_differential);
    ("LESU declarative phase labels", `Quick, test_lesu_differential_phase_labels);
  ]
