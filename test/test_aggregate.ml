(* The population-counting aggregate engine (Jamming_sim.Aggregate).

   Three contracts under test:
   - the per-class Binomial(count, p) draw is a sufficient statistic for
     the slot, so election times are distributionally identical to the
     per-station exact engine (KS over hundreds of seeds — per-station
     RNG streams necessarily differ, so never bitwise);
   - the pure protocol descriptions (Lesk.aggregate, Lesu.aggregate)
     mirror their mutable Logic state machines transition for
     transition;
   - aggregate cells are first-class citizens of the Pool/Store
     machinery: jobs-invariant, cacheable, and churn-rejecting. *)

open Test_util
module E = Jamming_experiments
module Aggregate = Jamming_sim.Aggregate
module Ks = Jamming_stats.Ks
module T = Jamming_telemetry.Telemetry
module Json = Jamming_telemetry.Json
module Store = Jamming_store.Store
module Lesk = Jamming_core.Lesk
module Lesu = Jamming_core.Lesu

let exact_lesk ~eps =
  E.Runner.Exact
    { name = "LESK-exact"; cd = Channel.Strong_cd; factory = Lesk.station ~eps }

let ks_p a b =
  Ks.p_value ~n1:(Array.length a) ~n2:(Array.length b) ~d:(Ks.statistic a b)

(* A rejection this deep is a genuine bug, not sampling noise. *)
let alpha_hard = 1e-4

let differential ~n ~reps ~eps =
  let setup = { E.Runner.n; eps; window = 32; max_slots = 100_000 } in
  let agg =
    E.Runner.replicate ~engine:(E.Runner.aggregate_lesk ~eps ()) ~reps setup
      E.Specs.greedy
  in
  let exact = E.Runner.replicate ~engine:(exact_lesk ~eps) ~reps setup E.Specs.greedy in
  check_true
    (Printf.sprintf "n=%d: both engines elect everywhere" n)
    (E.Runner.success_rate agg = 1.0 && E.Runner.success_rate exact = 1.0);
  let p = ks_p (E.Runner.slots agg) (E.Runner.slots exact) in
  check_true
    (Printf.sprintf "n=%d: election times match exact engine (KS p = %g)" n p)
    (p > alpha_hard)

let test_differential_small () = differential ~n:100 ~reps:300 ~eps:0.5
let test_differential_mid () = differential ~n:1_000 ~reps:220 ~eps:0.5

(* n = 10^4 is exact-engine territory (O(n) per slot); a light jammer
   keeps elections short so 200 seeds stay affordable. *)
let test_differential_large () = differential ~n:10_000 ~reps:200 ~eps:0.9

let test_trichotomy_statistics_match () =
  (* Under a deterministic (slot-indexed) jammer the Zero/One/Many and
     jam fractions are functions of the engine's slot law alone; their
     means must agree across engines. *)
  let n = 500 and eps = 0.5 and reps = 120 in
  let setup = { E.Runner.n; eps; window = 32; max_slots = 100_000 } in
  let fractions sample =
    let tot =
      Array.fold_left (fun acc r -> acc + r.Metrics.slots) 0 sample.E.Runner.results
    in
    let f g =
      float_of_int (Array.fold_left (fun acc r -> acc + g r) 0 sample.E.Runner.results)
      /. float_of_int tot
    in
    [
      ("null", f (fun r -> r.Metrics.nulls));
      ("single", f (fun r -> r.Metrics.singles));
      ("collision", f (fun r -> r.Metrics.collisions));
      ("jammed", f (fun r -> r.Metrics.jammed_slots));
    ]
  in
  let agg =
    E.Runner.replicate ~engine:(E.Runner.aggregate_lesk ~eps ()) ~reps setup
      E.Specs.periodic
  in
  let exact = E.Runner.replicate ~engine:(exact_lesk ~eps) ~reps setup E.Specs.periodic in
  List.iter2
    (fun (label, a) (_, b) ->
      check_true
        (Printf.sprintf "%s fraction agrees (aggregate %.3f vs exact %.3f)" label a b)
        (Float.abs (a -. b) <= 0.05))
    (fractions agg) (fractions exact)

(* --- pure protocol descriptions vs the mutable Logic machines --- *)

let state_of_int = function
  | 0 -> Channel.Null
  | 1 -> Channel.Single
  | _ -> Channel.Collision

(* Drive the pure description and the reference Logic on one shared
   perceived-state sequence; transmit probabilities and election status
   must stay bit-identical the whole way. *)
let prop_pure_lesk_mirrors_logic =
  qtest ~count:300 "Lesk.aggregate mirrors Lesk.Logic"
    QCheck.(pair (float_range 0.05 1.0) (list_of_size Gen.(0 -- 300) (int_range 0 2)))
    (fun (eps, states) ->
      match Lesk.aggregate ~eps () with
      | Aggregate.Packed p ->
          let logic = Lesk.Logic.create ~eps () in
          let rec go state = function
            | [] -> true
            | s :: rest ->
                let s = state_of_int s in
                Float.equal (p.Aggregate.tx_prob state) (Lesk.Logic.tx_prob logic)
                &&
                (Lesk.Logic.on_state logic s;
                 match p.Aggregate.step state s with
                 | Aggregate.Elected -> Lesk.Logic.elected logic
                 | Aggregate.Continue state' ->
                     (not (Lesk.Logic.elected logic)) && go state' rest)
          in
          go p.Aggregate.init states)

let prop_pure_lesu_mirrors_logic =
  qtest ~count:300 "Lesu.aggregate mirrors Lesu.Logic"
    QCheck.(list_of_size Gen.(0 -- 500) (int_range 0 2))
    (fun states ->
      match Lesu.aggregate () with
      | Aggregate.Packed p ->
          let logic = Lesu.Logic.create () in
          let rec go state = function
            | [] -> true
            | s :: rest ->
                let s = state_of_int s in
                Float.equal (p.Aggregate.tx_prob state) (Lesu.Logic.tx_prob logic)
                &&
                (Lesu.Logic.on_state logic s;
                 match p.Aggregate.step state s with
                 | Aggregate.Elected -> Lesu.Logic.elected logic
                 | Aggregate.Continue state' ->
                     (not (Lesu.Logic.elected logic)) && go state' rest)
          in
          go p.Aggregate.init states)

(* --- engine invariants --- *)

let run_aggregate ?(seed = 7) ?(eps = 0.5) ?(window = 32) ?(max_slots = 50_000) ~n () =
  let setup = { E.Runner.n; eps; window; max_slots } in
  E.Runner.run ~engine:(E.Runner.aggregate_lesk ~eps ()) setup E.Specs.greedy ~seed

let prop_result_invariants =
  qtest ~count:60 "aggregate results are structurally sound"
    QCheck.(triple (int_range 1 50_000) (float_range 0.3 1.0) small_int)
    (fun (n, eps, seed) ->
      let r = run_aggregate ~seed ~eps ~n () in
      r.Metrics.slots >= 0
      && r.Metrics.nulls + r.Metrics.singles + r.Metrics.collisions = r.Metrics.slots
      && r.Metrics.statuses = [||]
      && r.Metrics.max_station_transmissions = 0
      && (match r.Metrics.leader with
         | Some id -> r.Metrics.elected && id >= 0 && id < n
         | None -> not r.Metrics.elected)
      && ((not r.Metrics.elected) || r.Metrics.completed))

let test_population_scale () =
  (* The engine's reason to exist: a billion stations under the greedy
     jammer elect in a sane number of slots, in milliseconds of CPU. *)
  let n = 1_000_000_000 in
  List.iter
    (fun seed ->
      let r = run_aggregate ~seed ~window:64 ~max_slots:200_000 ~n () in
      check_true "n=1e9 elects" r.Metrics.elected;
      match r.Metrics.leader with
      | Some id -> check_true "leader id in [0, n)" (id >= 0 && id < n)
      | None -> Alcotest.fail "n=1e9: no leader id")
    [ 1; 2; 3; 4; 5 ]

(* --- pool / store integration (mirrors test_pool.ml) --- *)

let setup = { E.Runner.n = 100_000; eps = 0.5; window = 16; max_slots = 50_000 }

let agg_cells =
  List.concat_map
    (fun engine ->
      [
        E.Runner.Cell.v ~base_seed:7 ~engine ~reps:9 setup E.Specs.greedy;
        E.Runner.Cell.v ~base_seed:11 ~engine ~reps:2 setup E.Specs.no_jamming;
      ])
    [ E.Runner.aggregate_lesk ~eps:0.5 (); E.Runner.aggregate_lesu () ]

let outcome_bytes = function
  | E.Runner.Sample s -> Json.to_string (E.Runner.sample_to_json ~include_results:true s)
  | E.Runner.Churned cs ->
      Json.to_string (E.Runner.churn_sample_to_json ~include_results:true cs)

let run_at ~jobs cells =
  let tel = T.create () in
  let outcomes = E.Runner.run_cells ~telemetry:tel (E.Runner.Pool.create ~jobs ()) cells in
  ( String.concat "\n" (List.map outcome_bytes outcomes),
    Json.to_string (T.to_json ~timers:false tel) )

let test_jobs_invariance () =
  let r1, t1 = run_at ~jobs:1 agg_cells in
  List.iter
    (fun jobs ->
      let r, t = run_at ~jobs agg_cells in
      check_true (Printf.sprintf "results identical at jobs=%d" jobs) (r1 = r);
      check_true (Printf.sprintf "telemetry identical at jobs=%d" jobs) (t1 = t))
    [ 2; 7 ]

let with_root f =
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "aggregate-test-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote root))))
    (fun () -> f root)

let test_store_roundtrip () =
  (* Aggregate cells have their own key component; a warmed store must
     serve them back byte-identically. *)
  with_root (fun root ->
      let cold, _ = run_at ~jobs:2 agg_cells in
      let st = Store.create ~fingerprint:"aggregate-test" ~root () in
      ignore (E.Runner.run_cells ~store:st (E.Runner.Pool.create ~jobs:2 ()) agg_cells);
      let st = Store.create ~fingerprint:"aggregate-test" ~root () in
      let tel = T.create () in
      let outcomes =
        E.Runner.run_cells ~telemetry:tel ~store:st
          (E.Runner.Pool.create ~jobs:2 ())
          agg_cells
      in
      let warm = String.concat "\n" (List.map outcome_bytes outcomes) in
      check_true "warm bytes equal cold bytes" (cold = warm);
      check_int "every cell served from the store" (List.length agg_cells)
        (T.counter_value tel "store.hits");
      check_int "nothing recomputed" 0 (T.counter_value tel "store.misses"))

let test_churn_rejected () =
  Alcotest.check_raises "aggregate + churn cell rejected"
    (Invalid_argument "Runner.Cell: the aggregate engine does not support churn")
    (fun () ->
      ignore
        (E.Runner.Cell.v
           ~churn:(Jamming_faults.Churn.Leader_killer { grace = 64; max_kills = 2 })
           ~engine:(E.Runner.aggregate_lesk ~eps:0.5 ())
           ~reps:3 setup E.Specs.greedy))

let test_bad_probability_rejected () =
  let broken =
    Aggregate.Packed
      {
        Aggregate.name = "broken";
        init = ();
        tx_prob = (fun () -> 1.5);
        step = (fun () _ -> Aggregate.Continue ());
        compare = Stdlib.compare;
      }
  in
  Alcotest.check_raises "probability outside [0,1] rejected"
    (Invalid_argument "Aggregate.run: protocol emitted a probability outside [0, 1]")
    (fun () ->
      ignore
        (E.Runner.run
           ~engine:(E.Runner.aggregate_of broken)
           { E.Runner.n = 10; eps = 0.5; window = 16; max_slots = 100 }
           E.Specs.greedy ~seed:1))

let suite =
  [
    ("differential vs exact, n=100", `Slow, test_differential_small);
    ("differential vs exact, n=1000", `Slow, test_differential_mid);
    ("differential vs exact, n=10000", `Slow, test_differential_large);
    ("trichotomy statistics match", `Slow, test_trichotomy_statistics_match);
    prop_pure_lesk_mirrors_logic;
    prop_pure_lesu_mirrors_logic;
    prop_result_invariants;
    ("population scale n=1e9", `Quick, test_population_scale);
    ("pool jobs-invariant", `Quick, test_jobs_invariance);
    ("store roundtrip", `Quick, test_store_roundtrip);
    ("churn rejected", `Quick, test_churn_rejected);
    ("bad probability rejected", `Quick, test_bad_probability_rejected);
  ]
