module Notification = Jamming_core.Notification
module Lewk = Jamming_core.Lewk
module Lewu = Jamming_core.Lewu
open Test_util

let lewk_factory ?on_phase () = Lewk.station ?on_phase ~eps:0.5 ()

let test_basic_weak_cd_election () =
  List.iter
    (fun n ->
      let result = run_exact ~cd:Channel.Weak_cd ~n (lewk_factory ()) in
      check_true (Printf.sprintf "n=%d completed" n) result.Metrics.completed;
      check_true (Printf.sprintf "n=%d exactly one leader" n) (Metrics.election_ok result))
    [ 3; 4; 8; 17; 64 ]

let test_under_all_adversaries () =
  List.iter
    (fun (name, adversary) ->
      let result =
        run_exact ~cd:Channel.Weak_cd ~n:12 ~eps:0.5 ~window:16 ~adversary (lewk_factory ())
      in
      check_true (name ^ ": correct election") (Metrics.election_ok result))
    [
      ("none", Adversary.none);
      ("greedy", Adversary.greedy);
      ("random", Adversary.random ~seed:3 ~p:0.6);
      ("silence-breaker", Adversary.silence_breaker);
      ("front-loaded", Adversary.front_loaded ~window:16);
    ]

let test_many_seeds_always_one_leader () =
  for seed = 1 to 40 do
    let result = run_exact ~cd:Channel.Weak_cd ~seed ~n:7 (lewk_factory ()) in
    check_true (Printf.sprintf "seed %d: one leader" seed) (Metrics.election_ok result)
  done

let test_phase_order () =
  (* Collect phase transitions per station and validate the state
     machine's legal orders. *)
  let transitions = Hashtbl.create 16 in
  let on_phase ~id ~slot:_ phase =
    let prev = try Hashtbl.find transitions id with Not_found -> [] in
    Hashtbl.replace transitions id (phase :: prev)
  in
  let result = run_exact ~cd:Channel.Weak_cd ~n:9 (lewk_factory ~on_phase ()) in
  check_true "completed" result.Metrics.completed;
  let leader_count = ref 0 in
  Hashtbl.iter
    (fun id phases ->
      match List.rev phases with
      | [ Notification.Phase_a2; Notification.Phase_blocking;
          Notification.Phase_done Station.Non_leader ] -> ()
      | [ Notification.Phase_a2; Notification.Phase_done Station.Non_leader ] ->
          (* station s: skips blocking, terminated by the C3 Single *)
          ()
      | [ Notification.Phase_announcing; Notification.Phase_done Station.Leader ] ->
          incr leader_count
      | phases ->
          Alcotest.failf "station %d: unexpected phase order [%s]" id
            (String.concat "; "
               (List.map (Format.asprintf "%a" Notification.pp_phase) phases)))
    transitions;
  check_int "exactly one announcing leader" 1 !leader_count

let test_sub_of_uniform_synchronization () =
  (* sub_of_uniform drives a private logic copy; transmitting returns a
     decision and observe feeds the copy.  Just exercise the plumbing. *)
  let factory = Notification.sub_of_uniform (Jamming_core.Lesk.uniform ~eps:0.5) in
  let sub = factory ~rng:(rng ()) in
  let a = sub.Notification.sub_decide () in
  check_true "decides an action"
    (Station.equal_action a Station.Transmit || Station.equal_action a Station.Listen);
  sub.Notification.sub_observe ~perceived:Channel.Collision ~transmitted:false;
  sub.Notification.sub_observe ~perceived:Channel.Null ~transmitted:false;
  let b = sub.Notification.sub_decide () in
  check_true "still decides after observations"
    (Station.equal_action b Station.Transmit || Station.equal_action b Station.Listen)

let test_lewu_elects () =
  let result = run_exact ~cd:Channel.Weak_cd ~n:8 ~max_slots:2_000_000 (Lewu.station ()) in
  check_true "LEWU completes a weak-CD election" (Metrics.election_ok result)

let test_lewu_phase_callback () =
  let transitions = ref 0 in
  let on_phase ~id:_ ~slot:_ _ = incr transitions in
  let result =
    run_exact ~cd:Channel.Weak_cd ~n:6 ~max_slots:2_000_000
      (Lewu.station ~on_phase ())
  in
  check_true "LEWU with callback elects" (Metrics.election_ok result);
  (* every station transitions at least twice (into a non-A1 phase, then done) *)
  check_true "phase callback fired" (!transitions >= 12)

let test_lewk_under_jamming_heavier () =
  let result =
    run_exact ~cd:Channel.Weak_cd ~n:24 ~eps:0.3 ~window:32 ~adversary:Adversary.greedy
      ~max_slots:4_000_000 (lewk_factory ())
  in
  check_true "LEWK survives eps=0.3 greedy jamming" (Metrics.election_ok result)

let test_survives_notification_saboteur () =
  (* The handshake-targeting jammer (jams only C1/C3) cannot prevent
     termination: it cannot cover an entire interval once 2^i >= T. *)
  let result =
    run_exact ~cd:Channel.Weak_cd ~n:9 ~eps:0.5 ~window:16
      ~adversary:Jamming_core.Adaptive_jammers.notification_saboteur
      (lewk_factory ())
  in
  check_true "LEWK terminates despite the saboteur" (Metrics.election_ok result)

let test_no_cd_never_completes () =
  (* Section 4's open problem, negatively: in no-CD the leader cannot
     hear the C1-Null that ends the handshake, so the election never
     completes (though a Single does occur). *)
  let singles = ref 0 in
  let rng = Prng.create ~seed:3 in
  let stations = Engine.make_stations ~n:8 ~rng (lewk_factory ()) in
  let budget = Budget.create ~window:16 ~eps:0.5 in
  let result =
    Engine.run
      ~observers:
        [
          Jamming_sim.Observer.of_on_slot (fun r ->
              if Channel.equal_state r.Metrics.state Channel.Single then incr singles);
        ]
      ~cd:Channel.No_cd ~adversary:(Adversary.none ()) ~budget ~max_slots:20_000 ~stations ()
  in
  check_true "selection succeeded (a Single occurred)" (!singles > 0);
  check_true "but the election never completes in no-CD" (not result.Metrics.completed)

let prop_random_configs_elect_one_leader =
  qtest ~count:25 "LEWK elects exactly one leader for random (n, eps, T, seed)"
    QCheck.(
      quad (int_range 3 40) (float_range 0.25 1.0) (int_range 1 64) small_int)
    (fun (n, eps, window, seed) ->
      let result =
        run_exact ~cd:Channel.Weak_cd ~seed ~n ~eps ~window
          ~adversary:Adversary.greedy ~max_slots:2_000_000 (lewk_factory ())
      in
      Metrics.election_ok result)

let test_overhead_constant_factor () =
  (* Median over a few seeds: LEWK within a generous constant of LESK. *)
  let reps = 12 in
  let med f =
    let xs =
      Array.init reps (fun i -> float_of_int (f (100 + i)))
    in
    Jamming_stats.Descriptive.median xs
  in
  let lewk seed =
    (run_exact ~cd:Channel.Weak_cd ~seed ~n:16 (lewk_factory ())).Metrics.slots
  in
  let lesk seed =
    (run_exact ~cd:Channel.Strong_cd ~seed ~n:16 (Jamming_core.Lesk.station ~eps:0.5))
      .Metrics.slots
  in
  let r = med lewk /. Float.max 1.0 (med lesk) in
  (* Lemma 3.1 proves O(1); the interval machinery's ramp-up makes the
     practical constant bigger at tiny n, so the envelope is generous. *)
  check_true (Printf.sprintf "overhead %.1fx bounded" r) (r < 64.0)

(* --- flat pool vs closure oracle ------------------------------------ *)

module Observer = Jamming_sim.Observer
module Config = Jamming_faults.Config
module Perception = Jamming_faults.Perception
module Injection = Jamming_faults.Injection
module Fault_plan = Jamming_faults.Fault_plan
module Lesk = Jamming_core.Lesk
module Lesu = Jamming_core.Lesu

type protocol = P_lewk | P_lewu

(* One run through either path, everything rebuilt from the seed —
   stations/pool, adversary, budget, fault plans, sensing noise — with
   a needs_leaders observer logging every slot record and the phase
   callback logging every transition.  The pool must reproduce the
   closure path bit for bit: same result, same slot records and leader
   counts, same (id, slot, phase) transitions. *)
let identity_run which ~protocol ~seed ~n ~plans_spec ~noisy ~adversary ~max_slots =
  let transitions = ref [] in
  let on_phase ~id ~slot ph = transitions := (id, slot, ph) :: !transitions in
  let log = ref [] in
  let recording =
    Observer.make ~name:"rec" ~needs_leaders:true
      ~on_slot:(fun r ~leaders ->
        log :=
          (r.Metrics.slot, r.Metrics.transmitters, r.Metrics.jammed, r.Metrics.state, leaders)
          :: !log)
      ()
  in
  let plans =
    match plans_spec with
    | `None -> None
    | `Fixed plans -> Some plans
    | `Sampled ->
        let cfg =
          {
            Config.perception = Perception.uniform ~p:0.15;
            p_crash = 0.25;
            crash_horizon = 400;
            p_sleep = 0.3;
            sleep_horizon = 300;
            max_sleep = 60;
            p_late_wake = 0.3;
            max_wake_delay = 12;
          }
        in
        Some (Config.sample_plans cfg ~rng:(Prng.create ~seed:(seed lxor 0x9e3779b9)) ~n)
  in
  let faults =
    if not noisy then None
    else
      Some
        (Injection.create ~noise:(Perception.uniform ~p:0.15)
           ~rng:(Prng.create ~seed:(seed lxor 0x85ebca6b)))
  in
  let g = Prng.create ~seed in
  let budget = Budget.create ~window:16 ~eps:0.5 in
  let adversary = adversary () in
  let result =
    match which with
    | `Closure ->
        let factory =
          match protocol with
          | P_lewk -> Lewk.station ~on_phase ~eps:0.5 ()
          | P_lewu -> Lewu.station ~on_phase ()
        in
        let stations = Engine.make_stations ~n ~rng:g factory in
        let stations =
          match plans with None -> stations | Some ps -> Config.wrap_stations ps stations
        in
        Engine.run ?faults ~observers:[ recording ] ~cd:Channel.Weak_cd ~adversary ~budget
          ~max_slots ~stations ()
    | `Pool ->
        let pf =
          match protocol with
          | P_lewk -> Lewk.pool ~on_phase ~eps:0.5 ()
          | P_lewu -> Lewu.pool ~on_phase ()
        in
        let pool = pf ~n ~rng:g in
        Engine.run_pool ?plans ?faults ~observers:[ recording ] ~cd:Channel.Weak_cd
          ~adversary ~budget ~max_slots ~pool ()
  in
  (result, List.rev !log, List.rev !transitions)

let identity_holds ~protocol ~seed ~n ~plans_spec ~noisy ~adversary ~max_slots =
  let a = identity_run `Closure ~protocol ~seed ~n ~plans_spec ~noisy ~adversary ~max_slots in
  let b = identity_run `Pool ~protocol ~seed ~n ~plans_spec ~noisy ~adversary ~max_slots in
  a = b

let prop_pool_matches_closure_lewk =
  qtest ~count:40 "LEWK flat pool ≡ closure oracle (seeds × faults × n)"
    QCheck.(
      quad small_int (oneofl [ 1; 2; 17; 256 ]) bool bool)
    (fun (seed, n, faulty, jam) ->
      let adversary = if jam then Adversary.greedy else Adversary.none in
      let max_slots = if n >= 256 then 4_000 else 20_000 in
      (* [faulty] turns on lifecycle plans; sensing noise additionally
         covers the noise-only slow path on a third of the clean seeds. *)
      identity_holds ~protocol:P_lewk ~seed ~n
        ~plans_spec:(if faulty then `Sampled else `None)
        ~noisy:(faulty || seed mod 3 = 0)
        ~adversary ~max_slots)

let prop_pool_matches_closure_lewu =
  qtest ~count:12 "LEWU flat pool ≡ closure oracle"
    QCheck.(triple small_int (oneofl [ 1; 2; 17 ]) bool)
    (fun (seed, n, faulty) ->
      identity_holds ~protocol:P_lewu ~seed ~n
        ~plans_spec:(if faulty then `Sampled else `None)
        ~noisy:faulty ~adversary:Adversary.greedy ~max_slots:10_000)

let test_staggered_join_sits_out () =
  (* Station 0 wakes at slot 4.  Slot 3 opened C1 of generation 1, so it
     joins that interval at offset ≠ 0 and must sit it out — no sub
     instance, no stream split, no draws — until a fresh interval
     starts.  The sit-out is pinned by bit-identity with the closure
     oracle (whose [sub_for] returns None off-offset), and the run must
     still elect. *)
  let plans =
    Array.init 6 (fun i ->
        if i = 0 then { Fault_plan.none with Fault_plan.wake_slot = 4 }
        else Fault_plan.none)
  in
  List.iter
    (fun seed ->
      let (ra, la, ta) =
        identity_run `Closure ~protocol:P_lewk ~seed ~n:6 ~plans_spec:(`Fixed plans)
          ~noisy:false ~adversary:Adversary.none ~max_slots:50_000
      in
      let (rb, lb, tb) =
        identity_run `Pool ~protocol:P_lewk ~seed ~n:6 ~plans_spec:(`Fixed plans)
          ~noisy:false ~adversary:Adversary.none ~max_slots:50_000
      in
      check_true "staggered join: pool ≡ closure" ((ra, la, ta) = (rb, lb, tb));
      check_true "staggered join: still elects" (Metrics.election_ok rb);
      (* The latecomer's first transition happens after it re-joined on a
         fresh interval boundary (generation 2 starts at slot 9). *)
      List.iter
        (fun (id, slot, _) -> if id = 0 then check_true "latecomer transitions late" (slot >= 9))
        tb)
    [ 1; 2; 3; 4; 5 ]

let bits = Int64.bits_of_float

let prop_lesk_flat_matches_logic =
  qtest ~count:150 "Lesk.flat_sub ≡ Lesk.Logic (bitwise tx_prob)"
    QCheck.(
      pair (float_range 0.25 1.0)
        (list_of_size Gen.(0 -- 200) (oneofl [ Channel.Null; Channel.Collision; Channel.Single ])))
    (fun (eps, states) ->
      let logic = Lesk.Logic.create ~eps () in
      let sp = (Lesk.flat_sub ~eps ()).Notification.fs_make ~n:3 in
      sp.Notification.sp_reset 1;
      List.for_all
        (fun st ->
          let before = bits (sp.Notification.sp_tx_prob 1) = bits (Lesk.Logic.tx_prob logic) in
          Lesk.Logic.on_state logic st;
          sp.Notification.sp_on_state 1 st;
          before && bits (sp.Notification.sp_tx_prob 1) = bits (Lesk.Logic.tx_prob logic))
        states)

let prop_lesu_flat_matches_logic =
  qtest ~count:150 "Lesu.flat_sub ≡ Lesu.Logic (bitwise tx_prob)"
    QCheck.(
      list_of_size Gen.(0 -- 300) (oneofl [ Channel.Null; Channel.Collision; Channel.Single ]))
    (fun states ->
      let logic = Lesu.Logic.create () in
      let sp = (Lesu.flat_sub ()).Notification.fs_make ~n:2 in
      sp.Notification.sp_reset 0;
      List.for_all
        (fun st ->
          let before = bits (sp.Notification.sp_tx_prob 0) = bits (Lesu.Logic.tx_prob logic) in
          Lesu.Logic.on_state logic st;
          sp.Notification.sp_on_state 0 st;
          before && bits (sp.Notification.sp_tx_prob 0) = bits (Lesu.Logic.tx_prob logic))
        states)

let suite =
  [
    ("weak-CD election across n", `Quick, test_basic_weak_cd_election);
    ("all adversaries", `Slow, test_under_all_adversaries);
    ("one leader across 40 seeds", `Slow, test_many_seeds_always_one_leader);
    ("phase machine follows Function 4", `Quick, test_phase_order);
    ("sub_of_uniform plumbing", `Quick, test_sub_of_uniform_synchronization);
    ("LEWU end-to-end", `Slow, test_lewu_elects);
    ("LEWU phase callback", `Slow, test_lewu_phase_callback);
    ("LEWK under heavy jamming", `Slow, test_lewk_under_jamming_heavier);
    ("survives the handshake saboteur", `Quick, test_survives_notification_saboteur);
    ("no-CD never completes (open problem)", `Quick, test_no_cd_never_completes);
    prop_random_configs_elect_one_leader;
    ("constant-factor overhead", `Slow, test_overhead_constant_factor);
    prop_pool_matches_closure_lewk;
    prop_pool_matches_closure_lewu;
    ("staggered generation join sits out", `Quick, test_staggered_join_sits_out);
    prop_lesk_flat_matches_logic;
    prop_lesu_flat_matches_logic;
  ]
