module Notification = Jamming_core.Notification
module Lewk = Jamming_core.Lewk
module Lewu = Jamming_core.Lewu
open Test_util

let lewk_factory ?on_phase () = Lewk.station ?on_phase ~eps:0.5 ()

let test_basic_weak_cd_election () =
  List.iter
    (fun n ->
      let result = run_exact ~cd:Channel.Weak_cd ~n (lewk_factory ()) in
      check_true (Printf.sprintf "n=%d completed" n) result.Metrics.completed;
      check_true (Printf.sprintf "n=%d exactly one leader" n) (Metrics.election_ok result))
    [ 3; 4; 8; 17; 64 ]

let test_under_all_adversaries () =
  List.iter
    (fun (name, adversary) ->
      let result =
        run_exact ~cd:Channel.Weak_cd ~n:12 ~eps:0.5 ~window:16 ~adversary (lewk_factory ())
      in
      check_true (name ^ ": correct election") (Metrics.election_ok result))
    [
      ("none", Adversary.none);
      ("greedy", Adversary.greedy);
      ("random", Adversary.random ~seed:3 ~p:0.6);
      ("silence-breaker", Adversary.silence_breaker);
      ("front-loaded", Adversary.front_loaded ~window:16);
    ]

let test_many_seeds_always_one_leader () =
  for seed = 1 to 40 do
    let result = run_exact ~cd:Channel.Weak_cd ~seed ~n:7 (lewk_factory ()) in
    check_true (Printf.sprintf "seed %d: one leader" seed) (Metrics.election_ok result)
  done

let test_phase_order () =
  (* Collect phase transitions per station and validate the state
     machine's legal orders. *)
  let transitions = Hashtbl.create 16 in
  let on_phase ~id ~slot:_ phase =
    let prev = try Hashtbl.find transitions id with Not_found -> [] in
    Hashtbl.replace transitions id (phase :: prev)
  in
  let result = run_exact ~cd:Channel.Weak_cd ~n:9 (lewk_factory ~on_phase ()) in
  check_true "completed" result.Metrics.completed;
  let leader_count = ref 0 in
  Hashtbl.iter
    (fun id phases ->
      match List.rev phases with
      | [ Notification.Phase_a2; Notification.Phase_blocking;
          Notification.Phase_done Station.Non_leader ] -> ()
      | [ Notification.Phase_a2; Notification.Phase_done Station.Non_leader ] ->
          (* station s: skips blocking, terminated by the C3 Single *)
          ()
      | [ Notification.Phase_announcing; Notification.Phase_done Station.Leader ] ->
          incr leader_count
      | phases ->
          Alcotest.failf "station %d: unexpected phase order [%s]" id
            (String.concat "; "
               (List.map (Format.asprintf "%a" Notification.pp_phase) phases)))
    transitions;
  check_int "exactly one announcing leader" 1 !leader_count

let test_sub_of_uniform_synchronization () =
  (* sub_of_uniform drives a private logic copy; transmitting returns a
     decision and observe feeds the copy.  Just exercise the plumbing. *)
  let factory = Notification.sub_of_uniform (Jamming_core.Lesk.uniform ~eps:0.5) in
  let sub = factory ~rng:(rng ()) in
  let a = sub.Notification.sub_decide () in
  check_true "decides an action"
    (Station.equal_action a Station.Transmit || Station.equal_action a Station.Listen);
  sub.Notification.sub_observe ~perceived:Channel.Collision ~transmitted:false;
  sub.Notification.sub_observe ~perceived:Channel.Null ~transmitted:false;
  let b = sub.Notification.sub_decide () in
  check_true "still decides after observations"
    (Station.equal_action b Station.Transmit || Station.equal_action b Station.Listen)

let test_lewu_elects () =
  let result = run_exact ~cd:Channel.Weak_cd ~n:8 ~max_slots:2_000_000 (Lewu.station ()) in
  check_true "LEWU completes a weak-CD election" (Metrics.election_ok result)

let test_lewu_phase_callback () =
  let transitions = ref 0 in
  let on_phase ~id:_ ~slot:_ _ = incr transitions in
  let result =
    run_exact ~cd:Channel.Weak_cd ~n:6 ~max_slots:2_000_000
      (Lewu.station ~on_phase ())
  in
  check_true "LEWU with callback elects" (Metrics.election_ok result);
  (* every station transitions at least twice (into a non-A1 phase, then done) *)
  check_true "phase callback fired" (!transitions >= 12)

let test_lewk_under_jamming_heavier () =
  let result =
    run_exact ~cd:Channel.Weak_cd ~n:24 ~eps:0.3 ~window:32 ~adversary:Adversary.greedy
      ~max_slots:4_000_000 (lewk_factory ())
  in
  check_true "LEWK survives eps=0.3 greedy jamming" (Metrics.election_ok result)

let test_survives_notification_saboteur () =
  (* The handshake-targeting jammer (jams only C1/C3) cannot prevent
     termination: it cannot cover an entire interval once 2^i >= T. *)
  let result =
    run_exact ~cd:Channel.Weak_cd ~n:9 ~eps:0.5 ~window:16
      ~adversary:Jamming_core.Adaptive_jammers.notification_saboteur
      (lewk_factory ())
  in
  check_true "LEWK terminates despite the saboteur" (Metrics.election_ok result)

let test_no_cd_never_completes () =
  (* Section 4's open problem, negatively: in no-CD the leader cannot
     hear the C1-Null that ends the handshake, so the election never
     completes (though a Single does occur). *)
  let singles = ref 0 in
  let rng = Prng.create ~seed:3 in
  let stations = Engine.make_stations ~n:8 ~rng (lewk_factory ()) in
  let budget = Budget.create ~window:16 ~eps:0.5 in
  let result =
    Engine.run
      ~observers:
        [
          Jamming_sim.Observer.of_on_slot (fun r ->
              if Channel.equal_state r.Metrics.state Channel.Single then incr singles);
        ]
      ~cd:Channel.No_cd ~adversary:(Adversary.none ()) ~budget ~max_slots:20_000 ~stations ()
  in
  check_true "selection succeeded (a Single occurred)" (!singles > 0);
  check_true "but the election never completes in no-CD" (not result.Metrics.completed)

let prop_random_configs_elect_one_leader =
  qtest ~count:25 "LEWK elects exactly one leader for random (n, eps, T, seed)"
    QCheck.(
      quad (int_range 3 40) (float_range 0.25 1.0) (int_range 1 64) small_int)
    (fun (n, eps, window, seed) ->
      let result =
        run_exact ~cd:Channel.Weak_cd ~seed ~n ~eps ~window
          ~adversary:Adversary.greedy ~max_slots:2_000_000 (lewk_factory ())
      in
      Metrics.election_ok result)

let test_overhead_constant_factor () =
  (* Median over a few seeds: LEWK within a generous constant of LESK. *)
  let reps = 12 in
  let med f =
    let xs =
      Array.init reps (fun i -> float_of_int (f (100 + i)))
    in
    Jamming_stats.Descriptive.median xs
  in
  let lewk seed =
    (run_exact ~cd:Channel.Weak_cd ~seed ~n:16 (lewk_factory ())).Metrics.slots
  in
  let lesk seed =
    (run_exact ~cd:Channel.Strong_cd ~seed ~n:16 (Jamming_core.Lesk.station ~eps:0.5))
      .Metrics.slots
  in
  let r = med lewk /. Float.max 1.0 (med lesk) in
  (* Lemma 3.1 proves O(1); the interval machinery's ramp-up makes the
     practical constant bigger at tiny n, so the envelope is generous. *)
  check_true (Printf.sprintf "overhead %.1fx bounded" r) (r < 64.0)

let suite =
  [
    ("weak-CD election across n", `Quick, test_basic_weak_cd_election);
    ("all adversaries", `Slow, test_under_all_adversaries);
    ("one leader across 40 seeds", `Slow, test_many_seeds_always_one_leader);
    ("phase machine follows Function 4", `Quick, test_phase_order);
    ("sub_of_uniform plumbing", `Quick, test_sub_of_uniform_synchronization);
    ("LEWU end-to-end", `Slow, test_lewu_elects);
    ("LEWU phase callback", `Slow, test_lewu_phase_callback);
    ("LEWK under heavy jamming", `Slow, test_lewk_under_jamming_heavier);
    ("survives the handshake saboteur", `Quick, test_survives_notification_saboteur);
    ("no-CD never completes (open problem)", `Quick, test_no_cd_never_completes);
    prop_random_configs_elect_one_leader;
    ("constant-factor overhead", `Slow, test_overhead_constant_factor);
  ]
