open Test_util

let test_resolve () =
  Alcotest.check state_testable "0 tx, clear" Channel.Null
    (Channel.resolve ~transmitters:0 ~jammed:false);
  Alcotest.check state_testable "1 tx, clear" Channel.Single
    (Channel.resolve ~transmitters:1 ~jammed:false);
  Alcotest.check state_testable "2 tx, clear" Channel.Collision
    (Channel.resolve ~transmitters:2 ~jammed:false);
  Alcotest.check state_testable "17 tx, clear" Channel.Collision
    (Channel.resolve ~transmitters:17 ~jammed:false)

let test_resolve_jammed () =
  (* A jammed slot is Collision no matter what (indistinguishability, 1.1). *)
  List.iter
    (fun transmitters ->
      Alcotest.check state_testable
        (Printf.sprintf "%d tx, jammed" transmitters)
        Channel.Collision
        (Channel.resolve ~transmitters ~jammed:true))
    [ 0; 1; 2; 10 ]

let test_resolve_invalid () =
  Alcotest.check_raises "negative count rejected"
    (Invalid_argument "Channel.resolve: negative transmitter count") (fun () ->
      ignore (Channel.resolve ~transmitters:(-1) ~jammed:false))

let test_perceive_strong () =
  (* Strong-CD: everyone gets the truth, transmitting or not. *)
  List.iter
    (fun st ->
      List.iter
        (fun transmitted ->
          Alcotest.check state_testable "strong-CD passthrough" st
            (Channel.perceive Channel.Strong_cd st ~transmitted))
        [ true; false ])
    [ Channel.Null; Channel.Single; Channel.Collision ]

let test_perceive_weak () =
  (* Weak-CD transmitters assume Collision (Function 3 of the paper). *)
  List.iter
    (fun st ->
      Alcotest.check state_testable "weak-CD transmitter sees Collision" Channel.Collision
        (Channel.perceive Channel.Weak_cd st ~transmitted:true))
    [ Channel.Single; Channel.Collision ];
  List.iter
    (fun st ->
      Alcotest.check state_testable "weak-CD listener sees truth" st
        (Channel.perceive Channel.Weak_cd st ~transmitted:false))
    [ Channel.Null; Channel.Single; Channel.Collision ]

let test_perceive_no_cd () =
  Alcotest.check state_testable "no-CD: Null reads as no-Single" Channel.Collision
    (Channel.perceive Channel.No_cd Channel.Null ~transmitted:false);
  Alcotest.check state_testable "no-CD: Collision reads as no-Single" Channel.Collision
    (Channel.perceive Channel.No_cd Channel.Collision ~transmitted:false);
  Alcotest.check state_testable "no-CD: Single still heard" Channel.Single
    (Channel.perceive Channel.No_cd Channel.Single ~transmitted:false);
  Alcotest.check state_testable "no-CD transmitter blind" Channel.Collision
    (Channel.perceive Channel.No_cd Channel.Single ~transmitted:true)

let test_perceive_exhaustive () =
  (* The full 3 models x 3 states x {transmitted, listening} truth table,
     written out explicitly so any change to the perception function has
     to be confronted with the paper's Table (S1.1). *)
  let cases =
    [
      (Channel.Strong_cd, Channel.Null, false, Channel.Null);
      (Channel.Strong_cd, Channel.Null, true, Channel.Null);
      (Channel.Strong_cd, Channel.Single, false, Channel.Single);
      (Channel.Strong_cd, Channel.Single, true, Channel.Single);
      (Channel.Strong_cd, Channel.Collision, false, Channel.Collision);
      (Channel.Strong_cd, Channel.Collision, true, Channel.Collision);
      (Channel.Weak_cd, Channel.Null, false, Channel.Null);
      (Channel.Weak_cd, Channel.Null, true, Channel.Collision);
      (Channel.Weak_cd, Channel.Single, false, Channel.Single);
      (Channel.Weak_cd, Channel.Single, true, Channel.Collision);
      (Channel.Weak_cd, Channel.Collision, false, Channel.Collision);
      (Channel.Weak_cd, Channel.Collision, true, Channel.Collision);
      (Channel.No_cd, Channel.Null, false, Channel.Collision);
      (Channel.No_cd, Channel.Null, true, Channel.Collision);
      (Channel.No_cd, Channel.Single, false, Channel.Single);
      (Channel.No_cd, Channel.Single, true, Channel.Collision);
      (Channel.No_cd, Channel.Collision, false, Channel.Collision);
      (Channel.No_cd, Channel.Collision, true, Channel.Collision);
    ]
  in
  check_int "all 18 combinations covered" 18 (List.length cases);
  List.iter
    (fun (cd, st, transmitted, expected) ->
      Alcotest.check state_testable
        (Printf.sprintf "%s/%s/%s"
           (Channel.cd_model_to_string cd)
           (Channel.state_to_string st)
           (if transmitted then "tx" else "rx"))
        expected
        (Channel.perceive cd st ~transmitted))
    cases

let test_listener_knows_null () =
  check_true "strong knows Null" (Channel.listener_knows_null Channel.Strong_cd);
  check_true "weak knows Null" (Channel.listener_knows_null Channel.Weak_cd);
  check_true "no-CD cannot see Null" (not (Channel.listener_knows_null Channel.No_cd))

let test_printers () =
  Alcotest.(check string) "state string" "Single" (Channel.state_to_string Channel.Single);
  Alcotest.(check string) "cd string" "weak-CD" (Channel.cd_model_to_string Channel.Weak_cd)

let test_equal () =
  check_true "equal state" (Channel.equal_state Channel.Null Channel.Null);
  check_true "unequal state" (not (Channel.equal_state Channel.Null Channel.Collision));
  check_true "equal cd" (Channel.equal_cd_model Channel.No_cd Channel.No_cd);
  check_true "unequal cd" (not (Channel.equal_cd_model Channel.No_cd Channel.Weak_cd))

let suite =
  [
    ("resolve clear slots", `Quick, test_resolve);
    ("resolve jammed slots", `Quick, test_resolve_jammed);
    ("resolve rejects negatives", `Quick, test_resolve_invalid);
    ("perceive strong-CD", `Quick, test_perceive_strong);
    ("perceive weak-CD", `Quick, test_perceive_weak);
    ("perceive no-CD", `Quick, test_perceive_no_cd);
    ("perceive exhaustive truth table", `Quick, test_perceive_exhaustive);
    ("listener_knows_null", `Quick, test_listener_knows_null);
    ("printers", `Quick, test_printers);
    ("equality", `Quick, test_equal);
  ]
