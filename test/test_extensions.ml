module Size_approx = Jamming_core.Size_approx
module K_selection = Jamming_core.K_selection
open Test_util

let test_size_approx_band_helper () =
  (* n = 65536: log log n = 4; T = 16: log T = 4; band = [3, 5]. *)
  check_true "3 in band" (Size_approx.within_lemma_2_8_band ~round:3 ~n:65536 ~window:16);
  check_true "5 in band" (Size_approx.within_lemma_2_8_band ~round:5 ~n:65536 ~window:16);
  check_true "2 below band" (not (Size_approx.within_lemma_2_8_band ~round:2 ~n:65536 ~window:16));
  check_true "6 above band" (not (Size_approx.within_lemma_2_8_band ~round:6 ~n:65536 ~window:16));
  (* Large T widens the top: T = 2^10 -> upper becomes 11. *)
  check_true "T widens the band"
    (Size_approx.within_lemma_2_8_band ~round:10 ~n:65536 ~window:1024)

let test_size_approx_outcome_printer () =
  let s =
    Format.asprintf "%a" Size_approx.pp_outcome
      (Size_approx.Estimate { round = 4; n_hat = 65536.0; slots = 30 })
  in
  check_true "printer mentions the round" (String.length s > 0)

let run_refine ?(adversary = Adversary.greedy) ~n ~seed () =
  let rng = Prng.create ~seed in
  let budget = Budget.create ~window:64 ~eps:0.5 in
  Size_approx.refine ~n ~rng ~adversary:(adversary ()) ~budget ~max_slots:500_000 ()

let test_refine_constant_factor () =
  List.iter
    (fun n ->
      List.iter
        (fun seed ->
          match run_refine ~n ~seed () with
          | Size_approx.Refined { n_hat; _ } ->
              check_true
                (Printf.sprintf "n=%d seed=%d: n_hat=%.0f within 4x" n seed n_hat)
                (n_hat >= float_of_int n /. 4.0 && n_hat <= 4.0 *. float_of_int n)
          | Size_approx.Refine_failed _ -> Alcotest.failf "refine failed at n=%d seed=%d" n seed)
        [ 1; 2; 3; 4; 5 ])
    [ 100; 10_000 ]

let test_refine_elects_en_route () =
  match run_refine ~n:1000 ~seed:9 () with
  | Size_approx.Refined { leader_elected; _ } ->
      check_true "sweep crosses the Single zone" leader_elected
  | Size_approx.Refine_failed _ -> Alcotest.fail "refine failed"

let test_refine_benign_clear_fraction () =
  match run_refine ~adversary:Adversary.none ~n:1000 ~seed:2 () with
  | Size_approx.Refined { clear_fraction; _ } ->
      check_true
        (Printf.sprintf "benign plateau %.2f above jammed plateaus" clear_fraction)
        (clear_fraction > 0.55)
  | Size_approx.Refine_failed _ -> Alcotest.fail "refine failed"

let test_refine_validation () =
  Alcotest.check_raises "slots_per_probe too small"
    (Invalid_argument "Size_approx.refine: slots_per_probe must be >= 8") (fun () ->
      let rng = Prng.create ~seed:1 in
      let budget = Budget.create ~window:8 ~eps:0.5 in
      ignore
        (Size_approx.refine ~slots_per_probe:4 ~n:10 ~rng
           ~adversary:(Adversary.none ()) ~budget ~max_slots:100 ()))

module Energy_cap = Jamming_core.Energy_cap

let run_capped ~cap ~seed () =
  let rng = Prng.create ~seed in
  let budget = Budget.create ~window:32 ~eps:0.5 in
  Energy_cap.run_lesk ~cap ~n:32 ~eps:0.5 ~rng ~adversary:(Adversary.greedy ()) ~budget
    ~max_slots:20_000 ()

let test_energy_cap_generous_is_free () =
  let o = run_capped ~cap:1_000_000 ~seed:3 () in
  check_true "huge cap elects" (Metrics.election_ok o.Energy_cap.result);
  check_int "nobody exhausted" 0 o.Energy_cap.exhausted

let test_energy_cap_zero_never_elects () =
  let o = run_capped ~cap:0 ~seed:3 () in
  check_true "cap 0 cannot elect" (not o.Energy_cap.result.Metrics.elected);
  check_int "everyone 'exhausted' immediately" 32 o.Energy_cap.exhausted

let test_energy_cap_respected () =
  (* Per-station transmissions never exceed the cap: with cap c, total
     transmissions <= n * c. *)
  let cap = 5 in
  let o = run_capped ~cap ~seed:7 () in
  check_true "total transmissions bounded by n*cap"
    (o.Energy_cap.result.Metrics.transmissions <= float_of_int (32 * cap) +. 0.5);
  check_true "max per-station bounded"
    (o.Energy_cap.result.Metrics.max_station_transmissions <= cap)

let test_energy_cap_validation () =
  Alcotest.check_raises "negative cap"
    (Invalid_argument "Energy_cap.station: cap must be >= 0") (fun () ->
      let meter = Jamming_energy.Energy.Meter.create ~n:1 in
      ignore
        (Energy_cap.station ~cap:(-1) ~meter (Jamming_core.Lesk.station ~eps:0.5)
          : Jamming_station.Station.factory))

let run_k_selection ?(warm_start = true) ?(adversary = Adversary.none) ~k ~n () =
  let rng = Prng.create ~seed:77 in
  let budget = Budget.create ~window:32 ~eps:0.5 in
  K_selection.run ~warm_start ~k ~n ~eps:0.5 ~rng ~adversary:(adversary ()) ~budget
    ~max_slots:500_000 ()

let test_k_selection_basic () =
  let outcome = run_k_selection ~k:5 ~n:64 () in
  check_true "completed" outcome.K_selection.completed;
  check_int "five rounds" 5 (List.length outcome.K_selection.rounds);
  check_int "total is the sum of rounds" outcome.K_selection.total_slots
    (List.fold_left
       (fun acc (r : K_selection.round_result) -> acc + r.K_selection.slots)
       0 outcome.K_selection.rounds);
  List.iteri
    (fun i (r : K_selection.round_result) ->
      check_true
        (Printf.sprintf "round %d winner index within shrinking population" i)
        (r.K_selection.winner_index >= 0 && r.K_selection.winner_index < 64 - i))
    outcome.K_selection.rounds

let test_k_selection_k_equals_n () =
  let outcome = run_k_selection ~k:4 ~n:4 () in
  check_true "can select everyone" outcome.K_selection.completed;
  check_int "four rounds" 4 (List.length outcome.K_selection.rounds)

let test_k_selection_validation () =
  Alcotest.check_raises "k > n" (Invalid_argument "K_selection.run: need 1 <= k <= n")
    (fun () -> ignore (run_k_selection ~k:5 ~n:4 ()));
  Alcotest.check_raises "k = 0" (Invalid_argument "K_selection.run: need 1 <= k <= n")
    (fun () -> ignore (run_k_selection ~k:0 ~n:4 ()))

let test_k_selection_under_jamming () =
  let outcome = run_k_selection ~adversary:Adversary.greedy ~k:3 ~n:32 () in
  check_true "k-selection completes under greedy jamming" outcome.K_selection.completed

let test_k_selection_warm_start_faster () =
  (* Warm start skips the ramp-up of later rounds; compare medians over
     seeds for a mid-size network. *)
  let total ~warm_start seed =
    let rng = Prng.create ~seed in
    let budget = Budget.create ~window:32 ~eps:0.5 in
    let o =
      K_selection.run ~warm_start ~k:8 ~n:256 ~eps:0.5 ~rng
        ~adversary:(Adversary.none ()) ~budget ~max_slots:500_000 ()
    in
    float_of_int o.K_selection.total_slots
  in
  let med f = Jamming_stats.Descriptive.median (Array.init 15 (fun i -> f (i + 1))) in
  let warm = med (total ~warm_start:true) and cold = med (total ~warm_start:false) in
  check_true
    (Printf.sprintf "warm start not slower (warm %.0f vs cold %.0f)" warm cold)
    (warm <= cold *. 1.1)

let test_k_selection_budget_spans_rounds () =
  (* The same budget object is threaded through the rounds, so the whole
     chain respects (T, 1-eps): total jams <= (1-eps)*total + T slack. *)
  let rng = Prng.create ~seed:5 in
  let budget = Budget.create ~window:16 ~eps:0.5 in
  let o =
    K_selection.run ~k:4 ~n:64 ~eps:0.5 ~rng ~adversary:(Adversary.greedy ()) ~budget
      ~max_slots:500_000 ()
  in
  check_true "completed" o.K_selection.completed;
  check_true "jam budget spans the chain"
    (float_of_int (Budget.jammed_total budget)
    <= (0.5 *. float_of_int (Budget.elapsed budget)) +. 16.0)

let test_weak_cd_k_selection () =
  let rng = Prng.create ~seed:21 in
  let budget = Budget.create ~window:16 ~eps:0.5 in
  let o =
    K_selection.run_weak_cd ~k:3 ~n:10 ~eps:0.5 ~rng
      ~adversary:(Adversary.greedy ())
      ~budget ~max_slots:3_000_000 ()
  in
  check_true "completed" o.K_selection.completed;
  check_int "three winners" 3 (List.length o.K_selection.winners);
  check_true "winners are distinct original ids"
    (List.sort_uniq compare o.K_selection.winners = List.sort compare o.K_selection.winners);
  List.iter
    (fun id -> check_true "winner id in range" (id >= 0 && id < 10))
    o.K_selection.winners;
  check_true "budget spans the weak-CD chain"
    (float_of_int (Budget.jammed_total budget)
    <= (0.5 *. float_of_int (Budget.elapsed budget)) +. 16.0)

let test_weak_cd_k_selection_validation () =
  let rng = Prng.create ~seed:1 in
  let budget = Budget.create ~window:16 ~eps:0.5 in
  Alcotest.check_raises "n - k < 2"
    (Invalid_argument "K_selection.run_weak_cd: need 1 <= k and n - k >= 2") (fun () ->
      ignore
        (K_selection.run_weak_cd ~k:3 ~n:4 ~eps:0.5 ~rng ~adversary:(Adversary.none ())
           ~budget ~max_slots:1000 ()))

let suite =
  [
    ("Lemma 2.8 band helper", `Quick, test_size_approx_band_helper);
    ("weak-CD k-selection", `Slow, test_weak_cd_k_selection);
    ("refined size estimate, constant factor", `Slow, test_refine_constant_factor);
    ("refine elects en route", `Quick, test_refine_elects_en_route);
    ("refine sees the benign plateau", `Quick, test_refine_benign_clear_fraction);
    ("refine validation", `Quick, test_refine_validation);
    ("energy cap: generous is free", `Quick, test_energy_cap_generous_is_free);
    ("energy cap: zero never elects", `Quick, test_energy_cap_zero_never_elects);
    ("energy cap respected", `Quick, test_energy_cap_respected);
    ("energy cap validation", `Quick, test_energy_cap_validation);
    ("weak-CD k-selection validation", `Quick, test_weak_cd_k_selection_validation);
    ("outcome printer", `Quick, test_size_approx_outcome_printer);
    ("k-selection basic", `Quick, test_k_selection_basic);
    ("k-selection k = n", `Quick, test_k_selection_k_equals_n);
    ("k-selection validation", `Quick, test_k_selection_validation);
    ("k-selection under jamming", `Quick, test_k_selection_under_jamming);
    ("warm start helps", `Slow, test_k_selection_warm_start_faster);
    ("budget spans the whole chain", `Quick, test_k_selection_budget_spans_rounds);
  ]
