module Trace = Jamming_sim.Trace
open Test_util

let mk_record slot state jammed =
  { Metrics.slot; transmitters = Metrics.Exact 1; jammed; state }

let test_validation () =
  Alcotest.check_raises "capacity 0" (Invalid_argument "Trace.create: capacity must be >= 1")
    (fun () -> ignore (Trace.create ~capacity:0))

let test_records_in_order () =
  let t = Trace.create ~capacity:10 in
  for i = 0 to 4 do
    Trace.record t (mk_record i Channel.Null false)
  done;
  check_int "recorded" 5 (Trace.recorded t);
  let slots = List.map (fun r -> r.Metrics.slot) (Trace.to_list t) in
  Alcotest.(check (list int)) "oldest first" [ 0; 1; 2; 3; 4 ] slots

let test_ring_overwrite () =
  let t = Trace.create ~capacity:3 in
  for i = 0 to 9 do
    Trace.record t (mk_record i Channel.Collision false)
  done;
  check_int "recorded counts everything" 10 (Trace.recorded t);
  let slots = List.map (fun r -> r.Metrics.slot) (Trace.to_list t) in
  Alcotest.(check (list int)) "keeps the tail" [ 7; 8; 9 ] slots

let test_counters () =
  let t = Trace.create ~capacity:10 in
  Trace.record t (mk_record 0 Channel.Null false);
  Trace.record t (mk_record 1 Channel.Single false);
  Trace.record t (mk_record 2 Channel.Collision true);
  Trace.record t (mk_record 3 Channel.Collision true);
  check_int "null count" 1 (Trace.count_state t Channel.Null);
  check_int "single count" 1 (Trace.count_state t Channel.Single);
  check_int "collision count" 2 (Trace.count_state t Channel.Collision);
  check_int "jam count" 2 (Trace.count_jammed t)

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_engine_integration () =
  let t = Trace.create ~capacity:100_000 in
  let rng = rng () in
  let budget = Budget.create ~window:32 ~eps:0.5 in
  let result =
    Uniform_engine.run
      ~observers:[ Jamming_sim.Observer.of_on_slot (Trace.record t) ]
      ~n:64 ~rng
      ~protocol:(Jamming_core.Lesk.uniform ~eps:0.5 ())
      ~adversary:(Adversary.greedy ()) ~budget ~max_slots:100_000 ()
  in
  check_int "trace saw every slot" result.Metrics.slots (Trace.recorded t);
  check_int "jam counts agree" result.Metrics.jammed_slots (Trace.count_jammed t)

let test_pp_tx_counts () =
  (* Exact counts print as tx=k; the uniform engine's Many class is only
     a lower bound and must not render as an exact count. *)
  let exact = Format.asprintf "%a" Trace.pp_record (mk_record 0 Channel.Single false) in
  check_true "exact count prints tx=1" (contains_substring exact "tx=1");
  let many =
    { Metrics.slot = 1; transmitters = Metrics.At_least 2; jammed = false;
      state = Channel.Collision }
  in
  let s = Format.asprintf "%a" Trace.pp_record many in
  check_true "lower bound prints tx>=2" (contains_substring s "tx>=2");
  check_true "lower bound does not claim tx=2" (not (contains_substring s "tx=2"))

let test_pp_mentions_drops () =
  let t = Trace.create ~capacity:2 in
  for i = 0 to 4 do
    Trace.record t (mk_record i Channel.Null false)
  done;
  let s = Format.asprintf "%a" Trace.pp t in
  check_true "rendering mentions dropped records" (contains_substring s "dropped")

let suite =
  [
    ("validation", `Quick, test_validation);
    ("records in order", `Quick, test_records_in_order);
    ("ring overwrite keeps tail", `Quick, test_ring_overwrite);
    ("state counters", `Quick, test_counters);
    ("engine integration", `Quick, test_engine_integration);
    ("pp renders tx counts honestly", `Quick, test_pp_tx_counts);
    ("pp mentions drops", `Quick, test_pp_mentions_drops);
  ]
