open Test_util

let test_determinism () =
  let a = Prng.create ~seed:123 and b = Prng.create ~seed:123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create ~seed:123 and b = Prng.create ~seed:124 in
  check_true "different seeds diverge" (Prng.bits64 a <> Prng.bits64 b)

let test_copy () =
  let a = rng () in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.bits64 a) (Prng.bits64 b)

let test_split_independence () =
  let a = rng () in
  let child = Prng.split a in
  (* The child stream should not be a shift of the parent stream. *)
  let parent_vals = Array.init 32 (fun _ -> Prng.bits64 a) in
  let child_vals = Array.init 32 (fun _ -> Prng.bits64 child) in
  check_true "split streams differ" (parent_vals <> child_vals)

let test_float_range () =
  let g = rng () in
  for _ = 1 to 10_000 do
    let f = Prng.float g in
    check_true "float in [0,1)" (f >= 0.0 && f < 1.0)
  done

let test_float_mean () =
  let g = rng () in
  let n = 100_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.float g
  done;
  check_float_eps 0.01 "mean ~ 0.5" 0.5 (!sum /. float_of_int n)

let test_int_bounds () =
  let g = rng () in
  for bound = 1 to 40 do
    for _ = 1 to 200 do
      let v = Prng.int g ~bound in
      check_true "int in range" (v >= 0 && v < bound)
    done
  done

let test_int_uniformity () =
  let g = rng () in
  let bound = 10 in
  let counts = Array.make bound 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Prng.int g ~bound in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let freq = float_of_int c /. float_of_int n in
      check_true (Printf.sprintf "bucket %d frequency %f near 0.1" i freq)
        (Float.abs (freq -. 0.1) < 0.01))
    counts

let test_int_invalid () =
  let g = rng () in
  Alcotest.check_raises "bound 0 rejected" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g ~bound:0))

let test_bool_extremes () =
  let g = rng () in
  for _ = 1 to 100 do
    check_true "p=1 always true" (Prng.bool g ~p:1.0);
    check_true "p=0 always false" (not (Prng.bool g ~p:0.0));
    check_true "p>1 clamps to true" (Prng.bool g ~p:2.0)
  done

let test_bool_frequency () =
  let g = rng () in
  let n = 50_000 in
  let c = ref 0 in
  for _ = 1 to n do
    if Prng.bool g ~p:0.3 then incr c
  done;
  check_float_eps 0.02 "P[true] ~ 0.3" 0.3 (float_of_int !c /. float_of_int n)

let test_seed_of_string_stable () =
  check_int "stable across calls" (Prng.seed_of_string "hello") (Prng.seed_of_string "hello");
  check_true "distinct strings map apart"
    (Prng.seed_of_string "cell/1" <> Prng.seed_of_string "cell/2");
  check_true "seed is non-negative" (Prng.seed_of_string "anything" >= 0)

(* --- Sample --- *)

let test_trichotomy_closed_forms () =
  (* p_zero + p_one + p_many = 1 and each matches the binomial formula. *)
  List.iter
    (fun (n, p) ->
      let z = Sample.p_zero ~n ~p and o = Sample.p_one ~n ~p and m = Sample.p_many ~n ~p in
      check_float_eps 1e-9 "mass sums to 1" 1.0 (z +. o +. m);
      let q = 1.0 -. p in
      check_float_eps 1e-9 "p_zero = q^n" (q ** float_of_int n) z;
      check_float_eps 1e-9 "p_one = npq^(n-1)"
        (float_of_int n *. p *. (q ** float_of_int (n - 1)))
        o)
    [ (1, 0.5); (2, 0.3); (10, 0.1); (100, 0.01); (1000, 0.001) ]

let test_trichotomy_extremes () =
  check_float "p=0 is Null surely" 1.0 (Sample.p_zero ~n:50 ~p:0.0);
  check_float "n=1, p=1 is Single surely" 1.0 (Sample.p_one ~n:1 ~p:1.0);
  check_float "n=3, p=1 is Collision surely" 1.0 (Sample.p_many ~n:3 ~p:1.0);
  check_float "n=0 is Null surely" 1.0 (Sample.p_zero ~n:0 ~p:0.7)

let test_trichotomy_sampling_matches () =
  let g = rng () in
  let n = 64 and p = 1.0 /. 64.0 in
  let reps = 200_000 in
  let zero = ref 0 and one = ref 0 and many = ref 0 in
  for _ = 1 to reps do
    match Sample.trichotomy g ~n ~p with
    | Sample.Zero -> incr zero
    | Sample.One -> incr one
    | Sample.Many -> incr many
  done;
  let f c = float_of_int !c /. float_of_int reps in
  check_float_eps 0.01 "empirical P[Zero]" (Sample.p_zero ~n ~p) (f zero);
  check_float_eps 0.01 "empirical P[One]" (Sample.p_one ~n ~p) (f one);
  check_float_eps 0.01 "empirical P[Many]" (Sample.p_many ~n ~p) (f many)

let test_trichotomy_vs_bernoulli_sum () =
  (* The trichotomy must match simulating stations one by one. *)
  let g = rng ~seed:99 () in
  let n = 20 and p = 0.08 in
  let reps = 100_000 in
  let counts_direct = [| 0; 0; 0 |] in
  for _ = 1 to reps do
    let c = ref 0 in
    for _ = 1 to n do
      if Prng.bool g ~p then incr c
    done;
    let idx = if !c = 0 then 0 else if !c = 1 then 1 else 2 in
    counts_direct.(idx) <- counts_direct.(idx) + 1
  done;
  let f c = float_of_int c /. float_of_int reps in
  check_float_eps 0.01 "per-station P[0] matches closed form" (Sample.p_zero ~n ~p)
    (f counts_direct.(0));
  check_float_eps 0.01 "per-station P[1] matches closed form" (Sample.p_one ~n ~p)
    (f counts_direct.(1))

let test_binomial_moments () =
  let g = rng () in
  List.iter
    (fun (n, p) ->
      let reps = 20_000 in
      let sum = ref 0.0 and sumsq = ref 0.0 in
      for _ = 1 to reps do
        let v = float_of_int (Sample.binomial g ~n ~p) in
        sum := !sum +. v;
        sumsq := !sumsq +. (v *. v)
      done;
      let mean = !sum /. float_of_int reps in
      let var = (!sumsq /. float_of_int reps) -. (mean *. mean) in
      let nf = float_of_int n in
      check_float_eps (0.05 *. Float.max 1.0 (nf *. p)) "binomial mean" (nf *. p) mean;
      check_float_eps
        (0.15 *. Float.max 1.0 (nf *. p *. (1.0 -. p)))
        "binomial variance"
        (nf *. p *. (1.0 -. p))
        var)
    [ (10, 0.5); (300, 0.01); (1000, 0.3); (100_000, 0.001) ]

let test_binomial_edges () =
  let g = rng () in
  check_int "p=0 gives 0" 0 (Sample.binomial g ~n:100 ~p:0.0);
  check_int "p=1 gives n" 100 (Sample.binomial g ~n:100 ~p:1.0);
  check_int "n=0 gives 0" 0 (Sample.binomial g ~n:0 ~p:0.5)

let test_binomial_reflection () =
  (* p > 1/2 reflects through the normal dispatch: a draw at n = 10^9
     must be instantaneous (the old path summed 10^9 Bernoullis) and
     land in the bulk of the distribution. *)
  let g = rng () in
  for _ = 1 to 100 do
    let v = Sample.binomial g ~n:1_000_000_000 ~p:0.75 in
    (* mean 7.5e8, sd ~ 1.37e4; +-6 sd. *)
    check_true "n=1e9, p=0.75 draw in the bulk"
      (v > 749_900_000 && v < 750_100_000)
  done;
  (* And the reflected distribution is the right one: X ~ B(n, 0.8)
     must match n - Y with Y ~ B(n, 0.2). *)
  let n = 2_000 and reps = 4_000 in
  let direct =
    Array.init reps (fun _ -> float_of_int (Sample.binomial g ~n ~p:0.8))
  in
  let reflected =
    Array.init reps (fun _ -> float_of_int (n - Sample.binomial g ~n ~p:0.2))
  in
  let module Ks = Jamming_stats.Ks in
  let p =
    Ks.p_value ~n1:reps ~n2:reps ~d:(Ks.statistic direct reflected)
  in
  check_true (Printf.sprintf "B(2000, 0.8) =d= 2000 - B(2000, 0.2) (KS p = %g)" p)
    (p > 1e-4)

(* Exact binomial CDF below [k], from the log-pmf golden. *)
let cdf_below ~n ~p k =
  let acc = ref 0.0 in
  for i = 0 to k do
    acc := !acc +. Float.exp (Sample.log_binomial_pmf ~n ~p ~k:i)
  done;
  !acc

let test_binomial_btrs_chi_square () =
  (* The rejection sampler (np > 30, n > 256) against the exact pmf:
     chi-square over every bin with expected count >= 5, tails pooled.
     Deterministic seed; df ~ 45, so 100 is far beyond any plausible
     statistic unless the sampler is biased. *)
  let g = rng ~seed:2026 () in
  let n = 1_000 and p = 0.035 in
  let reps = 200_000 in
  let counts = Array.make (n + 1) 0 in
  for _ = 1 to reps do
    let v = Sample.binomial g ~n ~p in
    counts.(v) <- counts.(v) + 1
  done;
  let rf = float_of_int reps in
  (* Central bins with expected >= 5. *)
  let lo = ref 0 and hi = ref n in
  let expected k = rf *. Float.exp (Sample.log_binomial_pmf ~n ~p ~k) in
  while expected !lo < 5.0 do incr lo done;
  while expected !hi < 5.0 do decr hi done;
  let chi2 = ref 0.0 in
  let observed_tail_lo = ref 0 and observed_tail_hi = ref 0 in
  for k = 0 to !lo - 1 do
    observed_tail_lo := !observed_tail_lo + counts.(k)
  done;
  for k = !hi + 1 to n do
    observed_tail_hi := !observed_tail_hi + counts.(k)
  done;
  let add_bin observed expected =
    let d = float_of_int observed -. expected in
    chi2 := !chi2 +. (d *. d /. expected)
  in
  for k = !lo to !hi do
    add_bin counts.(k) (expected k)
  done;
  add_bin !observed_tail_lo (rf *. cdf_below ~n ~p (!lo - 1));
  add_bin !observed_tail_hi (rf *. (1.0 -. cdf_below ~n ~p !hi));
  let df = !hi - !lo + 2 in
  check_true
    (Printf.sprintf "BTRS chi-square %.1f over %d bins" !chi2 df)
    (!chi2 < 100.0)

let test_binomial_skewness () =
  (* The discriminator against the old Gaussian-approximation branch: a
     normal draw has skewness 0, the true B(1000, 0.0305) has
     (1-2p)/sqrt(npq) ~ 0.173.  Empirical stderr at 200k reps is
     ~ sqrt(6/R) = 0.0055, so +-0.03 is a > 5 sigma gate that the
     Gaussian fails by ~ 30 sigma. *)
  let g = rng ~seed:77 () in
  let n = 1_000 and p = 0.0305 in
  let reps = 200_000 in
  let draws = Array.init reps (fun _ -> float_of_int (Sample.binomial g ~n ~p)) in
  let rf = float_of_int reps in
  let mean = Array.fold_left ( +. ) 0.0 draws /. rf in
  let m2 = ref 0.0 and m3 = ref 0.0 in
  Array.iter
    (fun v ->
      let d = v -. mean in
      m2 := !m2 +. (d *. d);
      m3 := !m3 +. (d *. d *. d))
    draws;
  let m2 = !m2 /. rf and m3 = !m3 /. rf in
  let skew = m3 /. (m2 ** 1.5) in
  let q = 1.0 -. p in
  let exact = (1.0 -. (2.0 *. p)) /. Float.sqrt (float_of_int n *. p *. q) in
  check_float_eps 0.03 "empirical skewness matches exact binomial" exact skew

let test_binomial_tail_across_sum_boundary () =
  (* P(X <= 1) at np ~ 1.2 is ~ 0.66 — measurable — straddling the
     n <= 256 (Bernoulli sum) / n > 256 (inversion) dispatch edge. *)
  let g = rng ~seed:11 () in
  List.iter
    (fun n ->
      let p = 1.2 /. float_of_int n in
      let reps = 50_000 in
      let le_one = ref 0 in
      for _ = 1 to reps do
        if Sample.binomial g ~n ~p <= 1 then incr le_one
      done;
      let expected = Sample.p_zero ~n ~p +. Sample.p_one ~n ~p in
      check_float_eps 0.01
        (Printf.sprintf "P(X <= 1) at n=%d" n)
        expected
        (float_of_int !le_one /. float_of_int reps))
    [ 255; 256; 257; 300 ]

let test_binomial_tail_across_btrs_boundary () =
  (* Same idea at the np = 30 inversion/BTRS edge: P(X <= 20) ~ 0.036
     either side; a lower-tail defect in the rejection sampler shows
     here. *)
  let g = rng ~seed:12 () in
  List.iter
    (fun np ->
      let n = 4_096 in
      let p = np /. float_of_int n in
      let reps = 100_000 in
      let le = ref 0 in
      for _ = 1 to reps do
        if Sample.binomial g ~n ~p <= 20 then incr le
      done;
      let expected = cdf_below ~n ~p 20 in
      check_float_eps 0.005
        (Printf.sprintf "P(X <= 20) at np=%.1f" np)
        expected
        (float_of_int !le /. float_of_int reps))
    [ 29.5; 30.5 ]

let test_log_binomial_pmf () =
  (* Spot values against directly computed binomial mass. *)
  check_float_eps 1e-12 "pmf(2; 4, 0.5)" (Float.log 0.375)
    (Sample.log_binomial_pmf ~n:4 ~p:0.5 ~k:2);
  check_float_eps 1e-9 "pmf(0; 10, 0.1)" (10.0 *. Float.log 0.9)
    (Sample.log_binomial_pmf ~n:10 ~p:0.1 ~k:0);
  check_float_eps 1e-9 "pmf(10; 10, 0.3)" (10.0 *. Float.log 0.3)
    (Sample.log_binomial_pmf ~n:10 ~p:0.3 ~k:10);
  check_true "out of support is -inf"
    (Sample.log_binomial_pmf ~n:10 ~p:0.3 ~k:11 = Float.neg_infinity
    && Sample.log_binomial_pmf ~n:10 ~p:0.3 ~k:(-1) = Float.neg_infinity);
  (* Mass sums to 1 in a BTRS-regime case. *)
  let sum = ref 0.0 in
  for k = 0 to 1_000 do
    sum := !sum +. Float.exp (Sample.log_binomial_pmf ~n:1_000 ~p:0.035 ~k)
  done;
  check_float_eps 1e-9 "pmf sums to 1" 1.0 !sum

let prop_binomial_in_range =
  qtest ~count:300 "binomial draws stay in [0, n] in every regime"
    QCheck.(triple (int_range 0 2_000_000) (float_range 0.0 1.0) small_int)
    (fun (n, p, seed) ->
      let g = Prng.create ~seed in
      let v = Sample.binomial g ~n ~p in
      v >= 0 && v <= n)

let test_geometric_mean () =
  let g = rng () in
  let p = 0.25 in
  let reps = 50_000 in
  let sum = ref 0 in
  for _ = 1 to reps do
    sum := !sum + Sample.geometric g ~p
  done;
  (* failures before success: mean (1-p)/p = 3 *)
  check_float_eps 0.1 "geometric mean" 3.0 (float_of_int !sum /. float_of_int reps)

let test_geometric_tail_clamped () =
  (* For tiny p and a uniform draw at the representable edge below 1 the
     inversion ratio overflows the integer range, where int_of_float is
     unspecified; the variate must clamp instead of going undefined. *)
  let u_max = Float.pred 1.0 in
  (* p = 1e-12 at the extreme draw: ~3.7e13 failures — representable on
     64-bit, clamped on 32-bit; either way a valid positive integer. *)
  let v = Sample.geometric_of_u ~p:1e-12 u_max in
  check_true "extreme draw yields a valid positive integer" (v > 0 && v <= max_int);
  (* p small enough that the ratio exceeds every int range: clamps. *)
  check_int "overflowing variate clamps to max_int" max_int
    (Sample.geometric_of_u ~p:1e-18 u_max);
  (* Just inside the safe range the inversion is untouched. *)
  check_int "u=0 gives 0 failures" 0 (Sample.geometric_of_u ~p:1e-12 0.0);
  check_int "moderate draw is finite and exact" 8 (Sample.geometric_of_u ~p:0.25 0.9);
  (* p=1 succeeds immediately regardless of the draw. *)
  check_int "p=1 gives 0" 0 (Sample.geometric_of_u ~p:1.0 u_max);
  Alcotest.check_raises "u out of range"
    (Invalid_argument "Sample.geometric: need 0 <= u < 1") (fun () ->
      ignore (Sample.geometric_of_u ~p:0.5 1.0));
  (* The sampling wrapper draws from [0,1), so it inherits the clamp. *)
  let g = rng () in
  for _ = 1 to 1_000 do
    let v = Sample.geometric g ~p:1e-12 in
    check_true "sampled variate in range" (v >= 0)
  done

let test_exponential_mean () =
  let g = rng () in
  let reps = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to reps do
    sum := !sum +. Sample.exponential g ~rate:2.0
  done;
  check_float_eps 0.02 "exponential mean 1/rate" 0.5 (!sum /. float_of_int reps)

let test_exponential_validation () =
  let g = rng () in
  Alcotest.check_raises "rate 0" (Invalid_argument "Sample.exponential: rate must be positive")
    (fun () -> ignore (Sample.exponential g ~rate:0.0))

let test_gaussian_moments () =
  let g = rng () in
  let reps = 50_000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to reps do
    let v = Sample.gaussian g ~mean:2.0 ~stddev:3.0 in
    sum := !sum +. v;
    sumsq := !sumsq +. (v *. v)
  done;
  let mean = !sum /. float_of_int reps in
  let var = (!sumsq /. float_of_int reps) -. (mean *. mean) in
  check_float_eps 0.1 "gaussian mean" 2.0 mean;
  check_float_eps 0.3 "gaussian variance" 9.0 var

let test_shuffle_permutes () =
  let g = rng () in
  let a = Array.init 50 Fun.id in
  let b = Array.copy a in
  Sample.shuffle g b;
  let sorted = Array.copy b in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle is a permutation" a sorted

let test_choose () =
  let g = rng () in
  let a = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    check_true "choose picks an element" (Array.mem (Sample.choose g a) a)
  done

let prop_trichotomy_valid =
  qtest "trichotomy mass is a distribution"
    QCheck.(pair (int_range 1 10_000) (float_range 0.0 1.0))
    (fun (n, p) ->
      let z = Sample.p_zero ~n ~p and o = Sample.p_one ~n ~p and m = Sample.p_many ~n ~p in
      z >= 0.0 && o >= 0.0 && m >= 0.0 && Float.abs (z +. o +. m -. 1.0) < 1e-6)

let prop_int_in_bounds =
  qtest "Prng.int stays in bounds"
    QCheck.(pair (int_range 1 1_000_000) small_int)
    (fun (bound, seed) ->
      let g = Prng.create ~seed in
      let v = Prng.int g ~bound in
      v >= 0 && v < bound)

let suite =
  [
    ("determinism", `Quick, test_determinism);
    ("seed sensitivity", `Quick, test_seed_sensitivity);
    ("copy", `Quick, test_copy);
    ("split independence", `Quick, test_split_independence);
    ("float range", `Quick, test_float_range);
    ("float mean", `Quick, test_float_mean);
    ("int bounds", `Quick, test_int_bounds);
    ("int uniformity", `Slow, test_int_uniformity);
    ("int invalid bound", `Quick, test_int_invalid);
    ("bool extremes", `Quick, test_bool_extremes);
    ("bool frequency", `Quick, test_bool_frequency);
    ("seed_of_string stable", `Quick, test_seed_of_string_stable);
    ("trichotomy closed forms", `Quick, test_trichotomy_closed_forms);
    ("trichotomy extremes", `Quick, test_trichotomy_extremes);
    ("trichotomy sampling", `Slow, test_trichotomy_sampling_matches);
    ("trichotomy vs bernoulli sum", `Slow, test_trichotomy_vs_bernoulli_sum);
    ("binomial moments", `Slow, test_binomial_moments);
    ("binomial edges", `Quick, test_binomial_edges);
    ("binomial reflection", `Slow, test_binomial_reflection);
    ("binomial BTRS chi-square", `Slow, test_binomial_btrs_chi_square);
    ("binomial skewness", `Slow, test_binomial_skewness);
    ("binomial tail across sum boundary", `Slow, test_binomial_tail_across_sum_boundary);
    ("binomial tail across BTRS boundary", `Slow, test_binomial_tail_across_btrs_boundary);
    ("log binomial pmf", `Quick, test_log_binomial_pmf);
    prop_binomial_in_range;
    ("geometric mean", `Slow, test_geometric_mean);
    ("geometric tail clamped", `Quick, test_geometric_tail_clamped);
    ("exponential mean", `Slow, test_exponential_mean);
    ("exponential validation", `Quick, test_exponential_validation);
    ("gaussian moments", `Slow, test_gaussian_moments);
    ("shuffle permutes", `Quick, test_shuffle_permutes);
    ("choose", `Quick, test_choose);
    prop_trichotomy_valid;
    prop_int_in_bounds;
  ]
