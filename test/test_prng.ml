open Test_util

let test_determinism () =
  let a = Prng.create ~seed:123 and b = Prng.create ~seed:123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create ~seed:123 and b = Prng.create ~seed:124 in
  check_true "different seeds diverge" (Prng.bits64 a <> Prng.bits64 b)

let test_copy () =
  let a = rng () in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.bits64 a) (Prng.bits64 b)

let test_split_independence () =
  let a = rng () in
  let child = Prng.split a in
  (* The child stream should not be a shift of the parent stream. *)
  let parent_vals = Array.init 32 (fun _ -> Prng.bits64 a) in
  let child_vals = Array.init 32 (fun _ -> Prng.bits64 child) in
  check_true "split streams differ" (parent_vals <> child_vals)

let test_float_range () =
  let g = rng () in
  for _ = 1 to 10_000 do
    let f = Prng.float g in
    check_true "float in [0,1)" (f >= 0.0 && f < 1.0)
  done

let test_float_mean () =
  let g = rng () in
  let n = 100_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.float g
  done;
  check_float_eps 0.01 "mean ~ 0.5" 0.5 (!sum /. float_of_int n)

let test_int_bounds () =
  let g = rng () in
  for bound = 1 to 40 do
    for _ = 1 to 200 do
      let v = Prng.int g ~bound in
      check_true "int in range" (v >= 0 && v < bound)
    done
  done

let test_int_uniformity () =
  let g = rng () in
  let bound = 10 in
  let counts = Array.make bound 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Prng.int g ~bound in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let freq = float_of_int c /. float_of_int n in
      check_true (Printf.sprintf "bucket %d frequency %f near 0.1" i freq)
        (Float.abs (freq -. 0.1) < 0.01))
    counts

let test_int_invalid () =
  let g = rng () in
  Alcotest.check_raises "bound 0 rejected" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g ~bound:0))

let test_bool_extremes () =
  let g = rng () in
  for _ = 1 to 100 do
    check_true "p=1 always true" (Prng.bool g ~p:1.0);
    check_true "p=0 always false" (not (Prng.bool g ~p:0.0));
    check_true "p>1 clamps to true" (Prng.bool g ~p:2.0)
  done

let test_bool_frequency () =
  let g = rng () in
  let n = 50_000 in
  let c = ref 0 in
  for _ = 1 to n do
    if Prng.bool g ~p:0.3 then incr c
  done;
  check_float_eps 0.02 "P[true] ~ 0.3" 0.3 (float_of_int !c /. float_of_int n)

let test_seed_of_string_stable () =
  check_int "stable across calls" (Prng.seed_of_string "hello") (Prng.seed_of_string "hello");
  check_true "distinct strings map apart"
    (Prng.seed_of_string "cell/1" <> Prng.seed_of_string "cell/2");
  check_true "seed is non-negative" (Prng.seed_of_string "anything" >= 0)

(* --- Sample --- *)

let test_trichotomy_closed_forms () =
  (* p_zero + p_one + p_many = 1 and each matches the binomial formula. *)
  List.iter
    (fun (n, p) ->
      let z = Sample.p_zero ~n ~p and o = Sample.p_one ~n ~p and m = Sample.p_many ~n ~p in
      check_float_eps 1e-9 "mass sums to 1" 1.0 (z +. o +. m);
      let q = 1.0 -. p in
      check_float_eps 1e-9 "p_zero = q^n" (q ** float_of_int n) z;
      check_float_eps 1e-9 "p_one = npq^(n-1)"
        (float_of_int n *. p *. (q ** float_of_int (n - 1)))
        o)
    [ (1, 0.5); (2, 0.3); (10, 0.1); (100, 0.01); (1000, 0.001) ]

let test_trichotomy_extremes () =
  check_float "p=0 is Null surely" 1.0 (Sample.p_zero ~n:50 ~p:0.0);
  check_float "n=1, p=1 is Single surely" 1.0 (Sample.p_one ~n:1 ~p:1.0);
  check_float "n=3, p=1 is Collision surely" 1.0 (Sample.p_many ~n:3 ~p:1.0);
  check_float "n=0 is Null surely" 1.0 (Sample.p_zero ~n:0 ~p:0.7)

let test_trichotomy_sampling_matches () =
  let g = rng () in
  let n = 64 and p = 1.0 /. 64.0 in
  let reps = 200_000 in
  let zero = ref 0 and one = ref 0 and many = ref 0 in
  for _ = 1 to reps do
    match Sample.trichotomy g ~n ~p with
    | Sample.Zero -> incr zero
    | Sample.One -> incr one
    | Sample.Many -> incr many
  done;
  let f c = float_of_int !c /. float_of_int reps in
  check_float_eps 0.01 "empirical P[Zero]" (Sample.p_zero ~n ~p) (f zero);
  check_float_eps 0.01 "empirical P[One]" (Sample.p_one ~n ~p) (f one);
  check_float_eps 0.01 "empirical P[Many]" (Sample.p_many ~n ~p) (f many)

let test_trichotomy_vs_bernoulli_sum () =
  (* The trichotomy must match simulating stations one by one. *)
  let g = rng ~seed:99 () in
  let n = 20 and p = 0.08 in
  let reps = 100_000 in
  let counts_direct = [| 0; 0; 0 |] in
  for _ = 1 to reps do
    let c = ref 0 in
    for _ = 1 to n do
      if Prng.bool g ~p then incr c
    done;
    let idx = if !c = 0 then 0 else if !c = 1 then 1 else 2 in
    counts_direct.(idx) <- counts_direct.(idx) + 1
  done;
  let f c = float_of_int c /. float_of_int reps in
  check_float_eps 0.01 "per-station P[0] matches closed form" (Sample.p_zero ~n ~p)
    (f counts_direct.(0));
  check_float_eps 0.01 "per-station P[1] matches closed form" (Sample.p_one ~n ~p)
    (f counts_direct.(1))

let test_binomial_moments () =
  let g = rng () in
  List.iter
    (fun (n, p) ->
      let reps = 20_000 in
      let sum = ref 0.0 and sumsq = ref 0.0 in
      for _ = 1 to reps do
        let v = float_of_int (Sample.binomial g ~n ~p) in
        sum := !sum +. v;
        sumsq := !sumsq +. (v *. v)
      done;
      let mean = !sum /. float_of_int reps in
      let var = (!sumsq /. float_of_int reps) -. (mean *. mean) in
      let nf = float_of_int n in
      check_float_eps (0.05 *. Float.max 1.0 (nf *. p)) "binomial mean" (nf *. p) mean;
      check_float_eps
        (0.15 *. Float.max 1.0 (nf *. p *. (1.0 -. p)))
        "binomial variance"
        (nf *. p *. (1.0 -. p))
        var)
    [ (10, 0.5); (300, 0.01); (1000, 0.3); (100_000, 0.001) ]

let test_binomial_edges () =
  let g = rng () in
  check_int "p=0 gives 0" 0 (Sample.binomial g ~n:100 ~p:0.0);
  check_int "p=1 gives n" 100 (Sample.binomial g ~n:100 ~p:1.0);
  check_int "n=0 gives 0" 0 (Sample.binomial g ~n:0 ~p:0.5)

let test_geometric_mean () =
  let g = rng () in
  let p = 0.25 in
  let reps = 50_000 in
  let sum = ref 0 in
  for _ = 1 to reps do
    sum := !sum + Sample.geometric g ~p
  done;
  (* failures before success: mean (1-p)/p = 3 *)
  check_float_eps 0.1 "geometric mean" 3.0 (float_of_int !sum /. float_of_int reps)

let test_geometric_tail_clamped () =
  (* For tiny p and a uniform draw at the representable edge below 1 the
     inversion ratio overflows the integer range, where int_of_float is
     unspecified; the variate must clamp instead of going undefined. *)
  let u_max = Float.pred 1.0 in
  (* p = 1e-12 at the extreme draw: ~3.7e13 failures — representable on
     64-bit, clamped on 32-bit; either way a valid positive integer. *)
  let v = Sample.geometric_of_u ~p:1e-12 u_max in
  check_true "extreme draw yields a valid positive integer" (v > 0 && v <= max_int);
  (* p small enough that the ratio exceeds every int range: clamps. *)
  check_int "overflowing variate clamps to max_int" max_int
    (Sample.geometric_of_u ~p:1e-18 u_max);
  (* Just inside the safe range the inversion is untouched. *)
  check_int "u=0 gives 0 failures" 0 (Sample.geometric_of_u ~p:1e-12 0.0);
  check_int "moderate draw is finite and exact" 8 (Sample.geometric_of_u ~p:0.25 0.9);
  (* p=1 succeeds immediately regardless of the draw. *)
  check_int "p=1 gives 0" 0 (Sample.geometric_of_u ~p:1.0 u_max);
  Alcotest.check_raises "u out of range"
    (Invalid_argument "Sample.geometric: need 0 <= u < 1") (fun () ->
      ignore (Sample.geometric_of_u ~p:0.5 1.0));
  (* The sampling wrapper draws from [0,1), so it inherits the clamp. *)
  let g = rng () in
  for _ = 1 to 1_000 do
    let v = Sample.geometric g ~p:1e-12 in
    check_true "sampled variate in range" (v >= 0)
  done

let test_exponential_mean () =
  let g = rng () in
  let reps = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to reps do
    sum := !sum +. Sample.exponential g ~rate:2.0
  done;
  check_float_eps 0.02 "exponential mean 1/rate" 0.5 (!sum /. float_of_int reps)

let test_exponential_validation () =
  let g = rng () in
  Alcotest.check_raises "rate 0" (Invalid_argument "Sample.exponential: rate must be positive")
    (fun () -> ignore (Sample.exponential g ~rate:0.0))

let test_gaussian_moments () =
  let g = rng () in
  let reps = 50_000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to reps do
    let v = Sample.gaussian g ~mean:2.0 ~stddev:3.0 in
    sum := !sum +. v;
    sumsq := !sumsq +. (v *. v)
  done;
  let mean = !sum /. float_of_int reps in
  let var = (!sumsq /. float_of_int reps) -. (mean *. mean) in
  check_float_eps 0.1 "gaussian mean" 2.0 mean;
  check_float_eps 0.3 "gaussian variance" 9.0 var

let test_shuffle_permutes () =
  let g = rng () in
  let a = Array.init 50 Fun.id in
  let b = Array.copy a in
  Sample.shuffle g b;
  let sorted = Array.copy b in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle is a permutation" a sorted

let test_choose () =
  let g = rng () in
  let a = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    check_true "choose picks an element" (Array.mem (Sample.choose g a) a)
  done

let prop_trichotomy_valid =
  qtest "trichotomy mass is a distribution"
    QCheck.(pair (int_range 1 10_000) (float_range 0.0 1.0))
    (fun (n, p) ->
      let z = Sample.p_zero ~n ~p and o = Sample.p_one ~n ~p and m = Sample.p_many ~n ~p in
      z >= 0.0 && o >= 0.0 && m >= 0.0 && Float.abs (z +. o +. m -. 1.0) < 1e-6)

let prop_int_in_bounds =
  qtest "Prng.int stays in bounds"
    QCheck.(pair (int_range 1 1_000_000) small_int)
    (fun (bound, seed) ->
      let g = Prng.create ~seed in
      let v = Prng.int g ~bound in
      v >= 0 && v < bound)

let suite =
  [
    ("determinism", `Quick, test_determinism);
    ("seed sensitivity", `Quick, test_seed_sensitivity);
    ("copy", `Quick, test_copy);
    ("split independence", `Quick, test_split_independence);
    ("float range", `Quick, test_float_range);
    ("float mean", `Quick, test_float_mean);
    ("int bounds", `Quick, test_int_bounds);
    ("int uniformity", `Slow, test_int_uniformity);
    ("int invalid bound", `Quick, test_int_invalid);
    ("bool extremes", `Quick, test_bool_extremes);
    ("bool frequency", `Quick, test_bool_frequency);
    ("seed_of_string stable", `Quick, test_seed_of_string_stable);
    ("trichotomy closed forms", `Quick, test_trichotomy_closed_forms);
    ("trichotomy extremes", `Quick, test_trichotomy_extremes);
    ("trichotomy sampling", `Slow, test_trichotomy_sampling_matches);
    ("trichotomy vs bernoulli sum", `Slow, test_trichotomy_vs_bernoulli_sum);
    ("binomial moments", `Slow, test_binomial_moments);
    ("binomial edges", `Quick, test_binomial_edges);
    ("geometric mean", `Slow, test_geometric_mean);
    ("geometric tail clamped", `Quick, test_geometric_tail_clamped);
    ("exponential mean", `Slow, test_exponential_mean);
    ("exponential validation", `Quick, test_exponential_validation);
    ("gaussian moments", `Slow, test_gaussian_moments);
    ("shuffle permutes", `Quick, test_shuffle_permutes);
    ("choose", `Quick, test_choose);
    prop_trichotomy_valid;
    prop_int_in_bounds;
  ]
