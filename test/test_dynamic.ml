(* Self-healing dynamic driver (DESIGN.md §12): chained elections over
   a churning population.  The deterministic "min-id" protocol below
   makes every expectation exact — the station whose global id is
   smallest transmits first and alone, so an attempt over roster G
   elects min(G) after exactly min(G)+1 slots — which lets these tests
   pin slot-accurate traces for joins, leaves, adaptive kills, restart
   deadlines and leaderless bookkeeping. *)

open Test_util
module Dynamic = Jamming_sim.Dynamic
module Monitor = Jamming_sim.Monitor
module Churn = Jamming_faults.Churn
module E = Jamming_experiments

(* Transmits at the [id]-th slot it lives through; wins iff it hears
   its own Single.  Deterministic: no randomness at all. *)
let min_id_station ~id =
  let local = ref 0 in
  let status = ref Station.Undecided in
  let fin = ref false in
  {
    Station.id;
    decide =
      (fun ~slot:_ ->
        let t = !local in
        incr local;
        if t = id then Station.Transmit else Station.Listen);
    observe =
      (fun ~slot:_ ~perceived ~transmitted ->
        match perceived with
        | Channel.Single ->
            fin := true;
            status := (if transmitted then Station.Leader else Station.Non_leader)
        | Channel.Null | Channel.Collision -> ());
    status = (fun () -> !status);
    finished = (fun () -> !fin);
  }

let spawn_min_id ~birth:_ ~id = min_id_station ~id

let listen_forever ~id =
  {
    Station.id;
    decide = (fun ~slot:_ -> Station.Listen);
    observe = (fun ~slot:_ ~perceived:_ ~transmitted:_ -> ());
    status = (fun () -> Station.Undecided);
    finished = (fun () -> false);
  }

let born_finished ~id =
  {
    Station.id;
    decide = (fun ~slot:_ -> Station.Listen);
    observe = (fun ~slot:_ ~perceived:_ ~transmitted:_ -> ());
    status = (fun () -> Station.Non_leader);
    finished = (fun () -> true);
  }

let quiet_run ?restart_after ?events ?kill ?victim_rng ?monitor ?(max_slots = 50) ~init
    spawn =
  Dynamic.run ?restart_after ?events ?kill ?victim_rng ?monitor ~cd:Channel.Strong_cd
    ~adversary:(Adversary.none ())
    ~budget:(Budget.create ~window:4 ~eps:1.0)
    ~max_slots ~init ~spawn ()

let join at k = { Churn.at; kind = Churn.Join k }
let leave at v = { Churn.at; kind = Churn.Leave v }

(* Every result must satisfy the interval bookkeeping identity. *)
let check_intervals what (r : Dynamic.result) =
  check_int
    (what ^ ": leaderless slots are the sum of the intervals")
    r.Dynamic.leaderless_slots
    (List.fold_left ( + ) 0 r.Dynamic.leaderless_intervals)

let test_validation () =
  let expect_invalid what f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s accepted" what
  in
  expect_invalid "negative init" (fun () -> quiet_run ~init:(-1) spawn_min_id);
  expect_invalid "negative max_slots" (fun () ->
      quiet_run ~max_slots:(-1) ~init:1 spawn_min_id);
  expect_invalid "restart_after 0" (fun () ->
      quiet_run ~restart_after:0 ~init:1 spawn_min_id);
  expect_invalid "negative kill count" (fun () ->
      quiet_run ~kill:(0, -1) ~init:1 spawn_min_id);
  expect_invalid "unsorted events" (fun () ->
      quiet_run ~events:[ join 5 1; join 3 1 ] ~init:1 spawn_min_id)

let test_single_epoch_matches_engine () =
  let r = quiet_run ~init:3 spawn_min_id in
  let static =
    Engine.run ~cd:Channel.Strong_cd ~adversary:(Adversary.none ())
      ~budget:(Budget.create ~window:4 ~eps:1.0)
      ~max_slots:50
      ~stations:(Array.init 3 (fun id -> min_id_station ~id))
      ()
  in
  check_true "static run elected" static.Metrics.elected;
  check_int "one slot: station 0 transmits immediately" 1 static.Metrics.slots;
  (match r.Dynamic.epochs with
  | [ e ] ->
      check_true "sole epoch is bit-identical to the static engine"
        (Metrics.equal_result static e.Dynamic.attempt);
      check_int "epoch starts at 0" 0 e.Dynamic.start_slot;
      check_int "epoch population" 3 e.Dynamic.population;
      Alcotest.(check (option int)) "epoch leader gid" (Some 0) e.Dynamic.leader
  | es -> Alcotest.failf "expected 1 epoch, got %d" (List.length es));
  check_int "total slots" 1 r.Dynamic.total_slots;
  check_int "all slots simulated" 1 r.Dynamic.simulated_slots;
  check_int "one election" 1 r.Dynamic.elections_completed;
  check_int "no failures" 0 r.Dynamic.elections_failed;
  Alcotest.(check (list int)) "one leaderless interval" [ 1 ] r.Dynamic.leaderless_intervals;
  check_int "final population" 3 r.Dynamic.final_population;
  Alcotest.(check (option int)) "final leader" (Some 0) r.Dynamic.final_leader;
  check_intervals "single epoch" r

let test_empty_run () =
  let r = quiet_run ~init:0 spawn_min_id in
  check_int "no slots" 0 r.Dynamic.total_slots;
  check_int "no elections" 0 (r.Dynamic.elections_completed + r.Dynamic.elections_failed);
  check_true "no epochs" (r.Dynamic.epochs = []);
  check_int "empty final population" 0 r.Dynamic.final_population;
  Alcotest.(check (list int)) "no leaderless intervals" [] r.Dynamic.leaderless_intervals

let test_join_while_stable () =
  let r = quiet_run ~init:2 ~events:[ join 5 3 ] spawn_min_id in
  check_int "arrivals counted" 3 r.Dynamic.arrivals;
  check_int "joiners adopt the live leader silently" 1 r.Dynamic.elections_completed;
  check_int "run ends at the last event" 5 r.Dynamic.total_slots;
  check_int "only the election was simulated" 1 r.Dynamic.simulated_slots;
  check_int "population grew" 5 r.Dynamic.final_population;
  Alcotest.(check (option int)) "leader unchanged" (Some 0) r.Dynamic.final_leader;
  check_int "leaderless only during the election" 1 r.Dynamic.leaderless_slots;
  check_intervals "join while stable" r

let test_join_while_empty () =
  let r = quiet_run ~init:0 ~events:[ join 4 2 ] spawn_min_id in
  check_int "arrivals counted" 2 r.Dynamic.arrivals;
  check_int "election started on arrival" 1 r.Dynamic.elections_completed;
  (* Empty slots 0-3 fast-forward, then min-id 0 wins in one slot. *)
  check_int "total slots" 5 r.Dynamic.total_slots;
  check_int "one simulated slot" 1 r.Dynamic.simulated_slots;
  Alcotest.(check (option int)) "first joiner wins" (Some 0) r.Dynamic.final_leader;
  Alcotest.(check (list int)) "leaderless only while electing" [ 1 ]
    r.Dynamic.leaderless_intervals;
  check_intervals "join while empty" r

let test_leave_leader_reelects () =
  let r = quiet_run ~init:3 ~events:[ leave 4 Churn.Leader ] spawn_min_id in
  check_int "two elections completed" 2 r.Dynamic.elections_completed;
  check_int "one re-election" 1 r.Dynamic.re_elections;
  check_int "the dead leader departed" 1 r.Dynamic.departures;
  (* Epoch 1: gid 0 wins at slot 1.  Epoch 2 starts at 4 over {1, 2}:
     gid 1 transmits at its second live slot, so 2 more slots. *)
  check_int "total slots" 6 r.Dynamic.total_slots;
  check_int "simulated slots" 3 r.Dynamic.simulated_slots;
  Alcotest.(check (option int)) "survivor with smallest gid wins" (Some 1)
    r.Dynamic.final_leader;
  check_int "final population" 2 r.Dynamic.final_population;
  Alcotest.(check (list int)) "both elections were leaderless windows" [ 1; 2 ]
    r.Dynamic.leaderless_intervals;
  (match r.Dynamic.epochs with
  | [ e1; e2 ] ->
      Alcotest.(check (option int)) "epoch 1 leader" (Some 0) e1.Dynamic.leader;
      check_int "epoch 2 starts when the leader died" 4 e2.Dynamic.start_slot;
      check_int "epoch 2 population" 2 e2.Dynamic.population;
      Alcotest.(check (option int)) "epoch 2 leader" (Some 1) e2.Dynamic.leader
  | es -> Alcotest.failf "expected 2 epochs, got %d" (List.length es));
  check_intervals "leave leader" r

let test_leave_member_while_stable () =
  (* A single follower: the victim pick is deterministic, no rng needed. *)
  let r = quiet_run ~init:2 ~events:[ leave 3 Churn.Member ] spawn_min_id in
  check_int "one departure" 1 r.Dynamic.departures;
  check_int "no re-election" 0 r.Dynamic.re_elections;
  Alcotest.(check (option int)) "leader survives" (Some 0) r.Dynamic.final_leader;
  check_int "final population" 1 r.Dynamic.final_population;
  check_intervals "leave member" r

let test_member_pick_needs_rng () =
  (* Two followers: the uniform victim pick needs the seeded stream. *)
  (match quiet_run ~init:3 ~events:[ leave 3 Churn.Member ] spawn_min_id with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "victimless pick among several stations accepted");
  let r =
    quiet_run ~init:3
      ~events:[ leave 3 Churn.Member ]
      ~victim_rng:(rng ()) spawn_min_id
  in
  check_int "seeded pick applied" 1 r.Dynamic.departures;
  check_int "population shrank" 2 r.Dynamic.final_population

let test_leave_during_election_empties () =
  (* One station that needs 3 slots (global id 0 shifted by 2); the
     leader-leave lands mid-election, degrades to a member leave and
     empties the roster: the attempt fails. *)
  let spawn ~birth:_ ~id = min_id_station ~id:(id + 2) in
  let r = quiet_run ~init:1 ~events:[ leave 2 Churn.Leader ] spawn in
  check_int "no elections completed" 0 r.Dynamic.elections_completed;
  check_int "the emptied attempt failed" 1 r.Dynamic.elections_failed;
  check_int "no re-election: there was no leader" 0 r.Dynamic.re_elections;
  check_int "one departure" 1 r.Dynamic.departures;
  check_int "total slots" 2 r.Dynamic.total_slots;
  check_int "final population" 0 r.Dynamic.final_population;
  Alcotest.(check (option int)) "no leader" None r.Dynamic.final_leader;
  (match r.Dynamic.epochs with
  | [ e ] ->
      Alcotest.(check (option int)) "failed epoch has no leader" None e.Dynamic.leader;
      check_int "the partial attempt was recorded" 2 e.Dynamic.attempt.Metrics.slots
  | es -> Alcotest.failf "expected 1 epoch, got %d" (List.length es));
  check_intervals "emptied election" r

let test_leader_killer_chain () =
  let monitor = Monitor.create ~seed:1 ~window:4 ~eps:1.0 () in
  let r = quiet_run ~kill:(2, 2) ~monitor ~init:3 spawn_min_id in
  (* Elections at 0 (gid 0, 1 slot), 3 (gid 1, 2 slots), 7 (gid 2,
     3 slots); kills 2 slots after each completion. *)
  check_int "three elections" 3 r.Dynamic.elections_completed;
  check_int "both kills landed" 2 r.Dynamic.leader_kills;
  check_int "each kill forced a re-election" 2 r.Dynamic.re_elections;
  check_int "killed leaders departed" 2 r.Dynamic.departures;
  check_int "total slots" 10 r.Dynamic.total_slots;
  check_int "simulated slots" 6 r.Dynamic.simulated_slots;
  Alcotest.(check (list int)) "downtime grows as cheap leaders die" [ 1; 2; 3 ]
    r.Dynamic.leaderless_intervals;
  Alcotest.(check (option int)) "last station standing leads" (Some 2)
    r.Dynamic.final_leader;
  check_int "final population" 1 r.Dynamic.final_population;
  (* The one monitor spanned segments and gaps alike. *)
  check_int "monitor saw every wall-clock slot" r.Dynamic.total_slots
    (Monitor.slots_seen monitor);
  check_intervals "leader-killer chain" r

let test_restart_after_stall () =
  let spawn ~birth:_ ~id = listen_forever ~id in
  let r = quiet_run ~restart_after:5 ~max_slots:17 ~init:2 spawn in
  (* Deadline restarts at 5, 10, 15; the 4th attempt is truncated after
     2 slots and counts as failed too. *)
  check_int "no election ever completed" 0 r.Dynamic.elections_completed;
  check_int "three deadline restarts plus the truncated tail" 4 r.Dynamic.elections_failed;
  check_int "deadline restarts are not leader deaths" 0 r.Dynamic.re_elections;
  check_int "ran to the cap" 17 r.Dynamic.total_slots;
  check_int "every slot simulated" 17 r.Dynamic.simulated_slots;
  Alcotest.(check (list int))
    "consecutive failures merge into one leaderless interval" [ 17 ]
    r.Dynamic.leaderless_intervals;
  check_int "stations survive their incarnations" 2 r.Dynamic.final_population;
  Alcotest.(check (option int)) "never healed" None r.Dynamic.final_leader;
  check_int "four epochs" 4 (List.length r.Dynamic.epochs);
  List.iter
    (fun (e : Dynamic.epoch) ->
      Alcotest.(check (option int)) "every epoch failed" None e.Dynamic.leader)
    r.Dynamic.epochs;
  check_intervals "restart stall" r

let test_zero_slot_attempts_terminate () =
  (* Every incarnation is born finished: each attempt completes in zero
     slots without a leader.  The driver must burn an idle slot per
     restart instead of livelocking at slot 0. *)
  let spawn ~birth:_ ~id = born_finished ~id in
  let r = quiet_run ~max_slots:5 ~init:2 spawn in
  check_int "bounded by max_slots" 5 r.Dynamic.total_slots;
  check_int "one failure per burned slot" 5 r.Dynamic.elections_failed;
  check_int "nothing simulated" 0 r.Dynamic.simulated_slots;
  check_int "population intact" 2 r.Dynamic.final_population;
  check_intervals "zero-slot attempts" r

let test_json_roundtrip () =
  let r =
    quiet_run ~kill:(2, 2)
      ~events:[ join 2 1; leave 9 Churn.Member ]
      ~victim_rng:(rng ()) ~init:3 spawn_min_id
  in
  (match Dynamic.result_of_json (Dynamic.result_to_json r) with
  | Ok r' -> check_true "round-trips bit-identically" (Dynamic.equal_result r r')
  | Error e -> Alcotest.failf "decode failed: %s" e);
  (* Defensive decode: malformed documents are errors, not exceptions. *)
  List.iter
    (fun j ->
      match Dynamic.result_of_json j with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "decoded a malformed document")
    [
      Jamming_telemetry.Json.Null;
      Jamming_telemetry.Json.Obj [ ("total_slots", Jamming_telemetry.Json.String "x") ];
    ]

let test_of_static_shape () =
  let elected =
    {
      Metrics.slots = 7;
      completed = true;
      elected = true;
      leader = Some 2;
      statuses = [| Station.Non_leader; Station.Non_leader; Station.Leader |];
      jammed_slots = 1;
      nulls = 4;
      singles = 1;
      collisions = 2;
      transmissions = 5.0;
      max_station_transmissions = 3;
      energy = None;
    }
  in
  let d = Dynamic.of_static elected in
  check_int "one completed election" 1 d.Dynamic.elections_completed;
  check_int "no failures" 0 d.Dynamic.elections_failed;
  check_int "slots carried over" 7 d.Dynamic.total_slots;
  Alcotest.(check (option int)) "leader carried over" (Some 2) d.Dynamic.final_leader;
  Alcotest.(check (list int)) "the whole run was leaderless" [ 7 ]
    d.Dynamic.leaderless_intervals;
  check_int "population from statuses" 3 d.Dynamic.final_population;
  check_intervals "of_static elected" d;
  let truncated = { elected with Metrics.completed = false; elected = false; leader = None } in
  let d = Dynamic.of_static truncated in
  check_int "truncated run counts one failure" 1 d.Dynamic.elections_failed;
  Alcotest.(check (option int)) "no leader" None d.Dynamic.final_leader

(* --- Runner integration: the zero-churn bit-identity guarantee --- *)

let setup = { E.Runner.n = 16; eps = 0.5; window = 16; max_slots = 50_000 }

let engines =
  [
    ("uniform", E.Runner.Uniform (E.Specs.lesk ~eps:0.5));
    ( "exact",
      E.Runner.Exact
        {
          name = "LESK-exact";
          cd = Channel.Strong_cd;
          factory = Jamming_core.Lesk.station ~eps:0.5;
        } );
    ( "faulty",
      E.Runner.Faulty
        {
          name = "LESK-faulty";
          cd = Channel.Strong_cd;
          factory = Jamming_core.Lesk.station ~eps:0.5;
          faults =
            {
              Jamming_faults.Config.perception = Jamming_faults.Perception.uniform ~p:0.05;
              p_crash = 0.0;
              crash_horizon = 1;
              p_sleep = 0.0;
              sleep_horizon = 1;
              max_sleep = 1;
              p_late_wake = 0.0;
              max_wake_delay = 1;
            };
          monitor_checks = None;
        } );
  ]

let test_null_churn_is_the_static_run () =
  List.iter
    (fun (what, engine) ->
      let static = E.Runner.run ~engine setup E.Specs.greedy ~seed:7 in
      let churned =
        E.Runner.run_churn ~engine ~churn:Churn.none setup E.Specs.greedy ~seed:7
      in
      check_true
        (what ^ ": null churn is bit-identical to the static engine")
        (Dynamic.equal_result (Dynamic.of_static static) churned))
    engines

let test_runner_churn_deterministic () =
  let engine = List.assoc "exact" engines in
  let churn = Churn.Leader_killer { grace = 20; max_kills = 2 } in
  let go () = E.Runner.run_churn ~engine ~churn setup E.Specs.no_jamming ~seed:3 in
  let r = go () in
  check_true "same seed, same dynamic run" (Dynamic.equal_result r (go ()));
  check_int "both kills landed" 2 r.Dynamic.leader_kills;
  check_int "the chain healed every time" 3 r.Dynamic.elections_completed;
  check_true "run healed" (r.Dynamic.final_leader <> None);
  check_int "killed leaders departed" 2 r.Dynamic.departures;
  check_intervals "killer over LESK" r

let test_runner_churn_rate_accounting () =
  let engine = List.assoc "exact" engines in
  let churn =
    Churn.Rate { every = 64; p_join = 0.5; p_leave = 0.5; max_burst = 2; horizon = 4096 }
  in
  let r = E.Runner.run_churn ~engine ~churn setup E.Specs.no_jamming ~seed:5 in
  check_true "rates this high produce churn" (r.Dynamic.arrivals + r.Dynamic.departures > 0);
  check_int "books balance"
    (setup.E.Runner.n + r.Dynamic.arrivals - r.Dynamic.departures)
    r.Dynamic.final_population;
  check_intervals "rate churn over LESK" r;
  (* Adding churn must not perturb the static streams: the first epoch
     starts exactly like the churn-free run (same station seeds). *)
  let static = E.Runner.run ~engine setup E.Specs.no_jamming ~seed:5 in
  match r.Dynamic.epochs with
  | e :: _ ->
      check_true "first attempt starts from the static seeds"
        (e.Dynamic.start_slot = 0 && e.Dynamic.population = setup.E.Runner.n);
      (* If no churn event landed before the first election completed,
         the whole first epoch is the static run. *)
      if e.Dynamic.attempt.Metrics.slots < 64 then
        check_true "early first epoch is bit-identical to static"
          (Metrics.equal_result static e.Dynamic.attempt)
  | [] -> Alcotest.fail "rate churn run produced no epochs"

let suite =
  [
    ("argument validation", `Quick, test_validation);
    ("single epoch matches the engine", `Quick, test_single_epoch_matches_engine);
    ("empty run", `Quick, test_empty_run);
    ("join while stable", `Quick, test_join_while_stable);
    ("join while empty", `Quick, test_join_while_empty);
    ("leave leader re-elects", `Quick, test_leave_leader_reelects);
    ("leave member while stable", `Quick, test_leave_member_while_stable);
    ("member pick needs the victim stream", `Quick, test_member_pick_needs_rng);
    ("leave during election empties the roster", `Quick, test_leave_during_election_empties);
    ("leader-killer chain", `Quick, test_leader_killer_chain);
    ("restart after a stall", `Quick, test_restart_after_stall);
    ("zero-slot attempts terminate", `Quick, test_zero_slot_attempts_terminate);
    ("json round-trip", `Quick, test_json_roundtrip);
    ("of_static shape", `Quick, test_of_static_shape);
    ("null churn is the static run", `Quick, test_null_churn_is_the_static_run);
    ("runner churn deterministic", `Quick, test_runner_churn_deterministic);
    ("runner rate churn accounting", `Quick, test_runner_churn_rate_accounting);
  ]
