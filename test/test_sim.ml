open Test_util

(* A station driven by a fixed script of actions; terminates when the
   script runs out. *)
let scripted ?(status = Station.Non_leader) script ~id ~rng:_ =
  let step = ref 0 in
  {
    Station.id;
    decide =
      (fun ~slot:_ ->
        let a = script.(!step) in
        incr step;
        a);
    observe = (fun ~slot:_ ~perceived:_ ~transmitted:_ -> ());
    status = (fun () -> if !step >= Array.length script then status else Station.Undecided);
    finished = (fun () -> !step >= Array.length script);
  }

let t = Station.Transmit
let l = Station.Listen

let test_exact_engine_states () =
  (* Two stations with known scripts; record what the channel did. *)
  let states = ref [] in
  let factory ~id ~rng =
    let scripts = [| [| t; l; t; l |]; [| l; l; t; l |] |] in
    scripted scripts.(id) ~id ~rng
  in
  let rng = rng () in
  let stations = Engine.make_stations ~n:2 ~rng factory in
  let budget = Budget.create ~window:4 ~eps:1.0 in
  let result =
    Engine.run
      ~observers:
        [ Jamming_sim.Observer.of_on_slot (fun r -> states := r.Metrics.state :: !states) ]
      ~cd:Channel.Strong_cd ~adversary:(Adversary.none ()) ~budget ~max_slots:100 ~stations ()
  in
  Alcotest.(check (list state_testable))
    "slot states follow the scripts"
    [ Channel.Single; Channel.Null; Channel.Collision; Channel.Null ]
    (List.rev !states);
  check_int "four slots" 4 result.Metrics.slots;
  check_true "completed" result.Metrics.completed;
  check_int "singles counted" 1 result.Metrics.singles;
  check_int "nulls counted" 2 result.Metrics.nulls;
  check_int "collisions counted" 1 result.Metrics.collisions;
  check_float "transmissions counted" 3.0 result.Metrics.transmissions;
  check_int "max per-station tx" 2 result.Metrics.max_station_transmissions

let test_exact_engine_max_slots () =
  (* A station that never finishes. *)
  let factory ~id ~rng:_ =
    {
      Station.id;
      decide = (fun ~slot:_ -> Station.Listen);
      observe = (fun ~slot:_ ~perceived:_ ~transmitted:_ -> ());
      status = (fun () -> Station.Undecided);
      finished = (fun () -> false);
    }
  in
  let rng = rng () in
  let stations = Engine.make_stations ~n:3 ~rng factory in
  let budget = Budget.create ~window:4 ~eps:0.5 in
  let result =
    Engine.run ~cd:Channel.Strong_cd ~adversary:(Adversary.none ()) ~budget ~max_slots:57
      ~stations ()
  in
  check_int "stopped at cap" 57 result.Metrics.slots;
  check_true "not completed" (not result.Metrics.completed);
  check_true "not elected" (not result.Metrics.elected)

let test_jam_turns_single_into_collision () =
  (* One lone transmitter + greedy jammer with a permissive budget: the
     observed state is Collision while jams last. *)
  let states = ref [] in
  let factory ~id ~rng:_ = scripted [| t; t; t; t |] ~id ~rng:(rng ()) in
  let rng2 = rng () in
  let stations = Engine.make_stations ~n:1 ~rng:rng2 factory in
  let budget = Budget.create ~window:4 ~eps:0.5 in
  let result =
    Engine.run
      ~observers:
        [
          Jamming_sim.Observer.of_on_slot (fun r ->
              states := (r.Metrics.jammed, r.Metrics.state) :: !states);
        ]
      ~cd:Channel.Strong_cd
      ~adversary:(Adversary.greedy ())
      ~budget ~max_slots:100 ~stations ()
  in
  (match List.rev !states with
  | (true, Channel.Collision) :: (true, Channel.Collision) :: (false, Channel.Single) :: _ ->
      ()
  | other ->
      Alcotest.failf "unexpected jam pattern (%d records)" (List.length other));
  check_int "two jams charged" 2 result.Metrics.jammed_slots

let test_budget_violations_impossible () =
  (* Even an adversary that always says yes cannot exceed the budget. *)
  let factory ~id ~rng:_ = scripted (Array.make 200 l) ~id ~rng:(rng ()) in
  let rng2 = rng () in
  let stations = Engine.make_stations ~n:2 ~rng:rng2 factory in
  let budget = Budget.create ~window:8 ~eps:0.25 in
  let result =
    Engine.run ~cd:Channel.Strong_cd
      ~adversary:(Adversary.greedy ())
      ~budget ~max_slots:200 ~stations ()
  in
  check_true "jammed at most (1-eps) fraction plus slack"
    (float_of_int result.Metrics.jammed_slots <= (0.75 *. 200.0) +. 8.0)

let test_election_ok () =
  let mk statuses completed =
    {
      Metrics.slots = 10;
      completed;
      elected = completed;
      leader = None;
      statuses;
      jammed_slots = 0;
      nulls = 0;
      singles = 0;
      collisions = 0;
      transmissions = 0.0;
      max_station_transmissions = 0;
      energy = None;
    }
  in
  check_true "single leader ok"
    (Metrics.election_ok (mk [| Station.Leader; Station.Non_leader |] true));
  check_true "two leaders bad"
    (not (Metrics.election_ok (mk [| Station.Leader; Station.Leader |] true)));
  check_true "undecided bad"
    (not (Metrics.election_ok (mk [| Station.Leader; Station.Undecided |] true)));
  check_true "no leader bad"
    (not (Metrics.election_ok (mk [| Station.Non_leader; Station.Non_leader |] true)));
  check_true "incomplete bad"
    (not (Metrics.election_ok (mk [| Station.Leader; Station.Non_leader |] false)))

(* --- active-set engine vs reference oracle --- *)

module Observer = Jamming_sim.Observer
module Config = Jamming_faults.Config
module Perception = Jamming_faults.Perception
module Injection = Jamming_faults.Injection

let test_timeout_with_standing_leader () =
  (* Station 0 crowns itself immediately but nobody ever finishes: the
     run hits max_slots with exactly one standing leader.  The result
     must NOT claim a leader for an election that never completed. *)
  let factory ~id ~rng:_ =
    {
      Station.id;
      decide = (fun ~slot:_ -> Station.Listen);
      observe = (fun ~slot:_ ~perceived:_ ~transmitted:_ -> ());
      status = (fun () -> if id = 0 then Station.Leader else Station.Undecided);
      finished = (fun () -> false);
    }
  in
  let active ~cd ~adversary ~budget ~max_slots ~stations () =
    Engine.run ~cd ~adversary ~budget ~max_slots ~stations ()
  in
  let oracle ~cd ~adversary ~budget ~max_slots ~stations () =
    Engine.run_reference ~cd ~adversary ~budget ~max_slots ~stations ()
  in
  let go run =
    let stations = Engine.make_stations ~n:3 ~rng:(rng ()) factory in
    run ~cd:Channel.Strong_cd ~adversary:(Adversary.none ())
      ~budget:(Budget.create ~window:4 ~eps:0.5) ~max_slots:5 ~stations ()
  in
  List.iter
    (fun (name, run) ->
      let r = go run in
      check_true (name ^ ": not completed") (not r.Metrics.completed);
      check_true (name ^ ": not elected") (not r.Metrics.elected);
      check_true (name ^ ": no leader reported") (r.Metrics.leader = None);
      Alcotest.check status_testable
        (name ^ ": the standing status is still visible")
        Station.Leader r.Metrics.statuses.(0))
    [ ("active-set", active); ("reference", oracle) ]

(* One run through either engine entry point, everything rebuilt from
   the seed: stations, adversary, budget, fault plans and sensing noise
   (mirroring Runner's dedicated fault streams), plus a needs_leaders
   observer logging every slot record and leader count. *)
let run_active ?faults ~observers ~cd ~adversary ~budget ~max_slots ~stations () =
  Engine.run ?faults ~observers ~cd ~adversary ~budget ~max_slots ~stations ()

let run_oracle ?faults ~observers ~cd ~adversary ~budget ~max_slots ~stations () =
  Engine.run_reference ?faults ~observers ~cd ~adversary ~budget ~max_slots ~stations ()

let equivalence_run engine_run ~seed ~n ~faulty factory =
  let log = ref [] in
  let recording =
    Observer.make ~name:"rec" ~needs_leaders:true
      ~on_slot:(fun r ~leaders ->
        log :=
          (r.Metrics.slot, r.Metrics.transmitters, r.Metrics.jammed, r.Metrics.state, leaders)
          :: !log)
      ()
  in
  let g = Prng.create ~seed in
  let stations = Engine.make_stations ~n ~rng:g factory in
  let stations, faults =
    if not faulty then (stations, None)
    else begin
      let cfg =
        {
          Config.perception = Perception.uniform ~p:0.2;
          p_crash = 0.3;
          crash_horizon = 500;
          p_sleep = 0.3;
          sleep_horizon = 200;
          max_sleep = 40;
          p_late_wake = 0.3;
          max_wake_delay = 10;
        }
      in
      let plans =
        Config.sample_plans cfg ~rng:(Prng.create ~seed:(seed lxor 0x9e3779b9)) ~n
      in
      let injection =
        Injection.create ~noise:cfg.Config.perception
          ~rng:(Prng.create ~seed:(seed lxor 0x85ebca6b))
      in
      (Config.wrap_stations plans stations, Some injection)
    end
  in
  let budget = Budget.create ~window:16 ~eps:0.5 in
  let result =
    engine_run ?faults ~observers:[ recording ] ~cd:Channel.Strong_cd
      ~adversary:(Adversary.greedy ()) ~budget ~max_slots:50_000 ~stations ()
  in
  (result, List.rev !log)

let prop_active_set_matches_reference =
  qtest ~count:40
    "active-set engine bit-identical to reference (faults, observers, leader counts)"
    QCheck.(triple (int_range 2 40) small_int bool)
    (fun (n, seed, faulty) ->
      let r, log =
        equivalence_run run_active ~seed ~n ~faulty (Jamming_core.Lesk.station ~eps:0.5)
      in
      let r', log' =
        equivalence_run run_oracle ~seed ~n ~faulty (Jamming_core.Lesk.station ~eps:0.5)
      in
      Metrics.equal_result r r' && log = log')

let test_active_set_matches_reference_staggered () =
  (* Heterogeneous early finishers: station i retires after i+1 slots,
     so the active set shrinks every slot while the reference still
     scans all n.  Statuses flip to Non_leader exactly at retirement,
     exercising the incremental leader-count bookkeeping on every
     transition. *)
  let staggered ~id ~rng:_ =
    let steps = ref 0 in
    {
      Station.id;
      decide =
        (fun ~slot:_ ->
          incr steps;
          if !steps = id + 1 then Station.Transmit else Station.Listen);
      observe = (fun ~slot:_ ~perceived:_ ~transmitted:_ -> ());
      status = (fun () -> if !steps > id then Station.Non_leader else Station.Undecided);
      finished = (fun () -> !steps > id);
    }
  in
  List.iter
    (fun seed ->
      let r, log = equivalence_run run_active ~seed ~n:32 ~faulty:false staggered in
      let r', log' = equivalence_run run_oracle ~seed ~n:32 ~faulty:false staggered in
      check_true "results identical" (Metrics.equal_result r r');
      check_true "slot logs identical" (log = log');
      check_int "all stations retired" 32 r.Metrics.slots)
    [ 1; 2; 3 ]

(* --- uniform engine --- *)

let constant_p p () =
  {
    Uniform.name = "const";
    tx_prob = (fun () -> p);
    on_state =
      (fun state ->
        if Channel.equal_state state Channel.Single then Uniform.Elected else Uniform.Continue);
  }

let test_uniform_engine_many_is_lower_bound () =
  (* p = 1 with n >= 2: every slot lands in the Many trichotomy class.
     Only the class is sampled, so the record must say "at least 2"
     rather than fabricate an exact 2 — and the monitor's consistency
     check must accept the honest encoding. *)
  let records = ref [] in
  let mon = Jamming_sim.Monitor.create ~window:4 ~eps:0.5 () in
  let obs =
    Observer.make ~name:"rec" ~on_slot:(fun r ~leaders:_ -> records := r :: !records) ()
  in
  let g = rng () in
  let budget = Budget.create ~window:4 ~eps:0.5 in
  let (_ : Metrics.result) =
    Uniform_engine.run
      ~observers:[ Jamming_sim.Monitor.observer mon; obs ]
      ~n:8 ~rng:g ~protocol:(constant_p 1.0 ()) ~adversary:(Adversary.none ()) ~budget
      ~max_slots:5 ()
  in
  check_int "five slots recorded" 5 (List.length !records);
  check_true "every Many slot is recorded as >=2"
    (List.for_all
       (fun r -> Metrics.equal_tx_count r.Metrics.transmitters (Metrics.At_least 2))
       !records);
  check_int "monitor accepted every record" 5 (Jamming_sim.Monitor.slots_seen mon);
  (* The 0 and 1 classes stay exact. *)
  let records0 = ref [] in
  let (_ : Metrics.result) =
    Uniform_engine.run
      ~observers:[ Observer.of_on_slot (fun r -> records0 := r :: !records0) ]
      ~n:8 ~rng:g ~protocol:(constant_p 0.0 ()) ~adversary:(Adversary.none ()) ~budget
      ~max_slots:3 ()
  in
  check_true "Zero class stays Exact 0"
    (List.for_all
       (fun r -> Metrics.equal_tx_count r.Metrics.transmitters (Metrics.Exact 0))
       !records0)

let test_uniform_engine_elects () =
  let result = run_uniform ~n:64 (constant_p (1.0 /. 64.0)) in
  check_true "elected" result.Metrics.elected;
  check_true "leader id in range"
    (match result.Metrics.leader with Some i -> i >= 0 && i < 64 | None -> false);
  check_int "one single" 1 result.Metrics.singles

let test_uniform_engine_p_zero_never_elects () =
  let result = run_uniform ~n:16 ~max_slots:500 (constant_p 0.0) in
  check_true "never elects at p=0" (not result.Metrics.elected);
  check_int "all slots Null" 500 result.Metrics.nulls

let test_uniform_engine_rejects_bad_p () =
  Alcotest.check_raises "p > 1 rejected"
    (Invalid_argument "Uniform_engine.run: protocol emitted a probability outside [0, 1]")
    (fun () -> ignore (run_uniform ~n:4 ~max_slots:5 (constant_p 1.5)))

let test_uniform_engine_energy_expectation () =
  let result = run_uniform ~n:100 ~max_slots:50 (constant_p 0.0) in
  check_float "zero expected energy at p=0" 0.0 result.Metrics.transmissions;
  let r2 = run_uniform ~n:10 ~max_slots:1 (constant_p 0.5) in
  check_float "energy = n*p per slot" 5.0 r2.Metrics.transmissions

let test_uniform_engine_determinism () =
  let r1 = run_uniform ~seed:11 ~n:256 (constant_p 0.01) in
  let r2 = run_uniform ~seed:11 ~n:256 (constant_p 0.01) in
  check_int "same slots for same seed" r1.Metrics.slots r2.Metrics.slots;
  let r3 = run_uniform ~seed:12 ~n:256 (constant_p 0.01) in
  ignore r3

let test_engines_agree_on_means () =
  (* LESK at small n: means of both engines within 20%. *)
  let reps = 120 in
  let eps = 0.5 in
  let sum_fast = ref 0.0 and sum_exact = ref 0.0 in
  for i = 1 to reps do
    let rf = run_uniform ~seed:(1000 + i) ~n:16 (Jamming_core.Lesk.uniform ~eps) in
    sum_fast := !sum_fast +. float_of_int rf.Metrics.slots;
    let re = run_exact ~seed:(2000 + i) ~n:16 (Jamming_core.Lesk.station ~eps) in
    sum_exact := !sum_exact +. float_of_int re.Metrics.slots
  done;
  let mf = !sum_fast /. float_of_int reps and me = !sum_exact /. float_of_int reps in
  check_true
    (Printf.sprintf "engine means agree (fast %.1f vs exact %.1f)" mf me)
    (mf /. me < 1.25 && me /. mf < 1.25)

let test_to_station_shared_logic () =
  (* Uniform.to_station shares ONE logic across all stations (advanced by
     whichever observes the slot first): election semantics must match
     the distributed adapter in strong-CD. *)
  let shared = (Jamming_core.Lesk.uniform ~eps:0.5) () in
  let factory = Uniform.to_station shared in
  let rng = rng ~seed:31 () in
  let stations = Engine.make_stations ~n:16 ~rng factory in
  let budget = Budget.create ~window:16 ~eps:0.5 in
  let result =
    Engine.run ~cd:Channel.Strong_cd ~adversary:(Adversary.greedy ()) ~budget
      ~max_slots:100_000 ~stations ()
  in
  check_true "shared-logic adapter elects" (Metrics.election_ok result)

let test_metrics_pp () =
  let r =
    {
      Metrics.slots = 42;
      completed = true;
      elected = true;
      leader = Some 7;
      statuses = [||];
      jammed_slots = 10;
      nulls = 5;
      singles = 1;
      collisions = 36;
      transmissions = 99.5;
      max_station_transmissions = 3;
      energy = None;
    }
  in
  let s = Format.asprintf "%a" Metrics.pp_result r in
  check_true "mentions slot count" (String.length s > 0);
  let r2 = { r with Metrics.completed = false; leader = None } in
  let s2 = Format.asprintf "%a" Metrics.pp_result r2 in
  check_true "mentions the cap" (String.length s2 > String.length "slots: 42")

let test_start_slot_offsets_adversary_view () =
  let seen = ref [] in
  let adv =
    Adversary.stateful ~name:"recorder"
      ~init:(fun () -> ())
      ~wants:(fun () ~slot ~can_jam:_ ->
        seen := slot :: !seen;
        false)
      ~notify:(fun () ~slot:_ ~jammed:_ ~state:_ -> ())
  in
  let rng = rng () in
  let budget = Budget.create ~window:4 ~eps:0.5 in
  let (_ : Metrics.result) =
    Uniform_engine.run ~start_slot:100 ~n:4 ~rng ~protocol:(constant_p 0.0 ())
      ~adversary:(adv ()) ~budget ~max_slots:3 ()
  in
  Alcotest.(check (list int)) "adversary sees offset slots" [ 102; 101; 100 ] !seen

let prop_uniform_engine_accounting =
  qtest ~count:60 "uniform engine: counters partition the slots, jams read Collision"
    QCheck.(triple (int_range 1 2048) (float_range 0.1 1.0) small_int)
    (fun (n, eps, seed) ->
      let g = Prng.create ~seed in
      let budget = Budget.create ~window:16 ~eps in
      let r =
        Uniform_engine.run ~n ~rng:g
          ~protocol:(Jamming_core.Lesk.uniform ~eps ())
          ~adversary:(Adversary.greedy ()) ~budget ~max_slots:200_000 ()
      in
      r.Metrics.nulls + r.Metrics.singles + r.Metrics.collisions = r.Metrics.slots
      && r.Metrics.jammed_slots <= r.Metrics.collisions
      && r.Metrics.singles <= 1
      && r.Metrics.transmissions >= 0.0)

let prop_exact_engine_accounting =
  qtest ~count:25 "exact engine: counters partition the slots"
    QCheck.(pair (int_range 2 24) small_int)
    (fun (n, seed) ->
      let g = Prng.create ~seed in
      let stations = Engine.make_stations ~n ~rng:g (Jamming_core.Lesk.station ~eps:0.5) in
      let budget = Budget.create ~window:16 ~eps:0.5 in
      let r =
        Engine.run ~cd:Channel.Strong_cd
          ~adversary:(Adversary.greedy ())
          ~budget ~max_slots:200_000 ~stations ()
      in
      r.Metrics.nulls + r.Metrics.singles + r.Metrics.collisions = r.Metrics.slots
      && r.Metrics.jammed_slots <= r.Metrics.collisions
      && float_of_int r.Metrics.max_station_transmissions <= r.Metrics.transmissions
      && Metrics.election_ok r)

let suite =
  [
    ("exact engine resolves scripts", `Quick, test_exact_engine_states);
    ("exact engine honors max_slots", `Quick, test_exact_engine_max_slots);
    ("jamming masks a Single", `Quick, test_jam_turns_single_into_collision);
    ("budget clamps greedy jamming", `Quick, test_budget_violations_impossible);
    ("election_ok postconditions", `Quick, test_election_ok);
    ("timeout with standing leader reports none", `Quick, test_timeout_with_standing_leader);
    prop_active_set_matches_reference;
    ("active set matches reference on staggered finishers", `Quick,
      test_active_set_matches_reference_staggered);
    ("uniform engine elects", `Quick, test_uniform_engine_elects);
    ("uniform engine Many class is a lower bound", `Quick,
      test_uniform_engine_many_is_lower_bound);
    ("uniform engine p=0", `Quick, test_uniform_engine_p_zero_never_elects);
    ("uniform engine validates p", `Quick, test_uniform_engine_rejects_bad_p);
    ("uniform engine energy", `Quick, test_uniform_engine_energy_expectation);
    ("uniform engine determinism", `Quick, test_uniform_engine_determinism);
    ("engines agree on LESK means", `Slow, test_engines_agree_on_means);
    prop_uniform_engine_accounting;
    prop_exact_engine_accounting;
    ("to_station shared-logic adapter", `Quick, test_to_station_shared_logic);
    ("metrics pretty-printer", `Quick, test_metrics_pp);
    ("start_slot offsets slots", `Quick, test_start_slot_offsets_adversary_view);
  ]
