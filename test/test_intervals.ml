module Intervals = Jamming_core.Intervals
open Test_util

let test_idle_slots () =
  for slot = 0 to 2 do
    match Intervals.classify slot with
    | Intervals.Idle -> ()
    | c -> Alcotest.failf "slot %d should be idle, got %a" slot Intervals.pp c
  done

let test_negative_rejected () =
  Alcotest.check_raises "negative slot" (Invalid_argument "Intervals.classify: negative slot")
    (fun () -> ignore (Intervals.classify (-1)))

let test_first_generation () =
  (* i=1: C1 = {3,4}, C2 = {5,6}, C3 = {7,8}. *)
  let expect slot cls =
    let got = Intervals.classify slot in
    if got <> cls then Alcotest.failf "slot %d: got %a" slot Intervals.pp got
  in
  expect 3 (Intervals.C1 { generation = 1; offset = 0 });
  expect 4 (Intervals.C1 { generation = 1; offset = 1 });
  expect 5 (Intervals.C2 { generation = 1; offset = 0 });
  expect 6 (Intervals.C2 { generation = 1; offset = 1 });
  expect 7 (Intervals.C3 { generation = 1; offset = 0 });
  expect 8 (Intervals.C3 { generation = 1; offset = 1 });
  expect 9 (Intervals.C1 { generation = 2; offset = 0 })

let test_paper_formulas () =
  (* The paper defines C^i_j in 1-indexed slot arithmetic starting at
     3*2^i - 3; check the closed forms for several generations. *)
  for i = 1 to 10 do
    let start = Intervals.generation_start i in
    check_int "start formula" ((3 * (1 lsl i)) - 3) start;
    check_int "size formula" (1 lsl i) (Intervals.generation_size i);
    (match Intervals.classify start with
    | Intervals.C1 { generation; offset } ->
        check_int "C1 generation" i generation;
        check_int "C1 offset" 0 offset
    | c -> Alcotest.failf "generation %d start: got %a" i Intervals.pp c);
    let c2_start = start + (1 lsl i) in
    (match Intervals.classify c2_start with
    | Intervals.C2 { generation; offset } ->
        check_int "C2 generation" i generation;
        check_int "C2 offset" 0 offset
    | c -> Alcotest.failf "generation %d C2 start: got %a" i Intervals.pp c);
    let c3_end = start + (3 * (1 lsl i)) - 1 in
    match Intervals.classify c3_end with
    | Intervals.C3 { generation; offset } ->
        check_int "C3 generation" i generation;
        check_int "C3 last offset" ((1 lsl i) - 1) offset
    | c -> Alcotest.failf "generation %d C3 end: got %a" i Intervals.pp c
  done

let test_partition () =
  (* Every slot in [3, N) belongs to exactly one (generation, family,
     offset) and they tile contiguously. *)
  let last = ref (-1, 0, -1) in
  for slot = 3 to 3000 do
    let gen, fam, off =
      match Intervals.classify slot with
      | Intervals.C1 { generation; offset } -> (generation, 0, offset)
      | Intervals.C2 { generation; offset } -> (generation, 1, offset)
      | Intervals.C3 { generation; offset } -> (generation, 2, offset)
      | Intervals.Idle -> Alcotest.failf "slot %d unexpectedly idle" slot
    in
    check_true "offset in range" (off >= 0 && off < Intervals.generation_size gen);
    (let pg, pf, po = !last in
     if pg >= 0 then
       let contiguous =
         (gen = pg && fam = pf && off = po + 1)
         || (gen = pg && fam = pf + 1 && off = 0 && po = Intervals.generation_size pg - 1)
         || (gen = pg + 1 && pf = 2 && fam = 0 && off = 0 && po = Intervals.generation_size pg - 1)
       in
       check_true (Printf.sprintf "tiling at slot %d" slot) contiguous);
    last := (gen, fam, off)
  done

let prop_classify_consistent =
  qtest ~count:500 "classify round-trips through the interval formulas"
    QCheck.(int_range 3 10_000_000)
    (fun slot ->
      match Intervals.classify slot with
      | Intervals.Idle -> false
      | Intervals.C1 { generation; offset } ->
          slot = Intervals.generation_start generation + offset
      | Intervals.C2 { generation; offset } ->
          slot = Intervals.generation_start generation + Intervals.generation_size generation + offset
      | Intervals.C3 { generation; offset } ->
          slot
          = Intervals.generation_start generation
            + (2 * Intervals.generation_size generation)
            + offset)

let test_cursor_sequential () =
  (* The hot-path cursor must agree with [classify] on a sequential slot
     walk — the pattern the pool engine drives it with. *)
  let c = Intervals.cursor () in
  for slot = 0 to 50_000 do
    Intervals.locate c slot;
    if Intervals.to_class c <> Intervals.classify slot then
      Alcotest.failf "cursor diverges from classify at slot %d" slot
  done

let prop_cursor_random_jumps =
  qtest ~count:300 "cursor ≡ classify under arbitrary jump sequences"
    QCheck.(list_of_size Gen.(1 -- 60) (int_range 0 5_000_000))
    (fun slots ->
      let c = Intervals.cursor () in
      List.for_all
        (fun slot ->
          Intervals.locate c slot;
          Intervals.to_class c = Intervals.classify slot)
        slots)

let test_cursor_negative_rejected () =
  let c = Intervals.cursor () in
  Alcotest.check_raises "negative slot"
    (Invalid_argument "Intervals.locate: negative slot")
    (fun () -> Intervals.locate c (-1))

let suite =
  [
    ("slots 0-2 are idle", `Quick, test_idle_slots);
    ("cursor tracks classify sequentially", `Quick, test_cursor_sequential);
    prop_cursor_random_jumps;
    ("cursor rejects negative slots", `Quick, test_cursor_negative_rejected);
    ("negative slots rejected", `Quick, test_negative_rejected);
    ("first generation layout", `Quick, test_first_generation);
    ("paper formulas", `Quick, test_paper_formulas);
    ("partition tiles [3, N)", `Quick, test_partition);
    prop_classify_consistent;
  ]
