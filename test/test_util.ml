(* Shared helpers for the test suite. *)

module Prng = Jamming_prng.Prng
module Sample = Jamming_prng.Sample
module Channel = Jamming_channel.Channel
module Budget = Jamming_adversary.Budget
module Adversary = Jamming_adversary.Adversary
module Station = Jamming_station.Station
module Uniform = Jamming_station.Uniform
module Metrics = Jamming_sim.Metrics
module Engine = Jamming_sim.Engine
module Uniform_engine = Jamming_sim.Uniform_engine

let rng ?(seed = 20260706) () = Prng.create ~seed

let check_float = Alcotest.(check (float 1e-9))
let check_float_eps eps = Alcotest.(check (float eps))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_true msg b = check_bool msg true b

let state_testable =
  Alcotest.testable Channel.pp_state Channel.equal_state

let status_testable = Alcotest.testable Station.pp_status Station.equal_status

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* Run a uniform protocol to completion on the fast engine. *)
let run_uniform ?(seed = 7) ?(eps = 0.5) ?(window = 32) ?(max_slots = 200_000)
    ?(adversary = Adversary.none) ~n factory =
  let rng = Prng.create ~seed in
  let budget = Budget.create ~window ~eps in
  Uniform_engine.run ~n ~rng ~protocol:(factory ()) ~adversary:(adversary ()) ~budget
    ~max_slots ()

(* Run station factories to completion on the exact engine. *)
let run_exact ?(seed = 7) ?(eps = 0.5) ?(window = 32) ?(max_slots = 400_000)
    ?(adversary = Adversary.none) ?(cd = Channel.Strong_cd) ~n factory =
  let rng = Prng.create ~seed in
  let stations = Engine.make_stations ~n ~rng factory in
  let budget = Budget.create ~window ~eps in
  Engine.run ~cd ~adversary:(adversary ()) ~budget ~max_slots ~stations ()
