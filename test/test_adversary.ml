open Test_util

let mk factory = factory ()

let test_none () =
  let a = mk Adversary.none in
  for slot = 0 to 50 do
    check_true "none never wants to jam" (not (a.Adversary.wants_jam ~slot ~can_jam:true))
  done

let test_greedy () =
  let a = mk Adversary.greedy in
  check_true "greedy asks when allowed" (a.Adversary.wants_jam ~slot:0 ~can_jam:true);
  check_true "greedy passes when blocked" (not (a.Adversary.wants_jam ~slot:0 ~can_jam:false))

let test_random_extremes () =
  let a = mk (Adversary.random ~seed:1 ~p:1.0) in
  for slot = 0 to 20 do
    check_true "p=1 always asks" (a.Adversary.wants_jam ~slot ~can_jam:true)
  done;
  let b = mk (Adversary.random ~seed:1 ~p:0.0) in
  for slot = 0 to 20 do
    check_true "p=0 never asks" (not (b.Adversary.wants_jam ~slot ~can_jam:true))
  done

let test_random_invalid () =
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Adversary.random: p must lie in [0, 1]") (fun () ->
      let (_ : Adversary.factory) = Adversary.random ~seed:1 ~p:1.5 in
      ())

let test_random_rate () =
  let a = mk (Adversary.random ~seed:5 ~p:0.3) in
  let asks = ref 0 in
  let n = 20_000 in
  for slot = 0 to n - 1 do
    if a.Adversary.wants_jam ~slot ~can_jam:true then incr asks
  done;
  check_float_eps 0.02 "asks at rate p" 0.3 (float_of_int !asks /. float_of_int n)

let ask_trace a slots =
  List.init slots (fun slot -> a.Adversary.wants_jam ~slot ~can_jam:true)

let test_random_instances_independent () =
  (* Regression for the fixed-seed-per-instance bug: two instances from the
     same factory must draw from different streams, not replay each other. *)
  let factory = Adversary.random ~seed:11 ~p:0.5 in
  let a = factory () and b = factory () in
  check_true "instances see different coin flips"
    (ask_trace a 256 <> ask_trace b 256)

let test_random_factories_reproducible () =
  (* ...while re-creating the factory with the same seed replays the same
     sequence of instance streams, so experiments stay deterministic. *)
  let run () =
    let factory = Adversary.random ~seed:11 ~p:0.5 in
    List.init 3 (fun _ -> ask_trace (factory ()) 256)
  in
  check_true "same seed, same instance streams" (run () = run ());
  let other = Adversary.random ~seed:12 ~p:0.5 in
  check_true "different seed, different stream"
    (ask_trace (other ()) 256
    <> List.hd
         (let factory = Adversary.random ~seed:11 ~p:0.5 in
          [ ask_trace (factory ()) 256 ]))

let test_periodic_pattern () =
  let a = mk (Adversary.periodic ~period:5 ~burst:2) in
  let expected slot = slot mod 5 < 2 in
  for slot = 0 to 30 do
    check_bool
      (Printf.sprintf "periodic at %d" slot)
      (expected slot)
      (a.Adversary.wants_jam ~slot ~can_jam:true)
  done

let test_periodic_invalid () =
  Alcotest.check_raises "burst > period"
    (Invalid_argument "Adversary.periodic: need 1 <= burst <= period") (fun () ->
      let (_ : Adversary.factory) = Adversary.periodic ~period:3 ~burst:4 in
      ())

let test_front_loaded_asks_early () =
  let a = mk (Adversary.front_loaded ~window:8) in
  check_true "asks at block start" (a.Adversary.wants_jam ~slot:0 ~can_jam:true);
  check_true "asks mid block" (a.Adversary.wants_jam ~slot:3 ~can_jam:true);
  check_true "spares the last slot of a block" (not (a.Adversary.wants_jam ~slot:7 ~can_jam:true));
  check_true "never asks when budget-blocked" (not (a.Adversary.wants_jam ~slot:0 ~can_jam:false))

let test_silence_breaker_reacts () =
  let a = mk Adversary.silence_breaker in
  check_true "initially passive" (not (a.Adversary.wants_jam ~slot:0 ~can_jam:true));
  a.Adversary.notify ~slot:0 ~jammed:false ~state:Channel.Null;
  check_true "asks after a Null" (a.Adversary.wants_jam ~slot:1 ~can_jam:true);
  a.Adversary.notify ~slot:1 ~jammed:true ~state:Channel.Collision;
  check_true "passive after a Collision" (not (a.Adversary.wants_jam ~slot:2 ~can_jam:true))

let test_streak_saver () =
  let a = mk (Adversary.streak_saver ~quota:3) in
  check_true "waits for the streak" (not (a.Adversary.wants_jam ~slot:0 ~can_jam:true));
  for slot = 0 to 2 do
    a.Adversary.notify ~slot ~jammed:false ~state:Channel.Collision
  done;
  check_true "fires once quota reached" (a.Adversary.wants_jam ~slot:3 ~can_jam:true);
  a.Adversary.notify ~slot:3 ~jammed:true ~state:Channel.Collision;
  check_true "resets after jamming" (not (a.Adversary.wants_jam ~slot:4 ~can_jam:true))

let test_stateful_constructor () =
  let factory =
    Adversary.stateful ~name:"every-other"
      ~init:(fun () -> ref false)
      ~wants:(fun flag ~slot:_ ~can_jam:_ -> !flag)
      ~notify:(fun flag ~slot:_ ~jammed:_ ~state:_ -> flag := not !flag)
  in
  let a = mk factory in
  Alcotest.(check string) "name" "every-other" a.Adversary.name;
  check_true "starts false" (not (a.Adversary.wants_jam ~slot:0 ~can_jam:true));
  a.Adversary.notify ~slot:0 ~jammed:false ~state:Channel.Null;
  check_true "flips" (a.Adversary.wants_jam ~slot:1 ~can_jam:true)

let test_factories_are_fresh () =
  let factory = Adversary.silence_breaker in
  let a = factory () in
  a.Adversary.notify ~slot:0 ~jammed:false ~state:Channel.Null;
  let b = factory () in
  check_true "second instance unaffected by first"
    (not (b.Adversary.wants_jam ~slot:0 ~can_jam:true))

let test_pattern_schedule () =
  let a = mk (Adversary.pattern "JJ..") in
  let expected = [| true; true; false; false |] in
  for slot = 0 to 19 do
    check_bool
      (Printf.sprintf "pattern at %d" slot)
      expected.(slot mod 4)
      (a.Adversary.wants_jam ~slot ~can_jam:true)
  done

let test_pattern_aliases_and_whitespace () =
  let a = mk (Adversary.pattern "1 0\nj.") in
  let expected = [| true; false; true; false |] in
  for slot = 0 to 7 do
    check_bool "aliases parse" expected.(slot mod 4) (a.Adversary.wants_jam ~slot ~can_jam:true)
  done

let test_pattern_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Adversary.pattern: empty schedule")
    (fun () ->
      let (_ : Adversary.factory) = Adversary.pattern "" in
      ());
  Alcotest.check_raises "whitespace-only is empty"
    (Invalid_argument "Adversary.pattern: empty schedule") (fun () ->
      let (_ : Adversary.factory) = Adversary.pattern " \t\n " in
      ());
  Alcotest.check_raises "bad char" (Invalid_argument "Adversary.pattern: bad character 'x'")
    (fun () ->
      let (_ : Adversary.factory) = Adversary.pattern "J.x" in
      ())

(* Protocol-aware jammers from jamming_core. *)
module AJ = Jamming_core.Adaptive_jammers

let test_single_suppressor_band () =
  let a = mk (AJ.single_suppressor ~eps_protocol:0.5 ~n:1024) in
  (* At u = 0 the replica is far below log2 n = 10: outside the band. *)
  check_true "passive at u=0" (not (a.Adversary.wants_jam ~slot:0 ~can_jam:true));
  (* Drive the replica into the regular band with Collisions: each adds
     eps/8 = 1/16... after ~160 collisions u ~ 10. *)
  for slot = 0 to 170 do
    a.Adversary.notify ~slot ~jammed:false ~state:Channel.Collision
  done;
  check_true "jams once u enters the Single-rich band"
    (a.Adversary.wants_jam ~slot:200 ~can_jam:true)

let test_estimate_twister_threshold () =
  let a = mk (AJ.estimate_twister ~eps_protocol:0.5 ~n:16) in
  check_true "pushes while u is low" (a.Adversary.wants_jam ~slot:0 ~can_jam:true);
  (* u0 + log2 a = 4 + 4 = 8 -> 8 * 16 collisions drive u past it. *)
  for slot = 0 to (8 * 16) + 1 do
    a.Adversary.notify ~slot ~jammed:false ~state:Channel.Collision
  done;
  check_true "stops once u is far above log2 n"
    (not (a.Adversary.wants_jam ~slot:300 ~can_jam:true))

let test_notification_saboteur_targets_c1_c3 () =
  let a = mk AJ.notification_saboteur in
  let module I = Jamming_core.Intervals in
  for slot = 0 to 200 do
    let expected =
      match I.classify slot with
      | I.C1 _ | I.C3 _ -> true
      | I.C2 _ | I.Idle -> false
    in
    check_bool
      (Printf.sprintf "saboteur at slot %d" slot)
      expected
      (a.Adversary.wants_jam ~slot ~can_jam:true)
  done

let suite =
  [
    ("none", `Quick, test_none);
    ("greedy", `Quick, test_greedy);
    ("random extremes", `Quick, test_random_extremes);
    ("random validation", `Quick, test_random_invalid);
    ("random ask rate", `Quick, test_random_rate);
    ("random instances independent", `Quick, test_random_instances_independent);
    ("random factories reproducible", `Quick, test_random_factories_reproducible);
    ("periodic pattern", `Quick, test_periodic_pattern);
    ("periodic validation", `Quick, test_periodic_invalid);
    ("front-loaded asks early", `Quick, test_front_loaded_asks_early);
    ("silence-breaker reacts to Nulls", `Quick, test_silence_breaker_reacts);
    ("streak-saver paces its budget", `Quick, test_streak_saver);
    ("pattern schedule", `Quick, test_pattern_schedule);
    ("pattern aliases/whitespace", `Quick, test_pattern_aliases_and_whitespace);
    ("pattern validation", `Quick, test_pattern_validation);
    ("stateful constructor", `Quick, test_stateful_constructor);
    ("factories give fresh state", `Quick, test_factories_are_fresh);
    ("single-suppressor targets the band", `Quick, test_single_suppressor_band);
    ("estimate-twister stops above threshold", `Quick, test_estimate_twister_threshold);
    ("notification-saboteur targets C1/C3", `Quick, test_notification_saboteur_targets_c1_c3);
  ]
