(* Telemetry sink semantics, JSON writer/parser, and the determinism
   guarantees the bench/sweep plumbing relies on (DESIGN.md §9). *)

module E = Jamming_experiments
module T = Jamming_telemetry.Telemetry
module Json = Jamming_telemetry.Json
open Test_util

(* --- counters, timers, histograms --- *)

let test_counters () =
  let t = T.create () in
  let c = T.counter t "hits" in
  T.incr c;
  T.incr c;
  T.add c 40;
  check_int "incr/add accumulate" 42 (T.value c);
  check_int "lookup by name" 42 (T.counter_value t "hits");
  check_int "absent counter reads 0" 0 (T.counter_value t "misses");
  check_true "same name, same cell" (T.value (T.counter t "hits") = 42)

let test_timers () =
  let t = T.create () in
  let w = T.timer t "wall" in
  let v = T.time w (fun () -> Sys.opaque_identity (List.init 1000 Fun.id) |> List.length) in
  check_int "thunk result passes through" 1000 v;
  check_true "elapsed non-negative" (T.elapsed_s w >= 0.0);
  T.stop w;
  (* stop without start is a no-op *)
  check_true "lookup by name" (T.timer_seconds t "wall" = T.elapsed_s w);
  check_float "absent timer reads 0" 0.0 (T.timer_seconds t "nope")

let test_histograms () =
  let t = T.create () in
  let h = T.histogram t "slots" in
  List.iter (T.observe h) [ 0; 1; 2; 3; 1024 ];
  check_int "count" 5 (T.histogram_count t "slots");
  check_int "sum" 1030 (T.histogram_sum t "slots");
  check_int "absent histogram count" 0 (T.histogram_count t "nope")

let test_disabled_sink () =
  let t = T.disabled () in
  check_true "disabled" (not (T.is_enabled t));
  let c = T.counter t "hits" and h = T.histogram t "h" in
  T.incr c;
  T.add c 10;
  T.observe h 99;
  let w = T.timer t "wall" in
  T.start w;
  T.stop w;
  check_int "counter dead" 0 (T.counter_value t "hits");
  check_int "histogram dead" 0 (T.histogram_count t "h");
  check_float "timer dead" 0.0 (T.timer_seconds t "wall");
  Alcotest.(check string)
    "snapshot is empty" {|{"counters":{},"timers":{},"histograms":{}}|}
    (Json.to_string (T.to_json t))

let test_merge_and_reset () =
  let a = T.create () and b = T.create () in
  T.add (T.counter a "n") 1;
  T.add (T.counter b "n") 2;
  T.add (T.counter b "only-b") 7;
  T.observe (T.histogram a "h") 4;
  T.observe (T.histogram b "h") 8;
  T.merge ~into:a b;
  check_int "counters add" 3 (T.counter_value a "n");
  check_int "new names created" 7 (T.counter_value a "only-b");
  check_int "histogram counts add" 2 (T.histogram_count a "h");
  check_int "histogram sums add" 12 (T.histogram_sum a "h");
  T.reset a;
  check_int "reset zeroes counters" 0 (T.counter_value a "n");
  check_int "reset zeroes histograms" 0 (T.histogram_count a "h")

(* --- JSON writer and parser --- *)

let test_json_golden () =
  let v =
    Json.Obj
      [
        ("s", Json.String "a\"b\n");
        ("i", Json.Int (-3));
        ("f", Json.Float 1.5);
        ("whole", Json.Float 2.0);
        ("nan", Json.Float Float.nan);
        ("l", Json.List [ Json.Null; Json.Bool true; Json.Bool false ]);
        ("o", Json.Obj []);
      ]
  in
  Alcotest.(check string)
    "compact rendering"
    {|{"s":"a\"b\n","i":-3,"f":1.5,"whole":2.0,"nan":null,"l":[null,true,false],"o":{}}|}
    (Json.to_string v)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("xs", Json.List [ Json.Int 1; Json.Float 2.25; Json.String "τ" ]);
        ("b", Json.Bool false);
        ("n", Json.Null);
      ]
  in
  (match Json.of_string (Json.to_string v) with
  | Ok v' -> check_true "round-trips" (v = v')
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Json.of_string "{\"a\": [1, 2" with
  | Ok _ -> Alcotest.fail "accepted truncated JSON"
  | Error _ -> ());
  match Json.of_string "[1e3, -4.5, 17]" with
  | Ok (Json.List [ Json.Float 1000.0; Json.Float (-4.5); Json.Int 17 ]) -> ()
  | Ok j -> Alcotest.failf "unexpected parse: %s" (Json.to_string j)
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_result_json_golden () =
  let r =
    {
      Metrics.slots = 120;
      completed = true;
      elected = true;
      leader = Some 3;
      statuses = [||];
      jammed_slots = 30;
      nulls = 50;
      singles = 10;
      collisions = 30;
      transmissions = 64.5;
      max_station_transmissions = 0;
      energy = None;
    }
  in
  Alcotest.(check string)
    "Metrics.result serialization"
    {|{"slots":120,"completed":true,"elected":true,"leader":3,"statuses":null,"jammed_slots":30,"nulls":50,"singles":10,"collisions":30,"transmissions":64.5,"max_station_transmissions":0}|}
    (Json.to_string (Metrics.result_to_json r))

let setup = { E.Runner.n = 64; eps = 0.5; window = 16; max_slots = 50_000 }
let engine = E.Runner.Uniform (E.Specs.lesk ~eps:0.5)

let test_sample_json () =
  let sample = E.Runner.replicate ~engine ~reps:4 setup E.Specs.greedy in
  let j = E.Runner.sample_to_json ~include_results:true sample in
  (* Deterministic: same cell, same JSON, byte for byte. *)
  let again = E.Runner.replicate ~engine ~reps:4 setup E.Specs.greedy in
  Alcotest.(check string)
    "sample JSON deterministic" (Json.to_string j)
    (Json.to_string (E.Runner.sample_to_json ~include_results:true again));
  (* And structurally sound under our own parser. *)
  match Json.of_string (Json.to_string j) with
  | Error e -> Alcotest.failf "sample JSON unparseable: %s" e
  | Ok j ->
      check_true "protocol recorded"
        (Option.bind (Json.member "protocol" j) Json.to_string_opt = Some "LESK(0.5)");
      check_true "adversary recorded"
        (Option.bind (Json.member "adversary" j) Json.to_string_opt = Some "greedy");
      check_true "reps recorded"
        (Option.bind (Json.member "reps" j) Json.to_int_opt = Some 4);
      (match Option.bind (Json.member "results" j) Json.to_list_opt with
      | Some l -> check_int "one result object per rep" 4 (List.length l)
      | None -> Alcotest.fail "results array missing");
      match Option.bind (Json.member "setup" j) (Json.member "n") with
      | Some (Json.Int 64) -> ()
      | _ -> Alcotest.fail "setup.n missing"

(* --- run-store codecs: the JSON decoders are exact inverses of the
   writers, floats included (DESIGN.md §11 leans on this for
   bit-identical cache hits). --- *)

let test_float_image_exact () =
  List.iter
    (fun f ->
      match Json.of_string (Json.to_string (Json.Float f)) with
      | Ok (Json.Float f') -> check_true "float round-trips exactly" (f' = f)
      | Ok (Json.Int i) -> check_true "integral image" (float_of_int i = f)
      | Ok _ -> Alcotest.fail "float rendered as non-number"
      | Error e -> Alcotest.failf "float image unparseable: %s" e)
    [
      0.1; 1.0 /. 3.0; Float.pi; 1e-300; 6.02214076e23; 123456789.123456789;
      Float.succ 1.0; Float.pred 1.0; 2.0; 0.0;
    ]

let gen_tx_count =
  QCheck.Gen.(
    oneof
      [
        map (fun k -> Metrics.Exact k) (int_bound 100_000);
        map (fun k -> Metrics.At_least k) (int_bound 100_000);
      ])

let test_tx_count_roundtrip =
  qtest "tx_count json round-trip"
    (QCheck.make ~print:Metrics.tx_count_to_string gen_tx_count)
    (fun t ->
      match Metrics.tx_count_of_json (Metrics.tx_count_to_json t) with
      | Ok t' -> Metrics.equal_tx_count t t'
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e)

let gen_result =
  let open QCheck.Gen in
  (* Transmissions stress the float image: ratios of large ints need the
     full 17 significant digits to survive a text round-trip. *)
  let transmissions =
    oneof
      [
        map2
          (fun a b -> float_of_int a /. float_of_int b)
          (int_bound 1_000_000_000) (int_range 1 999_983);
        map float_of_int (int_bound 1_000_000);
      ]
  in
  let status = oneofl [ Station.Leader; Station.Non_leader; Station.Undecided ] in
  let statuses =
    oneof [ return [||]; map Array.of_list (list_size (int_range 1 48) status) ]
  in
  map
    (fun ( (slots, completed, elected, leader),
           (jammed_slots, nulls, singles, collisions),
           (statuses, transmissions, max_station_transmissions) ) ->
      {
        Metrics.slots;
        completed;
        elected;
        leader;
        statuses;
        jammed_slots;
        nulls;
        singles;
        collisions;
        transmissions;
        max_station_transmissions;
        energy = None;
      })
    (triple
       (quad (int_bound 1_000_000) bool bool (opt (int_bound 4096)))
       (quad (int_bound 100_000) (int_bound 100_000) (int_bound 100_000)
          (int_bound 100_000))
       (triple statuses transmissions (int_bound 1_000)))

let test_result_roundtrip =
  qtest "result json round-trip (via text)"
    (QCheck.make ~print:(Format.asprintf "%a" Metrics.pp_result) gen_result)
    (fun r ->
      (* Through the writer AND the parser — exactly the store's path. *)
      match Json.of_string (Json.to_string (Metrics.result_to_json r)) with
      | Error e -> QCheck.Test.fail_reportf "unparseable: %s" e
      | Ok j -> (
          match Metrics.result_of_json j with
          | Ok r' -> Metrics.equal_result r r'
          | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e))

let test_result_decode_rejects_corruption () =
  let r =
    {
      Metrics.slots = 9;
      completed = true;
      elected = true;
      leader = Some 0;
      statuses = [| Station.Leader; Station.Non_leader; Station.Undecided |];
      jammed_slots = 1;
      nulls = 3;
      singles = 2;
      collisions = 3;
      transmissions = 5.5;
      max_station_transmissions = 2;
      energy = None;
    }
  in
  let tamper f =
    match Metrics.result_to_json r with
    | Json.Obj fields -> Json.Obj (List.map f fields)
    | _ -> assert false
  in
  let expect_error what j =
    match Metrics.result_of_json j with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "decoder accepted %s" what
  in
  expect_error "a dropped field"
    (match Metrics.result_to_json r with
    | Json.Obj fields -> Json.Obj (List.remove_assoc "slots" fields)
    | _ -> assert false);
  expect_error "a mistyped field"
    (tamper (function "slots", _ -> ("slots", Json.String "9") | kv -> kv));
  expect_error "counts disagreeing with packed"
    (tamper (function
      | "statuses", Json.Obj s ->
          ( "statuses",
            Json.Obj
              (List.map
                 (function "leader", _ -> ("leader", Json.Int 2) | kv -> kv)
                 s) )
      | kv -> kv));
  expect_error "a bad packed character"
    (tamper (function
      | "statuses", Json.Obj s ->
          ( "statuses",
            Json.Obj
              (List.map
                 (function "packed", _ -> ("packed", Json.String "LNX") | kv -> kv)
                 s) )
      | kv -> kv));
  (* And the untampered record decodes back to the original. *)
  match Metrics.result_of_json (Metrics.result_to_json r) with
  | Ok r' -> check_true "clean record decodes" (Metrics.equal_result r r')
  | Error e -> Alcotest.failf "clean record rejected: %s" e

(* --- aggregation determinism: the telemetry a replicate produces is
   a pure function of the cell, not of the domain count. --- *)

let test_jobs_independent_aggregation () =
  let snapshot jobs =
    let tel = T.create () in
    ignore (E.Runner.replicate ~jobs ~telemetry:tel ~engine ~reps:12 setup E.Specs.greedy);
    Json.to_string (T.to_json ~timers:false tel)
  in
  Alcotest.(check string) "jobs=1 and jobs=4 agree" (snapshot 1) (snapshot 4)

let test_replicate_telemetry_contents () =
  let tel = T.create () in
  let sample = E.Runner.replicate ~telemetry:tel ~engine ~reps:5 setup E.Specs.greedy in
  let total f = Array.fold_left (fun acc r -> acc + f r) 0 sample.E.Runner.results in
  check_int "runner.runs" 5 (T.counter_value tel "runner.runs");
  check_int "runner.slots" (total (fun r -> r.Metrics.slots))
    (T.counter_value tel "runner.slots");
  check_int "runner.jammed" (total (fun r -> r.Metrics.jammed_slots))
    (T.counter_value tel "runner.jammed");
  check_int "histogram count = reps" 5 (T.histogram_count tel "runner.slots_per_run");
  check_int "histogram sum = slots" (total (fun r -> r.Metrics.slots))
    (T.histogram_sum tel "runner.slots_per_run");
  check_true "wall timer ran" (T.timer_seconds tel "runner.wall" >= 0.0)

let test_default_sink_install () =
  let tel = T.create () in
  E.Runner.with_telemetry tel (fun () ->
      ignore (E.Runner.replicate ~engine ~reps:2 setup E.Specs.no_jamming));
  check_int "default sink receives runs" 2 (T.counter_value tel "runner.runs");
  (* Restored after the thunk: further runs are unmetered. *)
  ignore (E.Runner.replicate ~engine ~reps:2 setup E.Specs.no_jamming);
  check_int "sink restored" 2 (T.counter_value tel "runner.runs")

let suite =
  [
    ("counters", `Quick, test_counters);
    ("timers", `Quick, test_timers);
    ("histograms", `Quick, test_histograms);
    ("disabled sink is inert", `Quick, test_disabled_sink);
    ("merge and reset", `Quick, test_merge_and_reset);
    ("json golden", `Quick, test_json_golden);
    ("json round-trip", `Quick, test_json_roundtrip);
    ("result json golden", `Quick, test_result_json_golden);
    ("float image exact", `Quick, test_float_image_exact);
    test_tx_count_roundtrip;
    test_result_roundtrip;
    ("result decode rejects corruption", `Quick, test_result_decode_rejects_corruption);
    ("sample json", `Quick, test_sample_json);
    ("jobs-independent aggregation", `Quick, test_jobs_independent_aggregation);
    ("replicate telemetry contents", `Quick, test_replicate_telemetry_contents);
    ("default sink install/restore", `Quick, test_default_sink_install);
  ]
