(* soak — randomized invariant testing, for as many iterations as asked.

   Each iteration draws a random configuration (protocol, adversary,
   CD model, n, eps, T, fault-injection rates), runs a full election
   with the online invariant monitor attached, and checks the
   system-wide invariants:
     - the executed jam pattern is (T, 1-eps)-bounded — enforced online
       by the monitor and cross-checked offline by
       Budget.verify_bounded (exact, every window of length >= T);
     - slot-class counters are consistent, online and in aggregate;
     - never two simultaneous leaders; on fault-free completion,
       exactly one leader and full termination.

   Fault injection (CD misperception, crash-stop, transient sleep,
   late wake-up) is enabled by default; under injected faults the
   election guarantee is allowed to degrade, the engine-level
   invariants are not.  Churn is sampled by default too (--churn auto):
   those iterations run the self-healing dynamic driver and addition-
   ally check its accounting (leaderless intervals, population balance,
   epochs vs attempts) plus the jam budget over the absolute slot axis,
   gaps included.  A failing configuration is shrunk to a minimal
   reproduction (halve n, truncate the slot cap, thin the churn
   schedule, drop fault classes one at a time) and a replayable report
   is written to results/.

   Exit code 0 iff every iteration held.

     dune exec bin/soak.exe -- --iterations 200 --seed 7
     dune exec bin/soak.exe -- --seed 7 --replay 143   # rerun one iteration
     dune exec bin/soak.exe -- --churn kill-leader --mutate   # must fail
*)

module E = Jamming_experiments
module Prng = Jamming_prng.Prng
module Store = Jamming_store.Store
module Key = Jamming_store.Key
module Atomic_io = Jamming_store.Atomic_io
module Metrics = Jamming_sim.Metrics
module Monitor = Jamming_sim.Monitor
module Observer = Jamming_sim.Observer
module Dynamic = Jamming_sim.Dynamic
module Channel = Jamming_channel.Channel
module Budget = Jamming_adversary.Budget
module Faults = Jamming_faults
module Churn = Jamming_faults.Churn

(* How churn is drawn per iteration.  [Auto] churns roughly half the
   iterations; [Kill_leader] forces the adaptive killer every time (the
   worst case, and the mode the CI smoke job runs). *)
type churn_mode = Auto | Always | Kill_leader | Off

let churn_mode_to_string = function
  | Auto -> "auto"
  | Always -> "always"
  | Kill_leader -> "kill-leader"
  | Off -> "off"

type config = {
  iteration : int;
  base_seed : int;
  run_seed : int;
  mode : int; (* 0 = LESK, 1 = LESU, 2 = LEWK *)
  n : int;
  eps : float;
  window : int;
  max_slots : int;
  adversary_ix : int;
  faults : Faults.Config.t;
  churn : Churn.t;
  restart_after : int option;
  churn_mode : churn_mode;
  mutate : bool;
}

let churned c = (not (Churn.is_null c.churn)) || c.restart_after <> None

let adversaries =
  [|
    E.Specs.no_jamming; E.Specs.greedy; E.Specs.random_jam ~p:0.7; E.Specs.front_loaded;
    E.Specs.periodic; E.Specs.silence_breaker; E.Specs.streak_saver;
    E.Specs.notification_saboteur;
  |]

let mode_name = function 0 -> "LESK" | 1 -> "LESU" | _ -> "LEWK"

let pp_config ppf c =
  Format.fprintf ppf "%s n=%d eps=%.2f T=%d cap=%d adversary=%s seed=%d %a"
    (mode_name c.mode) c.n c.eps c.window c.max_slots
    adversaries.(c.adversary_ix).E.Specs.a_name c.run_seed Faults.Config.pp c.faults;
  if churned c then
    Format.fprintf ppf " churn=%s restart=%s" (Churn.descriptor c.churn)
      (match c.restart_after with None -> "none" | Some d -> string_of_int d);
  if c.mutate then Format.fprintf ppf " mutate"

let sample_faults rng =
  if Prng.bool rng ~p:0.5 then Faults.Config.none
  else
    let perception =
      if Prng.bool rng ~p:0.5 then Faults.Perception.uniform ~p:(0.15 *. Prng.float rng)
      else Faults.Perception.none
    in
    let p_crash = if Prng.bool rng ~p:0.4 then 0.3 *. Prng.float rng else 0.0 in
    let p_sleep = if Prng.bool rng ~p:0.4 then 0.3 *. Prng.float rng else 0.0 in
    let p_late_wake = if Prng.bool rng ~p:0.4 then 0.5 *. Prng.float rng else 0.0 in
    {
      Faults.Config.perception;
      p_crash;
      crash_horizon = 1 + Prng.int rng ~bound:2000;
      p_sleep;
      sleep_horizon = 1 + Prng.int rng ~bound:2000;
      max_sleep = 1 + Prng.int rng ~bound:200;
      p_late_wake;
      max_wake_delay = 1 + Prng.int rng ~bound:300;
    }

(* Churn is drawn from its own stream, so a churn-off soak draws exactly
   the seed soak's configurations — and a zero-churn iteration under
   [Auto] is bit-identical to what the same seed produced before churn
   existed. *)
let sample_churn ~mode ~window rng =
  let active =
    match mode with
    | Off -> false
    | Auto -> Prng.bool rng ~p:0.5
    | Always | Kill_leader -> true
  in
  if not active then (Churn.none, None)
  else
    let kind = match mode with Kill_leader -> 2 | _ -> Prng.int rng ~bound:3 in
    let churn =
      match kind with
      | 0 ->
          let count = 1 + Prng.int rng ~bound:8 in
          let events = ref [] and at = ref 0 in
          for _ = 1 to count do
            at := !at + 1 + Prng.int rng ~bound:2_000;
            let kind =
              match Prng.int rng ~bound:3 with
              | 0 -> Churn.Join (1 + Prng.int rng ~bound:3)
              | 1 -> Churn.Leave Churn.Member
              | _ -> Churn.Leave Churn.Leader
            in
            events := { Churn.at = !at; kind } :: !events
          done;
          Churn.Oblivious (List.rev !events)
      | 1 ->
          Churn.Rate
            {
              every = 1 + Prng.int rng ~bound:2_000;
              p_join = Prng.float rng;
              p_leave = Prng.float rng;
              max_burst = 1 + Prng.int rng ~bound:3;
              horizon = 1 + Prng.int rng ~bound:60_000;
            }
      | _ ->
          Churn.Leader_killer
            {
              grace = 1 + Prng.int rng ~bound:(8 * window);
              max_kills = 1 + Prng.int rng ~bound:5;
            }
    in
    let restart_after =
      if Prng.bool rng ~p:0.5 then Some (1_024 * (1 + Prng.int rng ~bound:8)) else None
    in
    (churn, restart_after)

let sample_config ~base_seed ~seed ~iteration ~with_faults ~churn_mode ~mutate =
  let rng = Prng.create ~seed in
  let eps = 0.2 +. (0.8 *. Prng.float rng) in
  let window = 1 + Prng.int rng ~bound:64 in
  let adversary_ix = Prng.int rng ~bound:(Array.length adversaries) in
  let mode = Prng.int rng ~bound:3 in
  let faults = if with_faults then sample_faults rng else Faults.Config.none in
  let faulty = not (Faults.Config.is_null faults) in
  (* Faulty runs always use the exact engine (O(n)/slot): keep them to
     moderate n and a tighter cap so capped runs stay cheap. *)
  let n = if faulty then 3 + Prng.int rng ~bound:38 else 3 + Prng.int rng ~bound:62 in
  let max_slots = if faulty then 150_000 else 2_000_000 in
  let churn, restart_after =
    let rng =
      Prng.create ~seed:(Prng.seed_of_string (Printf.sprintf "%d/churn-config" seed))
    in
    sample_churn ~mode:churn_mode ~window rng
  in
  (* Churned runs also go through the exact engine; same cap discipline. *)
  let max_slots =
    if (not (Churn.is_null churn)) || restart_after <> None then Int.min max_slots 200_000
    else max_slots
  in
  { iteration; base_seed; run_seed = seed; mode; n; eps; window; max_slots;
    adversary_ix; faults; churn; restart_after; churn_mode; mutate }

let engine_of c =
  let cd, factory =
    match c.mode with
    | 0 -> (Channel.Strong_cd, Jamming_core.Lesk.station ~eps:c.eps)
    | 1 -> (Channel.Strong_cd, Jamming_core.Lesu.station ())
    | _ -> (Channel.Weak_cd, Jamming_core.Lewk.station ~eps:c.eps ())
  in
  if Faults.Config.is_null c.faults then
    E.Runner.Exact { name = mode_name c.mode; cd; factory }
  else
    E.Runner.Faulty
      { name = mode_name c.mode; cd; factory; faults = c.faults; monitor_checks = None }

(* A churned iteration: the dynamic driver chains re-elections while the
   online monitor spans the whole run; offline we re-check the executed
   jam pattern and the dynamic result's own accounting. *)
let run_churned_config c =
  let setup = { E.Runner.n = c.n; eps = c.eps; window = c.window; max_slots = c.max_slots } in
  let adversary = adversaries.(c.adversary_ix) in
  let violations = ref [] in
  let fail fmt = Format.kasprintf (fun d -> violations := d :: !violations) fmt in
  let records = ref [] in
  let observer =
    Observer.make ~name:"soak-churn"
      ~on_slot:(fun r ~leaders:_ -> records := r :: !records)
      ()
  in
  let result =
    try
      Some
        (E.Runner.run_churn ~observers:[ observer ] ~engine:(engine_of c) ~churn:c.churn
           ?restart_after:c.restart_after setup adversary ~seed:c.run_seed)
    with Monitor.Violation v ->
      fail "monitor: %s" (Monitor.violation_to_string v);
      None
  in
  let records = List.rev !records in
  (* The engine only simulates election segments; the gaps between them
     are fast-forwarded unjammed slots.  Rebuild the executed jam pattern
     on the absolute slot axis before the offline budget check — checking
     the simulated slots back to back would splice the two sides of a gap
     into one fake window. *)
  let total =
    match result with
    | Some r -> r.Dynamic.total_slots
    | None -> List.fold_left (fun acc r -> Int.max acc (r.Metrics.slot + 1)) 0 records
  in
  let jam_pattern = Array.make (Int.max total 1) false in
  List.iter (fun r -> if r.Metrics.jammed then jam_pattern.(r.Metrics.slot) <- true) records;
  (match Budget.verify_bounded ~window:c.window ~eps:c.eps jam_pattern with
  | None -> ()
  | Some v ->
      fail "executed jam pattern violates (T, 1-eps): %a" Budget.pp_window_violation v);
  (match result with
  | None -> ()
  | Some r ->
      if List.length records <> r.Dynamic.simulated_slots then
        fail "simulated-slot accounting mismatch: %d slot records, %d simulated slots"
          (List.length records) r.Dynamic.simulated_slots;
      let interval_sum = List.fold_left ( + ) 0 r.Dynamic.leaderless_intervals in
      if interval_sum <> r.Dynamic.leaderless_slots then
        fail "leaderless accounting mismatch: intervals sum to %d, counted %d" interval_sum
          r.Dynamic.leaderless_slots;
      (* [arrivals] counts joiners when announced; those announced during
         an election are only born at the next election boundary, so at
         truncation the balance can exceed the live population by the
         still-queued joiners — never the other way around. *)
      if r.Dynamic.final_population > c.n + r.Dynamic.arrivals - r.Dynamic.departures then
        fail "population accounting mismatch: %d live > %d + %d - %d announced"
          r.Dynamic.final_population c.n r.Dynamic.arrivals r.Dynamic.departures;
      if
        List.length r.Dynamic.epochs
        <> r.Dynamic.elections_completed + r.Dynamic.elections_failed
      then
        fail "epoch accounting mismatch: %d epochs, %d + %d attempts"
          (List.length r.Dynamic.epochs) r.Dynamic.elections_completed
          r.Dynamic.elections_failed;
      (* --mutate: a deliberately broken invariant, to prove the harness
         catches one and shrinks it to a minimal churn schedule. *)
      if c.mutate && r.Dynamic.re_elections > 0 then
        fail "mutation: run re-elected %d times (injected invariant)" r.Dynamic.re_elections);
  (!violations, match result with Some r -> r.Dynamic.simulated_slots | None -> 0)

(* Runs [c] and returns the invariant violations observed (empty = held). *)
let run_static_config c =
  let setup = { E.Runner.n = c.n; eps = c.eps; window = c.window; max_slots = c.max_slots } in
  let adversary = adversaries.(c.adversary_ix) in
  let faulty = not (Faults.Config.is_null c.faults) in
  let records = ref [] in
  let on_slot r = records := r :: !records in
  let violations = ref [] in
  let fail fmt = Format.kasprintf (fun d -> violations := d :: !violations) fmt in
  let observers = [ Observer.of_on_slot on_slot ] in
  let result =
    try
      let engine =
        if (not faulty) && c.mode < 2 then
          (* Fault-free uniform protocols keep the fast O(1)/slot path. *)
          E.Runner.Uniform
            (if c.mode = 0 then E.Specs.lesk ~eps:c.eps else E.Specs.lesu ())
        else
          (* Even with null faults this goes through the Faulty spec: it
             keeps the online monitor attached and the fault streams
             split exactly as before. *)
          let cd, factory =
            match c.mode with
            | 0 -> (Channel.Strong_cd, Jamming_core.Lesk.station ~eps:c.eps)
            | 1 -> (Channel.Strong_cd, Jamming_core.Lesu.station ())
            | _ -> (Channel.Weak_cd, Jamming_core.Lewk.station ~eps:c.eps ())
          in
          E.Runner.Faulty
            { name = mode_name c.mode; cd; factory; faults = c.faults;
              monitor_checks = None }
      in
      Some (E.Runner.run ~observers ~engine setup adversary ~seed:c.run_seed)
    with Monitor.Violation v ->
      fail "monitor: %s" (Monitor.violation_to_string v);
      None
  in
  let records = List.rev !records in
  let jam_pattern = Array.of_list (List.map (fun r -> r.Metrics.jammed) records) in
  (match Budget.verify_bounded ~window:c.window ~eps:c.eps jam_pattern with
  | None -> ()
  | Some v ->
      fail "executed jam pattern violates (T, 1-eps): %a" Budget.pp_window_violation v);
  (match result with
  | None -> ()
  | Some result ->
      let jams = List.length (List.filter (fun r -> r.Metrics.jammed) records) in
      if jams <> result.Metrics.jammed_slots then fail "jam accounting mismatch";
      if not faulty then begin
        if not result.Metrics.completed then
          fail "did not complete within %d slots" c.max_slots;
        if result.Metrics.completed && not (Metrics.election_ok result) then
          fail "completed but not exactly one leader"
      end);
  (!violations, match result with Some r -> r.Metrics.slots | None -> 0)

let run_config c = if churned c then run_churned_config c else run_static_config c

(* --- shrinking: halve n, truncate the cap, thin the churn schedule,
   drop fault classes one at a time; keep any variant that still fails;
   stop at a fixpoint. --- *)

let drop_faults c =
  let f = c.faults in
  List.filter_map
    (fun (label, f') ->
      if f' = f then None else Some (label, { c with faults = f' }))
    [
      ("drop perception noise",
       { f with Faults.Config.perception = Faults.Perception.none });
      ("drop crashes", { f with Faults.Config.p_crash = 0.0 });
      ("drop sleeps", { f with Faults.Config.p_sleep = 0.0 });
      ("drop late wake-ups", { f with Faults.Config.p_late_wake = 0.0 });
    ]

let shrink_churn c =
  let drop =
    if churned c then
      [ ("drop churn", { c with churn = Churn.none; restart_after = None }) ]
    else []
  in
  let thin =
    match c.churn with
    | Churn.Oblivious events when List.length events > 1 ->
        let keep = List.length events / 2 in
        [
          ( "halve churn schedule",
            { c with churn = Churn.Oblivious (List.filteri (fun i _ -> i < keep) events) } );
        ]
    | Churn.Rate r when r.horizon > 1 ->
        [
          ( "halve churn horizon",
            { c with churn = Churn.Rate { r with horizon = r.horizon / 2 } } );
        ]
    | Churn.Leader_killer { grace; max_kills } when max_kills > 1 ->
        [
          ( "halve leader kills",
            { c with churn = Churn.Leader_killer { grace; max_kills = max_kills / 2 } } );
        ]
    | _ -> []
  in
  let restart =
    if c.restart_after <> None && not (Churn.is_null c.churn) then
      [ ("drop restart deadline", { c with restart_after = None }) ]
    else []
  in
  thin @ restart @ drop

let shrink_candidates c =
  (if c.n > 3 then [ ("halve n", { c with n = Int.max 3 (c.n / 2) }) ] else [])
  @ (if c.max_slots > 2_000 then
       [ ("truncate slots", { c with max_slots = Int.max 2_000 (c.max_slots / 2) }) ]
     else [])
  @ shrink_churn c @ drop_faults c

let shrink ~budget c0 =
  let attempts = ref 0 in
  let rec go c =
    let step =
      List.find_map
        (fun (label, c') ->
          if !attempts >= budget then None
          else begin
            incr attempts;
            match run_config c' with
            | [], _ -> None
            | vs, _ -> Some (label, c', vs)
          end)
        (shrink_candidates c)
    in
    match step with None -> (c, !attempts) | Some (_, c', _) -> go c'
  in
  go c0

(* --- violation reports --- *)

(* The report is built in memory and written atomically (tmp + rename):
   an interrupted soak never leaves a truncated report behind. *)
let write_report ~dir c violations =
  let shrunk, attempts = shrink ~budget:40 c in
  let shrunk_violations, _ = if shrunk = c then (violations, 0) else run_config shrunk in
  let path =
    Filename.concat dir (Printf.sprintf "soak-violation-%d-%d.txt" c.base_seed c.iteration)
  in
  let buf = Buffer.create 512 in
  let ppf = Format.formatter_of_buffer buf in
  Format.fprintf ppf "soak invariant violation@.";
  Format.fprintf ppf "iteration: %d (base seed %d)@." c.iteration c.base_seed;
  Format.fprintf ppf "config: %a@." pp_config c;
  List.iter (fun d -> Format.fprintf ppf "violation: %s@." d) violations;
  Format.fprintf ppf "shrunk config (%d shrink re-runs): %a@." attempts pp_config shrunk;
  List.iter (fun d -> Format.fprintf ppf "shrunk violation: %s@." d) shrunk_violations;
  Format.fprintf ppf "replay: dune exec bin/soak.exe -- --seed %d --replay %d%s%s@."
    c.base_seed c.iteration
    (match c.churn_mode with
    | Auto -> ""
    | m -> Printf.sprintf " --churn %s" (churn_mode_to_string m))
    (if c.mutate then " --mutate" else "");
  Format.pp_print_flush ppf ();
  Atomic_io.write_string ~path (Buffer.contents buf);
  path

let iteration_seed ~seed ~iteration =
  Prng.seed_of_string (Printf.sprintf "soak/%d/%d" seed iteration)

(* One soak iteration through the run store.  The config itself is a
   pure function of the seeds, so only the outcome (violations, slots)
   is persisted; --resume then skips every iteration the interrupted
   run already finished. *)
let iteration_key ~base_seed ~iteration ~with_faults ~churn_mode ~mutate =
  Key.v
    [
      ("kind", Key.S "soak");
      ("base_seed", Key.I base_seed);
      ("iteration", Key.I iteration);
      ("with_faults", Key.B with_faults);
      ("churn_mode", Key.S (churn_mode_to_string churn_mode));
      ("mutate", Key.B mutate);
    ]

let iteration_value violations slots =
  let module Json = Jamming_telemetry.Json in
  Json.Obj
    [
      ("violations", Json.List (List.map (fun d -> Json.String d) violations));
      ("slots", Json.Int slots);
    ]

let iteration_of_json json =
  let module Json = Jamming_telemetry.Json in
  match json with
  | Json.Obj fields -> (
      match (List.assoc_opt "violations" fields, List.assoc_opt "slots" fields) with
      | Some (Json.List vs), Some (Json.Int slots) ->
          let strings =
            List.map (function Json.String s -> Some s | _ -> None) vs
          in
          if List.for_all Option.is_some strings then
            Some (List.filter_map Fun.id strings, slots)
          else None
      | _ -> None)
  | _ -> None

let run_iteration ?store ~base_seed ~iteration ~with_faults ~churn_mode ~mutate () =
  let seed = iteration_seed ~seed:base_seed ~iteration in
  let c = sample_config ~base_seed ~seed ~iteration ~with_faults ~churn_mode ~mutate in
  match store with
  | None ->
      let violations, slots = run_config c in
      (c, violations, slots)
  | Some st -> (
      let key = iteration_key ~base_seed ~iteration ~with_faults ~churn_mode ~mutate in
      match Store.find st key ~decode:iteration_of_json with
      | Some (violations, slots) -> (c, violations, slots)
      | None ->
          let violations, slots = run_config c in
          Store.add st key (iteration_value violations slots);
          (c, violations, slots))

let write_json ~path ~store ~iterations ~total_slots ~wall ~failures =
  let module Json = Jamming_telemetry.Json in
  Atomic_io.write_json ~path
    (Json.Obj
       ([
          ("schema", Json.String "jamming-election.soak/1");
          ("iterations", Json.Int iterations);
          ("total_slots", Json.Int total_slots);
          ("wall_s", Json.Float wall);
          ( "slots_per_sec",
            if wall > 0.0 then Json.Float (float_of_int total_slots /. wall) else Json.Null );
          ("violations", Json.Int (List.length failures));
          ( "failing_iterations",
            Json.List
              (List.rev_map (fun (c, _) -> Json.Int c.iteration) failures) );
        ]
       @ match store with Some st -> [ ("store", Store.stats_json st) ] | None -> []));
  Format.printf "JSON written: %s@." path

let run iterations seed jobs no_faults churn_mode mutate replay report_dir json_out
    cache_opts =
  let (_ : int) = Cli.install_jobs jobs in
  let with_faults = not no_faults in
  match replay with
  | Some iteration ->
      (* A replay is a diagnostic re-execution — never served from the
         store. *)
      let c, violations, slots =
        run_iteration ~base_seed:seed ~iteration ~with_faults ~churn_mode ~mutate ()
      in
      Format.printf "replaying iteration %d: %a@." iteration pp_config c;
      Format.printf "%d slots simulated.@." slots;
      (match violations with
      | [] ->
          Format.printf "all invariants held.@.";
          `Ok ()
      | vs ->
          List.iter (fun d -> Format.printf "VIOLATION: %s@." d) vs;
          `Error (false, "replayed iteration violates invariants"))
  | None ->
      let store = Cli.store_of cache_opts in
      let t0 = Unix.gettimeofday () in
      let failures = ref [] in
      let total_slots = ref 0 in
      for iteration = 1 to iterations do
        let c, violations, slots =
          run_iteration ?store ~base_seed:seed ~iteration ~with_faults ~churn_mode ~mutate ()
        in
        total_slots := !total_slots + slots;
        if violations <> [] then failures := (c, violations) :: !failures;
        if iteration mod 50 = 0 then
          Format.printf "… %d/%d iterations, %d slots simulated, %d violations@." iteration
            iterations !total_slots
            (List.length !failures)
      done;
      let dt = Unix.gettimeofday () -. t0 in
      Format.printf "%d iterations, %d total slots, %.1fs (faults %s).@." iterations
        !total_slots dt
        (if with_faults then "enabled" else "disabled");
      (match json_out with
      | None -> ()
      | Some path ->
          write_json ~path ~store ~iterations ~total_slots:!total_slots ~wall:dt
            ~failures:!failures);
      (match store with Some st -> Cli.report_store_stats st | None -> ());
      (match !failures with
      | [] ->
          Format.printf "all invariants held.@.";
          `Ok ()
      | fs ->
          List.iter
            (fun (c, violations) ->
              List.iter
                (fun d -> Format.printf "VIOLATION @@ %d: %s@." c.iteration d)
                violations;
              let path = write_report ~dir:report_dir c violations in
              Format.printf "  report: %s@." path)
            (List.rev fs);
          `Error (false, Printf.sprintf "%d failing iterations" (List.length fs)))

open Cmdliner

let cmd =
  let iterations =
    Arg.(value & opt int 100 & info [ "iterations"; "n" ] ~doc:"Random elections to run.")
  in
  let no_faults =
    Arg.(value & flag & info [ "no-faults" ] ~doc:"Disable fault injection (seed-soak behaviour).")
  in
  let churn_mode =
    let modes =
      Arg.enum
        [ ("auto", Auto); ("always", Always); ("kill-leader", Kill_leader); ("off", Off) ]
    in
    Arg.(
      value & opt modes Auto
      & info [ "churn" ] ~docv:"MODE"
          ~doc:
            "Churn sampling: $(b,auto) churns roughly half the iterations, $(b,always) \
             every iteration, $(b,kill-leader) forces the adaptive leader killer every \
             iteration, $(b,off) disables churn (pre-churn soak behaviour).")
  in
  let mutate =
    Arg.(
      value & flag
      & info [ "mutate" ]
          ~doc:
            "Mutation test: treat any re-election as an invariant violation.  Churned \
             iterations are then expected to fail, proving the harness catches a broken \
             invariant and shrinks it to a minimal replayable churn schedule.")
  in
  let replay =
    Arg.(value & opt (some int) None
         & info [ "replay" ] ~docv:"ITERATION"
             ~doc:"Rerun a single iteration (as printed in a violation report) and exit.")
  in
  let report_dir =
    Arg.(value & opt string "results"
         & info [ "report-dir" ] ~doc:"Directory for violation reports.")
  in
  let json_out =
    Cli.json_out ~doc:"Write iterations, slots, wall time and violation count as JSON."
  in
  Cmd.v
    (Cmd.info "soak" ~doc:"Randomized invariant soak-testing of the whole pipeline")
    Term.(
      ret
        (const run $ iterations $ Cli.seed ~default:1 () $ Cli.jobs $ no_faults
       $ churn_mode $ mutate $ replay $ report_dir $ json_out $ Cli.cache_opts))

let () = exit (Cmd.eval cmd)
