(* soak — randomized invariant testing, for as many iterations as asked.

   Each iteration draws a random configuration (protocol, adversary,
   CD model, n, eps, T), runs a full election, and checks the
   system-wide invariants:
     - the executed jam pattern is (T, 1-eps)-bounded (independent
       O(t^2)-free accounting via the slot trace);
     - on completion, exactly one leader and full termination;
     - slot-class counters are consistent.

   Exit code 0 iff every iteration held.

     dune exec bin/soak.exe -- --iterations 200 --seed 7
*)

module E = Jamming_experiments
module Prng = Jamming_prng.Prng
module Metrics = Jamming_sim.Metrics
module Channel = Jamming_channel.Channel

type violation = { iteration : int; description : string }

let random_choice rng l = List.nth l (Prng.int rng ~bound:(List.length l))

let check_jam_density ~eps ~window records =
  (* Sliding exact check over the recorded pattern (reference-style). *)
  let jams = Array.of_list (List.map (fun r -> r.Metrics.jammed) records) in
  let t = Array.length jams in
  let ok = ref true in
  let prefix = Array.make (t + 1) 0 in
  for i = 0 to t - 1 do
    prefix.(i + 1) <- prefix.(i) + if jams.(i) then 1 else 0
  done;
  for i = 0 to t - 1 do
    let j = Int.min (t - 1) (i + window - 1) in
    (* every window of length >= window starting at i: check a few sizes *)
    List.iter
      (fun w ->
        let e = i + w - 1 in
        if e < t && w >= window then
          if
            float_of_int (prefix.(e + 1) - prefix.(i))
            > ((1.0 -. eps) *. float_of_int w) +. 1e-9
          then ok := false)
      [ window; 2 * window; j - i + 1 ]
  done;
  !ok

let run_iteration ~seed ~iteration =
  let rng = Prng.create ~seed in
  let n = 3 + Prng.int rng ~bound:62 in
  let eps = 0.2 +. (0.8 *. Prng.float rng) in
  let window = 1 + Prng.int rng ~bound:64 in
  let cap = 2_000_000 in
  let setup = { E.Runner.n; eps; window; max_slots = cap } in
  let adversaries =
    [
      E.Specs.no_jamming; E.Specs.greedy; E.Specs.random_jam ~p:0.7; E.Specs.front_loaded;
      E.Specs.periodic; E.Specs.silence_breaker; E.Specs.streak_saver;
      E.Specs.notification_saboteur;
    ]
  in
  let adversary = random_choice rng adversaries in
  let records = ref [] in
  let on_slot r = records := r :: !records in
  let mode = Prng.int rng ~bound:3 in
  let name, result =
    match mode with
    | 0 ->
        ( "LESK/uniform",
          E.Runner.run_once ~on_slot setup (E.Specs.lesk ~eps) adversary ~seed )
    | 1 ->
        ( "LESU/uniform",
          E.Runner.run_once ~on_slot setup (E.Specs.lesu ()) adversary ~seed )
    | _ ->
        ( "LEWK/weak-CD",
          E.Runner.run_exact_once ~on_slot ~cd:Channel.Weak_cd setup
            ~factory:(Jamming_core.Lewk.station ~eps ())
            adversary ~seed )
  in
  let records = List.rev !records in
  let violations = ref [] in
  let fail fmt =
    Format.kasprintf
      (fun description -> violations := { iteration; description } :: !violations)
      fmt
  in
  if not result.Metrics.completed then
    fail "%s n=%d eps=%.2f T=%d (%s): did not complete within %d slots" name n eps window
      adversary.E.Specs.a_name cap;
  if result.Metrics.completed && not (Metrics.election_ok result) then
    fail "%s: completed but not exactly one leader" name;
  if not (check_jam_density ~eps ~window records) then
    fail "%s: executed jam pattern violates (T, 1-eps)!" name;
  let jams = List.length (List.filter (fun r -> r.Metrics.jammed) records) in
  if jams <> result.Metrics.jammed_slots then fail "%s: jam accounting mismatch" name;
  (!violations, name, result.Metrics.slots)

let run iterations seed =
  let t0 = Unix.gettimeofday () in
  let all_violations = ref [] in
  let total_slots = ref 0 in
  for iteration = 1 to iterations do
    let vs, _name, slots =
      run_iteration ~seed:(Prng.seed_of_string (Printf.sprintf "soak/%d/%d" seed iteration)) ~iteration
    in
    total_slots := !total_slots + slots;
    all_violations := vs @ !all_violations;
    if iteration mod 50 = 0 then
      Format.printf "… %d/%d iterations, %d slots simulated, %d violations@." iteration
        iterations !total_slots
        (List.length !all_violations)
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Format.printf "%d iterations, %d total slots, %.1fs.@." iterations !total_slots dt;
  match !all_violations with
  | [] ->
      Format.printf "all invariants held.@.";
      `Ok ()
  | vs ->
      List.iter (fun v -> Format.printf "VIOLATION @@ %d: %s@." v.iteration v.description) vs;
      `Error (false, Printf.sprintf "%d invariant violations" (List.length vs))

open Cmdliner

let cmd =
  let iterations =
    Arg.(value & opt int 100 & info [ "iterations"; "n" ] ~doc:"Random elections to run.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Base seed.") in
  Cmd.v
    (Cmd.info "soak" ~doc:"Randomized invariant soak-testing of the whole pipeline")
    Term.(ret (const run $ iterations $ seed))

let () = exit (Cmd.eval cmd)
