(* sweep — regenerate any experiment (table/figure) of EXPERIMENTS.md.

     dune exec bin/sweep.exe -- --list
     dune exec bin/sweep.exe -- E1 E9
     dune exec bin/sweep.exe -- --full all
*)

module E = Jamming_experiments

let list_experiments () =
  Format.printf "%-4s %-24s %s@." "id" "name" "claim";
  List.iter
    (fun e ->
      Format.printf "%-4s %-24s %s@." e.E.Registry.id e.E.Registry.name e.E.Registry.claim)
    E.Experiments.all

module Telemetry = Jamming_telemetry.Telemetry
module Json = Jamming_telemetry.Json
module Gauges = Jamming_sim.Gauges
module Store = Jamming_store.Store
module Atomic_io = Jamming_store.Atomic_io

(* --cache / --no-cache / --resume resolution, shared by the three
   CLIs: --resume implies --cache (a resumed sweep is just a cached
   sweep whose completed cells hit), JAMMING_CACHE=1 turns caching on
   by default, and --no-cache beats everything. *)
let cache_enabled ~cache ~no_cache ~resume =
  let env_default =
    match Sys.getenv_opt "JAMMING_CACHE" with
    | Some ("1" | "true" | "yes") -> true
    | Some _ | None -> false
  in
  (cache || resume || env_default) && not no_cache

(* Stats go to stderr so stdout (the experiment tables) stays
   byte-identical between cold and warm passes — CI diffs it. *)
let report_store_stats st =
  let disk = Store.disk_stats st in
  Format.eprintf "store: %a entries=%d disk_bytes=%d@." Store.pp_io_stats
    (Store.io_stats st) disk.Store.entries disk.Store.bytes

(* Runs one experiment under a fresh telemetry sink and returns its
   machine-readable digest.  Gauges deltas pick up slots simulated by
   experiments that bypass Runner.replicate. *)
let run_metered ~scale out e =
  let tel = Telemetry.create () in
  let slots0 = Gauges.slots_simulated () and runs0 = Gauges.runs_completed () in
  E.Experiments.run_one ~telemetry:tel ~scale out e;
  let slots = Gauges.slots_simulated () - slots0 in
  let runs = Gauges.runs_completed () - runs0 in
  let wall = Telemetry.timer_seconds tel "experiment.wall" in
  ( tel,
    Json.Obj
      [
        ("id", Json.String e.E.Registry.id);
        ("name", Json.String e.E.Registry.name);
        ("wall_s", Json.Float wall);
        ("slots", Json.Int slots);
        ("runs", Json.Int runs);
        ( "slots_per_sec",
          if wall > 0.0 then Json.Float (float_of_int slots /. wall) else Json.Null );
        ("telemetry", Telemetry.to_json tel);
      ] )

let run list full csv_dir jobs telemetry json_out cache no_cache resume cache_dir ids =
  if list then begin
    list_experiments ();
    `Ok ()
  end
  else begin
    E.Runner.default_jobs :=
      (match jobs with
      | Some 0 | None -> E.Runner.recommended_jobs ()
      | Some j -> j);
    let store =
      if cache_enabled ~cache ~no_cache ~resume then
        Some (Store.create ~root:cache_dir ())
      else None
    in
    E.Runner.set_store store;
    let scale = if full then E.Registry.Full else E.Registry.Quick in
    let ids = if ids = [] then [ "all" ] else ids in
    let targets =
      if List.exists (fun s -> String.lowercase_ascii s = "all") ids then
        Some E.Experiments.all
      else
        let found = List.map E.Experiments.find ids in
        if List.exists Option.is_none found then None
        else Some (List.filter_map Fun.id found)
    in
    match targets with
    | None -> `Error (false, "unknown experiment id; use --list to see them")
    | Some targets ->
        let out =
          match csv_dir with
          | Some dir -> E.Output.with_csv_dir ~dir Format.std_formatter
          | None -> E.Output.to_formatter Format.std_formatter
        in
        let metered = telemetry || json_out <> None in
        let cells =
          if metered then
            List.map
              (fun e ->
                let tel, cell = run_metered ~scale out e in
                if telemetry then
                  Format.printf "@.--- telemetry (%s) ---@.%a@." e.E.Registry.id
                    Telemetry.pp tel;
                cell)
              targets
          else begin
            List.iter (E.Experiments.run_one ~scale out) targets;
            []
          end
        in
        (match json_out with
        | None -> ()
        | Some path ->
            Atomic_io.write_json ~path
              (Json.Obj
                 ([
                    ("schema", Json.String "jamming-election.sweep/1");
                    ( "scale",
                      Json.String (match scale with E.Registry.Full -> "full" | _ -> "quick") );
                    ("jobs", Json.Int !E.Runner.default_jobs);
                    ("experiments", Json.List cells);
                  ]
                 @
                 match store with
                 | Some st -> [ ("store", Store.stats_json st) ]
                 | None -> []));
            Format.printf "@.JSON written: %s@." path);
        (match E.Output.csv_files_written out with
        | [] -> ()
        | files ->
            Format.printf "@.CSV written:@.";
            List.iter (Format.printf "  %s@.") (List.rev files));
        (match store with Some st -> report_store_stats st | None -> ());
        `Ok ()
  end

open Cmdliner

let cmd =
  let list = Arg.(value & flag & info [ "list"; "l" ] ~doc:"List available experiments.") in
  let full =
    Arg.(value & flag & info [ "full" ] ~doc:"EXPERIMENTS.md parameters (slow) instead of quick.")
  in
  let ids = Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc:"Ids or names; 'all'.") in
  let csv_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"DIR" ~doc:"Also write every table as CSV into $(docv).")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Run replications on $(docv) domains (0 or omitted = all available; \
             JAMMING_JOBS overrides the detected count).")
  in
  let telemetry =
    Arg.(
      value & flag
      & info [ "telemetry" ]
          ~doc:"Print a telemetry summary (counters, timers, histograms) per experiment.")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json-out" ] ~docv:"FILE"
          ~doc:"Write per-experiment wall time, slots, slots/sec and telemetry as JSON.")
  in
  let cache =
    Arg.(
      value & flag
      & info [ "cache" ]
          ~doc:
            "Cache every (engine, setup, adversary, reps, seed) cell in the \
             content-addressed run store and reuse persisted results \
             (JAMMING_CACHE=1 enables this by default).")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ] ~doc:"Disable the run store even if JAMMING_CACHE is set.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Resume an interrupted sweep: implies $(b,--cache), so cells completed \
             by the previous run are loaded from the store instead of recomputed.")
  in
  let cache_dir =
    Arg.(
      value
      & opt string "results/cache"
      & info [ "cache-dir" ] ~docv:"DIR" ~doc:"Run store root (default results/cache).")
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Regenerate the paper-reproduction tables and figures")
    Term.(
      ret
        (const run $ list $ full $ csv_dir $ jobs $ telemetry $ json_out $ cache
       $ no_cache $ resume $ cache_dir $ ids))

let () = exit (Cmd.eval cmd)
