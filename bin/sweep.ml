(* sweep — regenerate any experiment (table/figure) of EXPERIMENTS.md.

     dune exec bin/sweep.exe -- --list
     dune exec bin/sweep.exe -- E1 E9
     dune exec bin/sweep.exe -- --full all
*)

module E = Jamming_experiments

let list_experiments () =
  Format.printf "%-4s %-24s %s@." "id" "name" "claim";
  List.iter
    (fun e ->
      Format.printf "%-4s %-24s %s@." e.E.Registry.id e.E.Registry.name e.E.Registry.claim)
    E.Experiments.all

let run list full csv_dir jobs ids =
  if list then begin
    list_experiments ();
    `Ok ()
  end
  else begin
    E.Runner.default_jobs :=
      (match jobs with
      | Some 0 -> E.Runner.recommended_jobs ()
      | Some j -> j
      | None -> 1);
    let scale = if full then E.Registry.Full else E.Registry.Quick in
    let ids = if ids = [] then [ "all" ] else ids in
    let targets =
      if List.exists (fun s -> String.lowercase_ascii s = "all") ids then
        Some E.Experiments.all
      else
        let found = List.map E.Experiments.find ids in
        if List.exists Option.is_none found then None
        else Some (List.filter_map Fun.id found)
    in
    match targets with
    | None -> `Error (false, "unknown experiment id; use --list to see them")
    | Some targets ->
        let out =
          match csv_dir with
          | Some dir -> E.Output.with_csv_dir ~dir Format.std_formatter
          | None -> E.Output.to_formatter Format.std_formatter
        in
        List.iter (E.Experiments.run_one ~scale out) targets;
        (match E.Output.csv_files_written out with
        | [] -> ()
        | files ->
            Format.printf "@.CSV written:@.";
            List.iter (Format.printf "  %s@.") (List.rev files));
        `Ok ()
  end

open Cmdliner

let cmd =
  let list = Arg.(value & flag & info [ "list"; "l" ] ~doc:"List available experiments.") in
  let full =
    Arg.(value & flag & info [ "full" ] ~doc:"EXPERIMENTS.md parameters (slow) instead of quick.")
  in
  let ids = Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc:"Ids or names; 'all'.") in
  let csv_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"DIR" ~doc:"Also write every table as CSV into $(docv).")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Run replications on $(docv) domains (0 = auto).")
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Regenerate the paper-reproduction tables and figures")
    Term.(ret (const run $ list $ full $ csv_dir $ jobs $ ids))

let () = exit (Cmd.eval cmd)
