(* sweep — regenerate any experiment (table/figure) of EXPERIMENTS.md.

     dune exec bin/sweep.exe -- --list
     dune exec bin/sweep.exe -- E1 E9
     dune exec bin/sweep.exe -- --full all

   A grid can be computed by many processes at once: each worker takes
   one shard of the experiment list and warms the shared run store,
   then a final --resume pass merges every cell from cache.

     dune exec bin/sweep.exe -- --cache --shard 1/2 all &
     dune exec bin/sweep.exe -- --cache --shard 2/2 all &
     wait
     dune exec bin/sweep.exe -- --resume all
*)

module E = Jamming_experiments

let list_experiments () =
  Format.printf "%-4s %-24s %s@." "id" "name" "claim";
  List.iter
    (fun e ->
      Format.printf "%-4s %-24s %s@." e.E.Registry.id e.E.Registry.name e.E.Registry.claim)
    E.Experiments.all

module Telemetry = Jamming_telemetry.Telemetry
module Json = Jamming_telemetry.Json
module Gauges = Jamming_sim.Gauges
module Store = Jamming_store.Store
module Atomic_io = Jamming_store.Atomic_io

(* --shard K/N: this process computes experiments K-1, K-1+N, ... of the
   selected list (1-based K).  Used to split a sweep across processes
   that share one run store. *)
let parse_shard spec =
  match String.split_on_char '/' spec with
  | [ k; n ] -> (
      match (int_of_string_opt k, int_of_string_opt n) with
      | Some k, Some n when n >= 1 && k >= 1 && k <= n -> Ok (k, n)
      | _ -> Error (Printf.sprintf "--shard: %S is not K/N with 1 <= K <= N" spec))
  | _ -> Error (Printf.sprintf "--shard: %S is not of the form K/N" spec)

(* With --deterministic the JSON must be byte-identical across job
   counts, machines AND cache states (a --resume merge vs an
   uninterrupted run), so the store.* counters — which count hits and
   misses, not simulation work — are filtered out of the telemetry. *)
let drop_store_counters json =
  match json with
  | Json.Obj sections ->
      Json.Obj
        (List.map
           (function
             | "counters", Json.Obj cs ->
                 ( "counters",
                   Json.Obj
                     (List.filter
                        (fun (name, _) ->
                          not (String.length name >= 6 && String.sub name 0 6 = "store."))
                        cs) )
             | section -> section)
           sections)
  | other -> other

(* Runs one experiment under a fresh telemetry sink and returns its
   machine-readable digest.  Gauges deltas pick up slots simulated by
   experiments that bypass Runner.replicate.  With [deterministic],
   fields that vary with the machine or the cache state (wall time,
   throughput, timers, gauge deltas — zero on a cache hit — and store
   counters) are omitted so two runs of the same sweep are
   byte-comparable. *)
let run_metered ~scale ~deterministic out e =
  let tel = Telemetry.create () in
  let slots0 = Gauges.slots_simulated () and runs0 = Gauges.runs_completed () in
  E.Experiments.run_one ~telemetry:tel ~scale out e;
  let slots = Gauges.slots_simulated () - slots0 in
  let runs = Gauges.runs_completed () - runs0 in
  let wall = Telemetry.timer_seconds tel "experiment.wall" in
  ( tel,
    Json.Obj
      ([
         ("id", Json.String e.E.Registry.id);
         ("name", Json.String e.E.Registry.name);
       ]
      @ (if deterministic then []
         else
           [
             ("wall_s", Json.Float wall);
             ( "slots_per_sec",
               if wall > 0.0 then Json.Float (float_of_int slots /. wall) else Json.Null );
             ("slots", Json.Int slots);
             ("runs", Json.Int runs);
           ])
      @ [
          ( "telemetry",
            let t = Telemetry.to_json ~timers:(not deterministic) tel in
            if deterministic then drop_store_counters t else t );
        ]) )

let run list full csv_dir jobs seed energy telemetry json_out deterministic shard
    cache_opts ids =
  if list then begin
    list_experiments ();
    `Ok ()
  end
  else begin
    let (_ : int) = Cli.install_jobs jobs in
    Cli.install_seed seed;
    (* --energy meters every static cell the registry builds; the
       runner.energy.* counters and histograms it feeds flow into
       --json-out through the per-experiment telemetry section (written
       atomically like everything else on that path). *)
    Cli.install_energy energy;
    match (match shard with None -> Ok (1, 1) | Some s -> parse_shard s) with
    | Error e -> `Error (false, e)
    | Ok (shard_k, shard_n) -> (
        let store = Cli.store_of cache_opts in
        E.Runner.set_store store;
        let scale = if full then E.Registry.Full else E.Registry.Quick in
        let ids = if ids = [] then [ "all" ] else ids in
        let targets =
          if List.exists (fun s -> String.lowercase_ascii s = "all") ids then
            Some E.Experiments.all
          else
            let found = List.map E.Experiments.find ids in
            if List.exists Option.is_none found then None
            else Some (List.filter_map Fun.id found)
        in
        match targets with
        | None -> `Error (false, "unknown experiment id; use --list to see them")
        | Some targets ->
            let targets =
              if shard_n = 1 then targets
              else List.filteri (fun i _ -> i mod shard_n = shard_k - 1) targets
            in
            let out =
              match csv_dir with
              | Some dir -> E.Output.with_csv_dir ~dir Format.std_formatter
              | None -> E.Output.to_formatter Format.std_formatter
            in
            let metered = telemetry || json_out <> None in
            let cells =
              if metered then
                List.map
                  (fun e ->
                    let tel, cell = run_metered ~scale ~deterministic out e in
                    if telemetry then
                      Format.printf "@.--- telemetry (%s) ---@.%a@." e.E.Registry.id
                        Telemetry.pp tel;
                    cell)
                  targets
              else begin
                List.iter (E.Experiments.run_one ~scale out) targets;
                []
              end
            in
            (match json_out with
            | None -> ()
            | Some path ->
                Atomic_io.write_json ~path
                  (Json.Obj
                     ([
                        ("schema", Json.String "jamming-election.sweep/1");
                        ( "scale",
                          Json.String
                            (match scale with E.Registry.Full -> "full" | _ -> "quick") );
                      ]
                     @ (if deterministic then []
                        else [ ("jobs", Json.Int !E.Runner.default_jobs) ])
                     @ [ ("experiments", Json.List cells) ]
                     @
                     match store with
                     | Some st when not deterministic ->
                         [ ("store", Store.stats_json st) ]
                     | Some _ | None -> []));
                Format.printf "@.JSON written: %s@." path);
            (match E.Output.csv_files_written out with
            | [] -> ()
            | files ->
                Format.printf "@.CSV written:@.";
                List.iter (Format.printf "  %s@.") (List.rev files));
            (match store with Some st -> Cli.report_store_stats st | None -> ());
            `Ok ())
  end

open Cmdliner

let cmd =
  let list = Arg.(value & flag & info [ "list"; "l" ] ~doc:"List available experiments.") in
  let full =
    Arg.(value & flag & info [ "full" ] ~doc:"EXPERIMENTS.md parameters (slow) instead of quick.")
  in
  let ids = Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc:"Ids or names; 'all'.") in
  let csv_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"DIR" ~doc:"Also write every table as CSV into $(docv).")
  in
  let deterministic =
    Arg.(
      value & flag
      & info [ "deterministic" ]
          ~doc:
            "Omit machine-varying fields (wall times, throughput, timers, store and \
             job counts) from $(b,--json-out), so outputs from different runs, job \
             counts or machines are byte-comparable.")
  in
  let shard =
    Arg.(
      value
      & opt (some string) None
      & info [ "shard" ] ~docv:"K/N"
          ~doc:
            "Run only every Nth experiment starting at the Kth (1-based).  Launch N \
             processes with $(b,--cache) and shards 1/N .. N/N against one cache \
             directory, then merge with a final $(b,--resume) pass.")
  in
  let json_out =
    Cli.json_out
      ~doc:"Write per-experiment wall time, slots, slots/sec and telemetry as JSON."
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Regenerate the paper-reproduction tables and figures")
    Term.(
      ret
        (const run $ list $ full $ csv_dir $ Cli.jobs $ Cli.seed () $ Cli.energy
       $ Cli.telemetry $ json_out $ deterministic $ shard $ Cli.cache_opts $ ids))

let () = exit (Cmd.eval cmd)
